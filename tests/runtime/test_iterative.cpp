#include "runtime/iterative.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "sim/trajectory_sim.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::runtime
{
namespace
{

TEST(TrialLog, MajorityAndConfidence)
{
    TrialLog log;
    log.outcomes[0b011] = 70;
    log.outcomes[0b001] = 20;
    log.outcomes[0b111] = 10;
    log.trials = 100;
    EXPECT_EQ(log.inferredOutcome(), 0b011u);
    EXPECT_DOUBLE_EQ(log.confidence(), 0.7);
    EXPECT_DOUBLE_EQ(log.frequencyOf(0b001), 0.2);
    EXPECT_DOUBLE_EQ(log.frequencyOf(0b100), 0.0);
}

TEST(TrialLog, EmptyLogRejected)
{
    TrialLog log;
    EXPECT_THROW(log.inferredOutcome(), VaqError);
    EXPECT_THROW(log.confidence(), VaqError);
}

TEST(TrialLog, GuardsAgreeOnMalformedLog)
{
    // Regression: confidence() guarded on trials > 0 while
    // inferredOutcome() guarded on outcomes being non-empty, so a
    // log claiming trials but recording no outcomes passed the
    // first guard and surfaced the second one's unrelated error
    // from inside confidence(). Both guards now reject explicitly.
    TrialLog log;
    log.trials = 50;
    EXPECT_THROW(log.inferredOutcome(), VaqError);
    EXPECT_THROW(log.confidence(), VaqError);
    EXPECT_DOUBLE_EQ(log.frequencyOf(0), 0.0);
}

TEST(TrialLog, TieBreaksTowardLowestOutcome)
{
    // Documented tie-break: equal counts resolve to the numerically
    // lowest outcome (ascending std::map walk, strictly-greater
    // replacement), independent of insertion order.
    TrialLog log;
    log.outcomes[0b110] = 40;
    log.outcomes[0b001] = 40;
    log.outcomes[0b010] = 20;
    log.trials = 100;
    EXPECT_EQ(log.inferredOutcome(), 0b001u);
    EXPECT_DOUBLE_EQ(log.confidence(), 0.4);
}

class IterativeTest : public ::testing::Test
{
  protected:
    IterativeTest()
        : graph(topology::ibmQ5Tenerife()),
          truth(test::uniformSnapshot(graph, 0.06, 0.004, 0.06))
    {}

    Machine
    machine()
    {
        return [this](const circuit::Circuit &c,
                      std::size_t shots) {
            const sim::NoiseModel model(graph, truth);
            sim::TrajectoryOptions options;
            options.shots = shots;
            options.seed = 11;
            sim::TrajectorySimulator sim(model, options);
            return sim.run(c);
        };
    }

    topology::CouplingGraph graph;
    calibration::Snapshot truth;
};

TEST_F(IterativeTest, BvSecretInferredDespiteNoise)
{
    // The Fig. 4 claim: noisy trials still let the log reveal the
    // answer. The hidden string of bv-4 is 0b111.
    const IterativeRunner runner(graph, machine());
    const auto job = runner.run(
        workloads::bernsteinVazirani(4),
        core::makeMapper({.name = "vqa+vqm"}), truth, 4096);
    EXPECT_EQ(job.log.inferredOutcome(), 0b111u);
    EXPECT_GT(job.log.confidence(), 0.3);
    EXPECT_LT(job.log.confidence(), 1.0);
    EXPECT_EQ(job.log.trials, 4096u);
}

TEST_F(IterativeTest, GhzLogIsBimodal)
{
    const IterativeRunner runner(graph, machine());
    const auto job =
        runner.run(workloads::ghz(3), core::makeMapper({.name = "baseline"}),
                   truth, 4096);
    // The two legitimate outcomes dominate the log.
    const double good = job.log.frequencyOf(0b000) +
                        job.log.frequencyOf(0b111);
    EXPECT_GT(good, 0.6);
}

TEST_F(IterativeTest, AwareCompilationRaisesConfidence)
{
    // Make one Tenerife link terrible; the aware policy avoids it
    // and the log becomes cleaner.
    auto skewed = truth;
    skewed.setLinkError(graph.linkIndex(0, 1), 0.30);
    skewed.setLinkError(graph.linkIndex(0, 2), 0.18);
    auto machineSkewed = [this, &skewed](
                             const circuit::Circuit &c,
                             std::size_t shots) {
        const sim::NoiseModel model(graph, skewed);
        sim::TrajectoryOptions options;
        options.shots = shots;
        options.seed = 13;
        sim::TrajectorySimulator sim(model, options);
        return sim.run(c);
    };
    const IterativeRunner runner(graph, machineSkewed);
    const auto base =
        runner.run(workloads::triSwap(),
                   core::makeMapper({.name = "baseline"}), skewed, 4096);
    const auto aware =
        runner.run(workloads::triSwap(),
                   core::makeMapper({.name = "vqa+vqm"}), skewed, 4096);
    EXPECT_EQ(aware.log.inferredOutcome(), 0b100u);
    EXPECT_GE(aware.log.confidence(),
              base.log.confidence() - 0.02);
}

TEST_F(IterativeTest, BatchIsolatesJobsOnDirtyCalibration)
{
    // Qubit 3 reports NaN coherence: the quarantine leaves the
    // {0,1,2,4} region. Small programs run degraded; the 5-qubit
    // program no longer fits and fails alone.
    auto dirty = truth;
    dirty.qubit(3).t1Us =
        std::numeric_limits<double>::quiet_NaN();
    const std::vector<circuit::Circuit> queue = {
        workloads::ghz(3), workloads::ghz(5),
        workloads::bernsteinVazirani(3)};

    const IterativeRunner runner(graph, machine());
    const auto results =
        runner.runBatch(queue, core::makeMapper({.name = "baseline"}),
                        dirty, 512, core::BatchOptions{});
    ASSERT_EQ(results.size(), 3u);

    EXPECT_EQ(results[0].status, core::JobStatus::Degraded);
    EXPECT_TRUE(results[0].executed());
    EXPECT_EQ(results[0].log.trials, 512u);
    EXPECT_NE(results[0].note.find("quarantined"),
              std::string::npos);

    EXPECT_EQ(results[1].status, core::JobStatus::Failed);
    EXPECT_FALSE(results[1].executed());
    EXPECT_EQ(results[1].log.trials, 0u);
    EXPECT_NE(results[1].note.find("healthy region"),
              std::string::npos)
        << results[1].note;

    EXPECT_TRUE(results[2].executed());
    EXPECT_EQ(results[2].log.trials, 512u);
}

TEST_F(IterativeTest, BatchWithoutQuarantineFailsDirtyJobs)
{
    auto dirty = truth;
    dirty.qubit(1).readoutError =
        std::numeric_limits<double>::quiet_NaN();
    core::BatchOptions options;
    options.sanitizeCalibration = false;

    const IterativeRunner runner(graph, machine());
    const auto results = runner.runBatch(
        {workloads::ghz(3)}, core::makeMapper({.name = "baseline"}),
        dirty, 256, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, core::JobStatus::Failed);
    EXPECT_FALSE(results[0].executed());
    EXPECT_FALSE(results[0].note.empty());
}

TEST_F(IterativeTest, SeriesSkipsUnusableCyclesOnly)
{
    // Cycle 1's snapshot is beyond rescue (every readout NaN); the
    // replay skips it with a reason and the other cycles still run.
    calibration::CalibrationSeries series;
    series.add(truth);
    auto dead = truth;
    for (int q = 0; q < graph.numQubits(); ++q)
        dead.qubit(q).readoutError =
            std::numeric_limits<double>::quiet_NaN();
    series.add(dead);
    series.add(truth);

    const IterativeRunner runner(graph, machine());
    const auto cycles = runner.runBatchSeries(
        {workloads::ghz(3)}, core::makeMapper({.name = "baseline"}),
        series, 256);
    ASSERT_EQ(cycles.size(), 3u);

    EXPECT_FALSE(cycles[0].skipped);
    ASSERT_EQ(cycles[0].jobs.size(), 1u);
    EXPECT_TRUE(cycles[0].jobs[0].executed());
    EXPECT_EQ(cycles[0].jobs[0].log.trials, 256u);

    EXPECT_TRUE(cycles[1].skipped);
    EXPECT_EQ(cycles[1].cycle, 1u);
    EXPECT_TRUE(cycles[1].jobs.empty());
    EXPECT_NE(cycles[1].skipReason.find("quarantined"),
              std::string::npos)
        << cycles[1].skipReason;

    EXPECT_FALSE(cycles[2].skipped);
    EXPECT_EQ(cycles[2].cycle, 2u);
    ASSERT_EQ(cycles[2].jobs.size(), 1u);
    EXPECT_TRUE(cycles[2].jobs[0].executed());
}

TEST_F(IterativeTest, Validation)
{
    EXPECT_THROW(IterativeRunner(graph, Machine{}), VaqError);
    const IterativeRunner runner(graph, machine());
    EXPECT_THROW(runner.run(workloads::ghz(3),
                            core::makeMapper({.name = "baseline"}), truth,
                            0),
                 VaqError);
}

TEST_F(IterativeTest, LogRecordsRequestedTrials)
{
    const IterativeRunner runner(graph, machine());
    const auto job = runner.run(
        workloads::ghz(3), core::makeMapper({.name = "baseline"}),
        truth, 512);
    EXPECT_EQ(job.log.trials, 512u);
    EXPECT_EQ(job.log.requestedTrials, 512u);
}

TEST_F(IterativeTest, EarlyStoppingMachineIsLegal)
{
    // A machine running adaptive early stopping may return fewer
    // trials than requested; the log must report what actually ran
    // against what was asked, and inference must divide by the
    // actual count.
    auto earlyStop = [this](const circuit::Circuit &c,
                            std::size_t shots) {
        sim::ShotCounts counts = machine()(c, shots / 2);
        return counts;
    };
    const IterativeRunner runner(graph, earlyStop);
    const auto job = runner.run(
        workloads::ghz(3), core::makeMapper({.name = "baseline"}),
        truth, 1000);
    EXPECT_EQ(job.log.trials, 500u);
    EXPECT_EQ(job.log.requestedTrials, 1000u);

    std::size_t recorded = 0;
    for (const auto &[outcome, count] : job.log.outcomes)
        recorded += count;
    EXPECT_EQ(recorded, job.log.trials);
    // Frequencies are fractions of the trials that ran, so they
    // still sum to one.
    double total = 0.0;
    for (const auto &[outcome, count] : job.log.outcomes)
        total += job.log.frequencyOf(outcome);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(IterativeTest, MachineTrialAccountingRejected)
{
    // Zero trials is always malformed; *more* trials than requested
    // is a machine bug (the inference would silently divide a
    // too-large log by the wrong base otherwise).
    auto silent = [](const circuit::Circuit &,
                     std::size_t) { return sim::ShotCounts{}; };
    const IterativeRunner zeroRunner(graph, silent);
    EXPECT_THROW(
        zeroRunner.run(workloads::ghz(3),
                       core::makeMapper({.name = "baseline"}),
                       truth, 100),
        VaqError);

    auto overCount = [this](const circuit::Circuit &c,
                            std::size_t shots) {
        return machine()(c, shots + 1);
    };
    const IterativeRunner overRunner(graph, overCount);
    EXPECT_THROW(
        overRunner.run(workloads::ghz(3),
                       core::makeMapper({.name = "baseline"}),
                       truth, 100),
        VaqError);
}

TEST_F(IterativeTest, BatchAppliesSameTrialAccounting)
{
    auto earlyStop = [this](const circuit::Circuit &c,
                            std::size_t shots) {
        return machine()(c, shots - 100);
    };
    const IterativeRunner runner(graph, earlyStop);
    const auto results = runner.runBatch(
        {workloads::ghz(3), workloads::bernsteinVazirani(3)},
        core::makeMapper({.name = "baseline"}), truth, 512,
        core::BatchOptions{});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &result : results) {
        EXPECT_EQ(result.log.trials, 412u);
        EXPECT_EQ(result.log.requestedTrials, 512u);
    }

    auto overCount = [this](const circuit::Circuit &c,
                            std::size_t shots) {
        return machine()(c, shots + 1);
    };
    const IterativeRunner overRunner(graph, overCount);
    EXPECT_THROW(
        overRunner.runBatch(
            {workloads::ghz(3)},
            core::makeMapper({.name = "baseline"}), truth, 512,
            core::BatchOptions{}),
        VaqError);
}

} // namespace
} // namespace vaq::runtime
