#include "topology/coupling_graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "topology/layouts.hpp"

namespace vaq::topology
{
namespace
{

TEST(CouplingGraph, ConstructionValidation)
{
    EXPECT_THROW(CouplingGraph("x", 0, {}), VaqError);
    EXPECT_THROW(CouplingGraph("x", 2, {{0, 0}}), VaqError);
    EXPECT_THROW(CouplingGraph("x", 2, {{0, 1}, {1, 0}}),
                 VaqError); // duplicate undirected
    EXPECT_THROW(CouplingGraph("x", 2, {{0, 5}}), VaqError);
}

TEST(CouplingGraph, LinksAreCanonicalized)
{
    const CouplingGraph g("x", 3, {{2, 0}, {1, 2}});
    EXPECT_EQ(g.links()[0].a, 0);
    EXPECT_EQ(g.links()[0].b, 2);
    EXPECT_EQ(g.linkCount(), 2u);
}

TEST(CouplingGraph, CoupledIsSymmetric)
{
    const CouplingGraph g("x", 3, {{0, 1}});
    EXPECT_TRUE(g.coupled(0, 1));
    EXPECT_TRUE(g.coupled(1, 0));
    EXPECT_FALSE(g.coupled(0, 2));
    EXPECT_FALSE(g.coupled(1, 1));
}

TEST(CouplingGraph, LinkIndexLookup)
{
    const CouplingGraph g("x", 4, {{0, 1}, {1, 2}, {2, 3}});
    EXPECT_EQ(g.linkIndex(1, 2), 1u);
    EXPECT_EQ(g.linkIndex(2, 1), 1u);
    EXPECT_THROW(g.linkIndex(0, 3), VaqError);
}

TEST(CouplingGraph, NeighborsSorted)
{
    const CouplingGraph g("x", 4, {{2, 0}, {0, 3}, {0, 1}});
    EXPECT_EQ(g.neighbors(0), (std::vector<PhysQubit>{1, 2, 3}));
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(1), 1u);
}

TEST(CouplingGraph, HopDistancesOnPath)
{
    const CouplingGraph g = linear(5);
    const auto &d = g.hopDistances();
    EXPECT_EQ(d[0][4], 4);
    EXPECT_EQ(d[4][0], 4);
    EXPECT_EQ(d[2][2], 0);
    EXPECT_EQ(d[1][2], 1);
}

TEST(CouplingGraph, DisconnectedDistanceIsMinusOne)
{
    const CouplingGraph g("x", 4, {{0, 1}, {2, 3}});
    EXPECT_EQ(g.hopDistances()[0][3], -1);
    EXPECT_FALSE(g.isConnected());
}

TEST(CouplingGraph, ConnectedGraphDetected)
{
    EXPECT_TRUE(linear(7).isConnected());
    EXPECT_TRUE(ibmQ20Tokyo().isConnected());
}

TEST(CouplingGraph, InducedSubgraphRenumbers)
{
    const CouplingGraph g = linear(5);
    const CouplingGraph sub = g.inducedSubgraph({1, 2, 3});
    EXPECT_EQ(sub.numQubits(), 3);
    EXPECT_EQ(sub.linkCount(), 2u);
    EXPECT_TRUE(sub.coupled(0, 1));
    EXPECT_TRUE(sub.coupled(1, 2));
    EXPECT_FALSE(sub.coupled(0, 2));
}

TEST(CouplingGraph, InducedSubgraphDropsOutsideLinks)
{
    const CouplingGraph g = linear(5);
    const CouplingGraph sub = g.inducedSubgraph({0, 2, 4});
    EXPECT_EQ(sub.linkCount(), 0u);
}

TEST(CouplingGraph, InducedSubgraphValidates)
{
    const CouplingGraph g = linear(4);
    EXPECT_THROW(g.inducedSubgraph({}), VaqError);
    EXPECT_THROW(g.inducedSubgraph({0, 0}), VaqError);
    EXPECT_THROW(g.inducedSubgraph({0, 9}), VaqError);
}

} // namespace
} // namespace vaq::topology
