#include "topology/layouts.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vaq::topology
{
namespace
{

TEST(Layouts, Q20TokyoShape)
{
    const CouplingGraph g = ibmQ20Tokyo();
    EXPECT_EQ(g.numQubits(), 20);
    EXPECT_EQ(g.linkCount(), 43u);
    EXPECT_TRUE(g.isConnected());
    EXPECT_EQ(g.name(), "ibm-q20-tokyo");
}

TEST(Layouts, Q20TokyoHasPaperLinks)
{
    // Links named in the paper's Fig. 8 time-series: CX6_5,
    // CX19_13, CX5_11; plus the Q14-Q18 worst link of Fig. 9.
    const CouplingGraph g = ibmQ20Tokyo();
    EXPECT_TRUE(g.coupled(6, 5));
    EXPECT_TRUE(g.coupled(19, 13));
    EXPECT_TRUE(g.coupled(5, 11));
    EXPECT_TRUE(g.coupled(14, 18));
}

TEST(Layouts, Q20TokyoRowsAndColumns)
{
    const CouplingGraph g = ibmQ20Tokyo();
    // Row neighbours.
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c + 1 < 5; ++c)
            EXPECT_TRUE(g.coupled(r * 5 + c, r * 5 + c + 1));
    }
    // Column neighbours.
    for (int r = 0; r + 1 < 4; ++r) {
        for (int c = 0; c < 5; ++c)
            EXPECT_TRUE(g.coupled(r * 5 + c, (r + 1) * 5 + c));
    }
    // Far corners are not directly coupled.
    EXPECT_FALSE(g.coupled(0, 19));
}

TEST(Layouts, Q5TenerifeShape)
{
    const CouplingGraph g = ibmQ5Tenerife();
    EXPECT_EQ(g.numQubits(), 5);
    EXPECT_EQ(g.linkCount(), 6u);
    EXPECT_TRUE(g.isConnected());
    // The bowtie's hub.
    EXPECT_EQ(g.degree(2), 4u);
    EXPECT_FALSE(g.coupled(0, 3));
    EXPECT_FALSE(g.coupled(1, 4));
}

TEST(Layouts, LinearChain)
{
    const CouplingGraph g = linear(6);
    EXPECT_EQ(g.linkCount(), 5u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(3), 2u);
    EXPECT_EQ(linear(1).linkCount(), 0u);
    EXPECT_THROW(linear(0), VaqError);
}

TEST(Layouts, RingWrapsAround)
{
    const CouplingGraph g = ring(5);
    EXPECT_EQ(g.linkCount(), 5u);
    EXPECT_TRUE(g.coupled(4, 0));
    for (int q = 0; q < 5; ++q)
        EXPECT_EQ(g.degree(q), 2u);
    EXPECT_THROW(ring(2), VaqError);
}

TEST(Layouts, GridStructure)
{
    const CouplingGraph g = grid(2, 3);
    EXPECT_EQ(g.numQubits(), 6);
    EXPECT_EQ(g.linkCount(), 7u);
    EXPECT_TRUE(g.coupled(0, 1));
    EXPECT_TRUE(g.coupled(0, 3));
    EXPECT_FALSE(g.coupled(0, 4));
    EXPECT_EQ(g.hopDistances()[0][5], 3);
    EXPECT_THROW(grid(0, 3), VaqError);
}

TEST(Layouts, FullyConnected)
{
    const CouplingGraph g = fullyConnected(5);
    EXPECT_EQ(g.linkCount(), 10u);
    for (int a = 0; a < 5; ++a) {
        for (int b = 0; b < 5; ++b) {
            if (a != b) {
                EXPECT_TRUE(g.coupled(a, b));
            }
        }
    }
}

TEST(Layouts, Falcon27HeavyHex)
{
    const CouplingGraph g = ibmFalcon27();
    EXPECT_EQ(g.numQubits(), 27);
    EXPECT_EQ(g.linkCount(), 28u);
    EXPECT_TRUE(g.isConnected());
    // Heavy-hex: degrees are 1, 2 or 3 only.
    for (int q = 0; q < g.numQubits(); ++q) {
        EXPECT_GE(g.degree(q), 1u);
        EXPECT_LE(g.degree(q), 3u);
    }
    // Spot-check published couplings.
    EXPECT_TRUE(g.coupled(1, 4));
    EXPECT_TRUE(g.coupled(12, 15));
    EXPECT_FALSE(g.coupled(0, 2));
}

TEST(Layouts, GridDegenerateCases)
{
    EXPECT_EQ(grid(1, 1).numQubits(), 1);
    EXPECT_EQ(grid(1, 4).linkCount(), 3u);
}

} // namespace
} // namespace vaq::topology
