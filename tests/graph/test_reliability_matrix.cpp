/**
 * @file
 * Unit tests for the all-pairs reliability-path table and its
 * epoch-invalidated cache.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "graph/reliability_matrix.hpp"
#include "graph/shortest_path.hpp"

namespace
{

using namespace vaq;
using graph::ReliabilityMatrix;
using graph::ReliabilityMatrixCache;
using graph::WeightedEdge;
using graph::WeightedGraph;

/** 0-1-2-3 line plus a costly 0-3 shortcut. */
WeightedGraph
lineWithShortcut()
{
    return WeightedGraph(4, {WeightedEdge{0, 1, 1.0},
                             WeightedEdge{1, 2, 1.0},
                             WeightedEdge{2, 3, 1.0},
                             WeightedEdge{0, 3, 10.0}});
}

TEST(ReliabilityMatrix, FindsCheapestPathsAndNextHops)
{
    const ReliabilityMatrix matrix(lineWithShortcut());
    EXPECT_EQ(matrix.numNodes(), 4);
    EXPECT_DOUBLE_EQ(matrix.distance(0, 3), 3.0);
    EXPECT_DOUBLE_EQ(matrix.distance(0, 0), 0.0);
    EXPECT_EQ(matrix.nextHop(0, 3), 1);
    EXPECT_EQ(matrix.nextHop(0, 1), 1);
    EXPECT_EQ(matrix.nextHop(0, 0), -1);
    EXPECT_EQ(matrix.path(0, 3), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(matrix.path(3, 0), (std::vector<int>{3, 2, 1, 0}));
}

TEST(ReliabilityMatrix, PathCostsSumAlongReconstruction)
{
    const WeightedGraph costs = lineWithShortcut();
    const ReliabilityMatrix matrix(costs);
    for (int a = 0; a < matrix.numNodes(); ++a) {
        for (int b = 0; b < matrix.numNodes(); ++b) {
            if (a == b)
                continue;
            const std::vector<int> path = matrix.path(a, b);
            double sum = 0.0;
            for (std::size_t i = 0; i + 1 < path.size(); ++i)
                sum += costs.weight(path[i], path[i + 1]);
            EXPECT_EQ(sum, matrix.distance(a, b))
                << "pair (" << a << ", " << b << ")";
        }
    }
}

TEST(ReliabilityMatrix, UnreachablePairsAreMarked)
{
    // Two disjoint components: {0, 1} and {2, 3}.
    const WeightedGraph costs(
        4, {WeightedEdge{0, 1, 1.0}, WeightedEdge{2, 3, 1.0}});
    const ReliabilityMatrix matrix(costs);
    EXPECT_TRUE(matrix.reachable(0, 1));
    EXPECT_FALSE(matrix.reachable(0, 2));
    EXPECT_EQ(matrix.distance(0, 2), graph::kUnreachable);
    EXPECT_EQ(matrix.nextHop(0, 2), -1);
    EXPECT_THROW(matrix.path(0, 2), VaqError);
}

TEST(ReliabilityMatrix, MatchesDijkstraOnEveryPair)
{
    const WeightedGraph costs(
        6, {WeightedEdge{0, 1, 0.3}, WeightedEdge{1, 2, 0.2},
            WeightedEdge{2, 3, 0.7}, WeightedEdge{3, 4, 0.1},
            WeightedEdge{4, 5, 0.4}, WeightedEdge{0, 5, 1.9},
            WeightedEdge{1, 4, 0.8}});
    const ReliabilityMatrix matrix(costs);
    const auto reference = graph::allPairsDistances(costs);
    for (int a = 0; a < 6; ++a) {
        for (int b = 0; b < 6; ++b) {
            EXPECT_EQ(matrix.distance(a, b),
                      reference[static_cast<std::size_t>(a)]
                               [static_cast<std::size_t>(b)]);
        }
    }
}

TEST(ReliabilityMatrixCache, BuildsOncePerKeyAndCountsLookups)
{
    ReliabilityMatrixCache cache;
    int builds = 0;
    const auto builder = [&builds] {
        ++builds;
        return std::make_shared<const ReliabilityMatrix>(
            lineWithShortcut());
    };
    const auto first = cache.obtain(42, builder);
    const auto second = cache.obtain(42, builder);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ReliabilityMatrixCache, InvalidateStartsNewEpoch)
{
    ReliabilityMatrixCache cache;
    const auto builder = [] {
        return std::make_shared<const ReliabilityMatrix>(
            lineWithShortcut());
    };
    const auto before = cache.obtain(7, builder);
    EXPECT_EQ(cache.epoch(), 0u);
    cache.invalidate();
    EXPECT_EQ(cache.epoch(), 1u);
    // Stale entry is dropped on the next lookup; the old handle
    // stays usable.
    const auto after = cache.obtain(7, builder);
    EXPECT_NE(before.get(), after.get());
    EXPECT_DOUBLE_EQ(before->distance(0, 3), 3.0);
}

TEST(ReliabilityMatrixCache, EvictsLeastRecentlyUsedAtCapacity)
{
    ReliabilityMatrixCache cache(2);
    int builds = 0;
    const auto builder = [&builds] {
        ++builds;
        return std::make_shared<const ReliabilityMatrix>(
            lineWithShortcut());
    };
    cache.obtain(1, builder);
    cache.obtain(2, builder);
    cache.obtain(1, builder); // refresh key 1
    cache.obtain(3, builder); // evicts key 2
    EXPECT_EQ(cache.size(), 2u);
    cache.obtain(1, builder); // still cached
    EXPECT_EQ(builds, 3);
    cache.obtain(2, builder); // was evicted: rebuild
    EXPECT_EQ(builds, 4);
    EXPECT_EQ(cache.evictions(), 2u); // keys 2 and 3 each evicted
}

TEST(ReliabilityMatrixCache, CountersAccumulateAndReset)
{
    ReliabilityMatrixCache cache(1);
    const auto builder = [] {
        return std::make_shared<const ReliabilityMatrix>(
            lineWithShortcut());
    };
    cache.obtain(1, builder); // miss
    cache.obtain(1, builder); // hit
    cache.obtain(2, builder); // miss + evicts key 1
    cache.invalidate();
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.invalidations(), 1u);

    // resetCounters zeroes the lookup counters but not the epoch.
    cache.resetCounters();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.invalidations(), 0u);
    EXPECT_EQ(cache.epoch(), 1u);

    // And the counters keep working after a reset.
    cache.obtain(2, builder); // invalidated above: counts a miss
    EXPECT_EQ(cache.misses(), 1u);
}

} // namespace
