#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vaq::graph
{
namespace
{

WeightedGraph
pathWithStrongEnd()
{
    // 0-1 weak, 1-2 weak, 2-3 strong, 3-4 strong.
    return WeightedGraph(5, {{0, 1, 0.1},
                             {1, 2, 0.2},
                             {2, 3, 0.9},
                             {3, 4, 0.8}});
}

TEST(Subgraph, ScoreFullStrength)
{
    const WeightedGraph g = pathWithStrongEnd();
    // Nodes 2,3: strengths (0.2+0.9) + (0.9+0.8) = 2.8.
    EXPECT_NEAR(
        scoreSubgraph(g, {2, 3}, SubgraphScore::FullStrength),
        2.8, 1e-12);
}

TEST(Subgraph, ScoreInducedWeight)
{
    const WeightedGraph g = pathWithStrongEnd();
    EXPECT_NEAR(
        scoreSubgraph(g, {2, 3}, SubgraphScore::InducedWeight),
        0.9, 1e-12);
    EXPECT_NEAR(
        scoreSubgraph(g, {2, 3, 4}, SubgraphScore::InducedWeight),
        1.7, 1e-12);
    // Disconnected pair has no induced weight.
    EXPECT_NEAR(
        scoreSubgraph(g, {0, 4}, SubgraphScore::InducedWeight),
        0.0, 1e-12);
}

TEST(Subgraph, ConnectivityCheck)
{
    const WeightedGraph g = pathWithStrongEnd();
    EXPECT_TRUE(isConnectedSubset(g, {1, 2, 3}));
    EXPECT_FALSE(isConnectedSubset(g, {0, 2}));
    EXPECT_TRUE(isConnectedSubset(g, {4}));
    EXPECT_FALSE(isConnectedSubset(g, {}));
}

TEST(Subgraph, BestPicksStrongEnd)
{
    const WeightedGraph g = pathWithStrongEnd();
    EXPECT_EQ(bestConnectedSubgraph(g, 2,
                                    SubgraphScore::InducedWeight),
              (std::vector<int>{2, 3}));
    EXPECT_EQ(bestConnectedSubgraph(g, 3,
                                    SubgraphScore::InducedWeight),
              (std::vector<int>{2, 3, 4}));
}

TEST(Subgraph, BestIsAlwaysConnected)
{
    Rng rng(31);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<WeightedEdge> edges;
        for (int a = 0; a < 10; ++a) {
            for (int b = a + 1; b < 10; ++b) {
                if (rng.bernoulli(0.35))
                    edges.push_back(
                        {a, b, rng.uniform(0.1, 1.0)});
            }
        }
        const WeightedGraph g(10, edges);
        for (std::size_t k = 1; k <= 5; ++k) {
            std::vector<int> best;
            try {
                best = bestConnectedSubgraph(
                    g, k, SubgraphScore::InducedWeight);
            } catch (const VaqError &) {
                continue; // no connected subset of this size
            }
            EXPECT_EQ(best.size(), k);
            EXPECT_TRUE(isConnectedSubset(g, best));
        }
    }
}

TEST(Subgraph, ExhaustiveOptimalityOnSmallGraphs)
{
    // Brute force over all C(7, 3) subsets as the oracle.
    Rng rng(32);
    std::vector<WeightedEdge> edges;
    for (int a = 0; a < 7; ++a) {
        for (int b = a + 1; b < 7; ++b) {
            if (rng.bernoulli(0.5))
                edges.push_back({a, b, rng.uniform(0.1, 1.0)});
        }
    }
    const WeightedGraph g(7, edges);

    double bruteBest = -1.0;
    for (int a = 0; a < 7; ++a) {
        for (int b = a + 1; b < 7; ++b) {
            for (int c = b + 1; c < 7; ++c) {
                const std::vector<int> nodes{a, b, c};
                if (!isConnectedSubset(g, nodes))
                    continue;
                bruteBest = std::max(
                    bruteBest,
                    scoreSubgraph(g, nodes,
                                  SubgraphScore::InducedWeight));
            }
        }
    }
    const auto best =
        bestConnectedSubgraph(g, 3, SubgraphScore::InducedWeight);
    EXPECT_NEAR(
        scoreSubgraph(g, best, SubgraphScore::InducedWeight),
        bruteBest, 1e-12);
}

TEST(Subgraph, SizeOneReturnsStrongestNode)
{
    const WeightedGraph g = pathWithStrongEnd();
    const auto best = bestConnectedSubgraph(
        g, 1, SubgraphScore::FullStrength);
    // Node 3 has the highest strength 1.7.
    EXPECT_EQ(best, (std::vector<int>{3}));
}

TEST(Subgraph, WholeGraphWhenConnected)
{
    const WeightedGraph g = pathWithStrongEnd();
    EXPECT_EQ(bestConnectedSubgraph(g, 5).size(), 5u);
}

TEST(Subgraph, ThrowsWhenNoConnectedSubsetExists)
{
    const WeightedGraph g(4, {{0, 1, 1.0}, {2, 3, 1.0}});
    EXPECT_THROW(bestConnectedSubgraph(g, 3), VaqError);
    EXPECT_THROW(bestConnectedSubgraph(g, 0), VaqError);
    EXPECT_THROW(bestConnectedSubgraph(g, 5), VaqError);
}

TEST(Subgraph, TopSubgraphsAreSortedAndUnique)
{
    Rng rng(33);
    std::vector<WeightedEdge> edges;
    for (int a = 0; a < 8; ++a) {
        for (int b = a + 1; b < 8; ++b) {
            if (rng.bernoulli(0.5))
                edges.push_back({a, b, rng.uniform(0.1, 1.0)});
        }
    }
    const WeightedGraph g(8, edges);
    const auto top = topConnectedSubgraphs(
        g, 3, 10, SubgraphScore::InducedWeight);
    ASSERT_FALSE(top.empty());
    std::set<std::vector<int>> unique(top.begin(), top.end());
    EXPECT_EQ(unique.size(), top.size());
    for (std::size_t i = 0; i + 1 < top.size(); ++i) {
        EXPECT_GE(scoreSubgraph(g, top[i],
                                SubgraphScore::InducedWeight),
                  scoreSubgraph(g, top[i + 1],
                                SubgraphScore::InducedWeight));
    }
    // The first entry matches bestConnectedSubgraph.
    EXPECT_EQ(top.front(),
              bestConnectedSubgraph(
                  g, 3, SubgraphScore::InducedWeight));
}

TEST(Subgraph, TopSubgraphsAllConnected)
{
    const WeightedGraph g = pathWithStrongEnd();
    for (const auto &nodes : topConnectedSubgraphs(g, 3, 5))
        EXPECT_TRUE(isConnectedSubset(g, nodes));
}

} // namespace
} // namespace vaq::graph
