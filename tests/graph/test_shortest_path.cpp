#include "graph/shortest_path.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vaq::graph
{
namespace
{

WeightedGraph
randomGraph(int n, double edge_prob, Rng &rng)
{
    std::vector<WeightedEdge> edges;
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
            if (rng.bernoulli(edge_prob))
                edges.push_back({a, b, rng.uniform(0.1, 5.0)});
        }
    }
    return WeightedGraph(n, edges);
}

/** Bellman-Ford as the brute-force oracle. */
std::vector<double>
bellmanFord(const WeightedGraph &g, int src)
{
    std::vector<double> dist(
        static_cast<std::size_t>(g.numNodes()), kUnreachable);
    dist[static_cast<std::size_t>(src)] = 0.0;
    for (int iter = 0; iter < g.numNodes(); ++iter) {
        for (const WeightedEdge &e : g.edges()) {
            const auto a = static_cast<std::size_t>(e.a);
            const auto b = static_cast<std::size_t>(e.b);
            if (dist[a] + e.weight < dist[b])
                dist[b] = dist[a] + e.weight;
            if (dist[b] + e.weight < dist[a])
                dist[a] = dist[b] + e.weight;
        }
    }
    return dist;
}

TEST(Dijkstra, LineGraphDistances)
{
    const WeightedGraph g(4,
                          {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 4.0}});
    const ShortestPathTree tree = dijkstra(g, 0);
    EXPECT_DOUBLE_EQ(tree.dist[0], 0.0);
    EXPECT_DOUBLE_EQ(tree.dist[1], 1.0);
    EXPECT_DOUBLE_EQ(tree.dist[2], 3.0);
    EXPECT_DOUBLE_EQ(tree.dist[3], 7.0);
}

TEST(Dijkstra, PicksCheaperLongerPath)
{
    // Direct edge 0-2 costs 10; the detour via 1 costs 3.
    const WeightedGraph g(3,
                          {{0, 2, 10.0}, {0, 1, 1.0}, {1, 2, 2.0}});
    const ShortestPathTree tree = dijkstra(g, 0);
    EXPECT_DOUBLE_EQ(tree.dist[2], 3.0);
    EXPECT_EQ(tree.pathTo(2), (std::vector<int>{0, 1, 2}));
}

TEST(Dijkstra, UnreachableNodes)
{
    const WeightedGraph g(4, {{0, 1, 1.0}, {2, 3, 1.0}});
    const ShortestPathTree tree = dijkstra(g, 0);
    EXPECT_EQ(tree.dist[2], kUnreachable);
    EXPECT_THROW(tree.pathTo(2), VaqError);
}

TEST(Dijkstra, PathToSourceIsTrivial)
{
    const WeightedGraph g(2, {{0, 1, 1.0}});
    const ShortestPathTree tree = dijkstra(g, 1);
    EXPECT_EQ(tree.pathTo(1), (std::vector<int>{1}));
}

TEST(Dijkstra, RejectsNegativeWeights)
{
    const WeightedGraph g(2, {{0, 1, -1.0}});
    EXPECT_THROW(dijkstra(g, 0), VaqError);
}

TEST(Dijkstra, SourceValidation)
{
    const WeightedGraph g(2, {{0, 1, 1.0}});
    EXPECT_THROW(dijkstra(g, -1), VaqError);
    EXPECT_THROW(dijkstra(g, 2), VaqError);
}

TEST(Dijkstra, MatchesBellmanFordOnRandomGraphs)
{
    Rng rng(101);
    for (int trial = 0; trial < 25; ++trial) {
        const WeightedGraph g = randomGraph(12, 0.3, rng);
        for (int src = 0; src < g.numNodes(); ++src) {
            const auto expected = bellmanFord(g, src);
            const auto actual = dijkstra(g, src).dist;
            for (std::size_t v = 0; v < expected.size(); ++v) {
                if (expected[v] == kUnreachable)
                    EXPECT_EQ(actual[v], kUnreachable);
                else
                    EXPECT_NEAR(actual[v], expected[v], 1e-9);
            }
        }
    }
}

TEST(Dijkstra, PathEdgesExistAndSumToDistance)
{
    Rng rng(102);
    const WeightedGraph g = randomGraph(10, 0.4, rng);
    const ShortestPathTree tree = dijkstra(g, 0);
    for (int dst = 0; dst < g.numNodes(); ++dst) {
        if (tree.dist[static_cast<std::size_t>(dst)] ==
            kUnreachable) {
            continue;
        }
        const auto path = tree.pathTo(dst);
        double total = 0.0;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            ASSERT_TRUE(g.hasEdge(path[i], path[i + 1]));
            total += g.weight(path[i], path[i + 1]);
        }
        EXPECT_NEAR(total,
                    tree.dist[static_cast<std::size_t>(dst)],
                    1e-9);
    }
}

TEST(AllPairs, SymmetricAndConsistent)
{
    Rng rng(103);
    const WeightedGraph g = randomGraph(9, 0.4, rng);
    const auto all = allPairsDistances(g);
    for (int a = 0; a < g.numNodes(); ++a) {
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(a)]
                            [static_cast<std::size_t>(a)],
                         0.0);
        for (int b = 0; b < g.numNodes(); ++b) {
            EXPECT_NEAR(all[static_cast<std::size_t>(a)]
                           [static_cast<std::size_t>(b)],
                        all[static_cast<std::size_t>(b)]
                           [static_cast<std::size_t>(a)],
                        1e-9);
        }
    }
}

TEST(Dijkstra, MinusLogTurnsProductsIntoSums)
{
    // The reliability-routing trick: with weights -log(p), the
    // shortest path maximizes the product of link successes.
    const double p01 = 0.98, p12 = 0.97, p02 = 0.90;
    const WeightedGraph g(3, {{0, 1, -std::log(p01)},
                              {1, 2, -std::log(p12)},
                              {0, 2, -std::log(p02)}});
    const ShortestPathTree tree = dijkstra(g, 0);
    // Detour success 0.9506 > direct 0.90, so detour wins.
    EXPECT_EQ(tree.pathTo(2), (std::vector<int>{0, 1, 2}));
    EXPECT_NEAR(std::exp(-tree.dist[2]), p01 * p12, 1e-12);
}

} // namespace
} // namespace vaq::graph
