#include "graph/kcore.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vaq::graph
{
namespace
{

WeightedGraph
unitTriangleWithTail()
{
    // Triangle 0-1-2 plus tail 2-3-4.
    return WeightedGraph(5, {{0, 1, 1.0},
                             {1, 2, 1.0},
                             {0, 2, 1.0},
                             {2, 3, 1.0},
                             {3, 4, 1.0}});
}

TEST(KCore, TriangleWithTail)
{
    const auto core = coreNumbers(unitTriangleWithTail());
    EXPECT_EQ(core[0], 2);
    EXPECT_EQ(core[1], 2);
    EXPECT_EQ(core[2], 2);
    EXPECT_EQ(core[3], 1);
    EXPECT_EQ(core[4], 1);
}

TEST(KCore, DegeneracyOfClique)
{
    std::vector<WeightedEdge> edges;
    for (int a = 0; a < 5; ++a) {
        for (int b = a + 1; b < 5; ++b)
            edges.push_back({a, b, 1.0});
    }
    EXPECT_EQ(degeneracy(WeightedGraph(5, edges)), 4);
}

TEST(KCore, PathGraphIsOneDegenerate)
{
    const WeightedGraph g(4,
                          {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
    EXPECT_EQ(degeneracy(g), 1);
}

TEST(KCore, KCoreMembership)
{
    const auto members = kCore(unitTriangleWithTail(), 2);
    EXPECT_EQ(members, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(kCore(unitTriangleWithTail(), 3).size(), 0u);
    EXPECT_EQ(kCore(unitTriangleWithTail(), 0).size(), 5u);
    EXPECT_THROW(kCore(unitTriangleWithTail(), -1), VaqError);
}

TEST(KCore, CoreNumbersNeverExceedDegree)
{
    Rng rng(7);
    std::vector<WeightedEdge> edges;
    for (int a = 0; a < 15; ++a) {
        for (int b = a + 1; b < 15; ++b) {
            if (rng.bernoulli(0.3))
                edges.push_back({a, b, 1.0});
        }
    }
    const WeightedGraph g(15, edges);
    const auto core = coreNumbers(g);
    for (int v = 0; v < g.numNodes(); ++v) {
        EXPECT_LE(core[static_cast<std::size_t>(v)],
                  static_cast<int>(g.degree(v)));
    }
}

TEST(KCore, KCoreInducedMinDegreeProperty)
{
    // Every member of the k-core has >= k neighbours inside it.
    Rng rng(8);
    std::vector<WeightedEdge> edges;
    for (int a = 0; a < 12; ++a) {
        for (int b = a + 1; b < 12; ++b) {
            if (rng.bernoulli(0.4))
                edges.push_back({a, b, 1.0});
        }
    }
    const WeightedGraph g(12, edges);
    const int k = degeneracy(g);
    const auto members = kCore(g, k);
    ASSERT_FALSE(members.empty());
    for (int v : members) {
        int inside = 0;
        for (const auto &[u, w] : g.neighbors(v)) {
            (void)w;
            if (std::find(members.begin(), members.end(), u) !=
                members.end()) {
                ++inside;
            }
        }
        EXPECT_GE(inside, k);
    }
}

TEST(StrengthCore, PrunesWeakestFirst)
{
    // Node 3 hangs on a weak link and should be shed first.
    const WeightedGraph g(4, {{0, 1, 0.9},
                              {1, 2, 0.9},
                              {0, 2, 0.9},
                              {2, 3, 0.1}});
    EXPECT_EQ(strengthCore(g, 3), (std::vector<int>{0, 1, 2}));
}

TEST(StrengthCore, KeepAllReturnsEverything)
{
    const WeightedGraph g(3, {{0, 1, 0.5}, {1, 2, 0.5}});
    EXPECT_EQ(strengthCore(g, 3), (std::vector<int>{0, 1, 2}));
}

TEST(StrengthCore, Validation)
{
    const WeightedGraph g(3, {{0, 1, 0.5}});
    EXPECT_THROW(strengthCore(g, 0), VaqError);
    EXPECT_THROW(strengthCore(g, 4), VaqError);
}

TEST(StrengthCore, StrengthUpdatesDuringPruning)
{
    // 0-1 strong; 2 connects strongly to 3 only; when 3 (weakest
    // total) goes, 2 loses its support and goes next.
    const WeightedGraph g(4, {{0, 1, 2.0},
                              {1, 2, 0.4},
                              {2, 3, 0.5}});
    EXPECT_EQ(strengthCore(g, 2), (std::vector<int>{0, 1}));
}

} // namespace
} // namespace vaq::graph
