#include "graph/weighted_graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vaq::graph
{
namespace
{

TEST(WeightedGraph, ConstructionValidation)
{
    EXPECT_THROW(WeightedGraph(0, {}), VaqError);
    EXPECT_THROW(WeightedGraph(2, {{0, 0, 1.0}}), VaqError);
    EXPECT_THROW(WeightedGraph(2, {{0, 1, 1.0}, {1, 0, 2.0}}),
                 VaqError);
    EXPECT_THROW(WeightedGraph(2, {{0, 5, 1.0}}), VaqError);
}

TEST(WeightedGraph, EdgeLookup)
{
    const WeightedGraph g(3, {{0, 1, 0.5}, {1, 2, 0.25}});
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 0.5);
    EXPECT_DOUBLE_EQ(g.weight(2, 1), 0.25);
    EXPECT_THROW(g.weight(0, 2), VaqError);
}

TEST(WeightedGraph, NodeStrengthIsWeightedDegree)
{
    // Node strength d_i = sum_j w_ij (paper Algorithm 1, step 2).
    const WeightedGraph g(3,
                          {{0, 1, 0.9}, {1, 2, 0.8}, {0, 2, 0.7}});
    EXPECT_DOUBLE_EQ(g.nodeStrength(0), 1.6);
    EXPECT_DOUBLE_EQ(g.nodeStrength(1), 1.7);
    EXPECT_DOUBLE_EQ(g.nodeStrength(2), 1.5);
    const auto all = g.nodeStrengths();
    EXPECT_DOUBLE_EQ(all[1], 1.7);
}

TEST(WeightedGraph, IsolatedNodeHasZeroStrength)
{
    const WeightedGraph g(3, {{0, 1, 1.0}});
    EXPECT_DOUBLE_EQ(g.nodeStrength(2), 0.0);
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(WeightedGraph, EdgesCanonicalized)
{
    const WeightedGraph g(3, {{2, 0, 0.3}});
    EXPECT_EQ(g.edges()[0].a, 0);
    EXPECT_EQ(g.edges()[0].b, 2);
    EXPECT_EQ(g.edgeCount(), 1u);
}

} // namespace
} // namespace vaq::graph
