#include "workloads/workloads.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sim/statevector.hpp"
#include "sim/trajectory_sim.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::workloads
{
namespace
{

using circuit::Circuit;

TEST(BernsteinVazirani, RecoverySecret)
{
    // BV must output exactly the hidden string.
    for (std::uint64_t secret : {0b101ULL, 0b010ULL, 0b111ULL}) {
        const Circuit bv = bernsteinVazirani(4, secret);
        const auto outcomes = sim::idealOutcomes(bv);
        ASSERT_EQ(outcomes.size(), 1u);
        EXPECT_EQ(outcomes[0], secret & 0b111ULL);
    }
}

TEST(BernsteinVazirani, ZeroSecretNeedsNoOracle)
{
    const Circuit bv = bernsteinVazirani(4, 0);
    EXPECT_EQ(bv.twoQubitCount(), 0u);
    const auto outcomes = sim::idealOutcomes(bv);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], 0u);
}

TEST(BernsteinVazirani, SizeScalesLikePaperTable1)
{
    // Paper Table 1: bv-16 = 66 instructions, bv-20 = 90.
    EXPECT_NEAR(
        static_cast<double>(
            bernsteinVazirani(16).instructionCount()),
        66.0, 8.0);
    EXPECT_NEAR(
        static_cast<double>(
            bernsteinVazirani(20).instructionCount()),
        90.0, 12.0);
    EXPECT_THROW(bernsteinVazirani(1), VaqError);
}

TEST(Qft, ProducesUniformDistributionFromZero)
{
    const Circuit c = qft(3);
    sim::StateVector state(3);
    state.applyUnitaries(c);
    for (std::uint64_t b = 0; b < 8; ++b)
        EXPECT_NEAR(state.probability(b), 0.125, 1e-9);
}

TEST(Qft, InverseRecoversInput)
{
    // QFT then its adjoint (reverse gates, negate angles) is
    // identity.
    const Circuit forward = qft(4);
    sim::StateVector state(4);
    // Prepare a non-trivial basis state.
    state.apply(circuit::Gate::oneQubit(circuit::GateKind::X, 1));
    state.apply(circuit::Gate::oneQubit(circuit::GateKind::X, 3));

    std::vector<circuit::Gate> unitaries;
    for (const auto &g : forward.gates()) {
        if (g.isUnitary())
            unitaries.push_back(g);
    }
    for (const auto &g : unitaries)
        state.apply(g);
    for (auto it = unitaries.rbegin(); it != unitaries.rend();
         ++it) {
        circuit::Gate inverse = *it;
        if (inverse.isParameterized())
            inverse.param = -inverse.param;
        state.apply(inverse);
    }
    EXPECT_NEAR(state.probability(0b1010), 1.0, 1e-9);
}

TEST(Qft, SizeScalesLikePaperTable1)
{
    // Paper Table 1: qft-12 = 344 instructions, qft-14 = 550...
    // our CX+RZ decomposition lands within ~10 %.
    EXPECT_NEAR(static_cast<double>(qft(12).instructionCount()),
                344.0, 40.0);
    EXPECT_NEAR(static_cast<double>(qft(14).instructionCount()),
                550.0, 90.0);
}

TEST(Qft, OptionalReversalAddsSwaps)
{
    EXPECT_EQ(qft(4, false).swapCount(), 0u);
    EXPECT_EQ(qft(4, true).swapCount(), 2u);
}

TEST(Adder, ComputesSums)
{
    struct Case
    {
        std::uint64_t a, b;
        bool cin;
    };
    for (const Case &tc : {Case{3, 5, false}, Case{9, 6, false},
                           Case{15, 15, false}, Case{0, 0, true},
                           Case{7, 8, true}}) {
        const Circuit c = adder(4, tc.a, tc.b, tc.cin);
        const auto outcomes = sim::idealOutcomes(c);
        ASSERT_EQ(outcomes.size(), 1u) << tc.a << "+" << tc.b;
        // Sum register is qubits 4..7, carry-out is qubit 9.
        const std::uint64_t sum = tc.a + tc.b + (tc.cin ? 1 : 0);
        std::uint64_t expected = ((sum & 0xF) << 4);
        if (sum > 0xF)
            expected |= 1ULL << 9;
        EXPECT_EQ(outcomes[0], expected)
            << tc.a << "+" << tc.b << "+" << tc.cin;
    }
}

TEST(Adder, TenQubitsLikePaper)
{
    const Circuit c = adder(4, 0b1011, 0b0110, false);
    EXPECT_EQ(c.numQubits(), 10);
    // Paper Table 1 lists 299 instructions for "alu"; the exact
    // count depends on the Toffoli decomposition, so accept a
    // generous band around it.
    EXPECT_GT(c.instructionCount(), 120u);
    EXPECT_LT(c.instructionCount(), 360u);
}

TEST(Ghz, IsMaximallyCorrelated)
{
    const auto outcomes = sim::idealOutcomes(ghz(5));
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0], 0u);
    EXPECT_EQ(outcomes[1], 0b11111u);
    EXPECT_THROW(ghz(1), VaqError);
}

TEST(Grover, TwoQubitFindsMarkedWithCertainty)
{
    for (std::uint64_t marked = 0; marked < 4; ++marked) {
        const Circuit c = grover(2, marked);
        const auto outcomes = sim::idealOutcomes(c, 0.5);
        ASSERT_EQ(outcomes.size(), 1u) << marked;
        EXPECT_EQ(outcomes[0], marked);
    }
}

TEST(Grover, ThreeQubitAmplifiesMarked)
{
    for (std::uint64_t marked : {0ULL, 3ULL, 5ULL, 7ULL}) {
        const Circuit c = grover(3, marked);
        sim::StateVector state(3);
        state.applyUnitaries(c);
        // Two optimal iterations give ~94.5 % success.
        EXPECT_NEAR(state.probability(marked), 0.945, 0.01)
            << marked;
    }
}

TEST(Grover, Validation)
{
    EXPECT_THROW(grover(4, 0), VaqError);
    EXPECT_THROW(grover(1, 0), VaqError);
    EXPECT_THROW(grover(2, 4), VaqError);
}

TEST(DeutschJozsa, ConstantGivesAllZeros)
{
    const Circuit c = deutschJozsa(4, false);
    const auto outcomes = sim::idealOutcomes(c);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], 0u);
}

TEST(DeutschJozsa, BalancedGivesNonZero)
{
    for (std::uint64_t mask : {0b001ULL, 0b101ULL, 0b111ULL}) {
        const Circuit c = deutschJozsa(4, true, mask);
        const auto outcomes = sim::idealOutcomes(c);
        ASSERT_EQ(outcomes.size(), 1u) << mask;
        EXPECT_EQ(outcomes[0], mask);
        EXPECT_NE(outcomes[0], 0u);
    }
}

TEST(DeutschJozsa, Validation)
{
    EXPECT_THROW(deutschJozsa(1, false), VaqError);
    EXPECT_THROW(deutschJozsa(4, true, 0), VaqError);
    EXPECT_THROW(deutschJozsa(4, true, 0b1000), VaqError);
}

TEST(TriSwap, MovesExcitationAround)
{
    const Circuit c = triSwap();
    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_EQ(c.swapCount(), 3u);
    const auto outcomes = sim::idealOutcomes(c);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], 0b100u);
}

TEST(RandomCnot, RespectsHopBand)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const auto &hops = q20.hopDistances();
    const Circuit c = randomCnot(q20, 200, 3, 6, 42);
    for (const auto &g : c.gates()) {
        if (g.kind != circuit::GateKind::CX)
            continue;
        const int d = hops[static_cast<std::size_t>(g.q0)]
                          [static_cast<std::size_t>(g.q1)];
        EXPECT_GE(d, 3);
        EXPECT_LE(d, 6);
    }
}

TEST(RandomCnot, RepeatsPairsFromPool)
{
    // "Repeated randomized CNOTs": distinct pairs must be far
    // fewer than CNOT instructions.
    const auto q20 = topology::ibmQ20Tokyo();
    const Circuit c = randomCnot(q20, 200, 1, 2, 7);
    std::set<std::pair<int, int>> pairs;
    std::size_t cnots = 0;
    for (const auto &g : c.gates()) {
        if (g.kind != circuit::GateKind::CX)
            continue;
        ++cnots;
        pairs.emplace(std::min(g.q0, g.q1),
                      std::max(g.q0, g.q1));
    }
    EXPECT_GT(cnots, 100u);
    EXPECT_LE(pairs.size(), 20u);
}

TEST(RandomCnot, DeterministicPerSeed)
{
    const auto q20 = topology::ibmQ20Tokyo();
    EXPECT_EQ(randomCnot(q20, 50, 1, 2, 9),
              randomCnot(q20, 50, 1, 2, 9));
    EXPECT_NE(randomCnot(q20, 50, 1, 2, 9),
              randomCnot(q20, 50, 1, 2, 10));
}

TEST(RandomCnot, ImpossibleBandRejected)
{
    const auto q5 = topology::ibmQ5Tenerife();
    EXPECT_THROW(randomCnot(q5, 10, 5, 9, 1), VaqError);
    EXPECT_THROW(randomCnot(q5, 0, 1, 2, 1), VaqError);
}

TEST(Suites, StandardSuiteMatchesTable1)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const auto suite = standardSuite(q20);
    ASSERT_EQ(suite.size(), 7u);
    EXPECT_EQ(suite[0].name, "alu");
    EXPECT_EQ(suite[1].name, "bv-16");
    EXPECT_EQ(suite[2].name, "bv-20");
    EXPECT_EQ(suite[3].name, "qft-12");
    EXPECT_EQ(suite[4].name, "qft-14");
    EXPECT_EQ(suite[5].name, "rnd-SD");
    EXPECT_EQ(suite[6].name, "rnd-LD");

    // Qubit counts straight from Table 1.
    EXPECT_EQ(suite[0].circuit.numQubits(), 10);
    EXPECT_EQ(suite[1].circuit.numQubits(), 16);
    EXPECT_EQ(suite[2].circuit.numQubits(), 20);
    EXPECT_EQ(suite[3].circuit.numQubits(), 12);
    EXPECT_EQ(suite[4].circuit.numQubits(), 14);
    EXPECT_EQ(suite[5].circuit.numQubits(), 20);
    EXPECT_EQ(suite[6].circuit.numQubits(), 20);
}

TEST(Suites, TenQubitSuiteForPartitioning)
{
    const auto suite = tenQubitSuite();
    ASSERT_EQ(suite.size(), 3u);
    for (const auto &w : suite)
        EXPECT_EQ(w.circuit.numQubits(), 10) << w.name;
}

TEST(Suites, Q5SuiteFitsTenerife)
{
    const auto suite = q5Suite();
    ASSERT_EQ(suite.size(), 4u);
    for (const auto &w : suite)
        EXPECT_LE(w.circuit.numQubits(), 5) << w.name;
}

} // namespace
} // namespace vaq::workloads
