/**
 * @file
 * The FNV-1a helpers are the foundation of every content-addressed
 * cache key (path caches, artifact store), so their edge cases are
 * pinned here — above all the signed-zero normalization: -0.0 and
 * +0.0 compare equal, so they must hash equal or snapshots with
 * "the same" data would miss caches and duplicate store records.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "common/hashing.hpp"

namespace vaq
{
namespace
{

TEST(Hashing, SignedZerosHashEqual)
{
    ASSERT_EQ(0.0, -0.0); // the invariant the hash must mirror
    EXPECT_EQ(hashCombine(kHashSeed, 0.0),
              hashCombine(kHashSeed, -0.0));
    // ...even though their bit patterns differ.
    EXPECT_NE(std::bit_cast<std::uint64_t>(0.0),
              std::bit_cast<std::uint64_t>(-0.0));
}

TEST(Hashing, DistinctValuesHashDistinct)
{
    const std::uint64_t zero = hashCombine(kHashSeed, 0.0);
    EXPECT_NE(zero, hashCombine(kHashSeed, 1.0));
    EXPECT_NE(zero,
              hashCombine(kHashSeed,
                          std::numeric_limits<double>::min()));
    EXPECT_NE(zero,
              hashCombine(kHashSeed,
                          -std::numeric_limits<double>::denorm_min()));
    EXPECT_NE(hashCombine(kHashSeed, 1.0),
              hashCombine(kHashSeed, -1.0));
}

TEST(Hashing, NansKeepTheirBitPattern)
{
    const double qnan = std::numeric_limits<double>::quiet_NaN();
    // NaNs never compare equal, so no normalization applies: the
    // hash is simply the raw-bit hash, and different payloads hash
    // differently.
    EXPECT_EQ(hashCombine(kHashSeed, qnan),
              hashCombine(kHashSeed,
                          std::bit_cast<std::uint64_t>(qnan)));
    const double other_nan = std::bit_cast<double>(
        std::bit_cast<std::uint64_t>(qnan) ^ 1u);
    ASSERT_TRUE(std::isnan(other_nan));
    EXPECT_NE(hashCombine(kHashSeed, qnan),
              hashCombine(kHashSeed, other_nan));
}

TEST(Hashing, ChainsAreOrderSensitive)
{
    std::uint64_t ab = hashCombine(kHashSeed, std::uint64_t{1});
    ab = hashCombine(ab, std::uint64_t{2});
    std::uint64_t ba = hashCombine(kHashSeed, std::uint64_t{2});
    ba = hashCombine(ba, std::uint64_t{1});
    EXPECT_NE(ab, ba);
}

} // namespace
} // namespace vaq
