#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vaq
{
namespace
{

TEST(Histogram, ConstructionValidation)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), VaqError);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), VaqError);
    EXPECT_NO_THROW(Histogram(0.0, 1.0, 1));
}

TEST(Histogram, BinAssignment)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(5.0); // exactly on an inner edge -> upper bin
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.count(5), 1u);
    EXPECT_EQ(h.totalCount(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(99.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, FrequenciesSumToOne)
{
    Histogram h(0.0, 1.0, 8);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        h.add(rng.uniform());
    double total = 0.0;
    for (std::size_t i = 0; i < h.binCount(); ++i)
        total += h.frequency(i);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, EmptyFrequenciesAreZero)
{
    Histogram h(0.0, 1.0, 4);
    for (std::size_t i = 0; i < h.binCount(); ++i)
        EXPECT_EQ(h.frequency(i), 0.0);
}

TEST(Histogram, BinCentersAndWidth)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binWidth(), 2.0);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
    EXPECT_THROW(h.binCenter(5), VaqError);
}

TEST(Histogram, BatchAdd)
{
    Histogram h(0.0, 4.0, 4);
    h.add(std::vector<double>{0.5, 1.5, 2.5, 3.5});
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(h.count(i), 1u);
}

TEST(Histogram, RenderContainsLabelAndBars)
{
    Histogram h(0.0, 1.0, 2);
    for (int i = 0; i < 10; ++i)
        h.add(0.25);
    const std::string text = h.render("T1 Coherence (us)");
    EXPECT_NE(text.find("T1 Coherence (us)"), std::string::npos);
    EXPECT_NE(text.find('#'), std::string::npos);
    EXPECT_NE(text.find("10 samples"), std::string::npos);
}

} // namespace
} // namespace vaq
