#include "common/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace vaq
{
namespace
{

TEST(TextTable, RequiresColumns)
{
    EXPECT_THROW(TextTable({}), VaqError);
}

TEST(TextTable, RowArityChecked)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), VaqError);
    EXPECT_NO_THROW(t.addRow({"1", "2"}));
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(TextTable, RenderAlignsColumns)
{
    TextTable t({"Benchmark", "PST"});
    t.addRow({"bv-16", "0.29"});
    t.addRow({"qft-14", "0.0001"});
    const std::string text = t.render();
    EXPECT_NE(text.find("Benchmark"), std::string::npos);
    EXPECT_NE(text.find("bv-16"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    // Header and rows occupy separate lines.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TextTable, CsvEscapesSpecialCharacters)
{
    TextTable t({"name", "note"});
    t.addRow({"a,b", "say \"hi\""});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, CsvRoundStructure)
{
    TextTable t({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "x,y\n1,2\n");
}

TEST(WriteFile, WritesAndFails)
{
    const std::string path = "/tmp/vaq_table_test.txt";
    writeFile(path, "hello");
    std::ifstream in(path);
    std::string content;
    std::getline(in, content);
    EXPECT_EQ(content, "hello");
    std::remove(path.c_str());

    EXPECT_THROW(writeFile("/nonexistent-dir/x.txt", "y"),
                 VaqError);
}

} // namespace
} // namespace vaq
