#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vaq
{
namespace
{

TEST(Strings, TrimVariants)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nx\r "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(Strings, SplitBasics)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields)
{
    const auto parts = split("a,,c,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField)
{
    const auto parts = split("alone", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("qreg q[5];", "qreg"));
    EXPECT_FALSE(startsWith("qreg", "qregister"));
    EXPECT_TRUE(startsWith("anything", ""));
}

TEST(Strings, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(0.5, 4), "0.5000");
    EXPECT_EQ(formatDouble(-1.0, 0), "-1");
}

TEST(Strings, ParseDoubleHappyPath)
{
    EXPECT_DOUBLE_EQ(parseDouble("3.5"), 3.5);
    EXPECT_DOUBLE_EQ(parseDouble("  -0.25 "), -0.25);
    EXPECT_DOUBLE_EQ(parseDouble("1e-3"), 0.001);
}

TEST(Strings, ParseDoubleRejectsGarbage)
{
    EXPECT_THROW(parseDouble(""), VaqError);
    EXPECT_THROW(parseDouble("abc"), VaqError);
    EXPECT_THROW(parseDouble("1.5x"), VaqError);
}

TEST(Strings, ParseSizeHappyPath)
{
    EXPECT_EQ(parseSize("42"), 42u);
    EXPECT_EQ(parseSize(" 7 "), 7u);
    EXPECT_EQ(parseSize("0"), 0u);
}

TEST(Strings, ParseSizeRejectsGarbage)
{
    EXPECT_THROW(parseSize(""), VaqError);
    EXPECT_THROW(parseSize("-3"), VaqError);
    EXPECT_THROW(parseSize("12.5"), VaqError);
    EXPECT_THROW(parseSize("x"), VaqError);
}

} // namespace
} // namespace vaq
