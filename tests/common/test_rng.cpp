#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace vaq
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.uniform());
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-2.5, 7.5);
        EXPECT_GE(x, -2.5);
        EXPECT_LT(x, 7.5);
    }
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(std::uint64_t{7}));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntIsUnbiased)
{
    Rng rng(17);
    std::vector<int> counts(5, 0);
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.uniformInt(std::uint64_t{5})];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c), trials / 5.0,
                    trials * 0.01);
}

TEST(Rng, SignedUniformIntInclusiveBounds)
{
    Rng rng(23);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformInt(std::int64_t{-3},
                                      std::int64_t{3});
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-0.5));
        EXPECT_TRUE(rng.bernoulli(1.5));
    }
}

TEST(Rng, BernoulliFrequencyMatchesP)
{
    Rng rng(9);
    int hits = 0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
}

TEST(Rng, GaussMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.gauss(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, TruncatedGaussStaysInBounds)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.truncatedGauss(0.0, 5.0, -1.0, 1.0);
        EXPECT_GE(x, -1.0);
        EXPECT_LE(x, 1.0);
    }
}

TEST(Rng, LogNormalIsPositive)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.logNormal(-3.0, 1.0), 0.0);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(37);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[static_cast<std::size_t>(i)] = i;
    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, v);
}

TEST(Rng, ChoiceReturnsMember)
{
    Rng rng(41);
    const std::vector<int> v{10, 20, 30};
    for (int i = 0; i < 100; ++i) {
        const int x = rng.choice(v);
        EXPECT_TRUE(x == 10 || x == 20 || x == 30);
    }
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(47);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent() == child())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, SiblingSplitsAreMutuallyIndependent)
{
    // The parallel trial engine derives one stream per chunk by
    // repeated splits of the master seed; sibling streams must not
    // collide or correlate.
    Rng parent(53);
    Rng a = parent.split();
    Rng b = parent.split();
    Rng c = parent.split();
    int equalAb = 0, equalBc = 0;
    for (int i = 0; i < 100; ++i) {
        const auto xa = a(), xb = b(), xc = c();
        equalAb += xa == xb ? 1 : 0;
        equalBc += xb == xc ? 1 : 0;
    }
    EXPECT_LT(equalAb, 3);
    EXPECT_LT(equalBc, 3);
}

TEST(Rng, SiblingSplitMeansStayUniform)
{
    Rng parent(59);
    for (int s = 0; s < 4; ++s) {
        Rng child = parent.split();
        RunningStats stats;
        for (int i = 0; i < 20000; ++i)
            stats.add(child.uniform());
        EXPECT_NEAR(stats.mean(), 0.5, 0.02);
    }
}

TEST(Rng, SplitSequenceIsDeterministic)
{
    Rng parentA(61), parentB(61);
    for (int s = 0; s < 5; ++s) {
        Rng a = parentA.split();
        Rng b = parentB.split();
        for (int i = 0; i < 20; ++i)
            EXPECT_EQ(a(), b());
    }
}

} // namespace
} // namespace vaq
