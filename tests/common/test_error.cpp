#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace vaq
{
namespace
{

TEST(Error, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(require(true, "never thrown"));
}

TEST(Error, RequireThrowsWithMessage)
{
    try {
        require(false, "bad input");
        FAIL() << "expected VaqError";
    } catch (const VaqError &e) {
        EXPECT_EQ(std::string(e.what()), "bad input");
    }
}

TEST(Error, AssertMacroThrowsInternalError)
{
    EXPECT_THROW(VAQ_ASSERT(1 == 2, "impossible"),
                 VaqInternalError);
    EXPECT_NO_THROW(VAQ_ASSERT(1 == 1, "fine"));
}

TEST(Error, AssertMessageHasContext)
{
    try {
        VAQ_ASSERT(false, "diagnostic detail");
        FAIL() << "expected VaqInternalError";
    } catch (const VaqInternalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("diagnostic detail"),
                  std::string::npos);
        EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
        EXPECT_NE(what.find("false"), std::string::npos);
    }
}

TEST(Error, ErrorTypesAreDistinct)
{
    // User errors are runtime_error; internal bugs are logic_error,
    // so catch sites can separate them.
    EXPECT_THROW(throw VaqError("x"), std::runtime_error);
    EXPECT_THROW(throw VaqInternalError("y"), std::logic_error);
}

TEST(Error, TaxonomyCarriesCategories)
{
    EXPECT_EQ(VaqError("x").category(), ErrorCategory::Usage);
    EXPECT_EQ(CalibrationError("x").category(),
              ErrorCategory::Calibration);
    EXPECT_EQ(RoutingError("x").category(),
              ErrorCategory::Routing);
    EXPECT_EQ(CompileError("x").category(),
              ErrorCategory::Compile);
    EXPECT_EQ(TimeoutError("x").category(),
              ErrorCategory::Timeout);

    // Taxonomy errors still flow through existing VaqError sites.
    EXPECT_THROW(throw CalibrationError("x"), VaqError);
    EXPECT_THROW(throw TimeoutError("x"), VaqError);
}

TEST(Error, CategoryNamesAreStable)
{
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Usage), "usage");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Calibration),
                 "calibration");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Routing),
                 "routing");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Compile),
                 "compile");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Timeout),
                 "timeout");
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Internal),
                 "internal");
}

TEST(Error, ContextChainComposesInnermostFirst)
{
    VaqError e("matrix is singular");
    e.addContext("compiling batch job 17");
    e.addContext("cycle 3 of series");
    EXPECT_EQ(e.message(), "matrix is singular");
    ASSERT_EQ(e.contextChain().size(), 2u);
    EXPECT_EQ(e.contextChain()[0], "compiling batch job 17");
    EXPECT_EQ(e.contextChain()[1], "cycle 3 of series");
    EXPECT_EQ(std::string(e.what()),
              "matrix is singular [compiling batch job 17; "
              "cycle 3 of series]");
}

TEST(Error, StructuredFieldsSurviveTheMessage)
{
    const CalibrationError cal("dead readout", 3);
    EXPECT_EQ(cal.qubit(), 3);
    EXPECT_EQ(cal.link(), -1);
    EXPECT_NE(std::string(cal.what()).find("qubit 3"),
              std::string::npos);

    const CalibrationError link("dead link", -1, 5);
    EXPECT_EQ(link.link(), 5);
    EXPECT_NE(std::string(link.what()).find("link 5"),
              std::string::npos);

    const RoutingError route("no path", 1, 4);
    EXPECT_EQ(route.qubitA(), 1);
    EXPECT_EQ(route.qubitB(), 4);

    const TimeoutError timeout("deadline of 20 ms exceeded", 20.0);
    EXPECT_EQ(timeout.budgetMs(), 20.0);
}

TEST(Error, CategorizeClassifiesArbitraryExceptions)
{
    EXPECT_EQ(categorize(CalibrationError("x")),
              ErrorCategory::Calibration);
    EXPECT_EQ(categorize(TimeoutError("x")),
              ErrorCategory::Timeout);
    EXPECT_EQ(categorize(VaqError("x")), ErrorCategory::Usage);
    EXPECT_EQ(categorize(VaqInternalError("x")),
              ErrorCategory::Internal);
    EXPECT_EQ(categorize(std::runtime_error("x")),
              ErrorCategory::Internal);
}

} // namespace
} // namespace vaq
