#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace vaq
{
namespace
{

TEST(Error, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(require(true, "never thrown"));
}

TEST(Error, RequireThrowsWithMessage)
{
    try {
        require(false, "bad input");
        FAIL() << "expected VaqError";
    } catch (const VaqError &e) {
        EXPECT_EQ(std::string(e.what()), "bad input");
    }
}

TEST(Error, AssertMacroThrowsInternalError)
{
    EXPECT_THROW(VAQ_ASSERT(1 == 2, "impossible"),
                 VaqInternalError);
    EXPECT_NO_THROW(VAQ_ASSERT(1 == 1, "fine"));
}

TEST(Error, AssertMessageHasContext)
{
    try {
        VAQ_ASSERT(false, "diagnostic detail");
        FAIL() << "expected VaqInternalError";
    } catch (const VaqInternalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("diagnostic detail"),
                  std::string::npos);
        EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
        EXPECT_NE(what.find("false"), std::string::npos);
    }
}

TEST(Error, ErrorTypesAreDistinct)
{
    // User errors are runtime_error; internal bugs are logic_error,
    // so catch sites can separate them.
    EXPECT_THROW(throw VaqError("x"), std::runtime_error);
    EXPECT_THROW(throw VaqInternalError("y"), std::logic_error);
}

} // namespace
} // namespace vaq
