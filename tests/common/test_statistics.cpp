#include "common/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vaq
{
namespace
{

TEST(RunningStats, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_THROW(s.min(), VaqError);
    EXPECT_THROW(s.max(), VaqError);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownBatch)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic batch is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(3);
    RunningStats whole, partA, partB;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gauss(3.0, 1.5);
        whole.add(x);
        (i % 2 == 0 ? partA : partB).add(x);
    }
    partA.merge(partB);
    EXPECT_EQ(partA.count(), whole.count());
    EXPECT_NEAR(partA.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(partA.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(partA.min(), whole.min());
    EXPECT_DOUBLE_EQ(partA.max(), whole.max());
}

TEST(RunningStats, MergeIsAssociative)
{
    // The parallel trial engine reduces per-chunk tallies with
    // merge(); any chunking of the stream must agree with the
    // single-stream accumulator.
    Rng rng(11);
    std::vector<double> xs(3000);
    for (double &x : xs)
        x = rng.gauss(-2.0, 4.0);

    RunningStats whole;
    RunningStats parts[3];
    for (std::size_t i = 0; i < xs.size(); ++i) {
        whole.add(xs[i]);
        parts[i % 3].add(xs[i]);
    }

    RunningStats leftFold = parts[0];
    leftFold.merge(parts[1]);
    leftFold.merge(parts[2]);

    RunningStats rightFold = parts[1];
    rightFold.merge(parts[2]);
    RunningStats rightAssoc = parts[0];
    rightAssoc.merge(rightFold);

    for (const RunningStats &merged : {leftFold, rightAssoc}) {
        EXPECT_EQ(merged.count(), whole.count());
        EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
        EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
        EXPECT_DOUBLE_EQ(merged.min(), whole.min());
        EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    }
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 1.5);

    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Statistics, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_THROW(mean({}), VaqError);
}

TEST(Statistics, StddevMatchesRunningStats)
{
    const std::vector<double> xs{1.0, 3.0, 5.0, 7.0};
    RunningStats s;
    for (double x : xs)
        s.add(x);
    EXPECT_NEAR(stddev(xs), s.stddev(), 1e-12);
}

TEST(Statistics, StddevDegenerate)
{
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Statistics, GeomeanKnownValues)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    // The paper's Table 3: geomean of the relative benefits.
    EXPECT_NEAR(geomean({1.22, 1.09, 1.90, 1.35}),
                std::pow(1.22 * 1.09 * 1.90 * 1.35, 0.25), 1e-12);
}

TEST(Statistics, GeomeanRejectsBadInput)
{
    EXPECT_THROW(geomean({}), VaqError);
    EXPECT_THROW(geomean({1.0, 0.0}), VaqError);
    EXPECT_THROW(geomean({1.0, -2.0}), VaqError);
}

TEST(Statistics, PercentileInterpolates)
{
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Statistics, PercentileValidation)
{
    EXPECT_THROW(percentile({}, 50.0), VaqError);
    EXPECT_THROW(percentile({1.0}, -1.0), VaqError);
    EXPECT_THROW(percentile({1.0}, 101.0), VaqError);
    EXPECT_DOUBLE_EQ(percentile({3.0}, 50.0), 3.0);
}

TEST(Statistics, CoefficientOfVariation)
{
    // CoV matches the two-qubit error stats from the paper's
    // Section 3.3: mean 4.3 %, sigma 3.02 % -> CoV ~= 0.70.
    const std::vector<double> sample{0.013, 0.043, 0.073};
    EXPECT_NEAR(coefficientOfVariation(sample), 0.03 / 0.043,
                1e-9);
    EXPECT_THROW(coefficientOfVariation({0.0, 0.0}), VaqError);
}

} // namespace
} // namespace vaq
