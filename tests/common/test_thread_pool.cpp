#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace vaq
{
namespace
{

TEST(ThreadPool, DefaultHasAtLeastOneWorker)
{
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1u);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPool, ExplicitWorkerCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(257);
    pool.parallelFor(visits.size(),
                     [&](std::size_t i) { ++visits[i]; });
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, PoolIsReusableAcrossBursts)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    for (int burst = 0; burst < 10; ++burst)
        pool.parallelFor(100, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, IndexedOutputNeedsNoSynchronization)
{
    ThreadPool pool(8);
    std::vector<std::size_t> out(1000, 0);
    pool.parallelFor(out.size(),
                     [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(16,
                                  [&](std::size_t i) {
                                      ++ran;
                                      if (i == 5)
                                          throw VaqError("boom");
                                  }),
                 VaqError);
    // Every task still ran; the pool is not poisoned.
    EXPECT_EQ(ran.load(), 16);
    std::atomic<int> again{0};
    pool.parallelFor(4, [&](std::size_t) { ++again; });
    EXPECT_EQ(again.load(), 4);
}

TEST(ThreadPool, ParallelForAllCollectsPerIndexErrors)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    const auto errors =
        pool.parallelForAll(32, [&](std::size_t i) {
            ++ran;
            if (i == 3)
                throw VaqError("three");
            if (i == 17)
                throw VaqInternalError("seventeen");
        });
    EXPECT_EQ(ran.load(), 32);
    ASSERT_EQ(errors.size(), 32u);
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i == 3 || i == 17)
            EXPECT_TRUE(errors[i]) << "index " << i;
        else
            EXPECT_FALSE(errors[i]) << "index " << i;
    }
    // Each slot carries the exception its own index threw.
    try {
        std::rethrow_exception(errors[3]);
    } catch (const VaqError &e) {
        EXPECT_EQ(e.message(), "three");
    }
    EXPECT_THROW(std::rethrow_exception(errors[17]),
                 VaqInternalError);
}

TEST(ThreadPool, ParallelForAllCleanRunHasNoErrors)
{
    ThreadPool pool(2);
    const auto errors =
        pool.parallelForAll(10, [](std::size_t) {});
    ASSERT_EQ(errors.size(), 10u);
    for (const auto &e : errors)
        EXPECT_FALSE(e);
    EXPECT_TRUE(pool.parallelForAll(0, [](std::size_t) {}).empty());
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexError)
{
    ThreadPool pool(4);
    // Both 2 and 9 throw; the caller must see index 2's error so
    // the failure is deterministic across schedules.
    try {
        pool.parallelFor(16, [](std::size_t i) {
            if (i == 9)
                throw VaqError("nine");
            if (i == 2)
                throw VaqError("two");
        });
        FAIL() << "expected VaqError";
    } catch (const VaqError &e) {
        EXPECT_EQ(e.message(), "two");
    }
}

TEST(ThreadPool, SingleWorkerStillCompletesAllTasks)
{
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallelFor(50, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    // One worker drains the queue in submission order.
    std::vector<int> expected(50);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

} // namespace
} // namespace vaq
