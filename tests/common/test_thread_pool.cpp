#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace vaq
{
namespace
{

TEST(ThreadPool, DefaultHasAtLeastOneWorker)
{
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1u);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPool, ExplicitWorkerCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(257);
    pool.parallelFor(visits.size(),
                     [&](std::size_t i) { ++visits[i]; });
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, PoolIsReusableAcrossBursts)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    for (int burst = 0; burst < 10; ++burst)
        pool.parallelFor(100, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, IndexedOutputNeedsNoSynchronization)
{
    ThreadPool pool(8);
    std::vector<std::size_t> out(1000, 0);
    pool.parallelFor(out.size(),
                     [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(16,
                                  [&](std::size_t i) {
                                      ++ran;
                                      if (i == 5)
                                          throw VaqError("boom");
                                  }),
                 VaqError);
    // Every task still ran; the pool is not poisoned.
    EXPECT_EQ(ran.load(), 16);
    std::atomic<int> again{0};
    pool.parallelFor(4, [&](std::size_t) { ++again; });
    EXPECT_EQ(again.load(), 4);
}

TEST(ThreadPool, SingleWorkerStillCompletesAllTasks)
{
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallelFor(50, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    // One worker drains the queue in submission order.
    std::vector<int> expected(50);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

} // namespace
} // namespace vaq
