/**
 * @file
 * Shared helpers for the libvaq test suite.
 */
#ifndef VAQ_TESTS_TEST_SUPPORT_HPP
#define VAQ_TESTS_TEST_SUPPORT_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "core/mapped_circuit.hpp"
#include "sim/statevector.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::test
{

/** Snapshot with every error/coherence field set to one value. */
inline calibration::Snapshot
uniformSnapshot(const topology::CouplingGraph &graph,
                double err2q = 0.04, double err1q = 0.003,
                double readout = 0.03, double t1_us = 80.0,
                double t2_us = 42.0)
{
    calibration::Snapshot snap(graph);
    for (int q = 0; q < graph.numQubits(); ++q) {
        auto &cal = snap.qubit(q);
        cal.t1Us = t1_us;
        cal.t2Us = t2_us;
        cal.error1q = err1q;
        cal.readoutError = readout;
    }
    for (std::size_t l = 0; l < graph.linkCount(); ++l)
        snap.setLinkError(l, err2q);
    return snap;
}

/** Snapshot with per-link errors drawn uniformly from [lo, hi]. */
inline calibration::Snapshot
randomSnapshot(const topology::CouplingGraph &graph, Rng &rng,
               double lo = 0.01, double hi = 0.15)
{
    calibration::Snapshot snap = uniformSnapshot(graph);
    for (std::size_t l = 0; l < graph.linkCount(); ++l)
        snap.setLinkError(l, rng.uniform(lo, hi));
    for (int q = 0; q < graph.numQubits(); ++q) {
        snap.qubit(q).error1q = rng.uniform(0.0005, 0.01);
        snap.qubit(q).readoutError = rng.uniform(0.01, 0.08);
    }
    return snap;
}

/** Random unitary-only circuit over n qubits (no measures). */
inline circuit::Circuit
randomCircuit(int num_qubits, int num_gates, Rng &rng)
{
    circuit::Circuit c(num_qubits);
    for (int i = 0; i < num_gates; ++i) {
        const auto pick = rng.uniformInt(std::uint64_t{6});
        const auto q = static_cast<circuit::Qubit>(
            rng.uniformInt(static_cast<std::uint64_t>(num_qubits)));
        switch (pick) {
          case 0: c.h(q); break;
          case 1: c.t(q); break;
          case 2: c.x(q); break;
          case 3: c.rz(q, rng.uniform(0.0, 3.14)); break;
          default: {
            if (num_qubits < 2) {
                c.h(q);
                break;
            }
            circuit::Qubit other;
            do {
                other = static_cast<circuit::Qubit>(rng.uniformInt(
                    static_cast<std::uint64_t>(num_qubits)));
            } while (other == q);
            c.cx(q, other);
            break;
          }
        }
    }
    return c;
}

/**
 * Probability distribution over *program* qubits obtained by
 * executing the mapped physical circuit (unitaries only) and
 * reading each program qubit at its final physical location.
 */
inline std::map<std::uint64_t, double>
mappedProgramDistribution(const core::MappedCircuit &mapped)
{
    sim::StateVector state(mapped.physical.numQubits());
    state.applyUnitaries(mapped.physical);
    std::map<std::uint64_t, double> dist;
    const std::uint64_t dim = state.dimension();
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
        const double p = state.probability(basis);
        if (p > 1e-12)
            dist[mapped.logicalOutcome(basis)] += p;
    }
    return dist;
}

/** Probability distribution of a logical circuit (unitaries only). */
inline std::map<std::uint64_t, double>
logicalDistribution(const circuit::Circuit &logical)
{
    sim::StateVector state(logical.numQubits());
    state.applyUnitaries(logical);
    std::map<std::uint64_t, double> dist;
    const std::uint64_t dim = state.dimension();
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
        const double p = state.probability(basis);
        if (p > 1e-12)
            dist[basis] += p;
    }
    return dist;
}

/** Max absolute probability difference between two distributions. */
inline double
distributionDistance(const std::map<std::uint64_t, double> &a,
                     const std::map<std::uint64_t, double> &b)
{
    double worst = 0.0;
    for (const auto &[k, v] : a) {
        const auto it = b.find(k);
        const double other = it == b.end() ? 0.0 : it->second;
        worst = std::max(worst, std::abs(v - other));
    }
    for (const auto &[k, v] : b) {
        if (a.find(k) == a.end())
            worst = std::max(worst, v);
    }
    return worst;
}

} // namespace vaq::test

#endif // VAQ_TESTS_TEST_SUPPORT_HPP
