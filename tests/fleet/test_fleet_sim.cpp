/**
 * @file
 * FleetSim tests: scripted fault scenarios (outage failover,
 * corruption tripping the breaker and healing at rollover, latency
 * spikes steering deadline-aware placement, partial quarantine
 * degrading compiles), the replicate policy, StatsHub publication,
 * the determinism contract (byte-identical summaries across repeats
 * and prewarm thread counts), and the chaos acceptance gap: under
 * an injected outage+corruption mix the failover+breaker scheduler
 * keeps >= 95% of jobs within deadline while the no-failover
 * baseline measurably does not.
 */
#include "fleet/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fleet/stats.hpp"
#include "workloads/workloads.hpp"

namespace vaq::fleet
{
namespace
{

std::vector<circuit::Circuit>
smallWorkload()
{
    std::vector<circuit::Circuit> circuits;
    circuits.push_back(workloads::ghz(4));
    circuits.push_back(workloads::bernsteinVazirani(4));
    circuits.push_back(workloads::qft(4));
    return circuits;
}

/** Two-machine fleet for the scripted scenarios. */
std::vector<BackendSpec>
pairFleet()
{
    BackendSpec a;
    a.name = "alpha";
    a.graph = topology::ibmQ20Tokyo();
    a.calibrationSeed = 101;
    BackendSpec b;
    b.name = "beta";
    b.graph = topology::grid(4, 4);
    b.calibrationSeed = 202;
    return {a, b};
}

std::vector<FleetJob>
steadyJobs(std::size_t count, double deadlineUs = 80000.0,
           std::size_t shots = 512)
{
    JobStreamParams params;
    params.count = count;
    params.meanInterarrivalUs = 2500.0;
    params.relativeDeadlineUs = deadlineUs;
    params.shots = shots;
    return makeJobStream(smallWorkload().size(), params, 17);
}

FleetSummary
runScenario(const FleetOptions &options, const FaultPlan &plan,
            const std::vector<FleetJob> &jobs,
            std::vector<BackendSpec> specs = pairFleet())
{
    FleetSim sim(std::move(specs), smallWorkload(), options, plan);
    return sim.run(jobs);
}

/** Which machine takes the placements in a fault-free run —
 *  the scripted faults then target it. */
std::size_t
preferredMachine(const FleetOptions &options,
                 const std::vector<FleetJob> &jobs)
{
    const FleetSummary clean =
        runScenario(options, FaultPlan{}, jobs);
    std::size_t best = 0;
    for (std::size_t i = 1; i < clean.machines.size(); ++i) {
        if (clean.machines[i].placements >
            clean.machines[best].placements)
            best = i;
    }
    return best;
}

TEST(FleetSim, CleanRunCompletesEverythingDeterministically)
{
    FleetOptions options;
    options.seed = 17;
    const std::vector<FleetJob> jobs = steadyJobs(40);
    const FleetSummary a = runScenario(options, FaultPlan{}, jobs);
    EXPECT_EQ(a.jobs, 40u);
    EXPECT_EQ(a.completed, 40u);
    EXPECT_EQ(a.withinDeadline, 40u);
    EXPECT_EQ(a.failed, 0u);
    EXPECT_EQ(a.timedOut, 0u);
    EXPECT_GT(a.stpt, 0.0);
    EXPECT_GT(a.makespanUs, 0.0);

    const FleetSummary b = runScenario(options, FaultPlan{}, jobs);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(FleetSim, OutageFailsOverToTheOtherMachine)
{
    FleetOptions options;
    options.seed = 17;
    // Heavy shots: service time dwarfs the interarrival gap, so the
    // queue builds and the outage catches copies in flight.
    const std::vector<FleetJob> jobs = steadyJobs(40, 0.0, 8000);
    const std::size_t target = preferredMachine(options, jobs);

    // Hard-down the preferred machine across the middle third of
    // the arrival window: in-flight copies on it die with the
    // outage's Internal category and must land on the other box.
    FaultEvent outage;
    outage.timeUs = 30000.0;
    outage.machine = target;
    outage.kind = FaultKind::Outage;
    outage.durationUs = 40000.0;
    FaultPlan plan;
    plan.events.push_back(outage);

    const FleetSummary failover = runScenario(options, plan, jobs);
    EXPECT_EQ(failover.completed, failover.jobs);
    EXPECT_GT(failover.machines[1 - target].placements, 0u);
    EXPECT_GT(failover.faultsInjected, 0u);
    EXPECT_GT(failover.machines[target].downtimeUs, 0.0);

    FleetOptions baselineOptions = options;
    baselineOptions.failover = false;
    const FleetSummary baseline =
        runScenario(baselineOptions, plan, jobs);
    // The naive arm loses whatever the outage caught in flight.
    EXPECT_LE(baseline.completed, failover.completed);
    EXPECT_GE(failover.retries + failover.failovers, 1u);
}

TEST(FleetSim, CorruptionTripsBreakerAndRolloverHeals)
{
    FleetOptions options;
    options.seed = 17;
    options.calibrationPeriodUs = 40000.0;
    const std::vector<FleetJob> jobs = steadyJobs(40);
    const std::size_t target = preferredMachine(options, jobs);

    FaultEvent corruption;
    corruption.timeUs = 10000.0;
    corruption.machine = target;
    corruption.kind = FaultKind::CalCorruption;
    corruption.magnitude = 0.8; // enough poison to reject
    FaultPlan plan;
    plan.events.push_back(corruption);

    const FleetSummary summary = runScenario(options, plan, jobs);
    // The breaker force-opened on the Rejected verdict...
    EXPECT_GE(summary.machines[target].breakerOpens, 1u);
    // ...rollovers healed the snapshot...
    EXPECT_GE(summary.machines[target].rollovers, 1u);
    // ...and the fleet absorbed the loss.
    EXPECT_EQ(summary.completed, summary.jobs);
}

TEST(FleetSim, LatencySpikeSteersDeadlineAwarePlacement)
{
    FleetOptions options;
    options.seed = 17;
    const std::vector<FleetJob> jobs = steadyJobs(40, 40000.0);
    const std::size_t target = preferredMachine(options, jobs);

    // A long, brutal slowdown on the preferred machine: placements
    // made on it during the window cannot meet the deadline, so
    // deadline-aware placement must route around it.
    FaultEvent spike;
    spike.timeUs = 0.0;
    spike.machine = target;
    spike.kind = FaultKind::LatencySpike;
    spike.durationUs = 120000.0;
    spike.magnitude = 2000.0;
    FaultPlan plan;
    plan.events.push_back(spike);

    const FleetSummary failover = runScenario(options, plan, jobs);
    FleetOptions baselineOptions = options;
    baselineOptions.failover = false;
    const FleetSummary baseline =
        runScenario(baselineOptions, plan, jobs);

    EXPECT_GT(failover.machines[1 - target].placements, 0u);
    EXPECT_GT(failover.withinDeadline, baseline.withinDeadline);
}

TEST(FleetSim, PartialQuarantineDegradesButCompletes)
{
    // One-machine fleet: after the quarantine event every compile
    // lands in the healthy region as a Degraded copy.
    std::vector<BackendSpec> specs(1);
    specs[0].name = "solo";
    specs[0].graph = topology::ibmFalcon27();
    specs[0].calibrationSeed = 404;

    FaultEvent quarantine;
    quarantine.timeUs = 5000.0;
    quarantine.machine = 0;
    quarantine.kind = FaultKind::PartialQuarantine;
    // A tenth of the heavy-hex links: enough to shrink the healthy
    // region (Degraded) without shattering it (Rejected).
    quarantine.magnitude = 0.1;
    FaultPlan plan;
    plan.events.push_back(quarantine);

    FleetOptions options;
    options.seed = 17;
    const std::vector<FleetJob> jobs = steadyJobs(30);
    const FleetSummary summary =
        runScenario(options, plan, jobs, specs);
    EXPECT_EQ(summary.completed, summary.jobs);
    EXPECT_GT(summary.degradedCopies, 0u);
}

TEST(FleetSim, ReplicatePolicySplitsStrongJobsIntoCopies)
{
    FleetOptions options;
    options.seed = 17;
    options.policy = PlacementPolicy::Replicate;
    options.replicateThreshold = 0.0; // always worth a weak copy
    const std::vector<FleetJob> jobs = steadyJobs(30);
    const FleetSummary summary =
        runScenario(options, FaultPlan{}, jobs);
    EXPECT_GT(summary.replicatedJobs, 0u);
    EXPECT_EQ(summary.completed, summary.jobs);
    // Both machines served copies.
    EXPECT_GT(summary.machines[0].placements, 0u);
    EXPECT_GT(summary.machines[1].placements, 0u);
}

TEST(FleetSim, PublishesSummaryToStatsHub)
{
    StatsHub::global().reset();
    FleetOptions options;
    options.seed = 17;
    options.statsName = "unit-fleet";
    const std::vector<FleetJob> jobs = steadyJobs(10);
    const FleetSummary summary =
        runScenario(options, FaultPlan{}, jobs);

    const json::Value snapshot = StatsHub::global().snapshot();
    const json::Cursor cursor(snapshot);
    const json::Cursor fleet =
        cursor.at("fleets").at("unit-fleet");
    EXPECT_EQ(fleet.at("jobs").asInt(),
              static_cast<std::int64_t>(summary.jobs));
    EXPECT_EQ(json::write(fleet.value()),
              summary.fingerprint());
    StatsHub::global().reset();
}

/** The chaos fixture the CI smoke and the acceptance gap share:
 *  a seeded outage+corruption mix over the standard fleet. */
FleetSummary
chaosRun(bool failover, std::size_t threads,
         std::uint64_t seed = 7)
{
    JobStreamParams stream;
    stream.count = 150;
    stream.meanInterarrivalUs = 2500.0;
    stream.relativeDeadlineUs = 80000.0;
    const std::vector<FleetJob> jobs =
        makeJobStream(smallWorkload().size(), stream, seed);
    const double horizonUs = jobs.back().arrivalUs;

    FaultPlanParams params;
    params.horizonUs = horizonUs;
    params.faultsPerMachine = 12.0;
    params.outageWeight = 0.6;
    params.corruptionWeight = 0.4;
    params.spikeWeight = 0.0;
    params.quarantineWeight = 0.0;
    params.meanOutageUs = 30000.0;
    const FaultPlan plan =
        generateFaultPlan(4, params, seed * 31 + 5);

    FleetOptions options;
    options.failover = failover;
    options.calibrationPeriodUs = horizonUs / 3.0;
    options.threads = threads;
    options.seed = seed;
    FleetSim sim(standardFleet(seed), smallWorkload(), options,
                 plan);
    return sim.run(jobs);
}

TEST(FleetSim, ChaosSummaryIsByteIdenticalAcrossThreadCounts)
{
    const FleetSummary t1 = chaosRun(true, 1);
    const FleetSummary t4 = chaosRun(true, 4);
    const FleetSummary t8 = chaosRun(true, 8);
    EXPECT_EQ(t1.fingerprint(), t4.fingerprint());
    EXPECT_EQ(t1.fingerprint(), t8.fingerprint());
    // And across repeats at the same thread count.
    const FleetSummary again = chaosRun(true, 4);
    EXPECT_EQ(t4.fingerprint(), again.fingerprint());
}

TEST(FleetSim, FailoverBeatsBaselineUnderOutageCorruptionMix)
{
    const FleetSummary failover = chaosRun(true, 1);
    const FleetSummary baseline = chaosRun(false, 1);
    ASSERT_EQ(failover.jobs, baseline.jobs);
    ASSERT_GT(failover.faultsInjected, 0u);

    const double failoverHit =
        static_cast<double>(failover.withinDeadline) /
        static_cast<double>(failover.jobs);
    const double baselineHit =
        static_cast<double>(baseline.withinDeadline) /
        static_cast<double>(baseline.jobs);
    // The acceptance gap: the robustness layer keeps >= 95% of
    // jobs within deadline under the injected mix; the naive arm
    // measurably does not.
    EXPECT_GE(failoverHit, 0.95)
        << "failover within-deadline " << failover.withinDeadline
        << "/" << failover.jobs;
    EXPECT_LT(baselineHit, 0.95)
        << "baseline within-deadline " << baseline.withinDeadline
        << "/" << baseline.jobs;
    EXPECT_GT(failoverHit, baselineHit);
    // The baseline's losses are real failures, not bookkeeping.
    EXPECT_GT(baseline.failed + baseline.timedOut, 0u);
    EXPECT_GT(failover.retries, 0u);

    // Sanity on the injected intensity: total downtime is a
    // material fraction of fleet capacity, not a rounding error.
    double downtimeUs = 0.0;
    for (const MachineSummary &machine : failover.machines)
        downtimeUs += machine.downtimeUs;
    const double fleetCapacityUs =
        failover.makespanUs *
        static_cast<double>(failover.machines.size());
    EXPECT_GT(downtimeUs / fleetCapacityUs, 0.02);
    EXPECT_LT(downtimeUs / fleetCapacityUs, 0.5);
}

/** Fleet whose rollovers redraw little hardware, so certified
 *  prediction revalidation has something to certify. */
std::vector<BackendSpec>
gentleDriftFleet()
{
    std::vector<BackendSpec> specs = pairFleet();
    for (BackendSpec &spec : specs)
        spec.sparseDriftFraction = 0.1;
    return specs;
}

FleetSummary
predictionReuseRun(double staleness_tol, std::size_t threads)
{
    const std::vector<FleetJob> jobs = steadyJobs(60);
    FleetOptions options;
    options.seed = 17;
    options.threads = threads;
    options.stalenessTol = staleness_tol;
    options.calibrationPeriodUs = jobs.back().arrivalUs / 4.0;
    return runScenario(options, FaultPlan{}, jobs,
                       gentleDriftFleet());
}

std::uint64_t
counterValue(const char *name)
{
    const auto counters =
        obs::Registry::global().snapshot().counters;
    return counters.count(name) ? counters.at(name) : 0;
}

TEST(FleetSim, CertifiedPredictionReuseAcrossRollovers)
{
    obs::setEnabled(true);
    obs::Registry::global().reset();

    // With a tolerance, predictions whose certified bound survives
    // a calibration rollover are revalidated instead of recompiled.
    const FleetSummary tolerant = predictionReuseRun(1e-3, 1);
    EXPECT_EQ(tolerant.completed, tolerant.jobs);
    EXPECT_GT(counterValue("fleet.predict.bound_reuse"), 0u);

    // tol = 0 (the default) never takes the certified path.
    obs::Registry::global().reset();
    const FleetSummary legacy = predictionReuseRun(0.0, 1);
    EXPECT_EQ(legacy.completed, legacy.jobs);
    EXPECT_EQ(counterValue("fleet.predict.bound_reuse"), 0u);
    obs::setEnabled(false);
}

TEST(FleetSim, CertifiedReuseKeepsSummariesByteIdentical)
{
    // The determinism contract holds with the certified path on:
    // byte-equal summaries across prewarm thread counts.
    const FleetSummary t1 = predictionReuseRun(1e-3, 1);
    const FleetSummary t4 = predictionReuseRun(1e-3, 4);
    const FleetSummary t8 = predictionReuseRun(1e-3, 8);
    EXPECT_EQ(t1.fingerprint(), t4.fingerprint());
    EXPECT_EQ(t1.fingerprint(), t8.fingerprint());
}

} // namespace
} // namespace vaq::fleet
