/**
 * @file
 * CircuitBreaker state-machine tests: Closed -> Open on failure
 * rate over the window, lazy Open -> HalfOpen after the cooldown,
 * HalfOpen probe accounting (all-succeed closes, any-fail
 * reopens), wouldAllow never mutating, and window eviction.
 */
#include "fleet/breaker.hpp"

#include <gtest/gtest.h>

namespace vaq::fleet
{
namespace
{

BreakerOptions
tightOptions()
{
    BreakerOptions options;
    options.windowSize = 8;
    options.minSamples = 4;
    options.failureThreshold = 0.5;
    options.cooldownUs = 1000.0;
    options.halfOpenProbes = 2;
    return options;
}

TEST(CircuitBreaker, StaysClosedUnderMinSamples)
{
    CircuitBreaker breaker(tightOptions());
    // Three straight failures: 100% failure rate but below
    // minSamples, so the breaker must not open.
    for (int i = 0; i < 3; ++i)
        breaker.recordFailure(10.0 * i);
    EXPECT_EQ(breaker.state(100.0), BreakerState::Closed);
    EXPECT_TRUE(breaker.wouldAllow(100.0));
    EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreaker, OpensAtFailureThreshold)
{
    CircuitBreaker breaker(tightOptions());
    breaker.recordSuccess(1.0);
    breaker.recordSuccess(2.0);
    breaker.recordFailure(3.0);
    EXPECT_EQ(breaker.state(4.0), BreakerState::Closed);
    breaker.recordFailure(4.0); // 2/4 = threshold
    EXPECT_EQ(breaker.state(5.0), BreakerState::Open);
    EXPECT_FALSE(breaker.wouldAllow(5.0));
    EXPECT_FALSE(breaker.acquire(5.0));
    EXPECT_EQ(breaker.opens(), 1u);
}

TEST(CircuitBreaker, CooldownAdmitsHalfOpenProbes)
{
    const BreakerOptions options = tightOptions();
    CircuitBreaker breaker(options);
    breaker.forceOpen(0.0);
    EXPECT_FALSE(breaker.wouldAllow(options.cooldownUs - 1.0));
    // Cooldown elapsed: wouldAllow flips true without committing a
    // probe slot (const observer), acquire takes the slots.
    EXPECT_TRUE(breaker.wouldAllow(options.cooldownUs + 1.0));
    EXPECT_EQ(breaker.state(options.cooldownUs + 1.0),
              BreakerState::HalfOpen);
    EXPECT_TRUE(breaker.acquire(options.cooldownUs + 1.0));
    EXPECT_TRUE(breaker.acquire(options.cooldownUs + 2.0));
    // Both probe slots taken.
    EXPECT_FALSE(breaker.acquire(options.cooldownUs + 3.0));
}

TEST(CircuitBreaker, HalfOpenClosesWhenEveryProbeSucceeds)
{
    const BreakerOptions options = tightOptions();
    CircuitBreaker breaker(options);
    breaker.forceOpen(0.0);
    const double probeAt = options.cooldownUs + 1.0;
    ASSERT_TRUE(breaker.acquire(probeAt));
    ASSERT_TRUE(breaker.acquire(probeAt));
    breaker.recordSuccess(probeAt + 10.0);
    EXPECT_EQ(breaker.state(probeAt + 11.0),
              BreakerState::HalfOpen);
    breaker.recordSuccess(probeAt + 20.0);
    EXPECT_EQ(breaker.state(probeAt + 21.0),
              BreakerState::Closed);
    EXPECT_TRUE(breaker.wouldAllow(probeAt + 21.0));
}

TEST(CircuitBreaker, HalfOpenReopensOnAnyProbeFailure)
{
    const BreakerOptions options = tightOptions();
    CircuitBreaker breaker(options);
    breaker.forceOpen(0.0);
    const double probeAt = options.cooldownUs + 1.0;
    ASSERT_TRUE(breaker.acquire(probeAt));
    breaker.recordFailure(probeAt + 5.0);
    EXPECT_EQ(breaker.state(probeAt + 6.0), BreakerState::Open);
    EXPECT_EQ(breaker.opens(), 2u);
    // The reopened cooldown restarts from the failure.
    EXPECT_FALSE(
        breaker.wouldAllow(probeAt + options.cooldownUs - 1.0));
    EXPECT_TRUE(
        breaker.wouldAllow(probeAt + 5.0 + options.cooldownUs +
                           1.0));
}

TEST(CircuitBreaker, WindowEvictsOldOutcomes)
{
    BreakerOptions options = tightOptions();
    options.windowSize = 4;
    CircuitBreaker breaker(options);
    // Two early failures, then a run of successes long enough to
    // push them out of the ring: the rate must recover.
    breaker.recordFailure(1.0);
    breaker.recordSuccess(2.0);
    breaker.recordFailure(3.0);
    for (int i = 0; i < 4; ++i)
        breaker.recordSuccess(4.0 + i);
    EXPECT_EQ(breaker.state(10.0), BreakerState::Closed);
    // One new failure over a clean window of 4 is 25% < 50%.
    breaker.recordFailure(11.0);
    EXPECT_EQ(breaker.state(12.0), BreakerState::Closed);
}

TEST(CircuitBreaker, OpenIgnoresStaleOutcomes)
{
    const BreakerOptions options = tightOptions();
    CircuitBreaker breaker(options);
    breaker.forceOpen(0.0);
    // In-flight work finishing after the trip must not perturb the
    // probe accounting.
    breaker.recordSuccess(1.0);
    breaker.recordFailure(2.0);
    EXPECT_EQ(breaker.state(3.0), BreakerState::Open);
    EXPECT_EQ(breaker.opens(), 1u);
    EXPECT_TRUE(breaker.wouldAllow(options.cooldownUs + 1.0));
}

} // namespace
} // namespace vaq::fleet
