/**
 * @file
 * FaultPlan tests: kind-name and taxonomy mappings, deterministic
 * seeded generation, the (timeUs, machine, kind) sort order, and
 * the JSON schema round-trip.
 */
#include "fleet/fault_plan.hpp"

#include <gtest/gtest.h>

namespace vaq::fleet
{
namespace
{

TEST(FaultPlan, KindNamesRoundTrip)
{
    const FaultKind kinds[] = {
        FaultKind::Outage, FaultKind::CalCorruption,
        FaultKind::LatencySpike, FaultKind::PartialQuarantine};
    for (FaultKind kind : kinds)
        EXPECT_EQ(faultKindFromName(faultKindName(kind)), kind);
    EXPECT_STREQ(faultKindName(FaultKind::Outage), "outage");
    EXPECT_STREQ(faultKindName(FaultKind::CalCorruption),
                 "cal-corruption");
    EXPECT_THROW(faultKindFromName("meteor-strike"), VaqError);
}

TEST(FaultPlan, KindsMapOntoErrorTaxonomy)
{
    // Injected faults surface through the same PR-4 categories as
    // organic failures — no side-channel statuses.
    EXPECT_EQ(faultCategory(FaultKind::Outage),
              ErrorCategory::Internal);
    EXPECT_EQ(faultCategory(FaultKind::CalCorruption),
              ErrorCategory::Calibration);
    EXPECT_EQ(faultCategory(FaultKind::LatencySpike),
              ErrorCategory::Timeout);
    EXPECT_EQ(faultCategory(FaultKind::PartialQuarantine),
              ErrorCategory::Calibration);
}

TEST(FaultPlan, GenerationIsDeterministicPerSeed)
{
    FaultPlanParams params;
    params.horizonUs = 5e5;
    params.faultsPerMachine = 4.0;
    const FaultPlan a = generateFaultPlan(4, params, 42);
    const FaultPlan b = generateFaultPlan(4, params, 42);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(json::write(toJson(a)), json::write(toJson(b)));

    const FaultPlan c = generateFaultPlan(4, params, 43);
    EXPECT_NE(json::write(toJson(a)), json::write(toJson(c)));
}

TEST(FaultPlan, GeneratedEventsAreSortedAndInHorizon)
{
    FaultPlanParams params;
    params.horizonUs = 3e5;
    params.faultsPerMachine = 6.0;
    const FaultPlan plan = generateFaultPlan(3, params, 7);
    ASSERT_FALSE(plan.empty());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const FaultEvent &event = plan.events[i];
        EXPECT_GE(event.timeUs, 0.0);
        EXPECT_LT(event.timeUs, params.horizonUs);
        EXPECT_LT(event.machine, 3u);
        if (i > 0) {
            EXPECT_LE(plan.events[i - 1].timeUs, event.timeUs);
        }
        if (event.kind == FaultKind::LatencySpike) {
            EXPECT_GT(event.magnitude, 1.0);
        }
        if (event.kind == FaultKind::Outage) {
            EXPECT_GT(event.durationUs, 0.0);
        }
    }
}

TEST(FaultPlan, WeightsSteerKindMix)
{
    FaultPlanParams params;
    params.horizonUs = 1e6;
    params.faultsPerMachine = 30.0;
    params.outageWeight = 1.0;
    params.corruptionWeight = 0.0;
    params.spikeWeight = 0.0;
    params.quarantineWeight = 0.0;
    const FaultPlan plan = generateFaultPlan(2, params, 3);
    ASSERT_FALSE(plan.empty());
    for (const FaultEvent &event : plan.events)
        EXPECT_EQ(event.kind, FaultKind::Outage);
}

TEST(FaultPlan, JsonRoundTripsByteIdentically)
{
    FaultPlanParams params;
    params.horizonUs = 4e5;
    params.faultsPerMachine = 5.0;
    const FaultPlan plan = generateFaultPlan(4, params, 11);
    ASSERT_FALSE(plan.empty());

    const std::string wire = json::write(toJson(plan));
    const FaultPlan parsed = faultPlanFromJson(
        json::Cursor(json::parse(wire, "plan")));
    ASSERT_EQ(parsed.size(), plan.size());
    EXPECT_EQ(json::write(toJson(parsed)), wire);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(parsed.events[i].kind, plan.events[i].kind);
        EXPECT_EQ(parsed.events[i].machine,
                  plan.events[i].machine);
        EXPECT_DOUBLE_EQ(parsed.events[i].timeUs,
                         plan.events[i].timeUs);
        EXPECT_DOUBLE_EQ(parsed.events[i].durationUs,
                         plan.events[i].durationUs);
        EXPECT_DOUBLE_EQ(parsed.events[i].magnitude,
                         plan.events[i].magnitude);
    }
}

TEST(FaultPlan, ScriptedEventJsonShape)
{
    FaultEvent event;
    event.timeUs = 1500.0;
    event.machine = 2;
    event.kind = FaultKind::LatencySpike;
    event.durationUs = 8000.0;
    event.magnitude = 6.0;
    const json::Value value = toJson(event);
    const json::Cursor cursor(value);
    EXPECT_EQ(cursor.at("kind").asString(), "latency-spike");
    EXPECT_EQ(cursor.at("machine").asInt(), 2);
    EXPECT_DOUBLE_EQ(cursor.at("timeUs").asNumber(), 1500.0);
    const FaultEvent parsed = faultEventFromJson(cursor);
    EXPECT_EQ(parsed.kind, FaultKind::LatencySpike);
    EXPECT_DOUBLE_EQ(parsed.magnitude, 6.0);
}

} // namespace
} // namespace vaq::fleet
