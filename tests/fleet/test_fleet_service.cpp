/**
 * @file
 * /v1/fleet/stats over a real loopback HttpServer: published
 * StatsHub summaries and the ambient fleet.* counters come back in
 * one deterministic JSON body; wrong methods 405.
 */
#include <gtest/gtest.h>

#include <vector>

#include "calibration/synthetic.hpp"
#include "common/json.hpp"
#include "fleet/sim.hpp"
#include "fleet/stats.hpp"
#include "obs/metrics.hpp"
#include "service/http.hpp"
#include "service/service.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::fleet
{
namespace
{

class FleetServiceFixture
{
  public:
    FleetServiceFixture()
        : graph(topology::ibmQ20Tokyo()),
          snapshot(calibration::SyntheticSource(
                       graph, calibration::SyntheticParams{}, 7)
                       .nextCycle()),
          service(graph, snapshot),
          server(service::HttpServerOptions{},
                 [this](const service::HttpRequest &request) {
                     return service.handle(request);
                 })
    {
        obs::setEnabled(true);
    }

    ~FleetServiceFixture() { server.stop(); }

    int port() const { return server.port(); }

    topology::CouplingGraph graph;
    calibration::Snapshot snapshot;
    service::CompileService service;
    service::HttpServer server;
};

/** Run a tiny fleet that publishes its summary as `name`. */
FleetSummary
publishFleet(const std::string &name)
{
    std::vector<circuit::Circuit> workload;
    workload.push_back(workloads::ghz(4));
    workload.push_back(workloads::qft(4));

    BackendSpec spec;
    spec.name = "solo";
    spec.graph = topology::grid(4, 4);
    spec.calibrationSeed = 11;

    JobStreamParams stream;
    stream.count = 8;
    const std::vector<FleetJob> jobs =
        makeJobStream(workload.size(), stream, 3);

    FleetOptions options;
    options.seed = 3;
    options.statsName = name;
    FleetSim sim({spec}, workload, options);
    return sim.run(jobs);
}

TEST(FleetServiceStats, ReturnsPublishedSummariesAndCounters)
{
    StatsHub::global().reset();
    FleetServiceFixture fx;
    const FleetSummary summary = publishFleet("loop-fleet");

    const service::HttpResponse response = service::httpExchange(
        fx.port(), "GET", "/v1/fleet/stats");
    ASSERT_EQ(response.status, 200) << response.body;
    const json::Value parsed =
        json::parse(response.body, "response");
    const json::Cursor body(parsed);

    const json::Cursor fleet =
        body.at("fleets").at("loop-fleet");
    EXPECT_EQ(fleet.at("jobs").asInt(),
              static_cast<std::int64_t>(summary.jobs));
    EXPECT_EQ(fleet.at("completed").asInt(),
              static_cast<std::int64_t>(summary.completed));
    // The published summary is the byte-identity surface.
    EXPECT_EQ(json::write(fleet.value()), summary.fingerprint());

    // The fleet.* counters ride along (telemetry was on while the
    // fleet ran, so at least the placement counter moved).
    const json::Cursor counters = body.at("counters");
    EXPECT_GT(counters.at("fleet.placements").asInt(), 0);
    StatsHub::global().reset();
}

TEST(FleetServiceStats, EmptyHubStillServesShape)
{
    StatsHub::global().reset();
    FleetServiceFixture fx;
    const service::HttpResponse response = service::httpExchange(
        fx.port(), "GET", "/v1/fleet/stats");
    ASSERT_EQ(response.status, 200) << response.body;
    const json::Value parsed =
        json::parse(response.body, "response");
    const json::Cursor body(parsed);
    EXPECT_EQ(json::write(body.at("fleets").value()), "{}");
}

TEST(FleetServiceStats, PostIsMethodNotAllowed)
{
    FleetServiceFixture fx;
    const service::HttpResponse response = service::httpExchange(
        fx.port(), "POST", "/v1/fleet/stats", "{}");
    EXPECT_EQ(response.status, 405);
}

} // namespace
} // namespace vaq::fleet
