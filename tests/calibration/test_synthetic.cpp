#include "calibration/synthetic.hpp"

#include <gtest/gtest.h>

#include "common/statistics.hpp"
#include "topology/layouts.hpp"

namespace vaq::calibration
{
namespace
{

/** Pool a statistic over every qubit/cycle of a series. */
template <typename Extract>
std::vector<double>
poolQubits(const CalibrationSeries &series, Extract &&extract)
{
    std::vector<double> out;
    for (const Snapshot &snap : series.snapshots()) {
        for (int q = 0; q < snap.numQubits(); ++q)
            out.push_back(extract(snap.qubit(q)));
    }
    return out;
}

class SyntheticQ20 : public ::testing::Test
{
  protected:
    SyntheticQ20()
        : graph(topology::ibmQ20Tokyo()),
          source(graph, SyntheticParams{}, 7),
          series(source.series(100))
    {}

    topology::CouplingGraph graph;
    SyntheticSource source;
    CalibrationSeries series;
};

TEST_F(SyntheticQ20, SnapshotsAreValid)
{
    for (const Snapshot &snap : series.snapshots())
        EXPECT_NO_THROW(snap.validate());
    EXPECT_EQ(series.size(), 100u);
}

TEST_F(SyntheticQ20, T1StatisticsMatchPaper)
{
    // Paper Section 3.1: mean 80.32 us, sigma 35.23 us.
    const auto t1 = poolQubits(
        series, [](const QubitCalibration &q) { return q.t1Us; });
    EXPECT_NEAR(mean(t1), 80.32, 12.0);
    EXPECT_NEAR(stddev(t1), 35.23, 12.0);
}

TEST_F(SyntheticQ20, T2StatisticsMatchPaper)
{
    // Paper Section 3.1: mean 42.13 us, sigma 13.34 us.
    const auto t2 = poolQubits(
        series, [](const QubitCalibration &q) { return q.t2Us; });
    EXPECT_NEAR(mean(t2), 42.13, 8.0);
    EXPECT_NEAR(stddev(t2), 13.34, 6.0);
}

TEST_F(SyntheticQ20, T2NeverExceedsTwiceT1)
{
    for (const Snapshot &snap : series.snapshots()) {
        for (int q = 0; q < snap.numQubits(); ++q) {
            EXPECT_LE(snap.qubit(q).t2Us,
                      2.0 * snap.qubit(q).t1Us + 1e-9);
        }
    }
}

TEST_F(SyntheticQ20, TwoQubitErrorStatisticsMatchPaper)
{
    // Paper Section 3.3: mean 4.3 %, sigma 3.02 %.
    std::vector<double> errors;
    for (const Snapshot &snap : series.snapshots()) {
        const auto e = snap.allLinkErrors();
        errors.insert(errors.end(), e.begin(), e.end());
    }
    EXPECT_NEAR(mean(errors), 0.043, 0.012);
    EXPECT_NEAR(stddev(errors), 0.0302, 0.015);
}

TEST_F(SyntheticQ20, SpatialSpreadCoversPaperRange)
{
    // Paper Fig. 9: per-link averages span ~0.02 .. 0.15 (7.5x).
    const Snapshot avg = series.averaged();
    const auto errors = avg.allLinkErrors();
    double lo = errors[0], hi = errors[0];
    for (double e : errors) {
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    EXPECT_LT(lo, 0.03);
    EXPECT_GT(hi, 0.09);
    EXPECT_GT(hi / lo, 3.0);
}

TEST_F(SyntheticQ20, SingleQubitErrorsMostlyBelowOnePercent)
{
    // Paper Section 3.2 / Fig. 6.
    const auto e1q = poolQubits(
        series,
        [](const QubitCalibration &q) { return q.error1q; });
    std::size_t below = 0;
    for (double e : e1q) {
        EXPECT_LE(e, 0.04 + 1e-12);
        if (e < 0.01)
            ++below;
    }
    EXPECT_GT(static_cast<double>(below) /
                  static_cast<double>(e1q.size()),
              0.80);
}

TEST_F(SyntheticQ20, StrongLinksStayStrong)
{
    // Paper Section 3.4 / Fig. 8: temporal persistence. The
    // strongest and weakest long-run links should keep their
    // ordering on a large majority of individual days.
    const Snapshot avg = series.averaged();
    std::size_t strongest = 0, weakest = 0;
    for (std::size_t l = 1; l < avg.numLinks(); ++l) {
        if (avg.linkError(l) < avg.linkError(strongest))
            strongest = l;
        if (avg.linkError(l) > avg.linkError(weakest))
            weakest = l;
    }
    std::size_t ordered = 0;
    for (const Snapshot &snap : series.snapshots()) {
        if (snap.linkError(strongest) < snap.linkError(weakest))
            ++ordered;
    }
    EXPECT_GT(ordered, series.size() * 8 / 10);
}

TEST(Synthetic, Deterministic)
{
    const auto q5 = topology::ibmQ5Tenerife();
    SyntheticSource a(q5, SyntheticParams{}, 99);
    SyntheticSource b(q5, SyntheticParams{}, 99);
    const Snapshot sa = a.nextCycle();
    const Snapshot sb = b.nextCycle();
    for (std::size_t l = 0; l < sa.numLinks(); ++l)
        EXPECT_DOUBLE_EQ(sa.linkError(l), sb.linkError(l));
    for (int q = 0; q < sa.numQubits(); ++q)
        EXPECT_DOUBLE_EQ(sa.qubit(q).t1Us, sb.qubit(q).t1Us);
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    const auto q5 = topology::ibmQ5Tenerife();
    SyntheticSource a(q5, SyntheticParams{}, 1);
    SyntheticSource b(q5, SyntheticParams{}, 2);
    EXPECT_NE(a.nextCycle().linkError(0),
              b.nextCycle().linkError(0));
}

TEST(Synthetic, PersonalitiesRespectClamp)
{
    const auto q20 = topology::ibmQ20Tokyo();
    SyntheticParams params;
    SyntheticSource src(q20, params, 3);
    for (double p : src.linkPersonalities()) {
        EXPECT_GE(p, params.linkPersonalityMin);
        EXPECT_LE(p, params.linkPersonalityMax);
    }
}

TEST(Synthetic, WorksOnArbitraryTopologies)
{
    for (const auto &graph :
         {topology::linear(8), topology::ring(6),
          topology::grid(3, 3)}) {
        SyntheticSource src(graph, SyntheticParams{}, 11);
        const Snapshot snap = src.nextCycle();
        EXPECT_EQ(snap.numQubits(), graph.numQubits());
        EXPECT_EQ(snap.numLinks(), graph.linkCount());
        EXPECT_NO_THROW(snap.validate());
    }
}

} // namespace
} // namespace vaq::calibration
