#include "calibration/csv_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "calibration/synthetic.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::calibration
{
namespace
{

TEST(CsvIo, RoundTripPreservesValues)
{
    const auto q20 = topology::ibmQ20Tokyo();
    SyntheticSource src(q20, SyntheticParams{}, 21);
    const Snapshot original = src.nextCycle();

    const Snapshot reloaded =
        fromCsv(toCsv(original, q20), q20);
    for (int q = 0; q < q20.numQubits(); ++q) {
        EXPECT_NEAR(reloaded.qubit(q).t1Us,
                    original.qubit(q).t1Us, 1e-5);
        EXPECT_NEAR(reloaded.qubit(q).error1q,
                    original.qubit(q).error1q, 1e-7);
        EXPECT_NEAR(reloaded.qubit(q).readoutError,
                    original.qubit(q).readoutError, 1e-7);
    }
    for (std::size_t l = 0; l < q20.linkCount(); ++l)
        EXPECT_NEAR(reloaded.linkError(l),
                    original.linkError(l), 1e-7);
}

TEST(CsvIo, HeaderAndSectionsPresent)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const std::string csv =
        toCsv(test::uniformSnapshot(q5), q5);
    EXPECT_TRUE(startsWith(csv, "section,id,a,b"));
    EXPECT_NE(csv.find("qubit,0"), std::string::npos);
    EXPECT_NE(csv.find("link,0,0,1"), std::string::npos);
}

TEST(CsvIo, LinkRowsMatchByEndpointsNotOrder)
{
    const auto q5 = topology::ibmQ5Tenerife();
    Snapshot snap = test::uniformSnapshot(q5);
    snap.setLinkError(q5.linkIndex(3, 4), 0.077);
    // Reverse all lines after the header; parsing must not care.
    const auto lines = split(toCsv(snap, q5), '\n');
    std::string shuffled = lines[0] + "\n";
    for (std::size_t i = lines.size(); i > 1; --i) {
        if (!lines[i - 1].empty())
            shuffled += lines[i - 1] + "\n";
    }
    const Snapshot reloaded = fromCsv(shuffled, q5);
    EXPECT_NEAR(reloaded.linkError(q5, 3, 4), 0.077, 1e-9);
}

TEST(CsvIo, MissingRowsRejected)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const std::string csv =
        toCsv(test::uniformSnapshot(q5), q5);
    // Drop the last line (one link row).
    const auto cut = csv.rfind("link,5");
    EXPECT_THROW(fromCsv(csv.substr(0, cut), q5), VaqError);
}

TEST(CsvIo, MalformedRowsRejected)
{
    const auto q5 = topology::ibmQ5Tenerife();
    EXPECT_THROW(fromCsv("bogus,0,,,1,2,3,4,\n", q5), VaqError);
    EXPECT_THROW(fromCsv("qubit,0,1,2\n", q5), VaqError);
    EXPECT_THROW(
        fromCsv("link,0,0,4,,,,,0.5\n", q5), // 0-4 not coupled
        VaqError);
}

TEST(CsvIo, DuplicateRowsRejected)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const std::string csv =
        toCsv(test::uniformSnapshot(q5), q5);
    EXPECT_THROW(fromCsv(csv + "qubit,0,,,80,42,0.003,0.03,\n",
                         q5),
                 VaqError);
}

/** Grab the full what() of the CalibrationError a parse raises. */
std::string
parseFailure(const std::string &text,
             const topology::CouplingGraph &graph,
             const std::string &source)
{
    try {
        fromCsv(text, graph, source);
    } catch (const CalibrationError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected CalibrationError";
    return {};
}

TEST(CsvIo, MalformedRowsReportFileAndLine)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const std::string header =
        "section,id,a,b,t1_us,t2_us,error_1q,readout_error,"
        "error_2q\n";

    // Truncated row (wrong field count) on line 3.
    {
        const std::string msg = parseFailure(
            header + "qubit,0,,,80,42,0.003,0.03,\n" +
                "qubit,1,1,2\n",
            q5, "cal.csv");
        EXPECT_NE(msg.find("cal.csv:3:"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("wrong field count"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("got 4"), std::string::npos) << msg;
    }

    // Unknown section on line 2.
    {
        const std::string msg = parseFailure(
            header + "bogus,0,,,1,2,3,4,\n", q5, "cal.csv");
        EXPECT_NE(msg.find("cal.csv:2:"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("unknown CSV section"),
                  std::string::npos)
            << msg;
    }

    // Non-numeric field on line 2.
    {
        const std::string msg = parseFailure(
            header + "qubit,0,,,eighty,42,0.003,0.03,\n", q5,
            "cal.csv");
        EXPECT_NE(msg.find("cal.csv:2:"), std::string::npos)
            << msg;
    }

    // Duplicate link row: the second copy is the offender.
    {
        const std::string csv =
            toCsv(test::uniformSnapshot(q5), q5);
        const std::string msg = parseFailure(
            csv + "link,0,0,1,,,,,0.5\n", q5, "cal.csv");
        // Header + 5 qubit rows + 6 link rows, duplicate is 13.
        EXPECT_NE(msg.find("cal.csv:13:"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("duplicate link row"),
                  std::string::npos)
            << msg;
    }

    // Comment and blank lines still count toward line numbers.
    {
        const std::string msg = parseFailure(
            "# exported 2026-08-05\n\n" + header +
                "bogus,0,,,1,2,3,4,\n",
            q5, "cal.csv");
        EXPECT_NE(msg.find("cal.csv:4:"), std::string::npos)
            << msg;
    }
}

TEST(CsvIo, MissingRowsNameTheSource)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const std::string csv =
        toCsv(test::uniformSnapshot(q5), q5);
    const auto cut = csv.rfind("link,5");
    try {
        fromCsv(csv.substr(0, cut), q5, "partial.csv");
        FAIL() << "expected CalibrationError";
    } catch (const CalibrationError &e) {
        EXPECT_NE(std::string(e.what()).find("partial.csv"),
                  std::string::npos);
        EXPECT_EQ(e.link(), 5);
    }
}

TEST(CsvIo, SeriesErrorsNameSourceAndCycle)
{
    const auto q5 = topology::ibmQ5Tenerife();
    SyntheticSource src(q5, SyntheticParams{}, 80);
    std::string text = toCsvSeries(src.series(2), q5);
    // Corrupt one cycle-1 row: make its t1 non-numeric.
    const auto pos = text.rfind("1,qubit,4");
    ASSERT_NE(pos, std::string::npos);
    const auto comma = text.find(",,,", pos) + 3;
    text.replace(comma, 2, "xx");
    try {
        fromCsvSeries(text, q5, "archive.csv");
        FAIL() << "expected CalibrationError";
    } catch (const CalibrationError &e) {
        EXPECT_NE(std::string(e.what()).find("archive.csv cycle 1"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CsvIo, SeriesRoundTrip)
{
    const auto q5 = topology::ibmQ5Tenerife();
    SyntheticSource src(q5, SyntheticParams{}, 77);
    const CalibrationSeries original = src.series(5);

    const CalibrationSeries reloaded =
        fromCsvSeries(toCsvSeries(original, q5), q5);
    ASSERT_EQ(reloaded.size(), original.size());
    for (std::size_t c = 0; c < original.size(); ++c) {
        for (std::size_t l = 0; l < q5.linkCount(); ++l) {
            EXPECT_NEAR(reloaded.at(c).linkError(l),
                        original.at(c).linkError(l), 1e-7);
        }
        for (int q = 0; q < q5.numQubits(); ++q) {
            EXPECT_NEAR(reloaded.at(c).qubit(q).t1Us,
                        original.at(c).qubit(q).t1Us, 1e-5);
        }
    }
    // Averaging the reloaded archive matches the original's.
    EXPECT_NEAR(reloaded.averaged().linkError(0),
                original.averaged().linkError(0), 1e-7);
}

TEST(CsvIo, SeriesFileRoundTrip)
{
    const auto q5 = topology::ibmQ5Tenerife();
    SyntheticSource src(q5, SyntheticParams{}, 78);
    const CalibrationSeries original = src.series(3);
    const std::string path = "/tmp/vaq_series_test.csv";
    saveCsvSeries(path, original, q5);
    const CalibrationSeries reloaded = loadCsvSeries(path, q5);
    EXPECT_EQ(reloaded.size(), 3u);
    std::remove(path.c_str());
}

TEST(CsvIo, SeriesValidation)
{
    const auto q5 = topology::ibmQ5Tenerife();
    EXPECT_THROW(toCsvSeries(CalibrationSeries{}, q5), VaqError);
    EXPECT_THROW(fromCsvSeries("", q5), VaqError);
    // Sparse cycle numbering rejected.
    SyntheticSource src(q5, SyntheticParams{}, 79);
    std::string text =
        toCsvSeries(src.series(1), q5);
    // Renumber cycle 0 -> 2.
    std::string sparse;
    std::istringstream in(text);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (first) {
            sparse += line + "\n";
            first = false;
        } else if (!line.empty()) {
            sparse += "2" + line.substr(1) + "\n";
        }
    }
    EXPECT_THROW(fromCsvSeries(sparse, q5), VaqError);
}

TEST(CsvIo, FileRoundTrip)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const Snapshot snap = test::uniformSnapshot(q5, 0.033);
    const std::string path = "/tmp/vaq_csv_test.csv";
    saveCsv(path, snap, q5);
    const Snapshot reloaded = loadCsv(path, q5);
    EXPECT_NEAR(reloaded.linkError(0), 0.033, 1e-9);
    std::remove(path.c_str());
    EXPECT_THROW(loadCsv("/nonexistent/x.csv", q5), VaqError);
}

} // namespace
} // namespace vaq::calibration
