/**
 * @file
 * Calibration quarantine tests: dead and non-finite entries are
 * pulled with a reason, the cleaned snapshot always validates, and
 * the healthy region is the deterministic largest component.
 */
#include <gtest/gtest.h>

#include <limits>

#include "calibration/sanitize.hpp"
#include "common/error.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::calibration
{
namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Sanitize, CleanSnapshotPassesUntouched)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const auto snap = vaq::test::uniformSnapshot(q5);
    const SanitizedCalibration result = sanitize(snap, q5);

    EXPECT_TRUE(result.report.clean());
    EXPECT_TRUE(result.usable);
    ASSERT_EQ(result.healthyRegion.size(),
              static_cast<std::size_t>(q5.numQubits()));
    for (int q = 0; q < q5.numQubits(); ++q)
        EXPECT_EQ(result.healthyRegion[static_cast<std::size_t>(q)],
                  q);
    EXPECT_NO_THROW(result.snapshot.validate());
}

TEST(Sanitize, NaNQubitIsQuarantinedWithItsLinks)
{
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = vaq::test::uniformSnapshot(q5);
    snap.qubit(3).t1Us = kNaN;

    const SanitizedCalibration result = sanitize(snap, q5);
    ASSERT_EQ(result.report.qubits.size(), 1u);
    EXPECT_EQ(result.report.qubits[0].qubit, 3);
    EXPECT_EQ(result.report.qubits[0].reason,
              "non-finite calibration value");
    // Tenerife links 2-3 and 3-4 lose an endpoint.
    ASSERT_EQ(result.report.links.size(), 2u);
    for (const QuarantinedLink &l : result.report.links) {
        EXPECT_TRUE(l.a == 3 || l.b == 3);
        EXPECT_EQ(l.reason, "endpoint qubit quarantined");
    }

    // {0,1,2,4} stays connected through 0-1, 0-2, 1-2, 2-4.
    EXPECT_TRUE(result.usable);
    EXPECT_EQ(result.healthyRegion,
              (std::vector<topology::PhysQubit>{0, 1, 2, 4}));

    // Cleaned copy is finite and validates; the dead entries are
    // pinned to worst-case values.
    EXPECT_NO_THROW(result.snapshot.validate());
    EXPECT_EQ(result.snapshot.qubit(3).error1q, 1.0);
    EXPECT_EQ(result.snapshot.linkError(q5.linkIndex(2, 3)), 1.0);

    const topology::CouplingGraph healthy =
        result.healthyGraph(q5);
    EXPECT_EQ(healthy.numQubits(), 4);
    EXPECT_TRUE(healthy.isConnected());
}

TEST(Sanitize, DeadLinkAndZeroCoherenceAreDetected)
{
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = vaq::test::uniformSnapshot(q5);
    snap.setLinkError(q5.linkIndex(0, 1), 0.99); // >= threshold
    snap.qubit(4).t2Us = 1e-9;                   // "zero" coherence

    const SanitizedCalibration result = sanitize(snap, q5);
    ASSERT_EQ(result.report.qubits.size(), 1u);
    EXPECT_EQ(result.report.qubits[0].qubit, 4);
    EXPECT_EQ(result.report.qubits[0].reason, "zero coherence");

    bool sawDeadLink = false;
    for (const QuarantinedLink &l : result.report.links) {
        if (l.a == 0 && l.b == 1) {
            sawDeadLink = true;
            EXPECT_EQ(l.reason, "link error at dead threshold");
        }
    }
    EXPECT_TRUE(sawDeadLink);
    EXPECT_TRUE(result.usable);
    EXPECT_NO_THROW(result.snapshot.validate());
}

TEST(Sanitize, NonFiniteDurationsAreReset)
{
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = vaq::test::uniformSnapshot(q5);
    snap.durations.twoQubitNs = kInf;

    const SanitizedCalibration result = sanitize(snap, q5);
    EXPECT_TRUE(result.report.durationsReset);
    EXPECT_FALSE(result.report.clean());
    EXPECT_TRUE(result.usable);
    EXPECT_NO_THROW(result.snapshot.validate());
}

TEST(Sanitize, FullyDeadMachineIsUnusable)
{
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = vaq::test::uniformSnapshot(q5);
    for (int q = 0; q < q5.numQubits(); ++q)
        snap.qubit(q).readoutError = kNaN;

    const SanitizedCalibration result = sanitize(snap, q5);
    EXPECT_EQ(result.report.qubits.size(),
              static_cast<std::size_t>(q5.numQubits()));
    EXPECT_TRUE(result.healthyRegion.empty());
    EXPECT_FALSE(result.usable);
    EXPECT_NO_THROW(result.snapshot.validate());
}

TEST(Sanitize, MinHealthyFractionGatesUsability)
{
    const auto line = topology::linear(8);
    auto snap = vaq::test::uniformSnapshot(line);
    // Kill qubits 2..7: only {0,1} survive (25% of the machine).
    for (int q = 2; q < 8; ++q)
        snap.qubit(q).error1q = 1.0;

    SanitizeOptions strict;
    strict.minHealthyFraction = 0.5;
    EXPECT_FALSE(sanitize(snap, line, strict).usable);

    SanitizeOptions lax;
    lax.minHealthyFraction = 0.25;
    const SanitizedCalibration result = sanitize(snap, line, lax);
    EXPECT_TRUE(result.usable);
    EXPECT_EQ(result.healthyRegion,
              (std::vector<topology::PhysQubit>{0, 1}));
}

TEST(Sanitize, ShapeMismatchStillThrows)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const auto line = topology::linear(3);
    const auto snap = vaq::test::uniformSnapshot(line);
    EXPECT_THROW(sanitize(snap, q5), VaqError);
}

} // namespace
} // namespace vaq::calibration
