#include "calibration/snapshot.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::calibration
{
namespace
{

TEST(Snapshot, ShapeMatchesMachine)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const Snapshot snap(q5);
    EXPECT_EQ(snap.numQubits(), 5);
    EXPECT_EQ(snap.numLinks(), 6u);
}

TEST(Snapshot, ContentHashIgnoresZeroSign)
{
    // Regression: hashCombine(double) bit-cast -0.0 and +0.0 to
    // different words, so two snapshots whose values compare equal
    // hashed differently — missing every snapshot-keyed cache and
    // duplicating persistent artifact-store records.
    const auto q5 = topology::ibmQ5Tenerife();
    Snapshot plus(q5);
    Snapshot minus(q5);
    plus.setLinkError(0, 0.0);
    minus.setLinkError(0, -0.0);
    plus.qubit(2).readoutError = 0.0;
    minus.qubit(2).readoutError = -0.0;
    EXPECT_EQ(plus.contentHash(), minus.contentHash());

    // A value that actually differs still changes the hash.
    minus.setLinkError(0, 0.01);
    EXPECT_NE(plus.contentHash(), minus.contentHash());
}

TEST(Snapshot, LinkErrorByEndpoints)
{
    const auto q5 = topology::ibmQ5Tenerife();
    Snapshot snap(q5);
    snap.setLinkError(q5.linkIndex(2, 3), 0.07);
    EXPECT_DOUBLE_EQ(snap.linkError(q5, 2, 3), 0.07);
    EXPECT_DOUBLE_EQ(snap.linkError(q5, 3, 2), 0.07);
    EXPECT_DOUBLE_EQ(snap.linkSuccess(q5, 3, 2), 0.93);
    EXPECT_THROW(snap.linkError(q5, 0, 4), VaqError);
}

TEST(Snapshot, SwapErrorIsThreeCnots)
{
    const auto q5 = topology::ibmQ5Tenerife();
    Snapshot snap(q5);
    snap.setLinkError(q5.linkIndex(0, 1), 0.1);
    EXPECT_NEAR(snap.swapError(q5, 0, 1),
                1.0 - 0.9 * 0.9 * 0.9, 1e-12);
}

TEST(Snapshot, BoundsChecked)
{
    const auto q5 = topology::ibmQ5Tenerife();
    Snapshot snap(q5);
    EXPECT_THROW(snap.qubit(5), VaqError);
    EXPECT_THROW(snap.qubit(-1), VaqError);
    EXPECT_THROW(snap.linkError(std::size_t{6}), VaqError);
    EXPECT_THROW(snap.setLinkError(0, 1.5), VaqError);
    EXPECT_THROW(snap.setLinkError(0, -0.1), VaqError);
}

TEST(Snapshot, ValidationCatchesBadFields)
{
    const auto q5 = topology::ibmQ5Tenerife();
    Snapshot good = test::uniformSnapshot(q5);
    EXPECT_NO_THROW(good.validate());

    Snapshot bad = good;
    bad.qubit(0).t1Us = -1.0;
    EXPECT_THROW(bad.validate(), VaqError);

    bad = good;
    bad.qubit(2).error1q = 1.5;
    EXPECT_THROW(bad.validate(), VaqError);

    bad = good;
    bad.durations.twoQubitNs = 0.0;
    EXPECT_THROW(bad.validate(), VaqError);
}

TEST(Snapshot, ValidationRejectsNonFiniteValues)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const Snapshot good = test::uniformSnapshot(q5);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();

    // NaN compares false against every bound, so a naive range
    // check would wave these through; validate() must not.
    Snapshot bad = good;
    bad.qubit(1).t1Us = nan;
    EXPECT_THROW(bad.validate(), CalibrationError);

    bad = good;
    bad.qubit(0).t2Us = inf; // inf > 0 is true; still invalid
    EXPECT_THROW(bad.validate(), CalibrationError);

    bad = good;
    bad.qubit(3).readoutError = nan;
    EXPECT_THROW(bad.validate(), CalibrationError);

    bad = good;
    bad.durations.measureNs = nan;
    EXPECT_THROW(bad.validate(), CalibrationError);

    // The error names the offending qubit.
    bad = good;
    bad.qubit(2).error1q = nan;
    try {
        bad.validate();
        FAIL() << "expected CalibrationError";
    } catch (const CalibrationError &e) {
        EXPECT_EQ(e.qubit(), 2);
    }
}

TEST(Snapshot, ScaledErrorsShiftMeanAndCov)
{
    // Table 2's transformation: 10x lower mean, CoV unchanged or
    // doubled.
    const auto q20 = topology::ibmQ20Tokyo();
    Rng rng(5);
    const Snapshot base = test::randomSnapshot(q20, rng);

    const Snapshot tenth = base.scaledErrors(0.1, 1.0);
    const auto baseErr = base.allLinkErrors();
    const auto tenthErr = tenth.allLinkErrors();
    EXPECT_NEAR(mean(tenthErr), mean(baseErr) * 0.1, 1e-9);
    EXPECT_NEAR(coefficientOfVariation(tenthErr),
                coefficientOfVariation(baseErr), 1e-6);

    // Doubling the spread while clamping at the floor loses a bit
    // of variance; require a clearly widened CoV.
    const Snapshot doubled = base.scaledErrors(0.1, 2.0);
    EXPECT_GT(coefficientOfVariation(doubled.allLinkErrors()),
              1.5 * coefficientOfVariation(baseErr));
}

TEST(Snapshot, ScaledErrorsClampAndValidate)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const Snapshot base = test::uniformSnapshot(q5, 0.4);
    const Snapshot big = base.scaledErrors(10.0, 1.0);
    EXPECT_NO_THROW(big.validate());
    for (double e : big.allLinkErrors())
        EXPECT_LE(e, 0.5);
    EXPECT_THROW(base.scaledErrors(0.0, 1.0), VaqError);
    EXPECT_THROW(base.scaledErrors(1.0, -1.0), VaqError);
}

TEST(Snapshot, ScaledErrorsScaleCoherenceByDefault)
{
    // "Technology improves" semantics: 10x lower gate errors come
    // with 10x longer coherence times.
    const auto q5 = topology::ibmQ5Tenerife();
    const Snapshot base = test::uniformSnapshot(q5);
    const Snapshot scaled = base.scaledErrors(0.1, 1.0);
    EXPECT_DOUBLE_EQ(scaled.qubit(0).t1Us,
                     10.0 * base.qubit(0).t1Us);
    EXPECT_DOUBLE_EQ(scaled.qubit(0).t2Us,
                     10.0 * base.qubit(0).t2Us);
}

TEST(Snapshot, ScaledErrorsCanLeaveCoherenceAlone)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const Snapshot base = test::uniformSnapshot(q5);
    const Snapshot scaled = base.scaledErrors(0.1, 1.0, false);
    EXPECT_DOUBLE_EQ(scaled.qubit(0).t1Us, base.qubit(0).t1Us);
    EXPECT_DOUBLE_EQ(scaled.qubit(0).t2Us, base.qubit(0).t2Us);
}

TEST(Series, AveragedIsElementwiseMean)
{
    const auto q5 = topology::ibmQ5Tenerife();
    CalibrationSeries series;
    Snapshot a = test::uniformSnapshot(q5, 0.02);
    Snapshot b = test::uniformSnapshot(q5, 0.06);
    a.qubit(1).t1Us = 60.0;
    b.qubit(1).t1Us = 100.0;
    series.add(a);
    series.add(b);
    const Snapshot avg = series.averaged();
    EXPECT_NEAR(avg.linkError(0), 0.04, 1e-12);
    EXPECT_NEAR(avg.qubit(1).t1Us, 80.0, 1e-12);
}

TEST(Series, ShapeMismatchRejected)
{
    CalibrationSeries series;
    series.add(
        test::uniformSnapshot(topology::ibmQ5Tenerife()));
    EXPECT_THROW(
        series.add(test::uniformSnapshot(topology::linear(3))),
        VaqError);
}

TEST(Series, AveragedRequiresData)
{
    CalibrationSeries empty;
    EXPECT_THROW(empty.averaged(), VaqError);
    EXPECT_TRUE(empty.empty());
}

TEST(Series, IndexingWorks)
{
    const auto q5 = topology::ibmQ5Tenerife();
    CalibrationSeries series;
    series.add(test::uniformSnapshot(q5, 0.01));
    series.add(test::uniformSnapshot(q5, 0.09));
    EXPECT_EQ(series.size(), 2u);
    EXPECT_NEAR(series.at(1).linkError(0), 0.09, 1e-12);
    EXPECT_THROW(series.at(2), VaqError);
}

} // namespace
} // namespace vaq::calibration
