#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "obs/trace.hpp"

namespace vaq::obs
{
namespace
{

class EnabledGuard
{
  public:
    explicit EnabledGuard(bool on) : _previous(enabled())
    {
        setEnabled(on);
        clearTrace();
    }
    ~EnabledGuard()
    {
        clearTrace();
        setEnabled(_previous);
    }

  private:
    bool _previous;
};

const SpanRecord &
findSpan(const std::vector<SpanRecord> &spans,
         const std::string &name)
{
    const auto it = std::find_if(
        spans.begin(), spans.end(),
        [&](const SpanRecord &s) { return s.name == name; });
    EXPECT_NE(it, spans.end()) << "span not recorded: " << name;
    return *it;
}

TEST(ObsTrace, DisabledSpansRecordNothing)
{
    EnabledGuard guard(false);
    {
        Span span("invisible");
    }
    EXPECT_TRUE(drainTrace().empty());
}

TEST(ObsTrace, NestingLinksParentAndChild)
{
    EnabledGuard guard(true);
    {
        Span outer("outer");
        {
            Span middle("middle");
            Span inner("inner");
        }
        Span sibling("sibling");
    }
    const std::vector<SpanRecord> spans = drainTrace();
    ASSERT_EQ(spans.size(), 4u);

    const SpanRecord &outer = findSpan(spans, "outer");
    const SpanRecord &middle = findSpan(spans, "middle");
    const SpanRecord &inner = findSpan(spans, "inner");
    const SpanRecord &sibling = findSpan(spans, "sibling");

    EXPECT_EQ(outer.parentId, 0u);
    EXPECT_EQ(middle.parentId, outer.id);
    EXPECT_EQ(inner.parentId, middle.id);
    // After the nested scope closes, the open-span stack must pop
    // back to `outer`.
    EXPECT_EQ(sibling.parentId, outer.id);

    // Containment: children start no earlier and end no later.
    EXPECT_GE(inner.startNs, middle.startNs);
    EXPECT_LE(inner.endNs, middle.endNs);
    EXPECT_GE(middle.startNs, outer.startNs);
    EXPECT_LE(middle.endNs, outer.endNs);
}

TEST(ObsTrace, DrainSortsByStartTime)
{
    EnabledGuard guard(true);
    {
        Span a("first");
    }
    {
        Span b("second");
    }
    const std::vector<SpanRecord> spans = drainTrace();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "first");
    EXPECT_EQ(spans[1].name, "second");
    EXPECT_TRUE(std::is_sorted(
        spans.begin(), spans.end(),
        [](const SpanRecord &x, const SpanRecord &y) {
            return x.startNs < y.startNs;
        }));
}

TEST(ObsTrace, DrainClearsBuffers)
{
    EnabledGuard guard(true);
    {
        Span span("once");
    }
    EXPECT_EQ(drainTrace().size(), 1u);
    EXPECT_TRUE(drainTrace().empty());
}

TEST(ObsTrace, SpansFromWorkerThreadsSurviveThreadExit)
{
    EnabledGuard guard(true);
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            Span outer("worker.outer");
            Span inner("worker.inner");
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Workers are gone; their buffers must still drain, and each
    // thread's nesting must be self-consistent.
    const std::vector<SpanRecord> spans = drainTrace();
    ASSERT_EQ(spans.size(), 2u * kThreads);
    for (const SpanRecord &span : spans) {
        if (span.name != "worker.inner")
            continue;
        const auto parent = std::find_if(
            spans.begin(), spans.end(), [&](const SpanRecord &s) {
                return s.id == span.parentId;
            });
        ASSERT_NE(parent, spans.end());
        EXPECT_EQ(parent->name, "worker.outer");
        EXPECT_EQ(parent->threadIndex, span.threadIndex);
    }
}

} // namespace
} // namespace vaq::obs
