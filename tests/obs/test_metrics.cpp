#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace vaq::obs
{
namespace
{

/** Flip the global switch for one test, restoring it after. */
class EnabledGuard
{
  public:
    explicit EnabledGuard(bool on) : _previous(enabled())
    {
        setEnabled(on);
    }
    ~EnabledGuard() { setEnabled(_previous); }

  private:
    bool _previous;
};

TEST(ObsMetrics, DisabledByDefault)
{
    EXPECT_FALSE(enabled());
}

TEST(ObsMetrics, CounterGaugeBasics)
{
    Registry registry;
    Counter &c = registry.counter("a.count");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    Gauge &g = registry.gauge("a.gauge");
    g.set(2.5);
    g.add(-0.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(ObsMetrics, RegistryReturnsStableReferences)
{
    Registry registry;
    Counter &first = registry.counter("stable");
    for (int i = 0; i < 100; ++i)
        registry.counter("filler." + std::to_string(i));
    EXPECT_EQ(&first, &registry.counter("stable"));
}

TEST(ObsMetrics, HistogramBucketsAndMoments)
{
    Histogram h({1.0, 10.0, 100.0});
    h.record(0.5);   // <= 1
    h.record(5.0);   // <= 10
    h.record(50.0);  // <= 100
    h.record(500.0); // overflow
    const HistogramSnapshot snap = h.snapshot();
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 1u);
    EXPECT_EQ(snap.counts[1], 1u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.counts[3], 1u);
    EXPECT_EQ(snap.count, 4u);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 500.0);
    EXPECT_DOUBLE_EQ(snap.mean, 555.5 / 4.0);
}

TEST(ObsMetrics, HistogramMergeMatchesCombinedStream)
{
    Histogram a({1.0, 2.0});
    Histogram b({1.0, 2.0});
    a.record(0.5);
    a.record(1.5);
    b.record(1.7);
    b.record(9.0);
    a.merge(b);
    const HistogramSnapshot snap = a.snapshot();
    EXPECT_EQ(snap.count, 4u);
    EXPECT_EQ(snap.counts[0], 1u);
    EXPECT_EQ(snap.counts[1], 2u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 9.0);
    EXPECT_DOUBLE_EQ(snap.mean, 12.7 / 4.0);
}

TEST(ObsMetrics, FreeHelpersAreGatedOnEnabled)
{
    // With telemetry off the helpers must not touch the registry.
    EnabledGuard guard(false);
    count("gated.counter", 5);
    gaugeSet("gated.gauge", 1.0);
    observe("gated.histogram", 0.5);
    const MetricsSnapshot snap = Registry::global().snapshot();
    EXPECT_EQ(snap.counters.count("gated.counter"), 0u);
    EXPECT_EQ(snap.gauges.count("gated.gauge"), 0u);
    EXPECT_EQ(snap.histograms.count("gated.histogram"), 0u);
}

TEST(ObsMetrics, ScopedTimerRecordsWhenEnabled)
{
    Registry &global = Registry::global();
    EnabledGuard guard(true);
    {
        ScopedTimer timer("obs.test.timer.seconds");
    }
    const HistogramSnapshot snap =
        global.histogram("obs.test.timer.seconds").snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_GE(snap.min, 0.0);
    global.reset();
}

TEST(ObsMetrics, ConcurrentBumpsAreExact)
{
    // N threads hammer one counter, one gauge and one histogram;
    // totals must come out exact. Runs under the TSan `parallel`
    // ctest label, so any racy registry access also fails there.
    Registry registry;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, t] {
            Counter &c = registry.counter("parallel.count");
            Gauge &g = registry.gauge("parallel.gauge");
            Histogram &h = registry.histogram("parallel.hist");
            for (int i = 0; i < kPerThread; ++i) {
                c.add();
                g.add(1.0);
                h.record(static_cast<double>(t));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("parallel.count"),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(snap.gauges.at("parallel.gauge"),
                     static_cast<double>(kThreads * kPerThread));
    EXPECT_EQ(snap.histograms.at("parallel.hist").count,
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ObsMetrics, ResetZeroesEverything)
{
    Registry registry;
    registry.counter("r.c").add(3);
    registry.gauge("r.g").set(4.0);
    registry.histogram("r.h").record(1.0);
    registry.reset();
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("r.c"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("r.g"), 0.0);
    EXPECT_EQ(snap.histograms.at("r.h").count, 0u);
}

} // namespace
} // namespace vaq::obs
