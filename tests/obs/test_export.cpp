#include <gtest/gtest.h>

#include "obs/export.hpp"

namespace vaq::obs
{
namespace
{

/**
 * A snapshot with fixed, binary-exact values, so every exporter's
 * output is byte-deterministic and can be compared against embedded
 * golden text.
 */
MetricsSnapshot
goldenSnapshot()
{
    Registry registry;
    registry.counter("cache.matrix.hits").add(7);
    registry
        .counter("mapper.portfolio.winner{policy=\"vqm\","
                 "config=\"baseline\"}")
        .add(3);
    registry.gauge("batch.queue.depth").set(2.5);
    Histogram &h =
        registry.histogram("mapper.route.seconds", {0.5, 1.0});
    h.record(0.25);
    h.record(0.5);
    h.record(0.75);
    h.record(0.5);
    return registry.snapshot();
}

TEST(ObsExport, JsonGolden)
{
    const std::string expected = R"({
  "counters": {
    "cache.matrix.hits": 7,
    "mapper.portfolio.winner{policy=\"vqm\",config=\"baseline\"}": 3
  },
  "gauges": {
    "batch.queue.depth": 2.5
  },
  "histograms": {
    "mapper.route.seconds": {
      "count": 4,
      "sum": 2,
      "mean": 0.5,
      "min": 0.25,
      "max": 0.75,
      "bounds": [0.5, 1],
      "counts": [3, 1, 0]
    }
  }
}
)";
    EXPECT_EQ(exportJson(goldenSnapshot()), expected);
}

TEST(ObsExport, JsonEmptySnapshot)
{
    const std::string expected = R"({
  "counters": {},
  "gauges": {},
  "histograms": {}
}
)";
    EXPECT_EQ(exportJson(MetricsSnapshot{}), expected);
}

TEST(ObsExport, PrometheusGolden)
{
    const std::string expected =
        "# TYPE vaq_cache_matrix_hits counter\n"
        "vaq_cache_matrix_hits 7\n"
        "# TYPE vaq_mapper_portfolio_winner counter\n"
        "vaq_mapper_portfolio_winner{policy=\"vqm\","
        "config=\"baseline\"} 3\n"
        "# TYPE vaq_batch_queue_depth gauge\n"
        "vaq_batch_queue_depth 2.5\n"
        "# TYPE vaq_mapper_route_seconds histogram\n"
        "vaq_mapper_route_seconds_bucket{le=\"0.5\"} 3\n"
        "vaq_mapper_route_seconds_bucket{le=\"1\"} 4\n"
        "vaq_mapper_route_seconds_bucket{le=\"+Inf\"} 4\n"
        "vaq_mapper_route_seconds_sum 2\n"
        "vaq_mapper_route_seconds_count 4\n";
    EXPECT_EQ(exportPrometheus(goldenSnapshot()),
              expected);
}

TEST(ObsExport, CsvListsEveryInstrument)
{
    const std::string csv =
        exportCsv(goldenSnapshot());
    EXPECT_NE(csv.find("kind,name,field,value"),
              std::string::npos);
    EXPECT_NE(csv.find("counter,cache.matrix.hits,value,7"),
              std::string::npos);
    EXPECT_NE(csv.find("gauge,batch.queue.depth,value,2.5"),
              std::string::npos);
    EXPECT_NE(csv.find("histogram,mapper.route.seconds,count,4"),
              std::string::npos);
    EXPECT_NE(csv.find("histogram,mapper.route.seconds,le=+Inf,0"),
              std::string::npos);
}

TEST(ObsExport, TraceJsonGolden)
{
    std::vector<SpanRecord> spans;
    spans.push_back(
        SpanRecord{"outer", 1, 0, 1, 1000, 5000});
    spans.push_back(
        SpanRecord{"inner", 2, 1, 1, 2000, 3000});
    const std::string expected = R"([
  {"name": "outer", "id": 1, "parent": 0, "thread": 1, "start_ns": 1000, "end_ns": 5000, "seconds": 4e-06},
  {"name": "inner", "id": 2, "parent": 1, "thread": 1, "start_ns": 2000, "end_ns": 3000, "seconds": 1e-06}
]
)";
    EXPECT_EQ(exportTraceJson(spans), expected);
    EXPECT_EQ(exportTraceJson({}), "[]\n");
}

} // namespace
} // namespace vaq::obs
