#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::partition
{
namespace
{

class PartitionTest : public ::testing::Test
{
  protected:
    PartitionTest()
        : graph(topology::ibmQ20Tokyo()), rng(23),
          snap(test::randomSnapshot(graph, rng)),
          mapper(core::makeMapper({.name = "vqa+vqm"}))
    {}

    PartitionOptions
    quickOptions() const
    {
        PartitionOptions o;
        o.candidateRegions = 8;
        return o;
    }

    topology::CouplingGraph graph;
    Rng rng;
    calibration::Snapshot snap;
    core::Mapper mapper;
};

TEST_F(PartitionTest, ProgramTooLargeRejected)
{
    const auto big = workloads::bernsteinVazirani(11);
    EXPECT_THROW(
        comparePartitioning(big, graph, snap, mapper),
        VaqError);
}

TEST_F(PartitionTest, DualRegionsAreDisjoint)
{
    const auto ghz = workloads::ghz(8);
    const PartitionReport report = comparePartitioning(
        ghz, graph, snap, mapper, quickOptions());
    ASSERT_EQ(report.dual.size(), 2u);
    std::set<int> a(report.dual[0].region.begin(),
                    report.dual[0].region.end());
    for (int p : report.dual[1].region)
        EXPECT_FALSE(a.count(p)) << p;
}

TEST_F(PartitionTest, CopiesAreShapedLikeTheProgram)
{
    const auto ghz = workloads::ghz(8);
    const PartitionReport report = comparePartitioning(
        ghz, graph, snap, mapper, quickOptions());
    for (const CopyReport &copy : report.dual) {
        EXPECT_EQ(copy.region.size(), 8u);
        EXPECT_GT(copy.pst, 0.0);
        EXPECT_GT(copy.durationNs, 0.0);
    }
    EXPECT_EQ(report.single.region.size(), 8u);
}

TEST_F(PartitionTest, StptAccounting)
{
    const auto ghz = workloads::ghz(8);
    const PartitionReport report = comparePartitioning(
        ghz, graph, snap, mapper, quickOptions());
    EXPECT_NEAR(report.singleStpt,
                report.single.pst / report.single.durationNs *
                    1000.0,
                1e-12);
    const double dual =
        report.dual[0].pst / report.dual[0].durationNs * 1000.0 +
        report.dual[1].pst / report.dual[1].durationNs * 1000.0;
    EXPECT_NEAR(report.dualStpt, dual, 1e-12);
    EXPECT_EQ(report.singleWins(),
              report.singleStpt > report.dualStpt);
}

TEST_F(PartitionTest, SinglePstAtLeastBestDualCopy)
{
    // The single copy sees the whole machine, so it can always
    // reproduce either dual placement.
    const auto ghz = workloads::ghz(8);
    const PartitionReport report = comparePartitioning(
        ghz, graph, snap, mapper, quickOptions());
    const double bestDual =
        std::max(report.dual[0].pst, report.dual[1].pst);
    EXPECT_GE(report.single.pst, bestDual - 1e-9);
}

TEST_F(PartitionTest, UniformMachineMakesDualWin)
{
    // With no variation, the strong copy has no edge and the
    // doubled trial rate must win.
    const auto uniform = test::uniformSnapshot(graph);
    const auto ghz = workloads::ghz(8);
    const PartitionReport report = comparePartitioning(
        ghz, graph, uniform, mapper, quickOptions());
    EXPECT_FALSE(report.singleWins());
    // The two copies behave similarly; region shapes still differ
    // (one region can need a few more SWAPs than the other).
    EXPECT_NEAR(report.dual[0].pst, report.dual[1].pst, 0.15);
}

TEST_F(PartitionTest, ExtremeVariationMakesSingleWin)
{
    // Make one compact half excellent and everything else
    // terrible: a single strong copy then beats two copies, one
    // of which is stuck on garbage links.
    auto snapExtreme = test::uniformSnapshot(graph, 0.40);
    // Strong island: qubits 0,1,2,5,6,7,10,11,12,15 and their
    // internal links.
    const std::set<int> island{0, 1, 2, 5, 6, 7, 10, 11, 12, 15};
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const auto &link = graph.links()[l];
        if (island.count(link.a) && island.count(link.b))
            snapExtreme.setLinkError(l, 0.01);
    }
    const auto ghz = workloads::ghz(8);
    const PartitionReport report = comparePartitioning(
        ghz, graph, snapExtreme, mapper, quickOptions());
    EXPECT_TRUE(report.singleWins());
}

TEST(Partition, WorksOnSmallMachines)
{
    // 2x3 grid with 3-qubit programs: exactly two copies fit.
    const auto g = topology::grid(2, 3);
    const auto snap = test::uniformSnapshot(g);
    const auto ghz = workloads::ghz(3);
    const auto mapper = core::makeMapper({.name = "baseline"});
    const PartitionReport report =
        comparePartitioning(ghz, g, snap, mapper);
    EXPECT_EQ(report.dual.size(), 2u);
    EXPECT_GT(report.dualStpt, report.singleStpt * 1.5);
}

} // namespace
} // namespace vaq::partition
