/**
 * @file
 * Property and metamorphic tests of the Pauli-frame machinery:
 * per-gate conjugation tables checked both symbolically and against
 * the dense simulator, frame-algebra identities (SWAP = 3 CX,
 * involutions), the affine-support normal form, and the stabilizer
 * tableau's support cross-checked against exact dense amplitudes.
 */
#include "sim/pauli_frame.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "clifford_corpus.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/noise_model.hpp"
#include "sim/statevector.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::sim
{

/** Equality at vaq::sim scope so gtest's EXPECT_EQ finds it via
 *  argument-dependent lookup. */
static bool
operator==(const PauliFrame &a, const PauliFrame &b)
{
    return a.x == b.x && a.z == b.z;
}

namespace
{

using circuit::Circuit;

PauliFrame
conj(PauliFrame frame, FrameOpKind kind, std::uint64_t m0,
     std::uint64_t m1 = 0)
{
    conjugateFrame(frame, kind, m0, m1);
    return frame;
}

PauliFrame
frameOf(std::uint64_t x, std::uint64_t z)
{
    PauliFrame f;
    f.x = x;
    f.z = z;
    return f;
}

TEST(FrameConjugation, HadamardSwapsXAndZ)
{
    // H X H = Z, H Z H = X, H Y H = -Y (phase dropped).
    EXPECT_EQ(conj(frameOf(1, 0), FrameOpKind::H, 1),
              frameOf(0, 1));
    EXPECT_EQ(conj(frameOf(0, 1), FrameOpKind::H, 1),
              frameOf(1, 0));
    EXPECT_EQ(conj(frameOf(1, 1), FrameOpKind::H, 1),
              frameOf(1, 1));
    // Other qubits untouched.
    EXPECT_EQ(conj(frameOf(0b10, 0b00), FrameOpKind::H, 1),
              frameOf(0b10, 0b00));
}

TEST(FrameConjugation, PhaseGateCyclesXAndY)
{
    // S X Sdg = Y, S Y Sdg = -X, S Z Sdg = Z.
    EXPECT_EQ(conj(frameOf(1, 0), FrameOpKind::S, 1),
              frameOf(1, 1));
    EXPECT_EQ(conj(frameOf(1, 1), FrameOpKind::S, 1),
              frameOf(1, 0));
    EXPECT_EQ(conj(frameOf(0, 1), FrameOpKind::S, 1),
              frameOf(0, 1));
}

TEST(FrameConjugation, CxPropagatesXForwardZBackward)
{
    const std::uint64_t c = 0b01; // control mask
    const std::uint64_t t = 0b10; // target mask
    // X_c -> X_c X_t ; X_t -> X_t ; Z_t -> Z_c Z_t ; Z_c -> Z_c.
    EXPECT_EQ(conj(frameOf(c, 0), FrameOpKind::CX, c, t),
              frameOf(c | t, 0));
    EXPECT_EQ(conj(frameOf(t, 0), FrameOpKind::CX, c, t),
              frameOf(t, 0));
    EXPECT_EQ(conj(frameOf(0, t), FrameOpKind::CX, c, t),
              frameOf(0, c | t));
    EXPECT_EQ(conj(frameOf(0, c), FrameOpKind::CX, c, t),
              frameOf(0, c));
}

TEST(FrameConjugation, CzDressesXWithSpectatorZ)
{
    const std::uint64_t a = 0b01;
    const std::uint64_t b = 0b10;
    // X_a -> X_a Z_b ; X_b -> Z_a X_b ; Z's commute through.
    EXPECT_EQ(conj(frameOf(a, 0), FrameOpKind::CZ, a, b),
              frameOf(a, b));
    EXPECT_EQ(conj(frameOf(b, 0), FrameOpKind::CZ, a, b),
              frameOf(b, a));
    EXPECT_EQ(conj(frameOf(0, a | b), FrameOpKind::CZ, a, b),
              frameOf(0, a | b));
}

TEST(FrameConjugation, SwapExchangesOperandBits)
{
    const std::uint64_t a = 0b001;
    const std::uint64_t b = 0b100;
    EXPECT_EQ(conj(frameOf(a, b), FrameOpKind::Swap, a, b),
              frameOf(b, a));
    // Spectator bit (qubit 1) stays put.
    EXPECT_EQ(
        conj(frameOf(a | 0b010, 0), FrameOpKind::Swap, a, b),
        frameOf(b | 0b010, 0));
}

TEST(FrameConjugation, CliffordInvolutionsFixEveryFrame)
{
    // H, CX, CZ, SWAP are involutions; S squares to Z, which acts
    // trivially on frames — so two applications of any alphabet
    // entry must restore every two-qubit frame.
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        const PauliFrame f =
            frameOf(rng.uniformInt(std::uint64_t{4}),
                    rng.uniformInt(std::uint64_t{4}));
        for (const FrameOpKind kind :
             {FrameOpKind::H, FrameOpKind::S, FrameOpKind::CX,
              FrameOpKind::CZ, FrameOpKind::Swap}) {
            PauliFrame twice = f;
            conjugateFrame(twice, kind, 0b01, 0b10);
            conjugateFrame(twice, kind, 0b01, 0b10);
            EXPECT_EQ(twice, f);
        }
    }
}

TEST(FrameConjugation, SwapEqualsThreeCx)
{
    Rng rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const PauliFrame f =
            frameOf(rng.uniformInt(std::uint64_t{8}),
                    rng.uniformInt(std::uint64_t{8}));
        PauliFrame viaSwap = f;
        conjugateFrame(viaSwap, FrameOpKind::Swap, 0b001, 0b100);
        PauliFrame viaCx = f;
        conjugateFrame(viaCx, FrameOpKind::CX, 0b001, 0b100);
        conjugateFrame(viaCx, FrameOpKind::CX, 0b100, 0b001);
        conjugateFrame(viaCx, FrameOpKind::CX, 0b001, 0b100);
        EXPECT_EQ(viaSwap, viaCx);
    }
}

/** Apply the frame's Pauli word X^x Z^z as dense gates (any global
 *  phase is invisible to fidelity). */
void
applyFrameDense(StateVector &state, const PauliFrame &frame)
{
    Circuit pauli(state.numQubits());
    for (int q = 0; q < state.numQubits(); ++q) {
        const std::uint64_t bit = 1ULL << q;
        if (frame.x & bit)
            pauli.x(static_cast<circuit::Qubit>(q));
        if (frame.z & bit)
            pauli.z(static_cast<circuit::Qubit>(q));
    }
    state.applyUnitaries(pauli);
}

/**
 * The defining identity of conjugation, checked against the dense
 * simulator on a generic (non-stabilizer) state: for every gate G of
 * the frame alphabet and every two-qubit Pauli P,
 * G P |psi> = phase * P' G |psi> with P' = conjugateFrame(P).
 */
TEST(FrameConjugation, MatchesDenseConjugationOnGenericState)
{
    struct AlphabetGate
    {
        Circuit circuit;
        FrameOpKind kind;
    };
    const int n = 3;
    std::vector<AlphabetGate> alphabet;
    {
        Circuit h(n), s(n), sdg(n), cx(n), cz(n), sw(n);
        h.h(0);
        s.s(0);
        sdg.sdg(0);
        cx.cx(0, 1);
        cz.cz(0, 1);
        sw.swap(0, 1);
        alphabet.push_back({h, FrameOpKind::H});
        alphabet.push_back({s, FrameOpKind::S});
        alphabet.push_back({sdg, FrameOpKind::S});
        alphabet.push_back({cx, FrameOpKind::CX});
        alphabet.push_back({cz, FrameOpKind::CZ});
        alphabet.push_back({sw, FrameOpKind::Swap});
    }

    // Generic prep: includes T and RZ gates, so the identity is
    // exercised on a state with no stabilizer structure.
    Rng prepRng(23);
    const Circuit prep = test::randomCircuit(n, 40, prepRng);

    for (const AlphabetGate &g : alphabet) {
        for (std::uint64_t x = 0; x < 4; ++x) {
            for (std::uint64_t z = 0; z < 4; ++z) {
                const PauliFrame f = frameOf(x, z);

                StateVector lhs(n);
                lhs.applyUnitaries(prep);
                applyFrameDense(lhs, f);
                lhs.applyUnitaries(g.circuit);

                StateVector rhs(n);
                rhs.applyUnitaries(prep);
                rhs.applyUnitaries(g.circuit);
                applyFrameDense(rhs, conj(f, g.kind, 0b01, 0b10));

                EXPECT_NEAR(lhs.fidelity(rhs), 1.0, 1e-9)
                    << "kind=" << static_cast<int>(g.kind)
                    << " x=" << x << " z=" << z;
            }
        }
    }
}

TEST(FrameCensus, ClassifiesGateKinds)
{
    EXPECT_TRUE(isCliffordGate(circuit::GateKind::H));
    EXPECT_TRUE(isCliffordGate(circuit::GateKind::S));
    EXPECT_TRUE(isCliffordGate(circuit::GateKind::Sdg));
    EXPECT_TRUE(isCliffordGate(circuit::GateKind::CX));
    EXPECT_TRUE(isCliffordGate(circuit::GateKind::CZ));
    EXPECT_TRUE(isCliffordGate(circuit::GateKind::SWAP));
    EXPECT_TRUE(isCliffordGate(circuit::GateKind::MEASURE));
    EXPECT_TRUE(isCliffordGate(circuit::GateKind::BARRIER));
    EXPECT_FALSE(isCliffordGate(circuit::GateKind::T));
    EXPECT_FALSE(isCliffordGate(circuit::GateKind::Tdg));
    EXPECT_FALSE(isCliffordGate(circuit::GateKind::RZ));
    EXPECT_FALSE(isCliffordGate(circuit::GateKind::U3));

    Circuit c(2);
    c.h(0).cx(0, 1).t(1).rz(0, 0.5).swap(0, 1).measureAll();
    const FrameCounts counts = countCliffordGates(c);
    EXPECT_EQ(counts.clifford, 3u);
    EXPECT_EQ(counts.nonClifford, 2u);
}

TEST(AffineSupportTest, NormalFormAndMembership)
{
    // offset 0b111 + span{0b110, 0b011}: 4 elements
    // {111, 001, 100, 010}.
    const AffineSupport s = AffineSupport::fromVectors(
        0b111, {0b110, 0b011});
    EXPECT_EQ(s.dimension(), 2u);
    for (const std::uint64_t e : {0b111u, 0b001u, 0b100u, 0b010u})
        EXPECT_TRUE(s.contains(e)) << e;
    for (const std::uint64_t e : {0b000u, 0b011u, 0b101u, 0b110u})
        EXPECT_FALSE(s.contains(e)) << e;
    // Canonical offset is zero at every pivot, so it is the smallest
    // element of the coset.
    EXPECT_EQ(s.elementAt(0, s.offset), 0b001u);
}

TEST(AffineSupportTest, ElementAtEnumeratesAscending)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint64_t> vectors;
        const int count =
            1 + static_cast<int>(rng.uniformInt(std::uint64_t{5}));
        for (int i = 0; i < count; ++i)
            vectors.push_back(
                rng.uniformInt(std::uint64_t{1} << 12));
        const std::uint64_t offset =
            rng.uniformInt(std::uint64_t{1} << 12);
        const AffineSupport s =
            AffineSupport::fromVectors(offset, vectors);

        const std::uint64_t size = 1ULL << s.dimension();
        std::uint64_t previous = 0;
        for (std::uint64_t m = 0; m < size; ++m) {
            const std::uint64_t e = s.elementAt(m, s.offset);
            EXPECT_TRUE(s.contains(e));
            EXPECT_TRUE(s.contains(e ^ 0)); // exercise const path
            if (m > 0)
                EXPECT_LT(previous, e)
                    << "elementAt must walk ascending";
            previous = e;
        }
        // The original offset is a member of its own coset.
        EXPECT_TRUE(s.contains(offset));
    }
}

TEST(AffineSupportTest, ShiftedCosetEnumeratesShiftedElements)
{
    Rng rng(37);
    for (int trial = 0; trial < 50; ++trial) {
        const AffineSupport s = AffineSupport::fromVectors(
            rng.uniformInt(std::uint64_t{1} << 10),
            {rng.uniformInt(std::uint64_t{1} << 10),
             rng.uniformInt(std::uint64_t{1} << 10),
             rng.uniformInt(std::uint64_t{1} << 10)});
        const std::uint64_t shift =
            rng.uniformInt(std::uint64_t{1} << 10);
        const std::uint64_t off = s.shiftedOffset(shift);

        // {elementAt(m, off)} must equal {e ^ shift : e in s}.
        const std::uint64_t size = 1ULL << s.dimension();
        for (std::uint64_t m = 0; m < size; ++m)
            EXPECT_TRUE(s.contains(s.elementAt(m, off) ^ shift));
    }
}

TEST(AffineSupportTest, MaskedProjectionIsExact)
{
    Rng rng(41);
    for (int trial = 0; trial < 50; ++trial) {
        const AffineSupport s = AffineSupport::fromVectors(
            rng.uniformInt(std::uint64_t{1} << 8),
            {rng.uniformInt(std::uint64_t{1} << 8),
             rng.uniformInt(std::uint64_t{1} << 8),
             rng.uniformInt(std::uint64_t{1} << 8)});
        const std::uint64_t mask =
            rng.uniformInt(std::uint64_t{1} << 8);
        const AffineSupport projected = s.masked(mask);

        // Forward: every masked element projects into the image.
        for (std::uint64_t m = 0; m < (1ULL << s.dimension()); ++m)
            EXPECT_TRUE(projected.contains(
                s.elementAt(m, s.offset) & mask));
        // Backward: the image is no bigger than the masked set.
        std::vector<std::uint64_t> image;
        for (std::uint64_t m = 0; m < (1ULL << s.dimension()); ++m)
            image.push_back(s.elementAt(m, s.offset) & mask);
        std::sort(image.begin(), image.end());
        image.erase(std::unique(image.begin(), image.end()),
                    image.end());
        EXPECT_EQ(image.size(), 1ULL << projected.dimension());
    }
}

TEST(StabilizerTableauTest, KnownStateSupports)
{
    {
        // GHZ-4: support {0000, 1111}.
        Circuit c(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        StabilizerTableau tab(4);
        tab.applyUnitaries(c);
        const AffineSupport s = tab.support();
        EXPECT_EQ(s.dimension(), 1u);
        EXPECT_TRUE(s.contains(0b0000));
        EXPECT_TRUE(s.contains(0b1111));
        EXPECT_FALSE(s.contains(0b0001));
    }
    {
        // X then CX: the deterministic |11> state.
        Circuit c(2);
        c.x(0).cx(0, 1);
        StabilizerTableau tab(2);
        tab.applyUnitaries(c);
        const AffineSupport s = tab.support();
        EXPECT_EQ(s.dimension(), 0u);
        EXPECT_TRUE(s.contains(0b11));
        EXPECT_FALSE(s.contains(0b00));
    }
    {
        // S and Z change phases only: |+>|1> support unchanged.
        Circuit c(2);
        c.h(0).s(0).z(0).x(1).sdg(1);
        StabilizerTableau tab(2);
        tab.applyUnitaries(c);
        const AffineSupport s = tab.support();
        EXPECT_EQ(s.dimension(), 1u);
        EXPECT_TRUE(s.contains(0b10));
        EXPECT_TRUE(s.contains(0b11));
    }
}

TEST(StabilizerTableauTest, RejectsNonCliffordGates)
{
    StabilizerTableau tab(2);
    Circuit c(2);
    c.t(0);
    EXPECT_THROW(tab.applyUnitaries(c), VaqError);
}

/**
 * The tableau support must match exact dense amplitudes on random
 * Clifford circuits: a basis state has non-negligible probability
 * iff it lies in the affine support, and every support element
 * carries the uniform weight 2^-k.
 */
TEST(StabilizerTableauTest, SupportMatchesDenseOnRandomCorpus)
{
    const std::vector<topology::CouplingGraph> machines = {
        topology::ibmQ5Tenerife(), topology::grid(3, 4)};
    for (const auto &graph : machines) {
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            Rng rng(seed);
            const Circuit c =
                test::randomCliffordCircuit(graph, 60, rng);

            StabilizerTableau tab(graph.numQubits());
            tab.applyUnitaries(c);
            const AffineSupport support = tab.support();

            StateVector state(graph.numQubits());
            state.applyUnitaries(c);
            const double uniform =
                1.0 / static_cast<double>(
                          1ULL << support.dimension());
            for (std::uint64_t b = 0; b < state.dimension(); ++b) {
                const double p = state.probability(b);
                if (support.contains(b))
                    EXPECT_NEAR(p, uniform, 1e-9)
                        << "seed=" << seed << " basis=" << b;
                else
                    EXPECT_LT(p, 1e-9)
                        << "seed=" << seed << " basis=" << b;
            }
        }
    }
}

TEST(PauliFrameSimTest, NonCliffordCircuitFallsBack)
{
    const auto graph = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    Circuit c(5);
    c.h(0).t(0).cx(0, 1).measureAll();
    const PauliFrameSim sim(c, model);
    EXPECT_FALSE(sim.framePath());
    EXPECT_NE(sim.fallbackReason().find("non-Clifford"),
              std::string::npos);
    EXPECT_EQ(sim.gateCounts().nonClifford, 1u);
    EXPECT_THROW(sim.idealSupport(), VaqError);
    // Fallback trials still run (dense path).
    Rng rng(5);
    const std::uint64_t outcome = sim.runShot(rng);
    EXPECT_EQ(outcome & ~sim.measuredMask(), 0u);
}

TEST(PauliFrameSimTest, NoiselessFrameTrialsStayInIdealSupport)
{
    const auto graph = topology::ibmQ5Tenerife();
    // Zero error rates: the frame must stay the identity, so every
    // outcome is an ideal-support element.
    const auto perfect =
        test::uniformSnapshot(graph, 0.0, 0.0, 0.0);
    const NoiseModel model(graph, perfect, CoherenceMode::None);
    Circuit c(5);
    c.h(0).cx(0, 1).cx(1, 2).swap(2, 3).cx(3, 4).measureAll();
    const PauliFrameSim sim(c, model);
    ASSERT_TRUE(sim.framePath());
    const AffineSupport masked =
        sim.idealSupport().masked(sim.measuredMask());
    Rng rng(17);
    for (int trial = 0; trial < 500; ++trial)
        EXPECT_TRUE(masked.contains(sim.runShot(rng)));
}

TEST(PauliFrameSimTest, RunMatchesShotCountAndMask)
{
    const auto graph = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    const Circuit c = [] {
        Circuit b(5);
        b.h(0).cx(0, 1).cx(1, 2).measureAll();
        return b;
    }();
    PauliFrameOptions options;
    options.trajectory.shots = 2000;
    const PauliFrameSim sim(c, model, options);
    const ShotCounts counts = sim.run();
    EXPECT_EQ(counts.shots, 2000u);
    EXPECT_EQ(counts.measuredMask, sim.measuredMask());
    std::size_t total = 0;
    for (const auto &[outcome, count] : counts.counts) {
        EXPECT_EQ(outcome & ~counts.measuredMask, 0u);
        total += count;
    }
    EXPECT_EQ(total, counts.shots);
}

} // namespace
} // namespace vaq::sim
