/**
 * @file
 * Seeded random Clifford circuit corpus for the Pauli-frame suite.
 *
 * Circuits are generated directly in *physical* form: two-qubit
 * gates only ever act across coupling links of the target machine,
 * so they pass the engines' executability check without a mapping
 * pass. The generator draws from the full frame alphabet
 * (H/S/Sdg/X/Y/Z one-qubit, CX/CZ/SWAP two-qubit) and ends with a
 * full measurement, exercising every conjugation rule and the
 * tableau support derivation on states whose support is a
 * non-trivial affine subspace.
 */
#ifndef VAQ_TESTS_SIM_CLIFFORD_CORPUS_HPP
#define VAQ_TESTS_SIM_CLIFFORD_CORPUS_HPP

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::test
{

/**
 * Random machine-respecting Clifford circuit: `num_gates` unitaries
 * over the qubits of `graph` (60 % one-qubit, 40 % link-constrained
 * two-qubit), measured in full. Deterministic in (graph, num_gates,
 * rng state).
 *
 * Every frame-alphabet gate except H maps computational basis
 * states to single basis states (up to phase), so the support of
 * the final state has dimension at most the number of H gates.
 * `max_h` caps that count (further H draws degrade to S), which
 * outcome-checked tests use to keep the ideal accept set under the
 * engines' half-the-outcome-space meaningfulness rule; -1 leaves H
 * unlimited.
 */
inline circuit::Circuit
randomCliffordCircuit(const topology::CouplingGraph &graph,
                      int num_gates, Rng &rng, int max_h = -1)
{
    const int n = graph.numQubits();
    circuit::Circuit c(n);
    int hUsed = 0;
    for (int i = 0; i < num_gates; ++i) {
        const bool twoQubit =
            graph.linkCount() > 0 && rng.uniformInt(10) >= 6;
        if (twoQubit) {
            const auto &link = graph.links()[rng.uniformInt(
                static_cast<std::uint64_t>(graph.linkCount()))];
            // Random orientation so CX targets both directions.
            const bool flip = rng.uniformInt(2) == 1;
            const auto a = static_cast<circuit::Qubit>(
                flip ? link.b : link.a);
            const auto b = static_cast<circuit::Qubit>(
                flip ? link.a : link.b);
            switch (rng.uniformInt(3)) {
              case 0: c.cx(a, b); break;
              case 1: c.cz(a, b); break;
              default: c.swap(a, b); break;
            }
        } else {
            const auto q = static_cast<circuit::Qubit>(
                rng.uniformInt(static_cast<std::uint64_t>(n)));
            switch (rng.uniformInt(6)) {
              case 0:
                if (max_h >= 0 && hUsed >= max_h) {
                    c.s(q);
                } else {
                    c.h(q);
                    ++hUsed;
                }
                break;
              case 1: c.s(q); break;
              case 2: c.sdg(q); break;
              case 3: c.x(q); break;
              case 4: c.y(q); break;
              default: c.z(q); break;
            }
        }
    }
    c.measureAll();
    return c;
}

} // namespace vaq::test

#endif // VAQ_TESTS_SIM_CLIFFORD_CORPUS_HPP
