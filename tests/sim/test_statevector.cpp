#include "sim/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "test_support.hpp"

namespace vaq::sim
{
namespace
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

TEST(StateVector, InitializedToAllZeros)
{
    const StateVector s(3);
    EXPECT_EQ(s.dimension(), 8u);
    EXPECT_DOUBLE_EQ(s.probability(0), 1.0);
    for (std::uint64_t b = 1; b < 8; ++b)
        EXPECT_DOUBLE_EQ(s.probability(b), 0.0);
}

TEST(StateVector, WidthValidation)
{
    EXPECT_THROW(StateVector(0), VaqError);
    EXPECT_THROW(StateVector(28), VaqError);
    EXPECT_NO_THROW(StateVector(1));
}

TEST(StateVector, PauliXFlipsBit)
{
    StateVector s(2);
    s.apply(Gate::oneQubit(GateKind::X, 1));
    EXPECT_DOUBLE_EQ(s.probability(0b10), 1.0);
}

TEST(StateVector, HadamardCreatesSuperposition)
{
    StateVector s(1);
    s.apply(Gate::oneQubit(GateKind::H, 0));
    EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(s.probability(1), 0.5, 1e-12);
    // H is its own inverse.
    s.apply(Gate::oneQubit(GateKind::H, 0));
    EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
}

TEST(StateVector, CnotTruthTable)
{
    // |10> -> |11> (control = qubit 0 set).
    StateVector s(2);
    s.apply(Gate::oneQubit(GateKind::X, 0));
    s.apply(Gate::twoQubit(GateKind::CX, 0, 1));
    EXPECT_DOUBLE_EQ(s.probability(0b11), 1.0);

    // Control clear: target untouched.
    StateVector t(2);
    t.apply(Gate::twoQubit(GateKind::CX, 0, 1));
    EXPECT_DOUBLE_EQ(t.probability(0b00), 1.0);
}

TEST(StateVector, BellState)
{
    StateVector s(2);
    s.apply(Gate::oneQubit(GateKind::H, 0));
    s.apply(Gate::twoQubit(GateKind::CX, 0, 1));
    EXPECT_NEAR(s.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(s.probability(0b11), 0.5, 1e-12);
    EXPECT_NEAR(s.probability(0b01), 0.0, 1e-12);
}

TEST(StateVector, SwapExchangesStates)
{
    StateVector s(3);
    s.apply(Gate::oneQubit(GateKind::X, 0));
    s.apply(Gate::twoQubit(GateKind::SWAP, 0, 2));
    EXPECT_DOUBLE_EQ(s.probability(0b100), 1.0);
}

TEST(StateVector, SwapEqualsThreeCnots)
{
    Rng rng(5);
    const Circuit prep = test::randomCircuit(3, 20, rng);

    StateVector direct(3);
    direct.applyUnitaries(prep);
    direct.apply(Gate::twoQubit(GateKind::SWAP, 0, 2));

    StateVector threeCx(3);
    threeCx.applyUnitaries(prep);
    threeCx.apply(Gate::twoQubit(GateKind::CX, 0, 2));
    threeCx.apply(Gate::twoQubit(GateKind::CX, 2, 0));
    threeCx.apply(Gate::twoQubit(GateKind::CX, 0, 2));

    EXPECT_NEAR(direct.fidelity(threeCx), 1.0, 1e-12);
}

TEST(StateVector, CzPhaseOnlyOnBothSet)
{
    StateVector s(2);
    s.apply(Gate::oneQubit(GateKind::H, 0));
    s.apply(Gate::oneQubit(GateKind::H, 1));
    s.apply(Gate::twoQubit(GateKind::CZ, 0, 1));
    EXPECT_NEAR(s.amplitude(0b11).real(), -0.5, 1e-12);
    EXPECT_NEAR(s.amplitude(0b00).real(), 0.5, 1e-12);
}

TEST(StateVector, SAndSdgCancel)
{
    StateVector s(1);
    s.apply(Gate::oneQubit(GateKind::H, 0));
    s.apply(Gate::oneQubit(GateKind::S, 0));
    s.apply(Gate::oneQubit(GateKind::Sdg, 0));
    s.apply(Gate::oneQubit(GateKind::H, 0));
    EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
}

TEST(StateVector, TFourthPowerIsZ)
{
    StateVector viaT(1), viaZ(1);
    viaT.apply(Gate::oneQubit(GateKind::H, 0));
    viaZ.apply(Gate::oneQubit(GateKind::H, 0));
    for (int i = 0; i < 4; ++i)
        viaT.apply(Gate::oneQubit(GateKind::T, 0));
    viaZ.apply(Gate::oneQubit(GateKind::Z, 0));
    EXPECT_NEAR(viaT.fidelity(viaZ), 1.0, 1e-12);
}

TEST(StateVector, RxPiIsXUpToPhase)
{
    StateVector s(1);
    s.apply(Gate::oneQubit(GateKind::RX, 0, M_PI));
    EXPECT_NEAR(s.probability(1), 1.0, 1e-12);
}

TEST(StateVector, RyRotatesByExpectedAngle)
{
    StateVector s(1);
    s.apply(Gate::oneQubit(GateKind::RY, 0, M_PI / 3.0));
    EXPECT_NEAR(s.probability(1), std::pow(std::sin(M_PI / 6.0), 2),
                1e-12);
}

TEST(StateVector, RzIsDiagonalPhase)
{
    StateVector s(1);
    s.apply(Gate::oneQubit(GateKind::RZ, 0, 1.234));
    EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
}

TEST(StateVector, YSquaredIsIdentity)
{
    Rng rng(6);
    const Circuit prep = test::randomCircuit(2, 10, rng);
    StateVector a(2), b(2);
    a.applyUnitaries(prep);
    b.applyUnitaries(prep);
    b.apply(Gate::oneQubit(GateKind::Y, 0));
    b.apply(Gate::oneQubit(GateKind::Y, 0));
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(StateVector, NormPreservedByRandomCircuits)
{
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        StateVector s(5);
        s.applyUnitaries(test::randomCircuit(5, 100, rng));
        EXPECT_NEAR(s.norm(), 1.0, 1e-9);
    }
}

TEST(StateVector, RejectsNonUnitaries)
{
    StateVector s(2);
    EXPECT_THROW(s.apply(Gate::measure(0)), VaqError);
    EXPECT_THROW(s.apply(Gate::barrier()), VaqError);
}

TEST(StateVector, SampleMatchesDistribution)
{
    StateVector s(2);
    s.apply(Gate::oneQubit(GateKind::H, 0));
    s.apply(Gate::twoQubit(GateKind::CX, 0, 1));
    Rng rng(8);
    int zeros = 0, threes = 0;
    const int shots = 20000;
    for (int i = 0; i < shots; ++i) {
        const auto outcome = s.sample(rng);
        EXPECT_TRUE(outcome == 0b00 || outcome == 0b11);
        zeros += outcome == 0b00;
        threes += outcome == 0b11;
    }
    EXPECT_NEAR(zeros / static_cast<double>(shots), 0.5, 0.02);
    EXPECT_NEAR(threes / static_cast<double>(shots), 0.5, 0.02);
}

TEST(StateVector, FidelityDistinguishesStates)
{
    StateVector zero(1), one(1);
    one.apply(Gate::oneQubit(GateKind::X, 0));
    EXPECT_NEAR(zero.fidelity(one), 0.0, 1e-12);
    EXPECT_NEAR(zero.fidelity(zero), 1.0, 1e-12);
}

TEST(StateVector, GhzProbabilities)
{
    StateVector s(4);
    s.apply(Gate::oneQubit(GateKind::H, 0));
    for (int q = 0; q + 1 < 4; ++q)
        s.apply(Gate::twoQubit(GateKind::CX, q, q + 1));
    EXPECT_NEAR(s.probability(0b0000), 0.5, 1e-12);
    EXPECT_NEAR(s.probability(0b1111), 0.5, 1e-12);
}

} // namespace
} // namespace vaq::sim
