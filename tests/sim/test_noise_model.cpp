#include "sim/noise_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::sim
{
namespace
{

using circuit::Gate;
using circuit::GateKind;

class NoiseModelTest : public ::testing::Test
{
  protected:
    NoiseModelTest()
        : graph(topology::ibmQ5Tenerife()),
          snap(test::uniformSnapshot(graph, 0.04, 0.003, 0.03))
    {}

    topology::CouplingGraph graph;
    calibration::Snapshot snap;
};

TEST_F(NoiseModelTest, OpErrorsComeFromCalibration)
{
    const NoiseModel model(graph, snap);
    EXPECT_DOUBLE_EQ(
        model.opErrorProb(Gate::twoQubit(GateKind::CX, 0, 1)),
        0.04);
    EXPECT_DOUBLE_EQ(
        model.opErrorProb(Gate::oneQubit(GateKind::H, 2)), 0.003);
    EXPECT_DOUBLE_EQ(model.opErrorProb(Gate::measure(3)), 0.03);
    EXPECT_DOUBLE_EQ(model.opErrorProb(Gate::barrier()), 0.0);
}

TEST_F(NoiseModelTest, SwapChargesThreeCnots)
{
    const NoiseModel model(graph, snap);
    EXPECT_NEAR(
        model.opErrorProb(Gate::twoQubit(GateKind::SWAP, 0, 1)),
        1.0 - std::pow(0.96, 3), 1e-12);
}

TEST_F(NoiseModelTest, UnroutedGateRejected)
{
    const NoiseModel model(graph, snap);
    // 0-4 is not a Tenerife link.
    EXPECT_THROW(
        model.opErrorProb(Gate::twoQubit(GateKind::CX, 0, 4)),
        VaqError);
}

TEST_F(NoiseModelTest, DurationsByKind)
{
    const NoiseModel model(graph, snap);
    const auto &d = snap.durations;
    EXPECT_DOUBLE_EQ(
        model.opDurationNs(Gate::oneQubit(GateKind::X, 0)),
        d.oneQubitNs);
    EXPECT_DOUBLE_EQ(
        model.opDurationNs(Gate::twoQubit(GateKind::CX, 0, 1)),
        d.twoQubitNs);
    EXPECT_DOUBLE_EQ(
        model.opDurationNs(Gate::twoQubit(GateKind::SWAP, 0, 1)),
        3.0 * d.twoQubitNs);
    EXPECT_DOUBLE_EQ(model.opDurationNs(Gate::measure(0)),
                     d.measureNs);
    EXPECT_DOUBLE_EQ(model.opDurationNs(Gate::barrier()), 0.0);
}

TEST_F(NoiseModelTest, CoherenceScalesWithT1)
{
    const NoiseModel model(graph, snap);
    const Gate cx = Gate::twoQubit(GateKind::CX, 0, 1);
    const double expected =
        1.0 - std::exp(-200.0 / (80.0 * 1000.0));
    // Two operands decohere independently.
    EXPECT_NEAR(model.coherenceErrorProb(cx),
                1.0 - std::pow(1.0 - expected, 2), 1e-12);
}

TEST_F(NoiseModelTest, CoherenceModeNoneDisablesIt)
{
    const NoiseModel model(graph, snap, CoherenceMode::None);
    EXPECT_DOUBLE_EQ(model.coherenceErrorProb(
                         Gate::twoQubit(GateKind::CX, 0, 1)),
                     0.0);
    EXPECT_NEAR(
        model.totalErrorProb(Gate::twoQubit(GateKind::CX, 0, 1)),
        0.04, 1e-12);
}

TEST_F(NoiseModelTest, GateErrorsDominateCoherence)
{
    // The paper's Section 4.4 observation: with realistic
    // durations, operational errors dwarf coherence errors
    // (~16x for bv-20); check the per-op ratio is >= 5x.
    const NoiseModel model(graph, snap);
    const Gate cx = Gate::twoQubit(GateKind::CX, 0, 1);
    EXPECT_GT(model.opErrorProb(cx),
              5.0 * model.coherenceErrorProb(cx));
}

TEST_F(NoiseModelTest, TotalCombinesIndependently)
{
    const NoiseModel model(graph, snap);
    const Gate cx = Gate::twoQubit(GateKind::CX, 0, 1);
    const double op = model.opErrorProb(cx);
    const double coh = model.coherenceErrorProb(cx);
    EXPECT_NEAR(model.totalErrorProb(cx),
                1.0 - (1.0 - op) * (1.0 - coh), 1e-12);
}

TEST_F(NoiseModelTest, IdleErrorOnlyInIdleMode)
{
    const NoiseModel perOp(graph, snap, CoherenceMode::PerOp);
    EXPECT_DOUBLE_EQ(perOp.idleErrorProb(0, 1000.0), 0.0);

    const NoiseModel idle(graph, snap, CoherenceMode::Idle);
    EXPECT_GT(idle.idleErrorProb(0, 1000.0), 0.0);
    EXPECT_DOUBLE_EQ(idle.idleErrorProb(0, 0.0), 0.0);
}

TEST_F(NoiseModelTest, LongerIdleMeansMoreError)
{
    const NoiseModel idle(graph, snap, CoherenceMode::Idle);
    EXPECT_GT(idle.idleErrorProb(0, 2000.0),
              idle.idleErrorProb(0, 500.0));
}

TEST(NoiseModel, ShapeMismatchRejected)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const auto line = topology::linear(5);
    const auto snap = test::uniformSnapshot(line);
    EXPECT_THROW(NoiseModel(q5, snap), VaqError);
}

TEST(NoiseModel, WeakQubitHasWorseCoherence)
{
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = test::uniformSnapshot(q5);
    snap.qubit(1).t1Us = 10.0; // much shorter T1
    const NoiseModel model(q5, snap);
    EXPECT_GT(model.coherenceErrorProb(
                  Gate::oneQubit(GateKind::H, 1)),
              model.coherenceErrorProb(
                  Gate::oneQubit(GateKind::H, 0)));
}

} // namespace
} // namespace vaq::sim
