#include "sim/trajectory_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::sim
{
namespace
{

using circuit::Circuit;

class TrajectoryTest : public ::testing::Test
{
  protected:
    TrajectoryTest()
        : graph(topology::ibmQ5Tenerife()),
          snap(test::uniformSnapshot(graph))
    {}

    topology::CouplingGraph graph;
    calibration::Snapshot snap;
};

TEST_F(TrajectoryTest, IdealOutcomesOfBv)
{
    // BV with the all-ones secret returns the secret
    // deterministically on the data qubits.
    const Circuit bv = workloads::bernsteinVazirani(3);
    const auto outcomes = idealOutcomes(bv);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], 0b011u); // two data qubits, both 1
}

TEST_F(TrajectoryTest, IdealOutcomesOfGhz)
{
    const Circuit ghz = workloads::ghz(3);
    const auto outcomes = idealOutcomes(ghz);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0], 0b000u);
    EXPECT_EQ(outcomes[1], 0b111u);
}

TEST_F(TrajectoryTest, IdealOutcomesOfTriSwap)
{
    const auto outcomes = idealOutcomes(workloads::triSwap());
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], 0b100u);
}

TEST_F(TrajectoryTest, IdealOutcomesRequireMeasurement)
{
    Circuit c(2);
    c.h(0);
    EXPECT_THROW(idealOutcomes(c), VaqError);
}

TEST_F(TrajectoryTest, UniformOutputRejected)
{
    // QFT of |0..0> yields the uniform distribution: "success"
    // by output checking is meaningless and must be refused.
    Circuit c(3);
    c.h(0).h(1).h(2).measureAll();
    EXPECT_THROW(idealOutcomes(c), VaqError);
}

TEST_F(TrajectoryTest, NoiselessMachineAlwaysCorrect)
{
    auto perfect = test::uniformSnapshot(graph, 0.0, 0.0, 0.0);
    const NoiseModel model(graph, perfect,
                           CoherenceMode::None);
    TrajectoryOptions options;
    options.shots = 256;
    TrajectorySimulator sim(model, options);

    const Circuit bv = workloads::bernsteinVazirani(3);
    const ShotCounts counts = sim.run(bv);
    EXPECT_EQ(counts.shots, 256u);
    EXPECT_DOUBLE_EQ(
        pstFromCounts(counts, idealOutcomes(bv)), 1.0);
}

TEST_F(TrajectoryTest, NoiseDegradesPst)
{
    const NoiseModel model(graph, snap);
    TrajectoryOptions options;
    options.shots = 2048;
    TrajectorySimulator sim(model, options);
    const Circuit bv = workloads::bernsteinVazirani(3);
    const double pst =
        pstFromCounts(sim.run(bv), idealOutcomes(bv));
    EXPECT_LT(pst, 1.0);
    EXPECT_GT(pst, 0.3); // not destroyed either
}

TEST_F(TrajectoryTest, MoreNoiseLowerPst)
{
    const Circuit bv = workloads::bernsteinVazirani(3);
    const auto ideal = idealOutcomes(bv);

    const NoiseModel mild(graph, snap);
    auto worseSnap = test::uniformSnapshot(graph, 0.25, 0.02,
                                           0.10);
    const NoiseModel harsh(graph, worseSnap);

    TrajectoryOptions options;
    options.shots = 2048;
    const double pstMild = pstFromCounts(
        TrajectorySimulator(mild, options).run(bv), ideal);
    const double pstHarsh = pstFromCounts(
        TrajectorySimulator(harsh, options).run(bv), ideal);
    EXPECT_GT(pstMild, pstHarsh);
}

TEST_F(TrajectoryTest, DeterministicPerSeed)
{
    const NoiseModel model(graph, snap);
    TrajectoryOptions options;
    options.shots = 512;
    options.seed = 5;
    const Circuit bv = workloads::bernsteinVazirani(3);
    const auto a = TrajectorySimulator(model, options).run(bv);
    const auto b = TrajectorySimulator(model, options).run(bv);
    EXPECT_EQ(a.counts, b.counts);
}

TEST_F(TrajectoryTest, CountsSumToShots)
{
    const NoiseModel model(graph, snap);
    TrajectoryOptions options;
    options.shots = 333;
    const auto counts = TrajectorySimulator(model, options)
                            .run(workloads::ghz(3));
    std::size_t total = 0;
    for (const auto &[outcome, n] : counts.counts) {
        EXPECT_EQ(outcome & ~counts.measuredMask, 0u);
        total += n;
    }
    EXPECT_EQ(total, 333u);
}

TEST_F(TrajectoryTest, UnroutedCircuitRejected)
{
    const NoiseModel model(graph, snap);
    Circuit bad(5);
    bad.cx(0, 4).measureAll();
    TrajectorySimulator sim(model);
    EXPECT_THROW(sim.run(bad), VaqError);
}

TEST_F(TrajectoryTest, ReadoutNoiseAloneCausesErrors)
{
    auto readoutOnly = test::uniformSnapshot(graph, 0.0, 0.0,
                                             0.25);
    const NoiseModel model(graph, readoutOnly,
                           CoherenceMode::None);
    TrajectoryOptions options;
    options.shots = 2048;
    const Circuit bv = workloads::bernsteinVazirani(3);
    const double pst = pstFromCounts(
        TrajectorySimulator(model, options).run(bv),
        idealOutcomes(bv));
    // Two measured qubits, each flipped with p = 0.25.
    EXPECT_NEAR(pst, 0.75 * 0.75, 0.05);
}

TEST_F(TrajectoryTest, CrosstalkLowersPst)
{
    const NoiseModel model(graph, snap);
    const Circuit bv = workloads::bernsteinVazirani(3);
    const auto ideal = idealOutcomes(bv);

    TrajectoryOptions clean;
    clean.shots = 4096;
    TrajectoryOptions noisy = clean;
    noisy.crosstalk = 0.8;

    const double pstClean = pstFromCounts(
        TrajectorySimulator(model, clean).run(bv), ideal);
    const double pstNoisy = pstFromCounts(
        TrajectorySimulator(model, noisy).run(bv), ideal);
    EXPECT_GT(pstClean, pstNoisy);
}

TEST_F(TrajectoryTest, ZeroCrosstalkMatchesDefault)
{
    const NoiseModel model(graph, snap);
    const Circuit bv = workloads::bernsteinVazirani(3);
    TrajectoryOptions a, b;
    a.shots = b.shots = 512;
    b.crosstalk = 0.0;
    EXPECT_EQ(TrajectorySimulator(model, a).run(bv).counts,
              TrajectorySimulator(model, b).run(bv).counts);
}

TEST_F(TrajectoryTest, CrosstalkOptionValidated)
{
    const NoiseModel model(graph, snap);
    TrajectoryOptions bad;
    bad.crosstalk = 1.5;
    EXPECT_THROW(TrajectorySimulator(model, bad), VaqError);
    bad.crosstalk = -0.1;
    EXPECT_THROW(TrajectorySimulator(model, bad), VaqError);
}

TEST_F(TrajectoryTest, MeasuredMaskCoversMeasuredQubitsOnly)
{
    const NoiseModel model(graph, snap);
    Circuit c(5);
    c.h(0).cx(0, 1).measure(0).measure(1);
    const auto counts = TrajectorySimulator(model).run(c);
    EXPECT_EQ(counts.measuredMask, 0b00011u);
}

} // namespace
} // namespace vaq::sim
