#include "sim/parallel_fault_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::sim
{
namespace
{

using circuit::Circuit;

class ParallelFaultSimTest : public ::testing::Test
{
  protected:
    ParallelFaultSimTest()
        : graph(topology::ibmQ5Tenerife()),
          snap(test::uniformSnapshot(graph)), workload(5)
    {
        workload.h(0).cx(0, 1).cx(1, 2).swap(2, 3).cx(3, 4)
            .measureAll();
    }

    topology::CouplingGraph graph;
    calibration::Snapshot snap;
    Circuit workload;
};

TEST_F(ParallelFaultSimTest, BitIdenticalAcrossThreadCounts)
{
    const NoiseModel model(graph, snap);
    ParallelFaultSimOptions options;
    options.trials = 100'000;
    options.seed = 42;
    options.chunkTrials = 4096;

    const FaultSimResult one =
        ParallelFaultSim(1).run(workload, model, options);
    const FaultSimResult two =
        ParallelFaultSim(2).run(workload, model, options);
    const FaultSimResult eight =
        ParallelFaultSim(8).run(workload, model, options);

    EXPECT_EQ(one.trials, options.trials);
    EXPECT_EQ(one.successes, two.successes);
    EXPECT_EQ(one.successes, eight.successes);
    EXPECT_DOUBLE_EQ(one.pst, eight.pst);
    EXPECT_DOUBLE_EQ(one.stderrPst, eight.stderrPst);
}

TEST_F(ParallelFaultSimTest, RepeatedRunsAreDeterministic)
{
    const NoiseModel model(graph, snap);
    ParallelFaultSim engine(4);
    ParallelFaultSimOptions options;
    options.trials = 50'000;
    const auto a = engine.run(workload, model, options);
    const auto b = engine.run(workload, model, options);
    EXPECT_EQ(a.successes, b.successes);

    options.seed = 99;
    const auto other = engine.run(workload, model, options);
    EXPECT_NE(a.successes, other.successes);
}

TEST_F(ParallelFaultSimTest, TracksAnalyticPst)
{
    const NoiseModel model(graph, snap);
    ParallelFaultSimOptions options;
    options.trials = 400'000;
    const FaultSimResult result =
        runFaultInjectionParallel(workload, model, options);
    EXPECT_NEAR(result.pst, result.analyticPst,
                4.0 * result.stderrPst + 1e-4);
    EXPECT_DOUBLE_EQ(result.analyticPst,
                     analyticPst(workload, model));
}

TEST_F(ParallelFaultSimTest, PartialFinalChunkRunsExactBudget)
{
    const NoiseModel model(graph, snap);
    ParallelFaultSimOptions options;
    options.trials = 10'001;
    options.chunkTrials = 1000;
    const auto result =
        runFaultInjectionParallel(workload, model, options);
    EXPECT_EQ(result.trials, 10'001u);
    EXPECT_LE(result.successes, result.trials);
}

TEST_F(ParallelFaultSimTest, AdaptiveModeStopsEarly)
{
    const NoiseModel model(graph, snap);
    ParallelFaultSimOptions options;
    options.trials = 1'000'000;
    options.chunkTrials = 1000;
    options.targetStderr = 0.005;
    const auto result =
        runFaultInjectionParallel(workload, model, options);
    EXPECT_LT(result.trials, options.trials);
    EXPECT_LE(result.stderrPst, options.targetStderr);
    EXPECT_GT(result.trials, 0u);
}

TEST_F(ParallelFaultSimTest, AdaptiveStopIsThreadCountInvariant)
{
    const NoiseModel model(graph, snap);
    ParallelFaultSimOptions options;
    options.trials = 1'000'000;
    options.chunkTrials = 1000;
    options.targetStderr = 0.004;

    const auto one = ParallelFaultSim(1).run(workload, model,
                                             options);
    const auto eight = ParallelFaultSim(8).run(workload, model,
                                               options);
    EXPECT_EQ(one.trials, eight.trials);
    EXPECT_EQ(one.successes, eight.successes);
}

TEST_F(ParallelFaultSimTest, UnreachableTargetRunsFullBudget)
{
    const NoiseModel model(graph, snap);
    ParallelFaultSimOptions options;
    options.trials = 20'000;
    options.chunkTrials = 1000;
    options.targetStderr = 1e-9; // needs ~1e17 trials
    const auto result =
        runFaultInjectionParallel(workload, model, options);
    EXPECT_EQ(result.trials, options.trials);
}

TEST_F(ParallelFaultSimTest, BatchMatchesIndividualRuns)
{
    const NoiseModel model(graph, snap);
    std::vector<Circuit> sweep;
    {
        Circuit a(5);
        a.cx(0, 1).measureAll();
        Circuit b(5);
        b.h(0).cx(0, 1).cx(1, 2).measureAll();
        sweep.push_back(a);
        sweep.push_back(b);
        sweep.push_back(workload);
    }
    ParallelFaultSimOptions options;
    options.trials = 30'000;

    ParallelFaultSim engine(4);
    const auto batch = engine.runBatch(sweep, model, options);
    ASSERT_EQ(batch.size(), sweep.size());
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto solo = engine.run(sweep[i], model, options);
        EXPECT_EQ(batch[i].successes, solo.successes);
        EXPECT_EQ(batch[i].trials, solo.trials);
        EXPECT_DOUBLE_EQ(batch[i].analyticPst, solo.analyticPst);
    }
}

TEST_F(ParallelFaultSimTest, EmptyBatchReturnsNothing)
{
    const NoiseModel model(graph, snap);
    const auto results = runFaultInjectionBatch(
        std::span<const Circuit>{}, model, {});
    EXPECT_TRUE(results.empty());
}

TEST_F(ParallelFaultSimTest, BoundaryRunsReportPositiveStderr)
{
    // All-success: the perfect machine.
    const auto perfect = test::uniformSnapshot(graph, 0.0, 0.0, 0.0);
    const NoiseModel noiseless(graph, perfect,
                               CoherenceMode::None);
    ParallelFaultSimOptions options;
    options.trials = 2000;
    const auto good =
        runFaultInjectionParallel(workload, noiseless, options);
    EXPECT_EQ(good.successes, good.trials);
    EXPECT_GT(good.stderrPst, 0.0);

    // All-failure: a link that always errors.
    auto broken = snap;
    broken.setLinkError(graph.linkIndex(0, 1), 1.0);
    const NoiseModel hopeless(graph, broken, CoherenceMode::None);
    Circuit c(5);
    c.cx(0, 1);
    const auto bad =
        runFaultInjectionParallel(c, hopeless, options);
    EXPECT_EQ(bad.successes, 0u);
    EXPECT_GT(bad.stderrPst, 0.0);
}

TEST_F(ParallelFaultSimTest, OptionsValidated)
{
    const NoiseModel model(graph, snap);
    ParallelFaultSimOptions options;
    options.trials = 0;
    EXPECT_THROW(runFaultInjectionParallel(workload, model,
                                           options),
                 VaqError);
    options.trials = 100;
    options.chunkTrials = 0;
    EXPECT_THROW(runFaultInjectionParallel(workload, model,
                                           options),
                 VaqError);
    options.chunkTrials = 10;
    options.targetStderr = -0.1;
    EXPECT_THROW(runFaultInjectionParallel(workload, model,
                                           options),
                 VaqError);
}

TEST_F(ParallelFaultSimTest, CorruptCalibrationIsRejected)
{
    auto corrupt = snap;
    corrupt.qubit(0).readoutError = 1.5; // out of [0, 1]
    const NoiseModel model(graph, corrupt, CoherenceMode::None);
    Circuit c(5);
    c.measure(0);
    EXPECT_THROW(runFaultInjectionParallel(c, model, {}), VaqError);
    EXPECT_THROW(analyticPst(c, model), VaqError);
}

} // namespace
} // namespace vaq::sim
