#include "sim/schedule.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::sim
{
namespace
{

using circuit::Circuit;

class ScheduleTest : public ::testing::Test
{
  protected:
    ScheduleTest()
        : graph(topology::ibmQ5Tenerife()),
          snap(test::uniformSnapshot(graph)),
          model(graph, snap)
    {}

    topology::CouplingGraph graph;
    calibration::Snapshot snap;
    NoiseModel model;
};

TEST_F(ScheduleTest, EmptyCircuit)
{
    const Schedule s = scheduleCircuit(Circuit(5), model);
    EXPECT_TRUE(s.ops.empty());
    EXPECT_DOUBLE_EQ(s.durationNs, 0.0);
}

TEST_F(ScheduleTest, SerialGatesStack)
{
    Circuit c(5);
    c.h(0).h(0).h(0);
    const Schedule s = scheduleCircuit(c, model);
    const double t1q = snap.durations.oneQubitNs;
    ASSERT_EQ(s.ops.size(), 3u);
    EXPECT_DOUBLE_EQ(s.ops[0].startNs, 0.0);
    EXPECT_DOUBLE_EQ(s.ops[1].startNs, t1q);
    EXPECT_DOUBLE_EQ(s.ops[2].startNs, 2.0 * t1q);
    EXPECT_DOUBLE_EQ(s.durationNs, 3.0 * t1q);
}

TEST_F(ScheduleTest, ParallelGatesOverlap)
{
    Circuit c(5);
    c.h(0).h(1).h(2);
    const Schedule s = scheduleCircuit(c, model);
    EXPECT_DOUBLE_EQ(s.durationNs, snap.durations.oneQubitNs);
}

TEST_F(ScheduleTest, TwoQubitGateBlocksBothOperands)
{
    Circuit c(5);
    c.cx(0, 1).h(1);
    const Schedule s = scheduleCircuit(c, model);
    EXPECT_DOUBLE_EQ(s.ops[1].startNs,
                     snap.durations.twoQubitNs);
}

TEST_F(ScheduleTest, BarrierSynchronizesAll)
{
    Circuit c(5);
    c.cx(0, 1).barrier().h(4);
    const Schedule s = scheduleCircuit(c, model);
    // h(4) cannot start before the barrier time = CX end.
    EXPECT_DOUBLE_EQ(s.ops[2].startNs,
                     snap.durations.twoQubitNs);
}

TEST_F(ScheduleTest, SwapTakesThreeCnotDurations)
{
    Circuit c(5);
    c.swap(0, 1);
    const Schedule s = scheduleCircuit(c, model);
    EXPECT_DOUBLE_EQ(s.durationNs,
                     3.0 * snap.durations.twoQubitNs);
}

TEST_F(ScheduleTest, IdleTimeComputed)
{
    // Qubit 1 does the first CX then waits while 2-3 run twice,
    // then works again.
    Circuit c(5);
    c.cx(1, 2).cx(2, 3).cx(2, 3).cx(1, 2);
    const Schedule s = scheduleCircuit(c, model);
    const double t2q = snap.durations.twoQubitNs;
    EXPECT_DOUBLE_EQ(s.idleNs(c, 1), 2.0 * t2q);
    // Qubit 2 never idles.
    EXPECT_DOUBLE_EQ(s.idleNs(c, 2), 0.0);
    // Qubit 4 never works.
    EXPECT_DOUBLE_EQ(s.idleNs(c, 4), 0.0);
}

TEST_F(ScheduleTest, MakespanIsMaxEnd)
{
    Circuit c(5);
    c.cx(0, 1).cx(2, 3).h(4).h(4);
    const Schedule s = scheduleCircuit(c, model);
    double maxEnd = 0.0;
    for (const ScheduledOp &op : s.ops)
        maxEnd = std::max(maxEnd, op.endNs);
    EXPECT_DOUBLE_EQ(s.durationNs, maxEnd);
}

TEST_F(ScheduleTest, OpsKeepProgramOrderIndices)
{
    Circuit c(5);
    c.h(0).cx(0, 1).measure(1);
    const Schedule s = scheduleCircuit(c, model);
    ASSERT_EQ(s.ops.size(), 3u);
    for (std::size_t i = 0; i < s.ops.size(); ++i)
        EXPECT_EQ(s.ops[i].gateIndex, i);
}

} // namespace
} // namespace vaq::sim
