#include "sim/fault_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/mapper.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::sim
{
namespace
{

using circuit::Circuit;

class FaultSimTest : public ::testing::Test
{
  protected:
    FaultSimTest()
        : graph(topology::ibmQ5Tenerife()),
          snap(test::uniformSnapshot(graph))
    {}

    topology::CouplingGraph graph;
    calibration::Snapshot snap;
};

TEST_F(FaultSimTest, ExecutableCheckRejectsUnroutedCircuits)
{
    const NoiseModel model(graph, snap);
    Circuit bad(5);
    bad.cx(0, 4); // not a Tenerife link
    EXPECT_THROW(checkExecutable(bad, model), VaqError);
    EXPECT_THROW(analyticPst(bad, model), VaqError);

    Circuit good(5);
    good.cx(0, 1).cx(2, 3);
    EXPECT_NO_THROW(checkExecutable(good, model));
}

TEST_F(FaultSimTest, ExecutableCheckRejectsWideCircuits)
{
    const NoiseModel model(graph, snap);
    Circuit wide(6);
    wide.h(5);
    EXPECT_THROW(checkExecutable(wide, model), VaqError);
}

TEST_F(FaultSimTest, AnalyticPstOfEmptyCircuitIsOne)
{
    const NoiseModel model(graph, snap);
    EXPECT_DOUBLE_EQ(analyticPst(Circuit(5), model), 1.0);
}

TEST_F(FaultSimTest, AnalyticPstSingleGate)
{
    const NoiseModel model(graph, snap, CoherenceMode::None);
    Circuit c(5);
    c.cx(0, 1);
    EXPECT_NEAR(analyticPst(c, model), 0.96, 1e-12);
}

TEST_F(FaultSimTest, AnalyticPstIsProductOfSuccesses)
{
    const NoiseModel model(graph, snap, CoherenceMode::None);
    Circuit c(5);
    c.h(0).cx(0, 1).measure(0);
    EXPECT_NEAR(analyticPst(c, model),
                (1.0 - 0.003) * 0.96 * (1.0 - 0.03), 1e-12);
}

TEST_F(FaultSimTest, BarriersAreFree)
{
    const NoiseModel model(graph, snap);
    Circuit plain(5), withBarriers(5);
    plain.h(0).cx(0, 1);
    withBarriers.barrier().h(0).barrier().cx(0, 1).barrier();
    EXPECT_DOUBLE_EQ(analyticPst(plain, model),
                     analyticPst(withBarriers, model));
}

TEST_F(FaultSimTest, MonteCarloMatchesAnalytic)
{
    const NoiseModel model(graph, snap);
    Circuit c(5);
    c.h(0).cx(0, 1).cx(1, 2).swap(2, 3).measureAll();

    FaultSimOptions options;
    options.trials = 400000;
    const FaultSimResult result =
        runFaultInjection(c, model, options);
    EXPECT_EQ(result.trials, options.trials);
    EXPECT_NEAR(result.pst, result.analyticPst,
                4.0 * result.stderrPst + 1e-4);
}

TEST_F(FaultSimTest, MonteCarloIsDeterministicPerSeed)
{
    const NoiseModel model(graph, snap);
    Circuit c(5);
    c.cx(0, 1).cx(1, 2).measureAll();
    FaultSimOptions options;
    options.trials = 10000;
    options.seed = 77;
    const auto a = runFaultInjection(c, model, options);
    const auto b = runFaultInjection(c, model, options);
    EXPECT_EQ(a.successes, b.successes);

    options.seed = 78;
    const auto other = runFaultInjection(c, model, options);
    EXPECT_NE(a.successes, other.successes);
}

TEST_F(FaultSimTest, WorseLinksLowerPst)
{
    Circuit c(5);
    c.cx(0, 1).cx(0, 1).cx(0, 1).measureAll();

    auto weak = snap;
    weak.setLinkError(graph.linkIndex(0, 1), 0.2);
    const NoiseModel good(graph, snap);
    const NoiseModel bad(graph, weak);
    EXPECT_GT(analyticPst(c, good), analyticPst(c, bad));
}

TEST_F(FaultSimTest, IdleModeChargesIdleQubits)
{
    // Qubit 1 acts, then must wait for the busy 2-3 pair before
    // its next gate (a real dependency — ASAP cannot pack it):
    // only the idle-aware mode charges that waiting window.
    Circuit c(5);
    c.cx(0, 1);
    for (int i = 0; i < 20; ++i)
        c.cx(2, 3);
    c.cx(1, 2);
    const NoiseModel perOp(graph, snap, CoherenceMode::PerOp);
    const NoiseModel idle(graph, snap, CoherenceMode::Idle);
    EXPECT_GT(analyticPst(c, perOp), analyticPst(c, idle));
}

TEST_F(FaultSimTest, ZeroErrorMachineAlwaysSucceeds)
{
    auto perfect = test::uniformSnapshot(graph, 0.0, 0.0, 0.0);
    const NoiseModel model(graph, perfect,
                           CoherenceMode::None);
    Circuit c(5);
    c.h(0).cx(0, 1).measureAll();
    FaultSimOptions options;
    options.trials = 1000;
    const auto result = runFaultInjection(c, model, options);
    EXPECT_EQ(result.successes, result.trials);
    EXPECT_DOUBLE_EQ(result.analyticPst, 1.0);
}

TEST_F(FaultSimTest, ResultAnalyticSharesAnalyticPstCodePath)
{
    // runFaultInjection and analyticPst() reduce the same collected
    // probabilities through one helper; the reported closed forms
    // must be bit-identical, not merely close.
    const NoiseModel model(graph, snap, CoherenceMode::Idle);
    Circuit c(5);
    c.h(0).cx(0, 1);
    for (int i = 0; i < 10; ++i)
        c.cx(2, 3);
    c.cx(1, 2).measureAll();
    FaultSimOptions options;
    options.trials = 1000;
    const auto result = runFaultInjection(c, model, options);
    EXPECT_DOUBLE_EQ(result.analyticPst, analyticPst(c, model));
}

TEST(FaultSimStderr, BoundaryTalliesNeverReportZero)
{
    // All-success / all-failure used to report stderr == 0 via the
    // normal approximation; the Wilson/rule-of-three bound keeps the
    // error bar positive so adaptive stopping cannot fire spuriously.
    EXPECT_GT(detail::pstStandardError(0, 1000), 0.0);
    EXPECT_GT(detail::pstStandardError(1000, 1000), 0.0);
    // Wilson z = 1 half-width at the boundary is 1/(2(n+1)).
    EXPECT_DOUBLE_EQ(detail::pstStandardError(0, 1000),
                     0.5 / 1001.0);
    EXPECT_DOUBLE_EQ(detail::pstStandardError(1000, 1000),
                     0.5 / 1001.0);
}

TEST(FaultSimStderr, BoundaryBoundShrinksWithTrials)
{
    EXPECT_GT(detail::pstStandardError(0, 100),
              detail::pstStandardError(0, 10'000));
    EXPECT_GT(detail::pstStandardError(0, 10'000),
              detail::pstStandardError(0, 1'000'000));
}

TEST(FaultSimStderr, InteriorMatchesNormalApproximation)
{
    const double p = 400.0 / 1000.0;
    EXPECT_DOUBLE_EQ(detail::pstStandardError(400, 1000),
                     std::sqrt(p * (1.0 - p) / 1000.0));
}

TEST(FaultSimStderr, BoundaryResultsSurfaceTheBound)
{
    const auto graph = topology::ibmQ5Tenerife();
    const auto perfect = test::uniformSnapshot(graph, 0.0, 0.0, 0.0);
    const NoiseModel model(graph, perfect, CoherenceMode::None);
    Circuit c(5);
    c.h(0).cx(0, 1).measureAll();
    FaultSimOptions options;
    options.trials = 500;
    const auto result = runFaultInjection(c, model, options);
    EXPECT_DOUBLE_EQ(result.pst, 1.0);
    EXPECT_DOUBLE_EQ(result.stderrPst, 0.5 / 501.0);
}

TEST(FaultSimProbs, CorruptCalibrationThrowsInsteadOfClamping)
{
    const auto graph = topology::ibmQ5Tenerife();
    auto snap = test::uniformSnapshot(graph);
    snap.qubit(2).error1q = -0.25;
    const NoiseModel model(graph, snap, CoherenceMode::None);
    Circuit c(5);
    c.h(2);
    EXPECT_THROW(analyticPst(c, model), VaqError);
    EXPECT_THROW(runFaultInjection(c, model, {}), VaqError);
}

TEST_F(FaultSimTest, OptionsValidated)
{
    const NoiseModel model(graph, snap);
    FaultSimOptions options;
    options.trials = 0;
    EXPECT_THROW(runFaultInjection(Circuit(5), model, options),
                 VaqError);
}

/** Property sweep: the PST pipeline behaves across error scales. */
class FaultSimScaleSweep
    : public ::testing::TestWithParam<double>
{
};

TEST_P(FaultSimScaleSweep, MonteCarloTracksAnalytic)
{
    const double scale = GetParam();
    const auto q5 = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(
        q5, 0.04 * scale, 0.003 * scale, 0.03 * scale);
    const NoiseModel model(q5, snap);

    Circuit c(5);
    c.h(0).cx(0, 1).cx(1, 2).swap(2, 3).cx(3, 4).measureAll();
    FaultSimOptions options;
    options.trials = 200000;
    const auto result = runFaultInjection(c, model, options);
    EXPECT_NEAR(result.pst, result.analyticPst,
                4.0 * result.stderrPst + 1e-4);
}

TEST_P(FaultSimScaleSweep, MoreErrorMeansLowerPst)
{
    const double scale = GetParam();
    const auto q5 = topology::ibmQ5Tenerife();

    Circuit c(5);
    c.h(0).cx(0, 1).cx(1, 2).measureAll();
    const auto snapBase = test::uniformSnapshot(q5, 0.04, 0.003,
                                                0.03);
    const auto snapScaled = test::uniformSnapshot(
        q5, 0.04 * scale, 0.003 * scale, 0.03 * scale);
    const NoiseModel a(q5, snapBase);
    const NoiseModel b(q5, snapScaled);
    if (scale > 1.0) {
        EXPECT_LT(analyticPst(c, b), analyticPst(c, a));
    } else if (scale < 1.0) {
        EXPECT_GT(analyticPst(c, b), analyticPst(c, a));
    }
}

INSTANTIATE_TEST_SUITE_P(ErrorScales, FaultSimScaleSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0,
                                           4.0));

TEST(FaultSim, GateErrorsDominateCoherenceOnBv20)
{
    // Reproduces the paper's Section 4.4 sanity check: for bv-20
    // on the Q20 model, gate errors are an order of magnitude
    // more likely to fail a trial than coherence errors.
    const auto q20 = topology::ibmQ20Tokyo();
    const auto snap = test::uniformSnapshot(q20, 0.043);
    const auto bv = core::makeMapper({.name = "baseline"})
                        .map(workloads::bernsteinVazirani(20),
                             q20, snap)
                        .physical;

    const NoiseModel full(q20, snap, CoherenceMode::PerOp);
    const NoiseModel gateOnly(q20, snap, CoherenceMode::None);

    const double pstFull = analyticPst(bv, full);
    const double pstGate = analyticPst(bv, gateOnly);
    // log-odds attribution: gate contribution vs coherence
    // contribution.
    const double gateLoss = -std::log(pstGate);
    const double cohLoss = -std::log(pstFull / pstGate);
    EXPECT_GT(gateLoss, 8.0 * cohLoss);
}

} // namespace
} // namespace vaq::sim
