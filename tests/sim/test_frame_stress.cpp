/**
 * @file
 * Randomized seeded Clifford stress corpus for the Pauli-frame
 * engine: widths from 5 up to Falcon-27 (past the dense reference
 * envelope), repeated-run and thread-count determinism, and seed
 * sensitivity. At 27 qubits a dense trajectory trial is ~2 GiB of
 * state; only the frame path makes these widths testable at all,
 * which is the point of the fast path.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "clifford_corpus.hpp"
#include "common/rng.hpp"
#include "sim/noise_model.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "sim/pauli_frame.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::sim
{
namespace
{

using circuit::Circuit;

std::vector<topology::CouplingGraph>
stressMachines()
{
    return {topology::ibmQ5Tenerife(), topology::grid(3, 3),
            topology::grid(4, 4),      topology::ibmQ20Tokyo(),
            topology::ibmFalcon27()};
}

TEST(FrameStress, FramePathCoversAllWidths)
{
    for (const auto &graph : stressMachines()) {
        const auto snap = test::uniformSnapshot(graph);
        const NoiseModel model(graph, snap);
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            Rng corpusRng(seed * 97);
            const Circuit c = test::randomCliffordCircuit(
                graph, graph.numQubits() * 8, corpusRng);

            PauliFrameOptions options;
            options.trajectory.shots = 2000;
            options.trajectory.seed = seed;
            const PauliFrameSim sim(c, model, options);
            ASSERT_TRUE(sim.framePath())
                << graph.numQubits() << " qubits, seed " << seed
                << ": " << sim.fallbackReason();
            EXPECT_EQ(sim.gateCounts().nonClifford, 0u);

            const ShotCounts counts = sim.run();
            EXPECT_EQ(counts.shots, 2000u);
            for (const auto &[outcome, count] : counts.counts)
                EXPECT_EQ(outcome & ~sim.measuredMask(), 0u);
        }
    }
}

TEST(FrameStress, WideCircuitsUseTableauReference)
{
    // Past the dense-reference width cap the engine must still take
    // the frame path, on the stabilizer-tableau reference.
    const auto graph = topology::ibmFalcon27();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    Rng corpusRng(7);
    const Circuit c =
        test::randomCliffordCircuit(graph, 200, corpusRng);
    const PauliFrameSim sim(c, model);
    ASSERT_TRUE(sim.framePath());
    EXPECT_EQ(sim.reference(), FrameReference::Tableau);
    EXPECT_EQ(sim.measuredMask(), (1ULL << 27) - 1);
}

TEST(FrameStress, RepeatedRunsAreDeterministic)
{
    for (const auto &graph : stressMachines()) {
        const auto snap = test::uniformSnapshot(graph);
        const NoiseModel model(graph, snap);
        Rng corpusRng(11);
        const Circuit c = test::randomCliffordCircuit(
            graph, graph.numQubits() * 6, corpusRng);

        PauliFrameOptions options;
        options.trajectory.shots = 4000;
        options.trajectory.seed = 3;
        const PauliFrameSim sim(c, model, options);
        ASSERT_TRUE(sim.framePath());
        const ShotCounts a = sim.run();
        const ShotCounts b = sim.run();
        EXPECT_EQ(a.counts, b.counts);

        PauliFrameOptions reseeded = options;
        reseeded.trajectory.seed = 4;
        const ShotCounts other =
            PauliFrameSim(c, model, reseeded).run();
        EXPECT_NE(a.counts, other.counts)
            << "different seeds should explore different "
               "trajectories";
    }
}

TEST(FrameStress, OutcomeCheckedThreadInvariantAtFalconScale)
{
    const auto graph = topology::ibmFalcon27();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    // Support dimension capped at 8 so the accept set stays
    // meaningful against 27 measured bits.
    Rng corpusRng(19);
    const Circuit c =
        test::randomCliffordCircuit(graph, 200, corpusRng, 8);

    OutcomeSimOptions options;
    options.trials = 30'000;
    options.chunkTrials = 1024;
    options.engine = SimEngine::PauliFrame;

    const OutcomeSimResult one =
        ParallelFaultSim(1).runOutcomeChecked(c, model, options);
    const OutcomeSimResult eight =
        ParallelFaultSim(8).runOutcomeChecked(c, model, options);
    EXPECT_TRUE(one.framePath);
    EXPECT_EQ(one.trials, options.trials);
    EXPECT_EQ(one.successes, eight.successes);
    EXPECT_EQ(one.counts.counts, eight.counts.counts);
    EXPECT_GT(one.pst, 0.0);
    EXPECT_LT(one.pst, 1.0);
}

TEST(FrameStress, RunShotIsReentrantAcrossIndependentStreams)
{
    // Two interleaved consumers with their own Rng streams must see
    // exactly what two sequential consumers see — runShot() is
    // const and carries no hidden per-call state.
    const auto graph = topology::ibmQ20Tokyo();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    Rng corpusRng(29);
    const Circuit c =
        test::randomCliffordCircuit(graph, 120, corpusRng);
    const PauliFrameSim sim(c, model);
    ASSERT_TRUE(sim.framePath());

    std::vector<std::uint64_t> sequentialA, sequentialB;
    {
        Rng a(1), b(2);
        for (int t = 0; t < 600; ++t)
            sequentialA.push_back(sim.runShot(a));
        for (int t = 0; t < 600; ++t)
            sequentialB.push_back(sim.runShot(b));
    }
    {
        Rng a(1), b(2);
        for (int t = 0; t < 600; ++t) {
            EXPECT_EQ(sim.runShot(a), sequentialA[t]);
            EXPECT_EQ(sim.runShot(b), sequentialB[t]);
        }
    }
}

} // namespace
} // namespace vaq::sim
