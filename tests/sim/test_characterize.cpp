#include "sim/characterize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/mapper.hpp"
#include "sim/fault_sim.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::sim
{
namespace
{

TEST(DecayFit, ExactExponentialRecovered)
{
    const std::vector<int> depths{2, 4, 8, 16};
    const double perStep = 0.03;
    std::vector<double> survival;
    for (int d : depths) {
        survival.push_back(
            0.9 * std::pow(1.0 - perStep, d)); // 0.9 = SPAM
    }
    EXPECT_NEAR(fitDecayRate(depths, survival), perStep, 1e-6);
}

TEST(DecayFit, NoisyDecayStillClose)
{
    const std::vector<int> depths{2, 4, 8, 16, 32};
    const std::vector<double> survival{0.93, 0.87, 0.77, 0.60,
                                       0.37};
    const double rate = fitDecayRate(depths, survival);
    EXPECT_GT(rate, 0.02);
    EXPECT_LT(rate, 0.04);
}

TEST(DecayFit, FlatCurveGivesZero)
{
    EXPECT_NEAR(fitDecayRate({2, 4, 8}, {0.9, 0.9, 0.9}), 0.0,
                1e-9);
    // Growing "survival" (noise) clamps to zero, not negative.
    EXPECT_DOUBLE_EQ(fitDecayRate({2, 4}, {0.5, 0.7}), 0.0);
}

TEST(DecayFit, Validation)
{
    EXPECT_THROW(fitDecayRate({2}, {0.9}), VaqError);
    EXPECT_THROW(fitDecayRate({2, 4}, {0.9}), VaqError);
}

class CharacterizeTest : public ::testing::Test
{
  protected:
    CharacterizeTest()
        : graph(topology::ibmQ5Tenerife()),
          truth(test::uniformSnapshot(graph))
    {
        // A machine with pronounced variation to rediscover.
        truth.setLinkError(graph.linkIndex(0, 1), 0.12);
        truth.setLinkError(graph.linkIndex(0, 2), 0.06);
        truth.setLinkError(graph.linkIndex(1, 2), 0.02);
        truth.setLinkError(graph.linkIndex(2, 3), 0.03);
        truth.setLinkError(graph.linkIndex(2, 4), 0.05);
        truth.setLinkError(graph.linkIndex(3, 4), 0.015);
        truth.qubit(0).readoutError = 0.10;
        truth.qubit(4).readoutError = 0.02;
    }

    Executor
    machine(std::uint64_t seed = 5)
    {
        return [this, seed](const circuit::Circuit &c) {
            const NoiseModel model(graph, truth);
            TrajectoryOptions options;
            options.shots = 4096;
            options.seed = seed;
            TrajectorySimulator sim(model, options);
            return sim.run(c);
        };
    }

    topology::CouplingGraph graph;
    calibration::Snapshot truth;
};

TEST_F(CharacterizeTest, ReadoutErrorsRecovered)
{
    const auto estimate =
        characterizeMachine(graph, machine());
    EXPECT_NEAR(estimate.qubit(0).readoutError,
                truth.qubit(0).readoutError, 0.03);
    EXPECT_NEAR(estimate.qubit(4).readoutError,
                truth.qubit(4).readoutError, 0.03);
}

TEST_F(CharacterizeTest, LinkErrorsWithinFactorBand)
{
    const auto estimate =
        characterizeMachine(graph, machine());
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const double est = estimate.linkError(l);
        const double tru = truth.linkError(l);
        EXPECT_GT(est, 0.4 * tru) << "link " << l;
        EXPECT_LT(est, 2.0 * tru + 0.01) << "link " << l;
    }
}

TEST_F(CharacterizeTest, WeakestLinkIdentified)
{
    const auto estimate =
        characterizeMachine(graph, machine());
    std::size_t worst = 0;
    for (std::size_t l = 1; l < graph.linkCount(); ++l) {
        if (estimate.linkError(l) > estimate.linkError(worst))
            worst = l;
    }
    EXPECT_EQ(worst, graph.linkIndex(0, 1));
}

TEST_F(CharacterizeTest, StrongWeakOrderingMostlyPreserved)
{
    const auto estimate =
        characterizeMachine(graph, machine());
    // Pairwise rank agreement between truth and estimate for
    // pairs whose true errors differ by >= 2x.
    int checked = 0, agreed = 0;
    for (std::size_t a = 0; a < graph.linkCount(); ++a) {
        for (std::size_t b = a + 1; b < graph.linkCount(); ++b) {
            const double ta = truth.linkError(a);
            const double tb = truth.linkError(b);
            if (std::max(ta, tb) < 2.0 * std::min(ta, tb))
                continue;
            ++checked;
            if ((ta < tb) == (estimate.linkError(a) <
                              estimate.linkError(b))) {
                ++agreed;
            }
        }
    }
    ASSERT_GT(checked, 0);
    EXPECT_EQ(agreed, checked);
}

TEST_F(CharacterizeTest, EstimatedDataDrivesGoodCompilation)
{
    // The full paper workflow on a machine we can only execute
    // on: characterize, compile with the estimate, evaluate
    // against the truth. The result should be close to what
    // compiling with perfect knowledge achieves.
    const auto estimate =
        characterizeMachine(graph, machine());
    const auto mapper = core::makeMapper({.name = "vqa+vqm"});
    const auto bv = workloads::bernsteinVazirani(3);

    const NoiseModel truthModel(graph, truth);
    const double withEstimate = analyticPst(
        mapper.map(bv, graph, estimate).physical, truthModel);
    const double withTruth = analyticPst(
        mapper.map(bv, graph, truth).physical, truthModel);
    EXPECT_GT(withEstimate, 0.9 * withTruth);
}

TEST_F(CharacterizeTest, OptionsValidated)
{
    CharacterizeOptions bad;
    bad.depths = {3, 4};
    EXPECT_THROW(characterizeMachine(graph, machine(), bad),
                 VaqError);
    bad.depths = {};
    EXPECT_THROW(characterizeMachine(graph, machine(), bad),
                 VaqError);
    bad = CharacterizeOptions{};
    bad.visibility = 0.0;
    EXPECT_THROW(characterizeMachine(graph, machine(), bad),
                 VaqError);
}

} // namespace
} // namespace vaq::sim
