#include "sim/density_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/mapper.hpp"
#include "sim/statevector.hpp"
#include "sim/trajectory_sim.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::sim
{
namespace
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

TEST(DensityMatrix, InitialState)
{
    const DensityMatrix rho(2);
    EXPECT_NEAR(rho.entry(0, 0).real(), 1.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_THROW(DensityMatrix(0), VaqError);
    EXPECT_THROW(DensityMatrix(11), VaqError);
}

TEST(DensityMatrix, PureEvolutionMatchesStateVector)
{
    Rng rng(61);
    for (int trial = 0; trial < 6; ++trial) {
        const Circuit c = test::randomCircuit(4, 40, rng);
        DensityMatrix rho(4);
        StateVector psi(4);
        for (const Gate &g : c.gates()) {
            if (!g.isUnitary())
                continue;
            rho.applyUnitary(g);
            psi.apply(g);
        }
        const auto diag = rho.diagonal();
        for (std::uint64_t b = 0; b < psi.dimension(); ++b)
            EXPECT_NEAR(diag[b], psi.probability(b), 1e-9);
        EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
    }
}

TEST(DensityMatrix, TwoQubitGatesMatchStateVector)
{
    // Exercise CX/CZ/SWAP specifically, including off-diagonals
    // (fidelity via purity of the difference is overkill; compare
    // entries).
    Circuit c(3);
    c.h(0).cx(0, 1).cz(1, 2).swap(0, 2).t(2).cx(2, 0);
    DensityMatrix rho(3);
    StateVector psi(3);
    for (const Gate &g : c.gates()) {
        rho.applyUnitary(g);
        psi.apply(g);
    }
    for (std::uint64_t r = 0; r < 8; ++r) {
        for (std::uint64_t col = 0; col < 8; ++col) {
            const auto expected = psi.amplitude(r) *
                                  std::conj(psi.amplitude(col));
            EXPECT_NEAR(rho.entry(r, col).real(),
                        expected.real(), 1e-9);
            EXPECT_NEAR(rho.entry(r, col).imag(),
                        expected.imag(), 1e-9);
        }
    }
}

TEST(DensityMatrix, NoisyEvolutionPreservesTrace)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(q5, 0.08, 0.01, 0.1);
    const NoiseModel model(q5, snap);
    const auto mapped = core::makeMapper({.name = "baseline"}).map(
        workloads::bernsteinVazirani(4), q5, snap);
    DensityMatrix rho(5);
    rho.runNoisy(mapped.physical, model);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
}

TEST(DensityMatrix, DepolarizingShrinksPurity)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(q5, 0.2);
    const NoiseModel model(q5, snap);
    DensityMatrix rho(2);
    rho.applyNoisyGate(Gate::oneQubit(GateKind::H, 0), model);
    rho.applyNoisyGate(Gate::twoQubit(GateKind::CX, 0, 1), model);
    // The Bell state would have rho[0][3] = 0.5; noise damps it.
    EXPECT_LT(std::abs(rho.entry(0, 3)), 0.5);
    EXPECT_GT(std::abs(rho.entry(0, 3)), 0.3);
}

TEST(DensityMatrix, TrajectorySamplerMatchesExactChannel)
{
    // The headline methodological check: the Monte-Carlo
    // trajectory simulator's outcome histogram converges to the
    // density matrix's exact distribution.
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = test::uniformSnapshot(q5, 0.06, 0.005, 0.08);
    snap.setLinkError(q5.linkIndex(0, 1), 0.15);
    const NoiseModel model(q5, snap);

    for (const auto &w : workloads::q5Suite()) {
        // Route for the machine first (bv-4 needs it).
        const auto mapped = core::makeMapper({.name = "baseline"}).map(
            w.circuit, q5, snap);

        DensityMatrix rho(5);
        rho.runNoisy(mapped.physical, model);
        const auto exact =
            rho.outcomeDistribution(mapped.physical, model);

        TrajectoryOptions options;
        options.shots = 20000;
        options.seed = 99;
        TrajectorySimulator sampler(model, options);
        const auto counts = sampler.run(mapped.physical);
        std::map<std::uint64_t, double> sampled;
        for (const auto &[outcome, n] : counts.counts) {
            sampled[outcome] =
                static_cast<double>(n) /
                static_cast<double>(counts.shots);
        }

        EXPECT_LT(totalVariation(exact, sampled), 0.02)
            << w.name;
    }
}

TEST(DensityMatrix, ReadoutConfusionApplied)
{
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = test::uniformSnapshot(q5, 0.0, 0.0, 0.0);
    snap.qubit(0).readoutError = 0.3;
    const NoiseModel model(q5, snap, CoherenceMode::None);

    Circuit c(5);
    c.measure(0);
    DensityMatrix rho(5);
    rho.runNoisy(c, model);
    const auto dist = rho.outcomeDistribution(c, model);
    // |0> read as 1 with probability 0.3.
    EXPECT_NEAR(dist.at(0), 0.7, 1e-9);
    EXPECT_NEAR(dist.at(1), 0.3, 1e-9);

    const auto clean =
        rho.outcomeDistribution(c, model, false);
    EXPECT_NEAR(clean.at(0), 1.0, 1e-9);
}

TEST(DensityMatrix, TotalVariationBasics)
{
    std::map<std::uint64_t, double> a{{0, 0.5}, {1, 0.5}};
    std::map<std::uint64_t, double> b{{0, 1.0}};
    EXPECT_NEAR(totalVariation(a, a), 0.0, 1e-12);
    EXPECT_NEAR(totalVariation(a, b), 0.5, 1e-12);
}

} // namespace
} // namespace vaq::sim
