/**
 * @file
 * Cross-validation harness: the Pauli-frame fast path against the
 * dense trajectory engine.
 *
 * The contract has three tiers, each asserted here:
 *  - per-trial *bit-exact* agreement at matched seeds whenever the
 *    frame path uses the dense-amplitude reference (both engines
 *    consume the same NoiseScript stream and the frame path replays
 *    the dense sampler's float walk);
 *  - statistical (Wilson-interval) agreement when the frame path is
 *    forced onto the stabilizer-tableau reference, whose per-trial
 *    draws map differently onto outcomes;
 *  - exact fallback equivalence on non-Clifford circuits, where the
 *    frame engine *is* the dense engine.
 * The outcome-checked parallel runs on both engines must in
 * addition be bit-identical across thread counts (this file runs
 * under the sanitizer `parallel` leg).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "clifford_corpus.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/noise_model.hpp"
#include "sim/noise_script.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "sim/pauli_frame.hpp"
#include "sim/trajectory_sim.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::sim
{
namespace
{

using circuit::Circuit;

/** Wilson score interval of a binomial proportion. */
struct Interval
{
    double lo = 0.0;
    double hi = 1.0;
};

Interval
wilson(std::size_t successes, std::size_t trials, double z)
{
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z *
        std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) /
        denom;
    return {center - half, center + half};
}

bool
overlaps(const Interval &a, const Interval &b)
{
    return a.lo <= b.hi && b.lo <= a.hi;
}

/**
 * Assert per-trial bit-exact agreement between the frame fast path
 * and the dense engine over `trials` matched-seed trials.
 */
void
expectBitExact(const Circuit &physical, const NoiseModel &model,
               const TrajectoryOptions &trajectory,
               std::size_t trials)
{
    PauliFrameOptions options;
    options.trajectory = trajectory;
    const PauliFrameSim sim(physical, model, options);
    ASSERT_TRUE(sim.framePath()) << sim.fallbackReason();
    ASSERT_EQ(sim.reference(), FrameReference::DenseAmplitudes)
        << "bit-exactness only holds on the dense reference";

    const NoiseScript script =
        NoiseScript::compile(physical, model, trajectory);
    Rng frameRng(trajectory.seed);
    Rng denseRng(trajectory.seed);
    for (std::size_t t = 0; t < trials; ++t) {
        const std::uint64_t frameOutcome = sim.runShot(frameRng);
        const std::uint64_t denseOutcome =
            denseTrajectoryShot(physical, script, denseRng);
        ASSERT_EQ(frameOutcome, denseOutcome) << "trial " << t;
    }
}

TEST(FrameVsDense, BitExactPerTrialOnCliffordWorkloads)
{
    TrajectoryOptions trajectory;
    trajectory.seed = 101;
    {
        const auto graph = topology::fullyConnected(5);
        const auto snap = test::uniformSnapshot(graph);
        const NoiseModel model(graph, snap);
        expectBitExact(workloads::ghz(5), model, trajectory, 3000);
        expectBitExact(workloads::bernsteinVazirani(5), model,
                       trajectory, 3000);
        expectBitExact(
            workloads::deutschJozsa(5, true, 0b0101), model,
            trajectory, 3000);
    }
    {
        const auto graph = topology::fullyConnected(3);
        const auto snap = test::uniformSnapshot(graph);
        const NoiseModel model(graph, snap);
        expectBitExact(workloads::triSwap(), model, trajectory,
                       3000);
    }
}

TEST(FrameVsDense, BitExactPerTrialOnRandomCorpus)
{
    const std::vector<topology::CouplingGraph> machines = {
        topology::ibmQ5Tenerife(), topology::grid(3, 4)};
    for (const auto &graph : machines) {
        const auto snap = test::uniformSnapshot(graph);
        const NoiseModel model(graph, snap);
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            Rng corpusRng(seed);
            const Circuit c =
                test::randomCliffordCircuit(graph, 80, corpusRng);
            TrajectoryOptions trajectory;
            trajectory.seed = 1000 + seed;
            expectBitExact(c, model, trajectory, 1200);
        }
    }
}

TEST(FrameVsDense, BitExactWithCrosstalkAndNoReadout)
{
    // Crosstalk adds spectator Bernoulli draws per two-qubit gate;
    // readoutNoise=false removes the trailing per-qubit draws. The
    // stream contract must hold under both toggles.
    const auto graph = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    Rng corpusRng(9);
    const Circuit c =
        test::randomCliffordCircuit(graph, 60, corpusRng);

    TrajectoryOptions trajectory;
    trajectory.seed = 77;
    trajectory.crosstalk = 0.5;
    expectBitExact(c, model, trajectory, 1500);

    trajectory.crosstalk = 0.0;
    trajectory.readoutNoise = false;
    expectBitExact(c, model, trajectory, 1500);
}

TEST(FrameVsDense, TableauReferenceAgreesWithinWilsonInterval)
{
    // Forcing denseReferenceMaxQubits to 0 pushes the frame path
    // onto the stabilizer-tableau reference even at widths where a
    // dense reference exists, so the two samplers can be compared:
    // outcomes differ per trial (different draw-to-outcome maps) but
    // the PST estimates must agree statistically.
    const auto graph = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    Rng corpusRng(13);
    const Circuit c =
        test::randomCliffordCircuit(graph, 60, corpusRng, 4);

    const std::size_t trials = 40'000;
    TrajectoryOptions trajectory;
    trajectory.shots = trials;
    trajectory.seed = 5;

    PauliFrameOptions frameOptions;
    frameOptions.trajectory = trajectory;
    frameOptions.denseReferenceMaxQubits = 0;
    const PauliFrameSim sim(c, model, frameOptions);
    ASSERT_TRUE(sim.framePath());
    ASSERT_EQ(sim.reference(), FrameReference::Tableau);

    const std::vector<std::uint64_t> accept = idealOutcomes(c);
    const double framePst =
        pstFromCounts(sim.run(), accept);

    TrajectorySimulator dense(model, trajectory);
    const double densePst = pstFromCounts(dense.run(c), accept);

    const auto frameSuccesses = static_cast<std::size_t>(
        std::llround(framePst * static_cast<double>(trials)));
    const auto denseSuccesses = static_cast<std::size_t>(
        std::llround(densePst * static_cast<double>(trials)));
    EXPECT_TRUE(overlaps(wilson(frameSuccesses, trials, 4.0),
                         wilson(denseSuccesses, trials, 4.0)))
        << "frame " << framePst << " vs dense " << densePst;
}

TEST(FrameVsDense, FallbackCircuitsMatchDenseEngineBitExactly)
{
    // Non-Clifford programs: the Auto engine must report the dense
    // fallback and produce exactly the dense engine's results —
    // same successes, same trials, same outcome histogram.
    struct Case
    {
        Circuit circuit;
        int width;
    };
    std::vector<Case> cases;
    // GHZ dressed with a T gate: T|0> = |0> exactly, so the ideal
    // accept set stays {0000, 1111}, but the program is non-Clifford
    // and must take the dense fallback. (qft would not work here:
    // its ideal output on |0..0> is uniform, which idealOutcomes
    // rejects as a meaningless accept set.)
    {
        Circuit dressed(4);
        dressed.t(0).h(0).cx(0, 1).cx(1, 2).cx(2, 3).tdg(3);
        dressed.measureAll();
        cases.push_back({dressed, 4});
    }
    cases.push_back({workloads::adder(1, 1, 1), 4});
    for (const Case &fallbackCase : cases) {
        const auto graph =
            topology::fullyConnected(fallbackCase.width);
        const auto snap = test::uniformSnapshot(graph);
        const NoiseModel model(graph, snap);

        OutcomeSimOptions options;
        options.trials = 20'000;
        options.chunkTrials = 2048;
        options.threads = 2;

        options.engine = SimEngine::Auto;
        const OutcomeSimResult automatic =
            runOutcomeCheckedParallel(fallbackCase.circuit, model,
                                      options);
        EXPECT_FALSE(automatic.framePath);
        EXPECT_NE(
            automatic.fallbackReason.find("non-Clifford"),
            std::string::npos)
            << automatic.fallbackReason;
        EXPECT_GT(automatic.gates.nonClifford, 0u);

        options.engine = SimEngine::Dense;
        const OutcomeSimResult dense = runOutcomeCheckedParallel(
            fallbackCase.circuit, model, options);
        EXPECT_TRUE(dense.fallbackReason.empty());

        EXPECT_EQ(automatic.trials, dense.trials);
        EXPECT_EQ(automatic.successes, dense.successes);
        EXPECT_EQ(automatic.counts.counts, dense.counts.counts);
    }
}

TEST(FrameVsDense, EnginesAgreeBitExactlyThroughOutcomeChecked)
{
    // On a Clifford circuit the frame and dense engines must
    // produce identical outcome-checked results — not just equal
    // PST, the full per-outcome histogram.
    const auto graph = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    Rng corpusRng(21);
    const Circuit c =
        test::randomCliffordCircuit(graph, 70, corpusRng, 4);

    OutcomeSimOptions options;
    options.trials = 30'000;
    options.chunkTrials = 1024;

    options.engine = SimEngine::PauliFrame;
    const OutcomeSimResult frameResult =
        runOutcomeCheckedParallel(c, model, options);
    EXPECT_TRUE(frameResult.framePath);

    options.engine = SimEngine::Dense;
    const OutcomeSimResult denseResult =
        runOutcomeCheckedParallel(c, model, options);
    EXPECT_FALSE(denseResult.framePath);

    EXPECT_EQ(frameResult.trials, denseResult.trials);
    EXPECT_EQ(frameResult.successes, denseResult.successes);
    EXPECT_EQ(frameResult.counts.counts,
              denseResult.counts.counts);
    EXPECT_DOUBLE_EQ(frameResult.pst, denseResult.pst);
}

TEST(FrameVsDense, OutcomeCheckedBitIdenticalAcrossThreadCounts)
{
    const auto graph = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    Rng corpusRng(33);
    const Circuit c =
        test::randomCliffordCircuit(graph, 70, corpusRng, 4);

    for (const SimEngine engine :
         {SimEngine::PauliFrame, SimEngine::Dense}) {
        OutcomeSimOptions options;
        options.trials = 40'000;
        options.chunkTrials = 1024;
        options.engine = engine;

        const OutcomeSimResult one =
            ParallelFaultSim(1).runOutcomeChecked(c, model,
                                                  options);
        const OutcomeSimResult four =
            ParallelFaultSim(4).runOutcomeChecked(c, model,
                                                  options);
        const OutcomeSimResult eight =
            ParallelFaultSim(8).runOutcomeChecked(c, model,
                                                  options);

        EXPECT_EQ(one.trials, options.trials);
        EXPECT_EQ(one.successes, four.successes);
        EXPECT_EQ(one.successes, eight.successes);
        EXPECT_EQ(one.counts.counts, four.counts.counts);
        EXPECT_EQ(one.counts.counts, eight.counts.counts);
        EXPECT_DOUBLE_EQ(one.pst, eight.pst);
        EXPECT_DOUBLE_EQ(one.stderrPst, eight.stderrPst);
    }
}

TEST(FrameVsDense, AdaptiveStopIsThreadCountInvariant)
{
    const auto graph = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    Rng corpusRng(45);
    const Circuit c =
        test::randomCliffordCircuit(graph, 70, corpusRng, 4);

    OutcomeSimOptions options;
    options.trials = 1'000'000;
    options.chunkTrials = 1000;
    options.targetStderr = 0.004;
    options.engine = SimEngine::PauliFrame;

    const OutcomeSimResult one =
        ParallelFaultSim(1).runOutcomeChecked(c, model, options);
    const OutcomeSimResult eight =
        ParallelFaultSim(8).runOutcomeChecked(c, model, options);
    EXPECT_LT(one.trials, options.trials);
    EXPECT_LE(one.stderrPst, options.targetStderr);
    EXPECT_EQ(one.trials, eight.trials);
    EXPECT_EQ(one.successes, eight.successes);
}

TEST(FrameVsDense, OptionsAndContractsValidated)
{
    const auto graph = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(graph);
    const NoiseModel model(graph, snap);
    Circuit measured(5);
    measured.h(0).cx(0, 1).measureAll();

    OutcomeSimOptions options;
    options.trials = 0;
    EXPECT_THROW(
        runOutcomeCheckedParallel(measured, model, options),
        VaqError);
    options.trials = 100;
    options.chunkTrials = 0;
    EXPECT_THROW(
        runOutcomeCheckedParallel(measured, model, options),
        VaqError);

    // A program measuring nothing has no outcome to check.
    Circuit unmeasured(5);
    unmeasured.h(0).cx(0, 1);
    EXPECT_THROW(
        runOutcomeCheckedParallel(unmeasured, model, {}), VaqError);

    // A uniform accept set (H on every measured qubit) covers the
    // whole outcome space; "success" is meaningless there, on both
    // engines.
    Circuit uniform(5);
    uniform.h(0).h(1).h(2).h(3).h(4).measureAll();
    for (const SimEngine engine :
         {SimEngine::PauliFrame, SimEngine::Dense}) {
        OutcomeSimOptions uniformOptions;
        uniformOptions.engine = engine;
        EXPECT_THROW(runOutcomeCheckedParallel(uniform, model,
                                               uniformOptions),
                     VaqError);
    }

    // Explicitly requesting the frame engine on a circuit it cannot
    // run is an error, never a silent downgrade to dense; Auto is
    // the spelling that may fall back.
    Circuit nonClifford(5);
    nonClifford.h(0).t(0).cx(0, 1).measureAll();
    OutcomeSimOptions forced;
    forced.trials = 100;
    forced.engine = SimEngine::PauliFrame;
    EXPECT_THROW(
        runOutcomeCheckedParallel(nonClifford, model, forced),
        VaqError);
    forced.engine = SimEngine::Auto;
    const OutcomeSimResult fallback =
        runOutcomeCheckedParallel(nonClifford, model, forced);
    EXPECT_FALSE(fallback.framePath);
    EXPECT_EQ(fallback.trials, 100u);
}

} // namespace
} // namespace vaq::sim
