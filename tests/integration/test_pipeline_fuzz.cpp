/**
 * @file
 * Pipeline fuzzing: random programs, random calibrations, every
 * policy, several machines — every compilation must pass the full
 * independent verifier (executability, layout consistency, gate
 * preservation, and exact semantics where tractable).
 */
#include <gtest/gtest.h>

#include "circuit/optimizer.hpp"
#include "core/mapper.hpp"
#include "core/verify.hpp"
#include "common/rng.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq
{
namespace
{

topology::CouplingGraph
machineByIndex(int index)
{
    switch (index % 4) {
      case 0: return topology::ibmQ5Tenerife();
      case 1: return topology::grid(2, 4);
      case 2: return topology::ring(7);
      default: return topology::ibmFalcon27();
    }
}

class PipelineFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineFuzz, EveryCompilationVerifies)
{
    const int seed = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 1);
    const topology::CouplingGraph graph = machineByIndex(seed);
    const auto snap = test::randomSnapshot(graph, rng);

    const int width =
        2 + static_cast<int>(rng.uniformInt(std::uint64_t(
                std::min(graph.numQubits(), 8) - 1)));
    circuit::Circuit logical =
        test::randomCircuit(width, 50, rng);
    if (rng.bernoulli(0.5))
        logical.barrier();
    logical.measureAll();

    for (const core::Mapper &mapper :
         {core::makeMapper(
              {.name = "random",
               .seed = static_cast<std::uint64_t>(seed)}),
          core::makeMapper({.name = "baseline"}),
          core::makeMapper({.name = "vqm"}),
          core::makeMapper({.name = "vqm", .mah = 2}),
          core::makeMapper({.name = "vqa+vqm"})}) {
        const auto mapped = mapper.map(logical, graph, snap);
        const auto report =
            core::verifyMapping(mapped, logical, graph, 12);
        EXPECT_TRUE(report.ok())
            << mapper.name() << " on " << graph.name()
            << " seed " << seed << ": " << report.failure;
    }
}

TEST_P(PipelineFuzz, OptimizerComposesWithMapping)
{
    // optimize(logical) then map: still verifies against the
    // optimized program and preserves the original semantics.
    const int seed = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 3);
    const topology::CouplingGraph graph =
        topology::ibmQ5Tenerife();
    const auto snap = test::randomSnapshot(graph, rng);

    circuit::Circuit logical = test::randomCircuit(4, 40, rng);
    // Salt with cancellable structure.
    logical.h(0).h(0).cx(0, 1).cx(0, 1).rz(2, 0.4).rz(2, -0.4);

    const circuit::Circuit slim = circuit::optimize(logical);
    const auto mapped =
        core::makeMapper({.name = "vqa+vqm"}).map(slim, graph, snap);
    const auto report =
        core::verifyMapping(mapped, slim, graph);
    EXPECT_TRUE(report.ok()) << report.failure;

    // End-to-end semantics: mapped(optimized) == original.
    EXPECT_LT(test::distributionDistance(
                  test::logicalDistribution(logical),
                  test::mappedProgramDistribution(mapped)),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range(0, 12));

} // namespace
} // namespace vaq
