/**
 * @file
 * The paper's worked toy examples, reproduced exactly.
 *
 * Fig. 1 (b): on the 5-qubit machine, moving Q1 from A to C via
 * A-B-C succeeds with probability 0.42 while the longer A-E-D-C
 * route succeeds with 0.567, so VQM prefers the longer route.
 * (The figure prices a SWAP at the link's single-operation success,
 * so the route success is the plain product of link probabilities.)
 *
 * Fig. 15: on a 2x3 mesh, running two copies of a 3-CNOT program
 * yields per-copy PSTs 0.12 and 0.32, while one strong copy
 * achieves 0.53 — so two copies give only a 37.5 % rate increase
 * over the better single copy, not 2x.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "calibration/snapshot.hpp"
#include "graph/shortest_path.hpp"
#include "sim/fault_sim.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq
{
namespace
{

// Node labels of Fig. 1: A=0, B=1, C=2, D=3, E=4.
constexpr int A = 0, B = 1, C = 2, D = 3, E = 4;

graph::WeightedGraph
figure1Graph()
{
    // Link success probabilities chosen by the paper such that
    // A-B-C multiplies to 0.42 and A-E-D-C to 0.567.
    auto w = [](double p) { return -std::log(p); };
    return graph::WeightedGraph(5, {{A, B, w(0.6)},
                                    {B, C, w(0.7)},
                                    {C, D, w(0.7)},
                                    {D, E, w(0.9)},
                                    {E, A, w(0.9)}});
}

TEST(PaperFig1, RouteSuccessProbabilities)
{
    const auto g = figure1Graph();
    // Direct product along each route.
    const double shortRoute =
        std::exp(-(g.weight(A, B) + g.weight(B, C)));
    const double longRoute = std::exp(
        -(g.weight(A, E) + g.weight(E, D) + g.weight(D, C)));
    EXPECT_NEAR(shortRoute, 0.42, 1e-12);
    EXPECT_NEAR(longRoute, 0.567, 1e-12);
}

TEST(PaperFig1, VqmPicksTheLongerRoute)
{
    // Reliability routing = shortest path under -log success:
    // the 3-hop route beats the 2-hop route, exactly the paper's
    // point.
    const auto g = figure1Graph();
    const auto tree = graph::dijkstra(g, A);
    EXPECT_EQ(tree.pathTo(C), (std::vector<int>{A, E, D, C}));
    EXPECT_NEAR(std::exp(-tree.dist[C]), 0.567, 1e-12);
}

// Fig. 15's 2x3 mesh: A=0 B=1 C=2 (top row), D=3 E=4 F=5.
class PaperFig15 : public ::testing::Test
{
  protected:
    PaperFig15()
        : machine("fig15", 6,
                  {{0, 1},
                   {1, 2},
                   {3, 4},
                   {4, 5},
                   {0, 3},
                   {1, 4},
                   {2, 5}}),
          snap(machine)
    {
        // Perfect 1q gates/readout/coherence: the figure prices
        // only the two-qubit operations.
        for (int q = 0; q < 6; ++q) {
            auto &cal = snap.qubit(q);
            cal.error1q = 0.0;
            cal.readoutError = 0.0;
            cal.t1Us = 1e9;
            cal.t2Us = 1e9;
        }
        // Fig. 15(a) link strengths: C-D (2-3... the figure's CD)
        // does not exist on this mesh; the strong links are the
        // D-E column pair region. Success probabilities:
        auto setSuccess = [&](int a, int b, double p) {
            snap.setLinkError(machine.linkIndex(a, b), 1.0 - p);
        };
        setSuccess(0, 1, 0.7); // A-B
        setSuccess(1, 2, 0.7); // B-C
        setSuccess(3, 4, 0.9); // D-E
        setSuccess(4, 5, 0.7); // E-F
        setSuccess(0, 3, 0.7); // A-D
        setSuccess(1, 4, 0.9); // B-E
        setSuccess(2, 5, 0.9); // C-F
    }

    double
    pst(const circuit::Circuit &physical) const
    {
        const sim::NoiseModel model(machine, snap,
                                    sim::CoherenceMode::None);
        return sim::analyticPst(physical, model);
    }

    topology::CouplingGraph machine;
    calibration::Snapshot snap;
};

TEST_F(PaperFig15, CopyXHasPst012)
{
    // Copy-X on {A, B, C}: Cx(A,B) Cx(B,C) SWAP(B,C) Cx(A,B),
    // all on 0.7 links -> 0.7^6 ~= 0.12.
    circuit::Circuit copyX(6);
    copyX.cx(0, 1).cx(1, 2).swap(1, 2).cx(0, 1);
    EXPECT_NEAR(pst(copyX), std::pow(0.7, 6), 1e-12);
    EXPECT_NEAR(pst(copyX), 0.12, 0.003);
}

TEST_F(PaperFig15, CopyYHasPst032)
{
    // Copy-Y on {D, E, F}: Cx(D,E) 0.9, Cx(E,F) 0.7,
    // SWAP(D,E) 0.9^3, Cx(E,F) 0.7 -> 0.3215.
    circuit::Circuit copyY(6);
    copyY.cx(3, 4).cx(4, 5).swap(3, 4).cx(4, 5);
    EXPECT_NEAR(pst(copyY), 0.9 * 0.7 * std::pow(0.9, 3) * 0.7,
                1e-12);
    EXPECT_NEAR(pst(copyY), 0.32, 0.005);
}

TEST_F(PaperFig15, SingleStrongCopyHasPst053)
{
    // One strong copy on the 0.9 links: four two-qubit ops plus a
    // SWAP, all at 0.9 -> 0.9^6 ~= 0.53.
    circuit::Circuit single(6);
    single.cx(3, 4).cx(1, 4).swap(3, 4).cx(1, 4);
    EXPECT_NEAR(pst(single), std::pow(0.9, 6), 1e-12);
    EXPECT_NEAR(pst(single), 0.53, 0.005);
}

TEST_F(PaperFig15, TwoCopiesGainOnly37Percent)
{
    // The paper's punchline: two copies give 0.44 successful
    // trials per round vs 0.32 for the better copy alone — a
    // 37.5 % increase, not 2x — while the single strong copy gets
    // 0.53 in one slot.
    const double x = std::pow(0.7, 6);
    const double y = 0.9 * 0.7 * std::pow(0.9, 3) * 0.7;
    const double combined = x + y;
    EXPECT_NEAR(combined / y, 1.375, 0.02);
    EXPECT_GT(std::pow(0.9, 6), y); // strong single beats copy-Y
}

} // namespace
} // namespace vaq
