/**
 * @file
 * System-level properties from the paper's evaluation:
 *  - VQM >= baseline and VQA+VQM >= VQM in PST (Figs. 12/13),
 *  - the baseline beats the randomized IBM-native policy on
 *    average (Section 6.4),
 *  - benefits grow with relative variation (Table 2),
 *  - per-day benefits track per-day variability (Fig. 14).
 */
#include <gtest/gtest.h>

#include "calibration/synthetic.hpp"
#include "core/mapper.hpp"
#include "sim/fault_sim.hpp"
#include "common/statistics.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq
{
namespace
{

double
pstOf(const core::Mapper &mapper, const circuit::Circuit &logical,
      const topology::CouplingGraph &graph,
      const calibration::Snapshot &snap)
{
    const sim::NoiseModel model(graph, snap);
    return sim::analyticPst(mapper.map(logical, graph, snap)
                                .physical,
                            model);
}

class PolicyOrdering : public ::testing::TestWithParam<int>
{
  protected:
    PolicyOrdering() : graph(topology::ibmQ20Tokyo()) {}

    topology::CouplingGraph graph;
};

TEST_P(PolicyOrdering, VariationAwareHierarchyHolds)
{
    // Property sweep over independent calibration draws.
    const int seed = GetParam();
    calibration::SyntheticSource source(
        graph, calibration::SyntheticParams{},
        static_cast<std::uint64_t>(seed));
    const calibration::Snapshot snap = source.nextCycle();

    const auto bv = workloads::bernsteinVazirani(12);
    const double base =
        pstOf(core::makeMapper({.name = "baseline"}), bv, graph, snap);
    const double vqm =
        pstOf(core::makeMapper({.name = "vqm"}), bv, graph, snap);
    const double both =
        pstOf(core::makeMapper({.name = "vqa+vqm"}), bv, graph, snap);

    EXPECT_GE(vqm, base - 1e-12);
    EXPECT_GE(both, vqm - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(CalibrationDraws, PolicyOrdering,
                         ::testing::Range(1, 9));

TEST(PolicyOrderingSuite, HierarchyHoldsAcrossBenchmarks)
{
    const auto q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20);
    const auto avg = source.series(20).averaged();
    for (const auto &w : workloads::standardSuite(q20)) {
        const double base =
            pstOf(core::makeMapper({.name = "baseline"}), w.circuit, q20, avg);
        const double vqm =
            pstOf(core::makeMapper({.name = "vqm"}), w.circuit, q20, avg);
        const double both = pstOf(core::makeMapper({.name = "vqa+vqm"}),
                                  w.circuit, q20, avg);
        EXPECT_GE(vqm, base - 1e-12) << w.name;
        EXPECT_GE(both, vqm - 1e-12) << w.name;
    }
}

TEST(PolicyOrderingSuite, BaselineBeatsRandomizedOnAverage)
{
    // Section 6.4: the SWAP-minimizing baseline has ~4x higher
    // PST than the randomizing native compiler. Check >= 1.5x on
    // the average over 8 native seeds.
    const auto q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20);
    const auto avg = source.series(20).averaged();
    const auto bv = workloads::bernsteinVazirani(12);

    const double base =
        pstOf(core::makeMapper({.name = "baseline"}), bv, q20, avg);
    std::vector<double> native;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        native.push_back(pstOf(core::makeMapper({.name = "random", .seed = seed}),
                               bv, q20, avg));
    }
    EXPECT_GT(base, 1.5 * mean(native));
}

TEST(PolicyOrderingSuite, HopLimitedVqmClose)
{
    // Fig. 12: MAH=4 performs like unconstrained VQM.
    const auto q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20);
    const auto avg = source.series(20).averaged();
    const auto bv = workloads::bernsteinVazirani(16);
    const double unconstrained =
        pstOf(core::makeMapper({.name = "vqm"}), bv, q20, avg);
    const double limited =
        pstOf(core::makeMapper({.name = "vqm", .mah = 4}), bv, q20, avg);
    EXPECT_GT(limited, 0.7 * unconstrained);
}

TEST(PolicyOrderingSuite, BenefitGrowsWithRelativeVariation)
{
    // Table 2: scaling errors down 10x while doubling the CoV
    // increases the relative benefit of VQA+VQM.
    const auto q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20);
    const auto base = source.series(20).averaged();
    const auto bv = workloads::bernsteinVazirani(16);

    auto relativeBenefit = [&](const calibration::Snapshot &s) {
        return pstOf(core::makeMapper({.name = "vqa+vqm"}), bv, q20, s) /
               pstOf(core::makeMapper({.name = "baseline"}), bv, q20, s);
    };

    const double sameCov =
        relativeBenefit(base.scaledErrors(0.1, 1.0));
    const double doubleCov =
        relativeBenefit(base.scaledErrors(0.1, 2.0));
    // At 10x-lower errors relative PSTs compress toward 1 (see
    // EXPERIMENTS.md Table 2); the robust claims are that the
    // benefit never drops below parity and survives the widened
    // variation within noise.
    EXPECT_GE(sameCov, 1.0 - 1e-12);
    EXPECT_GE(doubleCov, 1.0 - 1e-12);
    EXPECT_GE(doubleCov, sameCov * 0.95);
}

TEST(PolicyOrderingSuite, NoVariationMeansNoBenefit)
{
    // Degenerate sanity: on a uniform machine the relative PST of
    // VQA+VQM is exactly 1 (identical configs win the portfolio)
    // or marginally above via tie-breaking, never below.
    const auto q20 = topology::ibmQ20Tokyo();
    const auto uniform = test::uniformSnapshot(q20);
    const auto ghz = workloads::ghz(8);
    const double base =
        pstOf(core::makeMapper({.name = "baseline"}), ghz, q20, uniform);
    const double both =
        pstOf(core::makeMapper({.name = "vqa+vqm"}), ghz, q20, uniform);
    EXPECT_GE(both, base - 1e-12);
    EXPECT_LT(both, base * 1.2 + 1e-12);
}

} // namespace
} // namespace vaq
