/**
 * @file
 * Full-pipeline integration tests: synthetic characterization ->
 * compilation -> Monte-Carlo fault injection / trajectory execution
 * -> PST, mirroring the paper's two evaluation flows (Fig. 10 for
 * the simulated IBM-Q20 and Section 7 for the real IBM-Q5).
 */
#include <gtest/gtest.h>

#include "calibration/csv_io.hpp"
#include "calibration/synthetic.hpp"
#include "core/mapper.hpp"
#include "partition/partition.hpp"
#include "sim/fault_sim.hpp"
#include "sim/trajectory_sim.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq
{
namespace
{

TEST(EndToEnd, SimulatedQ20Flow)
{
    // The Fig. 10 pipeline, miniature edition.
    const auto q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20);
    const auto snap = source.series(10).averaged();

    const auto bv = workloads::bernsteinVazirani(10);
    const auto mapped =
        core::makeMapper({.name = "vqa+vqm"}).map(bv, q20, snap);

    const sim::NoiseModel model(q20, snap);
    sim::FaultSimOptions options;
    options.trials = 100000;
    const auto result =
        sim::runFaultInjection(mapped.physical, model, options);

    EXPECT_GT(result.pst, 0.0);
    EXPECT_LT(result.pst, 1.0);
    EXPECT_NEAR(result.pst, result.analyticPst,
                5.0 * result.stderrPst + 1e-3);
}

TEST(EndToEnd, Q5HardwareSurrogateFlow)
{
    // The Section 7 pipeline: compile with calibration data, run
    // on the (simulated) machine, count correct outcomes.
    const auto q5 = topology::ibmQ5Tenerife();
    calibration::SyntheticSource source(
        q5, calibration::SyntheticParams{}, 42);
    const auto snap = source.nextCycle();

    const auto logical = workloads::bernsteinVazirani(4);
    const auto baseline =
        core::makeMapper({.name = "baseline"}).map(logical, q5, snap);
    const auto aware =
        core::makeMapper({.name = "vqa+vqm"}).map(logical, q5, snap);

    const sim::NoiseModel model(q5, snap);
    sim::TrajectoryOptions options;
    options.shots = 4096;
    sim::TrajectorySimulator machine(model, options);

    const auto ideal = sim::idealOutcomes(logical);
    auto physPst = [&](const core::MappedCircuit &mapped) {
        const auto counts = machine.run(mapped.physical);
        // Translate logical accept set to physical bit positions.
        std::vector<std::uint64_t> accept;
        for (std::uint64_t outcome : ideal) {
            std::uint64_t phys = 0;
            for (int q = 0; q < logical.numQubits(); ++q) {
                if (outcome & (1ULL << q))
                    phys |= 1ULL << mapped.final.phys(q);
            }
            accept.push_back(phys & counts.measuredMask);
        }
        return sim::pstFromCounts(counts, accept);
    };

    const double pstBaseline = physPst(baseline);
    const double pstAware = physPst(aware);
    EXPECT_GT(pstBaseline, 0.1);
    EXPECT_GT(pstAware, 0.1);
    // The variation-aware result holds up on the richer error
    // model too (>= within noise).
    EXPECT_GT(pstAware, pstBaseline - 0.1);
}

TEST(EndToEnd, CalibrationPersistenceRoundTrip)
{
    // Snapshot -> CSV -> snapshot -> identical compilation result.
    const auto q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20);
    const auto snap = source.nextCycle();
    const auto reloaded =
        calibration::fromCsv(calibration::toCsv(snap, q20), q20);

    const auto qft = workloads::qft(8);
    const auto a = core::makeMapper({.name = "vqm"}).map(qft, q20, snap);
    const auto b = core::makeMapper({.name = "vqm"}).map(qft, q20, reloaded);
    EXPECT_EQ(a.physical, b.physical);
    EXPECT_EQ(a.initial.progToPhys(), b.initial.progToPhys());
}

TEST(EndToEnd, PartitioningFlow)
{
    const auto q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20);
    const auto snap = source.series(5).averaged();
    const auto mapper = core::makeMapper({.name = "vqa+vqm"});

    partition::PartitionOptions options;
    options.candidateRegions = 6;
    const auto report = partition::comparePartitioning(
        workloads::ghz(8), q20, snap, mapper, options);

    // Both modes produce executable circuits.
    const sim::NoiseModel model(q20, snap);
    EXPECT_NO_THROW(sim::checkExecutable(
        report.single.mapped.physical, model));
    for (const auto &copy : report.dual) {
        EXPECT_NO_THROW(
            sim::checkExecutable(copy.mapped.physical, model));
    }
    EXPECT_GT(report.singleStpt, 0.0);
    EXPECT_GT(report.dualStpt, 0.0);
}

TEST(EndToEnd, RecompilationTracksDailyCalibration)
{
    // Fig. 14 mechanism: per-day recompilation adapts to that
    // day's weak links; compiled circuits differ across days.
    const auto q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20);
    const auto series = source.series(6);
    const auto bv = workloads::bernsteinVazirani(10);
    const auto mapper = core::makeMapper({.name = "vqa+vqm"});

    std::set<std::vector<int>> layouts;
    for (const auto &snap : series.snapshots()) {
        layouts.insert(
            mapper.map(bv, q20, snap).initial.progToPhys());
    }
    // At least two distinct placements across six days.
    EXPECT_GE(layouts.size(), 2u);
}

} // namespace
} // namespace vaq
