/**
 * @file
 * The deepest correctness property in the repository: compiling a
 * circuit for a machine must not change its semantics. We execute
 * the mapped physical circuit exactly (state vector) and compare the
 * program-qubit output distribution, read through the final layout,
 * against the logical circuit's distribution.
 */
#include <gtest/gtest.h>

#include "core/mapper.hpp"
#include "common/rng.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq
{
namespace
{

using core::Mapper;

struct EquivalenceCase
{
    std::string mapperName;
    std::string machine;
};

Mapper
mapperByName(const std::string &name)
{
    if (name == "ibm-native")
        return core::makeMapper({.name = "random", .seed = 11});
    if (name == "baseline")
        return core::makeMapper({.name = "baseline"});
    if (name == "vqm")
        return core::makeMapper({.name = "vqm"});
    if (name == "vqm-mah4")
        return core::makeMapper({.name = "vqm", .mah = 4});
    if (name == "vqa")
        return core::makeMapper({.name = "vqa"});
    return core::makeMapper({.name = "vqa+vqm"});
}

topology::CouplingGraph
machineByName(const std::string &name)
{
    if (name == "q5")
        return topology::ibmQ5Tenerife();
    if (name == "grid23")
        return topology::grid(2, 3);
    if (name == "line7")
        return topology::linear(7);
    return topology::ring(6);
}

class MappingEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(MappingEquivalence, RandomCircuitsPreserveSemantics)
{
    const auto [mapperName, machineName] = GetParam();
    const Mapper mapper = mapperByName(mapperName);
    const topology::CouplingGraph graph =
        machineByName(machineName);

    Rng rng(97);
    for (int trial = 0; trial < 6; ++trial) {
        const auto snap = test::randomSnapshot(graph, rng);
        const int width =
            2 + static_cast<int>(rng.uniformInt(
                    static_cast<std::uint64_t>(
                        graph.numQubits() - 1)));
        const circuit::Circuit logical =
            test::randomCircuit(width, 40, rng);

        const core::MappedCircuit mapped =
            mapper.map(logical, graph, snap);
        const auto expected = test::logicalDistribution(logical);
        const auto actual =
            test::mappedProgramDistribution(mapped);
        EXPECT_LT(test::distributionDistance(expected, actual),
                  1e-9)
            << mapperName << " on " << machineName << " trial "
            << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, MappingEquivalence,
    ::testing::Combine(
        ::testing::Values("ibm-native", "baseline", "vqm",
                          "vqm-mah4", "vqa", "vqa+vqm"),
        ::testing::Values("q5", "grid23", "line7", "ring6")),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (char &ch : name) {
            if (ch == '-' || ch == '+')
                ch = '_';
        }
        return name;
    });

TEST(MappingEquivalenceQ20, PaperWorkloadsPreserveSemantics)
{
    // Heavier check on the real target machine with the actual
    // benchmark circuits (kept to <= 14 qubits so the 2^20-state
    // simulation stays fast).
    const auto q20 = topology::ibmQ20Tokyo();
    Rng rng(98);
    const auto snap = test::randomSnapshot(q20, rng);

    const std::vector<circuit::Circuit> programs{
        workloads::bernsteinVazirani(8),
        workloads::ghz(6),
        workloads::qft(5),
        workloads::adder(2, 0b11, 0b01, false),
        workloads::triSwap(),
    };
    const core::Mapper mapper = core::makeMapper({.name = "vqa+vqm"});
    for (const auto &logical : programs) {
        const auto mapped = mapper.map(logical, q20, snap);
        EXPECT_LT(test::distributionDistance(
                      test::logicalDistribution(logical),
                      test::mappedProgramDistribution(mapped)),
                  1e-9);
    }
}

} // namespace
} // namespace vaq
