#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::core
{
namespace
{

TEST(SwapCountCost, UniformCosts)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const SwapCountCost cost(q5);
    EXPECT_DOUBLE_EQ(cost.swapCost(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(cost.cnotCost(2, 3), 1.0);
    EXPECT_FALSE(cost.relocationCanHelp());
    EXPECT_EQ(cost.name(), "swap-count");
}

TEST(SwapCountCost, RejectsUncoupledPairs)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const SwapCountCost cost(q5);
    EXPECT_THROW(cost.swapCost(0, 4), VaqError);
    EXPECT_THROW(cost.cnotCost(0, 3), VaqError);
}

TEST(ReliabilityCost, MinusLogSemantics)
{
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = test::uniformSnapshot(q5);
    snap.setLinkError(q5.linkIndex(0, 1), 0.1);
    const ReliabilityCost cost(q5, snap);
    EXPECT_NEAR(cost.cnotCost(0, 1), -std::log(0.9), 1e-12);
    EXPECT_NEAR(cost.swapCost(0, 1), -3.0 * std::log(0.9),
                1e-12);
    EXPECT_TRUE(cost.relocationCanHelp());
}

TEST(ReliabilityCost, WeakerLinkCostsMore)
{
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = test::uniformSnapshot(q5);
    snap.setLinkError(q5.linkIndex(0, 1), 0.02);
    snap.setLinkError(q5.linkIndex(2, 3), 0.15);
    const ReliabilityCost cost(q5, snap);
    EXPECT_LT(cost.cnotCost(0, 1), cost.cnotCost(2, 3));
}

TEST(ReliabilityCost, ZeroErrorClampedFinite)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(q5, 0.0);
    const ReliabilityCost cost(q5, snap);
    EXPECT_GT(cost.cnotCost(0, 1), 0.0);
    EXPECT_TRUE(std::isfinite(cost.cnotCost(0, 1)));
}

TEST(ReliabilityCost, CertainFailureClampedFinite)
{
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = test::uniformSnapshot(q5);
    snap.setLinkError(q5.linkIndex(0, 1), 1.0);
    const ReliabilityCost cost(q5, snap);
    EXPECT_TRUE(std::isfinite(cost.cnotCost(0, 1)));
}

TEST(ReliabilityCost, ShapeMismatchRejected)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const auto lineSnap =
        test::uniformSnapshot(topology::linear(5));
    EXPECT_THROW(ReliabilityCost(q5, lineSnap), VaqError);
}

TEST(CostModelFactory, BuildsRequestedKind)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(q5);
    EXPECT_EQ(makeCostModel(CostKind::SwapCount, q5, snap)->name(),
              "swap-count");
    EXPECT_EQ(
        makeCostModel(CostKind::Reliability, q5, snap)->name(),
        "reliability");
}

TEST(ReliabilityCost, SumOfCostsIsProductOfSuccesses)
{
    // The core VQM identity: minimizing summed -log success
    // maximizes the success product (paper Section 5.3).
    const auto line = topology::linear(4);
    auto snap = test::uniformSnapshot(line);
    snap.setLinkError(0, 0.03);
    snap.setLinkError(1, 0.05);
    snap.setLinkError(2, 0.08);
    const ReliabilityCost cost(line, snap);
    const double sum = cost.cnotCost(0, 1) + cost.cnotCost(1, 2) +
                       cost.cnotCost(2, 3);
    EXPECT_NEAR(std::exp(-sum), 0.97 * 0.95 * 0.92, 1e-12);
}

} // namespace
} // namespace vaq::core
