#include "core/movement_planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::core
{
namespace
{

TEST(MovementPlanner, AdjacentStaysPutUnderUniformCost)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const SwapCountCost cost(q5);
    const MovementPlanner planner(q5, cost);
    const MovementPlan plan = planner.plan(0, 1);
    EXPECT_TRUE(plan.swaps.empty());
    EXPECT_EQ(plan.gateA, 0);
    EXPECT_EQ(plan.gateB, 1);
    EXPECT_EQ(plan.extraHops, 0);
}

TEST(MovementPlanner, LineNeedsDistanceMinusOneSwaps)
{
    const auto line = topology::linear(5);
    const SwapCountCost cost(line);
    const MovementPlanner planner(line, cost);
    const MovementPlan plan = planner.plan(0, 4);
    EXPECT_EQ(plan.swaps.size(), 3u);
    EXPECT_EQ(plan.extraHops, 0);
}

TEST(MovementPlanner, SwapsFormContiguousWalk)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const SwapCountCost cost(q20);
    const MovementPlanner planner(q20, cost);
    const MovementPlan plan = planner.plan(0, 19);
    ASSERT_FALSE(plan.swaps.empty());
    for (std::size_t i = 0; i < plan.swaps.size(); ++i) {
        EXPECT_TRUE(q20.coupled(plan.swaps[i].first,
                                plan.swaps[i].second));
        if (i > 0) {
            EXPECT_EQ(plan.swaps[i].first,
                      plan.swaps[i - 1].second);
        }
    }
}

TEST(MovementPlanner, StationaryEndpointNeverDisplaced)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const SwapCountCost cost(q20);
    const MovementPlanner planner(q20, cost);
    const MovementPlan plan = planner.plan(0, 19);
    // The mover walks one end; neither intermediate swap may touch
    // the stationary endpoint.
    const int stationary =
        plan.gateA == 0 || plan.gateB == 0 ? 0 : 19;
    // Determine which endpoint stayed: the gate executes on
    // (gateA, gateB) and one of them must be an original operand.
    EXPECT_TRUE(plan.gateA == 0 || plan.gateA == 19 ||
                plan.gateB == 0 || plan.gateB == 19);
    for (const auto &[u, v] : plan.swaps) {
        EXPECT_NE(u, stationary);
        EXPECT_NE(v, stationary);
    }
}

TEST(MovementPlanner, ReliabilityPlannerAvoidsWeakLinks)
{
    // Ring of 6: route 0 -> 3 clockwise or counter-clockwise.
    // Make the clockwise side terrible.
    const auto ring6 = topology::ring(6);
    auto snap = test::uniformSnapshot(ring6, 0.02);
    snap.setLinkError(ring6.linkIndex(1, 2), 0.25);
    const ReliabilityCost cost(ring6, snap);
    const MovementPlanner planner(ring6, cost);
    const MovementPlan plan = planner.plan(0, 3);
    // Route must not swap across the weak 1-2 link.
    for (const auto &[u, v] : plan.swaps) {
        const bool isWeak = (u == 1 && v == 2) ||
                            (u == 2 && v == 1);
        EXPECT_FALSE(isWeak);
    }
}

TEST(MovementPlanner, ReliabilityRelocatesOffTerribleLink)
{
    // Adjacent pair on a terrible link; a strong alternative one
    // hop away must win under reliability costs.
    const auto ring4 = topology::ring(4);
    auto snap = test::uniformSnapshot(ring4, 0.01);
    snap.setLinkError(ring4.linkIndex(0, 1), 0.40);
    const ReliabilityCost cost(ring4, snap);
    const MovementPlanner planner(ring4, cost);
    const MovementPlan plan = planner.plan(0, 1);
    // Stay cost = -log(0.6) ~= 0.51; move over a 0.01 link
    // (3 * 0.01) + execute (0.01) ~= 0.04: relocation wins.
    EXPECT_FALSE(plan.swaps.empty());
}

TEST(MovementPlanner, MahZeroForbidsDetours)
{
    const auto ring6 = topology::ring(6);
    auto snap = test::uniformSnapshot(ring6, 0.02);
    snap.setLinkError(ring6.linkIndex(0, 1), 0.3);
    const ReliabilityCost cost(ring6, snap);
    // MAH = 0: adjacent pairs cannot relocate at all.
    const MovementPlanner planner(ring6, cost, 0);
    const MovementPlan plan = planner.plan(0, 1);
    EXPECT_TRUE(plan.swaps.empty());
}

TEST(MovementPlanner, MahLimitsExtraHops)
{
    const auto q20 = topology::ibmQ20Tokyo();
    Rng rng(3);
    const auto snap = test::randomSnapshot(q20, rng);
    const ReliabilityCost cost(q20, snap);
    for (int mah : {0, 1, 2, 4}) {
        const MovementPlanner planner(q20, cost, mah);
        const auto &hops = q20.hopDistances();
        for (int a = 0; a < q20.numQubits(); ++a) {
            for (int b = a + 1; b < q20.numQubits(); ++b) {
                const MovementPlan plan = planner.plan(a, b);
                EXPECT_LE(plan.extraHops, mah);
                const int minHops =
                    hops[static_cast<std::size_t>(a)]
                        [static_cast<std::size_t>(b)];
                EXPECT_EQ(static_cast<int>(plan.swaps.size()) + 1,
                          minHops + plan.extraHops);
            }
        }
    }
}

TEST(MovementPlanner, UnlimitedNeverWorseThanLimited)
{
    const auto q20 = topology::ibmQ20Tokyo();
    Rng rng(4);
    const auto snap = test::randomSnapshot(q20, rng);
    const ReliabilityCost cost(q20, snap);
    const MovementPlanner unlimited(q20, cost);
    const MovementPlanner limited(q20, cost, 2);
    for (int a = 0; a < q20.numQubits(); ++a) {
        for (int b = a + 1; b < q20.numQubits(); ++b) {
            EXPECT_LE(unlimited.plan(a, b).cost,
                      limited.plan(a, b).cost + 1e-12);
        }
    }
}

TEST(MovementPlanner, UniformCostMatchesHopOptimal)
{
    // With uniform costs the planner must use exactly
    // hop-distance - 1 swaps for every pair.
    const auto q20 = topology::ibmQ20Tokyo();
    const SwapCountCost cost(q20);
    const MovementPlanner planner(q20, cost);
    const auto &hops = q20.hopDistances();
    for (int a = 0; a < q20.numQubits(); ++a) {
        for (int b = a + 1; b < q20.numQubits(); ++b) {
            const MovementPlan plan = planner.plan(a, b);
            EXPECT_EQ(
                static_cast<int>(plan.swaps.size()),
                hops[static_cast<std::size_t>(a)]
                    [static_cast<std::size_t>(b)] - 1);
        }
    }
}

TEST(MovementPlanner, GateEndsAdjacent)
{
    const auto q20 = topology::ibmQ20Tokyo();
    Rng rng(5);
    const auto snap = test::randomSnapshot(q20, rng);
    const ReliabilityCost cost(q20, snap);
    const MovementPlanner planner(q20, cost);
    for (int a = 0; a < q20.numQubits(); ++a) {
        for (int b = a + 1; b < q20.numQubits(); ++b) {
            const MovementPlan plan = planner.plan(a, b);
            EXPECT_TRUE(q20.coupled(plan.gateA, plan.gateB));
        }
    }
}

/**
 * Property sweep: planner invariants hold on every topology
 * family, for every qubit pair, under both cost models.
 */
class PlannerTopologySweep
    : public ::testing::TestWithParam<std::string>
{
  protected:
    static topology::CouplingGraph
    machine(const std::string &name)
    {
        if (name == "q5")
            return topology::ibmQ5Tenerife();
        if (name == "q20")
            return topology::ibmQ20Tokyo();
        if (name == "falcon27")
            return topology::ibmFalcon27();
        if (name == "line9")
            return topology::linear(9);
        if (name == "ring8")
            return topology::ring(8);
        return topology::grid(3, 4);
    }
};

TEST_P(PlannerTopologySweep, PlansAreValidWalks)
{
    const topology::CouplingGraph graph = machine(GetParam());
    Rng rng(2024);
    const auto snap = test::randomSnapshot(graph, rng);
    const SwapCountCost uniform(graph);
    const ReliabilityCost reliable(graph, snap);

    for (const CostModel *cost :
         {static_cast<const CostModel *>(&uniform),
          static_cast<const CostModel *>(&reliable)}) {
        const MovementPlanner planner(graph, *cost);
        for (int a = 0; a < graph.numQubits(); ++a) {
            for (int b = a + 1; b < graph.numQubits(); ++b) {
                const MovementPlan plan = planner.plan(a, b);
                // The gate ends on a real link.
                EXPECT_TRUE(graph.coupled(plan.gateA,
                                          plan.gateB));
                // Swaps are coupled and form a contiguous walk.
                for (std::size_t i = 0; i < plan.swaps.size();
                     ++i) {
                    EXPECT_TRUE(graph.coupled(
                        plan.swaps[i].first,
                        plan.swaps[i].second));
                    if (i > 0) {
                        EXPECT_EQ(plan.swaps[i].first,
                                  plan.swaps[i - 1].second);
                    }
                }
                // Cost is positive and finite.
                EXPECT_GT(plan.cost, 0.0);
                EXPECT_TRUE(std::isfinite(plan.cost));
            }
        }
    }
}

TEST_P(PlannerTopologySweep, UniformCostIsHopOptimal)
{
    const topology::CouplingGraph graph = machine(GetParam());
    const SwapCountCost cost(graph);
    const MovementPlanner planner(graph, cost);
    const auto &hops = graph.hopDistances();
    for (int a = 0; a < graph.numQubits(); ++a) {
        for (int b = a + 1; b < graph.numQubits(); ++b) {
            EXPECT_EQ(static_cast<int>(
                          planner.plan(a, b).swaps.size()),
                      hops[static_cast<std::size_t>(a)]
                          [static_cast<std::size_t>(b)] - 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Topologies, PlannerTopologySweep,
                         ::testing::Values("q5", "q20",
                                           "falcon27", "line9",
                                           "ring8", "grid34"));

TEST(MovementPlanner, Validation)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const SwapCountCost cost(q5);
    const MovementPlanner planner(q5, cost);
    EXPECT_THROW(planner.plan(2, 2), VaqError);
    EXPECT_THROW(MovementPlanner(q5, cost, -5), VaqError);
}

TEST(MovementPlanner, DisconnectedPairRejected)
{
    const topology::CouplingGraph split("split", 4,
                                        {{0, 1}, {2, 3}});
    const SwapCountCost cost(split);
    const MovementPlanner planner(split, cost);
    EXPECT_THROW(planner.plan(0, 3), VaqError);
}

TEST(MovementPlanner, AdjacencyBoundIsZeroForNeighbors)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const SwapCountCost cost(q5);
    const MovementPlanner planner(q5, cost);
    EXPECT_DOUBLE_EQ(planner.adjacencyBound(0, 1), 0.0);
    EXPECT_GT(planner.adjacencyBound(0, 3), 0.0);
}

} // namespace
} // namespace vaq::core
