/**
 * @file
 * Fault-isolation tests for the batch compiler: a throwing or
 * timing-out job must not poison the batch, every other result must
 * stay bit-identical to a clean run at any thread count, and the
 * policy-degradation ladder / calibration quarantine must rescue
 * what can be rescued.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/allocator.hpp"
#include "core/batch_compiler.hpp"
#include "core/compile_cache.hpp"
#include "core/mapper.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq
{
namespace
{

using core::BatchCompiler;
using core::BatchOptions;
using core::BatchResult;
using core::JobStatus;

/**
 * Delegates to the baseline LocalityAllocator, but throws for any
 * program of `trigger_qubits` qubits. The trigger is a property of
 * the circuit (not a call counter), so the injected fault hits the
 * same jobs under every thread count.
 */
class ThrowingAllocator final : public core::Allocator
{
  public:
    explicit ThrowingAllocator(int trigger_qubits)
        : _trigger(trigger_qubits)
    {}

    core::Layout allocate(
        const circuit::Circuit &logical,
        const topology::CouplingGraph &graph,
        const calibration::Snapshot &snapshot) const override
    {
        if (logical.numQubits() == _trigger)
            throw CompileError("injected allocator fault");
        return _inner.allocate(logical, graph, snapshot);
    }

    std::string name() const override { return "throwing"; }

  private:
    core::LocalityAllocator _inner;
    int _trigger;
};

/** numQubits == 4 arms the injected fault; everything else is a
 *  3-qubit program the allocator handles normally. */
constexpr int kTriggerQubits = 4;

std::vector<circuit::Circuit>
batchCircuits(std::size_t count, std::size_t faulty_index)
{
    Rng rng(1234);
    std::vector<circuit::Circuit> circuits;
    circuits.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const int qubits = i == faulty_index ? kTriggerQubits : 3;
        circuits.push_back(
            vaq::test::randomCircuit(qubits, 12, rng));
    }
    return circuits;
}

core::Mapper
throwingMapper()
{
    return core::Mapper(
        "throwy", std::make_unique<ThrowingAllocator>(kTriggerQubits),
        core::CostKind::SwapCount);
}

core::Mapper
referenceMapper()
{
    return core::Mapper("reference",
                        std::make_unique<core::LocalityAllocator>(),
                        core::CostKind::SwapCount);
}

/** Everything observable about a result, for bit-identity checks. */
std::string
fingerprint(const BatchResult &r)
{
    std::string fp = std::to_string(r.circuit) + "/" +
                     std::to_string(r.snapshot) + "/" +
                     core::jobStatusName(r.status) + "/" +
                     r.policyUsed + "/" +
                     std::to_string(r.attempts) + "/" +
                     std::to_string(r.mapped.insertedSwaps) + "/" +
                     std::to_string(r.analyticPst);
    if (r.ok())
        fp += "\n" + circuit::toQasm(r.mapped.physical);
    return fp;
}

BatchOptions
optionsWithThreads(std::size_t threads)
{
    BatchOptions options;
    options.compile.threads = threads;
    return options;
}

TEST(BatchRobustness, ThrowingJobIsIsolated)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    const auto circuits = batchCircuits(10, 4);
    const core::Mapper mapper = throwingMapper();

    BatchOptions options = optionsWithThreads(4);
    options.maxRetries = 0; // no ladder: the fault must surface
    BatchCompiler compiler(mapper, q5, options);
    const auto results = compiler.compileAll(
        circuits, {snapshot});

    ASSERT_EQ(results.size(), circuits.size());
    for (const BatchResult &r : results) {
        if (r.circuit == 4) {
            EXPECT_EQ(r.status, JobStatus::Failed);
            EXPECT_EQ(r.errorCategory, ErrorCategory::Compile);
            EXPECT_NE(r.error.find("injected allocator fault"),
                      std::string::npos);
            EXPECT_EQ(r.attempts, 1);
            EXPECT_FALSE(r.ok());
        } else {
            EXPECT_EQ(r.status, JobStatus::Ok);
            EXPECT_TRUE(r.error.empty());
            EXPECT_EQ(r.policyUsed, "throwy");
            EXPECT_GT(r.analyticPst, 0.0);
        }
    }
}

TEST(BatchRobustness, FallbackLadderRescuesThrowingJob)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    const auto circuits = batchCircuits(6, 2);
    const core::Mapper mapper = throwingMapper();

    BatchCompiler compiler(mapper, q5, optionsWithThreads(4));
    const auto results =
        compiler.compileAll(circuits, {snapshot});

    for (const BatchResult &r : results) {
        if (r.circuit == 2) {
            // "throwy" degrades to the registry baseline.
            EXPECT_EQ(r.status, JobStatus::Degraded);
            EXPECT_EQ(r.policyUsed, "baseline");
            EXPECT_EQ(r.attempts, 2);
            EXPECT_NE(r.note.find("fell back"), std::string::npos);
            EXPECT_TRUE(r.ok());
            EXPECT_GT(r.analyticPst, 0.0);
        } else {
            EXPECT_EQ(r.status, JobStatus::Ok);
        }
    }
}

TEST(BatchRobustness, UsageErrorsAreNotRetried)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    Rng rng(7);
    // 6-qubit program on a 5-qubit machine: deterministic usage
    // error, same under every policy; the ladder must not run.
    std::vector<circuit::Circuit> circuits{
        vaq::test::randomCircuit(6, 8, rng)};

    const core::Mapper mapper = referenceMapper();
    BatchCompiler compiler(mapper, q5, optionsWithThreads(2));
    const auto results =
        compiler.compileAll(circuits, {snapshot});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_EQ(results[0].errorCategory, ErrorCategory::Usage);
    EXPECT_EQ(results[0].attempts, 1);
}

TEST(BatchRobustness, FailFastRethrowsLowestIndexError)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    const auto circuits = batchCircuits(8, 3);
    const core::Mapper mapper = throwingMapper();

    BatchOptions options = optionsWithThreads(4);
    options.failFast = true;
    BatchCompiler compiler(mapper, q5, options);
    EXPECT_THROW(compiler.compileAll(circuits, {snapshot}),
                 CompileError);
}

TEST(BatchRobustness, NaNPoisonedSnapshotDegradesJobs)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto clean = vaq::test::uniformSnapshot(q5);
    calibration::Snapshot poisoned = clean;
    poisoned.qubit(3).t1Us =
        std::numeric_limits<double>::quiet_NaN();

    const auto circuits = batchCircuits(5, 99); // no thrower
    const core::Mapper mapper = referenceMapper();
    BatchCompiler compiler(mapper, q5, optionsWithThreads(4));
    const auto results =
        compiler.compileAll(circuits, {clean, poisoned});

    ASSERT_EQ(results.size(), circuits.size() * 2);
    for (const BatchResult &r : results) {
        if (r.snapshot == 0) {
            EXPECT_EQ(r.status, JobStatus::Ok);
            continue;
        }
        // Qubit 3 is quarantined; the healthy region {0,1,2,4}
        // stays connected on Tenerife, so jobs degrade instead of
        // failing and never touch the dead qubit.
        EXPECT_EQ(r.status, JobStatus::Degraded);
        EXPECT_NE(r.note.find("quarantined"), std::string::npos);
        EXPECT_GT(r.analyticPst, 0.0);
        for (int q = 0; q < 3; ++q)
            EXPECT_NE(r.mapped.initial.phys(q), 3);
        for (const circuit::Gate &g :
             r.mapped.physical.gates()) {
            EXPECT_NE(g.q0, 3);
            if (g.isTwoQubit()) {
                EXPECT_NE(g.q1, 3);
            }
        }
    }
}

TEST(BatchRobustness, UnusableSnapshotFailsItsJobsOnly)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto clean = vaq::test::uniformSnapshot(q5);
    calibration::Snapshot dead = clean;
    for (int q = 0; q < q5.numQubits(); ++q)
        dead.qubit(q).t1Us =
            std::numeric_limits<double>::quiet_NaN();

    const auto circuits = batchCircuits(4, 99);
    const core::Mapper mapper = referenceMapper();
    BatchCompiler compiler(mapper, q5, optionsWithThreads(2));
    const auto results =
        compiler.compileAll(circuits, {clean, dead});

    for (const BatchResult &r : results) {
        if (r.snapshot == 0) {
            EXPECT_EQ(r.status, JobStatus::Ok);
        } else {
            EXPECT_EQ(r.status, JobStatus::Failed);
            EXPECT_EQ(r.errorCategory, ErrorCategory::Calibration);
            EXPECT_EQ(r.attempts, 0);
            EXPECT_NE(r.error.find("quarantined"),
                      std::string::npos);
        }
    }
}

TEST(BatchRobustness, ExpiredDeadlineTimesJobsOut)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    const auto circuits = batchCircuits(3, 99);

    BatchOptions options = optionsWithThreads(2);
    options.jobDeadlineMs = 1e-6; // expires before any checkpoint
    const core::Mapper mapper = referenceMapper();
    BatchCompiler compiler(mapper, q5, options);
    const auto results =
        compiler.compileAll(circuits, {snapshot});

    for (const BatchResult &r : results) {
        EXPECT_EQ(r.status, JobStatus::TimedOut);
        EXPECT_EQ(r.errorCategory, ErrorCategory::Timeout);
        EXPECT_NE(r.error.find("deadline"), std::string::npos);
        // The primary and the ladder's baseline both timed out.
        EXPECT_EQ(r.attempts, 1 + 1);
        EXPECT_FALSE(r.ok());
    }
}

/**
 * Burns most of wall-clock budget before throwing a retryable
 * fault: the ladder's next rung then starts with the job deadline
 * already spent.
 */
class SlowThrowingAllocator final : public core::Allocator
{
  public:
    explicit SlowThrowingAllocator(double burnMs) : _burnMs(burnMs)
    {}

    core::Layout allocate(
        const circuit::Circuit &,
        const topology::CouplingGraph &,
        const calibration::Snapshot &) const override
    {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(_burnMs));
        throw CompileError("injected slow allocator fault");
    }

    std::string name() const override { return "slowpoke"; }

  private:
    double _burnMs;
};

TEST(BatchRobustness, DeadlineSpentByFirstAttemptTimesOutTheRetry)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    Rng rng(7);
    std::vector<circuit::Circuit> circuits{
        vaq::test::randomCircuit(3, 12, rng)};

    // The job deadline is shared across ladder attempts: attempt 1
    // burns it all before failing, so the baseline retry gets a
    // zero budget and must cancel at its first checkpoint — NOT
    // succeed late and report a deceptively healthy Degraded.
    BatchOptions options = optionsWithThreads(1);
    options.jobDeadlineMs = 20.0;
    const core::Mapper mapper(
        "slowpoke",
        std::make_unique<SlowThrowingAllocator>(80.0),
        core::CostKind::SwapCount);
    BatchCompiler compiler(mapper, q5, options);
    const auto results =
        compiler.compileAll(circuits, {snapshot});

    ASSERT_EQ(results.size(), 1u);
    const BatchResult &r = results[0];
    EXPECT_EQ(r.status, JobStatus::TimedOut);
    EXPECT_NE(r.status, JobStatus::Degraded);
    EXPECT_EQ(r.errorCategory, ErrorCategory::Timeout);
    EXPECT_NE(r.error.find("deadline"), std::string::npos)
        << r.error;
    // Both rungs ran and count: the slow primary plus the
    // zero-budget baseline retry.
    EXPECT_EQ(r.attempts, 2);
    EXPECT_FALSE(r.ok());
}

/**
 * The acceptance gate of the robustness layer: a ~100-job batch
 * with injected failures (throwing mapper at one circuit, one
 * NaN-poisoned snapshot) completes with exactly the faulty jobs
 * marked, and all other results bit-identical to a clean run at
 * every thread count.
 */
TEST(BatchRobustness, InjectedFaultsLeaveOtherResultsBitIdentical)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto clean = vaq::test::uniformSnapshot(q5);
    calibration::Snapshot poisoned = clean;
    poisoned.qubit(3).t2Us =
        std::numeric_limits<double>::infinity();

    const std::size_t kCircuits = 50, kFaulty = 17;
    const auto circuits = batchCircuits(kCircuits, kFaulty);
    const core::Mapper faulty = throwingMapper();
    const core::Mapper reference = referenceMapper();

    // Clean reference: same allocator behavior, no fault, clean
    // snapshot, single thread.
    BatchCompiler refCompiler(reference, q5, optionsWithThreads(1));
    const auto refResults =
        refCompiler.compileAll(circuits, {clean});

    std::vector<std::string> baselineFingerprints;
    for (const std::size_t threads : {1u, 4u, 8u}) {
        BatchCompiler compiler(faulty, q5,
                               optionsWithThreads(threads));
        const auto results =
            compiler.compileAll(circuits, {clean, poisoned});
        ASSERT_EQ(results.size(), kCircuits * 2);

        std::vector<std::string> fingerprints;
        fingerprints.reserve(results.size());
        for (const BatchResult &r : results) {
            fingerprints.push_back(fingerprint(r));

            const bool threw = r.circuit == kFaulty;
            const bool dirty = r.snapshot == 1;
            if (threw) {
                // Rescued by the ladder on both snapshots.
                EXPECT_EQ(r.status, JobStatus::Degraded);
                EXPECT_EQ(r.policyUsed, "baseline");
            } else if (dirty) {
                EXPECT_EQ(r.status, JobStatus::Degraded);
                EXPECT_NE(r.note.find("quarantined"),
                          std::string::npos);
            } else {
                EXPECT_EQ(r.status, JobStatus::Ok);
                // Healthy jobs match the clean single-thread
                // reference exactly (the fingerprints embed the
                // full QASM and the analytic PST).
                const BatchResult &ref = refResults[r.circuit];
                EXPECT_EQ(circuit::toQasm(r.mapped.physical),
                          circuit::toQasm(ref.mapped.physical));
                EXPECT_EQ(r.mapped.insertedSwaps,
                          ref.mapped.insertedSwaps);
                EXPECT_EQ(r.analyticPst, ref.analyticPst);
            }
        }

        if (baselineFingerprints.empty())
            baselineFingerprints = std::move(fingerprints);
        else
            EXPECT_EQ(fingerprints, baselineFingerprints)
                << "batch output depends on thread count ("
                << threads << ")";
    }
}

TEST(BatchRobustness, EpochsAdvanceTogether)
{
    // Regression: the matrix and plan stores keep separate epoch
    // counters; a reporting path once read them as one value while
    // they had drifted apart across invalidations. At rest they
    // must be equal (and equal to the legacy `epoch` alias), and
    // one invalidation bumps both by exactly one.
    const core::PathCacheStats before = core::pathCacheStats();
    EXPECT_EQ(before.matrixEpoch, before.planEpoch);
    EXPECT_EQ(before.epoch, before.matrixEpoch);

    core::invalidatePathCaches();
    const core::PathCacheStats after = core::pathCacheStats();
    EXPECT_EQ(after.matrixEpoch, before.matrixEpoch + 1);
    EXPECT_EQ(after.planEpoch, before.planEpoch + 1);
    EXPECT_EQ(after.matrixEpoch, after.planEpoch);
    EXPECT_EQ(after.epoch, after.matrixEpoch);
    // Both stores were emptied.
    EXPECT_EQ(after.matrixEntries, 0u);
    EXPECT_EQ(after.planEntries, 0u);
}

/**
 * Satellite regression for the cache-invalidation race: a
 * calibration push (invalidatePathCaches()) landing in the middle
 * of an in-flight batch must never change what the batch computes —
 * in-flight compiles finish on the shared tables they already hold,
 * and re-misses rebuild identical tables from the same snapshot.
 * Runs under the TSan `parallel` leg, where the old unsynchronized
 * epoch bump would also trip the race detector.
 */
TEST(BatchRobustness, InvalidationRacingBatchKeepsResultsBitIdentical)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    const auto circuits = batchCircuits(30, 99); // no thrower
    const core::Mapper mapper = referenceMapper();

    // Quiet reference, single-threaded, no invalidations.
    BatchCompiler refCompiler(mapper, q5, optionsWithThreads(1));
    const auto reference =
        refCompiler.compileAll(circuits, {snapshot});
    std::vector<std::string> referenceFingerprints;
    for (const BatchResult &r : reference)
        referenceFingerprints.push_back(fingerprint(r));

    for (int round = 0; round < 3; ++round) {
        std::atomic<bool> done{false};
        std::thread invalidator([&done] {
            while (!done.load(std::memory_order_relaxed)) {
                core::invalidatePathCaches();
                std::this_thread::yield();
            }
        });

        BatchCompiler compiler(mapper, q5, optionsWithThreads(4));
        const auto results =
            compiler.compileAll(circuits, {snapshot});
        done.store(true, std::memory_order_relaxed);
        invalidator.join();

        std::vector<std::string> fingerprints;
        for (const BatchResult &r : results)
            fingerprints.push_back(fingerprint(r));
        EXPECT_EQ(fingerprints, referenceFingerprints)
            << "round " << round;
    }
}

TEST(BatchRobustness, FallbackLadderShape)
{
    using core::BatchCompiler;
    EXPECT_EQ(BatchCompiler::fallbackLadder("vqa+vqm"),
              (std::vector<std::string>{"vqm", "baseline"}));
    EXPECT_EQ(BatchCompiler::fallbackLadder("vqa"),
              (std::vector<std::string>{"vqm", "baseline"}));
    EXPECT_EQ(BatchCompiler::fallbackLadder("vqm"),
              (std::vector<std::string>{"baseline"}));
    EXPECT_EQ(BatchCompiler::fallbackLadder("baseline"),
              std::vector<std::string>{});
    EXPECT_EQ(BatchCompiler::fallbackLadder("random"),
              (std::vector<std::string>{"baseline"}));
}

} // namespace
} // namespace vaq
