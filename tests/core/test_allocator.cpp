#include "core/allocator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/subgraph.hpp"
#include "graph/weighted_graph.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::core
{
namespace
{

using circuit::Circuit;

TEST(InteractionSummary, CountsCnotsPerPair)
{
    Circuit c(3);
    c.cx(0, 1).cx(0, 1).cx(1, 2).h(0);
    const InteractionSummary summary(c);
    EXPECT_DOUBLE_EQ(summary.weight(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(summary.weight(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(summary.weight(1, 2), 1.0);
    EXPECT_DOUBLE_EQ(summary.weight(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(summary.activity(1), 3.0);
    EXPECT_DOUBLE_EQ(summary.activity(0), 2.0);
}

TEST(InteractionSummary, WindowLimitsAnalysis)
{
    Circuit c(3);
    c.cx(0, 1);          // layer 0
    c.cx(0, 1);          // layer 1
    c.cx(1, 2);          // layer 2
    const InteractionSummary windowed(c, 2);
    EXPECT_DOUBLE_EQ(windowed.weight(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(windowed.weight(1, 2), 0.0);
}

TEST(InteractionSummary, ActivityOrderIsDescending)
{
    Circuit c(4);
    c.cx(0, 1).cx(0, 2).cx(0, 3).cx(1, 2);
    const InteractionSummary summary(c);
    const auto order = summary.byActivity();
    EXPECT_EQ(order[0], 0); // activity 3
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        EXPECT_GE(summary.activity(order[i]),
                  summary.activity(order[i + 1]));
    }
}

/** Allocation produces a complete, injective layout. */
void
expectValidLayout(const Layout &layout, int num_prog,
                  int num_phys)
{
    EXPECT_EQ(layout.numProg(), num_prog);
    EXPECT_EQ(layout.numPhys(), num_phys);
    EXPECT_TRUE(layout.isComplete());
    std::set<int> used;
    for (int q = 0; q < num_prog; ++q)
        EXPECT_TRUE(used.insert(layout.phys(q)).second);
}

TEST(RandomAllocator, ProducesValidLayouts)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const auto snap = test::uniformSnapshot(q20);
    const auto bv = workloads::bernsteinVazirani(8);
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        const RandomAllocator alloc(seed);
        expectValidLayout(alloc.allocate(bv, q20, snap), 8, 20);
    }
}

TEST(RandomAllocator, SeedControlsPlacement)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const auto snap = test::uniformSnapshot(q20);
    const auto bv = workloads::bernsteinVazirani(8);
    const Layout a = RandomAllocator(5).allocate(bv, q20, snap);
    const Layout b = RandomAllocator(5).allocate(bv, q20, snap);
    const Layout c = RandomAllocator(6).allocate(bv, q20, snap);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(LocalityAllocator, PlacesChattingQubitsAdjacent)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const auto snap = test::uniformSnapshot(q20);
    Circuit c(2);
    for (int i = 0; i < 5; ++i)
        c.cx(0, 1);
    const Layout layout =
        LocalityAllocator().allocate(c, q20, snap);
    EXPECT_TRUE(q20.coupled(layout.phys(0), layout.phys(1)));
}

TEST(LocalityAllocator, KeepsStarTopologyCompact)
{
    // BV's ancilla chats with everyone; its placement must be
    // within 2 hops of every data qubit on Q20.
    const auto q20 = topology::ibmQ20Tokyo();
    const auto snap = test::uniformSnapshot(q20);
    const auto bv = workloads::bernsteinVazirani(6);
    const Layout layout =
        LocalityAllocator().allocate(bv, q20, snap);
    const auto &hops = q20.hopDistances();
    const int hub = layout.phys(5); // ancilla
    for (int q = 0; q < 5; ++q) {
        EXPECT_LE(hops[static_cast<std::size_t>(hub)]
                      [static_cast<std::size_t>(
                          layout.phys(q))],
                  2);
    }
}

TEST(LocalityAllocator, ReliabilityFlavorPrefersStrongRegion)
{
    // Several hop-equivalent placements exist; the reliability
    // flavour must pick the strong pair of links.
    const auto line = topology::linear(6);
    auto snap = test::uniformSnapshot(line, 0.10);
    // Strong corridor 3-4-5.
    snap.setLinkError(line.linkIndex(3, 4), 0.01);
    snap.setLinkError(line.linkIndex(4, 5), 0.01);
    Circuit c(3);
    c.cx(0, 1).cx(1, 2);
    const Layout layout =
        LocalityAllocator(CostKind::Reliability)
            .allocate(c, line, snap);
    std::set<int> where{layout.phys(0), layout.phys(1),
                        layout.phys(2)};
    EXPECT_EQ(where, (std::set<int>{3, 4, 5}));
}

TEST(StrengthAllocator, UsesStrongestSubgraph)
{
    const auto line = topology::linear(6);
    auto snap = test::uniformSnapshot(line, 0.12);
    snap.setLinkError(line.linkIndex(0, 1), 0.02);
    snap.setLinkError(line.linkIndex(1, 2), 0.02);
    Circuit c(3);
    c.cx(0, 1).cx(1, 2);
    const Layout layout =
        StrengthAllocator(graph::SubgraphScore::InducedWeight)
            .allocate(c, line, snap);
    std::set<int> where{layout.phys(0), layout.phys(1),
                        layout.phys(2)};
    EXPECT_EQ(where, (std::set<int>{0, 1, 2}));
}

TEST(StrengthAllocator, MostActiveQubitGetsStrongestSpot)
{
    const auto q5 = topology::ibmQ5Tenerife();
    const auto snap = test::uniformSnapshot(q5);
    // Qubit 2 of the program is the hub.
    Circuit c(5);
    c.cx(2, 0).cx(2, 1).cx(2, 3).cx(2, 4);
    const Layout layout =
        StrengthAllocator().allocate(c, q5, snap);
    // Physical qubit 2 is the bowtie hub with degree 4.
    EXPECT_EQ(layout.phys(2), 2);
}

TEST(StrengthAllocator, ValidLayoutsOnRandomCircuits)
{
    const auto q20 = topology::ibmQ20Tokyo();
    Rng rng(13);
    const auto snap = test::randomSnapshot(q20, rng);
    for (int n : {2, 5, 10, 16, 20}) {
        const Circuit c = test::randomCircuit(n, 30, rng);
        expectValidLayout(
            StrengthAllocator().allocate(c, q20, snap), n, 20);
        expectValidLayout(
            LocalityAllocator().allocate(c, q20, snap), n, 20);
    }
}

TEST(StrengthAllocator, QubitAwareAvoidsBadReadout)
{
    // Two equally strong link pairs; one touches a qubit whose
    // readout is terrible. Only the qubit-aware variant dodges it.
    const auto line = topology::linear(6);
    auto snap = test::uniformSnapshot(line, 0.10);
    snap.setLinkError(line.linkIndex(0, 1), 0.02);
    snap.setLinkError(line.linkIndex(1, 2), 0.02);
    snap.setLinkError(line.linkIndex(3, 4), 0.02);
    snap.setLinkError(line.linkIndex(4, 5), 0.02);
    snap.qubit(1).readoutError = 0.45;

    Circuit c(3);
    c.cx(0, 1).cx(1, 2).measureAll();

    const Layout aware =
        StrengthAllocator(graph::SubgraphScore::InducedWeight,
                          0, true)
            .allocate(c, line, snap);
    std::set<int> where{aware.phys(0), aware.phys(1),
                        aware.phys(2)};
    EXPECT_EQ(where, (std::set<int>{3, 4, 5}));
}

TEST(StrengthAllocator, QubitAwareNamesDiffer)
{
    EXPECT_EQ(StrengthAllocator().name(), "vqa-strength");
    EXPECT_EQ(StrengthAllocator(
                  graph::SubgraphScore::InducedWeight, 0, true)
                  .name(),
              "vqa-strength-q");
}

TEST(StrengthAllocator, WindowedActivityDiffers)
{
    // Early gates favour pair (0,1); late gates favour (2,3).
    const auto q5 = topology::ibmQ5Tenerife();
    auto snap = test::uniformSnapshot(q5, 0.10);
    snap.setLinkError(q5.linkIndex(2, 3), 0.01);
    Circuit c(4);
    c.cx(0, 1);
    for (int i = 0; i < 8; ++i)
        c.cx(2, 3);
    const Layout windowed =
        StrengthAllocator(graph::SubgraphScore::InducedWeight, 1)
            .allocate(c, q5, snap);
    const Layout whole =
        StrengthAllocator(graph::SubgraphScore::InducedWeight)
            .allocate(c, q5, snap);
    // Whole-program analysis must give (2,3) the strong link.
    EXPECT_TRUE((whole.phys(2) == 2 && whole.phys(3) == 3) ||
                (whole.phys(2) == 3 && whole.phys(3) == 2));
    (void)windowed; // windowed layout is merely valid
}

} // namespace
} // namespace vaq::core
