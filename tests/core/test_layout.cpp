#include "core/layout.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vaq::core
{
namespace
{

TEST(Layout, ConstructionValidation)
{
    EXPECT_THROW(Layout(0, 5), VaqError);
    EXPECT_THROW(Layout(6, 5), VaqError);
    EXPECT_NO_THROW(Layout(5, 5));
}

TEST(Layout, StartsEmpty)
{
    const Layout l(2, 4);
    EXPECT_FALSE(l.isComplete());
    EXPECT_EQ(l.prog(0), kFreeQubit);
    EXPECT_THROW(l.phys(0), VaqError);
}

TEST(Layout, AssignAndLookup)
{
    Layout l(2, 4);
    l.assign(0, 3);
    l.assign(1, 1);
    EXPECT_TRUE(l.isComplete());
    EXPECT_EQ(l.phys(0), 3);
    EXPECT_EQ(l.phys(1), 1);
    EXPECT_EQ(l.prog(3), 0);
    EXPECT_EQ(l.prog(1), 1);
    EXPECT_EQ(l.prog(0), kFreeQubit);
}

TEST(Layout, DoubleAssignmentRejected)
{
    Layout l(2, 4);
    l.assign(0, 3);
    EXPECT_THROW(l.assign(0, 2), VaqError); // prog already placed
    EXPECT_THROW(l.assign(1, 3), VaqError); // phys occupied
}

TEST(Layout, BoundsChecked)
{
    Layout l(2, 4);
    EXPECT_THROW(l.assign(-1, 0), VaqError);
    EXPECT_THROW(l.assign(2, 0), VaqError);
    EXPECT_THROW(l.assign(0, 4), VaqError);
    EXPECT_THROW(l.prog(9), VaqError);
}

TEST(Layout, IdentityFactory)
{
    const Layout l = Layout::identity(3, 5);
    for (int q = 0; q < 3; ++q) {
        EXPECT_EQ(l.phys(q), q);
        EXPECT_EQ(l.prog(q), q);
    }
    EXPECT_EQ(l.prog(4), kFreeQubit);
}

TEST(Layout, SwapMovesOccupants)
{
    Layout l = Layout::identity(2, 4);
    l.applySwap(0, 3); // prog 0 moves to free qubit 3
    EXPECT_EQ(l.phys(0), 3);
    EXPECT_EQ(l.prog(0), kFreeQubit);
    EXPECT_EQ(l.prog(3), 0);

    l.applySwap(1, 3); // progs 1 and 0 exchange
    EXPECT_EQ(l.phys(0), 1);
    EXPECT_EQ(l.phys(1), 3);
}

TEST(Layout, SwapOfTwoFreeQubitsIsNoop)
{
    Layout l = Layout::identity(1, 4);
    l.applySwap(2, 3);
    EXPECT_EQ(l.prog(2), kFreeQubit);
    EXPECT_EQ(l.prog(3), kFreeQubit);
    EXPECT_EQ(l.phys(0), 0);
}

TEST(Layout, SwapValidation)
{
    Layout l = Layout::identity(2, 4);
    EXPECT_THROW(l.applySwap(1, 1), VaqError);
    EXPECT_THROW(l.applySwap(0, 7), VaqError);
}

TEST(Layout, ProgToPhysRequiresComplete)
{
    Layout l(2, 4);
    EXPECT_THROW(l.progToPhys(), VaqError);
    l.assign(0, 0);
    l.assign(1, 2);
    EXPECT_EQ(l.progToPhys(), (std::vector<int>{0, 2}));
}

TEST(Layout, SwapsPreserveBijectivity)
{
    Layout l = Layout::identity(3, 6);
    const int sequence[][2] = {{0, 1}, {1, 4}, {4, 5}, {2, 1},
                               {3, 0}, {5, 2}};
    for (const auto &s : sequence)
        l.applySwap(s[0], s[1]);
    // Every program qubit findable, every phys slot consistent.
    std::vector<bool> seen(6, false);
    for (int q = 0; q < 3; ++q) {
        const int p = l.phys(q);
        EXPECT_EQ(l.prog(p), q);
        EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
        seen[static_cast<std::size_t>(p)] = true;
    }
}

} // namespace
} // namespace vaq::core
