#include "core/astar_router.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::core
{
namespace
{

/** Apply a swap sequence to a copy of the layout. */
Layout
applied(Layout layout, const SwapSequence &swaps)
{
    for (const auto &[u, v] : swaps)
        layout.applySwap(u, v);
    return layout;
}

TEST(AstarRouter, AlreadyAdjacentUniformCostIsEmpty)
{
    const auto line = topology::linear(4);
    const SwapCountCost cost(line);
    const MovementPlanner planner(line, cost);
    const Layout layout = Layout::identity(4, 4);
    const auto swaps = planLayerSwaps(line, cost, planner, layout,
                                      {{0, 1}}, 10000);
    ASSERT_TRUE(swaps.has_value());
    EXPECT_TRUE(swaps->empty());
}

TEST(AstarRouter, SingleGateUsesMinimalSwaps)
{
    const auto line = topology::linear(5);
    const SwapCountCost cost(line);
    const MovementPlanner planner(line, cost);
    const Layout layout = Layout::identity(5, 5);
    const auto swaps = planLayerSwaps(line, cost, planner, layout,
                                      {{0, 4}}, 100000);
    ASSERT_TRUE(swaps.has_value());
    EXPECT_EQ(swaps->size(), 3u);
    const Layout result = applied(layout, *swaps);
    EXPECT_TRUE(line.coupled(result.phys(0), result.phys(4)));
}

TEST(AstarRouter, GoalMakesEveryPairAdjacent)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const SwapCountCost cost(q20);
    const MovementPlanner planner(q20, cost);
    const Layout layout = Layout::identity(20, 20);
    const std::vector<ProgPair> pairs{{0, 19}, {4, 15}, {2, 13}};
    const auto swaps = planLayerSwaps(q20, cost, planner, layout,
                                      pairs, 200000);
    ASSERT_TRUE(swaps.has_value());
    const Layout result = applied(layout, *swaps);
    for (const auto &[qa, qb] : pairs) {
        EXPECT_TRUE(
            q20.coupled(result.phys(qa), result.phys(qb)));
    }
}

TEST(AstarRouter, EmittedSwapsAreRealLinks)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const SwapCountCost cost(q20);
    const MovementPlanner planner(q20, cost);
    const Layout layout = Layout::identity(20, 20);
    const auto swaps = planLayerSwaps(q20, cost, planner, layout,
                                      {{0, 14}}, 100000);
    ASSERT_TRUE(swaps.has_value());
    for (const auto &[u, v] : *swaps)
        EXPECT_TRUE(q20.coupled(u, v));
}

TEST(AstarRouter, TinyBudgetReturnsNulloptOrPlan)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const SwapCountCost cost(q20);
    const MovementPlanner planner(q20, cost);
    const Layout layout = Layout::identity(20, 20);
    const auto swaps = planLayerSwaps(q20, cost, planner, layout,
                                      {{0, 19}, {5, 14}}, 3);
    // With 3 expansions the search cannot finish; the fallback
    // contract is "nullopt" (unless a goal was luckily found).
    if (swaps.has_value()) {
        const Layout result = applied(layout, *swaps);
        EXPECT_TRUE(q20.coupled(result.phys(0), result.phys(19)));
    } else {
        SUCCEED();
    }
}

TEST(AstarRouter, ReliabilityAvoidsWeakCorridor)
{
    // 2x3 grid; make the entire left column weak. Routing 0-5
    // must prefer swaps on the strong right side.
    const auto g = topology::grid(2, 3);
    auto snap = test::uniformSnapshot(g, 0.02);
    snap.setLinkError(g.linkIndex(0, 3), 0.30);
    snap.setLinkError(g.linkIndex(0, 1), 0.30);
    const ReliabilityCost cost(g, snap);
    const MovementPlanner planner(g, cost);
    const Layout layout = Layout::identity(6, 6);
    const auto swaps = planLayerSwaps(g, cost, planner, layout,
                                      {{0, 5}}, 100000);
    ASSERT_TRUE(swaps.has_value());
    for (const auto &[u, v] : *swaps) {
        const bool weak01 = (u == 0 && v == 1) ||
                            (u == 1 && v == 0);
        const bool weak03 = (u == 0 && v == 3) ||
                            (u == 3 && v == 0);
        // Qubit 0 itself must move over *some* link, but the plan
        // should use at most one weak hop, never both.
        EXPECT_FALSE(weak01 && weak03);
    }
    const Layout result = applied(layout, *swaps);
    EXPECT_TRUE(g.coupled(result.phys(0), result.phys(5)));
}

TEST(AstarRouter, UniformCostMatchesPlannerOnSinglePairs)
{
    const auto q20 = topology::ibmQ20Tokyo();
    const SwapCountCost cost(q20);
    const MovementPlanner planner(q20, cost);
    const Layout layout = Layout::identity(20, 20);
    for (const auto &pair :
         std::vector<ProgPair>{{0, 19}, {3, 16}, {9, 10}}) {
        const auto swaps = planLayerSwaps(
            q20, cost, planner, layout, {pair}, 300000);
        ASSERT_TRUE(swaps.has_value());
        const auto plan =
            planner.plan(layout.phys(pair.first),
                         layout.phys(pair.second));
        EXPECT_EQ(swaps->size(), plan.swaps.size());
    }
}

TEST(AstarRouter, EmptyPairsRejected)
{
    const auto line = topology::linear(3);
    const SwapCountCost cost(line);
    const MovementPlanner planner(line, cost);
    const Layout layout = Layout::identity(3, 3);
    EXPECT_THROW(
        planLayerSwaps(line, cost, planner, layout, {}, 100),
        VaqError);
}

} // namespace
} // namespace vaq::core
