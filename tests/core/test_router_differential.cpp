/**
 * @file
 * Differential harness for the shared path caches: with the caches
 * on, every compile must produce bit-identical output to the seed
 * per-query code path (caches off). The guarantee rests on the
 * reliability matrix re-accumulating each Floyd-Warshall distance
 * along its next-hop chain — the exact left-to-right sum Dijkstra
 * forms — and on the plan tables storing exactly what the uncached
 * planner computes; these tests are the enforcement.
 */
#include <gtest/gtest.h>

#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "core/batch_compiler.hpp"
#include "core/compile_cache.hpp"
#include "core/compile_options.hpp"
#include "core/mapper.hpp"
#include "graph/reliability_matrix.hpp"
#include "graph/shortest_path.hpp"
#include "sim/fault_sim.hpp"
#include "sim/noise_model.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace
{

using namespace vaq;

double
scoreOf(const core::MappedCircuit &mapped,
        const topology::CouplingGraph &graph,
        const calibration::Snapshot &snapshot)
{
    const sim::NoiseModel model(graph, snapshot,
                                sim::CoherenceMode::PerOp);
    return sim::analyticPst(mapped.physical, model);
}

/**
 * Compile with caches off (the seed path) and on, and require the
 * outputs to agree bit for bit: same physical gate stream, same
 * layouts, same SWAP count, same analytic PST double.
 */
void
expectIdenticalCompile(const core::Mapper &mapper,
                       const circuit::Circuit &logical,
                       const topology::CouplingGraph &graph,
                       const calibration::Snapshot &snapshot)
{
    const core::MappedCircuit seed = mapper.compile(
        logical, graph, snapshot,
        core::CompileOptions{.cacheEnabled = false});
    const core::MappedCircuit cached = mapper.compile(
        logical, graph, snapshot,
        core::CompileOptions{.cacheEnabled = true});

    EXPECT_EQ(seed.physical, cached.physical);
    EXPECT_EQ(seed.initial, cached.initial);
    EXPECT_EQ(seed.final, cached.final);
    EXPECT_EQ(seed.insertedSwaps, cached.insertedSwaps);
    EXPECT_EQ(scoreOf(seed, graph, snapshot),
              scoreOf(cached, graph, snapshot));
}

/**
 * The bit-compatibility cornerstone: Floyd-Warshall distances,
 * re-accumulated along next-hop chains, equal repeated-Dijkstra
 * distances exactly (== on doubles, no tolerance).
 */
TEST(RouterDifferential, MatrixDistancesMatchDijkstraBitwise)
{
    Rng rng(11);
    for (const auto &machine :
         {topology::ibmQ20Tokyo(), topology::ibmFalcon27(),
          topology::grid(4, 5), topology::ring(9)}) {
        for (int trial = 0; trial < 5; ++trial) {
            const calibration::Snapshot snapshot =
                test::randomSnapshot(machine, rng);
            const graph::WeightedGraph costs =
                core::reliabilityCostGraph(machine, snapshot);
            const graph::ReliabilityMatrix matrix(costs);
            const auto reference =
                graph::allPairsDistances(costs);
            for (int a = 0; a < machine.numQubits(); ++a) {
                for (int b = 0; b < machine.numQubits(); ++b) {
                    EXPECT_EQ(
                        matrix.distance(a, b),
                        reference[static_cast<std::size_t>(a)]
                                 [static_cast<std::size_t>(b)])
                        << machine.name() << " trial " << trial
                        << " pair (" << a << ", " << b << ")";
                }
            }
        }
    }
}

TEST(RouterDifferential, VqmMatchesSeedOn50RandomCircuits)
{
    const topology::CouplingGraph machine =
        topology::ibmQ20Tokyo();
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});
    Rng rng(23);
    for (int trial = 0; trial < 50; ++trial) {
        const calibration::Snapshot snapshot =
            test::randomSnapshot(machine, rng);
        const int qubits =
            3 + static_cast<int>(rng.uniformInt(std::uint64_t{6}));
        const circuit::Circuit logical = test::randomCircuit(
            qubits,
            10 + static_cast<int>(rng.uniformInt(std::uint64_t{20})),
            rng);
        expectIdenticalCompile(mapper, logical, machine, snapshot);
    }
}

TEST(RouterDifferential, FullPortfoliosMatchSeed)
{
    const topology::CouplingGraph machine =
        topology::ibmQ20Tokyo();
    // Every allocator/cost/strategy combination the portfolios
    // exercise: baseline (uniform costs), VQA+VQM (strength
    // allocation + reliability routing), MAH-bounded VQM.
    const core::Mapper baseline = core::makeMapper({.name = "baseline"});
    const core::Mapper vqaVqm = core::makeMapper({.name = "vqa+vqm"});
    const core::Mapper vqmMah = core::makeMapper({.name = "vqm", .mah = 4});
    Rng rng(31);
    for (int trial = 0; trial < 8; ++trial) {
        const calibration::Snapshot snapshot =
            test::randomSnapshot(machine, rng);
        const circuit::Circuit logical =
            test::randomCircuit(6, 24, rng);
        expectIdenticalCompile(baseline, logical, machine,
                               snapshot);
        expectIdenticalCompile(vqaVqm, logical, machine, snapshot);
        expectIdenticalCompile(vqmMah, logical, machine, snapshot);
    }
}

TEST(RouterDifferential, UniformCalibrationTiesResolveIdentically)
{
    // Uniform link errors make every route cost tie; the cached
    // and per-query searches must still break every tie the same
    // way.
    const topology::CouplingGraph machine =
        topology::ibmQ20Tokyo();
    const calibration::Snapshot snapshot =
        test::uniformSnapshot(machine);
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});
    Rng rng(47);
    for (int trial = 0; trial < 10; ++trial) {
        const circuit::Circuit logical =
            test::randomCircuit(7, 30, rng);
        expectIdenticalCompile(mapper, logical, machine, snapshot);
    }
}

TEST(RouterDifferential, BatchAgreesAcrossThreadCounts)
{
    const topology::CouplingGraph machine =
        topology::ibmQ20Tokyo();
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});
    Rng rng(59);

    std::vector<circuit::Circuit> circuits;
    for (int i = 0; i < 12; ++i)
        circuits.push_back(test::randomCircuit(5, 18, rng));
    std::vector<calibration::Snapshot> snapshots;
    for (int s = 0; s < 3; ++s)
        snapshots.push_back(test::randomSnapshot(machine, rng));

    // Sequential seed reference, caches off.
    std::vector<core::MappedCircuit> reference;
    for (const auto &snapshot : snapshots) {
        for (const auto &circuit : circuits) {
            reference.push_back(mapper.compile(
                circuit, machine, snapshot,
                core::CompileOptions{.cacheEnabled = false}));
        }
    }

    for (const std::size_t threads : {1u, 4u, 8u}) {
        core::BatchOptions options;
        options.compile.cacheEnabled = true;
        options.compile.threads = threads;
        core::BatchCompiler compiler(mapper, machine, options);
        const std::vector<core::BatchResult> results =
            compiler.compileAll(circuits, snapshots);
        ASSERT_EQ(results.size(), reference.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            const core::MappedCircuit &seed = reference[i];
            const core::MappedCircuit &got = results[i].mapped;
            EXPECT_EQ(seed.physical, got.physical)
                << "job " << i << " with " << threads
                << " threads";
            EXPECT_EQ(seed.initial, got.initial);
            EXPECT_EQ(seed.final, got.final);
            EXPECT_EQ(seed.insertedSwaps, got.insertedSwaps);
            EXPECT_EQ(
                scoreOf(seed, machine,
                        snapshots[results[i].snapshot]),
                results[i].analyticPst);
        }
    }
}

TEST(RouterDifferential, SharedMatrixIsReusedAndInvalidated)
{
    const topology::CouplingGraph machine = topology::ibmQ5Tenerife();
    Rng rng(71);
    const calibration::Snapshot snapshot =
        test::randomSnapshot(machine, rng);

    // The thread-local override Mapper::compile uses internally,
    // exercised directly against the shared-cache entry points.
    const core::PathCacheScope on(true);
    const auto first =
        core::sharedReliabilityMatrix(machine, snapshot);
    const auto second =
        core::sharedReliabilityMatrix(machine, snapshot);
    EXPECT_EQ(first.get(), second.get());

    const std::uint64_t epochBefore =
        core::pathCacheStats().epoch;
    core::invalidatePathCaches();
    EXPECT_GT(core::pathCacheStats().epoch, epochBefore);

    // Old handles stay valid; fresh lookups rebuild.
    const auto third =
        core::sharedReliabilityMatrix(machine, snapshot);
    EXPECT_NE(first.get(), third.get());
    EXPECT_EQ(first->distance(0, 4), third->distance(0, 4));
}

} // namespace
