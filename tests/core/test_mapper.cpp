#include "core/mapper.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/fault_sim.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::core
{
namespace
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

class MapperTest : public ::testing::Test
{
  protected:
    MapperTest()
        : graph(topology::ibmQ20Tokyo()), rng(17),
          snap(test::randomSnapshot(graph, rng))
    {}

    topology::CouplingGraph graph;
    Rng rng;
    calibration::Snapshot snap;
};

TEST_F(MapperTest, AllFactoriesProduceExecutableCircuits)
{
    const auto bv = workloads::bernsteinVazirani(10);
    for (const Mapper &mapper :
         {makeRandomizedMapper(3), makeBaselineMapper(),
          makeVqmMapper(), makeVqmMapper(4), makeVqaMapper(),
          makeVqaVqmMapper()}) {
        const MappedCircuit mapped =
            mapper.map(bv, graph, snap);
        const sim::NoiseModel model(graph, snap);
        EXPECT_NO_THROW(
            sim::checkExecutable(mapped.physical, model))
            << mapper.name();
        EXPECT_TRUE(mapped.initial.isComplete());
        EXPECT_TRUE(mapped.final.isComplete());
    }
}

TEST_F(MapperTest, PolicyNamesAreStable)
{
    EXPECT_EQ(makeBaselineMapper().name(), "baseline");
    EXPECT_EQ(makeVqmMapper().name(), "vqm");
    EXPECT_EQ(makeVqmMapper(4).name(), "vqm-mah4");
    EXPECT_EQ(makeVqaVqmMapper().name(), "vqa+vqm");
    EXPECT_EQ(makeRandomizedMapper(1).name(), "ibm-native");
}

TEST_F(MapperTest, PortfolioSizes)
{
    EXPECT_EQ(makeBaselineMapper().configCount(), 1u);
    EXPECT_GE(makeVqmMapper().configCount(), 3u);
    EXPECT_GT(makeVqaVqmMapper().configCount(),
              makeVqmMapper().configCount());
}

TEST_F(MapperTest, VqmAtLeastAsReliableAsBaseline)
{
    // The portfolio guarantee: VQM contains the baseline config,
    // so its compile-time PST can never be lower.
    const sim::NoiseModel model(graph, snap);
    for (const auto &w : workloads::standardSuite(graph)) {
        const double base = sim::analyticPst(
            makeBaselineMapper().map(w.circuit, graph, snap)
                .physical,
            model);
        const double vqm = sim::analyticPst(
            makeVqmMapper().map(w.circuit, graph, snap).physical,
            model);
        EXPECT_GE(vqm, base - 1e-12) << w.name;
    }
}

TEST_F(MapperTest, VqaVqmAtLeastAsReliableAsVqm)
{
    const sim::NoiseModel model(graph, snap);
    for (const auto &w : workloads::standardSuite(graph)) {
        const double vqm = sim::analyticPst(
            makeVqmMapper().map(w.circuit, graph, snap).physical,
            model);
        const double both = sim::analyticPst(
            makeVqaVqmMapper().map(w.circuit, graph, snap)
                .physical,
            model);
        EXPECT_GE(both, vqm - 1e-12) << w.name;
    }
}

TEST_F(MapperTest, UniformErrorsMakeVqmMatchBaseline)
{
    // Section 5.3: with no variation VQM selects the same number
    // of swaps as the baseline (its portfolio fallback).
    const auto uniform = test::uniformSnapshot(graph);
    const sim::NoiseModel model(graph, uniform);
    const auto bv = workloads::bernsteinVazirani(12);
    const double base = sim::analyticPst(
        makeBaselineMapper().map(bv, graph, uniform).physical,
        model);
    const double vqm = sim::analyticPst(
        makeVqmMapper().map(bv, graph, uniform).physical, model);
    // Identical or better (another uniform-cost config may find
    // marginally fewer swaps) — never worse.
    EXPECT_GE(vqm, base - 1e-12);
}

TEST_F(MapperTest, MappedMeasuresLandOnFinalPositions)
{
    const auto ghz = workloads::ghz(5);
    const MappedCircuit mapped =
        makeVqaVqmMapper().map(ghz, graph, snap);
    std::set<int> measured;
    for (const Gate &g : mapped.physical.gates()) {
        if (g.kind == GateKind::MEASURE)
            measured.insert(g.q0);
    }
    for (int q = 0; q < 5; ++q)
        EXPECT_TRUE(measured.count(mapped.final.phys(q)));
}

TEST_F(MapperTest, LogicalOutcomeTranslation)
{
    const auto ghz = workloads::ghz(4);
    const MappedCircuit mapped =
        makeBaselineMapper().map(ghz, graph, snap);
    // All-ones on the final physical positions reads back as
    // logical all-ones.
    std::uint64_t phys = 0;
    for (int q = 0; q < 4; ++q)
        phys |= 1ULL << mapped.final.phys(q);
    EXPECT_EQ(mapped.logicalOutcome(phys), 0b1111u);
    EXPECT_EQ(mapped.logicalOutcome(0), 0u);
}

TEST_F(MapperTest, PhysicalMeasureMaskMatchesMeasures)
{
    const auto bv = workloads::bernsteinVazirani(6);
    const MappedCircuit mapped =
        makeVqmMapper().map(bv, graph, snap);
    std::uint64_t expected = 0;
    for (const Gate &g : mapped.physical.gates()) {
        if (g.kind == GateKind::MEASURE)
            expected |= 1ULL << g.q0;
    }
    EXPECT_EQ(mapped.physicalMeasureMask(), expected);
}

TEST_F(MapperTest, TooWideProgramRejected)
{
    Circuit wide(21);
    wide.h(0);
    EXPECT_THROW(makeBaselineMapper().map(wide, graph, snap),
                 VaqError);
}

TEST_F(MapperTest, MapInRegionStaysInside)
{
    const std::vector<topology::PhysQubit> region{10, 11, 12, 15,
                                                  16, 17};
    const auto ghz = workloads::ghz(4);
    const MappedCircuit mapped =
        makeVqaVqmMapper().mapInRegion(ghz, graph, snap, region);
    const std::set<int> allowed(region.begin(), region.end());
    for (const Gate &g : mapped.physical.gates()) {
        if (g.kind == GateKind::BARRIER)
            continue;
        EXPECT_TRUE(allowed.count(g.q0)) << g.q0;
        if (g.isTwoQubit()) {
            EXPECT_TRUE(allowed.count(g.q1)) << g.q1;
        }
    }
    for (int q = 0; q < 4; ++q) {
        EXPECT_TRUE(allowed.count(mapped.initial.phys(q)));
        EXPECT_TRUE(allowed.count(mapped.final.phys(q)));
    }
}

TEST_F(MapperTest, MapInRegionExecutable)
{
    const std::vector<topology::PhysQubit> region{0, 1, 2, 5, 6,
                                                  7};
    const auto bv = workloads::bernsteinVazirani(5);
    const MappedCircuit mapped =
        makeBaselineMapper().mapInRegion(bv, graph, snap, region);
    const sim::NoiseModel model(graph, snap);
    EXPECT_NO_THROW(sim::checkExecutable(mapped.physical, model));
}

TEST_F(MapperTest, MapInRegionValidation)
{
    const auto ghz = workloads::ghz(4);
    EXPECT_THROW(makeBaselineMapper().mapInRegion(
                     ghz, graph, snap, {0, 1}),
                 VaqError); // too small
    EXPECT_THROW(makeBaselineMapper().mapInRegion(
                     ghz, graph, snap, {0, 1, 4, 9}),
                 VaqError); // disconnected region
}

TEST_F(MapperTest, RandomizedMapperVariesWithSeed)
{
    const auto ghz = workloads::ghz(5);
    const auto a =
        makeRandomizedMapper(1).map(ghz, graph, snap);
    const auto b =
        makeRandomizedMapper(2).map(ghz, graph, snap);
    EXPECT_NE(a.initial.progToPhys(), b.initial.progToPhys());
}

TEST_F(MapperTest, MapperConstructionValidation)
{
    EXPECT_THROW(Mapper("x", nullptr, CostKind::SwapCount),
                 VaqError);
    EXPECT_THROW(Mapper("x", std::vector<PolicyConfig>{}),
                 VaqError);
}

} // namespace
} // namespace vaq::core
