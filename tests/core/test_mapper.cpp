#include "core/mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/fault_sim.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::core
{
namespace
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

class MapperTest : public ::testing::Test
{
  protected:
    MapperTest()
        : graph(topology::ibmQ20Tokyo()), rng(17),
          snap(test::randomSnapshot(graph, rng))
    {}

    topology::CouplingGraph graph;
    Rng rng;
    calibration::Snapshot snap;
};

TEST_F(MapperTest, AllRegistryPoliciesProduceExecutableCircuits)
{
    const auto bv = workloads::bernsteinVazirani(10);
    for (const Mapper &mapper :
         {makeMapper({.name = "random", .seed = 3}),
          makeMapper({.name = "baseline"}),
          makeMapper({.name = "vqm"}),
          makeMapper({.name = "vqm", .mah = 4}),
          makeMapper({.name = "vqa"}),
          makeMapper({.name = "vqa+vqm"})}) {
        const MappedCircuit mapped =
            mapper.map(bv, graph, snap);
        const sim::NoiseModel model(graph, snap);
        EXPECT_NO_THROW(
            sim::checkExecutable(mapped.physical, model))
            << mapper.name();
        EXPECT_TRUE(mapped.initial.isComplete());
        EXPECT_TRUE(mapped.final.isComplete());
    }
}

TEST_F(MapperTest, PolicyNamesAreStable)
{
    EXPECT_EQ(makeMapper({.name = "baseline"}).name(), "baseline");
    EXPECT_EQ(makeMapper({.name = "vqm"}).name(), "vqm");
    EXPECT_EQ(makeMapper({.name = "vqm", .mah = 4}).name(),
              "vqm-mah4");
    EXPECT_EQ(makeMapper({.name = "vqa+vqm"}).name(), "vqa+vqm");
    EXPECT_EQ(makeMapper({.name = "random", .seed = 1}).name(),
              "ibm-native");
}

TEST_F(MapperTest, RegistryRejectsUnknownNames)
{
    try {
        makeMapper({.name = "no-such-policy"});
        FAIL() << "expected VaqError";
    } catch (const VaqError &error) {
        // The message must list every valid name so the vaqc
        // --policy error is self-explanatory.
        const std::string what = error.what();
        EXPECT_NE(what.find("no-such-policy"), std::string::npos);
        for (const std::string &name : policyNames())
            EXPECT_NE(what.find(name), std::string::npos) << name;
    }
}

TEST_F(MapperTest, PolicyNamesListsCanonicalPolicies)
{
    const std::vector<std::string> names = policyNames();
    EXPECT_EQ(names.size(), 5u);
    for (const char *expected :
         {"baseline", "random", "vqa", "vqa+vqm", "vqm"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
}

TEST_F(MapperTest, NativeAliasesResolveToRandom)
{
    EXPECT_EQ(makeMapper({.name = "ibm-native"}).name(),
              "ibm-native");
    EXPECT_EQ(makeMapper({.name = "native"}).name(), "ibm-native");
}

TEST_F(MapperTest, DeprecatedFactoriesMatchRegistry)
{
    // The legacy make*Mapper wrappers must stay source-compatible
    // and agree with their registry spellings.
    const auto ghz = workloads::ghz(5);
    const std::vector<std::pair<Mapper, Mapper>> pairs = []() {
        std::vector<std::pair<Mapper, Mapper>> p;
        p.emplace_back(makeRandomizedMapper(3),
                       makeMapper({.name = "random", .seed = 3}));
        p.emplace_back(makeBaselineMapper(),
                       makeMapper({.name = "baseline"}));
        p.emplace_back(makeVqmMapper(4),
                       makeMapper({.name = "vqm", .mah = 4}));
        p.emplace_back(makeVqaMapper(),
                       makeMapper({.name = "vqa"}));
        p.emplace_back(makeVqaVqmMapper(),
                       makeMapper({.name = "vqa+vqm"}));
        return p;
    }();
    for (const auto &[legacy, registry] : pairs) {
        EXPECT_EQ(legacy.name(), registry.name());
        EXPECT_EQ(legacy.configCount(), registry.configCount());
        const auto a = legacy.map(ghz, graph, snap);
        const auto b = registry.map(ghz, graph, snap);
        EXPECT_EQ(a.initial.progToPhys(), b.initial.progToPhys())
            << legacy.name();
        EXPECT_EQ(a.physical.gates().size(),
                  b.physical.gates().size())
            << legacy.name();
    }
}

TEST_F(MapperTest, PortfolioSizes)
{
    EXPECT_EQ(makeMapper({.name = "baseline"}).configCount(), 1u);
    EXPECT_GE(makeMapper({.name = "vqm"}).configCount(), 3u);
    EXPECT_GT(makeMapper({.name = "vqa+vqm"}).configCount(),
              makeMapper({.name = "vqm"}).configCount());
}

TEST_F(MapperTest, VqmAtLeastAsReliableAsBaseline)
{
    // The portfolio guarantee: VQM contains the baseline config,
    // so its compile-time PST can never be lower.
    const sim::NoiseModel model(graph, snap);
    for (const auto &w : workloads::standardSuite(graph)) {
        const double base = sim::analyticPst(
            makeMapper({.name = "baseline"})
                .map(w.circuit, graph, snap)
                .physical,
            model);
        const double vqm = sim::analyticPst(
            makeMapper({.name = "vqm"})
                .map(w.circuit, graph, snap)
                .physical,
            model);
        EXPECT_GE(vqm, base - 1e-12) << w.name;
    }
}

TEST_F(MapperTest, VqaVqmAtLeastAsReliableAsVqm)
{
    const sim::NoiseModel model(graph, snap);
    for (const auto &w : workloads::standardSuite(graph)) {
        const double vqm = sim::analyticPst(
            makeMapper({.name = "vqm"})
                .map(w.circuit, graph, snap)
                .physical,
            model);
        const double both = sim::analyticPst(
            makeMapper({.name = "vqa+vqm"})
                .map(w.circuit, graph, snap)
                .physical,
            model);
        EXPECT_GE(both, vqm - 1e-12) << w.name;
    }
}

TEST_F(MapperTest, UniformErrorsMakeVqmMatchBaseline)
{
    // Section 5.3: with no variation VQM selects the same number
    // of swaps as the baseline (its portfolio fallback).
    const auto uniform = test::uniformSnapshot(graph);
    const sim::NoiseModel model(graph, uniform);
    const auto bv = workloads::bernsteinVazirani(12);
    const double base = sim::analyticPst(
        makeMapper({.name = "baseline"})
            .map(bv, graph, uniform)
            .physical,
        model);
    const double vqm = sim::analyticPst(
        makeMapper({.name = "vqm"}).map(bv, graph, uniform).physical,
        model);
    // Identical or better (another uniform-cost config may find
    // marginally fewer swaps) — never worse.
    EXPECT_GE(vqm, base - 1e-12);
}

TEST_F(MapperTest, MappedMeasuresLandOnFinalPositions)
{
    const auto ghz = workloads::ghz(5);
    const MappedCircuit mapped =
        makeMapper({.name = "vqa+vqm"}).map(ghz, graph, snap);
    std::set<int> measured;
    for (const Gate &g : mapped.physical.gates()) {
        if (g.kind == GateKind::MEASURE)
            measured.insert(g.q0);
    }
    for (int q = 0; q < 5; ++q)
        EXPECT_TRUE(measured.count(mapped.final.phys(q)));
}

TEST_F(MapperTest, LogicalOutcomeTranslation)
{
    const auto ghz = workloads::ghz(4);
    const MappedCircuit mapped =
        makeMapper({.name = "baseline"}).map(ghz, graph, snap);
    // All-ones on the final physical positions reads back as
    // logical all-ones.
    std::uint64_t phys = 0;
    for (int q = 0; q < 4; ++q)
        phys |= 1ULL << mapped.final.phys(q);
    EXPECT_EQ(mapped.logicalOutcome(phys), 0b1111u);
    EXPECT_EQ(mapped.logicalOutcome(0), 0u);
}

TEST_F(MapperTest, PhysicalMeasureMaskMatchesMeasures)
{
    const auto bv = workloads::bernsteinVazirani(6);
    const MappedCircuit mapped =
        makeMapper({.name = "vqm"}).map(bv, graph, snap);
    std::uint64_t expected = 0;
    for (const Gate &g : mapped.physical.gates()) {
        if (g.kind == GateKind::MEASURE)
            expected |= 1ULL << g.q0;
    }
    EXPECT_EQ(mapped.physicalMeasureMask(), expected);
}

TEST_F(MapperTest, TooWideProgramRejected)
{
    Circuit wide(21);
    wide.h(0);
    EXPECT_THROW(
        makeMapper({.name = "baseline"}).map(wide, graph, snap),
        VaqError);
}

TEST_F(MapperTest, MapInRegionStaysInside)
{
    const std::vector<topology::PhysQubit> region{10, 11, 12, 15,
                                                  16, 17};
    const auto ghz = workloads::ghz(4);
    const MappedCircuit mapped =
        makeMapper({.name = "vqa+vqm"})
            .mapInRegion(ghz, graph, snap, region);
    const std::set<int> allowed(region.begin(), region.end());
    for (const Gate &g : mapped.physical.gates()) {
        if (g.kind == GateKind::BARRIER)
            continue;
        EXPECT_TRUE(allowed.count(g.q0)) << g.q0;
        if (g.isTwoQubit()) {
            EXPECT_TRUE(allowed.count(g.q1)) << g.q1;
        }
    }
    for (int q = 0; q < 4; ++q) {
        EXPECT_TRUE(allowed.count(mapped.initial.phys(q)));
        EXPECT_TRUE(allowed.count(mapped.final.phys(q)));
    }
}

TEST_F(MapperTest, MapInRegionExecutable)
{
    const std::vector<topology::PhysQubit> region{0, 1, 2, 5, 6,
                                                  7};
    const auto bv = workloads::bernsteinVazirani(5);
    const MappedCircuit mapped =
        makeMapper({.name = "baseline"})
            .mapInRegion(bv, graph, snap, region);
    const sim::NoiseModel model(graph, snap);
    EXPECT_NO_THROW(sim::checkExecutable(mapped.physical, model));
}

TEST_F(MapperTest, MapInRegionValidation)
{
    const auto ghz = workloads::ghz(4);
    EXPECT_THROW(makeMapper({.name = "baseline"})
                     .mapInRegion(ghz, graph, snap, {0, 1}),
                 VaqError); // too small
    EXPECT_THROW(makeMapper({.name = "baseline"})
                     .mapInRegion(ghz, graph, snap, {0, 1, 4, 9}),
                 VaqError); // disconnected region
}

TEST_F(MapperTest, RandomizedMapperVariesWithSeed)
{
    const auto ghz = workloads::ghz(5);
    const auto a = makeMapper({.name = "random", .seed = 1})
                       .map(ghz, graph, snap);
    const auto b = makeMapper({.name = "random", .seed = 2})
                       .map(ghz, graph, snap);
    EXPECT_NE(a.initial.progToPhys(), b.initial.progToPhys());
}

TEST_F(MapperTest, MapperConstructionValidation)
{
    EXPECT_THROW(Mapper("x", nullptr, CostKind::SwapCount),
                 VaqError);
    EXPECT_THROW(Mapper("x", std::vector<PolicyConfig>{}),
                 VaqError);
}

} // namespace
} // namespace vaq::core
