#include "core/router.hpp"

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::core
{
namespace
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

/** Every two-qubit gate of the routed circuit is executable. */
void
expectRouted(const Circuit &physical,
             const topology::CouplingGraph &graph)
{
    for (const Gate &g : physical.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_TRUE(graph.coupled(g.q0, g.q1))
                << g.q0 << "," << g.q1;
        }
    }
}

class RouterTest
    : public ::testing::TestWithParam<RouteStrategy>
{
  protected:
    RouterTest()
        : graph(topology::ibmQ20Tokyo()),
          snap(test::uniformSnapshot(graph))
    {}

    RouterOptions
    options() const
    {
        RouterOptions o;
        o.strategy = GetParam();
        return o;
    }

    topology::CouplingGraph graph;
    calibration::Snapshot snap;
};

TEST_P(RouterTest, RoutesRandomCircuits)
{
    const SwapCountCost cost(graph);
    const Router router(graph, cost, options());
    Rng rng(7);
    for (int trial = 0; trial < 5; ++trial) {
        const Circuit logical = test::randomCircuit(8, 60, rng);
        const auto result = router.route(
            logical, Layout::identity(8, graph.numQubits()));
        expectRouted(result.physical, graph);
    }
}

TEST_P(RouterTest, OneQubitGatesFollowTheirQubit)
{
    const SwapCountCost cost(graph);
    const Router router(graph, cost, options());
    Circuit logical(2);
    logical.cx(0, 1).h(0).measure(0);
    const auto result = router.route(
        logical, Layout::identity(2, graph.numQubits()));
    // The H and MEASURE must act wherever program qubit 0 ended.
    const auto &gates = result.physical.gates();
    const Gate &h = gates[gates.size() - 2];
    const Gate &m = gates[gates.size() - 1];
    EXPECT_EQ(h.kind, GateKind::H);
    EXPECT_EQ(h.q0, result.final.phys(0));
    EXPECT_EQ(m.kind, GateKind::MEASURE);
    EXPECT_EQ(m.q0, result.final.phys(0));
}

TEST_P(RouterTest, FinalLayoutTracksSwaps)
{
    const SwapCountCost cost(graph);
    const Router router(graph, cost, options());
    Rng rng(8);
    const Circuit logical = test::randomCircuit(6, 40, rng);
    const Layout initial =
        Layout::identity(6, graph.numQubits());
    const auto result = router.route(logical, initial);

    // Replay the physical SWAPs over the initial layout; the
    // result must equal the reported final layout.
    Layout replay = initial;
    for (const Gate &g : result.physical.gates()) {
        if (g.kind == GateKind::SWAP)
            replay.applySwap(g.q0, g.q1);
    }
    for (int q = 0; q < 6; ++q)
        EXPECT_EQ(replay.phys(q), result.final.phys(q));
}

TEST_P(RouterTest, SwapCountReported)
{
    const SwapCountCost cost(graph);
    const Router router(graph, cost, options());
    Rng rng(9);
    const Circuit logical = test::randomCircuit(6, 40, rng);
    const auto result = router.route(
        logical, Layout::identity(6, graph.numQubits()));
    EXPECT_EQ(result.insertedSwaps,
              result.physical.swapCount());
}

TEST_P(RouterTest, AdjacentProgramNeedsNoSwaps)
{
    const SwapCountCost cost(graph);
    const Router router(graph, cost, options());
    Circuit logical(2);
    logical.cx(0, 1).cx(0, 1).cx(1, 0);
    const auto result = router.route(
        logical, Layout::identity(2, graph.numQubits()));
    EXPECT_EQ(result.insertedSwaps, 0u);
}

TEST_P(RouterTest, PreservesGateCountsPlusSwaps)
{
    const SwapCountCost cost(graph);
    const Router router(graph, cost, options());
    Rng rng(10);
    const Circuit logical = test::randomCircuit(6, 50, rng);
    const auto result = router.route(
        logical, Layout::identity(6, graph.numQubits()));
    EXPECT_EQ(result.physical.instructionCount(),
              logical.instructionCount() + result.insertedSwaps);
}

TEST_P(RouterTest, RequiresCompleteLayout)
{
    const SwapCountCost cost(graph);
    const Router router(graph, cost, options());
    Circuit logical(3);
    logical.cx(0, 2);
    Layout incomplete(3, graph.numQubits());
    incomplete.assign(0, 0);
    EXPECT_THROW(router.route(logical, incomplete), VaqError);
}

TEST_P(RouterTest, LayoutShapeValidated)
{
    const SwapCountCost cost(graph);
    const Router router(graph, cost, options());
    Circuit logical(3);
    logical.cx(0, 2);
    EXPECT_THROW(
        router.route(logical, Layout::identity(4,
                                               graph.numQubits())),
        VaqError);
    EXPECT_THROW(router.route(logical, Layout::identity(3, 5)),
                 VaqError);
}

INSTANTIATE_TEST_SUITE_P(Strategies, RouterTest,
                         ::testing::Values(
                             RouteStrategy::PerGate,
                             RouteStrategy::LayerAstar),
                         [](const auto &info) {
                             return info.param ==
                                            RouteStrategy::PerGate
                                        ? "PerGate"
                                        : "LayerAstar";
                         });

TEST(Router, ReliabilityRoutingAvoidsWeakLinksOnBv)
{
    // All CNOTs target one ancilla; under reliability costs the
    // routed circuit must use cheaper links than under uniform
    // costs (measured with the reliability model itself).
    const auto q20 = topology::ibmQ20Tokyo();
    Rng rng(11);
    const auto snap = test::randomSnapshot(q20, rng, 0.01, 0.20);
    const auto logical = workloads::bernsteinVazirani(8);
    const Layout initial =
        Layout::identity(8, q20.numQubits());

    const SwapCountCost uniform(q20);
    const ReliabilityCost reliable(q20, snap);
    const auto base =
        Router(q20, uniform).route(logical, initial);
    const auto vqm =
        Router(q20, reliable).route(logical, initial);

    auto totalCost = [&](const Circuit &physical) {
        double c = 0.0;
        for (const Gate &g : physical.gates()) {
            if (g.kind == GateKind::SWAP)
                c += reliable.swapCost(g.q0, g.q1);
            else if (g.isTwoQubit())
                c += reliable.cnotCost(g.q0, g.q1);
        }
        return c;
    };
    // Per-gate decisions are locally optimal but not globally:
    // allow a small myopia margin (the Mapper portfolio removes
    // it at the policy level).
    EXPECT_LE(totalCost(vqm.physical),
              totalCost(base.physical) * 1.10);
}

TEST(Router, RelocationCanBeDisabled)
{
    const auto ring4 = topology::ring(4);
    auto snap = test::uniformSnapshot(ring4, 0.01);
    snap.setLinkError(ring4.linkIndex(0, 1), 0.4);
    const ReliabilityCost cost(ring4, snap);

    Circuit logical(2);
    logical.cx(0, 1);

    RouterOptions frozen;
    frozen.allowRelocation = false;
    const auto noMove = Router(ring4, cost, frozen)
                            .route(logical,
                                   Layout::identity(2, 4));
    EXPECT_EQ(noMove.insertedSwaps, 0u);

    const auto moved =
        Router(ring4, cost).route(logical,
                                  Layout::identity(2, 4));
    EXPECT_GT(moved.insertedSwaps, 0u);
}

} // namespace
} // namespace vaq::core
