#include "core/explain.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/mapper.hpp"
#include "sim/fault_sim.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::core
{
namespace
{

class ExplainTest : public ::testing::Test
{
  protected:
    ExplainTest()
        : graph(topology::ibmQ5Tenerife()), rng(71),
          snap(test::randomSnapshot(graph, rng)),
          mapped(makeMapper({.name = "vqa+vqm"}).map(
              workloads::bernsteinVazirani(4), graph, snap))
    {}

    topology::CouplingGraph graph;
    Rng rng;
    calibration::Snapshot snap;
    MappedCircuit mapped;
};

TEST_F(ExplainTest, BreakdownMultipliesToAnalyticPst)
{
    const PstBreakdown breakdown =
        pstBreakdown(mapped, graph, snap);
    const sim::NoiseModel model(graph, snap);
    EXPECT_NEAR(breakdown.total(),
                sim::analyticPst(mapped.physical, model), 1e-12);
}

TEST_F(ExplainTest, ComponentsAreProbabilities)
{
    const PstBreakdown breakdown =
        pstBreakdown(mapped, graph, snap);
    for (double p :
         {breakdown.twoQubit, breakdown.oneQubit,
          breakdown.readout, breakdown.coherence}) {
        EXPECT_GT(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
    // bv-4 has measures, 1q and 2q gates: all components < 1.
    EXPECT_LT(breakdown.twoQubit, 1.0);
    EXPECT_LT(breakdown.readout, 1.0);
    EXPECT_LT(breakdown.oneQubit, 1.0);
}

TEST_F(ExplainTest, ReportContainsKeySections)
{
    const std::string report =
        explainMapping(mapped, graph, snap);
    EXPECT_NE(report.find("mapping report"), std::string::npos);
    EXPECT_NE(report.find(mapped.policyName),
              std::string::npos);
    EXPECT_NE(report.find("program qubit"), std::string::npos);
    EXPECT_NE(report.find("CNOT-equivalents"),
              std::string::npos);
    EXPECT_NE(report.find("PST estimate"), std::string::npos);
    EXPECT_NE(report.find("inserted SWAPs"), std::string::npos);
}

TEST_F(ExplainTest, EveryProgramQubitListed)
{
    const std::string report =
        explainMapping(mapped, graph, snap);
    // Four program qubits: rows 0..3 exist.
    for (int q = 0; q < 4; ++q) {
        EXPECT_NE(report.find("\n" + std::to_string(q) + " "),
                  std::string::npos)
            << q;
    }
}

TEST_F(ExplainTest, EmptyTwoQubitUsageHandled)
{
    circuit::Circuit trivial(2);
    trivial.h(0).measure(0);
    const auto tiny =
        makeMapper({.name = "baseline"}).map(trivial, graph, snap);
    const std::string report = explainMapping(tiny, graph, snap);
    EXPECT_NE(report.find("PST estimate"), std::string::npos);
    const PstBreakdown breakdown =
        pstBreakdown(tiny, graph, snap);
    EXPECT_DOUBLE_EQ(breakdown.twoQubit, 1.0);
}

} // namespace
} // namespace vaq::core
