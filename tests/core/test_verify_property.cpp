/**
 * @file
 * Property test tying the batch compiler to the independent
 * verifier: every mapping the batch compiler emits must pass
 * verifyMapping, and dropping any single non-barrier gate from a
 * passing mapping must make it fail. The second half guards the
 * verifier itself — an accept-everything checker would pass the
 * first property trivially.
 */
#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "core/batch_compiler.hpp"
#include "core/mapper.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace
{

using namespace vaq;

/** Copy of `mapped` with the physical gate at `drop` removed. */
core::MappedCircuit
withoutGate(const core::MappedCircuit &mapped, std::size_t drop)
{
    core::MappedCircuit mutant = mapped;
    circuit::Circuit shorter(mapped.physical.numQubits());
    const auto &gates = mapped.physical.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (i != drop)
            shorter.append(gates[i]);
    }
    mutant.physical = shorter;
    return mutant;
}

TEST(VerifyProperty, BatchOutputsAllVerifyAndMutantsAllFail)
{
    const topology::CouplingGraph machine =
        topology::ibmQ5Tenerife();
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});
    Rng rng(83);

    std::vector<circuit::Circuit> circuits;
    for (int i = 0; i < 8; ++i)
        circuits.push_back(test::randomCircuit(4, 14, rng));
    std::vector<calibration::Snapshot> snapshots;
    for (int s = 0; s < 2; ++s)
        snapshots.push_back(test::randomSnapshot(machine, rng));

    core::BatchOptions options;
    options.compile.threads = 4;
    core::BatchCompiler compiler(mapper, machine, options);
    const std::vector<core::BatchResult> results =
        compiler.compileAll(circuits, snapshots);
    ASSERT_EQ(results.size(), circuits.size() * snapshots.size());

    for (const core::BatchResult &result : results) {
        const circuit::Circuit &logical =
            circuits[result.circuit];
        const auto report = core::verifyMapping(
            result.mapped, logical, machine);
        EXPECT_TRUE(report.ok())
            << "job (" << result.circuit << ", "
            << result.snapshot << "): " << report.failure;

        // Drop each gate in turn; every mutant must be rejected.
        // Barriers are scheduling hints the verifier ignores, so
        // removing one leaves a still-faithful circuit.
        const auto &gates = result.mapped.physical.gates();
        for (std::size_t drop = 0; drop < gates.size(); ++drop) {
            if (gates[drop].kind == circuit::GateKind::BARRIER)
                continue;
            const auto mutant = withoutGate(result.mapped, drop);
            EXPECT_FALSE(
                core::verifyMapping(mutant, logical, machine)
                    .ok())
                << "dropping gate " << drop << " of job ("
                << result.circuit << ", " << result.snapshot
                << ") went undetected";
        }
    }
}

} // namespace
