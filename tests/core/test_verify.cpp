#include "core/verify.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/mapper.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::core
{
namespace
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

class VerifyTest : public ::testing::Test
{
  protected:
    VerifyTest()
        : graph(topology::ibmQ5Tenerife()), rng(55),
          snap(test::randomSnapshot(graph, rng))
    {}

    topology::CouplingGraph graph;
    Rng rng;
    calibration::Snapshot snap;
};

TEST_F(VerifyTest, AcceptsEveryMapperOutput)
{
    const auto programs = {workloads::bernsteinVazirani(4),
                           workloads::ghz(5),
                           workloads::triSwap(),
                           workloads::grover(3, 5)};
    for (const Circuit &logical : programs) {
        for (const Mapper &mapper :
             {makeMapper({.name = "random", .seed = 9}), makeMapper({.name = "baseline"}),
              makeMapper({.name = "vqm"}), makeMapper({.name = "vqa+vqm"})}) {
            const auto mapped =
                mapper.map(logical, graph, snap);
            const auto report =
                verifyMapping(mapped, logical, graph);
            EXPECT_TRUE(report.ok())
                << mapper.name() << ": " << report.failure;
            EXPECT_TRUE(report.semanticsChecked);
            EXPECT_LT(report.distributionDistance, 1e-9);
        }
    }
}

TEST_F(VerifyTest, DetectsUnroutedGate)
{
    const auto ghz = workloads::ghz(3);
    MappedCircuit bad(3, 5);
    bad.initial = Layout::identity(3, 5);
    bad.final = bad.initial;
    bad.physical.h(0);
    bad.physical.cx(0, 3); // uncoupled on Tenerife
    const auto report = verifyMapping(bad, ghz, graph);
    EXPECT_FALSE(report.ok());
    EXPECT_FALSE(report.executable);
    EXPECT_NE(report.failure.find("uncoupled"),
              std::string::npos);
}

TEST_F(VerifyTest, DetectsDroppedGate)
{
    const auto ghz = workloads::ghz(3);
    const auto mapped =
        makeMapper({.name = "baseline"}).map(ghz, graph, snap);
    MappedCircuit truncated = mapped;
    // Rebuild the physical circuit without its last gate.
    Circuit shorter(mapped.physical.numQubits());
    const auto &gates = mapped.physical.gates();
    for (std::size_t i = 0; i + 1 < gates.size(); ++i)
        shorter.append(gates[i]);
    truncated.physical = shorter;
    const auto report = verifyMapping(truncated, ghz, graph);
    EXPECT_FALSE(report.ok());
    EXPECT_FALSE(report.gatesPreserved);
}

TEST_F(VerifyTest, DetectsWrongOperand)
{
    Circuit logical(2);
    logical.h(0).cx(0, 1);

    MappedCircuit bad(2, 5);
    bad.initial = Layout::identity(2, 5);
    bad.final = bad.initial;
    bad.physical.h(1); // wrong qubit: program qubit 0 is at 0
    bad.physical.cx(0, 1);
    const auto report = verifyMapping(bad, logical, graph);
    EXPECT_FALSE(report.ok());
    EXPECT_FALSE(report.gatesPreserved);
    EXPECT_FALSE(report.failure.empty());
}

TEST_F(VerifyTest, DetectsWrongFinalLayout)
{
    const auto ghz = workloads::ghz(3);
    MappedCircuit mapped =
        makeMapper({.name = "baseline"}).map(ghz, graph, snap);
    // Corrupt the recorded final layout.
    Layout wrong(3, 5);
    wrong.assign(0, 4);
    wrong.assign(1, 3);
    wrong.assign(2, 0);
    if (wrong.phys(0) == mapped.final.phys(0) &&
        wrong.phys(1) == mapped.final.phys(1)) {
        GTEST_SKIP() << "corruption coincided with truth";
    }
    mapped.final = wrong;
    const auto report = verifyMapping(mapped, ghz, graph);
    EXPECT_FALSE(report.ok());
}

TEST_F(VerifyTest, DetectsExtraGate)
{
    Circuit logical(2);
    logical.cx(0, 1);
    MappedCircuit bad(2, 5);
    bad.initial = Layout::identity(2, 5);
    bad.final = bad.initial;
    bad.physical.cx(0, 1);
    bad.physical.h(0); // not in the program
    const auto report = verifyMapping(bad, logical, graph);
    EXPECT_FALSE(report.ok());
    EXPECT_FALSE(report.gatesPreserved);
    EXPECT_FALSE(report.failure.empty());
}

TEST_F(VerifyTest, ProgramSwapsAreNotConfusedWithRouting)
{
    // TriSwap contains *program* SWAPs; the verifier must match
    // them against logical gates, not treat them as routing.
    const auto tri = workloads::triSwap();
    const auto mapped =
        makeMapper({.name = "vqa+vqm"}).map(tri, graph, snap);
    const auto report = verifyMapping(mapped, tri, graph);
    EXPECT_TRUE(report.ok()) << report.failure;
}

TEST_F(VerifyTest, WideMachineSkipsSemantics)
{
    const auto q20 = topology::ibmQ20Tokyo();
    Rng rng2(56);
    const auto snap20 = test::randomSnapshot(q20, rng2);
    const auto bv = workloads::bernsteinVazirani(10);
    const auto mapped =
        makeMapper({.name = "baseline"}).map(bv, q20, snap20);
    const auto report = verifyMapping(mapped, bv, q20, 16);
    EXPECT_TRUE(report.ok()) << report.failure;
    EXPECT_FALSE(report.semanticsChecked);

    const auto full = verifyMapping(mapped, bv, q20, 20);
    EXPECT_TRUE(full.semanticsChecked);
    EXPECT_TRUE(full.ok()) << full.failure;
}

} // namespace
} // namespace vaq::core
