/**
 * @file
 * Golden-file regression tests for the OpenQASM writer: each
 * checked-in input program is parsed, optionally passed through the
 * CNOT-orientation pass, emitted, and the emitted text must match
 * the committed `.golden.qasm` byte for byte. The emitted text must
 * also be a fixpoint of parse -> emit, so externally authored
 * programs stabilise after one round trip.
 *
 * Set VAQ_UPDATE_GOLDEN=1 to rewrite the golden files in the source
 * tree instead of comparing (then inspect the diff before
 * committing).
 */
#include "circuit/qasm.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/orient.hpp"
#include "common/error.hpp"
#include "topology/layouts.hpp"

namespace vaq::circuit
{
namespace
{

std::string
fixturePath(const std::string &name)
{
    return std::string(VAQ_TEST_DATA_DIR) + "/circuit/golden/" +
           name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    require(in.good(), "cannot open fixture: " + path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/**
 * Compare `emitted` against the golden file, or rewrite the golden
 * when VAQ_UPDATE_GOLDEN is set.
 */
void
expectMatchesGolden(const std::string &emitted,
                    const std::string &goldenName)
{
    const std::string path = fixturePath(goldenName);
    if (std::getenv("VAQ_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        require(out.good(), "cannot write golden: " + path);
        out << emitted;
        GTEST_SKIP() << "rewrote " << goldenName;
    }
    EXPECT_EQ(emitted, readFile(path)) << goldenName;
}

/** Emit -> parse -> emit must reproduce the same text. */
void
expectEmitFixpoint(const std::string &emitted)
{
    EXPECT_EQ(toQasm(fromQasm(emitted)), emitted);
}

TEST(QasmGolden, EmptyCircuitRoundTrips)
{
    const Circuit parsed =
        fromQasm(readFile(fixturePath("empty.qasm")));
    EXPECT_EQ(parsed.numQubits(), 3);
    EXPECT_EQ(parsed.size(), 0u);
    const std::string emitted = toQasm(parsed);
    expectMatchesGolden(emitted, "empty.golden.qasm");
    expectEmitFixpoint(emitted);
}

TEST(QasmGolden, SingleQubitProgramRoundTrips)
{
    const Circuit parsed =
        fromQasm(readFile(fixturePath("single_qubit.qasm")));
    EXPECT_EQ(parsed.numQubits(), 1);
    const std::string emitted = toQasm(parsed);
    expectMatchesGolden(emitted, "single_qubit.golden.qasm");
    expectEmitFixpoint(emitted);
}

TEST(QasmGolden, DirectedCxOrientationRoundTrips)
{
    // A routed Tenerife circuit with one native CX, one reversed
    // CX, and a SWAP; orientCnots rewrites it onto the published
    // 1->0, 2->0, 2->1, 3->2, 3->4, 4->2 directions.
    const topology::CouplingGraph graph =
        topology::ibmQ5Tenerife();
    const topology::CnotDirections directions =
        topology::ibmQ5TenerifeDirections(graph);
    const Circuit physical =
        fromQasm(readFile(fixturePath("directed_cx.qasm")));

    OrientStats stats;
    const Circuit oriented =
        orientCnots(physical, directions, &stats);
    EXPECT_GT(stats.reversedCnots, 0u);
    EXPECT_EQ(stats.loweredSwaps, 1u);
    for (const Gate &g : oriented.gates()) {
        if (g.kind == GateKind::CX)
            EXPECT_TRUE(directions.allowed(g.q0, g.q1));
    }

    const std::string emitted = toQasm(oriented);
    expectMatchesGolden(emitted, "directed_cx.golden.qasm");
    expectEmitFixpoint(emitted);
}

} // namespace
} // namespace vaq::circuit
