#include "circuit/gate.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vaq::circuit
{
namespace
{

TEST(Gate, OneQubitFactoryValidates)
{
    const Gate g = Gate::oneQubit(GateKind::H, 3);
    EXPECT_EQ(g.kind, GateKind::H);
    EXPECT_EQ(g.q0, 3);
    EXPECT_EQ(g.q1, kNoQubit);
    EXPECT_THROW(Gate::oneQubit(GateKind::H, -1), VaqError);
    EXPECT_THROW(Gate::oneQubit(GateKind::CX, 0),
                 VaqInternalError);
}

TEST(Gate, TwoQubitFactoryValidates)
{
    const Gate g = Gate::twoQubit(GateKind::CX, 1, 2);
    EXPECT_EQ(g.q0, 1);
    EXPECT_EQ(g.q1, 2);
    EXPECT_THROW(Gate::twoQubit(GateKind::CX, 1, 1), VaqError);
    EXPECT_THROW(Gate::twoQubit(GateKind::CX, -1, 2), VaqError);
    EXPECT_THROW(Gate::twoQubit(GateKind::H, 0, 1),
                 VaqInternalError);
}

TEST(Gate, MeasureAndBarrier)
{
    const Gate m = Gate::measure(4);
    EXPECT_EQ(m.kind, GateKind::MEASURE);
    EXPECT_EQ(m.q0, 4);
    EXPECT_FALSE(m.isUnitary());

    const Gate b = Gate::barrier();
    EXPECT_EQ(b.kind, GateKind::BARRIER);
    EXPECT_FALSE(b.isUnitary());
    EXPECT_THROW(Gate::measure(-2), VaqError);
}

TEST(Gate, Classification)
{
    EXPECT_TRUE(Gate::twoQubit(GateKind::SWAP, 0, 1).isTwoQubit());
    EXPECT_TRUE(Gate::twoQubit(GateKind::CZ, 0, 1).isTwoQubit());
    EXPECT_FALSE(Gate::oneQubit(GateKind::X, 0).isTwoQubit());
    EXPECT_TRUE(Gate::oneQubit(GateKind::RZ, 0, 1.5)
                    .isParameterized());
    EXPECT_FALSE(Gate::oneQubit(GateKind::H, 0).isParameterized());
    EXPECT_TRUE(Gate::oneQubit(GateKind::T, 0).isUnitary());
}

TEST(Gate, Touches)
{
    const Gate g = Gate::twoQubit(GateKind::CX, 2, 5);
    EXPECT_TRUE(g.touches(2));
    EXPECT_TRUE(g.touches(5));
    EXPECT_FALSE(g.touches(3));
}

TEST(Gate, NamesRoundTrip)
{
    for (GateKind kind :
         {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z,
          GateKind::H, GateKind::S, GateKind::Sdg, GateKind::T,
          GateKind::Tdg, GateKind::RX, GateKind::RY, GateKind::RZ,
          GateKind::CX, GateKind::CZ, GateKind::SWAP,
          GateKind::MEASURE, GateKind::BARRIER}) {
        EXPECT_EQ(gateKindFromName(gateName(kind)), kind);
    }
}

TEST(Gate, U1AliasesRz)
{
    EXPECT_EQ(gateKindFromName("u1"), GateKind::RZ);
}

TEST(Gate, UnknownNameThrows)
{
    EXPECT_THROW(gateKindFromName("ccx"), VaqError);
    EXPECT_THROW(gateKindFromName(""), VaqError);
}

TEST(Gate, Arity)
{
    EXPECT_EQ(gateArity(GateKind::CX), 2);
    EXPECT_EQ(gateArity(GateKind::SWAP), 2);
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::MEASURE), 1);
    EXPECT_EQ(gateArity(GateKind::BARRIER), 0);
}

TEST(Gate, Equality)
{
    EXPECT_EQ(Gate::oneQubit(GateKind::H, 1),
              Gate::oneQubit(GateKind::H, 1));
    EXPECT_NE(Gate::oneQubit(GateKind::H, 1),
              Gate::oneQubit(GateKind::H, 2));
    EXPECT_NE(Gate::oneQubit(GateKind::RZ, 1, 0.5),
              Gate::oneQubit(GateKind::RZ, 1, 0.6));
}

} // namespace
} // namespace vaq::circuit
