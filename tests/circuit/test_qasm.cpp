#include "circuit/qasm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "test_support.hpp"

namespace vaq::circuit
{
namespace
{

TEST(Qasm, EmitsHeaderAndRegisters)
{
    Circuit c(3);
    const std::string text = toQasm(c);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(text.find("creg c[3];"), std::string::npos);
}

TEST(Qasm, EmitsGateLines)
{
    Circuit c(2);
    c.h(0).cx(0, 1).measure(1);
    const std::string text = toQasm(c);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(text.find("measure q[1] -> c[1];"),
              std::string::npos);
}

TEST(Qasm, ParsesMinimalProgram)
{
    const Circuit c = fromQasm(
        "OPENQASM 2.0;\n"
        "include \"qelib1.inc\";\n"
        "qreg q[2];\n"
        "creg c[2];\n"
        "h q[0];\n"
        "cx q[0],q[1];\n"
        "measure q[0] -> c[0];\n");
    EXPECT_EQ(c.numQubits(), 2);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gates()[1].kind, GateKind::CX);
}

TEST(Qasm, ParsesCommentsAndBlankLines)
{
    const Circuit c = fromQasm(
        "qreg q[1];\n"
        "\n"
        "// a comment\n"
        "x q[0]; // trailing comment\n");
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gates()[0].kind, GateKind::X);
}

TEST(Qasm, ParsesAngles)
{
    const Circuit c = fromQasm(
        "qreg q[1];\n"
        "rz(0.5) q[0];\n"
        "rz(pi/2) q[0];\n"
        "rz(-pi/4) q[0];\n"
        "rz(3*pi/4) q[0];\n"
        "rz(pi) q[0];\n");
    EXPECT_DOUBLE_EQ(c.gates()[0].param, 0.5);
    EXPECT_DOUBLE_EQ(c.gates()[1].param, M_PI / 2.0);
    EXPECT_DOUBLE_EQ(c.gates()[2].param, -M_PI / 4.0);
    EXPECT_DOUBLE_EQ(c.gates()[3].param, 3.0 * M_PI / 4.0);
    EXPECT_DOUBLE_EQ(c.gates()[4].param, M_PI);
}

TEST(Qasm, ParsesBarrier)
{
    const Circuit c = fromQasm("qreg q[2];\nbarrier q;\n");
    EXPECT_EQ(c.gates()[0].kind, GateKind::BARRIER);
}

TEST(Qasm, RejectsMalformedPrograms)
{
    EXPECT_THROW(fromQasm(""), VaqError);
    EXPECT_THROW(fromQasm("x q[0];\n"), VaqError); // gate before qreg
    EXPECT_THROW(fromQasm("qreg q[2];\nh q[0]\n"), VaqError);
    EXPECT_THROW(fromQasm("qreg q[2];\nccx q[0],q[1];\n"),
                 VaqError);
    EXPECT_THROW(fromQasm("qreg q[2];\ncx q[0];\n"), VaqError);
    EXPECT_THROW(fromQasm("qreg q[2];\nqreg r[2];\n"), VaqError);
    EXPECT_THROW(fromQasm("qreg q[2];\nmeasure q[0];\n"),
                 VaqError);
}

TEST(Qasm, RoundTripPreservesStructure)
{
    Rng rng(55);
    Circuit original = test::randomCircuit(5, 60, rng);
    original.barrier();
    original.measureAll();
    const Circuit reparsed = fromQasm(toQasm(original));
    ASSERT_EQ(reparsed.size(), original.size());
    EXPECT_EQ(reparsed.numQubits(), original.numQubits());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(reparsed.gates()[i].kind,
                  original.gates()[i].kind);
        EXPECT_EQ(reparsed.gates()[i].q0, original.gates()[i].q0);
        EXPECT_EQ(reparsed.gates()[i].q1, original.gates()[i].q1);
        EXPECT_NEAR(reparsed.gates()[i].param,
                    original.gates()[i].param, 1e-9);
    }
}

TEST(Qasm, RoundTripPreservesSemantics)
{
    Rng rng(56);
    const Circuit original = test::randomCircuit(4, 40, rng);
    const Circuit reparsed = fromQasm(toQasm(original));
    const auto da = test::logicalDistribution(original);
    const auto db = test::logicalDistribution(reparsed);
    EXPECT_LT(test::distributionDistance(da, db), 1e-9);
}

} // namespace
} // namespace vaq::circuit
