#include "circuit/layering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "test_support.hpp"

namespace vaq::circuit
{
namespace
{

TEST(Layering, EmptyCircuit)
{
    Circuit c(2);
    EXPECT_TRUE(layerize(c).empty());
}

TEST(Layering, IndependentGatesShareLayer)
{
    Circuit c(4);
    c.h(0).h(1).cx(2, 3);
    const auto layers = layerize(c);
    ASSERT_EQ(layers.size(), 1u);
    EXPECT_EQ(layers[0].size(), 3u);
}

TEST(Layering, DependentGatesSerialize)
{
    Circuit c(3);
    c.cx(0, 1).cx(1, 2).cx(0, 1);
    const auto layers = layerize(c);
    ASSERT_EQ(layers.size(), 3u);
    EXPECT_EQ(layers[0], Layer{0});
    EXPECT_EQ(layers[1], Layer{1});
    EXPECT_EQ(layers[2], Layer{2});
}

TEST(Layering, BarrierForcesBoundary)
{
    Circuit c(2);
    c.h(0).barrier().h(1);
    const auto layers = layerize(c);
    // Without the barrier both H's would share layer 0.
    ASSERT_EQ(layers.size(), 2u);
    EXPECT_EQ(layers[0].size(), 1u);
    EXPECT_EQ(layers[1].size(), 1u);
}

TEST(Layering, BarriersProduceNoLayerEntries)
{
    Circuit c(2);
    c.barrier().barrier();
    EXPECT_TRUE(layerize(c).empty());
}

TEST(Layering, EveryGateAppearsExactlyOnce)
{
    Rng rng(77);
    const Circuit c = test::randomCircuit(6, 120, rng);
    const auto layers = layerize(c);
    std::set<std::size_t> seen;
    for (const Layer &layer : layers) {
        for (std::size_t idx : layer)
            EXPECT_TRUE(seen.insert(idx).second);
    }
    EXPECT_EQ(seen.size(), c.size());
}

TEST(Layering, GatesWithinLayerAreIndependent)
{
    Rng rng(78);
    const Circuit c = test::randomCircuit(6, 120, rng);
    const auto layers = layerize(c);
    for (const Layer &layer : layers) {
        std::set<Qubit> touched;
        for (std::size_t idx : layer) {
            const Gate &g = c.gates()[idx];
            EXPECT_TRUE(touched.insert(g.q0).second);
            if (g.isTwoQubit()) {
                EXPECT_TRUE(touched.insert(g.q1).second);
            }
        }
    }
}

TEST(Layering, LayersRespectProgramOrderPerQubit)
{
    Rng rng(79);
    const Circuit c = test::randomCircuit(5, 80, rng);
    const auto layers = layerize(c);
    // Layer index of each gate.
    std::vector<std::size_t> layerOf(c.size());
    for (std::size_t li = 0; li < layers.size(); ++li) {
        for (std::size_t idx : layers[li])
            layerOf[idx] = li;
    }
    // Two gates sharing a qubit must keep their program order.
    for (std::size_t i = 0; i < c.size(); ++i) {
        for (std::size_t j = i + 1; j < c.size(); ++j) {
            const Gate &a = c.gates()[i];
            const Gate &b = c.gates()[j];
            const bool shares =
                b.touches(a.q0) ||
                (a.isTwoQubit() && b.touches(a.q1));
            if (shares) {
                EXPECT_LT(layerOf[i], layerOf[j]);
            }
        }
    }
}

TEST(Layering, TwoQubitViewDropsOneQubitGates)
{
    Circuit c(4);
    c.h(0).cx(1, 2).h(3);
    const auto layers = layerizeTwoQubit(c);
    ASSERT_EQ(layers.size(), 1u);
    ASSERT_EQ(layers[0].size(), 1u);
    EXPECT_TRUE(c.gates()[layers[0][0]].isTwoQubit());
}

TEST(Layering, TwoQubitViewDropsEmptyLayers)
{
    Circuit c(2);
    c.h(0).h(0).cx(0, 1);
    const auto layers = layerizeTwoQubit(c);
    EXPECT_EQ(layers.size(), 1u);
}

TEST(Layering, DepthMatchesLayerCount)
{
    Rng rng(80);
    const Circuit c = test::randomCircuit(5, 60, rng);
    EXPECT_EQ(c.depth(), layerize(c).size());
}

} // namespace
} // namespace vaq::circuit
