#include "circuit/optimizer.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_support.hpp"

namespace vaq::circuit
{
namespace
{

TEST(Optimizer, EmptyCircuitUnchanged)
{
    const Circuit c(3);
    EXPECT_EQ(optimize(c).size(), 0u);
}

TEST(Optimizer, CancelsAdjacentSelfInversePairs)
{
    Circuit c(2);
    c.h(0).h(0).x(1).x(1).cx(0, 1).cx(0, 1);
    OptimizerStats stats;
    const Circuit out = optimize(c, &stats);
    EXPECT_EQ(out.size(), 0u);
    EXPECT_EQ(stats.cancelledPairs, 3u);
}

TEST(Optimizer, CancelsSymmetricTwoQubitEitherOrder)
{
    Circuit c(2);
    c.cz(0, 1).cz(1, 0).swap(0, 1).swap(1, 0);
    EXPECT_EQ(optimize(c).size(), 0u);
}

TEST(Optimizer, CnotOrientationMatters)
{
    Circuit c(2);
    c.cx(0, 1).cx(1, 0);
    EXPECT_EQ(optimize(c).size(), 2u);
}

TEST(Optimizer, InterveningGateBlocksCancellation)
{
    Circuit c(2);
    c.h(0).x(0).h(0);
    EXPECT_EQ(optimize(c).size(), 3u);

    Circuit c2(2);
    c2.cx(0, 1).h(1).cx(0, 1);
    EXPECT_EQ(optimize(c2).size(), 3u);
}

TEST(Optimizer, UnrelatedGateDoesNotBlock)
{
    Circuit c(3);
    c.h(0).x(2).h(0);
    const Circuit out = optimize(c);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gates()[0].kind, GateKind::X);
}

TEST(Optimizer, MeasureIsAFence)
{
    Circuit c(1);
    c.h(0).measure(0).h(0);
    EXPECT_EQ(optimize(c).size(), 3u);
}

TEST(Optimizer, BarrierIsAFence)
{
    Circuit c(1);
    c.h(0).barrier().h(0);
    EXPECT_EQ(optimize(c).instructionCount(), 2u);
}

TEST(Optimizer, SInversePairs)
{
    Circuit c(1);
    c.s(0).sdg(0).t(0).tdg(0).tdg(0).t(0);
    EXPECT_EQ(optimize(c).size(), 0u);
}

TEST(Optimizer, FusesRotations)
{
    Circuit c(1);
    c.rz(0, 0.5).rz(0, 0.25).rz(0, -0.5);
    OptimizerStats stats;
    const Circuit out = optimize(c, &stats);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out.gates()[0].param, 0.25, 1e-12);
    EXPECT_EQ(stats.fusedRotations, 2u);
}

TEST(Optimizer, FusedZeroRotationDisappears)
{
    Circuit c(1);
    c.rx(0, 1.0).rx(0, -1.0);
    EXPECT_EQ(optimize(c).size(), 0u);
}

TEST(Optimizer, DropsIdentitiesAndZeroRotations)
{
    Circuit c(2);
    c.i(0).rz(1, 0.0).h(0);
    OptimizerStats stats;
    const Circuit out = optimize(c, &stats);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(stats.droppedIdentities, 2u);
}

TEST(Optimizer, CascadingCancellation)
{
    // Removing the inner pair exposes the outer pair.
    Circuit c(1);
    c.h(0).x(0).x(0).h(0);
    EXPECT_EQ(optimize(c).size(), 0u);
}

TEST(Optimizer, SwapLoweringBoundaryCancellation)
{
    // swap(0,1) lowered to CX(0,1) CX(1,0) CX(0,1) followed by
    // CX(0,1): the trailing pair cancels.
    Circuit c(2);
    c.swap(0, 1).cx(0, 1);
    const Circuit out = optimize(c.withSwapsLowered());
    EXPECT_EQ(out.size(), 2u);
}

TEST(Optimizer, PreservesSemanticsOnRandomCircuits)
{
    Rng rng(321);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c = test::randomCircuit(4, 60, rng);
        // Salt with structures the optimizer acts on.
        c.h(0).h(0).rz(1, 0.7).rz(1, -0.2).i(2).cx(2, 3).cx(2, 3);
        const Circuit out = optimize(c);
        EXPECT_LE(out.size(), c.size());
        EXPECT_LT(test::distributionDistance(
                      test::logicalDistribution(c),
                      test::logicalDistribution(out)),
                  1e-9);
    }
}

TEST(Optimizer, IdempotentOnOptimizedOutput)
{
    Rng rng(322);
    const Circuit c = test::randomCircuit(4, 80, rng);
    const Circuit once = optimize(c);
    const Circuit twice = optimize(once);
    EXPECT_EQ(once, twice);
}

} // namespace
} // namespace vaq::circuit
