#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vaq::circuit
{
namespace
{

TEST(Circuit, ConstructionValidation)
{
    EXPECT_THROW(Circuit(0), VaqError);
    EXPECT_THROW(Circuit(-3), VaqError);
    EXPECT_EQ(Circuit(5).numQubits(), 5);
}

TEST(Circuit, BuilderChainsAndRecords)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2).measureAll();
    EXPECT_EQ(c.size(), 6u);
    EXPECT_EQ(c.gates()[0].kind, GateKind::H);
    EXPECT_EQ(c.gates()[1].kind, GateKind::CX);
    EXPECT_EQ(c.gates()[5].kind, GateKind::MEASURE);
}

TEST(Circuit, OperandBoundsChecked)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), VaqError);
    EXPECT_THROW(c.cx(0, 2), VaqError);
    EXPECT_THROW(c.measure(-1), VaqError);
}

TEST(Circuit, InstructionCountExcludesBarriers)
{
    Circuit c(2);
    c.h(0).barrier().cx(0, 1).barrier().measureAll();
    EXPECT_EQ(c.size(), 6u);
    EXPECT_EQ(c.instructionCount(), 4u);
}

TEST(Circuit, GateKindCounts)
{
    Circuit c(4);
    c.h(0).cx(0, 1).swap(1, 2).cz(2, 3).swap(0, 3).measure(0)
        .measure(1);
    EXPECT_EQ(c.twoQubitCount(), 4u);
    EXPECT_EQ(c.swapCount(), 2u);
    EXPECT_EQ(c.measureCount(), 2u);
}

TEST(Circuit, DepthOfSerialAndParallel)
{
    Circuit serial(2);
    serial.h(0).h(0).h(0);
    EXPECT_EQ(serial.depth(), 3u);

    Circuit parallel(3);
    parallel.h(0).h(1).h(2);
    EXPECT_EQ(parallel.depth(), 1u);
}

TEST(Circuit, ActiveQubits)
{
    Circuit c(6);
    c.h(1).cx(3, 4);
    const auto active = c.activeQubits();
    EXPECT_EQ(active, (std::vector<Qubit>{1, 3, 4}));
}

TEST(Circuit, AppendCircuit)
{
    Circuit a(2);
    a.h(0);
    Circuit b(2);
    b.cx(0, 1);
    a.append(b);
    EXPECT_EQ(a.size(), 2u);

    Circuit narrow(1);
    Circuit wide(3);
    EXPECT_THROW(narrow.append(wide), VaqError);
}

TEST(Circuit, RemappedPermutesOperands)
{
    Circuit c(2);
    c.h(0).cx(0, 1).measure(1);
    const Circuit r = c.remapped({3, 1}, 4);
    EXPECT_EQ(r.numQubits(), 4);
    EXPECT_EQ(r.gates()[0].q0, 3);
    EXPECT_EQ(r.gates()[1].q0, 3);
    EXPECT_EQ(r.gates()[1].q1, 1);
    EXPECT_EQ(r.gates()[2].q0, 1);
}

TEST(Circuit, RemappedValidatesPermutation)
{
    Circuit c(2);
    c.cx(0, 1);
    EXPECT_THROW(c.remapped({0, 0}, 2), VaqError);  // not injective
    EXPECT_THROW(c.remapped({0, 5}, 2), VaqError);  // out of range
    EXPECT_THROW(c.remapped({0}, 2), VaqError);     // too short
    EXPECT_THROW(c.remapped({0, 1}, 1), VaqError);  // narrower
}

TEST(Circuit, SwapLoweringUsesThreeCnots)
{
    Circuit c(2);
    c.swap(0, 1);
    const Circuit lowered = c.withSwapsLowered();
    ASSERT_EQ(lowered.size(), 3u);
    for (const Gate &g : lowered.gates())
        EXPECT_EQ(g.kind, GateKind::CX);
    EXPECT_EQ(lowered.gates()[0].q0, 0);
    EXPECT_EQ(lowered.gates()[1].q0, 1);
    EXPECT_EQ(lowered.gates()[2].q0, 0);
}

TEST(Circuit, SwapLoweringLeavesOthersAlone)
{
    Circuit c(3);
    c.h(0).swap(0, 1).cx(1, 2).measure(2);
    const Circuit lowered = c.withSwapsLowered();
    EXPECT_EQ(lowered.size(), 6u);
    EXPECT_EQ(lowered.swapCount(), 0u);
    EXPECT_EQ(lowered.measureCount(), 1u);
}

TEST(Circuit, MeasureAllTouchesEveryQubit)
{
    Circuit c(4);
    c.measureAll();
    EXPECT_EQ(c.measureCount(), 4u);
}

TEST(Circuit, EqualityIsStructural)
{
    Circuit a(2), b(2);
    a.h(0);
    b.h(0);
    EXPECT_EQ(a, b);
    b.h(1);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace vaq::circuit
