#include "circuit/lower.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_support.hpp"

namespace vaq::circuit
{
namespace
{

TEST(Lower, OutputIsNativeBasis)
{
    Rng rng(41);
    const Circuit c = test::randomCircuit(4, 80, rng);
    const Circuit lowered = toNativeBasis(c);
    EXPECT_TRUE(isNativeBasis(lowered));
    EXPECT_FALSE(isNativeBasis(c)); // random circuits carry H/T/CX
}

TEST(Lower, PreservesSemanticsOnRandomCircuits)
{
    Rng rng(42);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c = test::randomCircuit(4, 60, rng);
        c.cz(0, 1).swap(2, 3).s(0).sdg(1).y(2).z(3)
            .rx(0, 0.3).ry(1, -0.4).rz(2, 1.2).i(3);
        const Circuit lowered = toNativeBasis(c);
        EXPECT_LT(test::distributionDistance(
                      test::logicalDistribution(c),
                      test::logicalDistribution(lowered)),
                  1e-9)
            << "trial " << trial;
    }
}

TEST(Lower, StatsCountRewrites)
{
    Circuit c(3);
    c.h(0).t(1).cz(0, 1).swap(1, 2).x(2).measureAll();
    LowerStats stats;
    const Circuit lowered = toNativeBasis(c, &stats);
    EXPECT_EQ(stats.loweredOneQubit, 3u); // h, t, x
    EXPECT_EQ(stats.loweredCz, 1u);
    EXPECT_EQ(stats.loweredSwaps, 1u);
    EXPECT_TRUE(isNativeBasis(lowered));
    EXPECT_EQ(lowered.measureCount(), 3u);
}

TEST(Lower, IdentityGatesDropped)
{
    Circuit c(1);
    c.i(0).i(0).h(0);
    const Circuit lowered = toNativeBasis(c);
    EXPECT_EQ(lowered.size(), 1u);
}

TEST(Lower, MeasuresBarriersAndCxPassThrough)
{
    Circuit c(2);
    c.cx(0, 1).barrier().measure(0);
    const Circuit lowered = toNativeBasis(c);
    EXPECT_EQ(lowered, c);
}

TEST(Lower, IdempotentOnNativeCircuits)
{
    Rng rng(43);
    Circuit c = test::randomCircuit(3, 30, rng);
    const Circuit once = toNativeBasis(c);
    const Circuit twice = toNativeBasis(once);
    EXPECT_EQ(once, twice);
}

TEST(Lower, GateCountBounds)
{
    // Each SWAP costs 3 CX, each CZ costs CX + 2 U3; nothing else
    // grows.
    Circuit c(3);
    c.swap(0, 1).cz(1, 2);
    const Circuit lowered = toNativeBasis(c);
    EXPECT_EQ(lowered.twoQubitCount(), 4u); // 3 + 1
    EXPECT_EQ(lowered.size(), 6u);          // 4 CX + 2 U3
}

} // namespace
} // namespace vaq::circuit
