// A one-qubit program covering plain, parameterized, and measure
// statements (one statement per line, as the subset requires).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
h q[0];
t q[0];
rz(pi/4) q[0];
x q[0];
measure q[0] -> c[0];
