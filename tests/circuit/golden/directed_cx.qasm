// A routed IBM-Q5 Tenerife circuit before CNOT orientation:
// cx q[1],q[0] is native, cx q[0],q[1] is reversed, and the SWAP
// lowers to three CX of alternating direction.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
cx q[1],q[0];
cx q[0],q[1];
swap q[2],q[1];
barrier q;
measure q[0] -> c[0];
measure q[1] -> c[1];
