#include "circuit/orient.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::circuit
{
namespace
{

class OrientTest : public ::testing::Test
{
  protected:
    OrientTest()
        : graph(topology::ibmQ5Tenerife()),
          directions(topology::ibmQ5TenerifeDirections(graph))
    {}

    topology::CouplingGraph graph;
    topology::CnotDirections directions;
};

TEST_F(OrientTest, DirectionsMatchPublishedTenerife)
{
    EXPECT_TRUE(directions.allowed(1, 0));
    EXPECT_FALSE(directions.allowed(0, 1));
    EXPECT_TRUE(directions.allowed(3, 4));
    EXPECT_FALSE(directions.allowed(4, 3));
    EXPECT_EQ(directions.size(), 6u);
    // Uncoupled pairs are never allowed.
    EXPECT_FALSE(directions.allowed(0, 3));
}

TEST_F(OrientTest, DirectionsValidateCoverage)
{
    EXPECT_THROW(topology::CnotDirections(graph, {{1, 0}}),
                 VaqError); // missing links
    EXPECT_THROW(
        topology::CnotDirections(
            graph,
            {{1, 0}, {0, 1}, {2, 1}, {3, 2}, {3, 4}, {4, 2}}),
        VaqError); // 0-1 given twice
}

TEST_F(OrientTest, NativeCnotPassesThrough)
{
    Circuit c(5);
    c.cx(1, 0);
    OrientStats stats;
    const Circuit out = orientCnots(c, directions, &stats);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(stats.reversedCnots, 0u);
}

TEST_F(OrientTest, ReversedCnotGetsHConjugation)
{
    Circuit c(5);
    c.cx(0, 1); // only 1 -> 0 is native
    OrientStats stats;
    const Circuit out = orientCnots(c, directions, &stats);
    EXPECT_EQ(out.size(), 5u); // H H CX H H
    EXPECT_EQ(stats.reversedCnots, 1u);
    EXPECT_EQ(out.gates()[2].kind, GateKind::CX);
    EXPECT_EQ(out.gates()[2].q0, 1);
    EXPECT_EQ(out.gates()[2].q1, 0);
}

TEST_F(OrientTest, SwapLoweredAndOriented)
{
    Circuit c(5);
    c.swap(2, 3);
    OrientStats stats;
    const Circuit out = orientCnots(c, directions, &stats);
    EXPECT_EQ(stats.loweredSwaps, 1u);
    EXPECT_EQ(out.swapCount(), 0u);
    // Every emitted CX is native.
    for (const Gate &g : out.gates()) {
        if (g.kind == GateKind::CX) {
            EXPECT_TRUE(directions.allowed(g.q0, g.q1));
        }
    }
}

TEST_F(OrientTest, OtherGatesUntouched)
{
    Circuit c(5);
    c.h(0).rz(1, 0.3).cz(2, 3).measure(0);
    const Circuit out = orientCnots(c, directions);
    EXPECT_EQ(out.size(), 4u);
}

TEST_F(OrientTest, PreservesSemantics)
{
    Rng rng(17);
    for (int trial = 0; trial < 8; ++trial) {
        // Build a random circuit using only coupled pairs.
        Circuit c(5);
        for (int i = 0; i < 30; ++i) {
            if (rng.bernoulli(0.5)) {
                c.h(static_cast<Qubit>(rng.uniformInt(
                    std::uint64_t{5})));
            } else {
                const auto &link = graph.links()
                    [rng.uniformInt(graph.linkCount())];
                if (rng.bernoulli(0.3))
                    c.swap(link.a, link.b);
                else if (rng.bernoulli(0.5))
                    c.cx(link.a, link.b);
                else
                    c.cx(link.b, link.a);
            }
        }
        const Circuit out = orientCnots(c, directions);
        EXPECT_LT(test::distributionDistance(
                      test::logicalDistribution(c),
                      test::logicalDistribution(out)),
                  1e-9);
    }
}

TEST_F(OrientTest, UncoupledGateRejected)
{
    Circuit c(5);
    c.cx(0, 4);
    EXPECT_THROW(orientCnots(c, directions), VaqError);
}

} // namespace
} // namespace vaq::circuit
