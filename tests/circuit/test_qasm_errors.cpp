/**
 * @file
 * Regression corpus for QASM parse errors: every checked-in
 * malformed program must be rejected with a located
 * "source:line:column:" message (the CSV-loader convention) and,
 * when a source line is available, an excerpt with a caret under
 * the blamed token. Locking the locations down keeps editor and CI
 * integrations (which parse these prefixes) working.
 */
#include "circuit/qasm.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace vaq::circuit
{
namespace
{

std::string
fixture(const std::string &name)
{
    const std::string path = std::string(VAQ_TEST_DATA_DIR) +
                             "/circuit/malformed/" + name;
    std::ifstream in(path);
    require(in.good(), "cannot open fixture: " + path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/**
 * Parse the named corpus file and return the error message, which
 * must exist, carry the expected location prefix, and be a Usage
 * error.
 */
std::string
messageFor(const std::string &name, const std::string &location)
{
    try {
        parseQasm(fixture(name), name);
    } catch (const VaqError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Usage) << name;
        EXPECT_EQ(e.message().rfind(name + ":" + location + ":", 0),
                  0u)
            << name << " reported: " << e.message();
        return e.message();
    }
    ADD_FAILURE() << name << " parsed without an error";
    return "";
}

TEST(QasmErrors, MissingSemicolonPointsAtTheStatement)
{
    const std::string msg =
        messageFor("missing_semicolon.qasm", "3:1");
    EXPECT_NE(msg.find("missing ';' at end of statement"),
              std::string::npos);
    EXPECT_NE(msg.find("\n  h q[0]\n  ^"), std::string::npos);
}

TEST(QasmErrors, UnknownGateNamesTheGate)
{
    const std::string msg = messageFor("unknown_gate.qasm", "3:1");
    EXPECT_NE(msg.find("unknown gate 'frobnicate'"),
              std::string::npos);
    EXPECT_NE(msg.find("\n  frobnicate q[0];\n  ^"),
              std::string::npos);
}

TEST(QasmErrors, MalformedOperandPointsAtTheOperand)
{
    const std::string msg = messageFor("bad_operand.qasm", "3:3");
    EXPECT_NE(
        msg.find("malformed operand 'q0': expected q[<index>]"),
        std::string::npos);
    // Caret sits under the operand, two columns in.
    EXPECT_NE(msg.find("\n  h q0;\n    ^"), std::string::npos);
}

TEST(QasmErrors, GateBeforeQregIsLocated)
{
    const std::string msg =
        messageFor("gate_before_qreg.qasm", "2:1");
    EXPECT_NE(msg.find("gate before qreg"), std::string::npos);
}

TEST(QasmErrors, MalformedAnglePointsAtTheExpression)
{
    const std::string msg = messageFor("bad_angle.qasm", "3:4");
    EXPECT_NE(msg.find("malformed angle 'pi/zero'"),
              std::string::npos);
}

TEST(QasmErrors, MeasureWithoutArrowIsLocated)
{
    const std::string msg = messageFor("missing_arrow.qasm", "3:1");
    EXPECT_NE(
        msg.find("malformed measure: expected measure q[i] -> c[i]"),
        std::string::npos);
}

TEST(QasmErrors, TwoQubitGateArityIsChecked)
{
    const std::string msg =
        messageFor("two_qubit_arity.qasm", "3:1");
    EXPECT_NE(msg.find("two-qubit gate 'cx' needs two operands"),
              std::string::npos);
}

TEST(QasmErrors, OutOfRangeOperandGainsTheSourceLine)
{
    // Circuit::append's range error carries no location of its own;
    // the parser must re-raise it with the offending line.
    messageFor("out_of_range.qasm", "3:1");
}

TEST(QasmErrors, ProgramWithoutQregReportsLastLine)
{
    const std::string msg = messageFor("no_qreg.qasm", "2:1");
    EXPECT_NE(msg.find("program has no qreg"), std::string::npos);
}

TEST(QasmErrors, ParsedQasmRecordsOneLinePerGate)
{
    const std::string text = "OPENQASM 2.0;\n"
                             "include \"qelib1.inc\";\n"
                             "qreg q[2];\n"
                             "creg c[2];\n"
                             "\n"
                             "h q[0]; // comment\n"
                             "cx q[0],q[1];\n"
                             "\n"
                             "measure q[0] -> c[0];\n";
    const ParsedQasm parsed = parseQasm(text, "prog.qasm");
    ASSERT_EQ(parsed.circuit.size(), 3u);
    EXPECT_EQ(parsed.gateLines, (std::vector<int>{6, 7, 9}));
}

} // namespace
} // namespace vaq::circuit
