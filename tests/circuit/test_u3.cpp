/**
 * @file
 * Tests for the U3/U2 general one-qubit unitaries (IBM's native
 * basis of the paper's era).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/optimizer.hpp"
#include "circuit/qasm.hpp"
#include "core/mapper.hpp"
#include "core/verify.hpp"
#include "sim/statevector.hpp"
#include "topology/layouts.hpp"
#include "common/rng.hpp"
#include "common/error.hpp"
#include "test_support.hpp"

namespace vaq::circuit
{
namespace
{

/** Fidelity between states produced by two one-gate circuits. */
double
gateFidelity(const Gate &a, const Gate &b, bool preH = false)
{
    sim::StateVector sa(1), sb(1);
    if (preH) {
        sa.apply(Gate::oneQubit(GateKind::H, 0));
        sb.apply(Gate::oneQubit(GateKind::H, 0));
    }
    sa.apply(a);
    sb.apply(b);
    return sa.fidelity(sb);
}

TEST(U3, FactoryStoresAllAngles)
{
    const Gate g = Gate::u3(2, 0.1, 0.2, 0.3);
    EXPECT_EQ(g.kind, GateKind::U3);
    EXPECT_EQ(g.q0, 2);
    EXPECT_DOUBLE_EQ(g.param, 0.1);
    EXPECT_DOUBLE_EQ(g.param2, 0.2);
    EXPECT_DOUBLE_EQ(g.param3, 0.3);
    EXPECT_TRUE(g.isParameterized());
}

TEST(U3, PiZeroPiIsX)
{
    EXPECT_NEAR(gateFidelity(Gate::u3(0, M_PI, 0.0, M_PI),
                             Gate::oneQubit(GateKind::X, 0)),
                1.0, 1e-12);
}

TEST(U3, U2ZeroPiIsHadamard)
{
    Circuit c(1);
    c.u2(0, 0.0, M_PI);
    sim::StateVector viaU2(1), viaH(1);
    viaU2.applyUnitaries(c);
    viaH.apply(Gate::oneQubit(GateKind::H, 0));
    EXPECT_NEAR(viaU2.fidelity(viaH), 1.0, 1e-12);
}

TEST(U3, ZeroThetaIsPhaseOnly)
{
    // U3(0, 0, lambda) acts as a phase on |1>; on |+> it matches
    // RZ(lambda) up to global phase.
    EXPECT_NEAR(gateFidelity(Gate::u3(0, 0.0, 0.0, 0.7),
                             Gate::oneQubit(GateKind::RZ, 0, 0.7),
                             /*preH=*/true),
                1.0, 1e-12);
}

TEST(U3, ThetaOnlyMatchesRy)
{
    EXPECT_NEAR(gateFidelity(Gate::u3(0, 1.1, 0.0, 0.0),
                             Gate::oneQubit(GateKind::RY, 0, 1.1),
                             /*preH=*/true),
                1.0, 1e-12);
}

TEST(U3, QasmWriterEmitsThreeAngles)
{
    Circuit c(1);
    c.u3(0, 0.5, 0.25, -0.125);
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("u3(0.5"), std::string::npos);
    EXPECT_NE(qasm.find(",0.25"), std::string::npos);
    EXPECT_NE(qasm.find(",-0.125"), std::string::npos);
}

TEST(U3, QasmRoundTrip)
{
    Circuit c(2);
    c.u3(0, 0.5, 0.25, -0.125).u2(1, 0.3, 0.6).cx(0, 1);
    const Circuit reparsed = fromQasm(toQasm(c));
    ASSERT_EQ(reparsed.size(), 3u);
    const Gate &g = reparsed.gates()[0];
    EXPECT_EQ(g.kind, GateKind::U3);
    EXPECT_NEAR(g.param, 0.5, 1e-9);
    EXPECT_NEAR(g.param2, 0.25, 1e-9);
    EXPECT_NEAR(g.param3, -0.125, 1e-9);
    // Semantics preserved too.
    EXPECT_LT(test::distributionDistance(
                  test::logicalDistribution(c),
                  test::logicalDistribution(reparsed)),
              1e-9);
}

TEST(U3, QasmParsesU2AsU3)
{
    const Circuit c = fromQasm(
        "qreg q[1];\nu2(0,pi) q[0];\n");
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gates()[0].kind, GateKind::U3);
    EXPECT_NEAR(c.gates()[0].param, M_PI / 2.0, 1e-12);
}

TEST(U3, QasmRejectsWrongAngleCount)
{
    EXPECT_THROW(fromQasm("qreg q[1];\nu3(0.5) q[0];\n"),
                 VaqError);
    EXPECT_THROW(fromQasm("qreg q[1];\nu2(0.5,0.1,0.2) q[0];\n"),
                 VaqError);
}

TEST(U3, OptimizerDropsIdentityU3)
{
    Circuit c(1);
    c.u3(0, 0.0, 0.0, 0.0).h(0);
    const Circuit out = optimize(c);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gates()[0].kind, GateKind::H);
}

TEST(U3, OptimizerDoesNotFuseU3)
{
    // U3 angles do not add; fusing them would corrupt semantics.
    Circuit c(1);
    c.u3(0, 0.5, 0.2, 0.1).u3(0, 0.5, 0.2, 0.1);
    EXPECT_EQ(optimize(c).size(), 2u);
}

TEST(U3, NonZeroPhaseOnlyU3IsKept)
{
    Circuit c(1);
    c.u3(0, 0.0, 0.0, 0.7);
    EXPECT_EQ(optimize(c).size(), 1u);
}

TEST(U3, MapperRoutesU3Programs)
{
    const auto q5 = topology::ibmQ5Tenerife();
    Rng rng(31);
    const auto snap = test::randomSnapshot(q5, rng);
    Circuit logical(3);
    logical.u3(0, 1.0, 0.5, 0.25).cx(0, 2).u2(2, 0.1, 0.2)
        .cx(1, 2).measureAll();
    const auto mapped =
        core::makeMapper({.name = "vqa+vqm"}).map(logical, q5, snap);
    const auto report =
        core::verifyMapping(mapped, logical, q5);
    EXPECT_TRUE(report.ok()) << report.failure;
}

} // namespace
} // namespace vaq::circuit
