OPENQASM 2.0;
qreg q[2];
x q[7];
