OPENQASM 2.0;
qreg q[1];
measure q[0];
