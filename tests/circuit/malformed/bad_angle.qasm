OPENQASM 2.0;
qreg q[1];
rz(pi/zero) q[0];
