#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/linter.hpp"
#include "analysis/rule.hpp"
#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "topology/layouts.hpp"

namespace vaq::analysis
{
namespace
{

using circuit::Circuit;

/** Run exactly one rule over an input. */
LintReport
runRule(const std::string &id, const LintInput &input)
{
    LintOptions options;
    options.enabledOnly = {id};
    return Linter(options).run(input);
}

LintInput
logicalInput(const Circuit &circuit)
{
    LintInput input;
    input.circuit = &circuit;
    return input;
}

/** Count diagnostics carrying the given rule id. */
std::size_t
countOf(const LintReport &report, const std::string &id)
{
    std::size_t n = 0;
    for (const Diagnostic &d : report.diagnostics)
        n += d.ruleId == id ? 1 : 0;
    return n;
}

// --- VL001 measure-uninitialized -----------------------------------

TEST(Rules, MeasureUninitializedFires)
{
    Circuit c(2);
    c.h(0).measure(0).measure(1);
    const LintReport report = runRule("VL001", logicalInput(c));
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].ruleId, "VL001");
    EXPECT_EQ(report.diagnostics[0].qubit, 1);
    EXPECT_EQ(report.diagnostics[0].gateIndex, 2);
}

TEST(Rules, MeasureUninitializedSilentOnCleanCircuit)
{
    Circuit c(2);
    c.h(0).h(1).measureAll();
    const LintReport report = runRule("VL001", logicalInput(c));
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- VL002 measure-then-reuse --------------------------------------

TEST(Rules, MeasureThenReuseFires)
{
    Circuit c(1);
    c.h(0).measure(0).x(0);
    const LintReport report = runRule("VL002", logicalInput(c));
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].gateIndex, 2);
    EXPECT_EQ(report.diagnostics[0].severity, Severity::Warning);
}

TEST(Rules, MeasureThenReuseSilentWhenMeasureIsLast)
{
    Circuit c(1);
    c.h(0).x(0).measure(0);
    const LintReport report = runRule("VL002", logicalInput(c));
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- VL003 dead-gate -----------------------------------------------

TEST(Rules, DeadGateFires)
{
    Circuit c(2);
    c.h(0).x(1).measure(0);
    const LintReport report = runRule("VL003", logicalInput(c));
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].gateIndex, 1);
    EXPECT_EQ(report.diagnostics[0].qubit, 1);
}

TEST(Rules, DeadGateSilentWithoutMeasurements)
{
    // Building-block circuits measure nothing; everything would be
    // "dead", so the rule stays quiet.
    Circuit c(2);
    c.h(0).cx(0, 1);
    const LintReport report = runRule("VL003", logicalInput(c));
    EXPECT_TRUE(report.diagnostics.empty());
}

TEST(Rules, DeadGateSilentOnFullyMeasuredCircuit)
{
    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    const LintReport report = runRule("VL003", logicalInput(c));
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- VL004 double-measure ------------------------------------------

TEST(Rules, DoubleMeasureFires)
{
    Circuit c(1);
    c.h(0).measure(0).measure(0);
    const LintReport report = runRule("VL004", logicalInput(c));
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].severity, Severity::Error);
    EXPECT_EQ(report.diagnostics[0].gateIndex, 2);
}

TEST(Rules, DoubleMeasureSilentOnSingleMeasures)
{
    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    const LintReport report = runRule("VL004", logicalInput(c));
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- VL005 uncoupled-cx --------------------------------------------

TEST(Rules, UncoupledCxFiresOnPhysicalCircuit)
{
    const topology::CouplingGraph graph = topology::linear(3);
    Circuit c(3);
    c.cx(0, 2).measureAll();
    LintInput input = logicalInput(c);
    input.physical = true;
    input.graph = &graph;
    const LintReport report = runRule("VL005", input);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].severity, Severity::Error);
    EXPECT_EQ(report.diagnostics[0].qubit, 0);
    EXPECT_EQ(report.diagnostics[0].qubit2, 2);
}

TEST(Rules, UncoupledCxSilentOnLogicalCircuit)
{
    // Logical operands are not machine indices; the rule only
    // applies post-mapping.
    const topology::CouplingGraph graph = topology::linear(3);
    Circuit c(3);
    c.cx(0, 2).measureAll();
    LintInput input = logicalInput(c);
    input.graph = &graph;
    const LintReport report = runRule("VL005", input);
    EXPECT_TRUE(report.diagnostics.empty());
}

TEST(Rules, UncoupledCxSilentOnCoupledPairs)
{
    const topology::CouplingGraph graph = topology::linear(3);
    Circuit c(3);
    c.cx(0, 1).cx(1, 2).measureAll();
    LintInput input = logicalInput(c);
    input.physical = true;
    input.graph = &graph;
    const LintReport report = runRule("VL005", input);
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- VL006 redundant-swap ------------------------------------------

TEST(Rules, RedundantSwapFiresOnUntouchedExchange)
{
    Circuit c(2);
    c.swap(0, 1).measureAll();
    const LintReport report = runRule("VL006", logicalInput(c));
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].gateIndex, 0);
}

TEST(Rules, RedundantSwapFiresOnCancellingPair)
{
    Circuit c(2);
    c.h(0).h(1).swap(0, 1).swap(0, 1).measureAll();
    const LintReport report = runRule("VL006", logicalInput(c));
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].gateIndex, 3);
}

TEST(Rules, RedundantSwapSilentOnMeaningfulSwap)
{
    Circuit c(2);
    c.h(0).swap(0, 1).measure(1);
    const LintReport report = runRule("VL006", logicalInput(c));
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- VL007 quarantined-qubit ---------------------------------------

TEST(Rules, QuarantinedQubitFiresOnDeadCalibration)
{
    const topology::CouplingGraph graph = topology::linear(3);
    calibration::Snapshot snapshot(graph);
    snapshot.qubit(1).error1q = 0.99; // above the 0.95 threshold
    Circuit c(3);
    c.h(1).cx(1, 2).measure(2);
    LintInput input = logicalInput(c);
    input.physical = true;
    input.graph = &graph;
    input.snapshot = &snapshot;
    const LintReport report = runRule("VL007", input);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].qubit, 1);
}

TEST(Rules, QuarantinedQubitFiresOnDeadLink)
{
    const topology::CouplingGraph graph = topology::linear(3);
    calibration::Snapshot snapshot(graph);
    snapshot.setLinkError(0, 0.97);
    Circuit c(3);
    c.cx(0, 1).measureAll();
    LintInput input = logicalInput(c);
    input.physical = true;
    input.graph = &graph;
    input.snapshot = &snapshot;
    const LintReport report = runRule("VL007", input);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].qubit, 0);
    EXPECT_EQ(report.diagnostics[0].qubit2, 1);
}

TEST(Rules, QuarantinedQubitSilentOnHealthyMachine)
{
    const topology::CouplingGraph graph = topology::linear(3);
    calibration::Snapshot snapshot(graph);
    for (std::size_t l = 0; l < graph.linkCount(); ++l)
        snapshot.setLinkError(l, 0.02);
    Circuit c(3);
    c.h(0).cx(0, 1).measureAll();
    LintInput input = logicalInput(c);
    input.physical = true;
    input.graph = &graph;
    input.snapshot = &snapshot;
    const LintReport report = runRule("VL007", input);
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- VL008 reliability-budget --------------------------------------

TEST(Rules, ReliabilityBudgetFiresOnLossyLinks)
{
    const topology::CouplingGraph graph = topology::linear(3);
    calibration::Snapshot snapshot(graph);
    for (std::size_t l = 0; l < graph.linkCount(); ++l)
        snapshot.setLinkError(l, 0.6);
    Circuit c(3);
    c.cx(0, 1).cx(1, 2).cx(0, 1).measureAll();
    LintInput input = logicalInput(c);
    input.physical = true;
    input.graph = &graph;
    input.snapshot = &snapshot;
    const LintReport report = runRule("VL008", input);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    // Whole-circuit finding: not anchored to one gate.
    EXPECT_EQ(report.diagnostics[0].gateIndex, -1);
}

TEST(Rules, ReliabilityBudgetSilentOnHealthyMachine)
{
    const topology::CouplingGraph graph = topology::linear(3);
    calibration::Snapshot snapshot(graph);
    for (std::size_t l = 0; l < graph.linkCount(); ++l)
        snapshot.setLinkError(l, 0.02);
    Circuit c(3);
    c.cx(0, 1).cx(1, 2).measureAll();
    LintInput input = logicalInput(c);
    input.physical = true;
    input.graph = &graph;
    input.snapshot = &snapshot;
    const LintReport report = runRule("VL008", input);
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- VL009 idle-qubit-exceeds-window -------------------------------

TEST(Rules, IdleWindowFiresOnShortCoherence)
{
    const topology::CouplingGraph graph = topology::linear(2);
    calibration::Snapshot snapshot(graph);
    snapshot.qubit(1).t1Us = 1.0; // budget: 10% of 1 us = 100 ns
    snapshot.qubit(1).t2Us = 1.0;
    Circuit c(2);
    // q1 idles 120 ns between its h and the cx.
    c.h(1).h(0).h(0).h(0).cx(0, 1).measureAll();
    LintInput input = logicalInput(c);
    input.physical = true;
    input.graph = &graph;
    input.snapshot = &snapshot;
    const LintReport report = runRule("VL009", input);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].qubit, 1);
}

TEST(Rules, IdleWindowSilentWithinBudget)
{
    const topology::CouplingGraph graph = topology::linear(2);
    calibration::Snapshot snapshot(graph); // 42 us coherence
    Circuit c(2);
    c.h(1).h(0).h(0).h(0).cx(0, 1).measureAll();
    LintInput input = logicalInput(c);
    input.physical = true;
    input.graph = &graph;
    input.snapshot = &snapshot;
    const LintReport report = runRule("VL009", input);
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- VL010 width-exceeds-machine -----------------------------------

TEST(Rules, WidthExceedsMachineFires)
{
    const topology::CouplingGraph graph = topology::linear(3);
    Circuit c(5);
    c.h(0).measureAll();
    LintInput input = logicalInput(c);
    input.graph = &graph;
    const LintReport report = runRule("VL010", input);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].severity, Severity::Error);
    EXPECT_EQ(report.diagnostics[0].category,
              RuleCategory::Usage);
}

TEST(Rules, WidthExceedsMachineSilentWhenItFits)
{
    const topology::CouplingGraph graph = topology::linear(3);
    Circuit c(3);
    c.h(0).measureAll();
    LintInput input = logicalInput(c);
    input.graph = &graph;
    const LintReport report = runRule("VL010", input);
    EXPECT_TRUE(report.diagnostics.empty());
}

// --- Registry ------------------------------------------------------

TEST(Rules, RegistryShipsThirteenRules)
{
    const std::vector<std::string> ids =
        RuleRegistry::global().ids();
    ASSERT_EQ(ids.size(), 13u);
    EXPECT_EQ(ids.front(), "VL001");
    EXPECT_EQ(ids.back(), "VL013");
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(Rules, RegistryKnowsIdsAndNames)
{
    const RuleRegistry &registry = RuleRegistry::global();
    EXPECT_TRUE(registry.known("VL005"));
    EXPECT_TRUE(registry.known("uncoupled-cx"));
    EXPECT_FALSE(registry.known("VL999"));
}

TEST(Rules, RegistryRejectsDuplicateIds)
{
    RuleRegistry registry;
    registerBuiltinRules(registry);
    EXPECT_THROW(registerBuiltinRules(registry), VaqError);
}

TEST(Rules, MachineRulesSkipSilentlyWithoutMachineFacts)
{
    // One rule set serves logical circuits: with no graph/snapshot
    // the machine-dependent rules emit nothing rather than throw.
    Circuit c(2);
    c.cx(0, 1).measureAll();
    LintOptions options;
    const LintReport report =
        Linter(options).run(logicalInput(c));
    EXPECT_EQ(countOf(report, "VL005"), 0u);
    EXPECT_EQ(countOf(report, "VL007"), 0u);
    EXPECT_EQ(countOf(report, "VL008"), 0u);
    EXPECT_EQ(countOf(report, "VL009"), 0u);
    EXPECT_EQ(countOf(report, "VL010"), 0u);
}

} // namespace
} // namespace vaq::analysis
