/**
 * @file
 * Soundness of the certified staleness bound: over a full synthetic
 * 52-day calibration series (104 cycles, the paper's study window),
 * for every (circuit, epoch-pair), the empirical |delta logPST| —
 * closed form AND the pipeline's product form — never exceeds the
 * certified bound, and the exact analytic shift reproduces the new
 * closed form to rounding. Plus the certificate edge cases: zero
 * drift and T2-only drift certify at bound exactly 0, duration
 * changes and out-of-domain parameters void the certificate.
 */
#include "analysis/staleness.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/sensitivity.hpp"
#include "calibration/synthetic.hpp"
#include "circuit/circuit.hpp"
#include "core/mapper.hpp"
#include "sim/fault_sim.hpp"
#include "sim/noise_model.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::analysis
{
namespace
{

SensitivityProfile
profileOf(const circuit::Circuit &physical,
          const topology::CouplingGraph &graph,
          const calibration::Snapshot &snapshot)
{
    const DataflowAnalysis df(physical, snapshot.durations);
    return analyzeSensitivity(df, graph, snapshot);
}

TEST(Staleness, ZeroDriftHasBoundExactlyZero)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const calibration::Snapshot snap =
        vaq::test::uniformSnapshot(q5);
    circuit::Circuit c(5);
    c.h(0).cx(0, 1).measureAll();
    const SensitivityProfile profile = profileOf(c, q5, snap);

    const StalenessAssessment assess = assessStaleness(profile, snap);
    EXPECT_TRUE(assess.certifiable);
    EXPECT_FALSE(assess.anyDelta);
    EXPECT_EQ(assess.bound(), 0.0); // exactly: touched-set parity
    EXPECT_EQ(assess.deltaLogPst, 0.0);
    EXPECT_TRUE(assess.within(0.0));
}

TEST(Staleness, T2OnlyDriftCertifiesAtZero)
{
    // The PerOp coherence model charges T1 only, so a cycle that
    // re-measures every T2 is provably harmless — the first strict
    // win over the touched-set rule, which misses on any change.
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    calibration::Snapshot snap = vaq::test::uniformSnapshot(q5);
    circuit::Circuit c(5);
    c.h(0).cx(0, 1).cx(1, 2).measureAll();
    const SensitivityProfile profile = profileOf(c, q5, snap);

    for (int q = 0; q < 5; ++q)
        snap.qubit(q).t2Us *= 0.5;
    const StalenessAssessment assess = assessStaleness(profile, snap);
    EXPECT_TRUE(assess.certifiable);
    EXPECT_FALSE(assess.anyDelta);
    EXPECT_EQ(assess.bound(), 0.0);
}

TEST(Staleness, UntouchedParameterDriftCertifiesAtZero)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    calibration::Snapshot snap = vaq::test::uniformSnapshot(q5);
    circuit::Circuit c(5);
    c.h(0).cx(0, 1).measure(0).measure(1); // qubits 2-4 idle
    const SensitivityProfile profile = profileOf(c, q5, snap);

    snap.qubit(4).error1q = 0.03;
    snap.qubit(4).readoutError = 0.1;
    snap.setLinkError(q5.linkIndex(3, 4), 0.2);
    const StalenessAssessment assess = assessStaleness(profile, snap);
    EXPECT_TRUE(assess.certifiable);
    EXPECT_FALSE(assess.anyDelta);
    EXPECT_EQ(assess.bound(), 0.0);
}

TEST(Staleness, DurationChangeVoidsTheCertificate)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    calibration::Snapshot snap = vaq::test::uniformSnapshot(q5);
    circuit::Circuit c(5);
    c.h(0).measure(0);
    const SensitivityProfile profile = profileOf(c, q5, snap);

    snap.durations.twoQubitNs += 1.0;
    const StalenessAssessment assess = assessStaleness(profile, snap);
    EXPECT_FALSE(assess.certifiable);
    EXPECT_TRUE(std::isinf(assess.bound()));
    EXPECT_FALSE(assess.within(1e9));
}

TEST(Staleness, OutOfDomainParametersVoidTheCertificate)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    circuit::Circuit c(5);
    c.h(0).cx(0, 1).measure(0);

    {
        calibration::Snapshot snap = vaq::test::uniformSnapshot(q5);
        const SensitivityProfile profile = profileOf(c, q5, snap);
        snap.qubit(0).error1q = 1.0; // log1p(-1) = -inf
        EXPECT_FALSE(assessStaleness(profile, snap).certifiable);
    }
    {
        calibration::Snapshot snap = vaq::test::uniformSnapshot(q5);
        const SensitivityProfile profile = profileOf(c, q5, snap);
        snap.qubit(0).t1Us = 0.0;
        EXPECT_FALSE(assessStaleness(profile, snap).certifiable);
    }
    {
        calibration::Snapshot snap = vaq::test::uniformSnapshot(q5);
        const SensitivityProfile profile = profileOf(c, q5, snap);
        snap.qubit(0).readoutError =
            std::numeric_limits<double>::quiet_NaN();
        EXPECT_FALSE(assessStaleness(profile, snap).certifiable);
    }
    {
        // A parameter with zero weight is not a dependency: qubit 1
        // is never measured, so its readout error may go anywhere
        // without voiding the certificate.
        calibration::Snapshot snap = vaq::test::uniformSnapshot(q5);
        const SensitivityProfile profile = profileOf(c, q5, snap);
        snap.qubit(1).readoutError =
            std::numeric_limits<double>::quiet_NaN();
        EXPECT_TRUE(assessStaleness(profile, snap).certifiable);
    }
}

TEST(Staleness, BoundDominatesFirstOrderEstimate)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    calibration::Snapshot snap = vaq::test::uniformSnapshot(q5);
    circuit::Circuit c(5);
    c.h(0).cx(0, 1).measureAll();
    const SensitivityProfile profile = profileOf(c, q5, snap);

    snap.setLinkError(q5.linkIndex(0, 1), 0.08);
    const StalenessAssessment assess = assessStaleness(profile, snap);
    ASSERT_TRUE(assess.certifiable);
    EXPECT_TRUE(assess.anyDelta);
    EXPECT_GT(assess.firstOrder, 0.0);
    EXPECT_GT(assess.secondOrder, 0.0);
    EXPECT_GT(assess.fpSlack, 0.0);
    EXPECT_GE(assess.bound(),
              assess.firstOrder + assess.secondOrder);
    // The exact shift is inside the certified interval.
    EXPECT_LE(std::abs(assess.deltaLogPst), assess.bound());
}

/**
 * The headline property: replay the full 52-day synthetic archive
 * (104 calibration cycles) and check every (circuit, epoch-pair)
 * i -> j. With the profile built at epoch i:
 *
 *  - |logPST(j) - logPST(i)| (closed form)  <= bound
 *  - |log(analyticPst(j) / analyticPst(i))| <= bound  (product form)
 *  - logPST(i) + deltaLogPst == logPST(j) to rounding (the shift
 *    a bound-serve folds into the stored PST is exact)
 */
TEST(Staleness, BoundIsSoundOverTheFullCalibrationArchive)
{
    const topology::CouplingGraph q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20, {}, 7);
    const std::vector<calibration::Snapshot> epochs =
        source.series(104).snapshots();
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});

    std::size_t pairsChecked = 0;
    for (const circuit::Circuit &logical :
         {workloads::ghz(6), workloads::qft(5),
          workloads::bernsteinVazirani(8)}) {
        // One fixed mapping (compiled at epoch 0) assessed against
        // every later cycle — the store's serving situation.
        const circuit::Circuit physical =
            mapper.map(logical, q20, epochs.front()).physical;

        std::vector<SensitivityProfile> profiles;
        std::vector<double> productLog;
        profiles.reserve(epochs.size());
        productLog.reserve(epochs.size());
        for (const calibration::Snapshot &snap : epochs) {
            profiles.push_back(profileOf(physical, q20, snap));
            const sim::NoiseModel model(q20, snap,
                                        sim::CoherenceMode::PerOp);
            productLog.push_back(
                std::log(sim::analyticPst(physical, model)));
        }

        for (std::size_t i = 0; i < epochs.size(); ++i) {
            for (std::size_t j = i + 1; j < epochs.size(); ++j) {
                const StalenessAssessment assess =
                    assessStaleness(profiles[i], epochs[j]);
                ASSERT_TRUE(assess.certifiable)
                    << "epochs " << i << " -> " << j;
                const double bound = assess.bound();
                const double closedDelta =
                    profiles[j].logPst - profiles[i].logPst;
                EXPECT_LE(std::abs(closedDelta), bound)
                    << "closed form, epochs " << i << " -> " << j;
                EXPECT_LE(std::abs(productLog[j] - productLog[i]),
                          bound)
                    << "product form, epochs " << i << " -> " << j;
                EXPECT_NEAR(assess.deltaLogPst, closedDelta, 1e-9)
                    << "exact shift, epochs " << i << " -> " << j;
                ++pairsChecked;
            }
        }
    }
    EXPECT_EQ(pairsChecked, 3u * (104u * 103u) / 2u);
}

} // namespace
} // namespace vaq::analysis
