#include "analysis/dataflow.hpp"

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/layering.hpp"

namespace vaq::analysis
{
namespace
{

using circuit::Circuit;

TEST(Dataflow, ChainsRecordTouchesAndMeasures)
{
    Circuit c(3);
    c.h(0).cx(0, 1).measure(1).x(2);
    const DataflowAnalysis df(c);

    const QubitChain &q0 = df.chain(0);
    EXPECT_EQ(q0.firstTouch, 0);
    EXPECT_EQ(q0.lastTouch, 1);
    EXPECT_EQ(q0.firstMeasure, -1);
    EXPECT_EQ(q0.touches, (std::vector<std::size_t>{0, 1}));
    EXPECT_TRUE(q0.measures.empty());

    const QubitChain &q1 = df.chain(1);
    EXPECT_EQ(q1.firstTouch, 1);
    EXPECT_EQ(q1.firstMeasure, 2);
    EXPECT_EQ(q1.measures, (std::vector<std::size_t>{2}));

    EXPECT_TRUE(df.chain(2).touched());
    EXPECT_EQ(df.chain(2).firstMeasure, -1);
}

TEST(Dataflow, BarriersTouchNoChain)
{
    Circuit c(2);
    c.h(0).barrier().measure(0);
    const DataflowAnalysis df(c);
    EXPECT_EQ(df.chain(0).touches,
              (std::vector<std::size_t>{0, 2}));
    EXPECT_FALSE(df.chain(1).touched());
}

TEST(Dataflow, LivenessPropagatesBackwards)
{
    Circuit c(3);
    c.h(0).cx(0, 1).x(2).measure(1);
    const DataflowAnalysis df(c);
    const std::vector<bool> &live = df.liveGate();
    EXPECT_TRUE(live[0]); // h feeds cx feeds measure
    EXPECT_TRUE(live[1]);
    EXPECT_FALSE(live[2]); // x on q2 reaches nothing
    EXPECT_TRUE(live[3]); // the measurement itself
}

TEST(Dataflow, SwapRoutesLivenessExactly)
{
    // x writes wire 0; the swap moves that state to wire 1, which
    // is measured. The x must be live, and a gate left on wire 0
    // after the swap must be dead.
    Circuit c(2);
    c.x(0).swap(0, 1).z(0).measure(1);
    const DataflowAnalysis df(c);
    EXPECT_TRUE(df.liveGate()[0]);  // x
    EXPECT_TRUE(df.liveGate()[1]);  // swap
    EXPECT_FALSE(df.liveGate()[2]); // z on the dead wire
}

TEST(Dataflow, EntanglingGateMakesBothWiresLive)
{
    Circuit c(2);
    c.h(0).h(1).cx(0, 1).measure(1);
    const DataflowAnalysis df(c);
    EXPECT_TRUE(df.liveGate()[0]);
    EXPECT_TRUE(df.liveGate()[1]);
}

TEST(Dataflow, SwapFactDetectsUntouchedExchange)
{
    Circuit c(3);
    c.swap(0, 1).h(2);
    const DataflowAnalysis df(c);
    ASSERT_EQ(df.swapFacts().size(), 1u);
    EXPECT_TRUE(df.swapFacts()[0].exchangesUntouchedStates);
    EXPECT_TRUE(df.swapFacts()[0].noOp());
}

TEST(Dataflow, SwapFactDetectsCancellation)
{
    Circuit c(2);
    c.h(0).h(1).swap(0, 1).swap(1, 0);
    const DataflowAnalysis df(c);
    ASSERT_EQ(df.swapFacts().size(), 2u);
    EXPECT_FALSE(df.swapFacts()[0].noOp());
    EXPECT_TRUE(df.swapFacts()[1].cancelsPrevious);
}

TEST(Dataflow, InterveningGateBlocksCancellation)
{
    Circuit c(2);
    c.h(0).h(1).swap(0, 1).x(0).swap(0, 1);
    const DataflowAnalysis df(c);
    ASSERT_EQ(df.swapFacts().size(), 2u);
    EXPECT_FALSE(df.swapFacts()[1].cancelsPrevious);
}

TEST(Dataflow, MeaningfulSwapIsNotANoOp)
{
    Circuit c(2);
    c.h(0).swap(0, 1).measure(1);
    const DataflowAnalysis df(c);
    ASSERT_EQ(df.swapFacts().size(), 1u);
    EXPECT_FALSE(df.swapFacts()[0].noOp());
}

TEST(Dataflow, WireStateTracksPermutation)
{
    Circuit c(3);
    c.h(0).swap(0, 1).swap(1, 2);
    const DataflowAnalysis df(c);
    // State 0 moved 0 -> 1 -> 2; state 1 moved to wire 0.
    EXPECT_EQ(df.wireState()[0], 1);
    EXPECT_EQ(df.wireState()[1], 2);
    EXPECT_EQ(df.wireState()[2], 0);
}

TEST(Dataflow, AsapScheduleUsesGateDurations)
{
    Circuit c(2);
    c.h(0).cx(0, 1).measure(1);
    const DataflowAnalysis df(c); // defaults: 60 / 200 / 300 ns
    EXPECT_DOUBLE_EQ(df.gateStartNs(0), 0.0);
    EXPECT_DOUBLE_EQ(df.gateStartNs(1), 60.0);
    EXPECT_DOUBLE_EQ(df.gateEndNs(1), 260.0);
    EXPECT_DOUBLE_EQ(df.gateStartNs(2), 260.0);
    EXPECT_DOUBLE_EQ(df.scheduleNs(), 560.0);
}

TEST(Dataflow, IdleWindowCapturesTheGap)
{
    // q1 acts at t=0 (h), then waits for q0's long chain before the
    // cx at t=180: a 120 ns idle window on q1.
    Circuit c(2);
    c.h(1).h(0).h(0).h(0).cx(0, 1);
    const DataflowAnalysis df(c);
    ASSERT_EQ(df.idleWindows().size(), 1u);
    const IdleWindow &w = df.idleWindows()[0];
    EXPECT_EQ(w.qubit, 1);
    EXPECT_EQ(w.fromGate, 0u);
    EXPECT_EQ(w.toGate, 4u);
    EXPECT_DOUBLE_EQ(w.nanoseconds, 120.0);
}

TEST(Dataflow, NoIdleWindowBeforeFirstGate)
{
    Circuit c(2);
    c.h(0).h(0).cx(0, 1);
    const DataflowAnalysis df(c);
    // q1's first gate is the cx; waiting to start is not idling.
    EXPECT_TRUE(df.idleWindows().empty());
}

TEST(Dataflow, SwapCountsAsThreeTwoQubitGates)
{
    Circuit c(2);
    c.swap(0, 1);
    const DataflowAnalysis df(c);
    EXPECT_DOUBLE_EQ(df.gateDurationNs(0), 600.0);
}

TEST(Dataflow, CustomDurationsFeedTheSchedule)
{
    calibration::GateDurations durations;
    durations.oneQubitNs = 10.0;
    durations.measureNs = 100.0;
    Circuit c(1);
    c.h(0).measure(0);
    const DataflowAnalysis df(c, durations);
    EXPECT_DOUBLE_EQ(df.scheduleNs(), 110.0);
}

TEST(Dataflow, ActivityCountsTwoQubitEndpoints)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2).cx(0, 1).measureAll();
    const std::vector<double> activity = activityByQubit(c);
    EXPECT_DOUBLE_EQ(activity[0], 2.0);
    EXPECT_DOUBLE_EQ(activity[1], 3.0);
    EXPECT_DOUBLE_EQ(activity[2], 1.0);
}

TEST(Dataflow, ActivityWindowLimitsLayers)
{
    Circuit c(3);
    c.cx(0, 1).cx(1, 2); // layer 0, layer 1
    const std::vector<double> first = activityByQubit(c, 1);
    EXPECT_DOUBLE_EQ(first[0], 1.0);
    EXPECT_DOUBLE_EQ(first[1], 1.0);
    EXPECT_DOUBLE_EQ(first[2], 0.0);
}

} // namespace
} // namespace vaq::analysis
