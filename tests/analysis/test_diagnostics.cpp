#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostics.hpp"
#include "analysis/linter.hpp"
#include "circuit/circuit.hpp"
#include "common/error.hpp"

namespace vaq::analysis
{
namespace
{

using circuit::Circuit;

/** A fixed dirty circuit exercising several rules at once. */
LintReport
dirtyReport()
{
    static const Circuit circuit = [] {
        Circuit c(3);
        c.h(0).measure(0).x(0).measure(0).z(2).measure(1);
        return c;
    }();
    LintInput input;
    input.circuit = &circuit;
    input.artifact = "dirty.qasm";
    return Linter().run(input);
}

/**
 * Minimal JSON well-formedness check: balanced structure outside
 * strings, with escape handling. Not a full parser, but enough to
 * catch broken quoting or bracket mismatches in the renderers.
 */
bool
jsonBalanced(const std::string &text)
{
    std::vector<char> stack;
    bool inString = false;
    bool escaped = false;
    for (const char c : text) {
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
        case '"':
            inString = true;
            break;
        case '{':
        case '[':
            stack.push_back(c);
            break;
        case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
        case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
        default:
            break;
        }
    }
    return !inString && stack.empty();
}

TEST(Diagnostics, FailOnParsesAllThresholds)
{
    EXPECT_EQ(failOnFromName("never"), FailOn::Never);
    EXPECT_EQ(failOnFromName("error"), FailOn::Error);
    EXPECT_EQ(failOnFromName("warning"), FailOn::Warning);
    EXPECT_THROW(failOnFromName("bogus"), VaqError);
}

TEST(Diagnostics, ShouldFailRespectsThreshold)
{
    const LintReport report = dirtyReport();
    ASSERT_GT(report.errorCount(), 0u);
    ASSERT_GT(report.warningCount(), 0u);
    EXPECT_FALSE(report.shouldFail(FailOn::Never));
    EXPECT_TRUE(report.shouldFail(FailOn::Error));
    EXPECT_TRUE(report.shouldFail(FailOn::Warning));

    LintReport clean;
    clean.diagnostics.clear();
    EXPECT_FALSE(clean.shouldFail(FailOn::Warning));
}

TEST(Diagnostics, TextRenderingGolden)
{
    const LintReport report = dirtyReport();
    const std::string expected =
        "dirty.qasm: warning: [VL002] qubit 0 is reused by gate "
        "'x' after its measurement at gate 1 without a reset "
        "(gate 2)\n"
        "dirty.qasm: error: [VL004] qubit 0 is measured again "
        "into c[0], overwriting the result of gate 1 (gate 3)\n"
        "dirty.qasm: warning: [VL003] gate 'z' on qubit 2 cannot "
        "influence any measurement (gate 4)\n"
        "dirty.qasm: warning: [VL001] qubit 1 is measured without "
        "any prior gate; the outcome is always 0 (gate 5)\n"
        "1 error, 3 warnings\n";
    EXPECT_EQ(renderText(report), expected);
}

TEST(Diagnostics, TextRenderingCleanCircuit)
{
    Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    LintInput input;
    input.circuit = &c;
    input.artifact = "bell.qasm";
    const LintReport report = Linter().run(input);
    EXPECT_TRUE(report.diagnostics.empty());
    EXPECT_EQ(renderText(report), "bell.qasm: clean (13 rules)\n");
}

TEST(Diagnostics, JsonIsWellFormedAndCounts)
{
    const LintReport report = dirtyReport();
    const std::string json = renderJson(report);
    EXPECT_TRUE(jsonBalanced(json));
    EXPECT_NE(json.find("\"artifact\": \"dirty.qasm\""),
              std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"warnings\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"VL004\""),
              std::string::npos);
}

TEST(Diagnostics, SarifHasRequiredTopLevelShape)
{
    const LintReport report = dirtyReport();
    const std::string sarif = renderSarif(report);
    EXPECT_TRUE(jsonBalanced(sarif));
    // Required SARIF 2.1.0 log properties.
    EXPECT_NE(sarif.find("\"$schema\""), std::string::npos);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"runs\""), std::string::npos);
    // Required run/tool/driver properties.
    EXPECT_NE(sarif.find("\"tool\""), std::string::npos);
    EXPECT_NE(sarif.find("\"driver\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"vaq_lint\""),
              std::string::npos);
}

TEST(Diagnostics, SarifListsEveryRuleAndFinding)
{
    const LintReport report = dirtyReport();
    const std::string sarif = renderSarif(report);
    // Every shipped rule appears in tool.driver.rules.
    for (const RuleInfo &rule : report.rules) {
        EXPECT_NE(sarif.find("\"id\": \"" + rule.id + "\""),
                  std::string::npos)
            << rule.id;
    }
    // Every finding becomes a result with a location.
    std::size_t results = 0;
    for (std::size_t pos = sarif.find("\"ruleId\"");
         pos != std::string::npos;
         pos = sarif.find("\"ruleId\"", pos + 1)) {
        ++results;
    }
    EXPECT_EQ(results, report.diagnostics.size());
    EXPECT_NE(sarif.find("\"physicalLocation\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"logicalLocations\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"ruleIndex\": 3"), std::string::npos);
}

TEST(Diagnostics, SarifLevelsMatchSeverity)
{
    const LintReport report = dirtyReport();
    const std::string sarif = renderSarif(report);
    EXPECT_NE(sarif.find("\"level\": \"error\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"level\": \"warning\""),
              std::string::npos);
}

TEST(Diagnostics, RenderersAreByteDeterministicAcrossRuns)
{
    const LintReport a = dirtyReport();
    const LintReport b = dirtyReport();
    EXPECT_EQ(renderText(a), renderText(b));
    EXPECT_EQ(renderJson(a), renderJson(b));
    EXPECT_EQ(renderSarif(a), renderSarif(b));
}

TEST(Diagnostics, SourceLinesFlowIntoRenderings)
{
    Circuit c(1);
    c.measure(0);
    const std::vector<int> lines{7};
    LintInput input;
    input.circuit = &c;
    input.gateLines = &lines;
    input.artifact = "prog.qasm";
    const LintReport report = Linter().run(input);
    ASSERT_FALSE(report.diagnostics.empty());
    EXPECT_EQ(report.diagnostics[0].line, 7);
    EXPECT_NE(renderText(report).find("prog.qasm:7: warning"),
              std::string::npos);
    EXPECT_NE(renderSarif(report).find("\"startLine\": 7"),
              std::string::npos);
}

} // namespace
} // namespace vaq::analysis
