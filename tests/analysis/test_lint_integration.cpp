/**
 * @file
 * Integration tests for the lint layer: linter rule selection, the
 * batch compiler's pre-/post-compile lint passes (including the
 * Usage fast-fail), byte-determinism of rendered reports across
 * batch thread counts, and the analysis.* telemetry counters.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/linter.hpp"
#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/allocator.hpp"
#include "core/batch_compiler.hpp"
#include "core/mapper.hpp"
#include "obs/metrics.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq
{
namespace
{

using analysis::FailOn;
using analysis::Linter;
using analysis::LintInput;
using analysis::LintOptions;
using analysis::LintReport;
using core::BatchCompiler;
using core::BatchOptions;
using core::BatchResult;
using core::JobStatus;

/** Flip the telemetry switch for one test, restoring it after. */
class EnabledGuard
{
  public:
    explicit EnabledGuard(bool on) : _previous(obs::enabled())
    {
        obs::setEnabled(on);
    }
    ~EnabledGuard() { obs::setEnabled(_previous); }

  private:
    bool _previous;
};

core::Mapper
referenceMapper()
{
    return core::Mapper("reference",
                        std::make_unique<core::LocalityAllocator>(),
                        core::CostKind::SwapCount);
}

/** Well-formed 3-qubit programs the reference mapper handles. */
std::vector<circuit::Circuit>
cleanCircuits(std::size_t count)
{
    Rng rng(99);
    std::vector<circuit::Circuit> circuits;
    circuits.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        circuits.push_back(vaq::test::randomCircuit(3, 10, rng));
    return circuits;
}

BatchOptions
lintingOptions(std::size_t threads)
{
    BatchOptions options;
    options.compile.threads = threads;
    options.lint = true;
    return options;
}

TEST(LintIntegration, DisabledRulesAreDropped)
{
    LintOptions options;
    options.disabled = {"VL003", "redundant-swap"};
    const Linter linter(options);
    const std::vector<std::string> ids = linter.ruleIds();
    EXPECT_EQ(ids.size(), 11u);
    EXPECT_EQ(std::find(ids.begin(), ids.end(), "VL003"),
              ids.end());
    EXPECT_EQ(std::find(ids.begin(), ids.end(), "VL006"),
              ids.end());
    EXPECT_NE(std::find(ids.begin(), ids.end(), "VL001"),
              ids.end());
}

TEST(LintIntegration, EnabledOnlyKeepsJustThoseRules)
{
    LintOptions options;
    options.enabledOnly = {"VL004", "measure-uninitialized"};
    const Linter linter(options);
    EXPECT_EQ(linter.ruleIds(),
              (std::vector<std::string>{"VL001", "VL004"}));

    // A circuit full of VL002/VL003 material yields nothing when
    // those rules are filtered out.
    circuit::Circuit c(2);
    c.h(0).cx(0, 1).measureAll();
    const LintReport report = linter.lint(c);
    EXPECT_TRUE(report.diagnostics.empty());
    EXPECT_EQ(report.rules.size(), 2u);
}

TEST(LintIntegration, UnknownRuleNamesThrowUpFront)
{
    LintOptions disabled;
    disabled.disabled = {"VL999"};
    EXPECT_THROW(Linter{disabled}, VaqError);

    LintOptions enabled;
    enabled.enabledOnly = {"no-such-rule"};
    EXPECT_THROW(Linter{enabled}, VaqError);
}

TEST(LintIntegration, RunWithoutCircuitIsAUsageError)
{
    const Linter linter;
    EXPECT_THROW(linter.run(LintInput{}), VaqError);
}

TEST(LintIntegration, BatchFastFailsUsageFindingsBeforeCompiling)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    auto circuits = cleanCircuits(4);
    // Slot 2: wider than the machine -> VL010 (Error/Usage) must
    // reject the job before any compile attempt runs.
    Rng rng(5);
    circuits[2] = vaq::test::randomCircuit(7, 8, rng);

    const core::Mapper mapper = referenceMapper();
    BatchCompiler compiler(mapper, q5, lintingOptions(4));
    const auto results = compiler.compileAll(circuits, {snapshot});

    ASSERT_EQ(results.size(), circuits.size());
    for (const BatchResult &r : results) {
        if (r.circuit == 2) {
            EXPECT_EQ(r.status, JobStatus::Failed);
            EXPECT_EQ(r.errorCategory, ErrorCategory::Usage);
            EXPECT_NE(r.error.find("VL010"), std::string::npos);
            EXPECT_EQ(r.attempts, 0);
            EXPECT_GE(r.lintErrors, 1u);
        } else {
            EXPECT_EQ(r.status, JobStatus::Ok);
            EXPECT_TRUE(r.error.empty());
            EXPECT_EQ(r.lintErrors, 0u);
            // Post-compile pass ran over the mapped output.
            EXPECT_EQ(r.mappedLintErrors, 0u);
        }
    }
}

TEST(LintIntegration, BatchLintOffLeavesCountsZero)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    const auto circuits = cleanCircuits(2);

    const core::Mapper mapper = referenceMapper();
    BatchOptions options;
    options.compile.threads = 2;
    BatchCompiler compiler(mapper, q5, options);
    const auto results = compiler.compileAll(circuits, {snapshot});
    for (const BatchResult &r : results) {
        EXPECT_EQ(r.lintErrors, 0u);
        EXPECT_EQ(r.lintWarnings, 0u);
        EXPECT_EQ(r.mappedLintErrors, 0u);
        EXPECT_EQ(r.mappedLintWarnings, 0u);
    }
}

TEST(LintIntegration, BatchUnknownLintRuleThrowsAsUsage)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    const auto circuits = cleanCircuits(1);

    const core::Mapper mapper = referenceMapper();
    BatchOptions options = lintingOptions(2);
    options.lintOptions.disabled = {"VL777"};
    BatchCompiler compiler(mapper, q5, options);
    try {
        compiler.compileAll(circuits, {snapshot});
        FAIL() << "expected VaqError for the unknown rule name";
    } catch (const VaqError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Usage);
    }
}

TEST(LintIntegration, ReportsAreByteIdenticalAcrossThreadCounts)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const auto snapshot = vaq::test::uniformSnapshot(q5);
    const auto circuits = cleanCircuits(6);
    const core::Mapper mapper = referenceMapper();
    const Linter linter;

    // Lint every mapped output and render; the concatenation must
    // not depend on how many workers compiled the batch.
    std::vector<std::string> renderings;
    for (const std::size_t threads : {1u, 4u, 8u}) {
        BatchCompiler compiler(mapper, q5,
                               lintingOptions(threads));
        const auto results =
            compiler.compileAll(circuits, {snapshot});
        std::string blob;
        for (const BatchResult &r : results) {
            ASSERT_TRUE(r.ok());
            const LintReport report = linter.lintPhysical(
                r.mapped.physical, q5, &snapshot);
            blob += renderText(report);
            blob += renderJson(report);
            blob += renderSarif(report);
        }
        renderings.push_back(std::move(blob));
    }
    EXPECT_EQ(renderings[0], renderings[1]);
    EXPECT_EQ(renderings[0], renderings[2]);
}

TEST(LintIntegration, TelemetryCountsRunsAndDiagnostics)
{
    EnabledGuard guard(true);
    obs::Registry::global().reset();

    circuit::Circuit dirty(2);
    dirty.measure(0).x(0).measure(1);
    const Linter linter;
    const LintReport report = linter.lint(dirty);
    ASSERT_GE(report.diagnostics.size(), 2u);

    const obs::MetricsSnapshot snap =
        obs::Registry::global().snapshot();
    const auto counter = [&](const std::string &name) {
        const auto it = snap.counters.find(name);
        return it == snap.counters.end() ? std::uint64_t{0}
                                         : it->second;
    };
    EXPECT_EQ(counter("analysis.runs"), 1u);
    EXPECT_EQ(counter("analysis.diagnostics.emitted"),
              report.diagnostics.size());
    EXPECT_EQ(counter("analysis.diagnostics.error"),
              report.errorCount());
    EXPECT_EQ(counter("analysis.diagnostics.warning"),
              report.warningCount());
}

TEST(LintIntegration, TelemetryOffLeavesRegistryUntouched)
{
    EnabledGuard guard(false);
    obs::Registry::global().reset();

    circuit::Circuit dirty(1);
    dirty.measure(0);
    Linter().lint(dirty);

    // Registry::reset() zeroes counters but keeps registrations,
    // so earlier tests may have created the keys: assert the lint
    // run added nothing, not that the keys are absent.
    const obs::MetricsSnapshot snap =
        obs::Registry::global().snapshot();
    const auto counter = [&](const std::string &name) {
        const auto it = snap.counters.find(name);
        return it == snap.counters.end() ? std::uint64_t{0}
                                         : it->second;
    };
    EXPECT_EQ(counter("analysis.runs"), 0u);
    EXPECT_EQ(counter("analysis.diagnostics.emitted"), 0u);
}

} // namespace
} // namespace vaq
