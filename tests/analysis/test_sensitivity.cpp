/**
 * @file
 * The symbolic sensitivity pass: the closed-form log PST must equal
 * the pipeline's product-form analytic PST, the first-order
 * coefficients must match finite differences, and the rendered
 * reports must be byte-identical regardless of how many threads
 * compiled the batch.
 */
#include "analysis/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/sens_report.hpp"
#include "calibration/synthetic.hpp"
#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "core/batch_compiler.hpp"
#include "core/mapper.hpp"
#include "sim/fault_sim.hpp"
#include "sim/noise_model.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace vaq::analysis
{
namespace
{

SensitivityProfile
profileOf(const circuit::Circuit &physical,
          const topology::CouplingGraph &graph,
          const calibration::Snapshot &snapshot)
{
    const DataflowAnalysis df(physical, snapshot.durations);
    return analyzeSensitivity(df, graph, snapshot);
}

double
productFormLogPst(const circuit::Circuit &physical,
                  const topology::CouplingGraph &graph,
                  const calibration::Snapshot &snapshot)
{
    const sim::NoiseModel model(graph, snapshot,
                                sim::CoherenceMode::PerOp);
    return std::log(sim::analyticPst(physical, model));
}

TEST(Sensitivity, ClosedFormMatchesProductForm)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    Rng rng(11);
    const calibration::Snapshot snap =
        vaq::test::randomSnapshot(q5, rng);

    // Physical circuit whose 2q gates all sit on Tenerife links.
    circuit::Circuit c(5);
    c.h(0).cx(0, 1).cx(1, 2).x(2).swap(2, 3).cz(2, 4).measureAll();

    const SensitivityProfile profile = profileOf(c, q5, snap);
    const double expected = productFormLogPst(c, q5, snap);
    EXPECT_NEAR(profile.logPst, expected,
                1e-9 * std::abs(expected) + 1e-12);
    EXPECT_NEAR(profile.pst(), std::exp(expected), 1e-12);
}

TEST(Sensitivity, ClosedFormMatchesProductFormOnMappedWorkloads)
{
    const topology::CouplingGraph q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20, {}, 7);
    const calibration::Snapshot snap = source.nextCycle();
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});

    for (const circuit::Circuit &logical :
         {workloads::ghz(6), workloads::qft(5),
          workloads::bernsteinVazirani(8)}) {
        const core::MappedCircuit mapped =
            mapper.map(logical, q20, snap);
        const SensitivityProfile profile =
            profileOf(mapped.physical, q20, snap);
        const double expected =
            productFormLogPst(mapped.physical, q20, snap);
        EXPECT_NEAR(profile.logPst, expected,
                    1e-9 * std::abs(expected) + 1e-12);
    }
}

TEST(Sensitivity, CountsAndSwapWeighting)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const calibration::Snapshot snap =
        vaq::test::uniformSnapshot(q5);

    circuit::Circuit c(5);
    c.h(0).x(0).cx(0, 1).swap(0, 1).measure(0);
    const SensitivityProfile profile = profileOf(c, q5, snap);

    ASSERT_EQ(profile.qubits.size(), 2u);
    const QubitSensitivity &s0 = profile.qubits[0];
    EXPECT_EQ(s0.qubit, 0);
    EXPECT_DOUBLE_EQ(s0.oneQubitGates, 2.0); // h, x
    EXPECT_DOUBLE_EQ(s0.measurements, 1.0);
    // 2 * 60ns (1q) + 200ns (cx) + 600ns (swap) + 300ns (measure).
    EXPECT_DOUBLE_EQ(s0.busyNs, 2 * 60.0 + 200.0 + 600.0 + 300.0);

    ASSERT_EQ(profile.links.size(), 1u);
    // A SWAP is three CNOTs: cx + swap = 1 + 3 effective gates.
    EXPECT_DOUBLE_EQ(profile.links[0].effectiveGates, 4.0);
    EXPECT_EQ(profile.opCount, 5u);
}

TEST(Sensitivity, CoefficientsMatchFiniteDifferences)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    Rng rng(23);
    const calibration::Snapshot snap =
        vaq::test::randomSnapshot(q5, rng);

    circuit::Circuit c(5);
    c.h(0).cx(0, 1).cx(1, 2).swap(2, 3).h(3).measureAll();
    const SensitivityProfile profile = profileOf(c, q5, snap);
    const double h = 1e-7;

    for (const QubitSensitivity &q : profile.qubits) {
        // d/d(error1q)
        calibration::Snapshot bumped = snap;
        bumped.qubit(q.qubit).error1q += h;
        double fd =
            (profileOf(c, q5, bumped).logPst - profile.logPst) / h;
        EXPECT_NEAR(q.dError1q(), fd,
                    1e-4 * std::abs(fd) + 1e-6);

        // d/d(readoutError)
        bumped = snap;
        bumped.qubit(q.qubit).readoutError += h;
        fd = (profileOf(c, q5, bumped).logPst - profile.logPst) / h;
        EXPECT_NEAR(q.dReadout(), fd, 1e-4 * std::abs(fd) + 1e-6);

        // d/d(t1Us)
        bumped = snap;
        bumped.qubit(q.qubit).t1Us += h;
        fd = (profileOf(c, q5, bumped).logPst - profile.logPst) / h;
        EXPECT_NEAR(q.dT1Us(), fd, 1e-4 * std::abs(fd) + 1e-6);
    }
    for (const LinkSensitivity &l : profile.links) {
        calibration::Snapshot bumped = snap;
        bumped.setLinkError(l.link, snap.linkError(l.link) + h);
        const double fd =
            (profileOf(c, q5, bumped).logPst - profile.logPst) / h;
        EXPECT_NEAR(l.dError2q(), fd, 1e-4 * std::abs(fd) + 1e-6);
    }
}

TEST(Sensitivity, T2NeverEntersTheProfile)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    calibration::Snapshot snap = vaq::test::uniformSnapshot(q5);
    circuit::Circuit c(5);
    c.h(0).cx(0, 1).measureAll();

    const double before = profileOf(c, q5, snap).logPst;
    for (int q = 0; q < 5; ++q)
        snap.qubit(q).t2Us *= 0.25;
    EXPECT_EQ(profileOf(c, q5, snap).logPst, before);
}

TEST(Sensitivity, UncoupledTwoQubitGateThrows)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const calibration::Snapshot snap =
        vaq::test::uniformSnapshot(q5);
    circuit::Circuit c(5);
    c.cx(0, 4); // not a Tenerife link
    const DataflowAnalysis df(c, snap.durations);
    EXPECT_THROW(analyzeSensitivity(df, q5, snap), VaqError);
}

TEST(Sensitivity, SnapshotShapeMismatchThrows)
{
    const topology::CouplingGraph q5 = topology::ibmQ5Tenerife();
    const topology::CouplingGraph q3 = topology::linear(3);
    const calibration::Snapshot small =
        vaq::test::uniformSnapshot(q3);
    circuit::Circuit c(5);
    c.h(0);
    const DataflowAnalysis df(c, small.durations);
    EXPECT_THROW(analyzeSensitivity(df, q5, small), VaqError);
}

TEST(Sensitivity, ReportsAreByteIdenticalAcrossThreadCounts)
{
    const topology::CouplingGraph q20 = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(q20, {}, 7);
    const calibration::Snapshot snap = source.nextCycle();
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});
    std::vector<circuit::Circuit> circuits = {
        workloads::ghz(5), workloads::qft(4),
        workloads::bernsteinVazirani(6)};

    // Render the sens report (text + JSON + the vaqd block) for
    // every mapped output; the concatenation must not depend on the
    // batch's worker count.
    std::vector<std::string> renderings;
    for (const std::size_t threads : {1u, 4u, 8u}) {
        core::BatchOptions options;
        options.compile.threads = threads;
        core::BatchCompiler compiler(mapper, q20, options);
        const auto results = compiler.compileAll(circuits, {snap});
        std::string blob;
        for (const auto &r : results) {
            ASSERT_TRUE(r.ok());
            SensReport report;
            report.profile =
                profileOf(r.mapped.physical, q20, snap);
            report.assessment =
                assessStaleness(report.profile, snap);
            report.hasAssessment = true;
            blob += renderSensText(report);
            blob += renderSensJson(report);
            blob += json::writePretty(
                sensitivityJson(report.profile));
        }
        renderings.push_back(std::move(blob));
    }
    EXPECT_EQ(renderings[0], renderings[1]);
    EXPECT_EQ(renderings[0], renderings[2]);
}

} // namespace
} // namespace vaq::analysis
