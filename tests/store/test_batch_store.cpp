/**
 * @file
 * BatchCompiler x ArtifactStore integration: warmed batches are
 * served from the store bit-identically at every thread count, a
 * calibration-series replay recompiles only the circuits whose
 * touched hardware actually drifted (the delta-recompilation
 * acceptance test), and damaged store files never abort a batch.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "circuit/qasm.hpp"
#include "core/batch_compiler.hpp"
#include "core/mapper.hpp"
#include "obs/metrics.hpp"
#include "store/adapter.hpp"
#include "store/artifact_store.hpp"
#include "store_test_support.hpp"

namespace vaq::store
{
namespace
{

using core::BatchCompiler;
using core::BatchOptions;
using core::BatchResult;
using core::JobStatus;

/** Hardware a mapped circuit depends on. */
struct TouchedSets
{
    std::set<int> qubits;
    std::set<std::size_t> links;

    bool containsQubit(int q) const { return qubits.count(q) > 0; }
    bool containsLink(std::size_t l) const
    {
        return links.count(l) > 0;
    }
};

TouchedSets
touchedOf(const core::MappedCircuit &mapped,
          const topology::CouplingGraph &graph)
{
    TouchedSets t;
    const analysis::DataflowAnalysis dataflow(mapped.physical);
    for (int q = 0; q < mapped.physical.numQubits(); ++q) {
        if (dataflow.chain(q).touched())
            t.qubits.insert(q);
    }
    for (const circuit::Gate &g : mapped.physical.gates()) {
        if (g.isTwoQubit())
            t.links.insert(graph.linkIndex(g.q0, g.q1));
    }
    return t;
}

/** Everything observable about a result, for bit-identity checks. */
std::string
fingerprint(const BatchResult &r)
{
    return std::to_string(r.circuit) + "/" +
           std::to_string(r.snapshot) + "/" +
           core::jobStatusName(r.status) + "/" + r.policyUsed +
           "/" + std::to_string(r.mapped.insertedSwaps) + "/" +
           std::to_string(r.analyticPst) + "\n" +
           circuit::toQasm(r.mapped.physical);
}

class BatchStoreTest : public ::testing::Test
{
  protected:
    BatchStoreTest() : graph(topology::linear(8))
    {
        circuits.push_back(test::storeTestCircuit(2));
        circuits.push_back(test::storeTestCircuit(3));
        calibration::Snapshot base = test::uniformSnapshot(graph);
        for (int q = 0; q < graph.numQubits(); ++q) {
            base.qubit(q).readoutError = 0.01 + 0.002 * q;
            base.qubit(q).error1q = 0.002 + 0.0003 * q;
        }
        for (std::size_t l = 0; l < graph.linkCount(); ++l)
            base.setLinkError(
                l, 0.02 + 0.004 * static_cast<double>(l));
        snapshots.push_back(base);
    }

    BatchOptions
    optionsWith(core::ArtifactCacheHook *cache,
                std::size_t threads = 1) const
    {
        BatchOptions options;
        options.compile.threads = threads;
        options.artifactCache = cache;
        return options;
    }

    std::vector<BatchResult>
    runCycle(const calibration::Snapshot &cycle,
             core::ArtifactCacheHook *cache,
             std::size_t threads = 1) const
    {
        const core::Mapper mapper = core::makeMapper(spec);
        BatchCompiler compiler(mapper, graph,
                               optionsWith(cache, threads));
        return compiler.compileAll(circuits, {cycle});
    }

    test::TempStoreDir dir;
    topology::CouplingGraph graph;
    std::vector<circuit::Circuit> circuits;
    std::vector<calibration::Snapshot> snapshots;
    core::PolicySpec spec{.name = "vqa+vqm"};
};

TEST_F(BatchStoreTest, WarmedBatchIsServedFromStoreBitIdentically)
{
    // Reference: no store at all.
    const std::vector<BatchResult> reference =
        runCycle(snapshots[0], nullptr);

    ArtifactStore store(StoreOptions{.directory = dir.str()});
    ArtifactCacheAdapter cache(store, graph, spec);
    const std::vector<BatchResult> cold =
        runCycle(snapshots[0], &cache);
    ASSERT_EQ(cold.size(), reference.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_FALSE(cold[i].fromStore);
        EXPECT_EQ(fingerprint(cold[i]), fingerprint(reference[i]));
    }
    EXPECT_EQ(store.stats().writes, circuits.size());

    // Same process, warm store: everything hits, zero compiles.
    const std::vector<BatchResult> warm =
        runCycle(snapshots[0], &cache);
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_TRUE(warm[i].fromStore);
        EXPECT_EQ(warm[i].attempts, 0);
        EXPECT_EQ(warm[i].status, JobStatus::Ok);
        EXPECT_EQ(fingerprint(warm[i]), fingerprint(reference[i]));
    }

    // New process (fresh store object warm-started from disk).
    ArtifactStore reopened(StoreOptions{.directory = dir.str()});
    ArtifactCacheAdapter reopenedCache(reopened, graph, spec);
    const std::vector<BatchResult> restarted =
        runCycle(snapshots[0], &reopenedCache);
    for (std::size_t i = 0; i < restarted.size(); ++i) {
        EXPECT_TRUE(restarted[i].fromStore);
        EXPECT_EQ(fingerprint(restarted[i]),
                  fingerprint(reference[i]));
    }
}

TEST_F(BatchStoreTest, ResultsIdenticalAcrossThreadCounts)
{
    // Duplicate jobs in one batch are the sharp edge: lookups must
    // observe the store as it was at batch entry (records are
    // deferred), or thread timing would decide which duplicate
    // compiles and which hits.
    std::vector<circuit::Circuit> queue = circuits;
    queue.push_back(circuits[0]);
    queue.push_back(circuits[1]);

    std::vector<std::string> baseline;
    for (const std::size_t threads : {1u, 4u, 8u}) {
        ArtifactStore store(StoreOptions{}); // memory-only
        ArtifactCacheAdapter cache(store, graph, spec);
        const core::Mapper mapper = core::makeMapper(spec);
        BatchCompiler compiler(mapper, graph,
                               optionsWith(&cache, threads));
        const std::vector<BatchResult> cold =
            compiler.compileAll(queue, snapshots);
        const std::vector<BatchResult> warm =
            compiler.compileAll(queue, snapshots);
        std::vector<std::string> prints;
        for (const BatchResult &r : cold)
            prints.push_back("cold:" + fingerprint(r) +
                             (r.fromStore ? "/store" : "/compiled"));
        for (const BatchResult &r : warm)
            prints.push_back("warm:" + fingerprint(r) +
                             (r.fromStore ? "/store" : "/compiled"));
        if (baseline.empty())
            baseline = prints;
        else
            EXPECT_EQ(prints, baseline)
                << "thread count " << threads;
        // Every warm job is a store hit regardless of threads.
        for (const BatchResult &r : warm)
            EXPECT_TRUE(r.fromStore);
    }
}

TEST_F(BatchStoreTest, SeriesReplayRecompilesOnlyTouchedDeltas)
{
    obs::setEnabled(true);
    ArtifactStore store(StoreOptions{.directory = dir.str()});
    ArtifactCacheAdapter cache(store, graph, spec);

    // Cycle 0: cold compile of the whole queue.
    const std::vector<BatchResult> cycle0 =
        runCycle(snapshots[0], &cache);
    const std::size_t n = circuits.size();
    ASSERT_EQ(store.stats().writes, n);
    std::vector<TouchedSets> touched;
    for (const BatchResult &r : cycle0)
        touched.push_back(touchedOf(r.mapped, graph));

    // Cycle 1: drift only hardware no circuit touches -> the whole
    // queue is served via delta reuse, zero recompiles.
    int untouchedQubit = -1;
    for (int q = 0; q < graph.numQubits(); ++q) {
        bool used = false;
        for (const TouchedSets &t : touched)
            used = used || t.containsQubit(q);
        if (!used)
            untouchedQubit = q;
    }
    ASSERT_GE(untouchedQubit, 0)
        << "queue unexpectedly covers the whole machine";
    calibration::Snapshot cycle1Snap = snapshots[0];
    cycle1Snap.qubit(untouchedQubit).t1Us *= 0.25;
    cycle1Snap.qubit(untouchedQubit).readoutError = 0.3;

    const std::uint64_t deltaBefore =
        obs::Registry::global().snapshot().counters.count(
            "store.delta_reuse")
            ? obs::Registry::global().snapshot().counters.at(
                  "store.delta_reuse")
            : 0;
    const core::Mapper mapper = core::makeMapper(spec);
    BatchOptions telemetered = optionsWith(&cache);
    telemetered.compile.telemetryEnabled = true;
    BatchCompiler compiler(mapper, graph, telemetered);
    const std::vector<BatchResult> cycle1 =
        compiler.compileAll(circuits, {cycle1Snap});
    int compiled1 = 0;
    for (const BatchResult &r : cycle1) {
        EXPECT_TRUE(r.fromStore);
        compiled1 += r.attempts;
    }
    EXPECT_EQ(compiled1, 0);
    EXPECT_EQ(store.stats().deltaReuse, n);
    EXPECT_EQ(store.stats().writes, n); // nothing new recorded
    // The telemetry counter saw every delta-served job.
    EXPECT_EQ(obs::Registry::global().snapshot().counters.at(
                  "store.delta_reuse") -
                  deltaBefore,
              n);

    // Cycle 2: drift one piece of hardware inside some circuits'
    // touched sets. Exactly the intersecting circuits recompile;
    // the rest ride the store.
    std::size_t probeLink = graph.linkCount();
    for (const std::size_t l : touched[0].links) {
        probeLink = l;
        if (!touched[1].containsLink(l))
            break; // prefer a link unique to circuit 0
    }
    ASSERT_LT(probeLink, graph.linkCount());
    calibration::Snapshot cycle2Snap = snapshots[0];
    cycle2Snap.setLinkError(probeLink, 0.19);
    std::size_t affected = 0;
    for (const TouchedSets &t : touched)
        affected += t.containsLink(probeLink) ? 1 : 0;
    ASSERT_GE(affected, 1u);

    const StoreStats before = store.stats();
    const std::vector<BatchResult> cycle2 =
        runCycle(cycle2Snap, &cache);
    for (std::size_t i = 0; i < cycle2.size(); ++i) {
        const bool intersects =
            touched[i].containsLink(probeLink);
        EXPECT_EQ(cycle2[i].fromStore, !intersects) << "job " << i;
        EXPECT_EQ(cycle2[i].attempts, intersects ? 1 : 0)
            << "job " << i;
        EXPECT_EQ(cycle2[i].status, JobStatus::Ok);
    }
    const StoreStats after = store.stats();
    EXPECT_EQ(after.deltaReuse - before.deltaReuse, n - affected);
    EXPECT_EQ(after.writes - before.writes, affected);
    obs::setEnabled(false);
}

TEST_F(BatchStoreTest, CorruptedStoreFilesNeverAbortABatch)
{
    {
        ArtifactStore store(StoreOptions{.directory = dir.str()});
        ArtifactCacheAdapter cache(store, graph, spec);
        runCycle(snapshots[0], &cache);
    }
    const auto records = test::storeRecords(dir.path());
    ASSERT_EQ(records.size(), circuits.size());
    // Damage every record a different way.
    {
        std::fstream f(records[0], std::ios::in | std::ios::out |
                                       std::ios::binary);
        f.seekp(30);
        f.put('!');
    }
    std::filesystem::resize_file(records[1], 10);

    ArtifactStore store(StoreOptions{.directory = dir.str()});
    EXPECT_EQ(store.stats().corruptRecords, circuits.size());
    ArtifactCacheAdapter cache(store, graph, spec);
    std::vector<BatchResult> results;
    ASSERT_NO_THROW(results = runCycle(snapshots[0], &cache));
    const std::vector<BatchResult> reference =
        runCycle(snapshots[0], nullptr);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].status, JobStatus::Ok);
        EXPECT_FALSE(results[i].fromStore); // recompiled, healed
        EXPECT_EQ(fingerprint(results[i]),
                  fingerprint(reference[i]));
    }
    // The batch healed the records for the next warm start.
    ArtifactStore healed(StoreOptions{.directory = dir.str()});
    EXPECT_EQ(healed.stats().warmLoaded, circuits.size());
}

TEST_F(BatchStoreTest, StoreHitsCarryStoredLintCounts)
{
    ArtifactStore store(StoreOptions{});
    ArtifactCacheAdapter cache(store, graph, spec);
    const core::Mapper mapper = core::makeMapper(spec);
    BatchOptions options = optionsWith(&cache);
    options.lint = true;
    BatchCompiler compiler(mapper, graph, options);
    const std::vector<BatchResult> cold =
        compiler.compileAll(circuits, snapshots);
    const std::vector<BatchResult> warm =
        compiler.compileAll(circuits, snapshots);
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_TRUE(warm[i].fromStore);
        EXPECT_EQ(warm[i].mappedLintErrors,
                  cold[i].mappedLintErrors);
        EXPECT_EQ(warm[i].mappedLintWarnings,
                  cold[i].mappedLintWarnings);
    }
}

} // namespace
} // namespace vaq::store
