/**
 * @file
 * Helpers for the artifact-store suite: a scratch directory that
 * cleans up after itself, and a canned (machine, snapshot, circuit,
 * compile) fixture so every test addresses the same content.
 */
#ifndef VAQ_TESTS_STORE_SUPPORT_HPP
#define VAQ_TESTS_STORE_SUPPORT_HPP

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "core/mapper.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::test
{

/** Unique scratch directory, removed (recursively) on scope exit. */
class TempStoreDir
{
  public:
    TempStoreDir()
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        _path = std::filesystem::temp_directory_path() /
                ("vaq_store_" + std::string(info->test_suite_name()) +
                 "_" + std::string(info->name()) + "_" +
                 std::to_string(::getpid()));
        std::filesystem::remove_all(_path);
        std::filesystem::create_directories(_path);
    }

    ~TempStoreDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(_path, ec);
    }

    const std::filesystem::path &path() const { return _path; }
    std::string str() const { return _path.string(); }

  private:
    std::filesystem::path _path;
};

/** All .vaqart records under `dir`, sorted. */
inline std::vector<std::filesystem::path>
storeRecords(const std::filesystem::path &dir)
{
    std::vector<std::filesystem::path> records;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".vaqart")
            records.push_back(entry.path());
    }
    std::sort(records.begin(), records.end());
    return records;
}

/** A small program exercising 1q, 2q, parameterized and measure
 *  gates — enough structure for layouts and touched sets to be
 *  non-trivial. */
inline circuit::Circuit
storeTestCircuit(int num_qubits = 3)
{
    circuit::Circuit c(num_qubits);
    c.h(0);
    for (int q = 1; q < num_qubits; ++q)
        c.cx(q - 1, q);
    c.rz(num_qubits - 1, 0.1234567890123456);
    for (int q = 0; q < num_qubits; ++q)
        c.measure(q);
    return c;
}

} // namespace vaq::test

#endif // VAQ_TESTS_STORE_SUPPORT_HPP
