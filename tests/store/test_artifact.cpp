/**
 * @file
 * Compile-artifact record tests: keys, bit-exact serialization
 * round-trips, the corruption-tolerance contract (any damage is a
 * miss, never a throw), touched-set extraction and the delta-reuse
 * rule.
 */
#include "store/artifact.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "circuit/qasm.hpp"
#include "core/mapper.hpp"
#include "store_test_support.hpp"

namespace vaq::store
{
namespace
{

/** One real compile to build artifacts from. */
struct Compiled
{
    topology::CouplingGraph graph = topology::linear(6);
    calibration::Snapshot snapshot = test::uniformSnapshot(graph);
    circuit::Circuit logical = test::storeTestCircuit(3);
    core::PolicySpec spec{.name = "vqa+vqm"};
    core::MappedCircuit mapped;

    Compiled()
        : mapped(core::makeMapper(spec).compile(logical, graph,
                                                snapshot))
    {
        // Distinct per-qubit values so dependency comparisons can
        // tell qubits apart.
        for (int q = 0; q < graph.numQubits(); ++q)
            snapshot.qubit(q).readoutError = 0.01 + 0.001 * q;
        mapped = core::makeMapper(spec).compile(logical, graph,
                                                snapshot);
    }

    ArtifactKey key() const
    {
        return makeArtifactKey(logical, graph, snapshot, spec);
    }

    CompileArtifact artifact(double pst = 0.875) const
    {
        return makeArtifact(mapped, pst, 1, 2, graph, snapshot);
    }
};

TEST(ArtifactKey, CoversAllFourAxes)
{
    const Compiled c;
    const ArtifactKey key = c.key();
    ArtifactKey other = key;
    EXPECT_EQ(key.combined(), other.combined());

    other.circuitHash ^= 1;
    EXPECT_NE(key.combined(), other.combined());
    other = key;
    other.snapshotHash ^= 1;
    EXPECT_NE(key.combined(), other.combined());
    // The snapshot axis is excluded from the delta-scan base.
    EXPECT_EQ(key.baseHash(), other.baseHash());
    other = key;
    other.topologyHash ^= 1;
    EXPECT_NE(key.combined(), other.combined());
    EXPECT_NE(key.baseHash(), other.baseHash());
    other = key;
    other.policyHash ^= 1;
    EXPECT_NE(key.combined(), other.combined());
    EXPECT_NE(key.baseHash(), other.baseHash());
}

TEST(ArtifactKey, PolicySpecHashSeparatesSpecs)
{
    const std::uint64_t base =
        policySpecHash({.name = "vqa+vqm"});
    EXPECT_NE(base, policySpecHash({.name = "vqm"}));
    EXPECT_NE(base, policySpecHash({.name = "vqa+vqm", .mah = 4}));
    EXPECT_NE(base, policySpecHash({.name = "vqa+vqm", .seed = 1}));
    EXPECT_EQ(base, policySpecHash({.name = "vqa+vqm"}));
}

TEST(Artifact, RoundTripsBitExactly)
{
    const Compiled c;
    // Exercise doubles QASM-style decimal formatting would mangle:
    // a PST with no short decimal form plus signed-zero params.
    CompileArtifact artifact = c.artifact(0.1 + 0.2);
    const ArtifactKey key = c.key();

    const std::string text = serializeArtifact(key, artifact);
    const auto parsed = parseArtifact(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first, key);

    const CompileArtifact &back = parsed->second;
    EXPECT_EQ(back.numProgQubits, artifact.numProgQubits);
    EXPECT_EQ(back.numPhysQubits, artifact.numPhysQubits);
    EXPECT_EQ(back.physical, artifact.physical);
    EXPECT_EQ(back.initialLayout, artifact.initialLayout);
    EXPECT_EQ(back.finalLayout, artifact.finalLayout);
    EXPECT_EQ(back.insertedSwaps, artifact.insertedSwaps);
    EXPECT_EQ(back.policyUsed, artifact.policyUsed);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.analyticPst),
              std::bit_cast<std::uint64_t>(artifact.analyticPst));
    EXPECT_EQ(back.mappedLintErrors, 1u);
    EXPECT_EQ(back.mappedLintWarnings, 2u);
    EXPECT_EQ(back.touchedQubits, artifact.touchedQubits);
    EXPECT_EQ(back.touchedLinks, artifact.touchedLinks);
    EXPECT_EQ(back.qubitDeps, artifact.qubitDeps);
    EXPECT_EQ(back.linkDeps, artifact.linkDeps);
    EXPECT_EQ(back.qubitWeights, artifact.qubitWeights);
    EXPECT_EQ(back.linkWeights, artifact.linkWeights);

    // And the reconstructed MappedCircuit matches the original.
    const core::MappedCircuit rebuilt = toMapped(back);
    EXPECT_EQ(circuit::toQasm(rebuilt.physical),
              circuit::toQasm(c.mapped.physical));
    EXPECT_EQ(rebuilt.initial, c.mapped.initial);
    EXPECT_EQ(rebuilt.final, c.mapped.final);
    EXPECT_EQ(rebuilt.insertedSwaps, c.mapped.insertedSwaps);
    EXPECT_EQ(rebuilt.policyName, c.mapped.policyName);
}

TEST(Artifact, ParameterizedAnglesSurviveExactly)
{
    // formatDouble(x, 12) in the QASM writer is lossy; the record
    // format must not be. Use an angle with a long binary tail.
    const double angle = std::nextafter(0.1234567890123456, 1.0);
    Compiled c;
    circuit::Circuit withAngle(c.mapped.physical.numQubits());
    withAngle.rz(0, angle);
    withAngle.measure(0);
    core::MappedCircuit mapped(1, c.mapped.physical.numQubits());
    mapped.physical = withAngle;
    mapped.initial.assign(0, 0);
    mapped.final.assign(0, 0);
    const CompileArtifact artifact =
        makeArtifact(mapped, 0.0, 0, 0, c.graph, c.snapshot);
    const auto parsed =
        parseArtifact(serializeArtifact(c.key(), artifact));
    ASSERT_TRUE(parsed.has_value());
    const double back = parsed->second.physical.gates()[0].param;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(angle));
}

TEST(Artifact, TruncationIsAMissAtEveryLength)
{
    const Compiled c;
    const std::string text =
        serializeArtifact(c.key(), c.artifact());
    for (std::size_t len = 0; len < text.size();
         len += std::max<std::size_t>(1, text.size() / 97)) {
        const auto parsed = parseArtifact(text.substr(0, len));
        EXPECT_FALSE(parsed.has_value())
            << "truncated to " << len << " of " << text.size();
    }
    EXPECT_TRUE(parseArtifact(text).has_value());
}

TEST(Artifact, ByteCorruptionNeverThrowsAndNeverLies)
{
    const Compiled c;
    const CompileArtifact original = c.artifact();
    const std::string text = serializeArtifact(c.key(), original);
    for (std::size_t i = 0; i < text.size(); ++i) {
        std::string damaged = text;
        damaged[i] ^= 0x01;
        // Contract: a damaged record may only ever degrade to a
        // miss — or, if the damage is semantically invisible
        // (e.g. a whitespace byte), parse to the identical record.
        const auto parsed = parseArtifact(damaged);
        if (parsed.has_value()) {
            EXPECT_EQ(parsed->first, c.key()) << "byte " << i;
            EXPECT_EQ(parsed->second.physical, original.physical)
                << "byte " << i;
        }
    }
}

TEST(Artifact, GarbageInputsAreMisses)
{
    EXPECT_FALSE(parseArtifact("").has_value());
    EXPECT_FALSE(parseArtifact("not a record").has_value());
    EXPECT_FALSE(parseArtifact("vaqart 1\n").has_value());
    EXPECT_FALSE(
        parseArtifact(std::string(4096, '\xff')).has_value());
}

TEST(Artifact, VersionSkewIsAMiss)
{
    // A future-version record must load as a miss, not a crash. The
    // damaged version also breaks the checksum, so additionally
    // verify against a record whose checksum is recomputed: bump
    // the version digit and re-serialize through the public API by
    // checking the constant is what the format writes.
    const Compiled c;
    std::string text = serializeArtifact(c.key(), c.artifact());
    ASSERT_EQ(text.rfind("vaqart 2\n", 0), 0u);
    text[7] = '9';
    EXPECT_FALSE(parseArtifact(text).has_value());
}

TEST(Artifact, TouchedSetsComeFromTheMappedCircuit)
{
    const Compiled c;
    const CompileArtifact artifact = c.artifact();
    // Every touched qubit/link is actually used by the physical
    // circuit, and the 3-qubit program cannot touch all 6 machine
    // qubits without swaps landing everywhere.
    ASSERT_FALSE(artifact.touchedQubits.empty());
    ASSERT_FALSE(artifact.touchedLinks.empty());
    EXPECT_EQ(artifact.qubitDeps.size(),
              artifact.touchedQubits.size() * 4);
    EXPECT_EQ(artifact.linkDeps.size(),
              artifact.touchedLinks.size());
    for (const int q : artifact.touchedQubits) {
        bool used = false;
        for (const circuit::Gate &g : c.mapped.physical.gates())
            used = used || g.touches(q);
        EXPECT_TRUE(used) << "qubit " << q;
    }
}

TEST(Artifact, ReusableUnderTracksOnlyTouchedHardware)
{
    const Compiled c;
    const CompileArtifact artifact = c.artifact();
    EXPECT_TRUE(reusableUnder(artifact, c.snapshot));

    // Find an untouched qubit (linear(6) with a 3-qubit program
    // always leaves some) and drift it: still reusable.
    int untouched = -1;
    for (int q = 0; q < c.graph.numQubits(); ++q) {
        if (std::find(artifact.touchedQubits.begin(),
                      artifact.touchedQubits.end(),
                      q) == artifact.touchedQubits.end())
            untouched = q;
    }
    ASSERT_GE(untouched, 0);
    calibration::Snapshot drifted = c.snapshot;
    drifted.qubit(untouched).t1Us *= 0.5;
    drifted.qubit(untouched).readoutError = 0.25;
    EXPECT_TRUE(reusableUnder(artifact, drifted));

    // Drift a touched qubit: not reusable.
    calibration::Snapshot touched = c.snapshot;
    touched.qubit(artifact.touchedQubits.front()).readoutError =
        0.25;
    EXPECT_FALSE(reusableUnder(artifact, touched));

    // Drift a touched link: not reusable.
    calibration::Snapshot link = c.snapshot;
    link.setLinkError(artifact.touchedLinks.front(), 0.2);
    EXPECT_FALSE(reusableUnder(artifact, link));

    // An untouched link may drift freely.
    std::size_t freeLink = c.graph.linkCount();
    for (std::size_t l = 0; l < c.graph.linkCount(); ++l) {
        if (std::find(artifact.touchedLinks.begin(),
                      artifact.touchedLinks.end(),
                      l) == artifact.touchedLinks.end())
            freeLink = l;
    }
    if (freeLink < c.graph.linkCount()) {
        calibration::Snapshot other = c.snapshot;
        other.setLinkError(freeLink, 0.3);
        EXPECT_TRUE(reusableUnder(artifact, other));
    }

    // Gate durations are dependencies too (coherence model).
    calibration::Snapshot slower = c.snapshot;
    slower.durations.twoQubitNs *= 2.0;
    EXPECT_FALSE(reusableUnder(artifact, slower));

    // Signed-zero drift is no drift at all.
    calibration::Snapshot zero = c.snapshot;
    zero.setLinkError(artifact.touchedLinks.front(), 0.0);
    CompileArtifact zeroArtifact = artifact;
    const auto it = std::find(zeroArtifact.touchedLinks.begin(),
                              zeroArtifact.touchedLinks.end(),
                              artifact.touchedLinks.front());
    zeroArtifact
        .linkDeps[it - zeroArtifact.touchedLinks.begin()] = -0.0;
    EXPECT_TRUE(reusableUnder(zeroArtifact, zero));
}

TEST(Artifact, StalenessAssessmentFromSerializedWeights)
{
    const Compiled c;
    const CompileArtifact artifact = c.artifact();
    ASSERT_EQ(artifact.qubitWeights.size(),
              3 * artifact.touchedQubits.size());
    ASSERT_EQ(artifact.linkWeights.size(),
              artifact.touchedLinks.size());

    // Unchanged snapshot: bound exactly 0 (touched-set parity).
    {
        const auto assess =
            assessArtifactStaleness(artifact, c.snapshot);
        EXPECT_TRUE(assess.certifiable);
        EXPECT_EQ(assess.bound(), 0.0);
    }

    // T2-only recalibration: provably harmless, bound exactly 0 —
    // where reusableUnder() already gives up.
    {
        calibration::Snapshot t2 = c.snapshot;
        for (int q = 0; q < c.graph.numQubits(); ++q)
            t2.qubit(q).t2Us *= 0.5;
        EXPECT_FALSE(reusableUnder(artifact, t2));
        const auto assess = assessArtifactStaleness(artifact, t2);
        EXPECT_TRUE(assess.certifiable);
        EXPECT_EQ(assess.bound(), 0.0);
    }

    // A small touched-parameter drift: finite bound containing the
    // exact shift, and the round-tripped record assesses to the
    // same certificate bit-for-bit.
    {
        calibration::Snapshot drifted = c.snapshot;
        drifted.qubit(artifact.touchedQubits.front())
            .readoutError += 1e-5;
        const auto assess =
            assessArtifactStaleness(artifact, drifted);
        EXPECT_TRUE(assess.certifiable);
        EXPECT_TRUE(assess.anyDelta);
        EXPECT_GT(assess.bound(), 0.0);
        EXPECT_LE(std::abs(assess.deltaLogPst), assess.bound());

        const auto parsed = parseArtifact(
            serializeArtifact(c.key(), artifact));
        ASSERT_TRUE(parsed.has_value());
        const auto reassessed =
            assessArtifactStaleness(parsed->second, drifted);
        EXPECT_EQ(reassessed.bound(), assess.bound());
        EXPECT_EQ(reassessed.deltaLogPst, assess.deltaLogPst);
    }

    // Duration drift voids the certificate.
    {
        calibration::Snapshot slower = c.snapshot;
        slower.durations.measureNs += 10.0;
        EXPECT_FALSE(assessArtifactStaleness(artifact, slower)
                         .certifiable);
    }

    // A record with malformed weight arrays (e.g. a version-skew
    // survivor) is never certified.
    {
        CompileArtifact bad = artifact;
        bad.qubitWeights.pop_back();
        EXPECT_FALSE(assessArtifactStaleness(bad, c.snapshot)
                         .certifiable);
    }
}

} // namespace
} // namespace vaq::store
