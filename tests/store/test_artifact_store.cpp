/**
 * @file
 * ArtifactStore tests: persistence with atomic publish, warm
 * starts, corruption degrading to misses, LRU eviction removing
 * files, and the delta-reuse lookup path.
 */
#include "store/artifact_store.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "core/mapper.hpp"
#include "store_test_support.hpp"

namespace vaq::store
{
namespace
{

namespace fs = std::filesystem;

/** Fixture: one compiled program over linear(6), per-qubit-distinct
 *  calibration so delta comparisons bite. */
class ArtifactStoreTest : public ::testing::Test
{
  protected:
    ArtifactStoreTest()
        : graph(topology::linear(6)),
          snapshot(test::uniformSnapshot(graph)),
          logical(test::storeTestCircuit(3))
    {
        for (int q = 0; q < graph.numQubits(); ++q)
            snapshot.qubit(q).readoutError = 0.01 + 0.001 * q;
        for (std::size_t l = 0; l < graph.linkCount(); ++l)
            snapshot.setLinkError(l, 0.03 + 0.002 *
                                         static_cast<double>(l));
    }

    ArtifactKey keyFor(const calibration::Snapshot &snap) const
    {
        return makeArtifactKey(logical, graph, snap, spec);
    }

    CompileArtifact compileArtifact() const
    {
        const core::MappedCircuit mapped =
            core::makeMapper(spec).compile(logical, graph,
                                           snapshot);
        return makeArtifact(mapped, 0.9, 0, 0, graph, snapshot);
    }

    test::TempStoreDir dir;
    topology::CouplingGraph graph;
    calibration::Snapshot snapshot;
    circuit::Circuit logical;
    core::PolicySpec spec{.name = "vqa+vqm"};
};

TEST_F(ArtifactStoreTest, MemoryOnlyPutGet)
{
    ArtifactStore store(StoreOptions{}); // no directory
    const ArtifactKey key = keyFor(snapshot);
    EXPECT_FALSE(store.get(key).has_value());
    store.put(key, compileArtifact());
    const auto hit = store.get(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->analyticPst, 0.9);
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.exactHits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST_F(ArtifactStoreTest, PersistsAtomicallyAndWarmStarts)
{
    const ArtifactKey key = keyFor(snapshot);
    {
        ArtifactStore store(StoreOptions{.directory = dir.str()});
        store.put(key, compileArtifact());
    }
    const auto records = test::storeRecords(dir.path());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].filename().string(), key.fileName());
    // No torn-write droppings.
    for (const auto &entry : fs::directory_iterator(dir.path()))
        EXPECT_NE(entry.path().extension(), ".tmp");

    // A new process (new store) warm-starts from the directory.
    ArtifactStore reopened(StoreOptions{.directory = dir.str()});
    EXPECT_EQ(reopened.stats().warmLoaded, 1u);
    const auto hit = reopened.get(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->analyticPst, 0.9);
}

TEST_F(ArtifactStoreTest, CorruptAndTruncatedRecordsAreMisses)
{
    const ArtifactKey key = keyFor(snapshot);
    {
        ArtifactStore store(StoreOptions{.directory = dir.str()});
        store.put(key, compileArtifact());
    }
    const auto records = test::storeRecords(dir.path());
    ASSERT_EQ(records.size(), 1u);

    // Flip a byte in the middle of the record.
    {
        std::fstream f(records[0],
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        f.seekp(120);
        f.put('#');
    }
    ArtifactStore corrupted(StoreOptions{.directory = dir.str()});
    EXPECT_EQ(corrupted.stats().warmLoaded, 0u);
    EXPECT_EQ(corrupted.stats().corruptRecords, 1u);
    EXPECT_FALSE(corrupted.get(key).has_value());
    // ... and warm start removed the damaged file.
    EXPECT_TRUE(test::storeRecords(dir.path()).empty());

    // Truncate a fresh copy instead.
    {
        ArtifactStore store(StoreOptions{.directory = dir.str()});
        store.put(key, compileArtifact());
    }
    fs::resize_file(test::storeRecords(dir.path()).at(0), 64);
    ArtifactStore truncated(StoreOptions{.directory = dir.str()});
    EXPECT_EQ(truncated.stats().corruptRecords, 1u);
    EXPECT_FALSE(truncated.get(key).has_value());

    // A put over the same key heals the record.
    truncated.put(key, compileArtifact());
    ArtifactStore healed(StoreOptions{.directory = dir.str()});
    EXPECT_TRUE(healed.get(key).has_value());
}

TEST_F(ArtifactStoreTest, CrashRecoverySweepsDroppings)
{
    // Simulate a crash mid-publish: a truncated .tmp that never
    // reached its rename, next to a half-written published record.
    const ArtifactKey key = keyFor(snapshot);
    {
        ArtifactStore store(StoreOptions{.directory = dir.str()});
        store.put(key, compileArtifact());
    }
    const auto records = test::storeRecords(dir.path());
    ASSERT_EQ(records.size(), 1u);
    const fs::path tmp = records[0].string() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        out << "vaqart half-writ";
    }
    fs::resize_file(records[0], 32); // torn published record

    ArtifactStore recovered(
        StoreOptions{.directory = dir.str()});
    // Both casualties are misses, counted, and swept from disk.
    EXPECT_EQ(recovered.stats().warmLoaded, 0u);
    EXPECT_EQ(recovered.stats().corruptRecords, 1u);
    EXPECT_EQ(recovered.stats().staleTmpCleaned, 1u);
    EXPECT_FALSE(recovered.get(key).has_value());
    EXPECT_FALSE(fs::exists(tmp));
    EXPECT_TRUE(test::storeRecords(dir.path()).empty());

    // The store keeps working in the swept directory, and the
    // re-published record survives the next warm start.
    recovered.put(key, compileArtifact());
    ArtifactStore reopened(StoreOptions{.directory = dir.str()});
    EXPECT_EQ(reopened.stats().warmLoaded, 1u);
    EXPECT_EQ(reopened.stats().staleTmpCleaned, 0u);
    EXPECT_TRUE(reopened.get(key).has_value());
}

TEST_F(ArtifactStoreTest, EvictionRemovesFilesLru)
{
    ArtifactStore store(StoreOptions{.directory = dir.str(),
                                     .maxEntries = 2});
    const CompileArtifact artifact = compileArtifact();
    std::vector<ArtifactKey> keys;
    for (int i = 0; i < 3; ++i) {
        calibration::Snapshot cycle = snapshot;
        cycle.qubit(0).t1Us += i; // distinct snapshot axis
        keys.push_back(keyFor(cycle));
        store.put(keys.back(), artifact);
    }
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(test::storeRecords(dir.path()).size(), 2u);
    // keys[0] was least recently used; exact-get misses do not
    // resurrect it from the (deleted) file.
    EXPECT_FALSE(store.get(keys[0]).has_value());
    EXPECT_TRUE(store.get(keys[1]).has_value());
    EXPECT_TRUE(store.get(keys[2]).has_value());
}

TEST_F(ArtifactStoreTest, DeltaReuseServesAcrossCycles)
{
    ArtifactStore store(StoreOptions{.directory = dir.str()});
    const CompileArtifact artifact = compileArtifact();
    store.put(keyFor(snapshot), artifact);

    // New cycle drifting only hardware outside the touched set.
    int untouched = -1;
    for (int q = 0; q < graph.numQubits(); ++q) {
        if (std::find(artifact.touchedQubits.begin(),
                      artifact.touchedQubits.end(),
                      q) == artifact.touchedQubits.end())
            untouched = q;
    }
    ASSERT_GE(untouched, 0);
    calibration::Snapshot benign = snapshot;
    benign.qubit(untouched).t1Us = 11.0;
    ASSERT_NE(keyFor(benign).combined(),
              keyFor(snapshot).combined());

    bool viaDelta = false;
    const auto hit =
        store.getOrDelta(keyFor(benign), benign, &viaDelta);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(viaDelta);
    EXPECT_EQ(store.stats().deltaReuse, 1u);

    // The alias makes the rest of the cycle exact, with no second
    // file on disk.
    const auto again =
        store.getOrDelta(keyFor(benign), benign, &viaDelta);
    ASSERT_TRUE(again.has_value());
    EXPECT_FALSE(viaDelta);
    EXPECT_EQ(store.stats().exactHits, 1u);
    EXPECT_EQ(test::storeRecords(dir.path()).size(), 1u);

    // A cycle that drifts a touched link must miss.
    calibration::Snapshot breaking = snapshot;
    breaking.setLinkError(artifact.touchedLinks.front(), 0.2);
    EXPECT_FALSE(store
                     .getOrDelta(keyFor(breaking), breaking,
                                 &viaDelta)
                     .has_value());
    EXPECT_FALSE(viaDelta);
    EXPECT_EQ(store.stats().misses, 1u);

    // Delta reuse can be disabled.
    ArtifactStore strict(StoreOptions{.deltaReuse = false});
    strict.put(keyFor(snapshot), artifact);
    EXPECT_FALSE(
        strict.getOrDelta(keyFor(benign), benign).has_value());
}

TEST_F(ArtifactStoreTest, BoundReuseServesCertifiedStaleness)
{
    ArtifactStore store(
        StoreOptions{.directory = dir.str(), .stalenessTol = 1e-3});
    const CompileArtifact artifact = compileArtifact();
    store.put(keyFor(snapshot), artifact);

    // Drift a touched qubit's readout by 1e-6: the touched-set rule
    // misses, the certificate stays far within 1e-3.
    calibration::Snapshot drifted = snapshot;
    drifted.qubit(artifact.touchedQubits.front()).readoutError +=
        1e-6;
    ASSERT_FALSE(reusableUnder(artifact, drifted));

    DeltaServeInfo info;
    const auto hit =
        store.getOrDelta(keyFor(drifted), drifted, info);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(info.boundReuse);
    EXPECT_FALSE(info.viaDelta);
    EXPECT_GT(info.stalenessBound, 0.0);
    EXPECT_LE(info.stalenessBound, 1e-3);
    // The served PST carries the exact analytic shift.
    EXPECT_DOUBLE_EQ(hit->analyticPst,
                     artifact.analyticPst *
                         std::exp(info.deltaLogPst));
    EXPECT_DOUBLE_EQ(hit->servedStalenessBound,
                     info.stalenessBound);
    EXPECT_EQ(store.stats().boundReuse, 1u);
    EXPECT_EQ(store.stats().hits, 1u);

    // Bound serves are never aliased: the same lookup serves on the
    // bound again (always measured against the compile-time
    // baseline), no exact-hit entry and no new file appear.
    const auto again =
        store.getOrDelta(keyFor(drifted), drifted, info);
    ASSERT_TRUE(again.has_value());
    EXPECT_TRUE(info.boundReuse);
    EXPECT_EQ(store.stats().boundReuse, 2u);
    EXPECT_EQ(store.stats().exactHits, 0u);
    EXPECT_EQ(test::storeRecords(dir.path()).size(), 1u);
}

TEST_F(ArtifactStoreTest, BoundReuseRespectsTheTolerance)
{
    const CompileArtifact artifact = compileArtifact();

    // T2-only recalibration certifies at bound 0 under any
    // positive tolerance.
    calibration::Snapshot t2Only = snapshot;
    for (int q = 0; q < graph.numQubits(); ++q)
        t2Only.qubit(q).t2Us *= 0.5;

    // A hard excursion on a touched link exceeds every tolerance
    // in the sweep.
    calibration::Snapshot excursion = snapshot;
    excursion.setLinkError(artifact.touchedLinks.front(), 0.2);

    {
        ArtifactStore store(StoreOptions{.stalenessTol = 1e-6});
        store.put(keyFor(snapshot), artifact);
        DeltaServeInfo info;
        const auto hit =
            store.getOrDelta(keyFor(t2Only), t2Only, info);
        ASSERT_TRUE(hit.has_value());
        EXPECT_TRUE(info.boundReuse);
        EXPECT_EQ(info.stalenessBound, 0.0);
        EXPECT_EQ(info.deltaLogPst, 0.0);
        EXPECT_DOUBLE_EQ(hit->analyticPst, artifact.analyticPst);

        EXPECT_FALSE(store
                         .getOrDelta(keyFor(excursion), excursion,
                                     info)
                         .has_value());
        EXPECT_FALSE(info.boundReuse);
        EXPECT_EQ(store.stats().misses, 1u);
    }

    // tol = 0 (the default) disables the fallback entirely — the
    // legacy touched-set behavior, even for the provably harmless
    // T2-only cycle.
    {
        ArtifactStore store(StoreOptions{});
        store.put(keyFor(snapshot), artifact);
        DeltaServeInfo info;
        EXPECT_FALSE(
            store.getOrDelta(keyFor(t2Only), t2Only, info)
                .has_value());
        EXPECT_FALSE(info.boundReuse);
        EXPECT_EQ(store.stats().boundReuse, 0u);
    }
}

TEST_F(ArtifactStoreTest, DifferentPolicyNeverCrossesOver)
{
    ArtifactStore store(StoreOptions{});
    store.put(keyFor(snapshot), compileArtifact());
    const core::PolicySpec other{.name = "baseline"};
    const ArtifactKey otherKey =
        makeArtifactKey(logical, graph, snapshot, other);
    EXPECT_FALSE(store.get(otherKey).has_value());
    EXPECT_FALSE(
        store.getOrDelta(otherKey, snapshot).has_value());
}

} // namespace
} // namespace vaq::store
