/**
 * @file
 * Unified compile entry-point suite: every public way to compile a
 * circuit — Mapper::compile (deprecated shim), core::compile /
 * compileCircuit (the entry point), and BatchCompiler — must
 * produce bit-identical mappings for the same input, and must match
 * the golden outputs captured from the pre-redesign vaqc binary.
 */
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "calibration/synthetic.hpp"
#include "circuit/qasm.hpp"
#include "core/batch_compiler.hpp"
#include "core/compile_request.hpp"
#include "core/mapper.hpp"
#include "core/movement_planner.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

circuit::Circuit
loadFixture(const std::string &name)
{
    return circuit::fromQasm(readFile(
        std::string(VAQ_TEST_DATA_DIR) + "/service/fixtures/" +
        name + ".qasm"));
}

calibration::Snapshot
seededSnapshot(const topology::CouplingGraph &graph)
{
    // The goldens were captured with `vaqc --synthetic-seed 7`.
    return calibration::SyntheticSource(
               graph, calibration::SyntheticParams{}, 7)
        .nextCycle();
}

struct GoldenCase
{
    const char *program;
    const char *machine; ///< "q20" | "q5"
    const char *policy;
    const char *policySlug; ///< '+' -> '_' for the file name
};

const GoldenCase kGoldenCases[] = {
    {"bv4", "q20", "baseline", "baseline"},
    {"bv4", "q20", "vqm", "vqm"},
    {"bv4", "q20", "vqa+vqm", "vqa_vqm"},
    {"bv4", "q5", "baseline", "baseline"},
    {"bv4", "q5", "vqm", "vqm"},
    {"bv4", "q5", "vqa+vqm", "vqa_vqm"},
    {"ghz6", "q20", "baseline", "baseline"},
    {"ghz6", "q20", "vqm", "vqm"},
    {"ghz6", "q20", "vqa+vqm", "vqa_vqm"},
    {"qft5", "q20", "baseline", "baseline"},
    {"qft5", "q20", "vqm", "vqm"},
    {"qft5", "q20", "vqa+vqm", "vqa_vqm"},
    {"qft5", "q5", "baseline", "baseline"},
    {"qft5", "q5", "vqm", "vqm"},
    {"qft5", "q5", "vqa+vqm", "vqa_vqm"},
};

topology::CouplingGraph
machineFor(const std::string &name)
{
    return name == "q5" ? topology::ibmQ5Tenerife()
                        : topology::ibmQ20Tokyo();
}

TEST(CompileApi, MatchesPreRedesignGoldensBitIdentically)
{
    for (const GoldenCase &tc : kGoldenCases) {
        SCOPED_TRACE(std::string(tc.program) + " on " + tc.machine +
                     " with " + tc.policy);
        const topology::CouplingGraph machine =
            machineFor(tc.machine);
        const calibration::Snapshot snapshot =
            seededSnapshot(machine);
        const circuit::Circuit logical = loadFixture(tc.program);
        const core::Mapper mapper = core::makeMapper(
            {.name = tc.policy, .mah = core::kUnlimitedHops});
        const core::MappedCircuit mapped =
            mapper.compile(logical, machine, snapshot);
        const std::string golden = readFile(
            std::string(VAQ_TEST_DATA_DIR) + "/service/golden/" +
            tc.program + "." + tc.machine + "." + tc.policySlug +
            ".golden.qasm");
        EXPECT_EQ(circuit::toQasm(mapped.physical), golden);
    }
}

TEST(CompileApi, AllEntryPointsAgreeBitIdentically)
{
    const topology::CouplingGraph machine = topology::ibmQ20Tokyo();
    const calibration::Snapshot snapshot = seededSnapshot(machine);
    const circuit::Circuit logical = loadFixture("qft5");
    const core::PolicySpec spec{.name = "vqa+vqm"};
    const core::Mapper mapper = core::makeMapper(spec);

    // 1. The deprecated Mapper::compile shim.
    const core::MappedCircuit viaMapper =
        mapper.compile(logical, machine, snapshot);

    // 2. core::compile, the unified entry point, in the shim's
    //    Trust/fail-fast configuration.
    core::CompileRequest trusting;
    trusting.circuit = logical;
    trusting.policy = spec;
    trusting.maxRetries = 0;
    trusting.calibration = core::CalibrationHandling::Trust;
    trusting.scoreResult = false;
    trusting.failFast = true;
    const core::CompileResult viaCompile =
        core::compile(trusting, machine, snapshot);
    ASSERT_TRUE(viaCompile.ok());

    // 3. core::compile in the daemon's contained configuration
    //    (sanitize + retries allowed) — a clean snapshot must not
    //    route differently.
    core::CompileRequest contained;
    contained.circuit = logical;
    contained.policy = spec;
    const core::CompileResult viaService =
        core::compile(contained, machine, snapshot);
    ASSERT_TRUE(viaService.ok());
    EXPECT_EQ(viaService.attempts, 1);
    EXPECT_GT(viaService.analyticPst, 0.0);

    // 4. BatchCompiler, one job.
    core::BatchCompiler batch(mapper, machine, {});
    const std::vector<core::BatchResult> viaBatch =
        batch.compileAll({logical}, {snapshot});
    ASSERT_EQ(viaBatch.size(), 1u);
    ASSERT_TRUE(viaBatch[0].ok());

    const std::string reference = circuit::toQasm(viaMapper.physical);
    EXPECT_EQ(circuit::toQasm(viaCompile.mapped.physical),
              reference);
    EXPECT_EQ(circuit::toQasm(viaService.mapped.physical),
              reference);
    EXPECT_EQ(circuit::toQasm(viaBatch[0].mapped.physical),
              reference);
    EXPECT_EQ(viaCompile.mapped.initial.progToPhys(),
              viaMapper.initial.progToPhys());
    EXPECT_EQ(viaService.mapped.initial.progToPhys(),
              viaMapper.initial.progToPhys());
    EXPECT_EQ(viaBatch[0].mapped.initial.progToPhys(),
              viaMapper.initial.progToPhys());
}

TEST(CompileApi, LegacyBatchResultConstructorStillWorks)
{
    // Old call sites constructed BatchResult from (indices, mapped,
    // pst); the CompileResult-derived type must keep that working.
    core::MappedCircuit mapped(2, 5);
    mapped.insertedSwaps = 3;
    const core::BatchResult legacy(1, 2, std::move(mapped), 0.75);
    EXPECT_EQ(legacy.circuit, 1u);
    EXPECT_EQ(legacy.snapshot, 2u);
    EXPECT_EQ(legacy.mapped.insertedSwaps, 3u);
    EXPECT_DOUBLE_EQ(legacy.analyticPst, 0.75);
    EXPECT_EQ(legacy.status, core::JobStatus::Ok);
    EXPECT_TRUE(legacy.ok());
}

TEST(CompileApi, FailFastRejectionsThrowContainedOnesReport)
{
    const topology::CouplingGraph machine = topology::ibmQ5Tenerife();
    calibration::Snapshot poisoned = test::uniformSnapshot(machine);
    poisoned.qubit(0).t1Us = -1.0; // invalid: fails validate()

    core::CompileRequest request;
    request.circuit = loadFixture("bv4");
    request.policy = {.name = "baseline"};

    // Contained (service/batch semantics): Failed + Calibration.
    request.calibration = core::CalibrationHandling::Validate;
    const core::CompileResult contained =
        core::compile(request, machine, poisoned);
    EXPECT_EQ(contained.status, core::JobStatus::Failed);
    EXPECT_EQ(contained.errorCategory, ErrorCategory::Calibration);
    EXPECT_EQ(contained.attempts, 0);

    // failFast (legacy semantics): the same input throws.
    request.failFast = true;
    EXPECT_THROW(core::compile(request, machine, poisoned),
                 CalibrationError);
}

} // namespace
} // namespace vaq
