/**
 * @file
 * Deterministic JSON suite: the common/json.hpp document model and
 * the CompileRequest / CompileResult / PolicySpec wire forms it
 * carries. Byte-stable goldens pin the wire format; the parse-side
 * tests pin the unknown-field tolerance and the "$.field.path"
 * error convention.
 */
#include <string>

#include <gtest/gtest.h>

#include "calibration/synthetic.hpp"
#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/compile_request.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq
{
namespace
{

TEST(Json, WritesDeterministicallyInInsertionOrder)
{
    json::Value doc = json::Value::object();
    doc.set("zeta", json::Value::number(std::int64_t{1}));
    doc.set("alpha", json::Value::string("two"));
    json::Value inner = json::Value::array();
    inner.push(json::Value::boolean(true));
    inner.push(json::Value());
    doc.set("list", std::move(inner));
    // Insertion order, not alphabetical; integral doubles print
    // without a fraction.
    EXPECT_EQ(json::write(doc),
              "{\"zeta\":1,\"alpha\":\"two\",\"list\":[true,null]}");
    // set() replaces in place without reordering.
    doc.set("zeta", json::Value::number(2.5));
    EXPECT_EQ(json::write(doc),
              "{\"zeta\":2.5,\"alpha\":\"two\",\"list\":[true,null]}");
}

TEST(Json, RoundTripsThroughParse)
{
    const std::string text =
        "{\"a\":1,\"b\":[1,2,3],\"c\":{\"d\":\"x\\ny\"},"
        "\"e\":-0.125,\"f\":false,\"g\":null}";
    EXPECT_EQ(json::write(json::parse(text)), text);
}

TEST(Json, ParseErrorsCarrySourceLineAndColumn)
{
    try {
        json::parse("{\n  \"a\": nope\n}", "body");
        FAIL() << "expected parse error";
    } catch (const VaqError &e) {
        EXPECT_NE(std::string(e.message()).find("body:2:"),
                  std::string::npos)
            << e.message();
        EXPECT_EQ(e.category(), ErrorCategory::Usage);
    }
}

TEST(Json, RejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_THROW(json::parse(deep, "deep"), VaqError);
}

TEST(Json, CursorNamesTheFieldPathOnTypeMismatch)
{
    const json::Value doc =
        json::parse("{\"policy\":{\"mah\":\"four\"}}");
    const json::Cursor cursor(doc);
    try {
        cursor.at("policy").at("mah").asInt();
        FAIL() << "expected type error";
    } catch (const VaqError &e) {
        EXPECT_NE(std::string(e.message()).find("$.policy.mah"),
                  std::string::npos)
            << e.message();
    }
}

TEST(PolicySpecJson, RoundTripsAndRejectsNegativeSeed)
{
    core::PolicySpec spec{.name = "vqm", .mah = 4, .seed = 11};
    const std::string text = json::write(core::toJson(spec));
    EXPECT_EQ(text, "{\"name\":\"vqm\",\"mah\":4,\"seed\":11}");
    const core::PolicySpec parsed = core::policySpecFromJson(
        json::Cursor(json::parse(text)));
    EXPECT_EQ(parsed.name, spec.name);
    EXPECT_EQ(parsed.mah, spec.mah);
    EXPECT_EQ(parsed.seed, spec.seed);

    try {
        core::policySpecFromJson(
            json::Cursor(json::parse("{\"seed\":-3}")));
        FAIL() << "expected negative-seed rejection";
    } catch (const VaqError &e) {
        EXPECT_NE(std::string(e.message()).find("$.seed"),
                  std::string::npos)
            << e.message();
    }
}

core::CompileRequest
canonicalRequest()
{
    core::CompileRequest request;
    circuit::Circuit bell(2);
    bell.h(0);
    bell.cx(0, 1);
    bell.measure(0);
    bell.measure(1);
    request.circuit = bell;
    request.policy = {.name = "vqa+vqm", .mah = 4};
    // Pin the dynamic defaults (they follow global toggles) so the
    // golden below is state-independent.
    request.options.cacheEnabled = true;
    request.options.telemetryEnabled = false;
    request.clientId = "golden";
    request.deadlineMs = 250.0;
    return request;
}

TEST(CompileRequestJson, GoldenBytesAreStable)
{
    // The wire format, byte for byte. Changing this string is a
    // breaking protocol change — bump "version" when you do.
    const std::string golden =
        "{\"version\":1,\"clientId\":\"golden\","
        "\"qasm\":\"OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\n"
        "qreg q[2];\\ncreg c[2];\\nh q[0];\\ncx q[0],q[1];\\n"
        "measure q[0] -> c[0];\\nmeasure q[1] -> c[1];\\n\","
        "\"policy\":{\"name\":\"vqa+vqm\",\"mah\":4,\"seed\":0},"
        "\"options\":{\"cacheEnabled\":true,"
        "\"telemetryEnabled\":false,\"threads\":0,"
        "\"simEngine\":\"auto\"},"
        "\"lint\":{\"enabled\":false,\"disabled\":[],\"only\":[],"
        "\"failOn\":\"error\"},"
        "\"deadlineMs\":250,\"maxRetries\":2,"
        "\"calibration\":\"sanitize\",\"scoreResult\":true}";
    EXPECT_EQ(json::write(core::toJson(canonicalRequest())),
              golden);
}

TEST(CompileRequestJson, RoundTripsByteIdentically)
{
    const std::string once =
        json::write(core::toJson(canonicalRequest()));
    core::CompileRequest reparsed = core::compileRequestFromJson(
        json::Cursor(json::parse(once)));
    // telemetryEnabled's default tracks obs::enabled(); the parse
    // restores the serialized value, so the second trip must be
    // byte-identical.
    EXPECT_EQ(json::write(core::toJson(reparsed)), once);
}

TEST(CompileRequestJson, ToleratesUnknownFields)
{
    const core::CompileRequest request = core::compileRequestFromJson(
        json::Cursor(json::parse(
            "{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\\n\","
            "\"futureKnob\":42,"
            "\"policy\":{\"name\":\"baseline\",\"vendor\":{}}}")));
    EXPECT_EQ(request.policy.name, "baseline");
    EXPECT_EQ(request.circuit.numQubits(), 1);
}

TEST(CompileRequestJson, MissingQasmNamesThePath)
{
    try {
        core::compileRequestFromJson(
            json::Cursor(json::parse("{\"policy\":{}}")));
        FAIL() << "expected missing-field error";
    } catch (const VaqError &e) {
        EXPECT_NE(std::string(e.message()).find("$.qasm"),
                  std::string::npos)
            << e.message();
    }
}

TEST(CompileResultJson, RoundTripsACompiledResult)
{
    const topology::CouplingGraph graph = topology::ibmQ5Tenerife();
    const calibration::Snapshot snapshot =
        test::uniformSnapshot(graph);
    circuit::Circuit bell(2);
    bell.h(0);
    bell.cx(0, 1);
    bell.measure(0);
    bell.measure(1);

    core::CompileRequest request;
    request.policy = {.name = "vqm"};
    request.options.telemetryEnabled = false;
    core::CompileResult result =
        core::compileCircuit(bell, request, graph, snapshot);
    ASSERT_TRUE(result.ok());
    result.compileMs = 0.0; // wall-clock is not part of identity

    const std::string once = json::write(core::toJson(result));
    const core::CompileResult reparsed =
        core::compileResultFromJson(
            json::Cursor(json::parse(once)));
    EXPECT_EQ(json::write(core::toJson(reparsed)), once);
    EXPECT_EQ(reparsed.status, result.status);
    EXPECT_EQ(reparsed.policyUsed, result.policyUsed);
    EXPECT_DOUBLE_EQ(reparsed.analyticPst, result.analyticPst);
    EXPECT_EQ(circuit::toQasm(reparsed.mapped.physical),
              circuit::toQasm(result.mapped.physical));
    EXPECT_EQ(reparsed.mapped.initial.progToPhys(),
              result.mapped.initial.progToPhys());
    EXPECT_EQ(reparsed.mapped.final.progToPhys(),
              result.mapped.final.progToPhys());
}

TEST(CompileResultJson, LayoutWidthMismatchIsRejected)
{
    const topology::CouplingGraph graph = topology::ibmQ5Tenerife();
    core::CompileRequest request;
    request.policy = {.name = "baseline"};
    circuit::Circuit bell(2);
    bell.h(0);
    bell.cx(0, 1);
    core::CompileResult result = core::compileCircuit(
        bell, request, graph, test::uniformSnapshot(graph));
    ASSERT_TRUE(result.ok());
    json::Value doc = core::toJson(result);
    // Truncate finalLayout only: the reader must refuse rather than
    // fabricate a partial layout.
    json::Value shortLayout = json::Value::array();
    shortLayout.push(json::Value::number(std::int64_t{0}));
    json::Value mapped = *doc.find("mapped");
    mapped.set("finalLayout", std::move(shortLayout));
    doc.set("mapped", std::move(mapped));
    EXPECT_THROW(core::compileResultFromJson(
                     json::Cursor(doc)),
                 VaqError);
}

} // namespace
} // namespace vaq
