/**
 * @file
 * Daemon lifecycle suite: CompileService behind a real HttpServer
 * on an ephemeral loopback port, driven through httpExchange — the
 * same path vaqd serves. Covers concurrent mixed clients, quota
 * (429) and admission shedding (503), located 400s for malformed
 * bodies, graceful calibration rollover mid-flight (with artifact
 * delta reuse across the epoch), and the Prometheus /metrics
 * contract.
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/wait.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dataflow.hpp"
#include "calibration/csv_io.hpp"
#include "calibration/synthetic.hpp"
#include "circuit/qasm.hpp"
#include "common/json.hpp"
#include "core/compile_request.hpp"
#include "obs/metrics.hpp"
#include "service/http.hpp"
#include "service/service.hpp"
#include "store/artifact_store.hpp"
#include "test_support.hpp"
#include "topology/layouts.hpp"

namespace vaq::service
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::string
fixtureQasm(const std::string &name)
{
    return readFile(std::string(VAQ_TEST_DATA_DIR) +
                    "/service/fixtures/" + name + ".qasm");
}

/** Compile-request body for one fixture program. */
std::string
compileBody(const std::string &program,
            const std::string &policy = "vqa+vqm",
            const std::string &clientId = "")
{
    json::Value body = json::Value::object();
    if (!clientId.empty())
        body.set("clientId", json::Value::string(clientId));
    body.set("qasm", json::Value::string(fixtureQasm(program)));
    json::Value spec = json::Value::object();
    spec.set("name", json::Value::string(policy));
    body.set("policy", std::move(spec));
    return json::write(body);
}

json::Value
parseBody(const HttpResponse &response)
{
    return json::parse(response.body, "response");
}

/** Service + server on an ephemeral port, torn down in order. */
class ServiceFixture
{
  public:
    explicit ServiceFixture(ServiceOptions options = {},
                            store::ArtifactStore *store = nullptr,
                            HttpServerOptions http = {})
        : graph(topology::ibmQ20Tokyo()),
          snapshot(calibration::SyntheticSource(
                       graph, calibration::SyntheticParams{}, 7)
                       .nextCycle()),
          service(graph, snapshot, withTelemetry(options), store),
          server(http,
                 [this](const HttpRequest &request) {
                     return service.handle(request);
                 })
    {
        obs::setEnabled(true);
    }

    ~ServiceFixture() { server.stop(); }

    int port() const { return server.port(); }

    static ServiceOptions withTelemetry(ServiceOptions options)
    {
        options.compile.telemetryEnabled = true;
        return options;
    }

    topology::CouplingGraph graph;
    calibration::Snapshot snapshot; ///< epoch-1 snapshot, kept
    CompileService service;
    HttpServer server;
};

TEST(ServiceEndpoints, HealthzReportsTheCurrentEpoch)
{
    ServiceFixture fx;
    const HttpResponse response =
        httpExchange(fx.port(), "GET", "/healthz");
    EXPECT_EQ(response.status, 200);
    const json::Value body = parseBody(response);
    EXPECT_EQ(body.find("status")->asString(), "ok");
    EXPECT_EQ(body.find("epoch")->asNumber(), 1.0);
    // A clean epoch still carries the quarantine summary shape,
    // with nothing pruned.
    const json::Value *quarantine = body.find("quarantine");
    ASSERT_NE(quarantine, nullptr) << response.body;
    EXPECT_EQ(json::write(*quarantine->find("qubits")), "[]");
    EXPECT_EQ(json::write(*quarantine->find("links")), "[]");
}

TEST(ServiceEndpoints, HealthzListsQuarantineAfterDegradedEpoch)
{
    ServiceFixture fx;
    calibration::Snapshot poisoned = fx.snapshot;
    poisoned.qubit(0).t1Us =
        std::numeric_limits<double>::quiet_NaN();
    fx.service.rollover(poisoned); // sanitizes, prunes qubit 0

    const HttpResponse response =
        httpExchange(fx.port(), "GET", "/healthz");
    ASSERT_EQ(response.status, 200);
    const json::Value body = parseBody(response);
    EXPECT_EQ(body.find("epoch")->asNumber(), 2.0);
    EXPECT_EQ(body.find("calibration")->asString(), "degraded");

    const json::Value *quarantine = body.find("quarantine");
    ASSERT_NE(quarantine, nullptr) << response.body;
    const json::Value *qubits = quarantine->find("qubits");
    ASSERT_EQ(qubits->size(), 1u) << response.body;
    EXPECT_EQ(qubits->item(0).find("qubit")->asNumber(), 0.0);
    EXPECT_NE(qubits->item(0)
                  .find("reason")
                  ->asString()
                  .find("non-finite"),
              std::string::npos)
        << response.body;
    // The healthy region shrank by the pruned qubit.
    EXPECT_LT(quarantine->find("healthyQubits")->asNumber(),
              static_cast<double>(fx.graph.numQubits()));
}

TEST(ServiceEndpoints, CompileMatchesInProcessResultBitIdentically)
{
    ServiceFixture fx;
    const HttpResponse response = httpExchange(
        fx.port(), "POST", "/v1/compile", compileBody("bv4"));
    ASSERT_EQ(response.status, 200) << response.body;
    const core::CompileResult wire = core::compileResultFromJson(
        json::Cursor(parseBody(response)));
    EXPECT_EQ(wire.status, core::JobStatus::Ok);
    EXPECT_EQ(wire.policyUsed, "vqa+vqm");

    core::CompileRequest request;
    request.circuit = circuit::fromQasm(fixtureQasm("bv4"));
    request.policy = {.name = "vqa+vqm"};
    const core::CompileResult local =
        core::compile(request, fx.graph, fx.snapshot);
    EXPECT_EQ(circuit::toQasm(wire.mapped.physical),
              circuit::toQasm(local.mapped.physical));
    EXPECT_EQ(wire.mapped.initial.progToPhys(),
              local.mapped.initial.progToPhys());
    EXPECT_DOUBLE_EQ(wire.analyticPst, local.analyticPst);
}

TEST(ServiceEndpoints, CompileResponseCarriesSensitivityBlock)
{
    ServiceFixture fx;
    const HttpResponse response = httpExchange(
        fx.port(), "POST", "/v1/compile", compileBody("bv4"));
    ASSERT_EQ(response.status, 200) << response.body;
    const json::Value body = parseBody(response);

    const json::Value *block = body.find("sensitivity");
    ASSERT_NE(block, nullptr) << response.body;
    // The closed form agrees with the pipeline's scored PST.
    const double pst = body.find("analyticPst")->asNumber();
    EXPECT_NEAR(block->find("pst")->asNumber(), pst,
                1e-9 * pst + 1e-12);
    EXPECT_LT(block->find("logPst")->asNumber(), 0.0);
    EXPECT_GT(block->find("opCount")->asNumber(), 0.0);
    const json::Value *params = block->find("parameters");
    ASSERT_NE(params, nullptr) << response.body;
    ASSERT_GT(params->size(), 0u);
    // Ranked by mass, descending.
    double prev = params->item(0).find("mass")->asNumber();
    for (std::size_t i = 1; i < params->size(); ++i) {
        const double mass =
            params->item(i).find("mass")->asNumber();
        EXPECT_LE(mass, prev);
        prev = mass;
    }
    // The response stays parseable as a plain CompileResult
    // (unknown-field tolerance on the wire format).
    const core::CompileResult wire = core::compileResultFromJson(
        json::Cursor(body));
    EXPECT_EQ(wire.status, core::JobStatus::Ok);
}

TEST(ServiceEndpoints, MalformedJsonIs400WithLocation)
{
    ServiceFixture fx;
    const HttpResponse response = httpExchange(
        fx.port(), "POST", "/v1/compile", "{\"qasm\": nope}");
    EXPECT_EQ(response.status, 400);
    const json::Value body = parseBody(response);
    EXPECT_NE(body.find("error")->asString().find("request:1:"),
              std::string::npos)
        << response.body;
    EXPECT_EQ(body.find("category")->asString(), "usage");
}

TEST(ServiceEndpoints, MalformedQasmIs400WithParseLocation)
{
    ServiceFixture fx;
    json::Value body = json::Value::object();
    body.set("qasm", json::Value::string(
                         "OPENQASM 2.0;\nqreg q[2];\nbogus r;\n"));
    const HttpResponse response = httpExchange(
        fx.port(), "POST", "/v1/compile", json::write(body));
    EXPECT_EQ(response.status, 400);
    const std::string error =
        parseBody(response).find("error")->asString();
    // The QASM parser reports the offending line.
    EXPECT_NE(error.find("3"), std::string::npos) << error;
}

TEST(ServiceEndpoints, UnknownPolicyIs400UnknownPathIs404)
{
    ServiceFixture fx;
    const HttpResponse bad = httpExchange(
        fx.port(), "POST", "/v1/compile",
        compileBody("bv4", "does-not-exist"));
    EXPECT_EQ(bad.status, 400) << bad.body;

    EXPECT_EQ(httpExchange(fx.port(), "GET", "/nope").status, 404);
    EXPECT_EQ(
        httpExchange(fx.port(), "GET", "/v1/compile").status, 405);
}

TEST(ServiceEndpoints, MetricsExportParsesAsPrometheus)
{
    ServiceFixture fx;
    ASSERT_EQ(httpExchange(fx.port(), "POST", "/v1/compile",
                           compileBody("bv4"))
                  .status,
              200);
    const HttpResponse response =
        httpExchange(fx.port(), "GET", "/metrics");
    ASSERT_EQ(response.status, 200);
    EXPECT_NE(response.contentType.find("text/plain"),
              std::string::npos);
    // Every line is a comment or `name value` with a legal metric
    // name — the whole Prometheus text-format contract we use.
    std::istringstream lines(response.body);
    std::string line;
    std::size_t samples = 0;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        // `name value` or `name{label="v",...} value`.
        const std::size_t brace = line.find('{');
        const std::size_t space = line.find(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string name =
            line.substr(0, std::min(brace, space));
        ASSERT_FALSE(name.empty());
        for (const char c : name) {
            ASSERT_TRUE(std::isalnum(
                            static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':')
                << line;
        }
        std::size_t valueAt = space + 1;
        if (brace != std::string::npos && brace < space) {
            const std::size_t close = line.find("} ", brace);
            ASSERT_NE(close, std::string::npos) << line;
            valueAt = close + 2;
        }
        // The value must parse as a double.
        ASSERT_NO_THROW(std::stod(line.substr(valueAt))) << line;
        ++samples;
    }
    EXPECT_GT(samples, 0u);
    EXPECT_NE(response.body.find("vaq_service_requests"),
              std::string::npos);
}

TEST(ServiceQuota, TokenBucketReturns429PerClient)
{
    ServiceOptions options;
    options.quotaRps = 0.001; // effectively no refill mid-test
    options.quotaBurst = 2.0;
    ServiceFixture fx(options);

    const std::string alice = compileBody("bv4", "baseline", "alice");
    EXPECT_EQ(httpExchange(fx.port(), "POST", "/v1/compile", alice)
                  .status,
              200);
    EXPECT_EQ(httpExchange(fx.port(), "POST", "/v1/compile", alice)
                  .status,
              200);
    const HttpResponse third =
        httpExchange(fx.port(), "POST", "/v1/compile", alice);
    EXPECT_EQ(third.status, 429) << third.body;
    // Rejections tell the client when to come back: integral
    // seconds, never below 1.
    const std::string *retryAfter = third.header("Retry-After");
    ASSERT_NE(retryAfter, nullptr);
    EXPECT_GE(std::stol(*retryAfter), 1);

    // Quotas are per clientId: bob is unaffected by alice's spend.
    EXPECT_EQ(httpExchange(
                  fx.port(), "POST", "/v1/compile",
                  compileBody("bv4", "baseline", "bob"))
                  .status,
              200);
}

TEST(ServiceConcurrency, MixedClientsAgreeAtEveryFanout)
{
    ServiceFixture fx;
    // Reference response body for a fixed request (compileMs is
    // wall-clock, so compare the deterministic fields).
    const auto fingerprintOf = [](const HttpResponse &response) {
        const core::CompileResult r = core::compileResultFromJson(
            json::Cursor(json::parse(response.body, "response")));
        return circuit::toQasm(r.mapped.physical) + "/" +
               std::to_string(r.analyticPst) + "/" + r.policyUsed;
    };
    const HttpResponse reference = httpExchange(
        fx.port(), "POST", "/v1/compile", compileBody("ghz6"));
    ASSERT_EQ(reference.status, 200);
    const std::string expected = fingerprintOf(reference);

    json::Value batch = json::Value::object();
    json::Value requests = json::Value::array();
    requests.push(json::parse(compileBody("bv4")));
    requests.push(json::parse(compileBody("qft5")));
    batch.set("requests", std::move(requests));
    const std::string batchBody = json::write(batch);

    for (const int clients : {1, 4, 8}) {
        std::atomic<int> failures{0};
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(clients));
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c]() {
                try {
                    if (c % 2 == 0) {
                        const HttpResponse r = httpExchange(
                            fx.port(), "POST", "/v1/compile",
                            compileBody("ghz6"));
                        if (r.status != 200 ||
                            fingerprintOf(r) != expected)
                            ++failures;
                    } else {
                        const HttpResponse r =
                            httpExchange(fx.port(), "POST",
                                         "/v1/batch", batchBody);
                        if (r.status != 200)
                            ++failures;
                        const json::Value body = json::parse(
                            r.body, "response");
                        if (body.find("results")->size() != 2)
                            ++failures;
                    }
                } catch (...) {
                    ++failures;
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
        EXPECT_EQ(failures.load(), 0) << clients << " clients";
    }
}

TEST(ServiceRollover, MidFlightRequestsDrainCleanly)
{
    ServiceFixture fx;
    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::atomic<int> completed{0};
    std::vector<std::thread> compilers;
    for (int c = 0; c < 4; ++c) {
        compilers.emplace_back([&]() {
            while (!stop.load()) {
                try {
                    const HttpResponse r = httpExchange(
                        fx.port(), "POST", "/v1/compile",
                        compileBody("qft5"));
                    if (r.status != 200)
                        ++failures;
                    ++completed;
                } catch (...) {
                    ++failures;
                }
            }
        });
    }

    // Roll the calibration twice while compiles are in flight.
    calibration::SyntheticSource source(
        fx.graph, calibration::SyntheticParams{}, 21);
    for (int roll = 0; roll < 2; ++roll) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
        const HttpResponse response = httpExchange(
            fx.port(), "POST", "/v1/calibration",
            calibration::toCsv(source.nextCycle(), fx.graph),
            "text/csv");
        EXPECT_EQ(response.status, 200) << response.body;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
    for (std::thread &t : compilers)
        t.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_GT(completed.load(), 0);
    EXPECT_EQ(fx.service.epoch(), 3u);
    // The server kept serving afterwards.
    EXPECT_EQ(httpExchange(fx.port(), "GET", "/healthz").status,
              200);
}

TEST(ServiceRollover, UnusableSnapshotIsRefusedAndKeepsTheOldEpoch)
{
    ServiceFixture fx;
    calibration::Snapshot dead = fx.snapshot;
    for (int q = 0; q < dead.numQubits(); ++q)
        dead.qubit(q).t1Us = -1.0; // every qubit gets quarantined

    // Over HTTP the CSV reader refuses invalid values at parse
    // time — a located usage error, old epoch untouched.
    const HttpResponse response = httpExchange(
        fx.port(), "POST", "/v1/calibration",
        calibration::toCsv(dead, fx.graph), "text/csv");
    EXPECT_EQ(response.status, 400) << response.body;
    EXPECT_EQ(fx.service.epoch(), 1u);

    // The programmatic rollover sanitizes instead, finds no healthy
    // region left, throws — and keeps the old epoch too.
    EXPECT_THROW(fx.service.rollover(dead), CalibrationError);
    EXPECT_EQ(fx.service.epoch(), 1u);

    // Still compiling on the old epoch.
    EXPECT_EQ(httpExchange(fx.port(), "POST", "/v1/compile",
                           compileBody("bv4"))
                  .status,
              200);
}

TEST(ServiceRollover, ArtifactDeltaReuseSurvivesTheEpochSwap)
{
    store::ArtifactStore store{store::StoreOptions{}};
    ServiceFixture fx(ServiceOptions{}, &store);

    // CSV serialization rounds to 6-8 significant digits, so a
    // snapshot only compares dependency-equal to itself after one
    // format->parse cycle (further cycles are value-stable). Feed
    // the daemon its own calibration as CSV first, so the recorded
    // artifact's dependencies live in CSV-representable values —
    // exactly what consecutive operator-posted calibration files
    // look like in production.
    const std::string baselineCsv =
        calibration::toCsv(fx.snapshot, fx.graph);
    ASSERT_EQ(httpExchange(fx.port(), "POST", "/v1/calibration",
                           baselineCsv, "text/csv")
                  .status,
              200);
    ASSERT_EQ(fx.service.epoch(), 2u);

    // Epoch 2: cold compile, recorded.
    const std::string body = compileBody("bv4", "vqm");
    const HttpResponse cold =
        httpExchange(fx.port(), "POST", "/v1/compile", body);
    ASSERT_EQ(cold.status, 200);
    const core::CompileResult first = core::compileResultFromJson(
        json::Cursor(parseBody(cold)));
    EXPECT_FALSE(first.fromStore);

    // Drift hardware the mapping does not touch: find an idle
    // physical qubit and degrade it. The artifact's calibration
    // dependencies survive, so the next epoch re-serves it as a
    // delta hit instead of recompiling.
    const analysis::DataflowAnalysis dataflow(
        first.mapped.physical);
    int idleQubit = -1;
    for (int q = 0; q < first.mapped.physical.numQubits(); ++q) {
        if (!dataflow.chain(q).touched())
            idleQubit = q;
    }
    ASSERT_GE(idleQubit, 0) << "bv4 unexpectedly uses all of q20";
    calibration::Snapshot drifted = calibration::fromCsv(
        baselineCsv, fx.graph, "baseline");
    drifted.qubit(idleQubit).t1Us *= 0.5;
    drifted.qubit(idleQubit).readoutError = 0.2;

    const HttpResponse roll = httpExchange(
        fx.port(), "POST", "/v1/calibration",
        calibration::toCsv(drifted, fx.graph), "text/csv");
    ASSERT_EQ(roll.status, 200) << roll.body;
    EXPECT_EQ(fx.service.epoch(), 3u);

    const HttpResponse warm =
        httpExchange(fx.port(), "POST", "/v1/compile", body);
    ASSERT_EQ(warm.status, 200);
    const core::CompileResult second = core::compileResultFromJson(
        json::Cursor(parseBody(warm)));
    EXPECT_TRUE(second.fromStore);
    EXPECT_TRUE(second.viaDelta);
    EXPECT_EQ(circuit::toQasm(second.mapped.physical),
              circuit::toQasm(first.mapped.physical));
    EXPECT_GT(store.stats().deltaReuse, 0u);
}

TEST(ServiceTransport, OversizedBodyIs413)
{
    HttpServerOptions http;
    http.maxBodyBytes = 512;
    ServiceFixture fx(ServiceOptions{}, nullptr, http);
    const HttpResponse response = httpExchange(
        fx.port(), "POST", "/v1/compile",
        std::string(4096, 'x'));
    EXPECT_EQ(response.status, 413);
}

TEST(ServiceTransport, GarbageRequestLineIs400)
{
    ServiceFixture fx;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(fx.port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string garbage = "NOT-HTTP\r\n\r\n";
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));
    std::string reply;
    char buffer[512];
    ssize_t got = 0;
    while ((got = ::recv(fd, buffer, sizeof(buffer), 0)) > 0)
        reply.append(buffer, static_cast<std::size_t>(got));
    ::close(fd);
    EXPECT_NE(reply.find("400"), std::string::npos) << reply;
}

TEST(ServiceTransport, AdmissionQueueShedsWith503UnderFlood)
{
    // One deliberately slow worker and a queue of one: most of a
    // concurrent burst must shed with an instant 503 instead of
    // queueing unboundedly.
    HttpServerOptions http;
    http.workerThreads = 1;
    http.queueDepth = 1;
    std::atomic<int> served{0};
    HttpServer slow(http, [&served](const HttpRequest &) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(200));
        ++served;
        HttpResponse response;
        response.body = "{}";
        return response;
    });

    std::atomic<int> ok{0};
    std::atomic<int> shed{0};
    std::atomic<int> shedWithoutRetryAfter{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 8; ++c) {
        clients.emplace_back([&]() {
            try {
                const HttpResponse r =
                    httpExchange(slow.port(), "GET", "/");
                if (r.status == 200) {
                    ++ok;
                } else if (r.status == 503) {
                    ++shed;
                    // Sheds advertise when to come back.
                    const std::string *retryAfter =
                        r.header("Retry-After");
                    if (retryAfter == nullptr ||
                        std::stol(*retryAfter) < 1)
                        ++shedWithoutRetryAfter;
                }
            } catch (...) {
                // A connection reset during shedding also counts
                // as contained behavior; the assertions below only
                // require progress plus at least one shed.
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    slow.stop();

    EXPECT_GT(ok.load(), 0);
    EXPECT_GT(shed.load() + static_cast<int>(slow.shedCount()), 0);
    EXPECT_EQ(ok.load(), served.load());
    EXPECT_EQ(shedWithoutRetryAfter.load(), 0);
}

#ifdef VAQ_VAQC_BIN
TEST(VaqcTelemetry, FlushedOnFailureExitPaths)
{
    // Regression: vaqc used to exit before writing --metrics-out /
    // --trace-out when the run failed. A usage failure (unknown
    // machine, exit 2) must still flush both files.
    const std::string dir = ::testing::TempDir();
    const std::string metrics = dir + "vaqc_flush_metrics.json";
    const std::string trace = dir + "vaqc_flush_trace.json";
    std::remove(metrics.c_str());
    std::remove(trace.c_str());
    const std::string command =
        std::string(VAQ_VAQC_BIN) + " --qasm " + VAQ_TEST_DATA_DIR +
        "/service/fixtures/bv4.qasm --machine no-such-machine" +
        " --metrics-out " + metrics + " --trace-out " + trace +
        " >/dev/null 2>&1";
    const int status = std::system(command.c_str());
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 2);
    EXPECT_TRUE(std::ifstream(metrics).good())
        << "metrics not flushed on failure: " << metrics;
    EXPECT_TRUE(std::ifstream(trace).good())
        << "trace not flushed on failure: " << trace;
}
#endif

TEST(ServiceBatch, SharedPolicyIsEnforcedWith400)
{
    ServiceFixture fx;
    json::Value batch = json::Value::object();
    json::Value requests = json::Value::array();
    requests.push(json::parse(compileBody("bv4", "vqm")));
    requests.push(json::parse(compileBody("bv4", "baseline")));
    batch.set("requests", std::move(requests));
    const HttpResponse response = httpExchange(
        fx.port(), "POST", "/v1/batch", json::write(batch));
    EXPECT_EQ(response.status, 400);
    EXPECT_NE(parseBody(response).find("error")->asString().find(
                  "share one policy"),
              std::string::npos)
        << response.body;
}

} // namespace
} // namespace vaq::service
