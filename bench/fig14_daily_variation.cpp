/**
 * @file
 * Fig. 14: per-day effectiveness — relative PST of VQA+VQM for
 * bv-16, recompiled against each day's calibration snapshot across
 * the 52-day archive. Paper shape: benefit fluctuates between
 * ~1.1x and ~1.9x and is larger on high-variability days.
 */
#include "bench_util.hpp"

#include <cmath>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 14", "Per-Day Relative PST for bv-16 (VQM+VQA)",
        "Each day the workload is recompiled with that day's "
        "calibration data\n(morning cycle of the 52-day "
        "archive).");

    bench::Q20Environment env;
    const core::Mapper baseline = core::makeBaselineMapper();
    const core::Mapper vqaVqm = core::makeVqaVqmMapper();
    const auto bv = workloads::bernsteinVazirani(16);

    TextTable table({"Day", "Link-error CoV", "Relative PST"});
    RunningStats benefit;
    std::vector<double> covs, benefits;
    for (std::size_t day = 0; day < 52; ++day) {
        const auto &snap = env.archive.at(day * 2);
        const double base = bench::analyticPstOf(
            baseline, bv, env.machine, snap);
        const double aware = bench::analyticPstOf(
            vqaVqm, bv, env.machine, snap);
        const double rel = aware / base;
        const double cov =
            coefficientOfVariation(snap.allLinkErrors());
        benefit.add(rel);
        covs.push_back(cov);
        benefits.push_back(rel);
        table.addRow({std::to_string(day + 1),
                      formatDouble(cov, 2),
                      formatDouble(rel, 2) + "x"});
    }
    std::cout << table.render() << "\n";
    std::cout << "average benefit = "
              << formatDouble(benefit.mean(), 2)
              << "x, min = " << formatDouble(benefit.min(), 2)
              << "x, max = " << formatDouble(benefit.max(), 2)
              << "x\n";

    // Correlation between variability and benefit (paper: higher
    // variation days benefit more).
    const double mc = mean(covs);
    const double mb = mean(benefits);
    double num = 0.0, dc = 0.0, db = 0.0;
    for (std::size_t i = 0; i < covs.size(); ++i) {
        num += (covs[i] - mc) * (benefits[i] - mb);
        dc += (covs[i] - mc) * (covs[i] - mc);
        db += (benefits[i] - mb) * (benefits[i] - mb);
    }
    std::cout << "corr(link-error CoV, benefit) = "
              << formatDouble(num / std::sqrt(dc * db + 1e-30), 2)
              << "\n";
    std::cout
        << "(Paper shape: the benefit band ~1.1x..1.9x with "
           "day-to-day fluctuation. Our\nsynthetic archive holds "
           "aggregate variability nearly constant across days, "
           "so\nthe fluctuation here comes from *which* links "
           "drift, not from the total CoV;\nsee EXPERIMENTS.md.)\n";
    return 0;
}
