/**
 * @file
 * Certified-staleness store bench: warm-replay hit rate and serve
 * latency of the artifact store under a --staleness-tol sweep,
 * against the PR-6 touched-set rule (tol = 0).
 *
 * Scenario: a Q20 machine republishes calibration every cycle. Every
 * cycle re-measures T2 on every qubit (so the byte-exact touched-set
 * rule almost never fires), most other parameters drift by fractions
 * of a percent on part of the machine, and occasionally a link takes
 * a real jump. The certified bound (analysis/staleness.hpp) proves
 * T2-only and small-drift cycles harmless — |delta logPST| within
 * tolerance — and serves the stored mapping with the exact analytic
 * PST shift, where the touched-set rule recompiles.
 *
 *   perf_sens                  # the sweep table + acceptance verdict
 *   perf_sens --epochs 24 --seed 11
 *
 * Exit status 1 when the acceptance gate fails (hit rate under
 * --staleness-tol=1e-3 must strictly beat the touched-set rule).
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "calibration/snapshot.hpp"
#include "calibration/synthetic.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "core/compile_request.hpp"
#include "store/adapter.hpp"
#include "store/artifact_store.hpp"
#include "workloads/workloads.hpp"

namespace
{

using namespace vaq;
using Clock = std::chrono::steady_clock;

struct BenchConfig
{
    std::size_t epochs = 16;
    std::uint64_t seed = bench::kArchiveSeed;
};

std::vector<circuit::Circuit>
sensWorkload()
{
    std::vector<circuit::Circuit> circuits;
    circuits.push_back(workloads::ghz(6));
    circuits.push_back(workloads::bernsteinVazirani(8));
    circuits.push_back(workloads::qft(5));
    circuits.push_back(workloads::grover(3, 5));
    circuits.push_back(workloads::deutschJozsa(6, true, 5));
    circuits.push_back(workloads::adder(2, 1, 2));
    return circuits;
}

double
clampTo(double v, double lo, double hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/**
 * The drift series: epoch 0 is one synthetic calibration cycle;
 * every later epoch re-rolls T2 everywhere (bound-neutral: T2 never
 * enters the PerOp closed form), drifts a random subset of the
 * other parameters by small relative amounts, and occasionally
 * jumps one link hard enough that no tolerance certifies it.
 */
std::vector<calibration::Snapshot>
driftSeries(const topology::CouplingGraph &machine,
            const BenchConfig &config)
{
    calibration::SyntheticSource source(
        machine, calibration::SyntheticParams{}, config.seed);
    std::vector<calibration::Snapshot> epochs;
    epochs.push_back(source.nextCycle());

    Rng rng(config.seed * 1315423911ULL + 3);
    for (std::size_t e = 1; e < config.epochs; ++e) {
        calibration::Snapshot snap = epochs.back();
        for (int q = 0; q < snap.numQubits(); ++q) {
            auto &cal = snap.qubit(q);
            // T2 is re-measured every cycle.
            cal.t2Us = clampTo(cal.t2Us * (1.0 + rng.gauss(0, 0.05)),
                               3.0, 120.0);
            if (rng.bernoulli(0.35)) {
                const double rel = rng.uniform(-2e-3, 2e-3);
                cal.error1q =
                    clampTo(cal.error1q * (1.0 + rel), 1e-4, 0.04);
                cal.readoutError = clampTo(
                    cal.readoutError * (1.0 + rel), 0.005, 0.12);
                cal.t1Us =
                    clampTo(cal.t1Us * (1.0 - rel), 5.0, 220.0);
            }
        }
        for (std::size_t l = 0; l < snap.numLinks(); ++l) {
            double err = snap.linkError(l);
            if (rng.bernoulli(0.04))
                err *= 1.5; // a real excursion: always recompile
            else if (rng.bernoulli(0.35))
                err *= 1.0 + rng.uniform(-2e-3, 2e-3);
            snap.setLinkError(l, clampTo(err, 0.005, 0.25));
        }
        epochs.push_back(std::move(snap));
    }
    return epochs;
}

struct SweepRow
{
    double tol = 0.0;
    std::size_t lookups = 0;
    std::size_t exactHits = 0;
    std::size_t deltaHits = 0;
    std::size_t boundHits = 0;
    std::size_t recompiles = 0;
    double serveMs = 0.0;   ///< total wall ms of served lookups
    double compileMs = 0.0; ///< total wall ms of recompiles

    std::size_t hits() const
    {
        return exactHits + deltaHits + boundHits;
    }
    double hitRate() const
    {
        return lookups == 0 ? 0.0
                            : static_cast<double>(hits()) /
                                  static_cast<double>(lookups);
    }
};

SweepRow
replay(const topology::CouplingGraph &machine,
       const std::vector<circuit::Circuit> &circuits,
       const std::vector<calibration::Snapshot> &epochs, double tol)
{
    store::StoreOptions options; // memory-only store
    options.stalenessTol = tol;
    store::ArtifactStore artifactStore(options);
    const core::PolicySpec spec{.name = "vqm"};
    store::ArtifactCacheAdapter adapter(artifactStore, machine,
                                        spec);

    core::CompileRequest request;
    request.policy = spec;
    request.calibration = core::CalibrationHandling::Trust;
    request.maxRetries = 0;
    core::CompileContext context;
    context.artifactCache = &adapter;

    SweepRow row;
    row.tol = tol;
    for (std::size_t e = 0; e < epochs.size(); ++e) {
        for (const circuit::Circuit &logical : circuits) {
            const auto start = Clock::now();
            const core::CompileResult result = core::compileCircuit(
                logical, request, machine, epochs[e], context);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - start)
                    .count();
            if (!result.ok()) {
                std::fprintf(stderr,
                             "compile failed at epoch %zu: %s\n", e,
                             result.error.c_str());
                std::exit(2);
            }
            if (e == 0) {
                // Warm epoch: populate the store, count nothing.
                adapter.record(logical, epochs[e], result);
                continue;
            }
            ++row.lookups;
            if (result.fromStore) {
                row.serveMs += ms;
                if (result.boundReuse)
                    ++row.boundHits;
                else if (result.viaDelta)
                    ++row.deltaHits;
                else
                    ++row.exactHits;
            } else {
                row.compileMs += ms;
                ++row.recompiles;
                adapter.record(logical, epochs[e], result);
            }
        }
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--epochs") {
            config.epochs = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            config.seed = std::strtoull(next(), nullptr, 10);
        } else {
            std::fprintf(stderr, "usage: perf_sens [--epochs N] "
                                 "[--seed S]\n");
            return 2;
        }
    }
    if (config.epochs < 2) {
        std::fprintf(stderr, "--epochs must be >= 2\n");
        return 2;
    }

    bench::printHeader(
        "perf_sens", "certified staleness bounds (vaq_sens)",
        "Store warm-replay hit rate under a --staleness-tol sweep "
        "vs the touched-set rule");

    const topology::CouplingGraph machine =
        topology::ibmQ20Tokyo();
    const std::vector<circuit::Circuit> circuits = sensWorkload();
    const std::vector<calibration::Snapshot> epochs =
        driftSeries(machine, config);

    std::printf("# %zu circuits x %zu replay epochs, seed=%llu\n",
                circuits.size(), config.epochs - 1,
                static_cast<unsigned long long>(config.seed));
    std::printf("%-12s %8s %7s %7s %7s %10s %9s %11s %11s\n",
                "tol", "lookups", "exact", "delta", "bound",
                "recompile", "hit-rate", "serve-ms", "compile-ms");

    const double tols[] = {0.0, 1e-4, 1e-3, 1e-2};
    SweepRow touchedSet;
    SweepRow certified;
    for (double tol : tols) {
        const SweepRow row = replay(machine, circuits, epochs, tol);
        std::printf("%-12g %8zu %7zu %7zu %7zu %10zu %8.1f%% "
                    "%11.3f %11.3f\n",
                    row.tol, row.lookups, row.exactHits,
                    row.deltaHits, row.boundHits, row.recompiles,
                    100.0 * row.hitRate(),
                    row.hits() ? row.serveMs /
                                     static_cast<double>(row.hits())
                               : 0.0,
                    row.recompiles
                        ? row.compileMs /
                              static_cast<double>(row.recompiles)
                        : 0.0);
        if (row.tol == 0.0)
            touchedSet = row;
        if (row.tol == 1e-3)
            certified = row;
    }

    const bool pass = certified.hitRate() > touchedSet.hitRate();
    std::printf("\n# acceptance: hit-rate(tol=1e-3) %.1f%% %s "
                "touched-set %.1f%% -> %s\n",
                100.0 * certified.hitRate(),
                pass ? ">" : "<=", 100.0 * touchedSet.hitRate(),
                pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
