/**
 * @file
 * Table 3: evaluation on the "real" IBM-Q5.
 *
 * SUBSTITUTION (DESIGN.md §2.1): the physical Tenerife machine is
 * replaced by the trajectory simulator — a noisy state-vector
 * executor whose error model (stochastic Pauli errors, readout
 * flips, T1 decay) is deliberately *richer* than the Bernoulli
 * model the compiler optimizes, playing the role of messy hardware.
 *
 * Paper values (baseline -> VQA+VQM): bv-3 0.31 -> 0.38 (1.22x),
 * bv-4 0.21 -> 0.23 (1.09x), TriSwap 0.13 -> 0.25 (1.90x), GHZ-3
 * 0.57 -> 0.77 (1.35x); geomean benefit 1.36x. Expected shape:
 * VQA+VQM wins on every kernel, biggest on the movement-heavy
 * TriSwap.
 */
#include "bench_util.hpp"

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "sim/trajectory_sim.hpp"
#include "workloads/workloads.hpp"

namespace
{

/** PST of a mapped circuit on the hardware surrogate. */
double
hardwarePst(const vaq::core::MappedCircuit &mapped,
            const vaq::circuit::Circuit &logical,
            vaq::sim::TrajectorySimulator &machine)
{
    using namespace vaq;
    const auto counts = machine.run(mapped.physical);
    std::vector<std::uint64_t> accept;
    for (std::uint64_t outcome : sim::idealOutcomes(logical)) {
        std::uint64_t phys = 0;
        for (int q = 0; q < logical.numQubits(); ++q) {
            if (outcome & (1ULL << q))
                phys |= 1ULL << mapped.final.phys(q);
        }
        accept.push_back(phys & counts.measuredMask);
    }
    return sim::pstFromCounts(counts, accept);
}

} // namespace

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Table 3", "PST on the (Simulated) IBM-Q5",
        "4096 shots per experiment on the trajectory-simulator "
        "hardware surrogate.\nPaper-era Tenerife errors: 2q mean "
        "~4.2 %, worst link ~12 %.");

    // Hand-written Tenerife-era calibration (see
    // bench::paperEraTenerife for the provenance discussion).
    const auto q5 = topology::ibmQ5Tenerife();
    const calibration::Snapshot snap = bench::paperEraTenerife(q5);

    const core::Mapper baseline = core::makeBaselineMapper();
    const core::Mapper vqaVqm = core::makeVqaVqmMapper();
    const sim::NoiseModel machineModel(q5, snap);
    sim::TrajectoryOptions options;
    options.shots = 4096;
    sim::TrajectorySimulator machine(machineModel, options);

    TextTable table({"Benchmark", "PST (Baseline)",
                     "PST (VQA+VQM)", "Relative Benefit",
                     "Paper"});
    const char *paperRows[] = {"1.22x", "1.09x", "1.90x",
                               "1.35x"};
    std::vector<double> benefits;
    std::size_t i = 0;
    for (const auto &w : workloads::q5Suite()) {
        const auto mappedBase =
            baseline.map(w.circuit, q5, snap);
        const auto mappedAware =
            vqaVqm.map(w.circuit, q5, snap);
        const double pstBase =
            hardwarePst(mappedBase, w.circuit, machine);
        const double pstAware =
            hardwarePst(mappedAware, w.circuit, machine);
        benefits.push_back(pstAware / pstBase);
        table.addRow({w.name, formatDouble(pstBase, 2),
                      formatDouble(pstAware, 2),
                      formatDouble(pstAware / pstBase, 2) + "x",
                      paperRows[i++]});
    }
    table.addRow({"GeoMean", "", "",
                  formatDouble(geomean(benefits), 2) + "x",
                  "1.36x"});
    std::cout << table.render() << "\n";
    std::cout << "Expected shape (paper): VQA+VQM >= baseline on "
                 "every kernel even though the\nexecution-time "
                 "error model is richer than the compile-time "
                 "one.\n";
    return 0;
}
