/**
 * @file
 * Fig. 12: relative PST of Variation-Aware Qubit Movement.
 * Series: variation-unaware baseline (= 1.0), unconstrained VQM,
 * and hop-limited VQM (MAH = 4), for the seven Table-1 benchmarks.
 * Paper shape: every benchmark improves; low-locality workloads
 * (qft, rnd-LD) improve the most; MAH=4 performs like
 * unconstrained VQM.
 */
#include "bench_util.hpp"

#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 12", "Impact of VQM on PST",
        "Relative PST (normalized to the baseline policy), "
        "Monte-Carlo model\nwith 1M-trial-equivalent analytic "
        "evaluation on the synthetic IBM-Q20.");

    bench::Q20Environment env;
    const core::Mapper baseline = core::makeBaselineMapper();
    const core::Mapper vqm = core::makeVqmMapper();
    const core::Mapper vqmMah4 = core::makeVqmMapper(4);

    TextTable table({"Benchmark", "Variation Unaware",
                     "Variation Aware Move", "Hop Limited Move",
                     "abs PST (baseline)"});
    for (const auto &w : workloads::standardSuite(env.machine)) {
        const double base = bench::analyticPstOf(
            baseline, w.circuit, env.machine, env.averaged);
        const double aware = bench::analyticPstOf(
            vqm, w.circuit, env.machine, env.averaged);
        const double limited = bench::analyticPstOf(
            vqmMah4, w.circuit, env.machine, env.averaged);
        table.addRow({w.name, "1.00",
                      formatDouble(aware / base, 2),
                      formatDouble(limited / base, 2),
                      formatDouble(base, 6)});
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected shape (paper): all benchmarks >= 1.0; "
                 "qft/rnd-LD see the largest gains;\nhop-limited "
                 "VQM tracks unconstrained VQM.\n";
    return 0;
}
