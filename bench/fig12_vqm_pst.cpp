/**
 * @file
 * Fig. 12: relative PST of Variation-Aware Qubit Movement.
 * Series: variation-unaware baseline (= 1.0), unconstrained VQM,
 * and hop-limited VQM (MAH = 4), for the seven Table-1 benchmarks.
 * Paper shape: every benchmark improves; low-locality workloads
 * (qft, rnd-LD) improve the most; MAH=4 performs like
 * unconstrained VQM.
 *
 * All candidate circuits are compiled first and evaluated through
 * the batched parallel trial engine; the relative columns use the
 * closed-form PST (as before), and the absolute column reports the
 * Monte-Carlo estimate with its error bar.
 */
#include "bench_util.hpp"

#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 12", "Impact of VQM on PST",
        "Relative PST (normalized to the baseline policy), "
        "Monte-Carlo model\nwith 1M-trial-equivalent analytic "
        "evaluation on the synthetic IBM-Q20.");

    bench::Q20Environment env;
    std::vector<core::Mapper> policies;
    policies.push_back(core::makeBaselineMapper());
    policies.push_back(core::makeVqmMapper());
    policies.push_back(core::makeVqmMapper(4));
    const std::size_t numPolicies = policies.size();

    const auto suite = workloads::standardSuite(env.machine);
    std::vector<circuit::Circuit> physicals;
    physicals.reserve(suite.size() * numPolicies);
    for (const auto &w : suite) {
        for (const core::Mapper &policy : policies) {
            physicals.push_back(
                policy.map(w.circuit, env.machine, env.averaged)
                    .physical);
        }
    }
    const auto results =
        bench::batchPstOf(physicals, env.machine, env.averaged);

    TextTable table({"Benchmark", "Variation Unaware",
                     "Variation Aware Move", "Hop Limited Move",
                     "abs PST (baseline)", "MC PST (baseline)"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &base = results[i * numPolicies];
        const auto &aware = results[i * numPolicies + 1];
        const auto &limited = results[i * numPolicies + 2];
        table.addRow(
            {suite[i].name, "1.00",
             formatDouble(aware.analyticPst / base.analyticPst, 2),
             formatDouble(limited.analyticPst / base.analyticPst,
                          2),
             formatDouble(base.analyticPst, 6),
             formatDouble(base.pst, 6) + " +/- " +
                 formatDouble(base.stderrPst, 6)});
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected shape (paper): all benchmarks >= 1.0; "
                 "qft/rnd-LD see the largest gains;\nhop-limited "
                 "VQM tracks unconstrained VQM.\n";
    return 0;
}
