/**
 * @file
 * Fleet-robustness bench: sweep injected fault rates over the
 * standard heterogeneous fleet and report the STPT / deadline-hit
 * degradation of the failover scheduler against (a) a fault-free
 * run and (b) the no-failover baseline at the same fault rate.
 *
 * Modes:
 *
 *   perf_fleet                      # the fault-rate sweep table
 *   perf_fleet --policy least-loaded --jobs 300 --fault-rate 4
 *   perf_fleet --chaos-smoke --seed 11 --threads 8
 *       # print ONLY the summary fingerprint JSON of one seeded
 *       # chaos run; byte-identical across runs and thread counts
 *       # (scripts/ci.sh diffs thread 1 vs thread 8 output)
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/backend.hpp"
#include "fleet/fault_plan.hpp"
#include "fleet/policy.hpp"
#include "fleet/sim.hpp"
#include "fleet/stats.hpp"
#include "workloads/workloads.hpp"

namespace
{

using namespace vaq;

std::vector<circuit::Circuit>
fleetWorkload()
{
    // Small enough for every machine in the fleet (Q5 included).
    std::vector<circuit::Circuit> circuits;
    circuits.push_back(workloads::ghz(4));
    circuits.push_back(workloads::bernsteinVazirani(4));
    circuits.push_back(workloads::qft(4));
    circuits.push_back(workloads::grover(3, 5));
    return circuits;
}

struct RunConfig
{
    fleet::PlacementPolicy policy =
        fleet::PlacementPolicy::BestPst;
    bool failover = true;
    std::size_t jobs = 200;
    double faultsPerMachine = 0.0;
    std::uint64_t seed = 7;
    std::size_t threads = 1;
};

fleet::FleetSummary
runFleet(const RunConfig &config)
{
    const std::vector<circuit::Circuit> workload = fleetWorkload();

    fleet::JobStreamParams stream;
    stream.count = config.jobs;
    stream.meanInterarrivalUs = 2500.0;
    stream.relativeDeadlineUs = 80000.0;
    stream.shots = 512;
    const std::vector<fleet::FleetJob> jobs = fleet::makeJobStream(
        workload.size(), stream, config.seed);
    const double horizonUs =
        jobs.empty() ? 1.0 : jobs.back().arrivalUs;

    fleet::FaultPlanParams faults;
    faults.horizonUs = horizonUs;
    faults.faultsPerMachine = config.faultsPerMachine;
    faults.meanOutageUs = 40000.0;
    faults.meanSpikeUs = 50000.0;
    fleet::FaultPlan plan;
    if (config.faultsPerMachine > 0.0)
        plan = fleet::generateFaultPlan(4, faults,
                                        config.seed * 31 + 5);

    fleet::FleetOptions options;
    options.policy = config.policy;
    options.failover = config.failover;
    options.calibrationPeriodUs = horizonUs / 2.0;
    options.threads = config.threads;
    options.seed = config.seed;
    fleet::FleetSim sim(fleet::standardFleet(config.seed),
                        workload, options, plan);
    return sim.run(jobs);
}

double
pct(std::size_t part, std::size_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

int
chaosSmoke(const RunConfig &config)
{
    RunConfig chaos = config;
    chaos.faultsPerMachine =
        chaos.faultsPerMachine > 0.0 ? chaos.faultsPerMachine : 3.0;
    const fleet::FleetSummary summary = runFleet(chaos);
    // Fingerprint only: the smoke diffs this output byte-for-byte
    // across runs and thread counts.
    std::printf("%s\n", summary.fingerprint().c_str());
    return 0;
}

void
sweep(const RunConfig &base)
{
    std::printf("# fleet fault-rate sweep: policy=%s jobs=%zu "
                "seed=%llu\n",
                fleet::placementPolicyName(base.policy), base.jobs,
                static_cast<unsigned long long>(base.seed));
    std::printf("%-12s %-10s %10s %12s %10s %10s %10s\n", "faults",
                "scheduler", "completed", "in-deadline", "stpt",
                "stpt-deg", "retries");

    RunConfig faultFree = base;
    faultFree.faultsPerMachine = 0.0;
    faultFree.failover = true;
    const fleet::FleetSummary clean = runFleet(faultFree);
    const double cleanStpt = clean.stpt;

    const double rates[] = {0.0, 1.5, 3.0, 6.0};
    for (double rate : rates) {
        for (bool failover : {true, false}) {
            RunConfig config = base;
            config.faultsPerMachine = rate;
            config.failover = failover;
            const fleet::FleetSummary s = runFleet(config);
            const double degradation =
                cleanStpt > 0.0
                    ? 100.0 * (1.0 - s.stpt / cleanStpt)
                    : 0.0;
            std::printf(
                "%-12.1f %-10s %9.1f%% %11.1f%% %10.4f %9.1f%% "
                "%10zu\n",
                rate, failover ? "failover" : "baseline",
                pct(s.completed, s.jobs),
                pct(s.withinDeadline, s.jobs), s.stpt, degradation,
                s.retries);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    RunConfig config;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--chaos-smoke") {
            smoke = true;
        } else if (arg == "--policy") {
            config.policy =
                vaq::fleet::placementPolicyFromName(next());
        } else if (arg == "--no-failover") {
            config.failover = false;
        } else if (arg == "--jobs") {
            config.jobs = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--fault-rate") {
            config.faultsPerMachine = std::strtod(next(), nullptr);
        } else if (arg == "--seed") {
            config.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--threads") {
            config.threads = std::strtoull(next(), nullptr, 10);
        } else {
            std::fprintf(
                stderr,
                "usage: perf_fleet [--chaos-smoke] [--policy "
                "best-pst|least-loaded|replicate] [--no-failover] "
                "[--jobs N] [--fault-rate F] [--seed S] "
                "[--threads T]\n");
            return 2;
        }
    }
    if (smoke)
        return chaosSmoke(config);
    sweep(config);
    return 0;
}
