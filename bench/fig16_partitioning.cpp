/**
 * @file
 * Fig. 16: successful trials per unit time (STPT) for running two
 * concurrent copies versus one strong copy of the 10-qubit
 * workloads (alu-10, bv-10, qft-10) on IBM-Q20. Both bars are
 * normalized to the two-copy STPT as in the paper. Paper shape:
 * two copies win for bv-10, one strong copy wins for qft-10 —
 * the right answer is workload-dependent, motivating adaptive
 * partitioning.
 */
#include "bench_util.hpp"

#include "common/table.hpp"
#include "partition/partition.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 16", "Two Weak Copies vs One Strong Copy (STPT)",
        "Normalized STPT on the synthetic IBM-Q20; copies are "
        "placed on disjoint\nregions found by the partition "
        "search, all compiled with VQA+VQM.");

    bench::Q20Environment env;
    const core::Mapper mapper = core::makeVqaVqmMapper();

    TextTable table({"Benchmark", "Two Weak Copies",
                     "One Strong Copy", "PST single",
                     "PST copy A", "PST copy B", "Verdict"});
    for (const auto &w : workloads::tenQubitSuite()) {
        const auto report = partition::comparePartitioning(
            w.circuit, env.machine, env.averaged, mapper);
        table.addRow(
            {w.name, "1.00",
             formatDouble(report.singleStpt / report.dualStpt, 2),
             formatDouble(report.single.pst, 5),
             formatDouble(report.dual[0].pst, 5),
             formatDouble(report.dual[1].pst, 5),
             report.singleWins() ? "one strong copy"
                                 : "two copies"});
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected shape (paper): the verdict flips "
                 "across workloads (two copies for\nbv-10, one "
                 "strong copy for qft-10), so variation-aware "
                 "STPT prediction enables\nadaptive "
                 "partitioning.\n";
    return 0;
}
