/**
 * @file
 * Fig. 6: distribution of single-qubit gate error rates over all 20
 * qubits x 100 cycles (paper: "a large fraction of the error-rate
 * below 1%", tail to ~4%).
 */
#include "bench_util.hpp"

#include "common/histogram.hpp"
#include "common/statistics.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 6", "Single-Qubit Operation Error Rates",
        "20 qubits x " +
            std::to_string(bench::kArchiveCycles) +
            " calibration cycles.");

    bench::Q20Environment env;
    std::vector<double> errors;
    for (const auto &snap : env.archive.snapshots()) {
        for (double e : snap.allError1q())
            errors.push_back(e * 100.0); // percent
    }

    Histogram hist(0.0, 4.0, 20);
    hist.add(errors);
    std::cout << hist.render("1q gate error rate (%)") << "\n";

    std::size_t below = 0;
    for (double e : errors) {
        if (e < 1.0)
            ++below;
    }
    std::cout << "mean = " << formatDouble(mean(errors), 3)
              << " %, fraction below 1% = "
              << formatDouble(
                     100.0 * static_cast<double>(below) /
                         static_cast<double>(errors.size()),
                     1)
              << " % (paper: 'large fraction below 1%')\n";
    return 0;
}
