/**
 * @file
 * Fig. 7: distribution of two-qubit gate error rates over all links
 * x 100 cycles (paper: 76 link characterizations per cycle, mean
 * 4.3 %, stddev 3.02 %).
 */
#include "bench_util.hpp"

#include "common/histogram.hpp"
#include "common/statistics.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 7", "Two-Qubit Operation Error Rates",
        "All IBM-Q20 links x " +
            std::to_string(bench::kArchiveCycles) +
            " calibration cycles.");

    bench::Q20Environment env;
    std::vector<double> errors;
    for (const auto &snap : env.archive.snapshots()) {
        for (double e : snap.allLinkErrors())
            errors.push_back(e * 100.0); // percent
    }

    Histogram hist(0.0, 20.0, 20);
    hist.add(errors);
    std::cout << hist.render("2q gate error rate (%)") << "\n";
    std::cout << "samples = " << errors.size() << " ("
              << env.machine.linkCount() << " links x "
              << bench::kArchiveCycles << " cycles)\n";
    std::cout << "mean = " << formatDouble(mean(errors), 2)
              << " % (paper: 4.3), stddev = "
              << formatDouble(stddev(errors), 2)
              << " % (paper: 3.02)\n";
    return 0;
}
