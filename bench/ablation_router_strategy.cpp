/**
 * @file
 * Ablation: per-gate movement planning vs joint per-layer A*
 * search (DESIGN.md §5), for both cost models. Shows why the
 * production policies run a portfolio: neither strategy dominates
 * across workloads.
 */
#include "bench_util.hpp"

#include "common/table.hpp"
#include "workloads/workloads.hpp"

namespace
{

vaq::core::Mapper
singleConfig(const char *name, vaq::core::CostKind kind,
             vaq::core::RouteStrategy strategy)
{
    using namespace vaq::core;
    RouterOptions options;
    options.strategy = strategy;
    auto allocator =
        kind == CostKind::SwapCount
            ? std::make_unique<LocalityAllocator>()
            : std::make_unique<LocalityAllocator>(
                  CostKind::Reliability);
    return Mapper(name, std::move(allocator), kind, options);
}

} // namespace

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Ablation", "Router Strategy: Per-Gate vs Layer A*",
        "Inserted SWAPs and analytic PST per strategy and cost "
        "model (no portfolio).");

    bench::Q20Environment env;
    const sim::NoiseModel model(env.machine, env.averaged);

    struct Config
    {
        const char *label;
        core::CostKind kind;
        core::RouteStrategy strategy;
    };
    const Config configs[] = {
        {"uniform/per-gate", core::CostKind::SwapCount,
         core::RouteStrategy::PerGate},
        {"uniform/layer-A*", core::CostKind::SwapCount,
         core::RouteStrategy::LayerAstar},
        {"reliab./per-gate", core::CostKind::Reliability,
         core::RouteStrategy::PerGate},
        {"reliab./layer-A*", core::CostKind::Reliability,
         core::RouteStrategy::LayerAstar},
    };

    TextTable table({"Benchmark", "uniform/per-gate",
                     "uniform/layer-A*", "reliab./per-gate",
                     "reliab./layer-A*"});
    for (const auto &w : workloads::standardSuite(env.machine)) {
        std::vector<std::string> row{w.name};
        for (const Config &config : configs) {
            const auto mapper = singleConfig(
                config.label, config.kind, config.strategy);
            const auto mapped =
                mapper.map(w.circuit, env.machine, env.averaged);
            const double pst =
                sim::analyticPst(mapped.physical, model);
            row.push_back(
                formatDouble(pst, 6) + "/" +
                std::to_string(mapped.insertedSwaps) + "sw");
        }
        table.addRow(row);
    }
    std::cout << table.render() << "\n";
    std::cout << "Observation: layer-A* wins on shallow parallel "
                 "circuits, per-gate is more robust\non deep "
                 "serial ones -- motivating the portfolio used by "
                 "makeVqmMapper().\n";
    return 0;
}
