/**
 * @file
 * Ablation: VQA's activity-analysis window (Algorithm 2, step 2:
 * "calculating the number of CNOTs per qubit for [the] first t
 * layers"). Sweeps t and reports the relative PST of VQA+VQM-style
 * single-config compilation.
 */
#include "bench_util.hpp"

#include "common/table.hpp"
#include "graph/subgraph.hpp"
#include "workloads/workloads.hpp"

namespace
{

vaq::core::Mapper
vqaWithWindow(std::size_t window)
{
    using namespace vaq::core;
    RouterOptions options;
    options.strategy = RouteStrategy::PerGate;
    return Mapper("vqa-w" + std::to_string(window),
                  std::make_unique<StrengthAllocator>(
                      vaq::graph::SubgraphScore::InducedWeight,
                      window),
                  CostKind::Reliability, options);
}

} // namespace

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Ablation", "VQA Activity-Analysis Window",
        "Relative PST (vs baseline) when qubit activity is "
        "estimated from the first\nt dependence layers (t = 0 "
        "means the whole program).");

    bench::Q20Environment env;
    const core::Mapper baseline = core::makeBaselineMapper();
    const std::size_t windows[] = {1, 4, 16, 64, 0};

    TextTable table({"Benchmark", "t=1", "t=4", "t=16", "t=64",
                     "whole program"});
    for (const auto &w : workloads::standardSuite(env.machine)) {
        const double base = bench::analyticPstOf(
            baseline, w.circuit, env.machine, env.averaged);
        std::vector<std::string> row{w.name};
        for (std::size_t window : windows) {
            const double pst = bench::analyticPstOf(
                vqaWithWindow(window), w.circuit, env.machine,
                env.averaged);
            row.push_back(formatDouble(pst / base, 2) + "x");
        }
        table.addRow(row);
    }
    std::cout << table.render() << "\n";
    std::cout << "Observation: short windows suffice for "
                 "workloads with stable interaction\npatterns "
                 "(bv); whole-program analysis helps phase-"
                 "changing workloads.\n";
    return 0;
}
