/**
 * @file
 * Shared environment for the reproduction benches: one synthetic
 * IBM-Q20 characterization archive (the stand-in for the paper's
 * 52-day scrape; >100 calibration cycles) plus small helpers.
 *
 * All benches use the same seed so their numbers refer to the same
 * "machine history" and can be cross-read like the paper's figures.
 */
#ifndef VAQ_BENCH_BENCH_UTIL_HPP
#define VAQ_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <iostream>
#include <string>

#include <vector>

#include "calibration/snapshot.hpp"
#include "calibration/synthetic.hpp"
#include "circuit/circuit.hpp"
#include "common/strings.hpp"
#include "core/mapper.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "topology/layouts.hpp"

namespace vaq::bench
{

/** Calibration-archive seed shared by every bench. */
inline constexpr std::uint64_t kArchiveSeed = 7;

/** Calibration cycles in the archive (52 days, ~2 cycles/day). */
inline constexpr std::size_t kArchiveCycles = 104;

/** The simulated IBM-Q20 plus its characterization archive. */
struct Q20Environment
{
    topology::CouplingGraph machine = topology::ibmQ20Tokyo();
    calibration::CalibrationSeries archive;
    calibration::Snapshot averaged;

    Q20Environment()
        : archive(calibration::SyntheticSource(
                      machine, calibration::SyntheticParams{},
                      kArchiveSeed)
                      .series(kArchiveCycles)),
          averaged(archive.averaged())
    {
    }
};

/** Compile and return the compile-time analytic PST. */
inline double
analyticPstOf(const core::Mapper &mapper,
              const circuit::Circuit &logical,
              const topology::CouplingGraph &machine,
              const calibration::Snapshot &snapshot)
{
    const sim::NoiseModel model(machine, snapshot);
    return sim::analyticPst(
        mapper.map(logical, machine, snapshot).physical, model);
}

/**
 * Evaluate a compiled sweep on one shared parallel trial engine:
 * Monte-Carlo PST (with error bar) plus the closed form, one result
 * per input circuit. Replaces the per-circuit serial loops the
 * figure drivers used to run; `FaultSimResult::analyticPst` carries
 * the same closed-form values those loops reported.
 */
inline std::vector<sim::FaultSimResult>
batchPstOf(const std::vector<circuit::Circuit> &physicals,
           const topology::CouplingGraph &machine,
           const calibration::Snapshot &snapshot,
           std::size_t trials = 200'000)
{
    const sim::NoiseModel model(machine, snapshot);
    sim::ParallelFaultSimOptions options;
    options.trials = trials;
    return sim::runFaultInjectionBatch(physicals, model, options);
}

/**
 * Hand-written Tenerife-era calibration for the Section 7 benches.
 * Section 7 reports a 4.2 % average two-qubit error with the worst
 * link at 12 %; the paper's absolute PSTs (bv-3 baseline 0.31)
 * imply heavy readout error, consistent with public Tenerife data
 * of the period (per-qubit readout errors up to ~30 %).
 */
inline calibration::Snapshot
paperEraTenerife(const topology::CouplingGraph &q5)
{
    calibration::Snapshot snap(q5);
    const double linkErr[][3] = {
        {0, 1, 0.120}, // the paper's worst link
        {0, 2, 0.055}, {1, 2, 0.028}, {2, 3, 0.035},
        {2, 4, 0.052}, {3, 4, 0.022},
    };
    for (const auto &row : linkErr) {
        snap.setLinkError(q5.linkIndex(static_cast<int>(row[0]),
                                       static_cast<int>(row[1])),
                          row[2]);
    }
    const double readout[] = {0.24, 0.16, 0.08, 0.10, 0.29};
    const double err1q[] = {0.0023, 0.0014, 0.0032, 0.0009,
                            0.0041};
    const double t1[] = {52.0, 58.0, 49.0, 43.0, 40.0};
    const double t2[] = {31.0, 40.0, 38.0, 19.0, 12.0};
    for (int q = 0; q < 5; ++q) {
        auto &cal = snap.qubit(q);
        cal.readoutError = readout[q];
        cal.error1q = err1q[q];
        cal.t1Us = t1[q];
        cal.t2Us = t2[q];
    }
    return snap;
}

/** Print the standard bench header. */
inline void
printHeader(const std::string &experiment,
            const std::string &paperRef,
            const std::string &description)
{
    std::cout << "=====================================================\n"
              << experiment << " -- " << paperRef << "\n"
              << description << "\n"
              << "=====================================================\n\n";
}

} // namespace vaq::bench

#endif // VAQ_BENCH_BENCH_UTIL_HPP
