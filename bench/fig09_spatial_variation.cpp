/**
 * @file
 * Fig. 9: spatial layout of IBM-Q20 with the average failure rate
 * of every link (paper: best links 0.02, worst 0.15 = 7.5x spread;
 * worst link Q14-Q18).
 */
#include "bench_util.hpp"

#include <algorithm>

#include "common/table.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 9", "Spatial Variation Across the IBM-Q20 Layout",
        "Average two-qubit failure probability per link over the "
        "whole archive.");

    bench::Q20Environment env;
    const auto &snap = env.averaged;

    TextTable table({"Link", "Avg failure", "Rank"});
    // Rank links weakest-first for the report.
    std::vector<std::size_t> order(env.machine.linkCount());
    for (std::size_t l = 0; l < order.size(); ++l)
        order[l] = l;
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                  return snap.linkError(x) > snap.linkError(y);
              });
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const auto &link = env.machine.links()[order[rank]];
        table.addRow(
            {"Q" + std::to_string(link.a) + "-Q" +
                 std::to_string(link.b),
             formatDouble(snap.linkError(order[rank]), 3),
             rank == 0 ? "weakest"
                       : (rank + 1 == order.size() ? "strongest"
                                                   : "")});
    }
    std::cout << table.render() << "\n";

    const double worst = snap.linkError(order.front());
    const double best = snap.linkError(order.back());
    std::cout << "best link failure = " << formatDouble(best, 3)
              << " (paper: 0.02), worst = "
              << formatDouble(worst, 3)
              << " (paper: 0.15), spread = "
              << formatDouble(worst / best, 1)
              << "x (paper: 7.5x)\n";
    return 0;
}
