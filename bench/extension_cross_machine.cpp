/**
 * @file
 * Extension: do the paper's policies generalize beyond IBM-Q20?
 *
 * Runs the baseline / VQM / VQA+VQM comparison on three machine
 * generations with synthetic calibration drawn from the same
 * population statistics: the paper's IBM-Q20 Tokyo, the 27-qubit
 * heavy-hex Falcon that succeeded it, and a generic 5x5 mesh.
 * Heavy-hex's sparser connectivity (max degree 3) forces longer
 * routes, so variation-aware routing has *more* choices to exploit
 * per CNOT — the paper's insight should transfer.
 */
#include "bench_util.hpp"

#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Extension", "Policy Generalization Across Machines",
        "Relative PST (vs per-machine baseline) of VQM and "
        "VQA+VQM on three topologies,\nsame synthetic error "
        "population.");

    struct MachineCase
    {
        const char *label;
        topology::CouplingGraph graph;
    };
    MachineCase machines[] = {
        {"ibm-q20-tokyo", topology::ibmQ20Tokyo()},
        {"ibm-falcon-27", topology::ibmFalcon27()},
        {"mesh-5x5", topology::grid(5, 5)},
    };

    const core::Mapper baseline = core::makeBaselineMapper();
    const core::Mapper vqm = core::makeVqmMapper();
    const core::Mapper vqaVqm = core::makeVqaVqmMapper();

    TextTable table({"Machine", "Workload", "Baseline PST",
                     "VQM", "VQA+VQM", "swaps (base)"});
    for (auto &m : machines) {
        calibration::SyntheticSource source(
            m.graph, calibration::SyntheticParams{},
            bench::kArchiveSeed);
        const auto snap = source.series(40).averaged();
        const sim::NoiseModel model(m.graph, snap);

        const std::vector<workloads::Workload> suite = {
            {"bv-12", workloads::bernsteinVazirani(12)},
            {"ghz-10", workloads::ghz(10)},
            {"qft-8", workloads::qft(8)},
        };
        for (const auto &w : suite) {
            const auto mappedBase =
                baseline.map(w.circuit, m.graph, snap);
            const double base =
                sim::analyticPst(mappedBase.physical, model);
            const double aware = sim::analyticPst(
                vqm.map(w.circuit, m.graph, snap).physical,
                model);
            const double both = sim::analyticPst(
                vqaVqm.map(w.circuit, m.graph, snap).physical,
                model);
            table.addRow(
                {m.label, w.name, formatDouble(base, 5),
                 formatDouble(aware / base, 2) + "x",
                 formatDouble(both / base, 2) + "x",
                 std::to_string(mappedBase.insertedSwaps)});
        }
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected: VQA+VQM >= VQM >= 1.0 on every "
                 "machine; sparser machines (heavy-hex)\nroute "
                 "longer and leave more room for variation-aware "
                 "gains.\n";
    return 0;
}
