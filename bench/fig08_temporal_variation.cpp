/**
 * @file
 * Fig. 8: temporal variation of the two-qubit error rate for three
 * named links (paper: CX6_5, CX19_13, CX5_11 over ~25 days; strong
 * links tend to stay strong, weak stay weak).
 */
#include "bench_util.hpp"

#include "common/table.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 8", "Temporal Variation in Two-Qubit Gate Errors",
        "Daily error rate (%) of the paper's three tracked links "
        "over 25 days\n(2 calibration cycles per day; the morning "
        "cycle is shown).");

    bench::Q20Environment env;
    const auto links = {std::pair<int, int>{6, 5},
                        std::pair<int, int>{19, 13},
                        std::pair<int, int>{5, 11}};

    TextTable table({"Day", "CX6_5 (%)", "CX19_13 (%)",
                     "CX5_11 (%)"});
    for (int day = 0; day < 25; ++day) {
        const auto &snap =
            env.archive.at(static_cast<std::size_t>(day) * 2);
        std::vector<std::string> row{std::to_string(day + 1)};
        for (const auto &[a, b] : links) {
            row.push_back(formatDouble(
                snap.linkError(env.machine, a, b) * 100.0, 2));
        }
        table.addRow(row);
    }
    std::cout << table.render() << "\n";

    // Rank persistence: how often does the strongest of the three
    // stay strongest day to day?
    int ordered = 0, days = 0;
    for (std::size_t c = 0; c + 2 < 50; c += 2) {
        const auto &today = env.archive.at(c);
        const auto &tomorrow = env.archive.at(c + 2);
        const double t65 = today.linkError(env.machine, 6, 5);
        const double t1913 =
            today.linkError(env.machine, 19, 13);
        const double m65 = tomorrow.linkError(env.machine, 6, 5);
        const double m1913 =
            tomorrow.linkError(env.machine, 19, 13);
        ordered += ((t65 < t1913) == (m65 < m1913)) ? 1 : 0;
        ++days;
    }
    std::cout << "day-to-day rank persistence (CX6_5 vs CX19_13): "
              << formatDouble(
                     100.0 * ordered / static_cast<double>(days),
                     0)
              << " % of days keep their order\n"
              << "(paper: 'the strong link tends to remain strong "
                 "and the weak tends to remain weak')\n";
    return 0;
}
