/**
 * @file
 * Table 1: benchmark characteristics — workload, qubit count, total
 * instructions, and SWAPs inserted by the baseline compile on
 * IBM-Q20 (paper values: alu 299/19, bv-16 66/7, bv-20 90/10,
 * qft-12 344/35, qft-14 550/53, rnd-SD 100/24, rnd-LD 100/35).
 */
#include "bench_util.hpp"

#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Table 1", "Benchmark Characteristics",
        "Instruction and SWAP counts for the seven NISQ "
        "workloads,\ncompiled for IBM-Q20 with the baseline "
        "(SWAP-minimizing) policy.");

    bench::Q20Environment env;
    const core::Mapper baseline = core::makeBaselineMapper();

    TextTable table({"Workload", "Num Qubits", "Total Inst",
                     "SWAP Inst", "2q Ops", "Depth"});
    for (const auto &w : workloads::standardSuite(env.machine)) {
        const core::MappedCircuit mapped =
            baseline.map(w.circuit, env.machine, env.averaged);
        table.addRow(
            {w.name, std::to_string(w.circuit.numQubits()),
             std::to_string(w.circuit.instructionCount()),
             std::to_string(mapped.insertedSwaps),
             std::to_string(mapped.physical.twoQubitCount()),
             std::to_string(mapped.physical.depth())});
    }
    std::cout << table.render() << "\n";
    std::cout << "Note: Total Inst counts the *logical* program; "
                 "SWAP Inst is added by routing.\n";
    return 0;
}
