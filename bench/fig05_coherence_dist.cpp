/**
 * @file
 * Fig. 5: distribution of T1 and T2 coherence times over all 20
 * qubits x 100 calibration cycles (paper: T1 mean 80.32 us, sigma
 * 35.23 us; T2 mean 42.13 us, sigma 13.34 us).
 */
#include "bench_util.hpp"

#include "common/histogram.hpp"
#include "common/statistics.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 5", "Distribution of T1/T2 Coherence Times",
        "20 qubits x " +
            std::to_string(bench::kArchiveCycles) +
            " calibration cycles of the synthetic IBM-Q20 "
            "archive.");

    bench::Q20Environment env;
    std::vector<double> t1, t2;
    for (const auto &snap : env.archive.snapshots()) {
        for (int q = 0; q < snap.numQubits(); ++q) {
            t1.push_back(snap.qubit(q).t1Us);
            t2.push_back(snap.qubit(q).t2Us);
        }
    }

    Histogram ht1(0.0, 220.0, 22);
    ht1.add(t1);
    Histogram ht2(0.0, 110.0, 22);
    ht2.add(t2);

    std::cout << ht1.render("(a) T1 Coherence (us)") << "\n";
    std::cout << "T1 mean = " << formatDouble(mean(t1), 2)
              << " us (paper: 80.32), stddev = "
              << formatDouble(stddev(t1), 2)
              << " us (paper: 35.23)\n\n";
    std::cout << ht2.render("(b) T2 Coherence (us)") << "\n";
    std::cout << "T2 mean = " << formatDouble(mean(t2), 2)
              << " us (paper: 42.13), stddev = "
              << formatDouble(stddev(t2), 2)
              << " us (paper: 13.34)\n";
    return 0;
}
