/**
 * @file
 * Ablation: the Maximum-Additional-Hops (MAH) budget of VQM
 * (DESIGN.md §5). Sweeps MAH = 0, 1, 2, 4, 8, unlimited for every
 * benchmark and reports relative PST and inserted SWAPs. The paper
 * uses MAH = 4 and reports it "has similar improvement to an
 * unconstrained policy".
 */
#include "bench_util.hpp"

#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Ablation", "MAH (Maximum Additional Hops) Sweep",
        "Relative PST (vs baseline) and inserted SWAPs of VQM "
        "under different hop budgets.");

    bench::Q20Environment env;
    const core::Mapper baseline = core::makeBaselineMapper();
    const int budgets[] = {0, 1, 2, 4, 8, core::kUnlimitedHops};

    TextTable table({"Benchmark", "MAH=0", "MAH=1", "MAH=2",
                     "MAH=4", "MAH=8", "unlimited"});
    for (const auto &w : workloads::standardSuite(env.machine)) {
        const double base = bench::analyticPstOf(
            baseline, w.circuit, env.machine, env.averaged);
        std::vector<std::string> row{w.name};
        for (int mah : budgets) {
            const core::Mapper vqm = core::makeVqmMapper(mah);
            const auto mapped =
                vqm.map(w.circuit, env.machine, env.averaged);
            const sim::NoiseModel model(env.machine,
                                        env.averaged);
            const double pst =
                sim::analyticPst(mapped.physical, model);
            row.push_back(formatDouble(pst / base, 2) + "x/" +
                          std::to_string(mapped.insertedSwaps) +
                          "sw");
        }
        table.addRow(row);
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected: gains saturate by MAH=4 (the paper's "
                 "setting); MAH=0 already helps\nbecause link "
                 "choice among hop-minimal routes remains "
                 "variation-aware. A small\nbudget can "
                 "occasionally beat a larger one: per-gate "
                 "relocation is myopic, and\nextra freedom "
                 "sometimes trades long-run placement quality for "
                 "a local win.\n";
    return 0;
}
