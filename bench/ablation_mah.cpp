/**
 * @file
 * Ablation: the Maximum-Additional-Hops (MAH) budget of VQM
 * (DESIGN.md §5). Sweeps MAH = 0, 1, 2, 4, 8, unlimited for every
 * benchmark and reports relative PST and inserted SWAPs. The paper
 * uses MAH = 4 and reports it "has similar improvement to an
 * unconstrained policy".
 */
#include "bench_util.hpp"

#include <utility>

#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Ablation", "MAH (Maximum Additional Hops) Sweep",
        "Relative PST (vs baseline) and inserted SWAPs of VQM "
        "under different hop budgets.");

    bench::Q20Environment env;
    const int budgets[] = {0, 1, 2, 4, 8, core::kUnlimitedHops};

    // One compiled candidate per (benchmark, policy): the baseline
    // followed by each hop budget, all evaluated through one batched
    // trial engine instead of a per-candidate serial loop.
    std::vector<core::Mapper> policies;
    policies.push_back(core::makeBaselineMapper());
    for (int mah : budgets)
        policies.push_back(core::makeVqmMapper(mah));
    const std::size_t numPolicies = policies.size();

    const auto suite = workloads::standardSuite(env.machine);
    std::vector<circuit::Circuit> physicals;
    std::vector<int> swaps;
    physicals.reserve(suite.size() * numPolicies);
    swaps.reserve(suite.size() * numPolicies);
    for (const auto &w : suite) {
        for (const core::Mapper &policy : policies) {
            auto mapped =
                policy.map(w.circuit, env.machine, env.averaged);
            swaps.push_back(mapped.insertedSwaps);
            physicals.push_back(std::move(mapped.physical));
        }
    }
    const auto results = bench::batchPstOf(
        physicals, env.machine, env.averaged, 50'000);

    TextTable table({"Benchmark", "MAH=0", "MAH=1", "MAH=2",
                     "MAH=4", "MAH=8", "unlimited"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const double base =
            results[i * numPolicies].analyticPst;
        std::vector<std::string> row{suite[i].name};
        for (std::size_t b = 1; b < numPolicies; ++b) {
            const std::size_t at = i * numPolicies + b;
            row.push_back(
                formatDouble(results[at].analyticPst / base, 2) +
                "x/" + std::to_string(swaps[at]) + "sw");
        }
        table.addRow(row);
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected: gains saturate by MAH=4 (the paper's "
                 "setting); MAH=0 already helps\nbecause link "
                 "choice among hop-minimal routes remains "
                 "variation-aware. A small\nbudget can "
                 "occasionally beat a larger one: per-gate "
                 "relocation is myopic, and\nextra freedom "
                 "sometimes trades long-run placement quality for "
                 "a local win.\n";
    return 0;
}
