/**
 * @file
 * Table 2: sensitivity of VQA+VQM to error-rate scaling on bv-16.
 * Rows: (1x, base CoV), (10x lower, base CoV), (10x lower, 2x
 * CoV). Paper values: 1.43x, 2.02x, 2.59x.
 *
 * Each row is evaluated on a fresh synthetic machine drawn with the
 * row's error statistics (mean scaled, relative variation per the
 * CoV column), with coherence improving alongside gate errors
 * ("as technology improves", Section 6.6).
 *
 * Note on the expected shape: when *every* error source shrinks by
 * s, each policy's PST is raised to the power s, so the relative
 * benefit compresses toward 1 as errors fall
 * (benefit' ~ benefit^s). The reproducible trend is therefore the
 * *CoV direction*: at a fixed error level, doubling the relative
 * variation increases the benefit — which is the paper's core
 * claim that "variation may still persist even at lower error
 * rates, meaning our proposal can still be effective".
 */
#include "bench_util.hpp"

#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Table 2", "Sensitivity of VQA+VQM to Error Scaling",
        "bv-16 on fresh synthetic IBM-Q20 archives with scaled "
        "error statistics.");

    const auto machine = topology::ibmQ20Tokyo();
    const core::Mapper baseline = core::makeBaselineMapper();
    const core::Mapper vqaVqm = core::makeVqaVqmMapper();
    const auto bv = workloads::bernsteinVazirani(16);

    struct Row
    {
        const char *label;
        const char *cov;
        double errScale;
        double covMult;
        const char *paper;
    };
    const Row rows[] = {
        {"1x", "Cov-Base", 1.0, 1.0, "1.43x"},
        {"10x lower", "Cov-Base", 0.1, 1.0, "2.02x"},
        {"10x lower", "2*Cov-Base", 0.1, 2.0, "2.59x"},
    };

    TextTable table({"Benchmark", "Average Error-Rate",
                     "Covariation of Error Rate",
                     "Relative PST Benefit (VQA+VQM)",
                     "Paper"});
    for (const Row &row : rows) {
        calibration::SyntheticParams params;
        params.err2qMean *= row.errScale;
        params.err2qMin *= row.errScale;
        params.err2qMax *= row.errScale;
        params.linkPersonalityMin *= row.errScale;
        params.linkPersonalityMax *= row.errScale;
        params.err1qMedian *= row.errScale;
        params.err1qMin *= row.errScale;
        params.err1qMax *= row.errScale;
        params.readoutMedian *= row.errScale;
        params.readoutMin *= row.errScale;
        params.readoutMax *= row.errScale;
        params.t1MeanUs /= row.errScale;
        params.t1MaxUs /= row.errScale;
        params.t2MeanUs /= row.errScale;
        params.t2MaxUs /= row.errScale;
        // Relative variation: widen both the per-link lottery and
        // the spatial gradient, and open the clamp window so the
        // widened distribution is not truncated.
        params.err2qSigmaLog *= row.covMult;
        params.peripheryBiasLog *= row.covMult;
        params.err2qMax *= row.covMult;
        params.linkPersonalityMax *= row.covMult;
        params.err2qMin /= row.covMult;
        params.linkPersonalityMin /= row.covMult;

        calibration::SyntheticSource source(machine, params,
                                            bench::kArchiveSeed);
        const calibration::Snapshot snap =
            source.series(bench::kArchiveCycles).averaged();

        const double base = bench::analyticPstOf(baseline, bv,
                                                 machine, snap);
        const double aware = bench::analyticPstOf(vqaVqm, bv,
                                                  machine, snap);
        table.addRow({"bv-16", row.label, row.cov,
                      formatDouble(aware / base, 2) + "x",
                      row.paper});
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected shape: benefit > 1 at every error "
                 "level, and the 2*CoV row beats the\nsame-CoV "
                 "row. (Absolute values compress toward 1 at "
                 "lower error rates because\nrelative PST scales "
                 "as benefit^s -- see the header comment; "
                 "EXPERIMENTS.md\ndiscusses the difference from "
                 "the paper's published absolutes.)\n";
    return 0;
}
