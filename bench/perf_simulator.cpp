/**
 * @file
 * google-benchmark timing of the evaluation infrastructure: the
 * Monte-Carlo fault injector (the paper runs 1M trials per
 * workload), the dense state-vector simulator, and the trajectory
 * (hardware-surrogate) simulator.
 */
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/density_matrix.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "sim/statevector.hpp"
#include "sim/trajectory_sim.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace
{

using namespace vaq;

const bench::Q20Environment &
env()
{
    static const bench::Q20Environment instance;
    return instance;
}

const core::MappedCircuit &
mappedBv16()
{
    static const core::MappedCircuit instance =
        core::makeBaselineMapper().map(
            workloads::bernsteinVazirani(16), env().machine,
            env().averaged);
    return instance;
}

void
BM_FaultInjection(benchmark::State &state)
{
    const sim::NoiseModel model(env().machine, env().averaged);
    sim::FaultSimOptions options;
    options.trials = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::runFaultInjection(
            mappedBv16().physical, model, options));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_FaultInjection)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// The parallel trial engine on the same 1M-trial workload, swept
// over worker counts; compare against BM_FaultInjection (the serial
// engine) for the speedup. Real time is the relevant axis.
void
BM_ParallelFaultInjection(benchmark::State &state)
{
    const sim::NoiseModel model(env().machine, env().averaged);
    sim::ParallelFaultSim engine(
        static_cast<std::size_t>(state.range(1)));
    sim::ParallelFaultSimOptions options;
    options.trials = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine.run(mappedBv16().physical, model, options));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_ParallelFaultInjection)
    ->Args({1000000, 1})
    ->Args({1000000, 2})
    ->Args({1000000, 4})
    ->Args({1000000, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Adaptive precision: stop as soon as the error bar is small enough
// instead of burning the whole 1M-trial budget.
void
BM_AdaptiveFaultInjection(benchmark::State &state)
{
    const sim::NoiseModel model(env().machine, env().averaged);
    sim::ParallelFaultSim engine(
        static_cast<std::size_t>(state.range(0)));
    sim::ParallelFaultSimOptions options;
    options.trials = 1000000;
    options.targetStderr = 1e-3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine.run(mappedBv16().physical, model, options));
    }
}
BENCHMARK(BM_AdaptiveFaultInjection)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Many-circuit sweep through the batch API (the fig12/fig13-style
// driver pattern): one pool amortized across the whole suite.
void
BM_FaultInjectionBatch(benchmark::State &state)
{
    const sim::NoiseModel model(env().machine, env().averaged);
    static const std::vector<circuit::Circuit> suite = [] {
        std::vector<circuit::Circuit> circuits;
        const auto mapper = core::makeBaselineMapper();
        for (const auto &w :
             workloads::standardSuite(env().machine)) {
            circuits.push_back(
                mapper.map(w.circuit, env().machine,
                           env().averaged)
                    .physical);
        }
        return circuits;
    }();
    sim::ParallelFaultSim engine(
        static_cast<std::size_t>(state.range(0)));
    sim::ParallelFaultSimOptions options;
    options.trials = 100000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine.runBatch(suite, model, options));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(suite.size()) * 100000);
}
BENCHMARK(BM_FaultInjectionBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_AnalyticPst(benchmark::State &state)
{
    const sim::NoiseModel model(env().machine, env().averaged);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::analyticPst(mappedBv16().physical, model));
    }
}
BENCHMARK(BM_AnalyticPst);

void
BM_StateVectorQft(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const auto qft = workloads::qft(n);
    for (auto _ : state) {
        sim::StateVector sv(n);
        sv.applyUnitaries(qft);
        benchmark::DoNotOptimize(sv.norm());
    }
}
BENCHMARK(BM_StateVectorQft)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_StateVectorGate(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    const auto h =
        circuit::Gate::oneQubit(circuit::GateKind::H, n / 2);
    for (auto _ : state) {
        sv.apply(h);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_StateVectorGate)->Arg(10)->Arg(16)->Arg(20);

void
BM_TrajectoryShots(benchmark::State &state)
{
    const auto q5 = topology::ibmQ5Tenerife();
    calibration::SyntheticSource source(
        q5, calibration::SyntheticParams{}, 5);
    const auto snap = source.nextCycle();
    const sim::NoiseModel model(q5, snap);
    const auto mapped = core::makeBaselineMapper().map(
        workloads::bernsteinVazirani(4), q5, snap);
    sim::TrajectoryOptions options;
    options.shots = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::TrajectorySimulator machine(model, options);
        benchmark::DoNotOptimize(machine.run(mapped.physical));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_TrajectoryShots)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void
BM_DensityMatrixNoisy(benchmark::State &state)
{
    const auto q5 = topology::ibmQ5Tenerife();
    calibration::SyntheticSource source(
        q5, calibration::SyntheticParams{}, 6);
    const auto snap = source.nextCycle();
    const sim::NoiseModel model(q5, snap);
    const auto mapped = core::makeBaselineMapper().map(
        workloads::bernsteinVazirani(4), q5, snap);
    for (auto _ : state) {
        sim::DensityMatrix rho(5);
        rho.runNoisy(mapped.physical, model);
        benchmark::DoNotOptimize(rho.trace());
    }
}
BENCHMARK(BM_DensityMatrixNoisy)->Unit(benchmark::kMillisecond);

void
BM_ScheduleCircuit(benchmark::State &state)
{
    const sim::NoiseModel model(env().machine, env().averaged);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::scheduleCircuit(
            mappedBv16().physical, model));
    }
}
BENCHMARK(BM_ScheduleCircuit);

} // namespace
