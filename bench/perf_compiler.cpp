/**
 * @file
 * google-benchmark timing of the compilation pipeline: allocation,
 * movement planning, per-gate routing, layer-A* routing, and the
 * full policy portfolios. NISQ compilation is run *per job* (the
 * runtime recompiles against fresh calibration, Section 5.3), so
 * compile latency matters.
 */
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/batch_compiler.hpp"
#include "core/compile_cache.hpp"
#include "core/compile_options.hpp"
#include "store/adapter.hpp"
#include "store/artifact_store.hpp"
#include "workloads/workloads.hpp"

namespace
{

using namespace vaq;

const bench::Q20Environment &
env()
{
    static const bench::Q20Environment instance;
    return instance;
}

void
BM_AllocateLocality(benchmark::State &state)
{
    const auto bv = workloads::bernsteinVazirani(16);
    const core::LocalityAllocator allocator;
    for (auto _ : state) {
        benchmark::DoNotOptimize(allocator.allocate(
            bv, env().machine, env().averaged));
    }
}
BENCHMARK(BM_AllocateLocality);

void
BM_AllocateStrength(benchmark::State &state)
{
    const auto bv = workloads::bernsteinVazirani(16);
    const core::StrengthAllocator allocator;
    for (auto _ : state) {
        benchmark::DoNotOptimize(allocator.allocate(
            bv, env().machine, env().averaged));
    }
}
BENCHMARK(BM_AllocateStrength);

void
BM_MovementPlan(benchmark::State &state)
{
    const core::ReliabilityCost cost(env().machine,
                                     env().averaged);
    const core::MovementPlanner planner(env().machine, cost);
    int a = 0;
    for (auto _ : state) {
        const int b = (a + 13) % 20;
        benchmark::DoNotOptimize(planner.plan(a, b == a ? 19 : b));
        a = (a + 1) % 20;
    }
}
BENCHMARK(BM_MovementPlan);

void
BM_RoutePerGate(benchmark::State &state)
{
    const auto qft = workloads::qft(
        static_cast<int>(state.range(0)));
    const core::ReliabilityCost cost(env().machine,
                                     env().averaged);
    core::RouterOptions options;
    options.strategy = core::RouteStrategy::PerGate;
    const core::Router router(env().machine, cost, options);
    const auto initial = core::Layout::identity(
        qft.numQubits(), env().machine.numQubits());
    for (auto _ : state)
        benchmark::DoNotOptimize(router.route(qft, initial));
}
BENCHMARK(BM_RoutePerGate)->Arg(8)->Arg(12)->Arg(14);

void
BM_RouteLayerAstar(benchmark::State &state)
{
    const auto qft = workloads::qft(
        static_cast<int>(state.range(0)));
    const core::SwapCountCost cost(env().machine);
    core::RouterOptions options;
    options.strategy = core::RouteStrategy::LayerAstar;
    const core::Router router(env().machine, cost, options);
    const auto initial = core::Layout::identity(
        qft.numQubits(), env().machine.numQubits());
    for (auto _ : state)
        benchmark::DoNotOptimize(router.route(qft, initial));
}
BENCHMARK(BM_RouteLayerAstar)->Arg(8)->Arg(12);

void
BM_FullPolicy(benchmark::State &state)
{
    const auto suite = workloads::standardSuite(env().machine);
    const auto &w =
        suite[static_cast<std::size_t>(state.range(0))];
    const core::Mapper mapper = core::makeVqaVqmMapper();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mapper.map(w.circuit, env().machine, env().averaged));
    }
    state.SetLabel(w.name);
}
BENCHMARK(BM_FullPolicy)->DenseRange(0, 2)->Unit(
    benchmark::kMillisecond);

/**
 * The recompile-everything burst of the batch compiler: 100
 * programs x 4 calibration cycles. The acceptance target is >= 3x
 * the sequential seed compiler below — on few-core machines the
 * speedup comes from the shared reliability matrix and movement-
 * plan tables, not from parallelism.
 */
std::vector<circuit::Circuit>
batchCircuits()
{
    std::vector<circuit::Circuit> circuits;
    circuits.reserve(100);
    for (int i = 0; i < 100; ++i) {
        const int n = 4 + (i % 9);
        circuits.push_back(i % 2 == 0
                               ? workloads::bernsteinVazirani(n)
                               : workloads::qft(n));
    }
    return circuits;
}

std::vector<calibration::Snapshot>
batchSnapshots()
{
    calibration::SyntheticSource source(
        env().machine, calibration::SyntheticParams{},
        bench::kArchiveSeed);
    std::vector<calibration::Snapshot> snapshots;
    for (int c = 0; c < 4; ++c)
        snapshots.push_back(source.nextCycle());
    return snapshots;
}

void
BM_BatchCompile100x4(benchmark::State &state)
{
    const auto circuits = batchCircuits();
    const auto snapshots = batchSnapshots();
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});
    core::BatchOptions options;
    options.compile.cacheEnabled = true;
    options.compile.threads =
        static_cast<std::size_t>(state.range(0));
    options.scoreResults = false;
    core::BatchCompiler compiler(mapper, env().machine, options);
    core::invalidatePathCaches();
    const core::PathCacheStats before = core::pathCacheStats();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            compiler.compileAll(circuits, snapshots));
    }
    const core::PathCacheStats after = core::pathCacheStats();
    state.counters["jobs_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(circuits.size()) *
            static_cast<double>(snapshots.size()),
        benchmark::Counter::kIsRate);
    // Cache effectiveness over the whole run: hits / lookups across
    // the shared reliability-matrix and movement-plan tables.
    const double hits = static_cast<double>(
        (after.matrixHits - before.matrixHits) +
        (after.planHits - before.planHits));
    const double lookups =
        hits + static_cast<double>(
                   (after.matrixMisses - before.matrixMisses) +
                   (after.planMisses - before.planMisses));
    state.counters["cache_hit_ratio"] =
        lookups > 0.0 ? hits / lookups : 0.0;
}
// Real time + process CPU: the work happens on pool threads, so
// main-thread CPU time (the default) would be near zero and the
// rate counter meaningless.
BENCHMARK(BM_BatchCompile100x4)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

void
BM_SequentialCompile100x4_Seed(benchmark::State &state)
{
    const auto circuits = batchCircuits();
    const auto snapshots = batchSnapshots();
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});
    // The seed compiler: caches off, one compile at a time, every
    // route and distance recomputed per job.
    const core::CompileOptions seedOptions{.cacheEnabled = false};
    for (auto _ : state) {
        for (const auto &snapshot : snapshots) {
            for (const auto &circuit : circuits) {
                benchmark::DoNotOptimize(mapper.compile(
                    circuit, env().machine, snapshot,
                    seedOptions));
            }
        }
    }
    state.counters["jobs_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(circuits.size()) *
            static_cast<double>(snapshots.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialCompile100x4_Seed)
    ->Unit(benchmark::kMillisecond);

/**
 * Cold-vs-warm compile latency over a calibration-series replay
 * through the persistent artifact store (src/store/). The series
 * drifts one qubit per cycle, so even a cold pass serves most of
 * cycles 1+ via delta reuse; the warm pass replays the identical
 * series against a populated store and compiles nothing. The two
 * benches print as adjacent columns: the gap is the store's win.
 */
std::vector<circuit::Circuit>
replayCircuits()
{
    std::vector<circuit::Circuit> circuits;
    circuits.reserve(30);
    for (int i = 0; i < 30; ++i) {
        const int n = 4 + (i % 6);
        circuits.push_back(i % 2 == 0
                               ? workloads::bernsteinVazirani(n)
                               : workloads::qft(n));
    }
    return circuits;
}

std::vector<calibration::Snapshot>
driftSeries(std::size_t cycles)
{
    calibration::SyntheticSource source(
        env().machine, calibration::SyntheticParams{},
        bench::kArchiveSeed);
    std::vector<calibration::Snapshot> series;
    series.push_back(source.nextCycle());
    for (std::size_t c = 1; c < cycles; ++c) {
        calibration::Snapshot next = series.back();
        // Recalibration touched one qubit; everything else held.
        const int q =
            static_cast<int>(c) % env().machine.numQubits();
        next.qubit(q).t1Us *= 0.95;
        next.qubit(q).readoutError *= 1.05;
        series.push_back(next);
    }
    return series;
}

double
replaySeries(core::BatchCompiler &compiler,
             const std::vector<circuit::Circuit> &circuits,
             const std::vector<calibration::Snapshot> &series)
{
    double jobs = 0.0;
    for (const auto &snapshot : series) {
        const auto results =
            compiler.compileAll(circuits, {snapshot});
        jobs += static_cast<double>(results.size());
        benchmark::DoNotOptimize(results);
    }
    return jobs;
}

void
BM_SeriesReplayColdStore(benchmark::State &state)
{
    const auto circuits = replayCircuits();
    const auto series = driftSeries(4);
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});
    double jobs = 0.0;
    std::uint64_t compiles = 0, delta = 0;
    for (auto _ : state) {
        // A fresh memory-only store per pass: every pass pays the
        // cold compiles, then rides delta reuse across cycles.
        store::ArtifactStore artifacts(store::StoreOptions{});
        store::ArtifactCacheAdapter cache(
            artifacts, env().machine, {.name = "vqm"});
        core::BatchOptions options;
        options.scoreResults = false;
        options.artifactCache = &cache;
        core::BatchCompiler compiler(mapper, env().machine,
                                     options);
        jobs += replaySeries(compiler, circuits, series);
        compiles += artifacts.stats().misses;
        delta += artifacts.stats().deltaReuse;
    }
    state.counters["jobs_per_s"] =
        benchmark::Counter(jobs, benchmark::Counter::kIsRate);
    state.counters["compiles"] = static_cast<double>(compiles) /
                                 static_cast<double>(
                                     state.iterations());
    state.counters["delta_reuse"] =
        static_cast<double>(delta) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_SeriesReplayColdStore)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

void
BM_SeriesReplayWarmStore(benchmark::State &state)
{
    const auto circuits = replayCircuits();
    const auto series = driftSeries(4);
    const core::Mapper mapper = core::makeMapper({.name = "vqm"});
    store::ArtifactStore artifacts(store::StoreOptions{});
    store::ArtifactCacheAdapter cache(artifacts, env().machine,
                                      {.name = "vqm"});
    core::BatchOptions options;
    options.scoreResults = false;
    options.artifactCache = &cache;
    core::BatchCompiler compiler(mapper, env().machine, options);
    // Prime: one full pass populates the store for every cycle.
    replaySeries(compiler, circuits, series);
    double jobs = 0.0;
    for (auto _ : state)
        jobs += replaySeries(compiler, circuits, series);
    state.counters["jobs_per_s"] =
        benchmark::Counter(jobs, benchmark::Counter::kIsRate);
    state.counters["store_hits"] = static_cast<double>(
        artifacts.stats().exactHits + artifacts.stats().deltaReuse);
}
BENCHMARK(BM_SeriesReplayWarmStore)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Compile-then-simulate throughput on the compiled artifact, so the
 * benchmark JSON carries a trials/sec figure next to the compile
 * rates above (the runtime's job loop does both per job).
 */
void
BM_CompiledCircuitTrialRate(benchmark::State &state)
{
    const auto bv = workloads::bernsteinVazirani(16);
    const auto mapped = core::makeMapper({.name = "vqa+vqm"})
                            .map(bv, env().machine, env().averaged);
    const sim::NoiseModel model(env().machine, env().averaged);
    sim::ParallelFaultSim engine;
    sim::ParallelFaultSimOptions options;
    options.trials = 200000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine.run(mapped.physical, model, options));
    }
    state.counters["trials_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(options.trials),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CompiledCircuitTrialRate)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

void
BM_StrongestSubgraph(benchmark::State &state)
{
    std::vector<graph::WeightedEdge> edges;
    for (std::size_t l = 0; l < env().machine.linkCount(); ++l) {
        const auto &link = env().machine.links()[l];
        edges.push_back(graph::WeightedEdge{
            link.a, link.b,
            1.0 - env().averaged.linkError(l)});
    }
    const graph::WeightedGraph strength(
        env().machine.numQubits(), edges);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph::bestConnectedSubgraph(
            strength, static_cast<std::size_t>(state.range(0)),
            graph::SubgraphScore::InducedWeight));
    }
}
BENCHMARK(BM_StrongestSubgraph)->Arg(4)->Arg(8)->Arg(10)->Unit(
    benchmark::kMillisecond);

} // namespace
