/**
 * @file
 * google-benchmark timing of the compilation pipeline: allocation,
 * movement planning, per-gate routing, layer-A* routing, and the
 * full policy portfolios. NISQ compilation is run *per job* (the
 * runtime recompiles against fresh calibration, Section 5.3), so
 * compile latency matters.
 */
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "workloads/workloads.hpp"

namespace
{

using namespace vaq;

const bench::Q20Environment &
env()
{
    static const bench::Q20Environment instance;
    return instance;
}

void
BM_AllocateLocality(benchmark::State &state)
{
    const auto bv = workloads::bernsteinVazirani(16);
    const core::LocalityAllocator allocator;
    for (auto _ : state) {
        benchmark::DoNotOptimize(allocator.allocate(
            bv, env().machine, env().averaged));
    }
}
BENCHMARK(BM_AllocateLocality);

void
BM_AllocateStrength(benchmark::State &state)
{
    const auto bv = workloads::bernsteinVazirani(16);
    const core::StrengthAllocator allocator;
    for (auto _ : state) {
        benchmark::DoNotOptimize(allocator.allocate(
            bv, env().machine, env().averaged));
    }
}
BENCHMARK(BM_AllocateStrength);

void
BM_MovementPlan(benchmark::State &state)
{
    const core::ReliabilityCost cost(env().machine,
                                     env().averaged);
    const core::MovementPlanner planner(env().machine, cost);
    int a = 0;
    for (auto _ : state) {
        const int b = (a + 13) % 20;
        benchmark::DoNotOptimize(planner.plan(a, b == a ? 19 : b));
        a = (a + 1) % 20;
    }
}
BENCHMARK(BM_MovementPlan);

void
BM_RoutePerGate(benchmark::State &state)
{
    const auto qft = workloads::qft(
        static_cast<int>(state.range(0)));
    const core::ReliabilityCost cost(env().machine,
                                     env().averaged);
    core::RouterOptions options;
    options.strategy = core::RouteStrategy::PerGate;
    const core::Router router(env().machine, cost, options);
    const auto initial = core::Layout::identity(
        qft.numQubits(), env().machine.numQubits());
    for (auto _ : state)
        benchmark::DoNotOptimize(router.route(qft, initial));
}
BENCHMARK(BM_RoutePerGate)->Arg(8)->Arg(12)->Arg(14);

void
BM_RouteLayerAstar(benchmark::State &state)
{
    const auto qft = workloads::qft(
        static_cast<int>(state.range(0)));
    const core::SwapCountCost cost(env().machine);
    core::RouterOptions options;
    options.strategy = core::RouteStrategy::LayerAstar;
    const core::Router router(env().machine, cost, options);
    const auto initial = core::Layout::identity(
        qft.numQubits(), env().machine.numQubits());
    for (auto _ : state)
        benchmark::DoNotOptimize(router.route(qft, initial));
}
BENCHMARK(BM_RouteLayerAstar)->Arg(8)->Arg(12);

void
BM_FullPolicy(benchmark::State &state)
{
    const auto suite = workloads::standardSuite(env().machine);
    const auto &w =
        suite[static_cast<std::size_t>(state.range(0))];
    const core::Mapper mapper = core::makeVqaVqmMapper();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mapper.map(w.circuit, env().machine, env().averaged));
    }
    state.SetLabel(w.name);
}
BENCHMARK(BM_FullPolicy)->DenseRange(0, 2)->Unit(
    benchmark::kMillisecond);

void
BM_StrongestSubgraph(benchmark::State &state)
{
    std::vector<graph::WeightedEdge> edges;
    for (std::size_t l = 0; l < env().machine.linkCount(); ++l) {
        const auto &link = env().machine.links()[l];
        edges.push_back(graph::WeightedEdge{
            link.a, link.b,
            1.0 - env().averaged.linkError(l)});
    }
    const graph::WeightedGraph strength(
        env().machine.numQubits(), edges);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph::bestConnectedSubgraph(
            strength, static_cast<std::size_t>(state.range(0)),
            graph::SubgraphScore::InducedWeight));
    }
}
BENCHMARK(BM_StrongestSubgraph)->Arg(4)->Arg(8)->Arg(10)->Unit(
    benchmark::kMillisecond);

} // namespace
