/**
 * @file
 * google-benchmark timing of the fault-isolation layer: batch
 * throughput with ~5% of jobs hitting an injected compile fault
 * (rescued by the policy-degradation ladder) versus a clean batch,
 * and the calibration quarantine's per-snapshot cost. The headline
 * number is how much a few faulty jobs tax the healthy ones.
 */
#include <benchmark/benchmark.h>

#include <limits>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "calibration/sanitize.hpp"
#include "core/allocator.hpp"
#include "core/batch_compiler.hpp"
#include "workloads/workloads.hpp"

namespace
{

using namespace vaq;

const bench::Q20Environment &
env()
{
    static const bench::Q20Environment instance;
    return instance;
}

/** Throws for programs of exactly `trigger_qubits` qubits, so the
 *  injected fault rate is a property of the job list. */
class FaultyAllocator final : public core::Allocator
{
  public:
    explicit FaultyAllocator(int trigger_qubits)
        : _trigger(trigger_qubits)
    {}

    core::Layout allocate(
        const circuit::Circuit &logical,
        const topology::CouplingGraph &graph,
        const calibration::Snapshot &snapshot) const override
    {
        if (logical.numQubits() == _trigger)
            throw CompileError("injected bench fault");
        return _inner.allocate(logical, graph, snapshot);
    }

    std::string name() const override { return "faulty"; }

  private:
    core::LocalityAllocator _inner;
    int _trigger;
};

constexpr int kTriggerQubits = 7;

/** 100 programs; every 20th (5%) has the trigger qubit count. */
std::vector<circuit::Circuit>
batchCircuits(bool with_faults)
{
    std::vector<circuit::Circuit> circuits;
    circuits.reserve(100);
    for (int i = 0; i < 100; ++i) {
        int n = 4 + (i % 3); // 4..6, never the trigger
        if (with_faults && i % 20 == 0)
            n = kTriggerQubits;
        circuits.push_back(i % 2 == 0
                               ? workloads::bernsteinVazirani(n)
                               : workloads::qft(n));
    }
    return circuits;
}

void
runBatchBench(benchmark::State &state, bool with_faults)
{
    const auto circuits = batchCircuits(with_faults);
    const core::Mapper mapper(
        "faulty", std::make_unique<FaultyAllocator>(kTriggerQubits),
        core::CostKind::SwapCount);
    core::BatchOptions options;
    options.compile.cacheEnabled = true;
    options.compile.threads = 0; // all cores
    options.scoreResults = false;
    core::BatchCompiler compiler(mapper, env().machine, options);
    std::size_t rescued = 0;
    for (auto _ : state) {
        const auto results =
            compiler.compileAll(circuits, {env().averaged});
        for (const auto &r : results) {
            if (r.status == core::JobStatus::Degraded)
                ++rescued;
        }
        benchmark::DoNotOptimize(results);
    }
    state.counters["jobs_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(circuits.size()),
        benchmark::Counter::kIsRate);
    state.counters["rescued_per_batch"] =
        state.iterations() > 0
            ? static_cast<double>(rescued) /
                  static_cast<double>(state.iterations())
            : 0.0;
}

void
BM_BatchCompileClean100(benchmark::State &state)
{
    runBatchBench(state, false);
}
// Real time + process CPU: the work happens on pool threads, so
// main-thread CPU time alone would make the rate meaningless.
BENCHMARK(BM_BatchCompileClean100)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

void
BM_BatchCompile5PctFaulty100(benchmark::State &state)
{
    runBatchBench(state, true);
}
BENCHMARK(BM_BatchCompile5PctFaulty100)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

/** The quarantine pass itself: sanitize a snapshot with one dead
 *  qubit (worst common case: BFS over the full machine). */
void
BM_SanitizeSnapshot(benchmark::State &state)
{
    calibration::Snapshot poisoned = env().averaged;
    poisoned.qubit(3).t1Us =
        std::numeric_limits<double>::quiet_NaN();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            calibration::sanitize(poisoned, env().machine));
    }
}
BENCHMARK(BM_SanitizeSnapshot);

} // namespace
