/**
 * @file
 * Trials-per-second comparison of the dense trajectory engine and
 * the Pauli-frame fast path on Clifford-dominated Monte-Carlo
 * fault-injection workloads, at widths 5 / 16 / 20 / 27.
 *
 * Read `items_per_second` across the two families: the frame path
 * must beat the dense engine by >= 50x at Falcon-27 scale (the
 * dense engine moves a 2 GiB state per trial there, the frame
 * engine two machine words per qubit). The dense-27 bench is pinned
 * to a handful of trials and one iteration so the comparison stays
 * runnable on a laptop.
 */
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>

#include "calibration/synthetic.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/noise_model.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "topology/coupling_graph.hpp"
#include "topology/layouts.hpp"

namespace
{

using namespace vaq;

topology::CouplingGraph
graphFor(int width)
{
    switch (width) {
      case 5:
        return topology::ibmQ5Tenerife();
      case 16:
        return topology::grid(4, 4);
      case 20:
        return topology::ibmQ20Tokyo();
      default:
        return topology::ibmFalcon27();
    }
}

/**
 * Machine-respecting Clifford-dominated workload, generated in
 * physical form (two-qubit gates across coupling links only). The
 * H count is capped so the ideal accept set stays a small affine
 * subspace and the outcome-checked engines accept the circuit at
 * every width.
 */
circuit::Circuit
cliffordWorkload(const topology::CouplingGraph &graph, int num_gates)
{
    constexpr int kMaxH = 3;
    Rng rng(0x5eed);
    const int n = graph.numQubits();
    circuit::Circuit c(n);
    int hUsed = 0;
    for (int i = 0; i < num_gates; ++i) {
        if (rng.uniformInt(10) >= 6) {
            const auto &link = graph.links()[rng.uniformInt(
                static_cast<std::uint64_t>(graph.linkCount()))];
            const bool flip = rng.uniformInt(2) == 1;
            const auto a = static_cast<circuit::Qubit>(
                flip ? link.b : link.a);
            const auto b = static_cast<circuit::Qubit>(
                flip ? link.a : link.b);
            switch (rng.uniformInt(3)) {
              case 0: c.cx(a, b); break;
              case 1: c.cz(a, b); break;
              default: c.swap(a, b); break;
            }
        } else {
            const auto q = static_cast<circuit::Qubit>(
                rng.uniformInt(static_cast<std::uint64_t>(n)));
            switch (rng.uniformInt(6)) {
              case 0:
                if (hUsed < kMaxH) {
                    c.h(q);
                    ++hUsed;
                } else {
                    c.s(q);
                }
                break;
              case 1: c.s(q); break;
              case 2: c.sdg(q); break;
              case 3: c.x(q); break;
              case 4: c.y(q); break;
              default: c.z(q); break;
            }
        }
    }
    c.measureAll();
    return c;
}

/** One machine + workload per width; NoiseModel holds references,
 *  so each environment is built once and never moved. */
struct FrameEnv
{
    topology::CouplingGraph graph;
    calibration::Snapshot snapshot;
    sim::NoiseModel model;
    circuit::Circuit circuit;

    explicit FrameEnv(int width)
        : graph(graphFor(width)),
          snapshot(calibration::SyntheticSource(
                       graph, calibration::SyntheticParams{}, 11)
                       .nextCycle()),
          model(graph, snapshot),
          circuit(cliffordWorkload(graph, width * 8))
    {
    }
};

const FrameEnv &
envFor(int width)
{
    static std::map<int, FrameEnv> envs;
    auto it = envs.find(width);
    if (it == envs.end())
        it = envs.try_emplace(width, width).first;
    return it->second;
}

void
runEngine(benchmark::State &state, sim::SimEngine engine,
          std::size_t trials)
{
    const FrameEnv &env = envFor(static_cast<int>(state.range(0)));
    sim::OutcomeSimOptions options;
    options.trials = trials;
    options.engine = engine;
    sim::ParallelFaultSim sim(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.runOutcomeChecked(env.circuit, env.model, options));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trials));
}

void
BM_DenseTrials(benchmark::State &state)
{
    runEngine(state, sim::SimEngine::Dense, 512);
}
BENCHMARK(BM_DenseTrials)
    ->Arg(5)
    ->Arg(16)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

// The 27-qubit dense data point exists only to anchor the >= 50x
// claim: a single iteration of a few trials, each hauling a 2 GiB
// state through the full gate stream.
void
BM_DenseTrialsFalcon27(benchmark::State &state)
{
    runEngine(state, sim::SimEngine::Dense, 4);
}
BENCHMARK(BM_DenseTrialsFalcon27)
    ->Arg(27)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
BM_FrameTrials(benchmark::State &state)
{
    runEngine(state, sim::SimEngine::PauliFrame, 16384);
}
BENCHMARK(BM_FrameTrials)
    ->Arg(5)
    ->Arg(16)
    ->Arg(20)
    ->Arg(27)
    ->Unit(benchmark::kMillisecond);

} // namespace
