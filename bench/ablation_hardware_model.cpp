/**
 * @file
 * Ablation: robustness of the Table 3 result to hardware realism
 * the paper's model omits (Section 9 "Error Models" limitations).
 *
 * Runs the Q5 kernels under four execution models:
 *   A. independent errors (the paper's model),
 *   B. + native CX directions (reversed gates pay 4 Hadamards),
 *   C. + crosstalk (spectator qubits take collateral Paulis),
 *   D. B and C together.
 *
 * The question: does the variation-aware advantage survive when
 * the machine is messier than the compiler's model? (It should —
 * that is the entire premise of the paper's Section 7.)
 */
#include "bench_util.hpp"

#include "circuit/orient.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "sim/trajectory_sim.hpp"
#include "topology/directions.hpp"
#include "workloads/workloads.hpp"

namespace
{

using namespace vaq;

double
hardwarePst(const core::MappedCircuit &mapped,
            const circuit::Circuit &logical,
            const sim::NoiseModel &model,
            const sim::TrajectoryOptions &options, bool directed,
            const topology::CnotDirections &directions)
{
    circuit::Circuit toRun = mapped.physical;
    if (directed)
        toRun = circuit::orientCnots(toRun, directions);
    sim::TrajectorySimulator machine(model, options);
    const auto counts = machine.run(toRun);
    std::vector<std::uint64_t> accept;
    for (std::uint64_t outcome : sim::idealOutcomes(logical)) {
        std::uint64_t phys = 0;
        for (int q = 0; q < logical.numQubits(); ++q) {
            if (outcome & (1ULL << q))
                phys |= 1ULL << mapped.final.phys(q);
        }
        accept.push_back(phys & counts.measuredMask);
    }
    return sim::pstFromCounts(counts, accept);
}

} // namespace

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Ablation", "Hardware-Model Realism (Q5 kernels)",
        "Relative benefit of VQA+VQM over baseline under "
        "increasingly realistic\nexecution models. 4096 shots per "
        "cell.");

    const auto q5 = topology::ibmQ5Tenerife();
    const auto directions =
        topology::ibmQ5TenerifeDirections(q5);
    const calibration::Snapshot snap =
        bench::paperEraTenerife(q5);

    const core::Mapper baseline = core::makeBaselineMapper();
    const core::Mapper aware = core::makeVqaVqmMapper();
    const sim::NoiseModel model(q5, snap);

    struct Model
    {
        const char *label;
        bool directed;
        double crosstalk;
    };
    const Model models[] = {
        {"independent", false, 0.0},
        {"+directions", true, 0.0},
        {"+crosstalk", false, 0.5},
        {"+both", true, 0.5},
    };

    TextTable table({"Benchmark", "independent", "+directions",
                     "+crosstalk", "+both"});
    std::vector<std::vector<double>> benefits(4);
    for (const auto &w : workloads::q5Suite()) {
        const auto mappedBase =
            baseline.map(w.circuit, q5, snap);
        const auto mappedAware = aware.map(w.circuit, q5, snap);
        std::vector<std::string> row{w.name};
        for (std::size_t m = 0; m < 4; ++m) {
            sim::TrajectoryOptions options;
            options.shots = 4096;
            options.crosstalk = models[m].crosstalk;
            const double pb = hardwarePst(
                mappedBase, w.circuit, model, options,
                models[m].directed, directions);
            const double pa = hardwarePst(
                mappedAware, w.circuit, model, options,
                models[m].directed, directions);
            benefits[m].push_back(pa / pb);
            row.push_back(formatDouble(pa / pb, 2) + "x (" +
                          formatDouble(pb, 2) + "->" +
                          formatDouble(pa, 2) + ")");
        }
        table.addRow(row);
    }
    std::vector<std::string> geo{"GeoMean"};
    for (std::size_t m = 0; m < 4; ++m)
        geo.push_back(formatDouble(geomean(benefits[m]), 2) + "x");
    table.addRow(geo);

    std::cout << table.render() << "\n";
    std::cout << "Expected: the geomean benefit stays > 1 in "
                 "every column -- the policies were\ncompiled "
                 "against the independent model, yet their edge "
                 "survives directed gates\nand crosstalk.\n";
    return 0;
}
