/**
 * @file
 * Fig. 13: relative PST of the full policy stack — IBM-native-like
 * randomized compiler (32 seeds, min/avg/max), baseline (= 1.0),
 * VQM, and VQA+VQM. Paper shape: native is ~4x below baseline;
 * VQA+VQM >= VQM >= baseline with up to ~1.7x gains (and up to 7x
 * over the native compiler).
 */
#include "bench_util.hpp"

#include <algorithm>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 13", "PST for VQA and VQM+VQA vs IBM Native",
        "Relative PST normalized to the baseline policy. The "
        "randomized native\ncompiler is evaluated over 32 seeds "
        "(avg [min..max] reported).");

    bench::Q20Environment env;
    std::vector<core::Mapper> policies;
    policies.push_back(core::makeBaselineMapper());
    policies.push_back(core::makeVqmMapper());
    policies.push_back(core::makeVqaVqmMapper());
    const std::size_t numPolicies = policies.size();

    // Compile the deterministic policy stack for every benchmark,
    // then evaluate the whole sweep through one batched trial
    // engine. The 32-seed randomized comparator only feeds the
    // min/avg/max summary, so it stays on the closed form.
    const auto suite = workloads::standardSuite(env.machine);
    std::vector<circuit::Circuit> physicals;
    physicals.reserve(suite.size() * numPolicies);
    for (const auto &w : suite) {
        for (const core::Mapper &policy : policies) {
            physicals.push_back(
                policy.map(w.circuit, env.machine, env.averaged)
                    .physical);
        }
    }
    const auto results =
        bench::batchPstOf(physicals, env.machine, env.averaged);

    TextTable table({"Benchmark", "IBM Native (avg [min..max])",
                     "Baseline", "VQM", "VQA+VQM"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &w = suite[i];
        const double base =
            results[i * numPolicies].analyticPst;
        const double aware =
            results[i * numPolicies + 1].analyticPst;
        const double both =
            results[i * numPolicies + 2].analyticPst;

        std::vector<double> native;
        for (std::uint64_t seed = 1; seed <= 32; ++seed) {
            native.push_back(
                bench::analyticPstOf(
                    core::makeRandomizedMapper(seed), w.circuit,
                    env.machine, env.averaged) /
                base);
        }
        const double lo =
            *std::min_element(native.begin(), native.end());
        const double hi =
            *std::max_element(native.begin(), native.end());

        table.addRow({w.name,
                      formatDouble(mean(native), 2) + " [" +
                          formatDouble(lo, 2) + ".." +
                          formatDouble(hi, 2) + "]",
                      "1.00", formatDouble(aware / base, 2),
                      formatDouble(both / base, 2)});
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected shape (paper): native << baseline "
                 "(~0.25x avg); VQA+VQM >= VQM >= 1.0\nfor every "
                 "benchmark.\n";
    return 0;
}
