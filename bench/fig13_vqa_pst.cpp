/**
 * @file
 * Fig. 13: relative PST of the full policy stack — IBM-native-like
 * randomized compiler (32 seeds, min/avg/max), baseline (= 1.0),
 * VQM, and VQA+VQM. Paper shape: native is ~4x below baseline;
 * VQA+VQM >= VQM >= baseline with up to ~1.7x gains (and up to 7x
 * over the native compiler).
 */
#include "bench_util.hpp"

#include <algorithm>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;
    bench::printHeader(
        "Figure 13", "PST for VQA and VQM+VQA vs IBM Native",
        "Relative PST normalized to the baseline policy. The "
        "randomized native\ncompiler is evaluated over 32 seeds "
        "(avg [min..max] reported).");

    bench::Q20Environment env;
    const core::Mapper baseline = core::makeBaselineMapper();
    const core::Mapper vqm = core::makeVqmMapper();
    const core::Mapper vqaVqm = core::makeVqaVqmMapper();

    TextTable table({"Benchmark", "IBM Native (avg [min..max])",
                     "Baseline", "VQM", "VQA+VQM"});
    for (const auto &w : workloads::standardSuite(env.machine)) {
        const double base = bench::analyticPstOf(
            baseline, w.circuit, env.machine, env.averaged);

        std::vector<double> native;
        for (std::uint64_t seed = 1; seed <= 32; ++seed) {
            native.push_back(
                bench::analyticPstOf(
                    core::makeRandomizedMapper(seed), w.circuit,
                    env.machine, env.averaged) /
                base);
        }
        const double lo =
            *std::min_element(native.begin(), native.end());
        const double hi =
            *std::max_element(native.begin(), native.end());

        const double aware = bench::analyticPstOf(
            vqm, w.circuit, env.machine, env.averaged);
        const double both = bench::analyticPstOf(
            vqaVqm, w.circuit, env.machine, env.averaged);

        table.addRow({w.name,
                      formatDouble(mean(native), 2) + " [" +
                          formatDouble(lo, 2) + ".." +
                          formatDouble(hi, 2) + "]",
                      "1.00", formatDouble(aware / base, 2),
                      formatDouble(both / base, 2)});
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected shape (paper): native << baseline "
                 "(~0.25x avg); VQA+VQM >= VQM >= 1.0\nfor every "
                 "benchmark.\n";
    return 0;
}
