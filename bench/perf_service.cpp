/**
 * @file
 * vaqd service load generator: drives CompileService through a real
 * loopback HttpServer and reports requests/s with p50/p99 latency at
 * 1, 4 and 16 concurrent clients, cold (every request compiled) vs
 * store-warmed (every request served from the artifact store). The
 * paper's daemon premise — recompile the queue against every fresh
 * calibration epoch — only holds up if warm service latency is a
 * small multiple of the wire cost, which is what this bench shows.
 *
 * Usage:
 *   perf_service                 in-process benchmark (default)
 *   perf_service --requests N    per-client request count (def 64)
 *   perf_service --smoke --port P
 *       CI smoke client against an already-running vaqd on port P:
 *       one health probe, one compile, one calibration rollover,
 *       one post-rollover compile. Exits non-zero on any failure.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "circuit/qasm.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "obs/metrics.hpp"
#include "service/http.hpp"
#include "service/service.hpp"
#include "store/artifact_store.hpp"
#include "workloads/workloads.hpp"

namespace
{

using namespace vaq;
using Clock = std::chrono::steady_clock;

std::string
compileBody(const circuit::Circuit &logical,
            const std::string &policy)
{
    json::Value body = json::Value::object();
    body.set("clientId", json::Value::string("perf"));
    body.set("qasm",
             json::Value::string(circuit::toQasm(logical)));
    json::Value spec = json::Value::object();
    spec.set("name", json::Value::string(policy));
    body.set("policy", std::move(spec));
    return json::write(body);
}

struct LoadReport
{
    double requestsPerSecond = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    std::size_t failures = 0;
};

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t at = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(
                                         sorted.size())));
    return sorted[at];
}

/** Fire `requests` POSTs from each of `clients` threads. */
LoadReport
runLoad(int port, const std::string &body, int clients,
        int requests)
{
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::atomic<std::size_t> failures{0};
    const Clock::time_point start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
            std::vector<double> &mine =
                latencies[static_cast<std::size_t>(c)];
            mine.reserve(static_cast<std::size_t>(requests));
            for (int r = 0; r < requests; ++r) {
                const Clock::time_point t0 = Clock::now();
                try {
                    const service::HttpResponse response =
                        service::httpExchange(port, "POST",
                                              "/v1/compile", body);
                    if (response.status != 200)
                        ++failures;
                } catch (...) {
                    ++failures;
                }
                mine.push_back(
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count());
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start)
            .count();

    std::vector<double> all;
    for (const std::vector<double> &chunk : latencies)
        all.insert(all.end(), chunk.begin(), chunk.end());
    LoadReport report;
    report.requestsPerSecond =
        elapsed > 0.0 ? static_cast<double>(all.size()) / elapsed
                      : 0.0;
    report.p50Ms = percentile(all, 0.50);
    report.p99Ms = percentile(all, 0.99);
    report.failures = failures.load();
    return report;
}

void
printRow(const std::string &mode, const std::string &clients,
         const std::string &rps, const std::string &p50,
         const std::string &p99, const std::string &fail)
{
    std::cout << std::left << std::setw(8) << mode
              << std::setw(9) << clients << std::setw(11) << rps
              << std::setw(10) << p50 << std::setw(10) << p99
              << fail << "\n";
}

int
runBenchmark(int requests)
{
    const topology::CouplingGraph machine =
        topology::ibmQ20Tokyo();
    const circuit::Circuit program = workloads::qft(5);
    const std::string body = compileBody(program, "vqa+vqm");

    std::cout << "vaqd service load (qft5 on q20, vqa+vqm, "
              << requests << " requests/client)\n";
    printRow("mode", "clients", "req/s", "p50 ms", "p99 ms",
             "fail");

    for (const bool warmed : {false, true}) {
        // A fresh service per mode so cold numbers are honest.
        store::ArtifactStore store{store::StoreOptions{}};
        calibration::Snapshot snapshot =
            calibration::SyntheticSource(
                machine, calibration::SyntheticParams{},
                bench::kArchiveSeed)
                .nextCycle();
        service::ServiceOptions options;
        options.compile.telemetryEnabled = false;
        service::CompileService daemon(
            machine, std::move(snapshot), options,
            warmed ? &store : nullptr);
        service::HttpServer server(
            service::HttpServerOptions{},
            [&daemon](const service::HttpRequest &request) {
                return daemon.handle(request);
            });
        if (warmed) {
            // Prime the store: the first request records, the
            // rest of the run serves exact hits.
            service::httpExchange(server.port(), "POST",
                                  "/v1/compile", body);
        }
        for (const int clients : {1, 4, 16}) {
            const LoadReport report =
                runLoad(server.port(), body, clients, requests);
            printRow(warmed ? "warmed" : "cold",
                     std::to_string(clients),
                     formatDouble(report.requestsPerSecond, 4),
                     formatDouble(report.p50Ms, 3),
                     formatDouble(report.p99Ms, 3),
                     std::to_string(report.failures));
            if (report.failures != 0)
                return 1;
        }
        server.stop();
    }
    return 0;
}

/** CI smoke client: probe an external vaqd and exercise one full
 *  compile / rollover / recompile cycle. */
int
runSmoke(int port)
{
    const auto expect = [](const char *what,
                           const service::HttpResponse &response,
                           int status) {
        if (response.status != status) {
            std::cerr << "smoke: " << what << " returned "
                      << response.status << " (want " << status
                      << "): " << response.body << "\n";
            std::exit(1);
        }
        std::cout << "smoke: " << what << " ok\n";
    };

    const circuit::Circuit program = workloads::qft(5);
    const std::string body = compileBody(program, "vqa+vqm");
    expect("healthz",
           service::httpExchange(port, "GET", "/healthz"), 200);
    expect("compile",
           service::httpExchange(port, "POST", "/v1/compile",
                                 body),
           200);
    expect("rollover",
           service::httpExchange(port, "POST", "/v1/calibration",
                                 "{\"syntheticSeed\": 11}"),
           200);
    expect("recompile",
           service::httpExchange(port, "POST", "/v1/compile",
                                 body),
           200);
    const service::HttpResponse metrics =
        service::httpExchange(port, "GET", "/metrics");
    if (metrics.status != 200 ||
        metrics.body.find("vaq_service_requests") ==
            std::string::npos) {
        std::cerr << "smoke: /metrics missing "
                     "vaq_service_requests\n";
        return 1;
    }
    std::cout << "smoke: metrics ok\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int requests = 64;
    int port = 0;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--port" && i + 1 < argc) {
            port = std::atoi(argv[++i]);
        } else if (arg == "--requests" && i + 1 < argc) {
            requests = std::atoi(argv[++i]);
        } else {
            std::cerr << "usage: perf_service [--requests N] | "
                         "--smoke --port P\n";
            return 2;
        }
    }
    try {
        if (smoke) {
            if (port <= 0) {
                std::cerr << "--smoke needs --port P\n";
                return 2;
            }
            return runSmoke(port);
        }
        return runBenchmark(requests);
    } catch (const std::exception &e) {
        std::cerr << "perf_service: " << e.what() << "\n";
        return 1;
    }
}
