/**
 * @file
 * All-pairs most-reliable-path table with next-hop reconstruction,
 * plus a hash-keyed, epoch-invalidated cache of such tables.
 *
 * The paper's reliability matrix (Section 5) is a fixed function of
 * one calibration snapshot: with edge weights set to -log(link
 * success probability), the cheapest a-b path is the
 * maximum-reliability SWAP route, and the whole table can be built
 * once per snapshot (Floyd-Warshall) instead of re-running Dijkstra
 * for every routing query. Noise-adaptive compilers recompile per
 * calibration cycle, so one table is shared by *every* circuit
 * compiled against that cycle — the ReliabilityMatrixCache makes
 * that sharing explicit and thread-safe.
 *
 * Bit-compatibility note: after the Floyd-Warshall sweep the final
 * distances are re-accumulated by walking each next-hop chain and
 * summing edge weights left-to-right — the same association order
 * Dijkstra uses — so consumers that previously called
 * allPairsDistances() observe identical doubles.
 */
#ifndef VAQ_GRAPH_RELIABILITY_MATRIX_HPP
#define VAQ_GRAPH_RELIABILITY_MATRIX_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace vaq::graph
{

/**
 * Immutable all-pairs shortest-path table over a cost-weighted
 * graph. Safe to share across threads once constructed.
 */
class ReliabilityMatrix
{
  public:
    /**
     * Build the table from `costs` (all weights must be
     * non-negative). `snapshot_hash` identifies the calibration
     * data the weights were derived from; it is carried along so
     * cache consumers can audit what they were served.
     */
    explicit ReliabilityMatrix(const WeightedGraph &costs,
                               std::uint64_t snapshot_hash = 0);

    /** Node count. */
    int numNodes() const { return _numNodes; }

    /** Cost of the cheapest a-b path (kUnreachable when none). */
    double distance(int a, int b) const;

    /** Full distance table, indexed [from][to]. */
    const std::vector<std::vector<double>> &distances() const
    {
        return _dist;
    }

    /** True when b is reachable from a. */
    bool reachable(int a, int b) const;

    /**
     * First node after `a` on the cheapest a-b path; `b` itself for
     * a direct edge, -1 when a == b or b is unreachable.
     */
    int nextHop(int a, int b) const;

    /**
     * Reconstruct the node sequence a..b (inclusive) along the
     * cheapest path. @throws VaqError when b is unreachable.
     */
    std::vector<int> path(int a, int b) const;

    /** Hash of the calibration snapshot this table was built for. */
    std::uint64_t snapshotHash() const { return _snapshotHash; }

  private:
    int _numNodes;
    std::uint64_t _snapshotHash;
    std::vector<std::vector<double>> _dist;
    std::vector<std::vector<int>> _next;
};

/**
 * Thread-safe cache of ReliabilityMatrix tables keyed on a
 * calibration-snapshot hash (callers fold machine identity and any
 * cost-model parameters into the key).
 *
 * Invalidation is epoch-based: every entry records the epoch it was
 * inserted under, and invalidate() bumps the epoch, making all
 * existing entries stale at once (a new calibration push obsoletes
 * every table derived from the old data). Stale entries are dropped
 * lazily on the next lookup.
 */
class ReliabilityMatrixCache
{
  public:
    /** Builds the matrix for a key on a cache miss. */
    using Builder =
        std::function<std::shared_ptr<const ReliabilityMatrix>()>;

    /**
     * @param capacity Maximum number of cached tables; the
     *        least-recently-used entry is evicted beyond it.
     */
    explicit ReliabilityMatrixCache(std::size_t capacity = 64);

    /**
     * Return the cached table for `key`, or invoke `build` and
     * cache its result. The builder runs under the cache lock so
     * concurrent requests for the same key build exactly once.
     */
    std::shared_ptr<const ReliabilityMatrix>
    obtain(std::uint64_t key, const Builder &build);

    /** Drop every entry and start a new epoch. */
    void invalidate();

    /** Current epoch (starts at 0, +1 per invalidate()). */
    std::uint64_t epoch() const;

    /** Number of live entries. */
    std::size_t size() const;

    /**
     * Lookup counters since construction or the last
     * resetCounters() (not reset by invalidate()). Atomic, so
     * readable without taking the cache lock; the obs registry
     * mirrors them as cache.matrix.* when telemetry is on.
     */
    std::size_t hits() const
    {
        return _hits.load(std::memory_order_relaxed);
    }
    std::size_t misses() const
    {
        return _misses.load(std::memory_order_relaxed);
    }
    /** Capacity-pressure evictions (not epoch drops). */
    std::size_t evictions() const
    {
        return _evictions.load(std::memory_order_relaxed);
    }
    /** invalidate() calls observed. */
    std::size_t invalidations() const
    {
        return _invalidations.load(std::memory_order_relaxed);
    }

    /** Zero all four lookup counters (epoch is untouched). */
    void resetCounters();

  private:
    struct Entry
    {
        std::shared_ptr<const ReliabilityMatrix> matrix;
        std::uint64_t epoch = 0;
        std::uint64_t lastUsed = 0;
    };

    mutable std::mutex _mutex;
    std::unordered_map<std::uint64_t, Entry> _entries;
    std::size_t _capacity;
    std::uint64_t _epoch = 0;
    std::uint64_t _clock = 0;
    std::atomic<std::size_t> _hits{0};
    std::atomic<std::size_t> _misses{0};
    std::atomic<std::size_t> _evictions{0};
    std::atomic<std::size_t> _invalidations{0};
};

} // namespace vaq::graph

#endif // VAQ_GRAPH_RELIABILITY_MATRIX_HPP
