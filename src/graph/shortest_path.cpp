#include "graph/shortest_path.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace vaq::graph
{

std::vector<int>
ShortestPathTree::pathTo(int dst) const
{
    require(dst >= 0 &&
                dst < static_cast<int>(dist.size()),
            "path destination out of range");
    require(dist[static_cast<std::size_t>(dst)] != kUnreachable,
            "destination unreachable from source");
    std::vector<int> path;
    for (int v = dst; v != -1;
         v = parent[static_cast<std::size_t>(v)]) {
        path.push_back(v);
    }
    std::reverse(path.begin(), path.end());
    VAQ_ASSERT(path.front() == source,
               "path reconstruction lost the source");
    return path;
}

ShortestPathTree
dijkstra(const WeightedGraph &graph, int source)
{
    require(source >= 0 && source < graph.numNodes(),
            "dijkstra source out of range");

    const auto n = static_cast<std::size_t>(graph.numNodes());
    ShortestPathTree tree;
    tree.source = source;
    tree.dist.assign(n, kUnreachable);
    tree.parent.assign(n, -1);
    tree.dist[static_cast<std::size_t>(source)] = 0.0;

    // (distance, node); node id in the key makes pops deterministic.
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>,
                        std::greater<Entry>> heap;
    heap.emplace(0.0, source);

    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d > tree.dist[static_cast<std::size_t>(u)])
            continue; // stale entry
        for (const auto &[v, w] : graph.neighbors(u)) {
            require(w >= 0.0,
                    "dijkstra requires non-negative weights");
            const double nd = d + w;
            auto &dv = tree.dist[static_cast<std::size_t>(v)];
            if (nd < dv) {
                dv = nd;
                tree.parent[static_cast<std::size_t>(v)] = u;
                heap.emplace(nd, v);
            }
        }
    }
    return tree;
}

std::vector<std::vector<double>>
allPairsDistances(const WeightedGraph &graph)
{
    std::vector<std::vector<double>> out;
    out.reserve(static_cast<std::size_t>(graph.numNodes()));
    for (int v = 0; v < graph.numNodes(); ++v)
        out.push_back(dijkstra(graph, v).dist);
    return out;
}

} // namespace vaq::graph
