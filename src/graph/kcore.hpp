/**
 * @file
 * k-core decomposition (Batagelj-Zaversnik) and a strength-weighted
 * variant.
 *
 * The paper's VQA policy "computes the strongest set of sub-graphs by
 * using [the] K-core algorithm that recursively prunes nodes with
 * degrees less than k" (Section 6.2, citing Batagelj & Zaversnik).
 * The weighted variant prunes by node strength instead of degree so
 * that weak-but-well-connected qubits are also shed.
 */
#ifndef VAQ_GRAPH_KCORE_HPP
#define VAQ_GRAPH_KCORE_HPP

#include <vector>

#include "graph/weighted_graph.hpp"

namespace vaq::graph
{

/**
 * Core number of every node: the largest k such that the node
 * belongs to a subgraph where all degrees are >= k.
 */
std::vector<int> coreNumbers(const WeightedGraph &graph);

/** Maximum core number (the graph's degeneracy). */
int degeneracy(const WeightedGraph &graph);

/** Nodes of the k-core (possibly empty). */
std::vector<int> kCore(const WeightedGraph &graph, int k);

/**
 * Strength-weighted pruning: repeatedly remove the node whose
 * *remaining* strength (sum of weights to still-present neighbours)
 * is smallest, until `keep` nodes remain. Returns the survivors in
 * ascending id order. Ties break toward the lower node id for
 * reproducibility.
 */
std::vector<int> strengthCore(const WeightedGraph &graph,
                              std::size_t keep);

} // namespace vaq::graph

#endif // VAQ_GRAPH_KCORE_HPP
