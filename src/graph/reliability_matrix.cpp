#include "graph/reliability_matrix.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/shortest_path.hpp"
#include "obs/metrics.hpp"

namespace vaq::graph
{

ReliabilityMatrix::ReliabilityMatrix(const WeightedGraph &costs,
                                     std::uint64_t snapshot_hash)
    : _numNodes(costs.numNodes()), _snapshotHash(snapshot_hash)
{
    const auto n = static_cast<std::size_t>(_numNodes);
    _dist.assign(n, std::vector<double>(n, kUnreachable));
    _next.assign(n, std::vector<int>(n, -1));

    for (std::size_t v = 0; v < n; ++v)
        _dist[v][v] = 0.0;
    for (const WeightedEdge &e : costs.edges()) {
        require(e.weight >= 0.0,
                "reliability matrix requires non-negative weights");
        const auto a = static_cast<std::size_t>(e.a);
        const auto b = static_cast<std::size_t>(e.b);
        _dist[a][b] = e.weight;
        _dist[b][a] = e.weight;
        _next[a][b] = e.b;
        _next[b][a] = e.a;
    }

    // Floyd-Warshall with next-hop propagation. Strict-improvement
    // updates keep the sweep deterministic: on exact ties the path
    // through the smallest intermediate node wins.
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
            const double dik = _dist[i][k];
            if (dik == kUnreachable)
                continue;
            for (std::size_t j = 0; j < n; ++j) {
                const double dkj = _dist[k][j];
                if (dkj == kUnreachable)
                    continue;
                const double alt = dik + dkj;
                if (alt < _dist[i][j]) {
                    _dist[i][j] = alt;
                    _next[i][j] = _next[i][k];
                }
            }
        }
    }

    // Re-accumulate each distance along its next-hop chain so the
    // stored doubles match what Dijkstra's left-to-right relaxation
    // produces for the same path (Floyd-Warshall's divide-and-sum
    // association can differ in the last ULP).
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j || _next[i][j] < 0)
                continue;
            double sum = 0.0;
            int at = static_cast<int>(i);
            while (at != static_cast<int>(j)) {
                const int hop = _next[static_cast<std::size_t>(at)]
                                     [j];
                sum += costs.weight(at, hop);
                at = hop;
            }
            _dist[i][j] = sum;
        }
    }
}

double
ReliabilityMatrix::distance(int a, int b) const
{
    require(a >= 0 && a < _numNodes && b >= 0 && b < _numNodes,
            "reliability matrix node out of range");
    return _dist[static_cast<std::size_t>(a)]
                [static_cast<std::size_t>(b)];
}

bool
ReliabilityMatrix::reachable(int a, int b) const
{
    return distance(a, b) != kUnreachable;
}

int
ReliabilityMatrix::nextHop(int a, int b) const
{
    require(a >= 0 && a < _numNodes && b >= 0 && b < _numNodes,
            "reliability matrix node out of range");
    return _next[static_cast<std::size_t>(a)]
                [static_cast<std::size_t>(b)];
}

std::vector<int>
ReliabilityMatrix::path(int a, int b) const
{
    require(reachable(a, b),
            "destination unreachable in reliability matrix");
    std::vector<int> nodes{a};
    while (a != b) {
        a = _next[static_cast<std::size_t>(a)]
                 [static_cast<std::size_t>(b)];
        VAQ_ASSERT(a >= 0, "broken next-hop chain");
        nodes.push_back(a);
    }
    return nodes;
}

ReliabilityMatrixCache::ReliabilityMatrixCache(std::size_t capacity)
    : _capacity(capacity)
{
    require(capacity > 0, "cache capacity must be positive");
}

std::shared_ptr<const ReliabilityMatrix>
ReliabilityMatrixCache::obtain(std::uint64_t key,
                               const Builder &build)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_clock;
    const auto it = _entries.find(key);
    if (it != _entries.end()) {
        if (it->second.epoch == _epoch) {
            _hits.fetch_add(1, std::memory_order_relaxed);
            obs::count("cache.matrix.hits");
            it->second.lastUsed = _clock;
            return it->second.matrix;
        }
        _entries.erase(it); // stale epoch: rebuild below
    }
    _misses.fetch_add(1, std::memory_order_relaxed);
    obs::count("cache.matrix.misses");
    Entry entry;
    entry.matrix = build();
    require(entry.matrix != nullptr,
            "matrix builder returned null");
    entry.epoch = _epoch;
    entry.lastUsed = _clock;

    if (_entries.size() >= _capacity) {
        auto victim = _entries.begin();
        for (auto e = _entries.begin(); e != _entries.end(); ++e) {
            if (e->second.lastUsed < victim->second.lastUsed)
                victim = e;
        }
        _entries.erase(victim);
        _evictions.fetch_add(1, std::memory_order_relaxed);
        obs::count("cache.matrix.evictions");
    }
    auto matrix = entry.matrix;
    _entries.emplace(key, std::move(entry));
    return matrix;
}

void
ReliabilityMatrixCache::invalidate()
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_epoch;
    _entries.clear();
    _invalidations.fetch_add(1, std::memory_order_relaxed);
    obs::count("cache.matrix.invalidations");
}

void
ReliabilityMatrixCache::resetCounters()
{
    _hits.store(0, std::memory_order_relaxed);
    _misses.store(0, std::memory_order_relaxed);
    _evictions.store(0, std::memory_order_relaxed);
    _invalidations.store(0, std::memory_order_relaxed);
}

std::uint64_t
ReliabilityMatrixCache::epoch() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _epoch;
}

std::size_t
ReliabilityMatrixCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

} // namespace vaq::graph
