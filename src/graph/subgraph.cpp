#include "graph/subgraph.hpp"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/error.hpp"

namespace vaq::graph
{

namespace
{

/**
 * Enumerate all connected induced subgraphs of size k that contain
 * `root` as their minimum node id, invoking `visit` on each. The
 * min-id anchoring guarantees every connected set is produced exactly
 * once across all roots. Standard "fixed-root expansion" enumeration.
 */
template <typename Visit>
void
enumerateFromRoot(const WeightedGraph &graph, int root,
                  std::size_t k, Visit &&visit)
{
    std::vector<int> current{root};
    std::vector<bool> inCurrent(
        static_cast<std::size_t>(graph.numNodes()), false);
    std::vector<bool> forbidden(
        static_cast<std::size_t>(graph.numNodes()), false);
    inCurrent[static_cast<std::size_t>(root)] = true;

    // Frontier of candidate extensions (> root, not forbidden).
    std::vector<int> frontier;
    for (const auto &[u, w] : graph.neighbors(root)) {
        (void)w;
        if (u > root)
            frontier.push_back(u);
    }
    std::sort(frontier.begin(), frontier.end());

    struct Action
    {
        int node;
        std::vector<int> addedFrontier;
    };

    // Recursive lambda via explicit stack-free recursion.
    const std::function<void(std::vector<int> &)> recurse =
        [&](std::vector<int> &localFrontier) {
            if (current.size() == k) {
                visit(current);
                return;
            }
            // Take candidates one at a time; once a candidate is
            // skipped it becomes forbidden for this branch so each
            // subset is generated once.
            std::vector<int> skipped;
            while (!localFrontier.empty()) {
                const int v = localFrontier.back();
                localFrontier.pop_back();
                if (forbidden[static_cast<std::size_t>(v)] ||
                    inCurrent[static_cast<std::size_t>(v)]) {
                    continue;
                }

                // Branch 1: include v.
                current.push_back(v);
                inCurrent[static_cast<std::size_t>(v)] = true;
                std::vector<int> extended = localFrontier;
                for (const auto &[u, w] : graph.neighbors(v)) {
                    (void)w;
                    if (u > current.front() &&
                        !inCurrent[static_cast<std::size_t>(u)] &&
                        !forbidden[static_cast<std::size_t>(u)]) {
                        extended.push_back(u);
                    }
                }
                recurse(extended);
                current.pop_back();
                inCurrent[static_cast<std::size_t>(v)] = false;

                // Branch 2: exclude v permanently on this branch.
                forbidden[static_cast<std::size_t>(v)] = true;
                skipped.push_back(v);
            }
            for (int v : skipped)
                forbidden[static_cast<std::size_t>(v)] = false;
        };

    std::vector<int> f = frontier;
    recurse(f);
}

/** Greedy growth from a seed, adding the best-scoring neighbour. */
std::vector<int>
greedyGrow(const WeightedGraph &graph, int seed, std::size_t k,
           SubgraphScore score)
{
    std::vector<int> current{seed};
    std::vector<bool> member(
        static_cast<std::size_t>(graph.numNodes()), false);
    member[static_cast<std::size_t>(seed)] = true;

    while (current.size() < k) {
        int best = -1;
        double bestScore = -1.0;
        for (int v : current) {
            for (const auto &[u, w] : graph.neighbors(v)) {
                (void)w;
                if (member[static_cast<std::size_t>(u)])
                    continue;
                std::vector<int> trial = current;
                trial.push_back(u);
                const double s = scoreSubgraph(graph, trial, score);
                if (s > bestScore ||
                    (s == bestScore && (best < 0 || u < best))) {
                    bestScore = s;
                    best = u;
                }
            }
        }
        if (best < 0)
            return {}; // component exhausted before reaching k
        current.push_back(best);
        member[static_cast<std::size_t>(best)] = true;
    }
    std::sort(current.begin(), current.end());
    return current;
}

/** Binomial coefficient with saturation (avoids overflow). */
double
choose(std::size_t n, std::size_t k)
{
    if (k > n)
        return 0.0;
    double result = 1.0;
    for (std::size_t i = 0; i < k; ++i) {
        result *= static_cast<double>(n - i) /
                  static_cast<double>(i + 1);
        if (result > 1e12)
            return 1e12;
    }
    return result;
}

} // namespace

double
scoreSubgraph(const WeightedGraph &graph,
              const std::vector<int> &nodes, SubgraphScore score)
{
    if (score == SubgraphScore::FullStrength) {
        double total = 0.0;
        for (int v : nodes)
            total += graph.nodeStrength(v);
        return total;
    }
    std::vector<bool> member(
        static_cast<std::size_t>(graph.numNodes()), false);
    for (int v : nodes)
        member[static_cast<std::size_t>(v)] = true;
    double total = 0.0;
    for (const WeightedEdge &e : graph.edges()) {
        if (member[static_cast<std::size_t>(e.a)] &&
            member[static_cast<std::size_t>(e.b)]) {
            total += e.weight;
        }
    }
    return total;
}

bool
isConnectedSubset(const WeightedGraph &graph,
                  const std::vector<int> &nodes)
{
    if (nodes.empty())
        return false;
    std::vector<bool> member(
        static_cast<std::size_t>(graph.numNodes()), false);
    for (int v : nodes)
        member[static_cast<std::size_t>(v)] = true;

    std::vector<bool> seen(
        static_cast<std::size_t>(graph.numNodes()), false);
    std::queue<int> frontier;
    frontier.push(nodes.front());
    seen[static_cast<std::size_t>(nodes.front())] = true;
    std::size_t reached = 1;
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        for (const auto &[v, w] : graph.neighbors(u)) {
            (void)w;
            if (member[static_cast<std::size_t>(v)] &&
                !seen[static_cast<std::size_t>(v)]) {
                seen[static_cast<std::size_t>(v)] = true;
                ++reached;
                frontier.push(v);
            }
        }
    }
    return reached == nodes.size();
}

std::vector<int>
bestConnectedSubgraph(const WeightedGraph &graph, std::size_t k,
                      SubgraphScore score)
{
    const auto n = static_cast<std::size_t>(graph.numNodes());
    require(k >= 1 && k <= n,
            "subgraph size out of range for machine");

    std::vector<int> best;
    double bestScore = -1.0;
    auto consider = [&](const std::vector<int> &candidate) {
        const double s = scoreSubgraph(graph, candidate, score);
        if (s > bestScore) {
            bestScore = s;
            best = candidate;
            std::sort(best.begin(), best.end());
        }
    };

    // Exhaustive connected-subset enumeration when tractable. The
    // enumeration visits only connected subsets, so the bound on
    // C(n, k) is loose but cheap to compute.
    if (choose(n, k) <= 2.5e5 || n <= 20) {
        for (int root = 0; root < graph.numNodes(); ++root) {
            if (k == 1) {
                consider({root});
                continue;
            }
            enumerateFromRoot(graph, root, k, consider);
        }
    } else {
        for (int seed = 0; seed < graph.numNodes(); ++seed) {
            const std::vector<int> grown =
                greedyGrow(graph, seed, k, score);
            if (!grown.empty())
                consider(grown);
        }
    }

    require(!best.empty(),
            "no connected subgraph of the requested size exists");
    return best;
}

std::vector<std::vector<int>>
topConnectedSubgraphs(const WeightedGraph &graph, std::size_t k,
                      std::size_t count, SubgraphScore score)
{
    const auto n = static_cast<std::size_t>(graph.numNodes());
    require(k >= 1 && k <= n,
            "subgraph size out of range for machine");
    require(count >= 1, "need at least one subgraph");

    // (score, nodes) kept sorted descending, truncated to `count`.
    std::vector<std::pair<double, std::vector<int>>> ranked;
    auto consider = [&](const std::vector<int> &candidate) {
        std::vector<int> nodes = candidate;
        std::sort(nodes.begin(), nodes.end());
        const double s = scoreSubgraph(graph, nodes, score);
        ranked.emplace_back(s, std::move(nodes));
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &x, const auto &y) {
                      return x.first > y.first ||
                             (x.first == y.first &&
                              x.second < y.second);
                  });
        if (ranked.size() > count)
            ranked.resize(count);
    };

    if (choose(n, k) <= 2.5e5 || n <= 20) {
        for (int root = 0; root < graph.numNodes(); ++root) {
            if (k == 1) {
                consider({root});
                continue;
            }
            enumerateFromRoot(graph, root, k, consider);
        }
    } else {
        for (int seed = 0; seed < graph.numNodes(); ++seed) {
            const std::vector<int> grown =
                greedyGrow(graph, seed, k, score);
            if (!grown.empty())
                consider(grown);
        }
    }

    // Drop duplicates (greedy growth can converge).
    std::vector<std::vector<int>> out;
    for (auto &[s, nodes] : ranked) {
        (void)s;
        if (out.empty() || out.back() != nodes)
            out.push_back(std::move(nodes));
    }
    require(!out.empty(),
            "no connected subgraph of the requested size exists");
    return out;
}

} // namespace vaq::graph
