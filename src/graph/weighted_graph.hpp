/**
 * @file
 * Generic undirected weighted graph used by the variation-aware
 * policies.
 *
 * The mapping policies view the machine as a weighted graph twice
 * over: once with *cost* weights (-log of link success probability,
 * so shortest path = most reliable route, Algorithm 1 of the paper)
 * and once with *strength* weights (link success probability, so node
 * strength ranks qubits for allocation, Algorithm 2).
 */
#ifndef VAQ_GRAPH_WEIGHTED_GRAPH_HPP
#define VAQ_GRAPH_WEIGHTED_GRAPH_HPP

#include <cstddef>
#include <utility>
#include <vector>

namespace vaq::graph
{

/** One undirected weighted edge. */
struct WeightedEdge
{
    int a;
    int b;
    double weight;
};

/** Immutable undirected graph with double edge weights. */
class WeightedGraph
{
  public:
    /** Neighbor entry: (adjacent node, edge weight). */
    using Neighbor = std::pair<int, double>;

    /**
     * Build from an edge list. Self-loops and duplicate edges are
     * rejected; weights may be any finite double.
     */
    WeightedGraph(int num_nodes,
                  const std::vector<WeightedEdge> &edges);

    /** Node count. */
    int numNodes() const { return _numNodes; }

    /** Edge count. */
    std::size_t edgeCount() const { return _edges.size(); }

    /** All edges with a < b. */
    const std::vector<WeightedEdge> &edges() const { return _edges; }

    /** Adjacency of node v. */
    const std::vector<Neighbor> &neighbors(int v) const;

    /** True when an edge {a, b} exists. */
    bool hasEdge(int a, int b) const;

    /** Weight of edge {a, b}; throws VaqError when absent. */
    double weight(int a, int b) const;

    /** Unweighted degree of v. */
    std::size_t degree(int v) const;

    /**
     * Node strength d_i = sum of incident edge weights (step 2 of
     * the paper's Algorithm 1).
     */
    double nodeStrength(int v) const;

    /** Strengths of all nodes, indexed by node id. */
    std::vector<double> nodeStrengths() const;

  private:
    void checkNode(int v) const;

    int _numNodes;
    std::vector<WeightedEdge> _edges;
    std::vector<std::vector<Neighbor>> _adjacency;
};

} // namespace vaq::graph

#endif // VAQ_GRAPH_WEIGHTED_GRAPH_HPP
