/**
 * @file
 * Search for the strongest connected k-node subgraph.
 *
 * Step 1 of the paper's Algorithm 2 (VQA): "Find the sub-graph SG_k
 * with k nodes that has [the] highest aggregate node strength (ANS),
 * ANS = sum_i d_i". Program qubits are then placed on that subgraph.
 *
 * Two scoring modes are provided as an ablation point:
 *  - FullStrength: ANS exactly as the paper defines it — each member
 *    contributes its node strength in the *full* machine graph.
 *  - InducedWeight: sum of link weights *inside* the subgraph, which
 *    only credits links the mapped program can actually use.
 */
#ifndef VAQ_GRAPH_SUBGRAPH_HPP
#define VAQ_GRAPH_SUBGRAPH_HPP

#include <cstddef>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace vaq::graph
{

/** Scoring rule for subgraph search. */
enum class SubgraphScore
{
    FullStrength, ///< ANS with full-graph node strengths (paper)
    InducedWeight ///< total weight of links inside the subgraph
};

/** Score a node set under the given rule (set need not be connected). */
double scoreSubgraph(const WeightedGraph &graph,
                     const std::vector<int> &nodes,
                     SubgraphScore score);

/** True when the induced subgraph over `nodes` is connected. */
bool isConnectedSubset(const WeightedGraph &graph,
                       const std::vector<int> &nodes);

/**
 * Best connected k-node subgraph under `score`.
 *
 * Uses exhaustive enumeration of connected k-subsets when the
 * combination count is small enough (the IBM-Q20 cases all are), and
 * falls back to greedy seeded growth plus 1-swap local search on
 * larger machines. Returns node ids in ascending order.
 *
 * @throws VaqError when k is out of range or no connected k-subset
 *         exists.
 */
std::vector<int> bestConnectedSubgraph(
    const WeightedGraph &graph, std::size_t k,
    SubgraphScore score = SubgraphScore::FullStrength);

/**
 * The `count` best-scoring connected k-node subgraphs, best first
 * (fewer are returned when fewer exist). Uses the same exhaustive /
 * greedy strategy split as bestConnectedSubgraph. Used by the
 * machine-partitioning study to rank candidate regions.
 */
std::vector<std::vector<int>> topConnectedSubgraphs(
    const WeightedGraph &graph, std::size_t k, std::size_t count,
    SubgraphScore score = SubgraphScore::FullStrength);

} // namespace vaq::graph

#endif // VAQ_GRAPH_SUBGRAPH_HPP
