/**
 * @file
 * Dijkstra shortest paths over WeightedGraph.
 *
 * With edge weights set to -log(success probability), the shortest
 * a-b path is exactly the maximum-reliability SWAP route of the
 * paper's VQM policy (Algorithm 1, step 1): path cost sums become
 * products of link success probabilities.
 */
#ifndef VAQ_GRAPH_SHORTEST_PATH_HPP
#define VAQ_GRAPH_SHORTEST_PATH_HPP

#include <limits>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace vaq::graph
{

/** Sentinel distance for unreachable nodes. */
inline constexpr double kUnreachable =
    std::numeric_limits<double>::infinity();

/** Result of a single-source shortest-path run. */
struct ShortestPathTree
{
    int source = 0;
    /** dist[v] = cost of the cheapest source-v path. */
    std::vector<double> dist;
    /** parent[v] = predecessor on that path (-1 for source or
     *  unreachable nodes). */
    std::vector<int> parent;

    /**
     * Reconstruct the node sequence source..dst (inclusive).
     * @throws VaqError when dst is unreachable.
     */
    std::vector<int> pathTo(int dst) const;
};

/**
 * Dijkstra from `source`. All edge weights must be non-negative
 * (checked); ties are broken deterministically by node id so results
 * are reproducible across runs.
 */
ShortestPathTree dijkstra(const WeightedGraph &graph, int source);

/** All-pairs distance matrix via repeated Dijkstra. */
std::vector<std::vector<double>>
allPairsDistances(const WeightedGraph &graph);

} // namespace vaq::graph

#endif // VAQ_GRAPH_SHORTEST_PATH_HPP
