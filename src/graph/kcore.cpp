#include "graph/kcore.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace vaq::graph
{

std::vector<int>
coreNumbers(const WeightedGraph &graph)
{
    const auto n = static_cast<std::size_t>(graph.numNodes());
    std::vector<int> degree(n);
    int maxDegree = 0;
    for (int v = 0; v < graph.numNodes(); ++v) {
        degree[static_cast<std::size_t>(v)] =
            static_cast<int>(graph.degree(v));
        maxDegree = std::max(
            maxDegree, degree[static_cast<std::size_t>(v)]);
    }

    // Bucket sort by degree (the O(m) algorithm's bin structure).
    std::vector<std::vector<int>> bins(
        static_cast<std::size_t>(maxDegree) + 1);
    for (int v = 0; v < graph.numNodes(); ++v) {
        bins[static_cast<std::size_t>(
                degree[static_cast<std::size_t>(v)])]
            .push_back(v);
    }

    std::vector<int> core(n, 0);
    std::vector<bool> removed(n, false);
    std::size_t processed = 0;
    int current = 0;
    while (processed < n) {
        // Find the lowest non-empty bin at or above `current` can
        // shrink when neighbours are demoted, so rescan from 0.
        int d = 0;
        while (bins[static_cast<std::size_t>(d)].empty())
            ++d;
        const int v = bins[static_cast<std::size_t>(d)].back();
        bins[static_cast<std::size_t>(d)].pop_back();
        if (removed[static_cast<std::size_t>(v)])
            continue;
        removed[static_cast<std::size_t>(v)] = true;
        ++processed;
        current = std::max(current, d);
        core[static_cast<std::size_t>(v)] = current;
        for (const auto &[u, w] : graph.neighbors(v)) {
            (void)w;
            if (!removed[static_cast<std::size_t>(u)]) {
                auto &du = degree[static_cast<std::size_t>(u)];
                --du;
                // Lazy deletion: stale entries are skipped above.
                bins[static_cast<std::size_t>(std::max(du, 0))]
                    .push_back(u);
            }
        }
    }
    return core;
}

int
degeneracy(const WeightedGraph &graph)
{
    const std::vector<int> core = coreNumbers(graph);
    return *std::max_element(core.begin(), core.end());
}

std::vector<int>
kCore(const WeightedGraph &graph, int k)
{
    require(k >= 0, "k-core requires k >= 0");
    const std::vector<int> core = coreNumbers(graph);
    std::vector<int> nodes;
    for (int v = 0; v < graph.numNodes(); ++v) {
        if (core[static_cast<std::size_t>(v)] >= k)
            nodes.push_back(v);
    }
    return nodes;
}

std::vector<int>
strengthCore(const WeightedGraph &graph, std::size_t keep)
{
    const auto n = static_cast<std::size_t>(graph.numNodes());
    require(keep >= 1 && keep <= n,
            "strengthCore keep-count out of range");

    std::vector<double> strength = graph.nodeStrengths();
    std::vector<bool> removed(n, false);
    std::size_t alive = n;

    while (alive > keep) {
        int weakest = -1;
        double weakestStrength =
            std::numeric_limits<double>::infinity();
        for (int v = 0; v < graph.numNodes(); ++v) {
            if (removed[static_cast<std::size_t>(v)])
                continue;
            if (strength[static_cast<std::size_t>(v)] <
                weakestStrength) {
                weakestStrength =
                    strength[static_cast<std::size_t>(v)];
                weakest = v;
            }
        }
        VAQ_ASSERT(weakest >= 0, "no node left to prune");
        removed[static_cast<std::size_t>(weakest)] = true;
        --alive;
        for (const auto &[u, w] : graph.neighbors(weakest)) {
            if (!removed[static_cast<std::size_t>(u)])
                strength[static_cast<std::size_t>(u)] -= w;
        }
    }

    std::vector<int> survivors;
    survivors.reserve(keep);
    for (int v = 0; v < graph.numNodes(); ++v) {
        if (!removed[static_cast<std::size_t>(v)])
            survivors.push_back(v);
    }
    return survivors;
}

} // namespace vaq::graph
