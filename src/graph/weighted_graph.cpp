#include "graph/weighted_graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vaq::graph
{

WeightedGraph::WeightedGraph(int num_nodes,
                             const std::vector<WeightedEdge> &edges)
    : _numNodes(num_nodes),
      _adjacency(static_cast<std::size_t>(num_nodes))
{
    require(num_nodes > 0, "weighted graph needs at least one node");
    _edges.reserve(edges.size());
    for (const WeightedEdge &raw : edges) {
        WeightedEdge e{std::min(raw.a, raw.b),
                       std::max(raw.a, raw.b), raw.weight};
        checkNode(e.a);
        checkNode(e.b);
        require(e.a != e.b, "self-loop edge rejected");
        require(!hasEdge(e.a, e.b), "duplicate edge rejected");
        _edges.push_back(e);
        _adjacency[static_cast<std::size_t>(e.a)]
            .emplace_back(e.b, e.weight);
        _adjacency[static_cast<std::size_t>(e.b)]
            .emplace_back(e.a, e.weight);
    }
}

void
WeightedGraph::checkNode(int v) const
{
    require(v >= 0 && v < _numNodes, "node index out of range");
}

const std::vector<WeightedGraph::Neighbor> &
WeightedGraph::neighbors(int v) const
{
    checkNode(v);
    return _adjacency[static_cast<std::size_t>(v)];
}

bool
WeightedGraph::hasEdge(int a, int b) const
{
    checkNode(a);
    checkNode(b);
    const auto &adj = _adjacency[static_cast<std::size_t>(a)];
    return std::any_of(adj.begin(), adj.end(),
                       [b](const Neighbor &n) {
                           return n.first == b;
                       });
}

double
WeightedGraph::weight(int a, int b) const
{
    checkNode(a);
    checkNode(b);
    for (const Neighbor &n : _adjacency[static_cast<std::size_t>(a)]) {
        if (n.first == b)
            return n.second;
    }
    throw VaqError("no edge between nodes " + std::to_string(a) +
                   " and " + std::to_string(b));
}

std::size_t
WeightedGraph::degree(int v) const
{
    return neighbors(v).size();
}

double
WeightedGraph::nodeStrength(int v) const
{
    double strength = 0.0;
    for (const Neighbor &n : neighbors(v))
        strength += n.second;
    return strength;
}

std::vector<double>
WeightedGraph::nodeStrengths() const
{
    std::vector<double> strengths(
        static_cast<std::size_t>(_numNodes));
    for (int v = 0; v < _numNodes; ++v)
        strengths[static_cast<std::size_t>(v)] = nodeStrength(v);
    return strengths;
}

} // namespace vaq::graph
