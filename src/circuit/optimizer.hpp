/**
 * @file
 * Peephole circuit optimizer.
 *
 * Conservative, semantics-preserving cleanups applied to logical or
 * mapped circuits:
 *  - cancel adjacent self-inverse pairs (X·X, H·H, Z·Z, CX·CX,
 *    CZ·CZ, SWAP·SWAP on identical operands),
 *  - cancel adjacent S·Sdg / T·Tdg pairs (either order),
 *  - fuse runs of equal-axis rotations (RZ·RZ etc.) into one,
 *  - drop explicit identity gates and zero-angle rotations.
 *
 * "Adjacent" means adjacent in the per-qubit gate sequence: two
 * gates cancel only when no intervening gate touches any of their
 * qubits, so no commutation reasoning is needed and barriers /
 * measurements act as hard fences.
 *
 * Routing interacts with this pass: a SWAP inserted directly before
 * a CX on the same link turns into 3 CX + 1 CX, of which the lowered
 * pair cancels — run the optimizer after withSwapsLowered() to
 * harvest those.
 */
#ifndef VAQ_CIRCUIT_OPTIMIZER_HPP
#define VAQ_CIRCUIT_OPTIMIZER_HPP

#include <cstddef>

#include "circuit/circuit.hpp"

namespace vaq::circuit
{

/** Statistics of one optimize() run. */
struct OptimizerStats
{
    std::size_t cancelledPairs = 0;  ///< self-inverse pairs removed
    std::size_t fusedRotations = 0;  ///< rotations merged away
    std::size_t droppedIdentities = 0; ///< id gates / zero rotations

    /** Total gates removed. */
    std::size_t
    removedGates() const
    {
        return 2 * cancelledPairs + fusedRotations +
               droppedIdentities;
    }
};

/**
 * Run the peephole pass to fixpoint and return the smaller circuit.
 * @param circuit Input circuit (not modified).
 * @param stats Optional out-param accumulating what was removed.
 */
Circuit optimize(const Circuit &circuit,
                 OptimizerStats *stats = nullptr);

} // namespace vaq::circuit

#endif // VAQ_CIRCUIT_OPTIMIZER_HPP
