#include "circuit/layering.hpp"

#include <algorithm>

namespace vaq::circuit
{

std::vector<Layer>
layerize(const Circuit &circuit)
{
    std::vector<Layer> layers;
    // frontier[q] = first layer index at which qubit q is free.
    std::vector<std::size_t> frontier(
        static_cast<std::size_t>(circuit.numQubits()), 0);
    std::size_t barrierFloor = 0;

    const auto &gates = circuit.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (g.kind == GateKind::BARRIER) {
            barrierFloor = layers.size();
            continue;
        }
        std::size_t at = std::max(
            barrierFloor,
            frontier[static_cast<std::size_t>(g.q0)]);
        if (g.isTwoQubit()) {
            at = std::max(
                at, frontier[static_cast<std::size_t>(g.q1)]);
        }
        if (at >= layers.size())
            layers.resize(at + 1);
        layers[at].push_back(i);
        frontier[static_cast<std::size_t>(g.q0)] = at + 1;
        if (g.isTwoQubit())
            frontier[static_cast<std::size_t>(g.q1)] = at + 1;
    }
    return layers;
}

std::vector<Layer>
layerizeTwoQubit(const Circuit &circuit)
{
    std::vector<Layer> all = layerize(circuit);
    std::vector<Layer> out;
    const auto &gates = circuit.gates();
    for (Layer &layer : all) {
        Layer filtered;
        for (std::size_t idx : layer) {
            if (gates[idx].isTwoQubit())
                filtered.push_back(idx);
        }
        if (!filtered.empty())
            out.push_back(std::move(filtered));
    }
    return out;
}

} // namespace vaq::circuit
