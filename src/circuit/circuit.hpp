/**
 * @file
 * Quantum circuit container and fluent builder API.
 *
 * A Circuit is an ordered gate list over `numQubits()` qubits. The
 * builder methods return *this so programs read like the QASM they
 * describe:
 *
 * @code
 *   Circuit c(3);
 *   c.h(0).cx(0, 1).cx(1, 2).measureAll();
 * @endcode
 */
#ifndef VAQ_CIRCUIT_CIRCUIT_HPP
#define VAQ_CIRCUIT_CIRCUIT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace vaq::circuit
{

/** Ordered list of gates over a fixed-width qubit register. */
class Circuit
{
  public:
    /** Create an empty circuit over `num_qubits` qubits. */
    explicit Circuit(int num_qubits);

    /** Register width. */
    int numQubits() const { return _numQubits; }

    /** Gate sequence, in program order. */
    const std::vector<Gate> &gates() const { return _gates; }

    /** Number of gates (including measures and barriers). */
    std::size_t size() const { return _gates.size(); }

    /** Append an already-built gate (operands are bounds-checked). */
    Circuit &append(const Gate &gate);

    /** Append every gate of another circuit (widths must match). */
    Circuit &append(const Circuit &other);

    /// @name Builder shorthands
    /// @{
    Circuit &i(Qubit q);
    Circuit &x(Qubit q);
    Circuit &y(Qubit q);
    Circuit &z(Qubit q);
    Circuit &h(Qubit q);
    Circuit &s(Qubit q);
    Circuit &sdg(Qubit q);
    Circuit &t(Qubit q);
    Circuit &tdg(Qubit q);
    Circuit &rx(Qubit q, double theta);
    Circuit &ry(Qubit q, double theta);
    Circuit &rz(Qubit q, double theta);
    Circuit &u3(Qubit q, double theta, double phi, double lambda);
    /** u2(phi, lambda) = U3(pi/2, phi, lambda). */
    Circuit &u2(Qubit q, double phi, double lambda);
    Circuit &cx(Qubit control, Qubit target);
    Circuit &cz(Qubit a, Qubit b);
    Circuit &swap(Qubit a, Qubit b);
    Circuit &measure(Qubit q);
    Circuit &measureAll();
    Circuit &barrier();
    /// @}

    /// @name Instruction statistics (Table 1 columns)
    /// @{
    /** Gates excluding barriers (the paper's "Total Inst"). */
    std::size_t instructionCount() const;
    /** Count of CX/CZ/SWAP operations. */
    std::size_t twoQubitCount() const;
    /** Count of explicit SWAP operations. */
    std::size_t swapCount() const;
    /** Count of measurement operations. */
    std::size_t measureCount() const;
    /** Circuit depth = number of dependence layers. */
    std::size_t depth() const;
    /// @}

    /** Qubits touched by at least one gate. */
    std::vector<Qubit> activeQubits() const;

    /**
     * Remap every operand through `permutation`, where
     * permutation[old] = new. The permutation must be a bijection on
     * [0, width) with width >= numQubits(); the result has `width`
     * qubits.
     */
    Circuit remapped(const std::vector<Qubit> &permutation,
                     int width) const;

    /**
     * Rewrite each SWAP as its 3-CNOT expansion (Fig. 2d of the
     * paper), leaving all other gates untouched.
     */
    Circuit withSwapsLowered() const;

    /** Structural equality. */
    bool operator==(const Circuit &other) const = default;

    /**
     * Content hash over width and the full gate list (kind,
     * operands, angle bit patterns with signed zeros normalized —
     * see common/hashing.hpp). Circuits that compare equal hash
     * equal, so the hash keys compile-artifact caches (the
     * "circuit hash" axis of store/artifact.hpp).
     */
    std::uint64_t contentHash() const;

  private:
    void checkOperand(Qubit q) const;

    int _numQubits;
    std::vector<Gate> _gates;
};

} // namespace vaq::circuit

#endif // VAQ_CIRCUIT_CIRCUIT_HPP
