#include "circuit/orient.hpp"

#include "common/error.hpp"

namespace vaq::circuit
{

namespace
{

/** Emit a CX honouring the allowed direction. */
void
emitCx(Circuit &out, const topology::CnotDirections &directions,
       Qubit control, Qubit target, OrientStats &stats)
{
    if (directions.allowed(control, target)) {
        out.cx(control, target);
        return;
    }
    require(directions.allowed(target, control),
            "no native CX direction between " +
                std::to_string(control) + " and " +
                std::to_string(target));
    ++stats.reversedCnots;
    out.h(control);
    out.h(target);
    out.cx(target, control);
    out.h(control);
    out.h(target);
}

} // namespace

Circuit
orientCnots(const Circuit &physical,
            const topology::CnotDirections &directions,
            OrientStats *stats)
{
    OrientStats local;
    Circuit out(physical.numQubits());
    for (const Gate &g : physical.gates()) {
        switch (g.kind) {
          case GateKind::CX:
            emitCx(out, directions, g.q0, g.q1, local);
            break;
          case GateKind::SWAP:
            // SWAP = CX(a,b) CX(b,a) CX(a,b); each leg oriented.
            ++local.loweredSwaps;
            emitCx(out, directions, g.q0, g.q1, local);
            emitCx(out, directions, g.q1, g.q0, local);
            emitCx(out, directions, g.q0, g.q1, local);
            break;
          default:
            out.append(g);
        }
    }
    if (stats != nullptr)
        *stats = local;
    return out;
}

} // namespace vaq::circuit
