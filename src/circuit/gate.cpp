#include "circuit/gate.hpp"

#include "common/error.hpp"

namespace vaq::circuit
{

Gate
Gate::oneQubit(GateKind kind, Qubit q, double param)
{
    VAQ_ASSERT(gateArity(kind) == 1, "not a one-qubit gate kind");
    require(q >= 0, "negative qubit index");
    Gate g;
    g.kind = kind;
    g.q0 = q;
    g.param = param;
    return g;
}

Gate
Gate::twoQubit(GateKind kind, Qubit a, Qubit b)
{
    VAQ_ASSERT(gateArity(kind) == 2, "not a two-qubit gate kind");
    require(a >= 0 && b >= 0, "negative qubit index");
    require(a != b, "two-qubit gate needs distinct operands");
    Gate g;
    g.kind = kind;
    g.q0 = a;
    g.q1 = b;
    return g;
}

Gate
Gate::measure(Qubit q)
{
    require(q >= 0, "negative qubit index");
    Gate g;
    g.kind = GateKind::MEASURE;
    g.q0 = q;
    return g;
}

Gate
Gate::barrier()
{
    Gate g;
    g.kind = GateKind::BARRIER;
    return g;
}

bool
Gate::isTwoQubit() const
{
    return gateArity(kind) == 2;
}

bool
Gate::isUnitary() const
{
    return kind != GateKind::MEASURE && kind != GateKind::BARRIER;
}

Gate
Gate::u3(Qubit q, double theta, double phi, double lambda)
{
    Gate g = oneQubit(GateKind::U3, q, theta);
    g.param2 = phi;
    g.param3 = lambda;
    return g;
}

bool
Gate::isParameterized() const
{
    return kind == GateKind::RX || kind == GateKind::RY ||
           kind == GateKind::RZ || kind == GateKind::U3;
}

bool
Gate::touches(Qubit q) const
{
    return q0 == q || q1 == q;
}

std::string
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::I: return "id";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::H: return "h";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::RX: return "rx";
      case GateKind::RY: return "ry";
      case GateKind::RZ: return "rz";
      case GateKind::U3: return "u3";
      case GateKind::CX: return "cx";
      case GateKind::CZ: return "cz";
      case GateKind::SWAP: return "swap";
      case GateKind::MEASURE: return "measure";
      case GateKind::BARRIER: return "barrier";
    }
    VAQ_ASSERT(false, "unhandled GateKind");
    return {};
}

int
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        return 2;
      case GateKind::BARRIER:
        return 0;
      default:
        return 1;
    }
}

GateKind
gateKindFromName(const std::string &name)
{
    static const struct { const char *name; GateKind kind; } table[] = {
        {"id", GateKind::I},       {"x", GateKind::X},
        {"y", GateKind::Y},        {"z", GateKind::Z},
        {"h", GateKind::H},        {"s", GateKind::S},
        {"sdg", GateKind::Sdg},    {"t", GateKind::T},
        {"tdg", GateKind::Tdg},    {"rx", GateKind::RX},
        {"ry", GateKind::RY},      {"rz", GateKind::RZ},
        {"u3", GateKind::U3},     {"u2", GateKind::U3},
        {"u1", GateKind::RZ},      {"cx", GateKind::CX},
        {"cz", GateKind::CZ},      {"swap", GateKind::SWAP},
        {"measure", GateKind::MEASURE},
        {"barrier", GateKind::BARRIER},
    };
    for (const auto &entry : table) {
        if (name == entry.name)
            return entry.kind;
    }
    throw VaqError("unknown gate mnemonic: '" + name + "'");
}

} // namespace vaq::circuit
