/**
 * @file
 * CNOT orientation pass: rewrite a routed circuit so every CX obeys
 * the machine's native gate directions, inserting the standard
 * H-conjugation for reversed gates (and lowering SWAPs first, since
 * a SWAP has no orientation of its own).
 */
#ifndef VAQ_CIRCUIT_ORIENT_HPP
#define VAQ_CIRCUIT_ORIENT_HPP

#include "circuit/circuit.hpp"
#include "topology/directions.hpp"

namespace vaq::circuit
{

/** Statistics of one orientCnots() run. */
struct OrientStats
{
    std::size_t reversedCnots = 0; ///< CX needing H-conjugation
    std::size_t loweredSwaps = 0;  ///< SWAPs expanded to 3 CX
};

/**
 * Rewrite `physical` (a routed circuit whose two-qubit gates sit on
 * coupled pairs) to respect `directions`:
 *  - SWAPs are lowered to 3 CX (alternating orientation, so at most
 *    one per triple needs reversal... each is oriented natively),
 *  - each CX whose control/target is not native becomes
 *    H(c) H(t) CX(t, c) H(c) H(t),
 *  - CZ is symmetric and passes through unchanged.
 *
 * @throws VaqError when a two-qubit gate sits on an uncoupled pair.
 */
Circuit orientCnots(const Circuit &physical,
                    const topology::CnotDirections &directions,
                    OrientStats *stats = nullptr);

} // namespace vaq::circuit

#endif // VAQ_CIRCUIT_ORIENT_HPP
