/**
 * @file
 * Dependence-layer partitioning of a circuit.
 *
 * Both the baseline (Zulehner-style) mapper and the variation-aware
 * mappers operate layer by layer: each layer groups operations that
 * touch disjoint qubits and can execute in parallel (step 3 of the
 * paper's Section 4.5). Barriers force a layer boundary.
 */
#ifndef VAQ_CIRCUIT_LAYERING_HPP
#define VAQ_CIRCUIT_LAYERING_HPP

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"

namespace vaq::circuit
{

/** One dependence layer: indices into Circuit::gates(). */
using Layer = std::vector<std::size_t>;

/**
 * Partition `circuit` into ASAP dependence layers.
 *
 * A gate is placed in the earliest layer after the last layer that
 * touches any of its operands. Barrier gates are not emitted into any
 * layer but force all subsequent gates into strictly later layers.
 *
 * @return Layers in execution order; the vector's size equals the
 *         circuit depth.
 */
std::vector<Layer> layerize(const Circuit &circuit);

/**
 * Like layerize(), but each layer keeps only the two-qubit gates.
 * Layers with no two-qubit gate are dropped. This is the view the
 * routers consume, since only two-qubit gates impose connectivity
 * constraints.
 */
std::vector<Layer> layerizeTwoQubit(const Circuit &circuit);

} // namespace vaq::circuit

#endif // VAQ_CIRCUIT_LAYERING_HPP
