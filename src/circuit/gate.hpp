/**
 * @file
 * Gate model for the quantum-circuit intermediate representation.
 *
 * The gate set covers what the paper's workloads need: the standard
 * one-qubit Cliffords + rotations, CNOT/CZ/SWAP two-qubit gates, and
 * measurement/barrier pseudo-ops. CNOT error rates dominate NISQ
 * reliability (Section 2.2 of the paper), so the IR keeps two-qubit
 * gates first-class and cheap to enumerate.
 */
#ifndef VAQ_CIRCUIT_GATE_HPP
#define VAQ_CIRCUIT_GATE_HPP

#include <cstdint>
#include <string>

namespace vaq::circuit
{

/** Index of a qubit (program-level or physical, by context). */
using Qubit = int;

/** Sentinel for "no second operand". */
inline constexpr Qubit kNoQubit = -1;

/** The supported gate alphabet. */
enum class GateKind : std::uint8_t
{
    I,       ///< identity (explicit idle)
    X,       ///< Pauli-X
    Y,       ///< Pauli-Y
    Z,       ///< Pauli-Z
    H,       ///< Hadamard
    S,       ///< phase sqrt(Z)
    Sdg,     ///< S-dagger
    T,       ///< pi/8 gate
    Tdg,     ///< T-dagger
    RX,      ///< X rotation by angle
    RY,      ///< Y rotation by angle
    RZ,      ///< Z rotation by angle
    U3,      ///< general 1q unitary U3(theta, phi, lambda)
    CX,      ///< controlled-NOT (control = q0, target = q1)
    CZ,      ///< controlled-Z
    SWAP,    ///< exchange two qubit states (= 3 CNOTs, Fig. 2d)
    MEASURE, ///< Z-basis measurement into classical bit = qubit index
    BARRIER, ///< scheduling barrier across all qubits
};

/**
 * One circuit operation.
 *
 * Plain value type: gates are stored by value in Circuit and copied
 * freely by the mappers when SWAPs are inserted.
 */
struct Gate
{
    GateKind kind = GateKind::I;
    Qubit q0 = kNoQubit;        ///< first (or only) operand
    Qubit q1 = kNoQubit;        ///< second operand for 2q gates
    double param = 0.0;         ///< rotation angle / U3 theta
    double param2 = 0.0;        ///< U3 phi
    double param3 = 0.0;        ///< U3 lambda

    /** Make a one-qubit gate. */
    static Gate oneQubit(GateKind kind, Qubit q, double param = 0.0);

    /** Make a general one-qubit unitary U3(theta, phi, lambda). */
    static Gate u3(Qubit q, double theta, double phi,
                   double lambda);

    /** Make a two-qubit gate. */
    static Gate twoQubit(GateKind kind, Qubit a, Qubit b);

    /** Make a measurement on qubit q. */
    static Gate measure(Qubit q);

    /** Make a full-width barrier. */
    static Gate barrier();

    /** True for CX/CZ/SWAP. */
    bool isTwoQubit() const;

    /** True for anything except MEASURE/BARRIER. */
    bool isUnitary() const;

    /** True when the gate uses rotation angle(s). */
    bool isParameterized() const;

    /** True when this gate touches qubit q. */
    bool touches(Qubit q) const;

    /** Structural equality (kind, operands, angle). */
    bool operator==(const Gate &other) const = default;
};

/** Lower-case QASM-style mnemonic ("cx", "rz", ...). */
std::string gateName(GateKind kind);

/** Number of qubit operands for the gate kind (0 for BARRIER). */
int gateArity(GateKind kind);

/** Parse a mnemonic back to a GateKind; throws VaqError if unknown. */
GateKind gateKindFromName(const std::string &name);

} // namespace vaq::circuit

#endif // VAQ_CIRCUIT_GATE_HPP
