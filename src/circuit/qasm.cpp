#include "circuit/qasm.hpp"

#include <cmath>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace vaq::circuit
{

namespace
{

/** Render one operand as q[i]. */
std::string
operand(Qubit q)
{
    return "q[" + std::to_string(q) + "]";
}

/** Parse "q[i]" (whitespace-tolerant); returns the index. */
Qubit
parseOperand(const std::string &text, const std::string &reg)
{
    const std::string t = trim(text);
    require(startsWith(t, reg + "[") && t.back() == ']',
            "malformed QASM operand: '" + text + "'");
    const std::string idx =
        t.substr(reg.size() + 1, t.size() - reg.size() - 2);
    return static_cast<Qubit>(parseSize(idx));
}

/**
 * Parse an angle expression limited to the forms the writer emits:
 * a decimal literal, "pi", "-pi", "pi/k", "-pi/k", or "k*pi/m".
 */
double
parseAngle(const std::string &raw)
{
    std::string t = trim(raw);
    require(!t.empty(), "empty QASM angle");
    double sign = 1.0;
    if (t.front() == '-') {
        sign = -1.0;
        t = trim(t.substr(1));
    }
    if (t.find("pi") == std::string::npos)
        return sign * parseDouble(t);

    double numerator = 1.0;
    double denominator = 1.0;
    const auto star = t.find('*');
    if (star != std::string::npos) {
        numerator = parseDouble(t.substr(0, star));
        t = trim(t.substr(star + 1));
    }
    require(startsWith(t, "pi"), "malformed QASM angle: '" + raw + "'");
    t = trim(t.substr(2));
    if (!t.empty()) {
        require(t.front() == '/',
                "malformed QASM angle: '" + raw + "'");
        denominator = parseDouble(t.substr(1));
    }
    return sign * numerator * M_PI / denominator;
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream oss;
    oss << "OPENQASM 2.0;\n";
    oss << "include \"qelib1.inc\";\n";
    oss << "qreg q[" << circuit.numQubits() << "];\n";
    oss << "creg c[" << circuit.numQubits() << "];\n";
    for (const Gate &g : circuit.gates()) {
        switch (g.kind) {
          case GateKind::BARRIER:
            oss << "barrier q;\n";
            break;
          case GateKind::MEASURE:
            oss << "measure " << operand(g.q0) << " -> c["
                << g.q0 << "];\n";
            break;
          default:
            oss << gateName(g.kind);
            if (g.kind == GateKind::U3) {
                oss << "(" << formatDouble(g.param, 12) << ","
                    << formatDouble(g.param2, 12) << ","
                    << formatDouble(g.param3, 12) << ")";
            } else if (g.isParameterized()) {
                oss << "(" << formatDouble(g.param, 12) << ")";
            }
            oss << " " << operand(g.q0);
            if (g.isTwoQubit())
                oss << "," << operand(g.q1);
            oss << ";\n";
        }
    }
    return oss.str();
}

Circuit
fromQasm(const std::string &text)
{
    std::optional<Circuit> circuit;
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;

    while (std::getline(in, line)) {
        ++lineNo;
        // Strip comments.
        const auto comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;

        require(line.back() == ';',
                "QASM line " + std::to_string(lineNo) +
                " missing ';'");
        line = trim(line.substr(0, line.size() - 1));

        if (startsWith(line, "OPENQASM") ||
            startsWith(line, "include") ||
            startsWith(line, "creg")) {
            continue;
        }
        if (startsWith(line, "qreg")) {
            require(!circuit.has_value(),
                    "multiple qreg declarations unsupported");
            const auto open = line.find('[');
            const auto close = line.find(']');
            require(open != std::string::npos &&
                        close != std::string::npos && close > open,
                    "malformed qreg on line " +
                        std::to_string(lineNo));
            const auto n = parseSize(
                line.substr(open + 1, close - open - 1));
            circuit.emplace(static_cast<int>(n));
            continue;
        }

        require(circuit.has_value(),
                "gate before qreg on line " + std::to_string(lineNo));

        if (startsWith(line, "barrier")) {
            circuit->barrier();
            continue;
        }
        if (startsWith(line, "measure")) {
            const auto arrow = line.find("->");
            require(arrow != std::string::npos,
                    "malformed measure on line " +
                        std::to_string(lineNo));
            const Qubit q = parseOperand(
                line.substr(7, arrow - 7), "q");
            circuit->measure(q);
            continue;
        }

        // General gate: name[(angle)] q[i][,q[j]]
        std::size_t nameEnd = 0;
        while (nameEnd < line.size() &&
               (std::isalnum(
                   static_cast<unsigned char>(line[nameEnd])))) {
            ++nameEnd;
        }
        const std::string name = line.substr(0, nameEnd);
        std::string rest = trim(line.substr(nameEnd));

        std::vector<double> angles;
        if (!rest.empty() && rest.front() == '(') {
            const auto close = rest.find(')');
            require(close != std::string::npos,
                    "unterminated angle on line " +
                        std::to_string(lineNo));
            for (const std::string &piece :
                 split(rest.substr(1, close - 1), ',')) {
                angles.push_back(parseAngle(piece));
            }
            rest = trim(rest.substr(close + 1));
        }
        const double angle = angles.empty() ? 0.0 : angles[0];

        const GateKind kind = gateKindFromName(name);
        const auto ops = split(rest, ',');
        if (gateArity(kind) == 2) {
            require(ops.size() == 2,
                    "two-qubit gate needs two operands on line " +
                        std::to_string(lineNo));
            circuit->append(Gate::twoQubit(
                kind, parseOperand(ops[0], "q"),
                parseOperand(ops[1], "q")));
        } else {
            require(ops.size() == 1,
                    "one-qubit gate needs one operand on line " +
                        std::to_string(lineNo));
            if (kind == GateKind::U3 || name == "u2") {
                const bool isU2 = name == "u2";
                require(angles.size() == (isU2 ? 2u : 3u),
                        "u2/u3 angle count wrong on line " +
                            std::to_string(lineNo));
                const double theta = isU2 ? M_PI / 2.0 : angles[0];
                const double phi = isU2 ? angles[0] : angles[1];
                const double lambda =
                    isU2 ? angles[1] : angles[2];
                circuit->append(Gate::u3(
                    parseOperand(ops[0], "q"), theta, phi,
                    lambda));
            } else {
                circuit->append(Gate::oneQubit(
                    kind, parseOperand(ops[0], "q"), angle));
            }
        }
    }

    require(circuit.has_value(), "QASM program has no qreg");
    return *circuit;
}

} // namespace vaq::circuit
