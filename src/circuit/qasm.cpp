#include "circuit/qasm.hpp"

#include <cmath>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace vaq::circuit
{

namespace
{

/** Render one operand as q[i]. */
std::string
operand(Qubit q)
{
    return "q[" + std::to_string(q) + "]";
}

/**
 * Where the parser currently is. Errors compose the CSV-loader
 * location convention ("source:line:column: message") and append
 * the offending line with a caret under the blamed token.
 */
struct ParseState
{
    const std::string &source;
    int lineNo = 0;
    std::string raw; ///< current line, untrimmed, comments intact

    /** 1-based column of `token` in the raw line (1 if absent). */
    std::size_t column(const std::string &token) const
    {
        if (!token.empty()) {
            const auto pos = raw.find(token);
            if (pos != std::string::npos)
                return pos + 1;
        }
        const auto pos = raw.find_first_not_of(" \t");
        return pos == std::string::npos ? 1 : pos + 1;
    }

    [[noreturn]] void fail(const std::string &message,
                           const std::string &token = "") const
    {
        const std::size_t col = column(token);
        std::string msg = source + ":" + std::to_string(lineNo) +
                          ":" + std::to_string(col) + ": " +
                          message;
        if (!raw.empty()) {
            // Caret padding mirrors tabs so it lines up however
            // the excerpt is rendered.
            std::string pad;
            for (std::size_t i = 0; i + 1 < col && i < raw.size();
                 ++i) {
                pad += raw[i] == '\t' ? '\t' : ' ';
            }
            msg += "\n  " + raw + "\n  " + pad + "^";
        }
        throw VaqError(msg);
    }

    void check(bool ok, const std::string &message,
               const std::string &token = "") const
    {
        if (!ok)
            fail(message, token);
    }
};

/** Parse "q[i]" (whitespace-tolerant); returns the index. */
Qubit
parseOperand(const ParseState &st, const std::string &text,
             const std::string &reg)
{
    const std::string t = trim(text);
    st.check(startsWith(t, reg + "[") && t.size() > reg.size() + 2 &&
                 t.back() == ']',
             "malformed operand '" + t + "': expected " + reg +
                 "[<index>]",
             t);
    const std::string idx =
        t.substr(reg.size() + 1, t.size() - reg.size() - 2);
    try {
        return static_cast<Qubit>(parseSize(idx));
    } catch (const VaqError &e) {
        st.fail("bad operand index '" + idx + "': " + e.message(),
                t);
    }
}

/**
 * Parse an angle expression limited to the forms the writer emits:
 * a decimal literal, "pi", "-pi", "pi/k", "-pi/k", or "k*pi/m".
 */
double
parseAngle(const ParseState &st, const std::string &raw)
{
    std::string t = trim(raw);
    st.check(!t.empty(), "empty angle expression");
    try {
        double sign = 1.0;
        if (t.front() == '-') {
            sign = -1.0;
            t = trim(t.substr(1));
        }
        if (t.find("pi") == std::string::npos)
            return sign * parseDouble(t);

        double numerator = 1.0;
        double denominator = 1.0;
        const auto star = t.find('*');
        if (star != std::string::npos) {
            numerator = parseDouble(t.substr(0, star));
            t = trim(t.substr(star + 1));
        }
        if (!startsWith(t, "pi"))
            throw VaqError("expected 'pi'");
        t = trim(t.substr(2));
        if (!t.empty()) {
            if (t.front() != '/')
                throw VaqError("expected '/' after 'pi'");
            denominator = parseDouble(t.substr(1));
        }
        return sign * numerator * M_PI / denominator;
    } catch (const VaqError &e) {
        st.fail("malformed angle '" + trim(raw) +
                    "': " + e.message(),
                trim(raw));
    }
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream oss;
    oss << "OPENQASM 2.0;\n";
    oss << "include \"qelib1.inc\";\n";
    oss << "qreg q[" << circuit.numQubits() << "];\n";
    oss << "creg c[" << circuit.numQubits() << "];\n";
    for (const Gate &g : circuit.gates()) {
        switch (g.kind) {
          case GateKind::BARRIER:
            oss << "barrier q;\n";
            break;
          case GateKind::MEASURE:
            oss << "measure " << operand(g.q0) << " -> c["
                << g.q0 << "];\n";
            break;
          default:
            oss << gateName(g.kind);
            if (g.kind == GateKind::U3) {
                oss << "(" << formatDouble(g.param, 12) << ","
                    << formatDouble(g.param2, 12) << ","
                    << formatDouble(g.param3, 12) << ")";
            } else if (g.isParameterized()) {
                oss << "(" << formatDouble(g.param, 12) << ")";
            }
            oss << " " << operand(g.q0);
            if (g.isTwoQubit())
                oss << "," << operand(g.q1);
            oss << ";\n";
        }
    }
    return oss.str();
}

ParsedQasm
parseQasm(const std::string &text, const std::string &source)
{
    std::optional<Circuit> circuit;
    std::vector<int> gateLines;
    std::istringstream in(text);
    std::string line;
    ParseState st{source, 0, {}};

    const auto record = [&gateLines, &st] {
        gateLines.push_back(st.lineNo);
    };

    while (std::getline(in, line)) {
        ++st.lineNo;
        st.raw = line;
        // Strip comments.
        const auto comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;

        st.check(line.back() == ';',
                 "missing ';' at end of statement");
        line = trim(line.substr(0, line.size() - 1));

        if (startsWith(line, "OPENQASM") ||
            startsWith(line, "include") ||
            startsWith(line, "creg")) {
            continue;
        }
        if (startsWith(line, "qreg")) {
            st.check(!circuit.has_value(),
                     "multiple qreg declarations unsupported",
                     "qreg");
            const auto open = line.find('[');
            const auto close = line.find(']');
            st.check(open != std::string::npos &&
                         close != std::string::npos && close > open,
                     "malformed qreg: expected qreg q[<size>]");
            try {
                const auto n = parseSize(
                    line.substr(open + 1, close - open - 1));
                circuit.emplace(static_cast<int>(n));
            } catch (const VaqError &e) {
                st.fail("bad qreg size: " + e.message());
            }
            continue;
        }

        st.check(circuit.has_value(), "gate before qreg");

        if (startsWith(line, "barrier")) {
            circuit->barrier();
            record();
            continue;
        }
        if (startsWith(line, "measure")) {
            const auto arrow = line.find("->");
            st.check(arrow != std::string::npos,
                     "malformed measure: expected "
                     "measure q[i] -> c[i]",
                     "measure");
            const Qubit q = parseOperand(
                st, line.substr(7, arrow - 7), "q");
            try {
                circuit->measure(q);
            } catch (const VaqError &e) {
                st.fail(e.message(), "measure");
            }
            record();
            continue;
        }

        // General gate: name[(angle)] q[i][,q[j]]
        std::size_t nameEnd = 0;
        while (nameEnd < line.size() &&
               (std::isalnum(
                   static_cast<unsigned char>(line[nameEnd])))) {
            ++nameEnd;
        }
        const std::string name = line.substr(0, nameEnd);
        st.check(!name.empty(), "expected a gate name");
        std::string rest = trim(line.substr(nameEnd));

        std::vector<double> angles;
        if (!rest.empty() && rest.front() == '(') {
            const auto close = rest.find(')');
            st.check(close != std::string::npos,
                     "unterminated angle list: missing ')'", "(");
            for (const std::string &piece :
                 split(rest.substr(1, close - 1), ',')) {
                angles.push_back(parseAngle(st, piece));
            }
            rest = trim(rest.substr(close + 1));
        }
        const double angle = angles.empty() ? 0.0 : angles[0];

        GateKind kind;
        try {
            kind = gateKindFromName(name);
        } catch (const VaqError &e) {
            st.fail("unknown gate '" + name + "'", name);
        }
        const auto ops = split(rest, ',');
        try {
            if (gateArity(kind) == 2) {
                st.check(ops.size() == 2,
                         "two-qubit gate '" + name +
                             "' needs two operands",
                         name);
                circuit->append(Gate::twoQubit(
                    kind, parseOperand(st, ops[0], "q"),
                    parseOperand(st, ops[1], "q")));
            } else {
                st.check(ops.size() == 1,
                         "one-qubit gate '" + name +
                             "' needs one operand",
                         name);
                if (kind == GateKind::U3 || name == "u2") {
                    const bool isU2 = name == "u2";
                    st.check(angles.size() == (isU2 ? 2u : 3u),
                             name + " takes " +
                                 (isU2 ? std::string("2")
                                       : std::string("3")) +
                                 " angles, got " +
                                 std::to_string(angles.size()),
                             name);
                    const double theta =
                        isU2 ? M_PI / 2.0 : angles[0];
                    const double phi = isU2 ? angles[0] : angles[1];
                    const double lambda =
                        isU2 ? angles[1] : angles[2];
                    circuit->append(Gate::u3(
                        parseOperand(st, ops[0], "q"), theta, phi,
                        lambda));
                } else {
                    circuit->append(Gate::oneQubit(
                        kind, parseOperand(st, ops[0], "q"),
                        angle));
                }
            }
        } catch (const VaqError &e) {
            // Located errors pass through; range errors from
            // Circuit::append gain the line they came from.
            if (e.message().rfind(source + ":", 0) == 0)
                throw;
            st.fail(e.message(), name);
        }
        record();
    }

    st.raw.clear();
    st.check(circuit.has_value(), "program has no qreg");
    return ParsedQasm{std::move(*circuit), std::move(gateLines)};
}

Circuit
fromQasm(const std::string &text)
{
    return parseQasm(text).circuit;
}

} // namespace vaq::circuit
