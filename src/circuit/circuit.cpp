#include "circuit/circuit.hpp"

#include <cmath>

#include <algorithm>

#include "circuit/layering.hpp"
#include "common/error.hpp"
#include "common/hashing.hpp"

namespace vaq::circuit
{

Circuit::Circuit(int num_qubits)
    : _numQubits(num_qubits)
{
    require(num_qubits > 0, "circuit needs at least one qubit");
}

void
Circuit::checkOperand(Qubit q) const
{
    require(q >= 0 && q < _numQubits,
            "qubit operand out of range for circuit width");
}

Circuit &
Circuit::append(const Gate &gate)
{
    if (gate.kind != GateKind::BARRIER) {
        checkOperand(gate.q0);
        if (gate.isTwoQubit())
            checkOperand(gate.q1);
    }
    _gates.push_back(gate);
    return *this;
}

Circuit &
Circuit::append(const Circuit &other)
{
    require(other._numQubits <= _numQubits,
            "appended circuit is wider than the target");
    for (const Gate &g : other._gates)
        append(g);
    return *this;
}

Circuit &Circuit::i(Qubit q)
{ return append(Gate::oneQubit(GateKind::I, q)); }
Circuit &Circuit::x(Qubit q)
{ return append(Gate::oneQubit(GateKind::X, q)); }
Circuit &Circuit::y(Qubit q)
{ return append(Gate::oneQubit(GateKind::Y, q)); }
Circuit &Circuit::z(Qubit q)
{ return append(Gate::oneQubit(GateKind::Z, q)); }
Circuit &Circuit::h(Qubit q)
{ return append(Gate::oneQubit(GateKind::H, q)); }
Circuit &Circuit::s(Qubit q)
{ return append(Gate::oneQubit(GateKind::S, q)); }
Circuit &Circuit::sdg(Qubit q)
{ return append(Gate::oneQubit(GateKind::Sdg, q)); }
Circuit &Circuit::t(Qubit q)
{ return append(Gate::oneQubit(GateKind::T, q)); }
Circuit &Circuit::tdg(Qubit q)
{ return append(Gate::oneQubit(GateKind::Tdg, q)); }

Circuit &
Circuit::rx(Qubit q, double theta)
{
    return append(Gate::oneQubit(GateKind::RX, q, theta));
}

Circuit &
Circuit::ry(Qubit q, double theta)
{
    return append(Gate::oneQubit(GateKind::RY, q, theta));
}

Circuit &
Circuit::rz(Qubit q, double theta)
{
    return append(Gate::oneQubit(GateKind::RZ, q, theta));
}

Circuit &
Circuit::u3(Qubit q, double theta, double phi, double lambda)
{
    return append(Gate::u3(q, theta, phi, lambda));
}

Circuit &
Circuit::u2(Qubit q, double phi, double lambda)
{
    return append(Gate::u3(q, M_PI / 2.0, phi, lambda));
}

Circuit &
Circuit::cx(Qubit control, Qubit target)
{
    return append(Gate::twoQubit(GateKind::CX, control, target));
}

Circuit &
Circuit::cz(Qubit a, Qubit b)
{
    return append(Gate::twoQubit(GateKind::CZ, a, b));
}

Circuit &
Circuit::swap(Qubit a, Qubit b)
{
    return append(Gate::twoQubit(GateKind::SWAP, a, b));
}

Circuit &
Circuit::measure(Qubit q)
{
    return append(Gate::measure(q));
}

Circuit &
Circuit::measureAll()
{
    for (Qubit q = 0; q < _numQubits; ++q)
        measure(q);
    return *this;
}

Circuit &
Circuit::barrier()
{
    return append(Gate::barrier());
}

std::size_t
Circuit::instructionCount() const
{
    std::size_t n = 0;
    for (const Gate &g : _gates) {
        if (g.kind != GateKind::BARRIER)
            ++n;
    }
    return n;
}

std::size_t
Circuit::twoQubitCount() const
{
    std::size_t n = 0;
    for (const Gate &g : _gates) {
        if (g.isTwoQubit())
            ++n;
    }
    return n;
}

std::size_t
Circuit::swapCount() const
{
    std::size_t n = 0;
    for (const Gate &g : _gates) {
        if (g.kind == GateKind::SWAP)
            ++n;
    }
    return n;
}

std::size_t
Circuit::measureCount() const
{
    std::size_t n = 0;
    for (const Gate &g : _gates) {
        if (g.kind == GateKind::MEASURE)
            ++n;
    }
    return n;
}

std::size_t
Circuit::depth() const
{
    return layerize(*this).size();
}

std::vector<Qubit>
Circuit::activeQubits() const
{
    std::vector<bool> used(static_cast<std::size_t>(_numQubits),
                           false);
    for (const Gate &g : _gates) {
        if (g.kind == GateKind::BARRIER)
            continue;
        used[static_cast<std::size_t>(g.q0)] = true;
        if (g.isTwoQubit())
            used[static_cast<std::size_t>(g.q1)] = true;
    }
    std::vector<Qubit> out;
    for (int q = 0; q < _numQubits; ++q) {
        if (used[static_cast<std::size_t>(q)])
            out.push_back(q);
    }
    return out;
}

Circuit
Circuit::remapped(const std::vector<Qubit> &permutation,
                  int width) const
{
    require(width >= _numQubits,
            "remap target narrower than source circuit");
    require(permutation.size() >=
                static_cast<std::size_t>(_numQubits),
            "permutation too short for circuit");

    // Verify injectivity onto [0, width).
    std::vector<bool> seen(static_cast<std::size_t>(width), false);
    for (int q = 0; q < _numQubits; ++q) {
        const Qubit p = permutation[static_cast<std::size_t>(q)];
        require(p >= 0 && p < width,
                "permutation image out of range");
        require(!seen[static_cast<std::size_t>(p)],
                "permutation not injective");
        seen[static_cast<std::size_t>(p)] = true;
    }

    Circuit out(width);
    for (Gate g : _gates) {
        if (g.kind != GateKind::BARRIER) {
            g.q0 = permutation[static_cast<std::size_t>(g.q0)];
            if (g.isTwoQubit())
                g.q1 = permutation[static_cast<std::size_t>(g.q1)];
        }
        out.append(g);
    }
    return out;
}

std::uint64_t
Circuit::contentHash() const
{
    std::uint64_t h = kHashSeed;
    h = hashCombine(h, static_cast<std::uint64_t>(_numQubits));
    h = hashCombine(h, static_cast<std::uint64_t>(_gates.size()));
    for (const Gate &g : _gates) {
        // Pack kind and both operands into one word (operands are
        // small non-negative ints, or the -1 sentinel).
        const std::uint64_t word =
            (static_cast<std::uint64_t>(g.kind) << 48) ^
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(g.q0))
             << 24) ^
            static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(g.q1));
        h = hashCombine(h, word);
        if (g.isParameterized()) {
            h = hashCombine(h, g.param);
            h = hashCombine(h, g.param2);
            h = hashCombine(h, g.param3);
        }
    }
    return h;
}

Circuit
Circuit::withSwapsLowered() const
{
    Circuit out(_numQubits);
    for (const Gate &g : _gates) {
        if (g.kind == GateKind::SWAP) {
            out.cx(g.q0, g.q1);
            out.cx(g.q1, g.q0);
            out.cx(g.q0, g.q1);
        } else {
            out.append(g);
        }
    }
    return out;
}

} // namespace vaq::circuit
