/**
 * @file
 * OpenQASM 2.0 (subset) serialization of circuits.
 *
 * The writer emits programs loadable by standard toolchains (Qiskit,
 * tket), and the reader accepts the same subset back, enabling
 * round-trip tests and import of externally authored kernels.
 *
 * Supported subset: a single `qreg q[n]` / `creg c[n]` pair, the
 * libvaq gate alphabet, `measure q[i] -> c[i]`, and whole-register
 * `barrier`. Comments and blank lines are ignored.
 */
#ifndef VAQ_CIRCUIT_QASM_HPP
#define VAQ_CIRCUIT_QASM_HPP

#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace vaq::circuit
{

/** Render a circuit as an OpenQASM 2.0 program. */
std::string toQasm(const Circuit &circuit);

/** A parsed program plus per-gate source provenance. */
struct ParsedQasm
{
    Circuit circuit;
    /** 1-based source line of gates()[i]; same length as gates(). */
    std::vector<int> gateLines;
};

/**
 * Parse an OpenQASM 2.0 (subset) program, keeping the source line
 * of every gate for diagnostics.
 *
 * @param source Name used in error messages and gate provenance
 *        (conventionally the file path; follows the CSV-loader
 *        "source:line:column: message" convention, with the
 *        offending line and a caret appended).
 * @throws VaqError on any construct outside the supported subset.
 */
ParsedQasm parseQasm(const std::string &text,
                     const std::string &source = "<qasm>");

/**
 * Parse an OpenQASM 2.0 (subset) program.
 * @throws VaqError on any construct outside the supported subset.
 */
Circuit fromQasm(const std::string &text);

} // namespace vaq::circuit

#endif // VAQ_CIRCUIT_QASM_HPP
