/**
 * @file
 * OpenQASM 2.0 (subset) serialization of circuits.
 *
 * The writer emits programs loadable by standard toolchains (Qiskit,
 * tket), and the reader accepts the same subset back, enabling
 * round-trip tests and import of externally authored kernels.
 *
 * Supported subset: a single `qreg q[n]` / `creg c[n]` pair, the
 * libvaq gate alphabet, `measure q[i] -> c[i]`, and whole-register
 * `barrier`. Comments and blank lines are ignored.
 */
#ifndef VAQ_CIRCUIT_QASM_HPP
#define VAQ_CIRCUIT_QASM_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace vaq::circuit
{

/** Render a circuit as an OpenQASM 2.0 program. */
std::string toQasm(const Circuit &circuit);

/**
 * Parse an OpenQASM 2.0 (subset) program.
 * @throws VaqError on any construct outside the supported subset.
 */
Circuit fromQasm(const std::string &text);

} // namespace vaq::circuit

#endif // VAQ_CIRCUIT_QASM_HPP
