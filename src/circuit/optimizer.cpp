#include "circuit/optimizer.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace vaq::circuit
{

namespace
{

/** Angle small enough to treat a rotation as identity. */
constexpr double kZeroAngle = 1e-12;

/** True for gates that are their own inverse. */
bool
isSelfInverse(GateKind kind)
{
    switch (kind) {
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        return true;
      default:
        return false;
    }
}

/** True when a and b cancel as an adjacent pair. */
bool
cancels(const Gate &a, const Gate &b)
{
    if (a.isTwoQubit() != b.isTwoQubit())
        return false;
    if (isSelfInverse(a.kind) && a.kind == b.kind) {
        if (a.isTwoQubit()) {
            // CZ and SWAP are symmetric; CX is not.
            if (a.kind == GateKind::CZ ||
                a.kind == GateKind::SWAP) {
                return (a.q0 == b.q0 && a.q1 == b.q1) ||
                       (a.q0 == b.q1 && a.q1 == b.q0);
            }
            return a.q0 == b.q0 && a.q1 == b.q1;
        }
        return a.q0 == b.q0;
    }
    // S/Sdg and T/Tdg inverses (either order).
    const auto inversePair = [&](GateKind x, GateKind y) {
        return (a.kind == x && b.kind == y) ||
               (a.kind == y && b.kind == x);
    };
    if (a.q0 == b.q0 && !a.isTwoQubit()) {
        if (inversePair(GateKind::S, GateKind::Sdg))
            return true;
        if (inversePair(GateKind::T, GateKind::Tdg))
            return true;
    }
    return false;
}

/** True when a and b are equal-axis rotations on the same qubit
 *  (U3 is excluded: its angles do not add). */
bool
fusable(const Gate &a, const Gate &b)
{
    const bool singleAngle = a.kind == GateKind::RX ||
                             a.kind == GateKind::RY ||
                             a.kind == GateKind::RZ;
    return singleAngle && a.kind == b.kind && a.q0 == b.q0;
}

/** One sweep; returns true when anything changed. */
bool
sweep(std::vector<Gate> &gates, OptimizerStats &stats)
{
    bool changed = false;
    std::vector<Gate> out;
    out.reserve(gates.size());
    // lastOnQubit[q] = index in `out` of the latest survivor
    // touching q, or -1.
    std::vector<int> lastOnQubit;
    std::vector<bool> alive;

    auto lastIndexFor = [&](const Gate &g) -> int {
        const auto q0 = static_cast<std::size_t>(g.q0);
        int idx = lastOnQubit[q0];
        if (g.isTwoQubit()) {
            const auto q1 = static_cast<std::size_t>(g.q1);
            // Both operands must agree on the predecessor, else
            // something touched one of them in between.
            if (lastOnQubit[q1] != idx)
                return -1;
        }
        return idx;
    };

    auto widthNeeded = [&gates]() {
        int w = 0;
        for (const Gate &g : gates) {
            w = std::max(w, g.q0 + 1);
            w = std::max(w, g.q1 + 1);
        }
        return w;
    }();
    lastOnQubit.assign(static_cast<std::size_t>(
                           std::max(widthNeeded, 1)),
                       -1);

    auto touch = [&](const Gate &g, int idx) {
        lastOnQubit[static_cast<std::size_t>(g.q0)] = idx;
        if (g.isTwoQubit())
            lastOnQubit[static_cast<std::size_t>(g.q1)] = idx;
    };

    for (const Gate &g : gates) {
        if (g.kind == GateKind::BARRIER) {
            // Hard fence: nothing cancels across it.
            out.push_back(g);
            alive.push_back(true);
            for (int &last : lastOnQubit)
                last = static_cast<int>(out.size()) - 1;
            continue;
        }
        const bool zeroRotation =
            g.isParameterized() &&
            std::abs(g.param) < kZeroAngle &&
            std::abs(g.param2) < kZeroAngle &&
            std::abs(g.param3) < kZeroAngle;
        if (g.kind == GateKind::I || zeroRotation) {
            ++stats.droppedIdentities;
            changed = true;
            continue;
        }
        if (g.kind == GateKind::MEASURE) {
            out.push_back(g);
            alive.push_back(true);
            touch(g, static_cast<int>(out.size()) - 1);
            continue;
        }

        const int prev = lastIndexFor(g);
        if (prev >= 0 && alive[static_cast<std::size_t>(prev)]) {
            const Gate &p = out[static_cast<std::size_t>(prev)];
            if (p.kind != GateKind::BARRIER &&
                p.kind != GateKind::MEASURE) {
                if (cancels(p, g)) {
                    alive[static_cast<std::size_t>(prev)] = false;
                    ++stats.cancelledPairs;
                    changed = true;
                    // Predecessor info for these qubits is now the
                    // gate *before* prev; conservatively reset so
                    // no further cancellation reaches past it in
                    // this sweep (the fixpoint loop catches it).
                    lastOnQubit[static_cast<std::size_t>(g.q0)] =
                        -1;
                    if (g.isTwoQubit()) {
                        lastOnQubit[static_cast<std::size_t>(
                            g.q1)] = -1;
                    }
                    continue;
                }
                if (fusable(p, g)) {
                    out[static_cast<std::size_t>(prev)].param +=
                        g.param;
                    ++stats.fusedRotations;
                    changed = true;
                    continue;
                }
            }
        }
        out.push_back(g);
        alive.push_back(true);
        touch(g, static_cast<int>(out.size()) - 1);
    }

    gates.clear();
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (alive[i])
            gates.push_back(out[i]);
    }
    return changed;
}

} // namespace

Circuit
optimize(const Circuit &circuit, OptimizerStats *stats)
{
    OptimizerStats local;
    std::vector<Gate> gates = circuit.gates();
    // Fixpoint: each sweep can expose new adjacent pairs.
    for (int iteration = 0; iteration < 64; ++iteration) {
        if (!sweep(gates, local))
            break;
    }

    Circuit out(circuit.numQubits());
    for (const Gate &g : gates)
        out.append(g);
    if (stats != nullptr)
        *stats = local;
    return out;
}

} // namespace vaq::circuit
