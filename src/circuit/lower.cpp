#include "circuit/lower.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vaq::circuit
{

namespace
{

/** U3 angles equivalent to each fixed one-qubit gate. */
Gate
u3For(GateKind kind, Qubit q, double param)
{
    switch (kind) {
      case GateKind::X:
        return Gate::u3(q, M_PI, 0.0, M_PI);
      case GateKind::Y:
        return Gate::u3(q, M_PI, M_PI / 2.0, M_PI / 2.0);
      case GateKind::Z:
        return Gate::u3(q, 0.0, 0.0, M_PI);
      case GateKind::H:
        return Gate::u3(q, M_PI / 2.0, 0.0, M_PI);
      case GateKind::S:
        return Gate::u3(q, 0.0, 0.0, M_PI / 2.0);
      case GateKind::Sdg:
        return Gate::u3(q, 0.0, 0.0, -M_PI / 2.0);
      case GateKind::T:
        return Gate::u3(q, 0.0, 0.0, M_PI / 4.0);
      case GateKind::Tdg:
        return Gate::u3(q, 0.0, 0.0, -M_PI / 4.0);
      case GateKind::RX:
        return Gate::u3(q, param, -M_PI / 2.0, M_PI / 2.0);
      case GateKind::RY:
        return Gate::u3(q, param, 0.0, 0.0);
      case GateKind::RZ:
        // Up to global phase, RZ(a) = U3(0, 0, a).
        return Gate::u3(q, 0.0, 0.0, param);
      default:
        VAQ_ASSERT(false, "not a lowerable 1q gate");
        return Gate::u3(q, 0, 0, 0);
    }
}

} // namespace

Circuit
toNativeBasis(const Circuit &circuit, LowerStats *stats)
{
    LowerStats local;
    Circuit out(circuit.numQubits());
    const Gate hGate = u3For(GateKind::H, 0, 0.0);

    auto emitH = [&](Qubit q) {
        Gate h = hGate;
        h.q0 = q;
        out.append(h);
    };

    for (const Gate &g : circuit.gates()) {
        switch (g.kind) {
          case GateKind::I:
            break; // identity: drop
          case GateKind::MEASURE:
          case GateKind::BARRIER:
          case GateKind::CX:
          case GateKind::U3:
            out.append(g);
            break;
          case GateKind::CZ:
            // CZ = (I (x) H) CX (I (x) H).
            ++local.loweredCz;
            emitH(g.q1);
            out.cx(g.q0, g.q1);
            emitH(g.q1);
            break;
          case GateKind::SWAP:
            ++local.loweredSwaps;
            out.cx(g.q0, g.q1);
            out.cx(g.q1, g.q0);
            out.cx(g.q0, g.q1);
            break;
          default:
            ++local.loweredOneQubit;
            out.append(u3For(g.kind, g.q0, g.param));
            break;
        }
    }
    if (stats != nullptr)
        *stats = local;
    return out;
}

bool
isNativeBasis(const Circuit &circuit)
{
    for (const Gate &g : circuit.gates()) {
        switch (g.kind) {
          case GateKind::U3:
          case GateKind::CX:
          case GateKind::MEASURE:
          case GateKind::BARRIER:
            break;
          default:
            return false;
        }
    }
    return true;
}

} // namespace vaq::circuit
