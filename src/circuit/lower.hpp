/**
 * @file
 * Native-basis lowering: rewrite a circuit into the {U3, CX} basis
 * the paper-era IBM machines execute natively (every one-qubit gate
 * is one microwave pulse described by U3(theta, phi, lambda); CZ
 * and SWAP decompose into CX + U3).
 *
 * Useful before handing a compiled circuit to a hardware backend,
 * and as the last step of vaqc --lower.
 */
#ifndef VAQ_CIRCUIT_LOWER_HPP
#define VAQ_CIRCUIT_LOWER_HPP

#include "circuit/circuit.hpp"

namespace vaq::circuit
{

/** Statistics of one toNativeBasis() run. */
struct LowerStats
{
    std::size_t loweredOneQubit = 0; ///< 1q gates rewritten to U3
    std::size_t loweredCz = 0;       ///< CZ -> H-conjugated CX
    std::size_t loweredSwaps = 0;    ///< SWAP -> 3 CX
};

/**
 * Rewrite every gate into {U3, CX, MEASURE, BARRIER}:
 *  - 1q Cliffords/rotations become the equivalent U3 (identity
 *    gates are dropped),
 *  - CZ(a, b) becomes U3-H(b) CX(a, b) U3-H(b),
 *  - SWAP becomes 3 CX (Fig. 2d of the paper).
 * Global phase is not tracked (irrelevant for measurement
 * statistics).
 */
Circuit toNativeBasis(const Circuit &circuit,
                      LowerStats *stats = nullptr);

/** True when the circuit contains only {U3, CX, MEASURE, BARRIER}. */
bool isNativeBasis(const Circuit &circuit);

} // namespace vaq::circuit

#endif // VAQ_CIRCUIT_LOWER_HPP
