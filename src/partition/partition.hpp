/**
 * @file
 * Machine partitioning: one strong copy versus two weak copies
 * (Section 8 of the paper).
 *
 * When a program needs at most half the machine, the operator can
 * either run two concurrent copies (more trials per unit time, but
 * both copies are stuck with whatever qubits they get) or one copy
 * on the strongest region (fewer trials, each more likely to
 * succeed). The figure of merit is STPT — Successful Trials Per unit
 * Time = sum over copies of PST / trial-latency.
 */
#ifndef VAQ_PARTITION_PARTITION_HPP
#define VAQ_PARTITION_PARTITION_HPP

#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "core/mapper.hpp"
#include "sim/noise_model.hpp"

namespace vaq::partition
{

/** One mapped copy plus its reliability/timing numbers. */
struct CopyReport
{
    core::MappedCircuit mapped;
    /** Physical qubits the copy occupies. */
    std::vector<topology::PhysQubit> region;
    double pst = 0.0;        ///< analytic PST of the copy
    double durationNs = 0.0; ///< trial latency (schedule makespan)
};

/** Result of the one-vs-two copies comparison. */
struct PartitionReport
{
    CopyReport single;           ///< one strong copy
    std::vector<CopyReport> dual; ///< the best two-copy split
    /** STPT in successful trials per microsecond. */
    double singleStpt = 0.0;
    double dualStpt = 0.0;

    /** True when the single strong copy wins on STPT. */
    bool singleWins() const { return singleStpt > dualStpt; }
};

/** Search knobs. */
struct PartitionOptions
{
    /**
     * Number of top-scoring candidate regions (ranked by induced
     * link strength) fully evaluated for the two-copy split. The
     * paper "explores all possible partitions"; on IBM-Q20 the
     * candidate ranking makes that tractable without changing the
     * winner in practice.
     */
    std::size_t candidateRegions = 48;
    sim::CoherenceMode coherence = sim::CoherenceMode::PerOp;
};

/**
 * Compare running one copy on the strongest region against the best
 * two-copy partition, compiling every copy with `mapper`.
 *
 * @throws VaqError when the machine cannot hold two copies.
 */
PartitionReport comparePartitioning(
    const circuit::Circuit &logical,
    const topology::CouplingGraph &graph,
    const calibration::Snapshot &snapshot,
    const core::Mapper &mapper,
    const PartitionOptions &options = {});

} // namespace vaq::partition

#endif // VAQ_PARTITION_PARTITION_HPP
