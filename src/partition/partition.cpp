#include "partition/partition.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "graph/subgraph.hpp"
#include "graph/weighted_graph.hpp"
#include "sim/fault_sim.hpp"
#include "sim/schedule.hpp"

namespace vaq::partition
{

namespace
{

/** Strength graph (success-probability weights) of the machine. */
graph::WeightedGraph
strengthGraph(const topology::CouplingGraph &graph,
              const calibration::Snapshot &snapshot)
{
    std::vector<graph::WeightedEdge> edges;
    edges.reserve(graph.linkCount());
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const topology::Link &link = graph.links()[l];
        edges.push_back(graph::WeightedEdge{
            link.a, link.b, 1.0 - snapshot.linkError(l)});
    }
    return graph::WeightedGraph(graph.numQubits(), edges);
}

/** Evaluate one mapped copy: analytic PST + trial latency. */
CopyReport
makeReport(core::MappedCircuit mapped,
           std::vector<topology::PhysQubit> region,
           const topology::CouplingGraph &graph,
           const calibration::Snapshot &snapshot,
           sim::CoherenceMode coherence)
{
    const sim::NoiseModel model(graph, snapshot, coherence);
    CopyReport report{std::move(mapped), std::move(region), 0.0,
                      0.0};
    report.pst = sim::analyticPst(report.mapped.physical, model);
    report.durationNs =
        sim::scheduleCircuit(report.mapped.physical, model)
            .durationNs;
    require(report.durationNs > 0.0, "copy has empty schedule");
    return report;
}

/** STPT in successful trials per microsecond. */
double
stptOf(const CopyReport &copy)
{
    return copy.pst / copy.durationNs * 1000.0;
}

} // namespace

PartitionReport
comparePartitioning(const circuit::Circuit &logical,
                    const topology::CouplingGraph &graph,
                    const calibration::Snapshot &snapshot,
                    const core::Mapper &mapper,
                    const PartitionOptions &options)
{
    const auto k = static_cast<std::size_t>(logical.numQubits());
    require(2 * k <= static_cast<std::size_t>(graph.numQubits()),
            "machine cannot hold two copies of the program");

    // --- One strong copy: the mapper sees the whole machine. ---
    // (Region-restricted candidates are also considered below; the
    // single copy is free to pick the strongest subset of qubits,
    // which is the entire point of Section 8.1.)
    CopyReport single = makeReport(
        mapper.map(logical, graph, snapshot), {}, graph, snapshot,
        options.coherence);
    for (int q = 0; q < logical.numQubits(); ++q)
        single.region.push_back(single.mapped.initial.phys(q));
    std::sort(single.region.begin(), single.region.end());

    // --- Best two-copy split. ---
    const graph::WeightedGraph strength =
        strengthGraph(graph, snapshot);
    const auto candidates = graph::topConnectedSubgraphs(
        strength, k, options.candidateRegions,
        graph::SubgraphScore::InducedWeight);

    PartitionReport report{std::move(single), {}, 0.0, 0.0};
    report.singleStpt = stptOf(report.single);

    double bestDual = -1.0;
    for (const std::vector<int> &regionA : candidates) {
        // Find the strongest connected k-region in the complement.
        std::vector<bool> taken(
            static_cast<std::size_t>(graph.numQubits()), false);
        for (int p : regionA)
            taken[static_cast<std::size_t>(p)] = true;
        std::vector<int> complement;
        for (int p = 0; p < graph.numQubits(); ++p) {
            if (!taken[static_cast<std::size_t>(p)])
                complement.push_back(p);
        }

        std::vector<int> regionB;
        try {
            const topology::CouplingGraph subB =
                graph.inducedSubgraph(complement);
            // Strength graph of the complement, in local ids.
            std::vector<graph::WeightedEdge> subEdges;
            for (std::size_t l = 0; l < subB.linkCount(); ++l) {
                const topology::Link &link = subB.links()[l];
                subEdges.push_back(graph::WeightedEdge{
                    link.a, link.b,
                    1.0 - snapshot.linkError(
                              graph,
                              complement[static_cast<std::size_t>(
                                  link.a)],
                              complement[static_cast<std::size_t>(
                                  link.b)])});
            }
            const graph::WeightedGraph subStrength(
                subB.numQubits(), subEdges);
            const std::vector<int> local =
                graph::bestConnectedSubgraph(
                    subStrength, k,
                    graph::SubgraphScore::InducedWeight);
            for (int p : local)
                regionB.push_back(
                    complement[static_cast<std::size_t>(p)]);
        } catch (const VaqError &) {
            continue; // complement cannot host a connected copy
        }

        CopyReport copyA = makeReport(
            mapper.mapInRegion(logical, graph, snapshot, regionA),
            regionA, graph, snapshot, options.coherence);
        CopyReport copyB = makeReport(
            mapper.mapInRegion(logical, graph, snapshot, regionB),
            regionB, graph, snapshot, options.coherence);

        // Any region good enough for a dual copy is also a valid
        // single-copy placement; keep the best seen.
        for (const CopyReport *copy : {&copyA, &copyB}) {
            if (copy->pst > report.single.pst)
                report.single = *copy;
        }

        const double dual = stptOf(copyA) + stptOf(copyB);
        if (dual > bestDual) {
            bestDual = dual;
            report.dual.clear();
            report.dual.push_back(std::move(copyA));
            report.dual.push_back(std::move(copyB));
        }
    }

    require(!report.dual.empty(),
            "no feasible two-copy partition found");
    report.singleStpt = stptOf(report.single);
    report.dualStpt = bestDual;
    return report;
}

} // namespace vaq::partition
