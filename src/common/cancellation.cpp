#include "common/cancellation.hpp"

#include <sstream>

namespace vaq
{

namespace
{
/** The installing scope owns the token; workers only read it. */
thread_local const CancellationToken *t_active = nullptr;
} // namespace

CancellationToken
CancellationToken::withDeadline(double budget_ms)
{
    require(budget_ms > 0.0, "deadline budget must be positive");
    CancellationToken token;
    token._deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(budget_ms));
    token._budgetMs = budget_ms;
    token._active = true;
    return token;
}

void
CancellationToken::checkpoint(const char *where) const
{
    if (!expired())
        return;
    std::ostringstream oss;
    oss << "deadline of " << _budgetMs << " ms exceeded in "
        << where;
    throw TimeoutError(oss.str(), _budgetMs);
}

CancellationScope::CancellationScope(const CancellationToken &token)
    : _previous(t_active)
{
    t_active = token.active() ? &token : nullptr;
}

CancellationScope::~CancellationScope()
{
    t_active = _previous;
}

const CancellationToken *
activeCancellation()
{
    return t_active;
}

} // namespace vaq
