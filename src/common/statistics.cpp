#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vaq
{

void
RunningStats::add(double x)
{
    if (_count == 0) {
        _min = x;
        _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    ++_count;
    const double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(_count);
    const double nb = static_cast<double>(other._count);
    const double delta = other._mean - _mean;
    const double total = na + nb;
    _mean += delta * nb / total;
    _m2 += other._m2 + delta * delta * na * nb / total;
    _count += other._count;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

double
RunningStats::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    require(_count > 0, "RunningStats::min on empty accumulator");
    return _min;
}

double
RunningStats::max() const
{
    require(_count > 0, "RunningStats::max on empty accumulator");
    return _max;
}

double
mean(const std::vector<double> &xs)
{
    require(!xs.empty(), "mean of empty vector");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    RunningStats rs;
    for (double x : xs)
        rs.add(x);
    return rs.stddev();
}

double
geomean(const std::vector<double> &xs)
{
    require(!xs.empty(), "geomean of empty vector");
    double logSum = 0.0;
    for (double x : xs) {
        require(x > 0.0, "geomean requires strictly positive values");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    require(!xs.empty(), "percentile of empty vector");
    require(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
coefficientOfVariation(const std::vector<double> &xs)
{
    const double m = mean(xs);
    require(m != 0.0, "coefficient of variation undefined for mean 0");
    return stddev(xs) / m;
}

} // namespace vaq
