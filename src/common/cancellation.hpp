/**
 * @file
 * Cooperative cancellation with per-attempt deadlines.
 *
 * The batch compiler bounds every compile attempt with a deadline so
 * one pathological job cannot stall a whole batch. Compilation is a
 * deep call tree (mapper -> allocator -> router -> A*) whose hot
 * loops predate cancellation, so instead of threading a token
 * through every signature, an attempt installs its token in a
 * thread-local slot (CancellationScope, same pattern as
 * core::PathCacheScope) and the loops call checkCancellation() —
 * one thread-local pointer load when no token is installed, one
 * steady_clock read when one is. On expiry the checkpoint throws
 * TimeoutError, which unwinds the attempt cleanly; no state is
 * shared with other jobs, so a timed-out attempt leaves the rest of
 * the batch untouched.
 */
#ifndef VAQ_COMMON_CANCELLATION_HPP
#define VAQ_COMMON_CANCELLATION_HPP

#include <chrono>

#include "common/error.hpp"

namespace vaq
{

/**
 * A deadline a worker checks voluntarily. Default-constructed
 * tokens are inert (never expire), so call sites need no special
 * "no deadline" path.
 */
class CancellationToken
{
  public:
    /** Inert token: active() is false, checkpoints are free. */
    CancellationToken() = default;

    /** Token expiring `budget_ms` milliseconds from now. */
    static CancellationToken withDeadline(double budget_ms);

    /** True when this token carries a deadline. */
    bool active() const { return _active; }

    /** The budget this token was created with (0 when inert). */
    double budgetMs() const { return _budgetMs; }

    /** True when the deadline has passed (inert tokens: never). */
    bool expired() const
    {
        return _active &&
               std::chrono::steady_clock::now() >= _deadline;
    }

    /**
     * Throw TimeoutError when expired; `where` names the loop that
     * noticed, for the error message.
     */
    void checkpoint(const char *where) const;

  private:
    std::chrono::steady_clock::time_point _deadline{};
    double _budgetMs = 0.0;
    bool _active = false;
};

/**
 * RAII install of a token as the calling thread's active one.
 * Scopes nest: the previous token is restored on destruction.
 * Thread-local, so concurrent batch workers with different
 * deadlines never observe each other's token.
 */
class CancellationScope
{
  public:
    explicit CancellationScope(const CancellationToken &token);
    /** The scope stores a pointer, so a temporary token would
     *  dangle the moment the declaration ends. */
    explicit CancellationScope(CancellationToken &&) = delete;
    ~CancellationScope();

    CancellationScope(const CancellationScope &) = delete;
    CancellationScope &operator=(const CancellationScope &) = delete;

  private:
    const CancellationToken *_previous;
};

/** The calling thread's active token, or nullptr. */
const CancellationToken *activeCancellation();

/**
 * Hot-loop checkpoint: throws TimeoutError when the thread's active
 * token (if any) has expired. One thread-local load when no
 * deadline is installed.
 */
inline void
checkCancellation(const char *where)
{
    if (const CancellationToken *token = activeCancellation())
        token->checkpoint(where);
}

} // namespace vaq

#endif // VAQ_COMMON_CANCELLATION_HPP
