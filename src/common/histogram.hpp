/**
 * @file
 * Fixed-bin histogram used to regenerate the distribution figures
 * (Figs. 5-7 of the paper) as textual tables and ASCII plots.
 */
#ifndef VAQ_COMMON_HISTOGRAM_HPP
#define VAQ_COMMON_HISTOGRAM_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace vaq
{

/**
 * Equal-width histogram over [lo, hi) with a configurable number of
 * bins. Out-of-range samples are clamped into the first/last bin so
 * the tails of synthetic distributions remain visible.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin (must exceed lo).
     * @param bins Number of bins (must be >= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Insert a sample. */
    void add(double x);

    /** Insert a batch of samples. */
    void add(const std::vector<double> &xs);

    /** Number of bins. */
    std::size_t binCount() const { return _counts.size(); }

    /** Total samples inserted. */
    std::size_t totalCount() const { return _total; }

    /** Raw count in bin i. */
    std::size_t count(std::size_t i) const;

    /** Fraction of samples in bin i (0 when empty). */
    double frequency(std::size_t i) const;

    /** Center of bin i. */
    double binCenter(std::size_t i) const;

    /** Width of each bin. */
    double binWidth() const { return _width; }

    /**
     * Render a two-column "center frequency" table followed by an
     * ASCII bar chart, suitable for dumping the paper's distribution
     * figures to stdout.
     * @param label Axis label printed in the header.
     * @param barWidth Maximum bar width in characters.
     */
    std::string render(const std::string &label,
                       std::size_t barWidth = 50) const;

  private:
    double _lo;
    double _width;
    std::vector<std::size_t> _counts;
    std::size_t _total = 0;
};

} // namespace vaq

#endif // VAQ_COMMON_HISTOGRAM_HPP
