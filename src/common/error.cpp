#include "common/error.hpp"

#include <sstream>

namespace vaq::detail
{

void
assertFailed(const char *expr, const char *file, int line,
             const std::string &msg)
{
    std::ostringstream oss;
    oss << "internal assertion failed: (" << expr << ") at " << file
        << ":" << line;
    if (!msg.empty())
        oss << " -- " << msg;
    throw VaqInternalError(oss.str());
}

} // namespace vaq::detail
