#include "common/error.hpp"

#include <sstream>

namespace vaq
{

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::Usage: return "usage";
      case ErrorCategory::Calibration: return "calibration";
      case ErrorCategory::Routing: return "routing";
      case ErrorCategory::Compile: return "compile";
      case ErrorCategory::Timeout: return "timeout";
      case ErrorCategory::Internal: return "internal";
    }
    return "unknown";
}

VaqError &
VaqError::addContext(const std::string &frame)
{
    _context.push_back(frame);
    // Compose eagerly so what() stays noexcept.
    std::ostringstream oss;
    oss << _message << " [";
    for (std::size_t i = 0; i < _context.size(); ++i)
        oss << (i ? "; " : "") << _context[i];
    oss << "]";
    _composed = oss.str();
    return *this;
}

const char *
VaqError::what() const noexcept
{
    return _context.empty() ? _message.c_str() : _composed.c_str();
}

namespace
{

std::string
withQubitLink(const std::string &message, const char *noun_a,
              long a, const char *noun_b, long b)
{
    if (a < 0 && b < 0)
        return message;
    std::ostringstream oss;
    oss << message << " (";
    if (a >= 0)
        oss << noun_a << " " << a;
    if (b >= 0)
        oss << (a >= 0 ? ", " : "") << noun_b << " " << b;
    oss << ")";
    return oss.str();
}

} // namespace

CalibrationError::CalibrationError(const std::string &what_arg,
                                   int qubit, long link)
    : VaqError(withQubitLink(what_arg, "qubit", qubit, "link", link),
               ErrorCategory::Calibration),
      _qubit(qubit),
      _link(link)
{
}

RoutingError::RoutingError(const std::string &what_arg, int a, int b)
    : VaqError(withQubitLink(what_arg, "qubit", a, "qubit", b),
               ErrorCategory::Routing),
      _a(a),
      _b(b)
{
}

ErrorCategory
categorize(const std::exception &error)
{
    if (const auto *vaq = dynamic_cast<const VaqError *>(&error))
        return vaq->category();
    return ErrorCategory::Internal;
}

namespace detail
{

void
assertFailed(const char *expr, const char *file, int line,
             const std::string &msg)
{
    std::ostringstream oss;
    oss << "internal assertion failed: (" << expr << ") at " << file
        << ":" << line;
    if (!msg.empty())
        oss << " -- " << msg;
    throw VaqInternalError(oss.str());
}

} // namespace detail

} // namespace vaq
