/**
 * @file
 * Streaming and batch descriptive statistics.
 *
 * Used throughout the evaluation infrastructure: characterization
 * summaries (Section 3 of the paper), PST aggregation, and the
 * geometric means reported in Table 3.
 */
#ifndef VAQ_COMMON_STATISTICS_HPP
#define VAQ_COMMON_STATISTICS_HPP

#include <cstddef>
#include <vector>

namespace vaq
{

/**
 * Single-pass running statistics using Welford's algorithm.
 *
 * Numerically stable for long Monte-Carlo streams (millions of
 * samples) where the naive sum-of-squares formulation loses
 * precision.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Fold every sample of another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of samples observed so far. */
    std::size_t count() const { return _count; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return _mean; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen (throws VaqError when empty). */
    double min() const;

    /** Largest sample seen (throws VaqError when empty). */
    double max() const;

  private:
    std::size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Arithmetic mean of a batch (throws VaqError when empty). */
double mean(const std::vector<double> &xs);

/** Unbiased sample standard deviation (0 for fewer than 2 samples). */
double stddev(const std::vector<double> &xs);

/**
 * Geometric mean of strictly positive values (throws VaqError when
 * empty or when any value is <= 0). Matches the "GeoMean" row of the
 * paper's Table 3.
 */
double geomean(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile, p in [0, 100].
 * Throws VaqError when the batch is empty or p is out of range.
 */
double percentile(std::vector<double> xs, double p);

/** Coefficient of variation: stddev / mean (Table 2's "Covariation"). */
double coefficientOfVariation(const std::vector<double> &xs);

} // namespace vaq

#endif // VAQ_COMMON_STATISTICS_HPP
