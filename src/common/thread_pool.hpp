/**
 * @file
 * Reusable fixed-size worker pool for data-parallel loops.
 *
 * Built for the Monte-Carlo trial engine (sim/parallel_fault_sim):
 * many independent, similarly-sized work items, submitted in bursts,
 * with the submitting thread blocking until the burst completes.
 * Workers are spawned once and reused across bursts so the per-call
 * cost is queue traffic only, not thread creation.
 */
#ifndef VAQ_COMMON_THREAD_POOL_HPP
#define VAQ_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vaq
{

/**
 * Fixed-size pool of worker threads executing queued tasks.
 *
 * Thread-safe for one submitter at a time: parallelFor() blocks the
 * caller until every task of that call has finished, so the pool is
 * idle between calls and can be shared sequentially.
 */
class ThreadPool
{
  public:
    /**
     * Spawn `threads` workers; 0 means one per hardware thread
     * (at least one).
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t threadCount() const { return _workers.size(); }

    /**
     * Run body(0) .. body(count-1) across the pool and block until
     * all calls have returned. The lowest-index exception is
     * rethrown on the calling thread (the remaining indices still
     * run). Which worker executes which index is unspecified;
     * callers needing determinism must make the bodies independent
     * and index their outputs.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Fault-isolating variant: every index runs to completion and
     * nothing is rethrown. Returns one slot per index, null where
     * the body returned normally and the captured exception where
     * it threw, so the caller can attribute each failure to its
     * index instead of losing all but the first error. The batch
     * compiler builds its per-job failure containment on this.
     */
    std::vector<std::exception_ptr>
    parallelForAll(std::size_t count,
                   const std::function<void(std::size_t)> &body);

    /** Worker count used for `threads == 0`. */
    static std::size_t defaultThreadCount();

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::deque<std::function<void()>> _tasks;
    std::mutex _mutex;
    std::condition_variable _wake;
    bool _stopping = false;
};

} // namespace vaq

#endif // VAQ_COMMON_THREAD_POOL_HPP
