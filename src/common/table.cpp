#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace vaq
{

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    require(!_headers.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    require(row.size() == _headers.size(),
            "table row arity mismatch");
    _rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(_headers.size(), 0);
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << row[c];
            if (c + 1 < row.size()) {
                oss << std::string(widths[c] - row[c].size() + 2,
                                   ' ');
            }
        }
        oss << "\n";
    };

    emitRow(_headers);
    std::size_t ruleLen = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        ruleLen += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    oss << std::string(ruleLen, '-') << "\n";
    for (const auto &row : _rows)
        emitRow(row);
    return oss.str();
}

std::string
TextTable::renderCsv() const
{
    auto quote = [](const std::string &field) {
        if (field.find_first_of(",\"\n") == std::string::npos)
            return field;
        std::string out = "\"";
        for (char ch : field) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << quote(row[c]);
            if (c + 1 < row.size())
                oss << ",";
        }
        oss << "\n";
    };
    emitRow(_headers);
    for (const auto &row : _rows)
        emitRow(row);
    return oss.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    require(static_cast<bool>(out), "cannot open for write: " + path);
    out << text;
    require(static_cast<bool>(out), "write failed: " + path);
}

} // namespace vaq
