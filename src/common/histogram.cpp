#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace vaq
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : _lo(lo),
      _width((hi - lo) / static_cast<double>(bins)),
      _counts(bins, 0)
{
    require(hi > lo, "histogram upper edge must exceed lower edge");
    require(bins >= 1, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    auto bin = static_cast<long>(std::floor((x - _lo) / _width));
    bin = std::clamp(bin, 0L, static_cast<long>(_counts.size()) - 1L);
    ++_counts[static_cast<std::size_t>(bin)];
    ++_total;
}

void
Histogram::add(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

std::size_t
Histogram::count(std::size_t i) const
{
    require(i < _counts.size(), "histogram bin index out of range");
    return _counts[i];
}

double
Histogram::frequency(std::size_t i) const
{
    if (_total == 0)
        return 0.0;
    return static_cast<double>(count(i)) /
           static_cast<double>(_total);
}

double
Histogram::binCenter(std::size_t i) const
{
    require(i < _counts.size(), "histogram bin index out of range");
    return _lo + (static_cast<double>(i) + 0.5) * _width;
}

std::string
Histogram::render(const std::string &label, std::size_t barWidth) const
{
    std::size_t peak = 0;
    for (std::size_t c : _counts)
        peak = std::max(peak, c);

    std::ostringstream oss;
    oss << label << " (" << _total << " samples)\n";
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        const double freq = frequency(i);
        std::size_t bar = 0;
        if (peak > 0) {
            bar = static_cast<std::size_t>(std::llround(
                static_cast<double>(_counts[i]) /
                static_cast<double>(peak) *
                static_cast<double>(barWidth)));
        }
        oss << formatDouble(binCenter(i), 4) << "  "
            << formatDouble(freq, 5) << "  "
            << std::string(bar, '#') << "\n";
    }
    return oss.str();
}

} // namespace vaq
