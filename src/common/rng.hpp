/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * Every stochastic component in libvaq (fault injection, synthetic
 * calibration data, randomized mappers) draws from an explicitly
 * seeded Rng instance so that experiments are exactly reproducible.
 * The engine is xoshiro256** (Blackman & Vigna), which is fast, has a
 * 2^256-1 period, and passes BigCrush; seeds are expanded with
 * SplitMix64 as its authors recommend.
 */
#ifndef VAQ_COMMON_RNG_HPP
#define VAQ_COMMON_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace vaq
{

/**
 * Seedable xoshiro256** engine with convenience distributions.
 *
 * Satisfies the C++ UniformRandomBitGenerator requirements so it can
 * also be plugged into <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit word. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller (cached spare). */
    double gauss();

    /** Normal with the given mean and standard deviation. */
    double gauss(double mean, double stddev);

    /**
     * Normal draw rejected-and-retried until it lands in [lo, hi].
     * Falls back to clamping after 256 rejections so pathological
     * bounds cannot hang the caller.
     */
    double truncatedGauss(double mean, double stddev, double lo,
                          double hi);

    /** Log-normal: exp of N(mu, sigma) in log space. */
    double logNormal(double mu, double sigma);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(static_cast<std::uint64_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick a uniformly random element (container must be non-empty). */
    template <typename T>
    const T &
    choice(const std::vector<T> &v)
    {
        return v[uniformInt(static_cast<std::uint64_t>(v.size()))];
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

  private:
    std::uint64_t nextRaw();

    std::array<std::uint64_t, 4> _state;
    double _spare = 0.0;
    bool _hasSpare = false;
};

} // namespace vaq

#endif // VAQ_COMMON_RNG_HPP
