/**
 * @file
 * Error handling primitives shared by every libvaq module.
 *
 * Two failure classes are distinguished, following the
 * fatal-versus-panic convention used by architecture simulators:
 *
 *  - VaqError: the caller handed us something invalid (bad circuit,
 *    unknown qubit, malformed calibration file). Thrown, recoverable.
 *  - VAQ_ASSERT: an internal invariant was violated; indicates a bug
 *    in libvaq itself. Also thrown (as VaqInternalError) so tests can
 *    observe it, but callers should treat it as non-recoverable.
 */
#ifndef VAQ_COMMON_ERROR_HPP
#define VAQ_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace vaq
{

/** Exception for user-caused errors (invalid inputs, bad config). */
class VaqError : public std::runtime_error
{
  public:
    explicit VaqError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Exception for violated internal invariants (libvaq bugs). */
class VaqInternalError : public std::logic_error
{
  public:
    explicit VaqInternalError(const std::string &what_arg)
        : std::logic_error(what_arg)
    {}
};

namespace detail
{
/** Build the assertion message and throw; out-of-line to keep the
 *  macro cheap at every call site. */
[[noreturn]] void assertFailed(const char *expr, const char *file,
                               int line, const std::string &msg);
} // namespace detail

/**
 * Throw VaqError with the given message when `cond` is false.
 * Use for validating caller-supplied arguments.
 */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        throw VaqError(msg);
}

} // namespace vaq

/**
 * Internal invariant check. Active in all build types: the library is
 * a research artifact where silent corruption is worse than the cost
 * of a predictable branch.
 */
#define VAQ_ASSERT(expr, msg)                                            \
    do {                                                                 \
        if (!(expr))                                                     \
            ::vaq::detail::assertFailed(#expr, __FILE__, __LINE__,       \
                                        (msg));                          \
    } while (false)

#endif // VAQ_COMMON_ERROR_HPP
