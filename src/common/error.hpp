/**
 * @file
 * Error handling primitives shared by every libvaq module.
 *
 * Two failure classes are distinguished, following the
 * fatal-versus-panic convention used by architecture simulators:
 *
 *  - VaqError: the caller handed us something invalid (bad circuit,
 *    unknown qubit, malformed calibration file). Thrown, recoverable.
 *  - VAQ_ASSERT: an internal invariant was violated; indicates a bug
 *    in libvaq itself. Also thrown (as VaqInternalError) so tests can
 *    observe it, but callers should treat it as non-recoverable.
 *
 * On top of the base VaqError sits a small structured taxonomy used
 * by the failure-containment layer (batch compiler, calibration
 * quarantine, the vaqc exit-code map). Every taxonomy error carries
 *
 *  - a category (ErrorCategory) that callers dispatch on without
 *    string matching, and
 *  - a context chain: outer layers append "while ..." frames as the
 *    error unwinds (job index, qubit, link, file/line), so the final
 *    what() reads innermost-cause-first with the full path attached.
 */
#ifndef VAQ_COMMON_ERROR_HPP
#define VAQ_COMMON_ERROR_HPP

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace vaq
{

/**
 * Coarse failure classification, stable across layers. Used for
 * retry decisions (usage/calibration failures are deterministic and
 * never retried; routing/compile/timeout failures may succeed under
 * a weaker policy) and for the vaqc exit-code map.
 */
enum class ErrorCategory
{
    Usage,       ///< invalid caller input / bad configuration
    Calibration, ///< unusable characterization data
    Routing,     ///< the router could not produce a legal result
    Compile,     ///< any other compilation-pipeline failure
    Timeout,     ///< a cooperative deadline expired
    Internal,    ///< libvaq invariant violation (a bug)
};

/** Stable lowercase name for a category ("usage", "timeout", ...). */
const char *errorCategoryName(ErrorCategory category);

/** Exception for user-caused errors (invalid inputs, bad config). */
class VaqError : public std::runtime_error
{
  public:
    explicit VaqError(const std::string &what_arg,
                      ErrorCategory category = ErrorCategory::Usage)
        : std::runtime_error(what_arg),
          _message(what_arg),
          _category(category)
    {}

    /** Structured failure class for dispatch without string tests. */
    ErrorCategory category() const { return _category; }

    /**
     * Append one context frame ("compiling batch job 17",
     * "cal.csv:42") as the error travels up the stack. Frames
     * compose into what() innermost-first. Returns *this so a catch
     * site can `throw` after chaining.
     */
    VaqError &addContext(const std::string &frame);

    /** All frames added so far, innermost first. */
    const std::vector<std::string> &contextChain() const
    {
        return _context;
    }

    /** The original message without any context frames. */
    const std::string &message() const { return _message; }

    /** Message plus " [frame; frame; ...]" when context exists. */
    const char *what() const noexcept override;

  private:
    std::string _message;
    std::string _composed; ///< kept current by addContext
    std::vector<std::string> _context;
    ErrorCategory _category;
};

/** Unusable calibration data (non-finite, dead link, bad CSV). */
class CalibrationError : public VaqError
{
  public:
    /** qubit / link < 0 mean "not tied to one qubit/link". */
    explicit CalibrationError(const std::string &what_arg,
                              int qubit = -1, long link = -1);

    /** Offending qubit id, or -1. */
    int qubit() const { return _qubit; }

    /** Offending link index, or -1. */
    long link() const { return _link; }

  private:
    int _qubit;
    long _link;
};

/** The routing pass could not produce a legal physical circuit. */
class RoutingError : public VaqError
{
  public:
    /** Negative qubit ids mean "not tied to one pair". */
    explicit RoutingError(const std::string &what_arg, int a = -1,
                          int b = -1);

    int qubitA() const { return _a; }
    int qubitB() const { return _b; }

  private:
    int _a;
    int _b;
};

/** Compilation-pipeline failure outside routing proper. */
class CompileError : public VaqError
{
  public:
    explicit CompileError(const std::string &what_arg)
        : VaqError(what_arg, ErrorCategory::Compile)
    {}
};

/** A cooperative cancellation deadline expired. */
class TimeoutError : public VaqError
{
  public:
    /** @param budget_ms The deadline that expired (<= 0 unknown). */
    explicit TimeoutError(const std::string &what_arg,
                          double budget_ms = 0.0)
        : VaqError(what_arg, ErrorCategory::Timeout),
          _budgetMs(budget_ms)
    {}

    /** The per-attempt budget in milliseconds (0 when unknown). */
    double budgetMs() const { return _budgetMs; }

  private:
    double _budgetMs;
};

/** Exception for violated internal invariants (libvaq bugs). */
class VaqInternalError : public std::logic_error
{
  public:
    explicit VaqInternalError(const std::string &what_arg)
        : std::logic_error(what_arg)
    {}
};

/**
 * Category of an arbitrary in-flight exception: taxonomy errors
 * report their own category, VaqInternalError and everything unknown
 * classify as Internal.
 */
ErrorCategory categorize(const std::exception &error);

namespace detail
{
/** Build the assertion message and throw; out-of-line to keep the
 *  macro cheap at every call site. */
[[noreturn]] void assertFailed(const char *expr, const char *file,
                               int line, const std::string &msg);
} // namespace detail

/**
 * Throw VaqError with the given message when `cond` is false.
 * Use for validating caller-supplied arguments.
 */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        throw VaqError(msg);
}

} // namespace vaq

/**
 * Internal invariant check. Active in all build types: the library is
 * a research artifact where silent corruption is worse than the cost
 * of a predictable branch.
 */
#define VAQ_ASSERT(expr, msg)                                            \
    do {                                                                 \
        if (!(expr))                                                     \
            ::vaq::detail::assertFailed(#expr, __FILE__, __LINE__,       \
                                        (msg));                          \
    } while (false)

#endif // VAQ_COMMON_ERROR_HPP
