/**
 * @file
 * Small string utilities shared by the QASM parser, the CSV loaders
 * and the table/report printers.
 */
#ifndef VAQ_COMMON_STRINGS_HPP
#define VAQ_COMMON_STRINGS_HPP

#include <string>
#include <string_view>
#include <vector>

namespace vaq
{

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** True when `s` starts with `prefix`. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Fixed-precision decimal rendering (no scientific notation). */
std::string formatDouble(double x, int precision);

/**
 * Parse a double, throwing VaqError (with the offending text in the
 * message) instead of silently returning 0 like atof.
 */
double parseDouble(std::string_view s);

/** Parse a non-negative integer with the same error behaviour. */
std::size_t parseSize(std::string_view s);

} // namespace vaq

#endif // VAQ_COMMON_STRINGS_HPP
