/**
 * @file
 * FNV-1a content hashing helpers.
 *
 * Used to derive cache keys from calibration snapshots, machine
 * topologies and cost tables (see graph/reliability_matrix.hpp):
 * equal content produces equal keys across the process, and the
 * helpers compose so multi-part keys stay consistent everywhere.
 */
#ifndef VAQ_COMMON_HASHING_HPP
#define VAQ_COMMON_HASHING_HPP

#include <bit>
#include <cstdint>

namespace vaq
{

/** FNV-1a offset basis (seed value for hashCombine chains). */
inline constexpr std::uint64_t kHashSeed = 1469598103934665603ULL;

/** FNV-1a step over one 64-bit word. */
inline std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t word)
{
    h ^= word;
    h *= 1099511628211ULL;
    return h;
}

/**
 * FNV-1a step over a double's bit pattern.
 *
 * Signed zeros are normalized first: -0.0 and +0.0 compare equal,
 * so they must hash equal too, or two calibration snapshots with
 * identical values would miss every content-hash cache (and, for
 * the persistent artifact store, duplicate on-disk records). NaNs
 * keep their raw bit pattern — they never compare equal anyway.
 */
inline std::uint64_t
hashCombine(std::uint64_t h, double value)
{
    if (value == 0.0)
        value = 0.0; // collapse -0.0 onto +0.0
    return hashCombine(h, std::bit_cast<std::uint64_t>(value));
}

} // namespace vaq

#endif // VAQ_COMMON_HASHING_HPP
