#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace vaq
{

std::string
trim(std::string_view s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
formatDouble(double x, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << x;
    return oss.str();
}

double
parseDouble(std::string_view s)
{
    const std::string text = trim(s);
    require(!text.empty(), "cannot parse empty string as double");
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    require(end == text.c_str() + text.size(),
            "malformed double: '" + text + "'");
    return value;
}

std::size_t
parseSize(std::string_view s)
{
    const std::string text = trim(s);
    require(!text.empty(), "cannot parse empty string as integer");
    std::size_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        text.data(), text.data() + text.size(), value);
    require(ec == std::errc() && ptr == text.data() + text.size(),
            "malformed integer: '" + text + "'");
    return value;
}

} // namespace vaq
