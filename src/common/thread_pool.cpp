#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace vaq
{

std::size_t
ThreadPool::defaultThreadCount()
{
    return std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t count =
        threads == 0 ? defaultThreadCount() : threads;
    _workers.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _wake.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock, [this] {
                return _stopping || !_tasks.empty();
            });
            if (_tasks.empty())
                return; // stopping and fully drained
            task = std::move(_tasks.front());
            _tasks.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(
    std::size_t count,
    const std::function<void(std::size_t)> &body)
{
    const std::vector<std::exception_ptr> errors =
        parallelForAll(count, body);
    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

std::vector<std::exception_ptr>
ThreadPool::parallelForAll(
    std::size_t count,
    const std::function<void(std::size_t)> &body)
{
    std::vector<std::exception_ptr> errors(count);
    if (count == 0)
        return errors;

    // Per-call completion state, shared with the queued tasks. The
    // caller outlives every task (it blocks on `done` below), so
    // reference capture is safe. Error slots are per-index, so the
    // tasks write them without the burst lock.
    struct Burst
    {
        std::mutex mutex;
        std::condition_variable done;
        std::size_t remaining;
    } burst;
    burst.remaining = count;

    {
        std::lock_guard<std::mutex> lock(_mutex);
        for (std::size_t i = 0; i < count; ++i) {
            _tasks.emplace_back([&burst, &body, &errors, i] {
                try {
                    body(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                std::lock_guard<std::mutex> inner(burst.mutex);
                if (--burst.remaining == 0)
                    burst.done.notify_all();
            });
        }
    }
    _wake.notify_all();

    std::unique_lock<std::mutex> lock(burst.mutex);
    burst.done.wait(lock, [&burst] { return burst.remaining == 0; });
    return errors;
}

} // namespace vaq
