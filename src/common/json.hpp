/**
 * @file
 * Minimal JSON document model shared by the service wire format,
 * the CompileRequest/CompileResult serializers and their golden
 * tests.
 *
 * Two properties matter more than feature count:
 *
 *  - Deterministic writing: members serialize in insertion order,
 *    numbers through std::to_chars (shortest round-trip form), so
 *    the same document always produces the same bytes and golden
 *    files stay byte-stable across platforms and rebuilds.
 *  - Total, located parsing: parse() either returns a document or
 *    throws VaqError with "source:line:col:" provenance, never
 *    crashes, and bounds nesting depth (the daemon feeds it
 *    untrusted request bodies). Typed extraction goes through
 *    Cursor, which tracks the field path ("$.policy.mah") so a
 *    type or missing-field error names exactly the offending
 *    field — unknown fields are tolerated and simply never read,
 *    mirroring the artifact store's total-parse discipline.
 */
#ifndef VAQ_COMMON_JSON_HPP
#define VAQ_COMMON_JSON_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vaq::json
{

/** JSON value categories. */
enum class Kind
{
    Null,
    Bool,
    Number,
    String,
    Array,
    Object,
};

/** Stable lowercase name ("null", "object", ...) for messages. */
const char *kindName(Kind kind);

/**
 * One JSON value. Objects preserve member insertion order (that is
 * what makes writing deterministic); set() replaces an existing
 * member in place.
 */
class Value
{
  public:
    /** null */
    Value() = default;

    static Value boolean(bool b);
    static Value number(double x);
    static Value number(std::int64_t n);
    static Value number(std::size_t n);
    static Value string(std::string s);
    static Value array();
    static Value object();

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }

    /// @name Scalar access (callers check kind(); Cursor adds paths)
    /// @{
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    /// @}

    /// @name Array access
    /// @{
    std::size_t size() const { return _items.size(); }
    const Value &item(std::size_t i) const;
    Value &push(Value v);
    const std::vector<Value> &items() const { return _items; }
    /// @}

    /// @name Object access
    /// @{
    /** Member value, or nullptr when absent. */
    const Value *find(const std::string &key) const;
    /** Insert or replace a member (insertion order preserved). */
    Value &set(const std::string &key, Value v);
    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return _members;
    }
    /// @}

  private:
    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<Value> _items;
    std::vector<std::pair<std::string, Value>> _members;
};

/**
 * Parse a JSON document. Throws VaqError (category Usage) with
 * "source:line:col: message" on any malformed input; nesting
 * deeper than 64 levels is rejected.
 */
Value parse(const std::string &text,
            const std::string &source = "<json>");

/** Compact serialization (no whitespace), deterministic. */
std::string write(const Value &value);

/** Two-space indented serialization, deterministic, ends with a
 *  newline (the golden-file format). */
std::string writePretty(const Value &value);

/**
 * Path-tracking reader over a parsed document. Every accessor
 * throws VaqError naming the full field path on a kind mismatch,
 * so "expected number" errors read `$.policy.mah: expected
 * number, got string`. Fields the caller never asks for are
 * ignored — that is the unknown-field tolerance contract.
 */
class Cursor
{
  public:
    explicit Cursor(const Value &value, std::string path = "$")
        : _value(&value), _path(std::move(path))
    {}

    const Value &value() const { return *_value; }
    const std::string &path() const { return _path; }
    Kind kind() const { return _value->kind(); }

    /** Required object member; throws when absent. */
    Cursor at(const std::string &key) const;
    /** Optional object member; nullopt when absent or null. */
    std::optional<Cursor> get(const std::string &key) const;
    /** Array element (bounds-checked). */
    Cursor at(std::size_t index) const;
    /** Array length; throws when not an array. */
    std::size_t arraySize() const;

    bool asBool() const;
    double asNumber() const;
    /** Number checked to be integral and in range. */
    std::int64_t asInt() const;
    const std::string &asString() const;

  private:
    [[noreturn]] void fail(const std::string &expected) const;
    void requireKind(Kind kind, const char *what) const;

    const Value *_value;
    std::string _path;
};

} // namespace vaq::json

#endif // VAQ_COMMON_JSON_HPP
