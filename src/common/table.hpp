/**
 * @file
 * Aligned-column table printer and CSV writer.
 *
 * Every bench binary emits its results through TextTable so the
 * reproduced tables/figures look like the rows the paper reports, and
 * optionally through writeCsv for downstream plotting.
 */
#ifndef VAQ_COMMON_TABLE_HPP
#define VAQ_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace vaq
{

/**
 * A simple text table: a header row plus data rows, rendered with
 * per-column width alignment and a rule under the header.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    std::size_t rowCount() const { return _rows.size(); }

    /** Render with two spaces between columns. */
    std::string render() const;

    /** Render as RFC-4180-ish CSV (fields with commas get quoted). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Write text to a file, throwing VaqError on I/O failure. */
void writeFile(const std::string &path, const std::string &text);

} // namespace vaq

#endif // VAQ_COMMON_TABLE_HPP
