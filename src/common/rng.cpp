#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vaq
{

namespace
{

/** SplitMix64 step, used only for seed expansion. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : _state)
        word = splitMix64(s);
}

Rng::result_type
Rng::operator()()
{
    return nextRaw();
}

std::uint64_t
Rng::nextRaw()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(nextRaw() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    VAQ_ASSERT(lo <= hi, "uniform bounds inverted");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    VAQ_ASSERT(n > 0, "uniformInt(0) is undefined");
    // Lemire-style rejection to kill modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;
    for (;;) {
        std::uint64_t r = nextRaw();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    VAQ_ASSERT(lo <= hi, "uniformInt bounds inverted");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gauss()
{
    if (_hasSpare) {
        _hasSpare = false;
        return _spare;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    _spare = r * std::sin(theta);
    _hasSpare = true;
    return r * std::cos(theta);
}

double
Rng::gauss(double mean, double stddev)
{
    return mean + stddev * gauss();
}

double
Rng::truncatedGauss(double mean, double stddev, double lo, double hi)
{
    VAQ_ASSERT(lo <= hi, "truncatedGauss bounds inverted");
    for (int attempt = 0; attempt < 256; ++attempt) {
        const double x = gauss(mean, stddev);
        if (x >= lo && x <= hi)
            return x;
    }
    const double x = gauss(mean, stddev);
    return std::min(hi, std::max(lo, x));
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(gauss(mu, sigma));
}

Rng
Rng::split()
{
    return Rng(nextRaw());
}

} // namespace vaq
