#include "common/json.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace vaq::json
{

const char *
kindName(Kind kind)
{
    switch (kind) {
    case Kind::Null:
        return "null";
    case Kind::Bool:
        return "bool";
    case Kind::Number:
        return "number";
    case Kind::String:
        return "string";
    case Kind::Array:
        return "array";
    case Kind::Object:
        return "object";
    }
    return "unknown";
}

Value
Value::boolean(bool b)
{
    Value v;
    v._kind = Kind::Bool;
    v._bool = b;
    return v;
}

Value
Value::number(double x)
{
    require(std::isfinite(x),
            "JSON numbers must be finite (got non-finite value)");
    Value v;
    v._kind = Kind::Number;
    v._number = x;
    return v;
}

Value
Value::number(std::int64_t n)
{
    return number(static_cast<double>(n));
}

Value
Value::number(std::size_t n)
{
    return number(static_cast<double>(n));
}

Value
Value::string(std::string s)
{
    Value v;
    v._kind = Kind::String;
    v._string = std::move(s);
    return v;
}

Value
Value::array()
{
    Value v;
    v._kind = Kind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v._kind = Kind::Object;
    return v;
}

bool
Value::asBool() const
{
    require(_kind == Kind::Bool,
            std::string("JSON value is ") + kindName(_kind) +
                ", not bool");
    return _bool;
}

double
Value::asNumber() const
{
    require(_kind == Kind::Number,
            std::string("JSON value is ") + kindName(_kind) +
                ", not number");
    return _number;
}

const std::string &
Value::asString() const
{
    require(_kind == Kind::String,
            std::string("JSON value is ") + kindName(_kind) +
                ", not string");
    return _string;
}

const Value &
Value::item(std::size_t i) const
{
    require(_kind == Kind::Array, "JSON value is not an array");
    require(i < _items.size(), "JSON array index out of range");
    return _items[i];
}

Value &
Value::push(Value v)
{
    require(_kind == Kind::Array, "JSON value is not an array");
    _items.push_back(std::move(v));
    return _items.back();
}

const Value *
Value::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : _members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

Value &
Value::set(const std::string &key, Value v)
{
    require(_kind == Kind::Object, "JSON value is not an object");
    for (auto &[name, value] : _members) {
        if (name == key) {
            value = std::move(v);
            return value;
        }
    }
    _members.emplace_back(key, std::move(v));
    return _members.back().second;
}

// ---------------------------------------------------------------
// Parser: recursive descent with line/column provenance.
// ---------------------------------------------------------------

namespace
{

constexpr int kMaxDepth = 64;

class Parser
{
  public:
    Parser(const std::string &text, const std::string &source)
        : _text(text), _source(source)
    {}

    Value parse()
    {
        skipWhitespace();
        Value v = parseValue(0);
        skipWhitespace();
        if (_pos != _text.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &message) const
    {
        throw VaqError(_source + ":" + std::to_string(_line) + ":" +
                       std::to_string(_col) + ": " + message);
    }

    bool eof() const { return _pos >= _text.size(); }

    char peek() const
    {
        if (eof())
            fail("unexpected end of input");
        return _text[_pos];
    }

    char advance()
    {
        const char c = peek();
        ++_pos;
        if (c == '\n') {
            ++_line;
            _col = 1;
        } else {
            ++_col;
        }
        return c;
    }

    void expect(char c)
    {
        if (eof() || peek() != c)
            fail(std::string("expected '") + c + "'");
        advance();
    }

    void skipWhitespace()
    {
        while (!eof()) {
            const char c = _text[_pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                advance();
            else
                break;
        }
    }

    void expectLiteral(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (eof() || peek() != *p)
                fail(std::string("invalid literal (expected '") +
                     word + "')");
            advance();
        }
    }

    Value parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting deeper than " +
                 std::to_string(kMaxDepth) + " levels");
        const char c = peek();
        switch (c) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"':
            return Value::string(parseString());
        case 't':
            expectLiteral("true");
            return Value::boolean(true);
        case 'f':
            expectLiteral("false");
            return Value::boolean(false);
        case 'n':
            expectLiteral("null");
            return Value();
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    Value parseObject(int depth)
    {
        expect('{');
        Value v = Value::object();
        skipWhitespace();
        if (!eof() && peek() == '}') {
            advance();
            return v;
        }
        while (true) {
            skipWhitespace();
            if (eof() || peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            skipWhitespace();
            if (v.find(key) != nullptr)
                fail("duplicate object key \"" + key + "\"");
            v.set(key, parseValue(depth + 1));
            skipWhitespace();
            if (eof())
                fail("unterminated object");
            if (peek() == ',') {
                advance();
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value parseArray(int depth)
    {
        expect('[');
        Value v = Value::array();
        skipWhitespace();
        if (!eof() && peek() == ']') {
            advance();
            return v;
        }
        while (true) {
            skipWhitespace();
            v.push(parseValue(depth + 1));
            skipWhitespace();
            if (eof())
                fail("unterminated array");
            if (peek() == ',') {
                advance();
                continue;
            }
            expect(']');
            return v;
        }
    }

    unsigned hexDigit()
    {
        const char c = advance();
        if (c >= '0' && c <= '9')
            return static_cast<unsigned>(c - '0');
        if (c >= 'a' && c <= 'f')
            return static_cast<unsigned>(c - 'a' + 10);
        if (c >= 'A' && c <= 'F')
            return static_cast<unsigned>(c - 'A' + 10);
        fail("invalid \\u escape digit");
    }

    unsigned parseHex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i)
            code = code * 16 + hexDigit();
        return code;
    }

    void appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(
                static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(
                static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(
                static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(
                static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (eof())
                fail("unterminated string");
            const char c = advance();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char escape = advance();
            switch (escape) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                unsigned code = parseHex4();
                if (code >= 0xD800 && code <= 0xDBFF) {
                    // High surrogate: a low surrogate must follow.
                    if (eof() || peek() != '\\')
                        fail("unpaired UTF-16 surrogate");
                    advance();
                    if (eof() || peek() != 'u')
                        fail("unpaired UTF-16 surrogate");
                    advance();
                    const unsigned low = parseHex4();
                    if (low < 0xDC00 || low > 0xDFFF)
                        fail("invalid UTF-16 low surrogate");
                    code = 0x10000 +
                           ((code - 0xD800) << 10) +
                           (low - 0xDC00);
                } else if (code >= 0xDC00 && code <= 0xDFFF) {
                    fail("unpaired UTF-16 surrogate");
                }
                appendUtf8(out, code);
                break;
            }
            default:
                fail(std::string("invalid escape '\\") + escape +
                     "'");
            }
        }
    }

    Value parseNumber()
    {
        const std::size_t start = _pos;
        if (peek() == '-')
            advance();
        if (eof() || peek() < '0' || peek() > '9')
            fail("malformed number");
        while (!eof() && peek() >= '0' && peek() <= '9')
            advance();
        if (!eof() && peek() == '.') {
            advance();
            if (eof() || peek() < '0' || peek() > '9')
                fail("malformed number (missing fraction digits)");
            while (!eof() && peek() >= '0' && peek() <= '9')
                advance();
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            advance();
            if (!eof() && (peek() == '+' || peek() == '-'))
                advance();
            if (eof() || peek() < '0' || peek() > '9')
                fail("malformed number (missing exponent digits)");
            while (!eof() && peek() >= '0' && peek() <= '9')
                advance();
        }
        const std::string token =
            _text.substr(start, _pos - start);
        double parsed = 0.0;
        const auto [end, ec] = std::from_chars(
            token.data(), token.data() + token.size(), parsed);
        if (ec != std::errc() ||
            end != token.data() + token.size())
            fail("number out of range: " + token);
        return Value::number(parsed);
    }

    const std::string &_text;
    const std::string &_source;
    std::size_t _pos = 0;
    int _line = 1;
    int _col = 1;
};

// ---------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------

void
writeEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
writeNumber(std::string &out, double x)
{
    // Integral values in the exactly-representable range print as
    // integers ("4", not "4.0" or "4e0"); everything else takes the
    // shortest round-trip form from to_chars. Both are pure
    // functions of the bit pattern, which is what keeps golden
    // files byte-stable.
    if (x == static_cast<double>(static_cast<std::int64_t>(x)) &&
        std::abs(x) < 9.007199254740992e15) {
        out += std::to_string(static_cast<std::int64_t>(x));
        return;
    }
    char buf[64];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof buf, x);
    VAQ_ASSERT(ec == std::errc(), "to_chars failed on a double");
    out.append(buf, end);
}

void
writeValue(std::string &out, const Value &value, int indent,
           int depth)
{
    const auto newline = [&](int level) {
        if (indent <= 0)
            return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent * level), ' ');
    };

    switch (value.kind()) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += value.asBool() ? "true" : "false";
        break;
    case Kind::Number:
        writeNumber(out, value.asNumber());
        break;
    case Kind::String:
        writeEscaped(out, value.asString());
        break;
    case Kind::Array: {
        if (value.items().empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        bool first = true;
        for (const Value &item : value.items()) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            writeValue(out, item, indent, depth + 1);
        }
        newline(depth);
        out.push_back(']');
        break;
    }
    case Kind::Object: {
        if (value.members().empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        bool first = true;
        for (const auto &[key, member] : value.members()) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            writeEscaped(out, key);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            writeValue(out, member, indent, depth + 1);
        }
        newline(depth);
        out.push_back('}');
        break;
    }
    }
}

} // namespace

Value
parse(const std::string &text, const std::string &source)
{
    return Parser(text, source).parse();
}

std::string
write(const Value &value)
{
    std::string out;
    writeValue(out, value, 0, 0);
    return out;
}

std::string
writePretty(const Value &value)
{
    std::string out;
    writeValue(out, value, 2, 0);
    out.push_back('\n');
    return out;
}

// ---------------------------------------------------------------
// Cursor.
// ---------------------------------------------------------------

void
Cursor::fail(const std::string &expected) const
{
    throw VaqError(_path + ": expected " + expected + ", got " +
                   kindName(_value->kind()));
}

void
Cursor::requireKind(Kind kind, const char *what) const
{
    if (_value->kind() != kind)
        fail(what);
}

Cursor
Cursor::at(const std::string &key) const
{
    requireKind(Kind::Object, "object");
    const Value *member = _value->find(key);
    if (member == nullptr)
        throw VaqError(_path + "." + key +
                       ": required field is missing");
    return Cursor(*member, _path + "." + key);
}

std::optional<Cursor>
Cursor::get(const std::string &key) const
{
    requireKind(Kind::Object, "object");
    const Value *member = _value->find(key);
    if (member == nullptr || member->isNull())
        return std::nullopt;
    return Cursor(*member, _path + "." + key);
}

Cursor
Cursor::at(std::size_t index) const
{
    requireKind(Kind::Array, "array");
    if (index >= _value->size())
        throw VaqError(_path + "[" + std::to_string(index) +
                       "]: array index out of range (size " +
                       std::to_string(_value->size()) + ")");
    return Cursor(_value->item(index),
                  _path + "[" + std::to_string(index) + "]");
}

std::size_t
Cursor::arraySize() const
{
    requireKind(Kind::Array, "array");
    return _value->size();
}

bool
Cursor::asBool() const
{
    requireKind(Kind::Bool, "bool");
    return _value->asBool();
}

double
Cursor::asNumber() const
{
    requireKind(Kind::Number, "number");
    return _value->asNumber();
}

std::int64_t
Cursor::asInt() const
{
    requireKind(Kind::Number, "number");
    const double x = _value->asNumber();
    const auto n = static_cast<std::int64_t>(x);
    if (static_cast<double>(n) != x)
        throw VaqError(_path + ": expected integer, got " +
                       std::to_string(x));
    return n;
}

const std::string &
Cursor::asString() const
{
    requireKind(Kind::String, "string");
    return _value->asString();
}

} // namespace vaq::json
