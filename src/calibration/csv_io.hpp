/**
 * @file
 * CSV persistence for calibration snapshots.
 *
 * The format mirrors what one would export from the IBM Quantum
 * Experience characterization page, so real archives can be dropped
 * in as a replacement for the synthetic source:
 *
 * @code
 *   section,id,a,b,t1_us,t2_us,error_1q,readout_error,error_2q
 *   qubit,0,,,81.2,40.9,0.0021,0.031,
 *   link,0,0,1,,,,,0.024
 * @endcode
 */
#ifndef VAQ_CALIBRATION_CSV_IO_HPP
#define VAQ_CALIBRATION_CSV_IO_HPP

#include <string>

#include "calibration/snapshot.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::calibration
{

/** Serialize one snapshot to CSV text. */
std::string toCsv(const Snapshot &snapshot,
                  const topology::CouplingGraph &graph);

/**
 * Parse a snapshot from CSV text. Link rows are matched to the
 * graph's links by their (a, b) endpoints, so row order is free.
 * @param source Label prepended as "source:line:" to every
 *        malformed-row error (loadCsv passes the file path).
 * @throws CalibrationError on malformed rows, unknown links, or
 *         missing entries.
 */
Snapshot fromCsv(const std::string &text,
                 const topology::CouplingGraph &graph,
                 const std::string &source = "<csv>");

/** Write a snapshot to a CSV file. */
void saveCsv(const std::string &path, const Snapshot &snapshot,
             const topology::CouplingGraph &graph);

/** Read a snapshot from a CSV file. */
Snapshot loadCsv(const std::string &path,
                 const topology::CouplingGraph &graph);

/**
 * Serialize a whole calibration series (the 52-day archive of the
 * paper's Section 3) as CSV with a leading `cycle` column.
 */
std::string toCsvSeries(const CalibrationSeries &series,
                        const topology::CouplingGraph &graph);

/** Parse a series written by toCsvSeries. Cycles must be dense,
 *  starting at 0, each complete. `source` labels errors as in
 *  fromCsv. */
CalibrationSeries fromCsvSeries(
    const std::string &text, const topology::CouplingGraph &graph,
    const std::string &source = "<csv>");

/** Write a series to a CSV file. */
void saveCsvSeries(const std::string &path,
                   const CalibrationSeries &series,
                   const topology::CouplingGraph &graph);

/** Read a series from a CSV file. */
CalibrationSeries loadCsvSeries(
    const std::string &path, const topology::CouplingGraph &graph);

} // namespace vaq::calibration

#endif // VAQ_CALIBRATION_CSV_IO_HPP
