/**
 * @file
 * Machine characterization data: the per-qubit and per-link error
 * rates that IBM publishes after each calibration cycle (Section 3 of
 * the paper). All variation-aware policy decisions are driven by a
 * Snapshot; a CalibrationSeries holds one Snapshot per cycle across
 * the 52-day study window.
 */
#ifndef VAQ_CALIBRATION_SNAPSHOT_HPP
#define VAQ_CALIBRATION_SNAPSHOT_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/coupling_graph.hpp"

namespace vaq::calibration
{

/** Calibration record for one physical qubit. */
struct QubitCalibration
{
    double t1Us = 80.0;         ///< T1 relaxation time, microseconds
    double t2Us = 42.0;         ///< T2 dephasing time, microseconds
    double error1q = 0.003;     ///< single-qubit gate error prob
    double readoutError = 0.03; ///< measurement misread prob
};

/** Nominal gate durations (nanoseconds) for the coherence model. */
struct GateDurations
{
    double oneQubitNs = 60.0;
    double twoQubitNs = 200.0;
    double measureNs = 300.0;
};

/**
 * One calibration cycle: qubit records plus per-link two-qubit error
 * rates, aligned index-for-index with a CouplingGraph's links().
 */
class Snapshot
{
  public:
    /** Zero-initialized snapshot shaped for the given machine. */
    explicit Snapshot(const topology::CouplingGraph &graph);

    /** Number of qubits covered. */
    int numQubits() const
    {
        return static_cast<int>(_qubits.size());
    }

    /** Number of links covered. */
    std::size_t numLinks() const { return _linkError2q.size(); }

    /// @name Per-qubit data
    /// @{
    const QubitCalibration &qubit(int q) const;
    QubitCalibration &qubit(int q);
    /// @}

    /// @name Per-link data (indexed as graph.links())
    /// @{
    double linkError(std::size_t link_idx) const;
    void setLinkError(std::size_t link_idx, double error);
    /** Two-qubit error rate for the link {a, b}. */
    double linkError(const topology::CouplingGraph &graph,
                     topology::PhysQubit a,
                     topology::PhysQubit b) const;
    /** Success probability 1 - error for the link {a, b}. */
    double linkSuccess(const topology::CouplingGraph &graph,
                       topology::PhysQubit a,
                       topology::PhysQubit b) const;
    /**
     * SWAP failure probability on {a, b}: a SWAP decomposes into 3
     * CNOTs (Fig. 2d), so failure = 1 - (1 - e)^3.
     */
    double swapError(const topology::CouplingGraph &graph,
                     topology::PhysQubit a,
                     topology::PhysQubit b) const;
    /// @}

    /** Gate durations used by the coherence model. */
    GateDurations durations;

    /** All two-qubit link errors (copy). */
    std::vector<double> allLinkErrors() const { return _linkError2q; }

    /** All single-qubit gate errors (copy). */
    std::vector<double> allError1q() const;

    /**
     * Error-scaled copy for the Table 2 sensitivity study.
     *
     * Every error population (2q, 1q, readout) is transformed so its
     * mean becomes mean * err_scale while its coefficient of
     * variation becomes CoV * cov_mult:
     * e' = m*err_scale + (e - m)*err_scale*cov_mult, clamped to
     * [1e-5, 0.5].
     *
     * When `scale_coherence` is true (default), T1/T2 improve by the
     * same factor (1 / err_scale): "as technology improves, we can
     * expect the error rates to reduce" (Section 6.6) applies to the
     * whole device, keeping the paper's gate-error dominance. Pass
     * false to scale gate errors only.
     */
    Snapshot scaledErrors(double err_scale, double cov_mult,
                          bool scale_coherence = true) const;

    /** Throws VaqError unless all probabilities are in [0, 1] and
     *  coherence times are positive. */
    void validate() const;

    /**
     * Content hash over every calibration field (bit patterns of
     * the doubles, FNV-1a). Two snapshots hash equal iff their data
     * is bit-identical, so the hash keys caches of anything derived
     * from one calibration cycle (e.g. the reliability-path matrix;
     * see graph/reliability_matrix.hpp).
     */
    std::uint64_t contentHash() const;

  private:
    std::vector<QubitCalibration> _qubits;
    std::vector<double> _linkError2q;
};

/** A time-ordered sequence of calibration snapshots. */
class CalibrationSeries
{
  public:
    /** Append one cycle's snapshot. */
    void add(Snapshot snapshot);

    /** Number of cycles recorded. */
    std::size_t size() const { return _snapshots.size(); }

    /** True when no cycles are recorded. */
    bool empty() const { return _snapshots.empty(); }

    /** Snapshot of cycle i. */
    const Snapshot &at(std::size_t i) const;

    /** All snapshots. */
    const std::vector<Snapshot> &snapshots() const
    {
        return _snapshots;
    }

    /**
     * Element-wise average across all cycles — the "average behavior
     * of the link/qubit based on characterization data across 52
     * days" used by the paper's main evaluations (Section 6.5).
     */
    Snapshot averaged() const;

  private:
    std::vector<Snapshot> _snapshots;
};

} // namespace vaq::calibration

#endif // VAQ_CALIBRATION_SNAPSHOT_HPP
