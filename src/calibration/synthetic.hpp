/**
 * @file
 * Synthetic characterization-data source.
 *
 * SUBSTITUTION NOTE (see DESIGN.md §2.1): the paper scraped 52 days
 * of public IBM-Q20 calibration reports from the IBM Quantum
 * Experience website. That archive is not available offline, so this
 * generator produces calibration series whose marginal statistics
 * match every number the paper publishes:
 *
 *  - T1 ~ N(80.32, 35.23) us, truncated positive        (Fig. 5a)
 *  - T2 ~ N(42.13, 13.34) us, truncated, T2 <= 2*T1     (Fig. 5b)
 *  - 1q gate error: log-normal, most mass below 1 %     (Fig. 6)
 *  - 2q link error: mean 4.3 %, sigma 3.02 %, per-link
 *    averages spanning [0.02, 0.15] (7.5x spread)       (Figs. 7, 9)
 *  - temporal persistence: strong links stay strong,
 *    with rare recalibration jumps                      (Fig. 8)
 *
 * Each link/qubit gets a fixed "personality" (its long-run mean) and
 * per-cycle observations drift multiplicatively around it, so both
 * the per-day and the averaged-over-days workflows of the paper are
 * exercised faithfully.
 */
#ifndef VAQ_CALIBRATION_SYNTHETIC_HPP
#define VAQ_CALIBRATION_SYNTHETIC_HPP

#include <cstdint>

#include "calibration/snapshot.hpp"
#include "common/rng.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::calibration
{

/** Tunable population statistics for the synthetic source. */
struct SyntheticParams
{
    // Coherence times (microseconds), from the paper's Section 3.1.
    double t1MeanUs = 80.32;
    double t1StdUs = 35.23;
    double t1MinUs = 5.0;
    double t1MaxUs = 220.0;
    double t2MeanUs = 42.13;
    double t2StdUs = 13.34;
    double t2MinUs = 3.0;
    double t2MaxUs = 120.0;

    // Two-qubit link errors, Section 3.3/3.5.
    double err2qMean = 0.043;
    double err2qSigmaLog = 0.25;  ///< log-space spread across links
    double err2qMin = 0.005;
    double err2qMax = 0.25;
    double linkPersonalityMin = 0.015; ///< floor of long-run means
    double linkPersonalityMax = 0.17;  ///< cap of long-run means
    /**
     * Log-space penalty added to peripheral links. The published
     * Q20 characterization (paper Fig. 9) shows its weakest links
     * at the chip edge (e.g. Q14-Q18 at 0.15) while the centre is
     * comparatively strong; reproducing that spatial structure
     * matters because the variation-blind baseline places programs
     * in the centre and thereby dodges edge links. 0 disables the
     * structure (spatially uniform variation).
     */
    double peripheryBiasLog = 1.8;

    // Single-qubit gate errors, Section 3.2.
    double err1qMedian = 0.0025;
    double err1qSigmaLog = 0.8;
    double err1qMin = 1e-4;
    double err1qMax = 0.04;

    // Readout (measurement) errors.
    double readoutMedian = 0.025;
    double readoutSigmaLog = 0.5;
    double readoutMin = 0.005;
    double readoutMax = 0.12;

    // Temporal model, Section 3.4.
    double dailyDriftSigmaLog = 0.20; ///< per-cycle log-normal drift
    /**
     * Chance per cycle that a link re-rolls its long-run
     * personality (the paper's occasional "opposite behavior"
     * events). Kept rare so archive-averaged link strengths retain
     * the published 7.5x spatial spread.
     */
    double jumpProbability = 0.004;
};

/**
 * Deterministic (seeded) generator of calibration snapshots for an
 * arbitrary machine topology.
 */
class SyntheticSource
{
  public:
    /**
     * @param graph Machine whose qubits/links get calibrated.
     * @param params Population statistics.
     * @param seed RNG seed; equal seeds give equal series.
     */
    SyntheticSource(const topology::CouplingGraph &graph,
                    const SyntheticParams &params = {},
                    std::uint64_t seed = 7);

    /** Generate the next calibration cycle. */
    Snapshot nextCycle();

    /** Generate a series of `cycles` consecutive snapshots. */
    CalibrationSeries series(std::size_t cycles);

    /** The long-run mean two-qubit error of each link. */
    const std::vector<double> &linkPersonalities() const
    {
        return _linkPersonality;
    }

  private:
    double drawLinkPersonality(std::size_t link);

    const topology::CouplingGraph &_graph;
    SyntheticParams _params;
    Rng _rng;

    // Log-space spatial bias per link (periphery penalty).
    std::vector<double> _linkBias;
    // Long-run means ("personalities").
    std::vector<double> _linkPersonality;
    std::vector<QubitCalibration> _qubitPersonality;
};

} // namespace vaq::calibration

#endif // VAQ_CALIBRATION_SYNTHETIC_HPP
