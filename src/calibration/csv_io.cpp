#include "calibration/csv_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace vaq::calibration
{

std::string
toCsv(const Snapshot &snapshot,
      const topology::CouplingGraph &graph)
{
    require(snapshot.numQubits() == graph.numQubits() &&
                snapshot.numLinks() == graph.linkCount(),
            "snapshot does not match graph shape");

    std::ostringstream oss;
    oss << "section,id,a,b,t1_us,t2_us,error_1q,readout_error,"
           "error_2q\n";
    for (int q = 0; q < snapshot.numQubits(); ++q) {
        const QubitCalibration &cal = snapshot.qubit(q);
        oss << "qubit," << q << ",,,"
            << formatDouble(cal.t1Us, 6) << ","
            << formatDouble(cal.t2Us, 6) << ","
            << formatDouble(cal.error1q, 8) << ","
            << formatDouble(cal.readoutError, 8) << ",\n";
    }
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const topology::Link &link = graph.links()[l];
        oss << "link," << l << "," << link.a << "," << link.b
            << ",,,,," << formatDouble(snapshot.linkError(l), 8)
            << "\n";
    }
    return oss.str();
}

Snapshot
fromCsv(const std::string &text,
        const topology::CouplingGraph &graph)
{
    Snapshot snap(graph);
    std::vector<bool> qubitSeen(
        static_cast<std::size_t>(graph.numQubits()), false);
    std::vector<bool> linkSeen(graph.linkCount(), false);

    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        line = trim(line);
        if (line.empty() || startsWith(line, "#") ||
            startsWith(line, "section")) {
            continue;
        }
        const auto fields = split(line, ',');
        require(fields.size() == 9,
                "calibration CSV line " + std::to_string(lineNo) +
                    " has wrong field count");
        const std::string &section = fields[0];
        if (section == "qubit") {
            const auto q = parseSize(fields[1]);
            require(q < static_cast<std::size_t>(graph.numQubits()),
                    "qubit id out of range in CSV");
            require(!qubitSeen[q], "duplicate qubit row in CSV");
            qubitSeen[q] = true;
            QubitCalibration &cal =
                snap.qubit(static_cast<int>(q));
            cal.t1Us = parseDouble(fields[4]);
            cal.t2Us = parseDouble(fields[5]);
            cal.error1q = parseDouble(fields[6]);
            cal.readoutError = parseDouble(fields[7]);
        } else if (section == "link") {
            const auto a = static_cast<int>(parseSize(fields[2]));
            const auto b = static_cast<int>(parseSize(fields[3]));
            const std::size_t idx = graph.linkIndex(a, b);
            require(!linkSeen[idx], "duplicate link row in CSV");
            linkSeen[idx] = true;
            snap.setLinkError(idx, parseDouble(fields[8]));
        } else {
            throw VaqError("unknown CSV section '" + section +
                           "' on line " + std::to_string(lineNo));
        }
    }

    for (std::size_t q = 0; q < qubitSeen.size(); ++q) {
        require(qubitSeen[q],
                "missing qubit row " + std::to_string(q));
    }
    for (std::size_t l = 0; l < linkSeen.size(); ++l) {
        require(linkSeen[l],
                "missing link row " + std::to_string(l));
    }
    snap.validate();
    return snap;
}

void
saveCsv(const std::string &path, const Snapshot &snapshot,
        const topology::CouplingGraph &graph)
{
    std::ofstream out(path);
    require(static_cast<bool>(out),
            "cannot open for write: " + path);
    out << toCsv(snapshot, graph);
    require(static_cast<bool>(out), "write failed: " + path);
}

Snapshot
loadCsv(const std::string &path,
        const topology::CouplingGraph &graph)
{
    std::ifstream in(path);
    require(static_cast<bool>(in), "cannot open for read: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromCsv(buffer.str(), graph);
}

std::string
toCsvSeries(const CalibrationSeries &series,
            const topology::CouplingGraph &graph)
{
    require(!series.empty(), "cannot serialize an empty series");
    std::ostringstream oss;
    oss << "cycle,section,id,a,b,t1_us,t2_us,error_1q,"
           "readout_error,error_2q\n";
    for (std::size_t cycle = 0; cycle < series.size(); ++cycle) {
        const std::string body = toCsv(series.at(cycle), graph);
        std::istringstream lines(body);
        std::string line;
        bool first = true;
        while (std::getline(lines, line)) {
            if (first) { // skip the per-snapshot header
                first = false;
                continue;
            }
            if (!trim(line).empty())
                oss << cycle << "," << line << "\n";
        }
    }
    return oss.str();
}

CalibrationSeries
fromCsvSeries(const std::string &text,
              const topology::CouplingGraph &graph)
{
    // Split rows per cycle, then reuse the snapshot parser.
    std::vector<std::string> perCycle;
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string trimmed = trim(line);
        if (trimmed.empty() || startsWith(trimmed, "#") ||
            startsWith(trimmed, "cycle")) {
            continue;
        }
        const auto comma = trimmed.find(',');
        require(comma != std::string::npos,
                "malformed series row on line " +
                    std::to_string(lineNo));
        const std::size_t cycle =
            parseSize(trimmed.substr(0, comma));
        if (cycle >= perCycle.size()) {
            require(cycle == perCycle.size(),
                    "series cycles must be dense");
            perCycle.emplace_back();
        }
        perCycle[cycle] += trimmed.substr(comma + 1) + "\n";
    }
    require(!perCycle.empty(), "series CSV has no rows");

    CalibrationSeries series;
    for (const std::string &body : perCycle)
        series.add(fromCsv(body, graph));
    return series;
}

void
saveCsvSeries(const std::string &path,
              const CalibrationSeries &series,
              const topology::CouplingGraph &graph)
{
    std::ofstream out(path);
    require(static_cast<bool>(out),
            "cannot open for write: " + path);
    out << toCsvSeries(series, graph);
    require(static_cast<bool>(out), "write failed: " + path);
}

CalibrationSeries
loadCsvSeries(const std::string &path,
              const topology::CouplingGraph &graph)
{
    std::ifstream in(path);
    require(static_cast<bool>(in), "cannot open for read: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromCsvSeries(buffer.str(), graph);
}

} // namespace vaq::calibration
