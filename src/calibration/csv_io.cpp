#include "calibration/csv_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace vaq::calibration
{

std::string
toCsv(const Snapshot &snapshot,
      const topology::CouplingGraph &graph)
{
    require(snapshot.numQubits() == graph.numQubits() &&
                snapshot.numLinks() == graph.linkCount(),
            "snapshot does not match graph shape");

    std::ostringstream oss;
    oss << "section,id,a,b,t1_us,t2_us,error_1q,readout_error,"
           "error_2q\n";
    for (int q = 0; q < snapshot.numQubits(); ++q) {
        const QubitCalibration &cal = snapshot.qubit(q);
        oss << "qubit," << q << ",,,"
            << formatDouble(cal.t1Us, 6) << ","
            << formatDouble(cal.t2Us, 6) << ","
            << formatDouble(cal.error1q, 8) << ","
            << formatDouble(cal.readoutError, 8) << ",\n";
    }
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const topology::Link &link = graph.links()[l];
        oss << "link," << l << "," << link.a << "," << link.b
            << ",,,,," << formatDouble(snapshot.linkError(l), 8)
            << "\n";
    }
    return oss.str();
}

namespace
{

/** "source:line: message" — every malformed-row complaint points
 *  back into the file the operator has to fix. Lines are 1-based,
 *  counting every physical line (headers and comments included). */
CalibrationError
rowError(const std::string &source, int line_no,
         const std::string &message)
{
    return CalibrationError(source + ":" +
                            std::to_string(line_no) + ": " +
                            message);
}

} // namespace

Snapshot
fromCsv(const std::string &text,
        const topology::CouplingGraph &graph,
        const std::string &source)
{
    Snapshot snap(graph);
    std::vector<bool> qubitSeen(
        static_cast<std::size_t>(graph.numQubits()), false);
    std::vector<bool> linkSeen(graph.linkCount(), false);

    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        line = trim(line);
        if (line.empty() || startsWith(line, "#") ||
            startsWith(line, "section")) {
            continue;
        }
        const auto fields = split(line, ',');
        if (fields.size() != 9) {
            throw rowError(source, lineNo,
                           "wrong field count (expected 9, got " +
                               std::to_string(fields.size()) + ")");
        }
        // Field-level failures (non-numeric values, unknown links,
        // duplicates) surface from the helpers below as VaqError;
        // re-label them all with the file and line they came from.
        try {
            const std::string &section = fields[0];
            if (section == "qubit") {
                const auto q = parseSize(fields[1]);
                require(q < static_cast<std::size_t>(
                                graph.numQubits()),
                        "qubit id out of range");
                require(!qubitSeen[q], "duplicate qubit row");
                qubitSeen[q] = true;
                QubitCalibration &cal =
                    snap.qubit(static_cast<int>(q));
                cal.t1Us = parseDouble(fields[4]);
                cal.t2Us = parseDouble(fields[5]);
                cal.error1q = parseDouble(fields[6]);
                cal.readoutError = parseDouble(fields[7]);
            } else if (section == "link") {
                const auto a =
                    static_cast<int>(parseSize(fields[2]));
                const auto b =
                    static_cast<int>(parseSize(fields[3]));
                const std::size_t idx = graph.linkIndex(a, b);
                require(!linkSeen[idx], "duplicate link row");
                linkSeen[idx] = true;
                snap.setLinkError(idx, parseDouble(fields[8]));
            } else {
                throw VaqError("unknown CSV section '" + section +
                               "'");
            }
        } catch (const VaqError &e) {
            throw rowError(source, lineNo, e.message());
        }
    }

    for (std::size_t q = 0; q < qubitSeen.size(); ++q) {
        if (!qubitSeen[q]) {
            throw CalibrationError(source + ": missing qubit row " +
                                       std::to_string(q),
                                   static_cast<int>(q));
        }
    }
    for (std::size_t l = 0; l < linkSeen.size(); ++l) {
        if (!linkSeen[l]) {
            throw CalibrationError(source + ": missing link row " +
                                       std::to_string(l),
                                   -1, static_cast<long>(l));
        }
    }
    try {
        snap.validate();
    } catch (CalibrationError &e) {
        e.addContext(source);
        throw;
    }
    return snap;
}

void
saveCsv(const std::string &path, const Snapshot &snapshot,
        const topology::CouplingGraph &graph)
{
    std::ofstream out(path);
    require(static_cast<bool>(out),
            "cannot open for write: " + path);
    out << toCsv(snapshot, graph);
    require(static_cast<bool>(out), "write failed: " + path);
}

Snapshot
loadCsv(const std::string &path,
        const topology::CouplingGraph &graph)
{
    std::ifstream in(path);
    require(static_cast<bool>(in), "cannot open for read: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromCsv(buffer.str(), graph, path);
}

std::string
toCsvSeries(const CalibrationSeries &series,
            const topology::CouplingGraph &graph)
{
    require(!series.empty(), "cannot serialize an empty series");
    std::ostringstream oss;
    oss << "cycle,section,id,a,b,t1_us,t2_us,error_1q,"
           "readout_error,error_2q\n";
    for (std::size_t cycle = 0; cycle < series.size(); ++cycle) {
        const std::string body = toCsv(series.at(cycle), graph);
        std::istringstream lines(body);
        std::string line;
        bool first = true;
        while (std::getline(lines, line)) {
            if (first) { // skip the per-snapshot header
                first = false;
                continue;
            }
            if (!trim(line).empty())
                oss << cycle << "," << line << "\n";
        }
    }
    return oss.str();
}

CalibrationSeries
fromCsvSeries(const std::string &text,
              const topology::CouplingGraph &graph,
              const std::string &source)
{
    // Split rows per cycle, then reuse the snapshot parser.
    std::vector<std::string> perCycle;
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string trimmed = trim(line);
        if (trimmed.empty() || startsWith(trimmed, "#") ||
            startsWith(trimmed, "cycle")) {
            continue;
        }
        const auto comma = trimmed.find(',');
        if (comma == std::string::npos)
            throw rowError(source, lineNo, "malformed series row");
        try {
            const std::size_t cycle =
                parseSize(trimmed.substr(0, comma));
            if (cycle >= perCycle.size()) {
                require(cycle == perCycle.size(),
                        "series cycles must be dense");
                perCycle.emplace_back();
            }
            perCycle[cycle] += trimmed.substr(comma + 1) + "\n";
        } catch (const CalibrationError &) {
            throw;
        } catch (const VaqError &e) {
            throw rowError(source, lineNo, e.message());
        }
    }
    if (perCycle.empty())
        throw CalibrationError(source + ": series CSV has no rows");

    CalibrationSeries series;
    for (std::size_t cycle = 0; cycle < perCycle.size(); ++cycle) {
        // Line numbers inside a cycle body count that cycle's rows,
        // so label the source with the cycle they belong to.
        series.add(fromCsv(perCycle[cycle], graph,
                           source + " cycle " +
                               std::to_string(cycle)));
    }
    return series;
}

void
saveCsvSeries(const std::string &path,
              const CalibrationSeries &series,
              const topology::CouplingGraph &graph)
{
    std::ofstream out(path);
    require(static_cast<bool>(out),
            "cannot open for write: " + path);
    out << toCsvSeries(series, graph);
    require(static_cast<bool>(out), "write failed: " + path);
}

CalibrationSeries
loadCsvSeries(const std::string &path,
              const topology::CouplingGraph &graph)
{
    std::ifstream in(path);
    require(static_cast<bool>(in), "cannot open for read: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromCsvSeries(buffer.str(), graph, path);
}

} // namespace vaq::calibration
