#include "calibration/snapshot.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/hashing.hpp"
#include "common/statistics.hpp"

namespace vaq::calibration
{

Snapshot::Snapshot(const topology::CouplingGraph &graph)
    : _qubits(static_cast<std::size_t>(graph.numQubits())),
      _linkError2q(graph.linkCount(), 0.0)
{
}

const QubitCalibration &
Snapshot::qubit(int q) const
{
    require(q >= 0 && q < numQubits(),
            "calibration qubit index out of range");
    return _qubits[static_cast<std::size_t>(q)];
}

QubitCalibration &
Snapshot::qubit(int q)
{
    require(q >= 0 && q < numQubits(),
            "calibration qubit index out of range");
    return _qubits[static_cast<std::size_t>(q)];
}

double
Snapshot::linkError(std::size_t link_idx) const
{
    require(link_idx < _linkError2q.size(),
            "calibration link index out of range");
    return _linkError2q[link_idx];
}

void
Snapshot::setLinkError(std::size_t link_idx, double error)
{
    require(link_idx < _linkError2q.size(),
            "calibration link index out of range");
    require(error >= 0.0 && error <= 1.0,
            "link error must be a probability");
    _linkError2q[link_idx] = error;
}

double
Snapshot::linkError(const topology::CouplingGraph &graph,
                    topology::PhysQubit a,
                    topology::PhysQubit b) const
{
    return linkError(graph.linkIndex(a, b));
}

double
Snapshot::linkSuccess(const topology::CouplingGraph &graph,
                      topology::PhysQubit a,
                      topology::PhysQubit b) const
{
    return 1.0 - linkError(graph, a, b);
}

double
Snapshot::swapError(const topology::CouplingGraph &graph,
                    topology::PhysQubit a,
                    topology::PhysQubit b) const
{
    const double success = linkSuccess(graph, a, b);
    return 1.0 - success * success * success;
}

std::vector<double>
Snapshot::allError1q() const
{
    std::vector<double> out;
    out.reserve(_qubits.size());
    for (const QubitCalibration &q : _qubits)
        out.push_back(q.error1q);
    return out;
}

namespace
{

/** Mean-and-spread transform used by scaledErrors. */
double
rescale(double e, double mean, double err_scale, double cov_mult)
{
    const double scaled =
        mean * err_scale + (e - mean) * err_scale * cov_mult;
    return std::clamp(scaled, 1e-5, 0.5);
}

} // namespace

Snapshot
Snapshot::scaledErrors(double err_scale, double cov_mult,
                       bool scale_coherence) const
{
    require(err_scale > 0.0, "error scale must be positive");
    require(cov_mult > 0.0, "CoV multiplier must be positive");

    Snapshot out = *this;
    if (scale_coherence) {
        for (QubitCalibration &q : out._qubits) {
            q.t1Us /= err_scale;
            q.t2Us /= err_scale;
        }
    }

    if (!_linkError2q.empty()) {
        const double m2q = vaq::mean(_linkError2q);
        for (double &e : out._linkError2q)
            e = rescale(e, m2q, err_scale, cov_mult);
    }

    std::vector<double> e1q = allError1q();
    std::vector<double> ero;
    ero.reserve(_qubits.size());
    for (const QubitCalibration &q : _qubits)
        ero.push_back(q.readoutError);
    const double m1q = vaq::mean(e1q);
    const double mro = vaq::mean(ero);
    for (std::size_t i = 0; i < out._qubits.size(); ++i) {
        auto &q = out._qubits[i];
        q.error1q = rescale(q.error1q, m1q, err_scale, cov_mult);
        q.readoutError =
            rescale(q.readoutError, mro, err_scale, cov_mult);
    }
    return out;
}

namespace
{

/** Positive AND finite: `inf > 0.0` is true, so a bare `> 0.0`
 *  check waves Inf coherence times and durations through. */
bool
finitePositive(double v)
{
    return std::isfinite(v) && v > 0.0;
}

/** A probability must also be finite: NaN fails both comparisons,
 *  but only via the combined condition reading as intended. */
bool
finiteProbability(double v)
{
    return std::isfinite(v) && v >= 0.0 && v <= 1.0;
}

void
requireCalibration(bool cond, const std::string &msg,
                   int qubit = -1, long link = -1)
{
    if (!cond)
        throw CalibrationError(msg, qubit, link);
}

} // namespace

void
Snapshot::validate() const
{
    for (int q = 0; q < numQubits(); ++q) {
        const QubitCalibration &cal =
            _qubits[static_cast<std::size_t>(q)];
        requireCalibration(finitePositive(cal.t1Us) &&
                               finitePositive(cal.t2Us),
                           "coherence times must be positive and "
                           "finite",
                           q);
        requireCalibration(finiteProbability(cal.error1q),
                           "1q error must be a probability", q);
        requireCalibration(finiteProbability(cal.readoutError),
                           "readout error must be a probability",
                           q);
    }
    for (std::size_t l = 0; l < _linkError2q.size(); ++l) {
        requireCalibration(finiteProbability(_linkError2q[l]),
                           "2q error must be a probability", -1,
                           static_cast<long>(l));
    }
    requireCalibration(finitePositive(durations.oneQubitNs) &&
                           finitePositive(durations.twoQubitNs) &&
                           finitePositive(durations.measureNs),
                       "gate durations must be positive and finite");
}

std::uint64_t
Snapshot::contentHash() const
{
    std::uint64_t h = kHashSeed;
    h = hashCombine(h,
                    static_cast<std::uint64_t>(_qubits.size()));
    for (const QubitCalibration &q : _qubits) {
        h = hashCombine(h, q.t1Us);
        h = hashCombine(h, q.t2Us);
        h = hashCombine(h, q.error1q);
        h = hashCombine(h, q.readoutError);
    }
    h = hashCombine(
        h, static_cast<std::uint64_t>(_linkError2q.size()));
    for (double e : _linkError2q)
        h = hashCombine(h, e);
    h = hashCombine(h, durations.oneQubitNs);
    h = hashCombine(h, durations.twoQubitNs);
    h = hashCombine(h, durations.measureNs);
    return h;
}

void
CalibrationSeries::add(Snapshot snapshot)
{
    if (!_snapshots.empty()) {
        require(snapshot.numQubits() ==
                        _snapshots.front().numQubits() &&
                    snapshot.numLinks() ==
                        _snapshots.front().numLinks(),
                "snapshot shape mismatch within series");
    }
    _snapshots.push_back(std::move(snapshot));
}

const Snapshot &
CalibrationSeries::at(std::size_t i) const
{
    require(i < _snapshots.size(), "series index out of range");
    return _snapshots[i];
}

Snapshot
CalibrationSeries::averaged() const
{
    require(!_snapshots.empty(), "cannot average an empty series");
    Snapshot avg = _snapshots.front();
    const auto n = static_cast<double>(_snapshots.size());

    for (int q = 0; q < avg.numQubits(); ++q) {
        QubitCalibration acc;
        acc.t1Us = acc.t2Us = acc.error1q = acc.readoutError = 0.0;
        for (const Snapshot &s : _snapshots) {
            const QubitCalibration &src = s.qubit(q);
            acc.t1Us += src.t1Us;
            acc.t2Us += src.t2Us;
            acc.error1q += src.error1q;
            acc.readoutError += src.readoutError;
        }
        QubitCalibration &dst = avg.qubit(q);
        dst.t1Us = acc.t1Us / n;
        dst.t2Us = acc.t2Us / n;
        dst.error1q = acc.error1q / n;
        dst.readoutError = acc.readoutError / n;
    }
    for (std::size_t l = 0; l < avg.numLinks(); ++l) {
        double sum = 0.0;
        for (const Snapshot &s : _snapshots)
            sum += s.linkError(l);
        avg.setLinkError(l, sum / n);
    }
    return avg;
}

} // namespace vaq::calibration
