#include "calibration/sanitize.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>

#include "common/error.hpp"

namespace vaq::calibration
{

std::string
QuarantineReport::summary() const
{
    std::ostringstream oss;
    oss << "quarantined " << qubits.size() << " qubit(s), "
        << links.size() << " link(s)";
    if (durationsReset)
        oss << ", durations reset";
    if (!qubits.empty()) {
        oss << "; qubits:";
        for (const QuarantinedQubit &q : qubits)
            oss << " " << q.qubit;
    }
    if (!links.empty()) {
        oss << "; links:";
        for (const QuarantinedLink &l : links)
            oss << " " << l.a << "-" << l.b;
    }
    return oss.str();
}

topology::CouplingGraph
SanitizedCalibration::healthyGraph(
    const topology::CouplingGraph &full) const
{
    return full.inducedSubgraph(healthyRegion);
}

namespace
{

/** Why a qubit record is unusable, or empty when it is fine. */
std::string
qubitDefect(const QubitCalibration &cal,
            const SanitizeOptions &options)
{
    if (!std::isfinite(cal.t1Us) || !std::isfinite(cal.t2Us) ||
        !std::isfinite(cal.error1q) ||
        !std::isfinite(cal.readoutError))
        return "non-finite calibration value";
    if (cal.t1Us <= options.minCoherenceUs ||
        cal.t2Us <= options.minCoherenceUs)
        return "zero coherence";
    if (cal.error1q < 0.0 || cal.error1q > 1.0 ||
        cal.readoutError < 0.0 || cal.readoutError > 1.0)
        return "error outside [0, 1]";
    if (cal.error1q >= options.deadErrorThreshold)
        return "1q error at dead threshold";
    if (cal.readoutError >= options.deadErrorThreshold)
        return "readout at dead threshold";
    return {};
}

/** Why a link error is unusable on its own, or empty. */
std::string
linkDefect(double error, const SanitizeOptions &options)
{
    if (!std::isfinite(error))
        return "non-finite link error";
    if (error < 0.0 || error > 1.0)
        return "link error outside [0, 1]";
    if (error >= options.deadErrorThreshold)
        return "link error at dead threshold";
    return {};
}

/**
 * Largest connected component over the surviving machine, ascending
 * ids; BFS in id order keeps the choice deterministic (first-seen
 * component wins ties).
 */
std::vector<topology::PhysQubit>
largestHealthyComponent(const topology::CouplingGraph &graph,
                        const std::vector<bool> &qubit_dead,
                        const std::vector<bool> &link_dead)
{
    const int n = graph.numQubits();
    // Healthy adjacency: only links that survived quarantine.
    std::vector<std::vector<topology::PhysQubit>> adjacency(
        static_cast<std::size_t>(n));
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        if (link_dead[l])
            continue;
        const topology::Link &link = graph.links()[l];
        adjacency[static_cast<std::size_t>(link.a)].push_back(
            link.b);
        adjacency[static_cast<std::size_t>(link.b)].push_back(
            link.a);
    }

    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<topology::PhysQubit> best;
    for (int start = 0; start < n; ++start) {
        const auto s = static_cast<std::size_t>(start);
        if (seen[s] || qubit_dead[s])
            continue;
        std::vector<topology::PhysQubit> component;
        std::deque<topology::PhysQubit> frontier{start};
        seen[s] = true;
        while (!frontier.empty()) {
            const topology::PhysQubit q = frontier.front();
            frontier.pop_front();
            component.push_back(q);
            for (const topology::PhysQubit next :
                 adjacency[static_cast<std::size_t>(q)]) {
                const auto ns = static_cast<std::size_t>(next);
                if (!seen[ns] && !qubit_dead[ns]) {
                    seen[ns] = true;
                    frontier.push_back(next);
                }
            }
        }
        if (component.size() > best.size())
            best = std::move(component);
    }
    std::sort(best.begin(), best.end());
    return best;
}

} // namespace

SanitizedCalibration
sanitize(const Snapshot &snapshot,
         const topology::CouplingGraph &graph,
         const SanitizeOptions &options)
{
    require(snapshot.numQubits() == graph.numQubits() &&
                snapshot.numLinks() == graph.linkCount(),
            "snapshot does not match graph shape");

    // Aggregate init: Snapshot has no default constructor, so the
    // cleaned copy seeds the struct directly.
    SanitizedCalibration out{snapshot, {}, {}, false};

    const int n = snapshot.numQubits();
    std::vector<bool> qubitDead(static_cast<std::size_t>(n), false);
    for (int q = 0; q < n; ++q) {
        const std::string defect =
            qubitDefect(snapshot.qubit(q), options);
        if (defect.empty())
            continue;
        qubitDead[static_cast<std::size_t>(q)] = true;
        out.report.qubits.push_back({q, defect});
        // Pin to finite worst-case values so downstream arithmetic
        // on the full-width snapshot stays NaN-free.
        QubitCalibration &cal = out.snapshot.qubit(q);
        cal.t1Us = cal.t2Us = 2.0 * options.minCoherenceUs;
        cal.error1q = 1.0;
        cal.readoutError = 1.0;
    }

    std::vector<bool> linkDead(graph.linkCount(), false);
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const topology::Link &link = graph.links()[l];
        std::string defect =
            linkDefect(snapshot.linkError(l), options);
        if (defect.empty() &&
            (qubitDead[static_cast<std::size_t>(link.a)] ||
             qubitDead[static_cast<std::size_t>(link.b)]))
            defect = "endpoint qubit quarantined";
        if (defect.empty())
            continue;
        linkDead[l] = true;
        out.report.links.push_back({l, link.a, link.b, defect});
        out.snapshot.setLinkError(l, 1.0);
    }

    const GateDurations &d = snapshot.durations;
    if (!std::isfinite(d.oneQubitNs) || d.oneQubitNs <= 0.0 ||
        !std::isfinite(d.twoQubitNs) || d.twoQubitNs <= 0.0 ||
        !std::isfinite(d.measureNs) || d.measureNs <= 0.0) {
        out.snapshot.durations = GateDurations{};
        out.report.durationsReset = true;
    }

    out.healthyRegion =
        largestHealthyComponent(graph, qubitDead, linkDead);
    const auto floor = static_cast<std::size_t>(std::ceil(
        options.minHealthyFraction * static_cast<double>(n)));
    out.usable = out.healthyRegion.size() >= 2 &&
                 out.healthyRegion.size() >= floor;
    return out;
}

} // namespace vaq::calibration
