/**
 * @file
 * Calibration sanitizer and quarantine pass.
 *
 * Real characterization archives are messy: links drift to error
 * rates near 1.0 (effectively dead), readout on a qubit collapses,
 * exports contain NaN/Inf holes. Snapshot::validate() rejects such
 * a snapshot wholesale, which is the right call for a single
 * compile but fatal for a batch service replaying a 52-day series —
 * one bad cycle must degrade, not abort.
 *
 * sanitize() turns a suspect snapshot into a structured verdict
 * instead of an exception:
 *
 *  - every dead or non-finite qubit/link is quarantined with a
 *    reason (QuarantineReport),
 *  - a cleaned copy of the snapshot is produced whose quarantined
 *    entries are pinned to finite worst-case values, so downstream
 *    arithmetic never sees NaN,
 *  - the largest connected component of healthy qubits over healthy
 *    links becomes the degraded machine view (healthyRegion /
 *    healthyGraph), ready for Mapper::mapInRegion,
 *  - `usable` says whether enough of the machine survived to be
 *    worth compiling for at all.
 *
 * The batch compiler consumes this to mark jobs degraded instead of
 * failed, and IterativeRunner::runBatchSeries to skip unusable
 * cycles in a series.
 */
#ifndef VAQ_CALIBRATION_SANITIZE_HPP
#define VAQ_CALIBRATION_SANITIZE_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "calibration/snapshot.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::calibration
{

/** Quarantine thresholds. */
struct SanitizeOptions
{
    /** An error probability at or above this is "dead" (the paper's
     *  error ≈ 1.0 links; 0.95 leaves margin for jitter). */
    double deadErrorThreshold = 0.95;
    /** Coherence times at or below this (microseconds) count as
     *  "zero coherence". */
    double minCoherenceUs = 1e-3;
    /** A snapshot is usable when the healthy component keeps at
     *  least this fraction of the machine (and >= 2 qubits). */
    double minHealthyFraction = 0.25;
};

/** One quarantined qubit with the reason it was pulled. */
struct QuarantinedQubit
{
    int qubit;
    std::string reason;
};

/** One quarantined link with the reason it was pulled. */
struct QuarantinedLink
{
    std::size_t link;
    topology::PhysQubit a;
    topology::PhysQubit b;
    std::string reason;
};

/** Everything the sanitizer pulled out of a snapshot. */
struct QuarantineReport
{
    std::vector<QuarantinedQubit> qubits;
    std::vector<QuarantinedLink> links;
    /** Gate durations were non-finite/non-positive and were reset
     *  to the defaults. */
    bool durationsReset = false;

    /** True when nothing was quarantined. */
    bool clean() const
    {
        return qubits.empty() && links.empty() && !durationsReset;
    }

    /** One-line human-readable digest for logs and skip reasons. */
    std::string summary() const;
};

/** Sanitizer verdict: cleaned data plus the degraded machine view. */
struct SanitizedCalibration
{
    /** Copy of the input with every quarantined entry pinned to a
     *  finite worst-case value; always passes Snapshot::validate(). */
    Snapshot snapshot;
    QuarantineReport report;
    /** Largest connected component of healthy qubits over healthy
     *  links, ascending qubit ids. */
    std::vector<topology::PhysQubit> healthyRegion;
    /** Enough machine survived (see SanitizeOptions). */
    bool usable = false;

    /** The degraded machine: `full` induced on healthyRegion. */
    topology::CouplingGraph
    healthyGraph(const topology::CouplingGraph &full) const;
};

/**
 * Run the quarantine pass. Never throws on bad calibration values —
 * that is the point — only on shape mismatch between snapshot and
 * graph (a usage error).
 */
SanitizedCalibration
sanitize(const Snapshot &snapshot,
         const topology::CouplingGraph &graph,
         const SanitizeOptions &options = {});

} // namespace vaq::calibration

#endif // VAQ_CALIBRATION_SANITIZE_HPP
