#include "calibration/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vaq::calibration
{

SyntheticSource::SyntheticSource(const topology::CouplingGraph &graph,
                                 const SyntheticParams &params,
                                 std::uint64_t seed)
    : _graph(graph), _params(params), _rng(seed)
{
    // Spatial structure: normalized centrality of each link (0 =
    // most central, 1 = most peripheral), from the mean hop
    // distance of its endpoints to every qubit.
    std::vector<double> periphery(graph.linkCount(), 0.5);
    if (graph.isConnected() && graph.numQubits() > 1) {
        const auto &hops = graph.hopDistances();
        std::vector<double> nodeEcc(
            static_cast<std::size_t>(graph.numQubits()), 0.0);
        for (int v = 0; v < graph.numQubits(); ++v) {
            double total = 0.0;
            for (int u = 0; u < graph.numQubits(); ++u) {
                total += hops[static_cast<std::size_t>(v)]
                             [static_cast<std::size_t>(u)];
            }
            nodeEcc[static_cast<std::size_t>(v)] = total;
        }
        const double lo =
            *std::min_element(nodeEcc.begin(), nodeEcc.end());
        const double hi =
            *std::max_element(nodeEcc.begin(), nodeEcc.end());
        for (std::size_t l = 0; l < graph.linkCount(); ++l) {
            const topology::Link &link = graph.links()[l];
            const double ecc =
                (nodeEcc[static_cast<std::size_t>(link.a)] +
                 nodeEcc[static_cast<std::size_t>(link.b)]) /
                2.0;
            periphery[l] =
                hi > lo ? (ecc - lo) / (hi - lo) : 0.5;
        }
    }

    // Draw per-link long-run means from a log-normal whose mean is
    // err2qMean (log-normal mean = exp(mu + sigma^2/2); correct mu
    // for the multiplicative daily drift's own mean exp(sd^2/2)),
    // shifted in log space by the periphery bias.
    _linkBias.reserve(graph.linkCount());
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        _linkBias.push_back(_params.peripheryBiasLog *
                            (periphery[l] - 0.5));
    }
    _linkPersonality.reserve(graph.linkCount());
    for (std::size_t l = 0; l < graph.linkCount(); ++l)
        _linkPersonality.push_back(drawLinkPersonality(l));

    _qubitPersonality.resize(
        static_cast<std::size_t>(graph.numQubits()));
    for (auto &q : _qubitPersonality) {
        q.t1Us = _rng.truncatedGauss(_params.t1MeanUs,
                                     _params.t1StdUs,
                                     _params.t1MinUs,
                                     _params.t1MaxUs);
        q.t2Us = std::min(
            _rng.truncatedGauss(_params.t2MeanUs, _params.t2StdUs,
                                _params.t2MinUs, _params.t2MaxUs),
            2.0 * q.t1Us);
        q.error1q = std::clamp(
            _params.err1qMedian *
                std::exp(_rng.gauss(0.0, _params.err1qSigmaLog)),
            _params.err1qMin, _params.err1qMax);
        q.readoutError = std::clamp(
            _params.readoutMedian *
                std::exp(_rng.gauss(0.0, _params.readoutSigmaLog)),
            _params.readoutMin, _params.readoutMax);
    }
}

double
SyntheticSource::drawLinkPersonality(std::size_t link)
{
    const double sigma = _params.err2qSigmaLog;
    const double driftVar =
        _params.dailyDriftSigmaLog * _params.dailyDriftSigmaLog;
    const double mu = std::log(_params.err2qMean) -
                      sigma * sigma / 2.0 - driftVar / 2.0 +
                      _linkBias[link];
    const double draw = _rng.logNormal(mu, sigma);
    return std::clamp(draw, _params.linkPersonalityMin,
                      _params.linkPersonalityMax);
}

Snapshot
SyntheticSource::nextCycle()
{
    Snapshot snap(_graph);

    for (std::size_t l = 0; l < _linkPersonality.size(); ++l) {
        // Rare recalibration jump: the link re-rolls its long-run
        // behaviour (the "opposite behavior on the other [day]"
        // events of Section 3.4).
        if (_rng.bernoulli(_params.jumpProbability))
            _linkPersonality[l] = drawLinkPersonality(l);
        const double observed =
            _linkPersonality[l] *
            std::exp(_rng.gauss(0.0, _params.dailyDriftSigmaLog));
        snap.setLinkError(l, std::clamp(observed, _params.err2qMin,
                                        _params.err2qMax));
    }

    for (int q = 0; q < _graph.numQubits(); ++q) {
        const QubitCalibration &base =
            _qubitPersonality[static_cast<std::size_t>(q)];
        QubitCalibration &out = snap.qubit(q);
        // Coherence times wander a little cycle to cycle.
        out.t1Us = std::clamp(
            base.t1Us * std::exp(_rng.gauss(0.0, 0.10)),
            _params.t1MinUs, _params.t1MaxUs);
        out.t2Us = std::min(
            std::clamp(base.t2Us * std::exp(_rng.gauss(0.0, 0.10)),
                       _params.t2MinUs, _params.t2MaxUs),
            2.0 * out.t1Us);
        out.error1q = std::clamp(
            base.error1q * std::exp(_rng.gauss(0.0, 0.25)),
            _params.err1qMin, _params.err1qMax);
        out.readoutError = std::clamp(
            base.readoutError * std::exp(_rng.gauss(0.0, 0.15)),
            _params.readoutMin, _params.readoutMax);
    }

    snap.validate();
    return snap;
}

CalibrationSeries
SyntheticSource::series(std::size_t cycles)
{
    require(cycles >= 1, "series needs at least one cycle");
    CalibrationSeries out;
    for (std::size_t i = 0; i < cycles; ++i)
        out.add(nextCycle());
    return out;
}

} // namespace vaq::calibration
