#include "workloads/workloads.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vaq::workloads
{

using circuit::Circuit;
using circuit::Qubit;

Circuit
bernsteinVazirani(int num_qubits, std::uint64_t secret)
{
    require(num_qubits >= 2, "bv needs a data qubit and an ancilla");
    const int data = num_qubits - 1;
    const Qubit ancilla = num_qubits - 1;

    Circuit c(num_qubits);
    // Oracle ancilla in |->.
    c.x(ancilla).h(ancilla);
    for (Qubit q = 0; q < data; ++q)
        c.h(q);
    // Phase-kickback oracle for the hidden string.
    for (Qubit q = 0; q < data; ++q) {
        if (secret & (1ULL << q))
            c.cx(q, ancilla);
    }
    for (Qubit q = 0; q < data; ++q)
        c.h(q);
    for (Qubit q = 0; q < data; ++q)
        c.measure(q);
    return c;
}

namespace
{

/** Controlled-phase(theta) via the {CX, RZ} decomposition. */
void
controlledPhase(Circuit &c, Qubit control, Qubit target,
                double theta)
{
    c.rz(control, theta / 2.0);
    c.cx(control, target);
    c.rz(target, -theta / 2.0);
    c.cx(control, target);
    c.rz(target, theta / 2.0);
}

/** Toffoli (CCX) via the standard 6-CX + T network. */
void
toffoli(Circuit &c, Qubit a, Qubit b, Qubit target)
{
    c.h(target);
    c.cx(b, target);
    c.tdg(target);
    c.cx(a, target);
    c.t(target);
    c.cx(b, target);
    c.tdg(target);
    c.cx(a, target);
    c.t(b);
    c.t(target);
    c.h(target);
    c.cx(a, b);
    c.t(a);
    c.tdg(b);
    c.cx(a, b);
}

} // namespace

Circuit
qft(int num_qubits, bool with_reversal)
{
    require(num_qubits >= 1, "qft needs at least one qubit");
    Circuit c(num_qubits);
    for (Qubit i = 0; i < num_qubits; ++i) {
        c.h(i);
        for (Qubit j = i + 1; j < num_qubits; ++j) {
            const double theta =
                M_PI / std::pow(2.0, static_cast<double>(j - i));
            controlledPhase(c, j, i, theta);
        }
    }
    if (with_reversal) {
        for (Qubit i = 0; i < num_qubits / 2; ++i)
            c.swap(i, num_qubits - 1 - i);
    }
    c.measureAll();
    return c;
}

Circuit
adder(int bits, std::uint64_t a_init, std::uint64_t b_init,
      bool carry_in)
{
    require(bits >= 1, "adder needs at least one bit");
    // Register layout: a[0..bits), b[0..bits), cin, cout.
    const int n = 2 * bits + 2;
    const Qubit cin = 2 * bits;
    const Qubit cout = 2 * bits + 1;
    auto qa = [bits](int i) {
        require(i >= 0 && i < bits, "a-register index");
        return static_cast<Qubit>(i);
    };
    auto qb = [bits](int i) {
        require(i >= 0 && i < bits, "b-register index");
        return static_cast<Qubit>(bits + i);
    };

    Circuit c(n);
    // Prepare inputs.
    for (int i = 0; i < bits; ++i) {
        if (a_init & (1ULL << i))
            c.x(qa(i));
        if (b_init & (1ULL << i))
            c.x(qb(i));
    }
    if (carry_in)
        c.x(cin);

    // Cuccaro MAJ chain: MAJ(c, b, a) = cx(a,b); cx(a,c); ccx(c,b,a)
    auto maj = [&](Qubit carry, Qubit sum, Qubit top) {
        c.cx(top, sum);
        c.cx(top, carry);
        toffoli(c, carry, sum, top);
    };
    // UMA(c, b, a) = ccx(c,b,a); cx(a,c); cx(c,b)
    auto uma = [&](Qubit carry, Qubit sum, Qubit top) {
        toffoli(c, carry, sum, top);
        c.cx(top, carry);
        c.cx(carry, sum);
    };

    maj(cin, qb(0), qa(0));
    for (int i = 1; i < bits; ++i)
        maj(qa(i - 1), qb(i), qa(i));
    c.cx(qa(bits - 1), cout);
    for (int i = bits - 1; i >= 1; --i)
        uma(qa(i - 1), qb(i), qa(i));
    uma(cin, qb(0), qa(0));

    // Read out the sum register and carry-out.
    for (int i = 0; i < bits; ++i)
        c.measure(qb(i));
    c.measure(cout);
    return c;
}

Circuit
ghz(int num_qubits)
{
    require(num_qubits >= 2, "ghz needs at least two qubits");
    Circuit c(num_qubits);
    c.h(0);
    for (Qubit q = 0; q + 1 < num_qubits; ++q)
        c.cx(q, q + 1);
    c.measureAll();
    return c;
}

namespace
{

/** Z controlled on every data qubit being |1> (n in {2, 3}). */
void
multiControlledZ(Circuit &c, int num_qubits)
{
    if (num_qubits == 2) {
        c.cz(0, 1);
        return;
    }
    // CCZ = H(2) CCX(0,1,2) H(2).
    c.h(2);
    toffoli(c, 0, 1, 2);
    c.h(2);
}

/** Phase-flip the marked basis state of the data register. */
void
groverOracle(Circuit &c, int num_qubits, std::uint64_t marked)
{
    for (int q = 0; q < num_qubits; ++q) {
        if (!(marked & (1ULL << q)))
            c.x(q);
    }
    multiControlledZ(c, num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        if (!(marked & (1ULL << q)))
            c.x(q);
    }
}

/** Inversion about the mean. */
void
groverDiffusion(Circuit &c, int num_qubits)
{
    for (int q = 0; q < num_qubits; ++q)
        c.h(q);
    for (int q = 0; q < num_qubits; ++q)
        c.x(q);
    multiControlledZ(c, num_qubits);
    for (int q = 0; q < num_qubits; ++q)
        c.x(q);
    for (int q = 0; q < num_qubits; ++q)
        c.h(q);
}

} // namespace

Circuit
grover(int num_qubits, std::uint64_t marked)
{
    require(num_qubits == 2 || num_qubits == 3,
            "grover supports 2 or 3 data qubits");
    require(marked < (1ULL << num_qubits),
            "marked item out of range");

    Circuit c(num_qubits);
    for (int q = 0; q < num_qubits; ++q)
        c.h(q);
    const int iterations = num_qubits == 2 ? 1 : 2;
    for (int i = 0; i < iterations; ++i) {
        groverOracle(c, num_qubits, marked);
        groverDiffusion(c, num_qubits);
    }
    c.measureAll();
    return c;
}

Circuit
deutschJozsa(int num_qubits, bool balanced, std::uint64_t mask)
{
    require(num_qubits >= 2, "dj needs a data qubit + ancilla");
    const int data = num_qubits - 1;
    const Qubit ancilla = num_qubits - 1;
    if (balanced) {
        require(mask != 0 && mask < (1ULL << data),
                "balanced oracle needs a nonzero in-range mask");
    }

    Circuit c(num_qubits);
    c.x(ancilla).h(ancilla);
    for (Qubit q = 0; q < data; ++q)
        c.h(q);
    if (balanced) {
        // Parity-of-mask oracle (a balanced function).
        for (Qubit q = 0; q < data; ++q) {
            if (mask & (1ULL << q))
                c.cx(q, ancilla);
        }
    }
    // Constant oracle: nothing to do (f = 0).
    for (Qubit q = 0; q < data; ++q)
        c.h(q);
    for (Qubit q = 0; q < data; ++q)
        c.measure(q);
    return c;
}

Circuit
triSwap()
{
    Circuit c(3);
    c.x(0);
    c.swap(0, 1);
    c.swap(1, 2);
    c.swap(0, 1);
    // |1> travelled 0 -> 1 -> 2; expect outcome 100 (bit 2 set).
    c.measureAll();
    return c;
}

Circuit
randomCnot(const topology::CouplingGraph &machine, int num_inst,
           int min_hops, int max_hops, std::uint64_t seed)
{
    require(num_inst >= 1, "need at least one instruction");
    require(min_hops >= 1 && max_hops >= min_hops,
            "bad hop band");

    // Collect all pairs within the hop band under identity layout.
    const auto &dist = machine.hopDistances();
    std::vector<std::pair<Qubit, Qubit>> pairs;
    for (int a = 0; a < machine.numQubits(); ++a) {
        for (int b = a + 1; b < machine.numQubits(); ++b) {
            const int d = dist[static_cast<std::size_t>(a)]
                              [static_cast<std::size_t>(b)];
            if (d >= min_hops && d <= max_hops)
                pairs.emplace_back(a, b);
        }
    }
    require(!pairs.empty(),
            "no qubit pair within the requested hop band on " +
                machine.name());

    // "Repeated randomized CNOTs" (Section 4.2): draw a small pool
    // of pairs once, then sample instructions from the pool, so
    // communication patterns repeat and locality-aware placement has
    // something to exploit.
    Rng rng(seed);
    std::vector<std::pair<Qubit, Qubit>> pool;
    const std::size_t poolSize =
        std::min<std::size_t>(pairs.size(),
                              static_cast<std::size_t>(
                                  machine.numQubits()));
    rng.shuffle(pairs);
    pool.assign(pairs.begin(),
                pairs.begin() + static_cast<long>(poolSize));

    Circuit c(machine.numQubits());
    for (int i = 0; i < num_inst; ++i) {
        if (rng.bernoulli(0.2)) {
            c.h(static_cast<Qubit>(rng.uniformInt(
                static_cast<std::uint64_t>(machine.numQubits()))));
        } else {
            const auto &[a, b] = rng.choice(pool);
            if (rng.bernoulli(0.5))
                c.cx(a, b);
            else
                c.cx(b, a);
        }
    }
    c.measureAll();
    return c;
}

std::vector<Workload>
standardSuite(const topology::CouplingGraph &machine)
{
    std::vector<Workload> suite;
    suite.push_back({"alu", adder(4, 0b1011, 0b0110, false)});
    suite.push_back({"bv-16", bernsteinVazirani(16)});
    suite.push_back({"bv-20", bernsteinVazirani(20)});
    suite.push_back({"qft-12", qft(12)});
    suite.push_back({"qft-14", qft(14)});
    suite.push_back(
        {"rnd-SD", randomCnot(machine, 100, 1, 2, 1001)});
    suite.push_back(
        {"rnd-LD", randomCnot(machine, 100, 3, 6, 2002)});
    return suite;
}

std::vector<Workload>
tenQubitSuite()
{
    std::vector<Workload> suite;
    suite.push_back({"alu-10", adder(4, 0b1011, 0b0110, false)});
    suite.push_back({"bv-10", bernsteinVazirani(10)});
    suite.push_back({"qft-10", qft(10)});
    return suite;
}

std::vector<Workload>
q5Suite()
{
    std::vector<Workload> suite;
    suite.push_back({"bv-3", bernsteinVazirani(3)});
    suite.push_back({"bv-4", bernsteinVazirani(4)});
    suite.push_back({"TriSwap", triSwap()});
    suite.push_back({"GHZ-3", ghz(3)});
    return suite;
}

} // namespace vaq::workloads
