/**
 * @file
 * NISQ benchmark generators (Table 1 of the paper, plus the IBM-Q5
 * kernels of Table 3 and the 10-qubit variants of Section 8).
 *
 * Each generator returns a *logical* circuit: program qubits are
 * numbered 0..n-1 with no connectivity constraints. Mapping them
 * onto a machine is the job of the vaq_core policies.
 */
#ifndef VAQ_WORKLOADS_WORKLOADS_HPP
#define VAQ_WORKLOADS_WORKLOADS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::workloads
{

/**
 * Bernstein-Vazirani over `num_qubits` qubits (num_qubits-1 data
 * qubits + 1 oracle ancilla, the last qubit). The hidden string
 * defaults to all-ones, the maximally entangling case the paper uses
 * ("one qubit entangled with [the] rest").
 */
circuit::Circuit bernsteinVazirani(int num_qubits,
                                   std::uint64_t secret = ~0ULL);

/**
 * Quantum Fourier Transform on n qubits. Controlled-phase gates are
 * decomposed into {CX, RZ} (2 CX each) since NISQ machines expose
 * CX natively; the bit-reversal SWAP network is optional.
 */
circuit::Circuit qft(int num_qubits, bool with_reversal = false);

/**
 * Ripple-carry quantum adder (Cuccaro-style) computing b += a over
 * two `bits`-wide registers with carry-in/carry-out: uses
 * 2*bits + 2 qubits, so bits = 4 gives the paper's 10-qubit "alu".
 * Toffolis are decomposed into the standard 6-CX network. Inputs are
 * prepared as |a> = a_init, |b> = b_init (little-endian).
 */
circuit::Circuit adder(int bits, std::uint64_t a_init,
                       std::uint64_t b_init, bool carry_in = false);

/** GHZ state preparation + full measurement (Table 3's GHZ-3). */
circuit::Circuit ghz(int num_qubits);

/**
 * Grover search over `num_qubits` in {2, 3} data qubits for the
 * `marked` item, with the optimal iteration count (1 for n=2,
 * 2 for n=3). n=2 finds the item with certainty; n=3 with
 * probability ~0.945.
 */
circuit::Circuit grover(int num_qubits, std::uint64_t marked);

/**
 * Deutsch-Jozsa over num_qubits-1 data qubits + 1 ancilla. With
 * `balanced` false the oracle is constant and the output is all
 * zeros; with `balanced` true the oracle is the parity of
 * `mask` (must be nonzero) and the output is `mask` itself.
 */
circuit::Circuit deutschJozsa(int num_qubits, bool balanced,
                              std::uint64_t mask = 1);

/**
 * TriSwap kernel (Table 3): prepare |1> on qubit 0 and cycle the
 * three states with a SWAP triangle, verifying movement fidelity.
 */
circuit::Circuit triSwap();

/**
 * Random CNOT benchmark (rnd-SD / rnd-LD). Emits `num_inst`
 * instructions; each is (with 20 % probability) a random H, else a
 * CNOT between a random qubit pair whose hop distance on `machine`
 * under the identity layout lies in [min_hops, max_hops].
 *
 * @throws VaqError when no qubit pair satisfies the hop band.
 */
circuit::Circuit randomCnot(const topology::CouplingGraph &machine,
                            int num_inst, int min_hops,
                            int max_hops, std::uint64_t seed);

/** A named benchmark circuit. */
struct Workload
{
    std::string name;
    circuit::Circuit circuit;
};

/**
 * The paper's seven-entry benchmark suite (Table 1): alu, bv-16,
 * bv-20, qft-12, qft-14, rnd-SD, rnd-LD. Random benchmarks draw
 * their communication pattern from `machine` (IBM-Q20 in the paper).
 */
std::vector<Workload>
standardSuite(const topology::CouplingGraph &machine);

/** 10-qubit variants used by the partitioning study (Section 8):
 *  alu-10, bv-10, qft-10. */
std::vector<Workload> tenQubitSuite();

/** IBM-Q5 kernels of Table 3: bv-3, bv-4, TriSwap, GHZ-3. */
std::vector<Workload> q5Suite();

} // namespace vaq::workloads

#endif // VAQ_WORKLOADS_WORKLOADS_HPP
