#include "sim/characterize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace vaq::sim
{

using circuit::Circuit;

double
fitDecayRate(const std::vector<int> &depths,
             const std::vector<double> &survival, double floor)
{
    require(depths.size() == survival.size() && depths.size() >= 2,
            "decay fit needs >= 2 points");
    require(floor >= 0.0 && floor < 1.0, "bad decay floor");

    // Linear regression of y = ln(S - floor) against d (the
    // intercept absorbs state-preparation and measurement error;
    // the floor is the uniform-outcome equilibrium the sequence
    // saturates to).
    double sumD = 0.0, sumY = 0.0, sumDD = 0.0, sumDY = 0.0;
    const auto n = static_cast<double>(depths.size());
    for (std::size_t i = 0; i < depths.size(); ++i) {
        const double d = static_cast<double>(depths[i]);
        const double y =
            std::log(std::max(survival[i] - floor, 1e-6));
        sumD += d;
        sumY += y;
        sumDD += d * d;
        sumDY += d * y;
    }
    const double denom = n * sumDD - sumD * sumD;
    VAQ_ASSERT(denom > 0.0, "degenerate depth set");
    const double slope = (n * sumDY - sumD * sumY) / denom;
    const double lambda = std::max(0.0, -slope);
    return 1.0 - std::exp(-lambda);
}

namespace
{

/** Survival of the all-zeros outcome on the measured qubits. */
double
survivalOfZeros(const ShotCounts &counts)
{
    const auto it = counts.counts.find(0);
    const double zeros =
        it == counts.counts.end()
            ? 0.0
            : static_cast<double>(it->second);
    return zeros / static_cast<double>(counts.shots);
}

/**
 * Fit the decay using only depths that have not saturated into the
 * equilibrium floor (points within sampling noise of the floor
 * carry no slope information and wreck the regression for weak
 * links). Falls back to the two shallowest depths when saturation
 * is immediate.
 */
double
fitUnsaturated(const std::vector<int> &depths,
               const std::vector<double> &survival, double floor)
{
    std::vector<int> d;
    std::vector<double> s;
    for (std::size_t i = 0; i < depths.size(); ++i) {
        if (survival[i] - floor >= 0.04) {
            d.push_back(depths[i]);
            s.push_back(survival[i]);
        }
    }
    if (d.size() < 2) {
        d.assign(depths.begin(), depths.begin() + 2);
        s.assign(survival.begin(), survival.begin() + 2);
    }
    return fitDecayRate(d, s, floor);
}

} // namespace

calibration::Snapshot
characterizeMachine(const topology::CouplingGraph &graph,
                    const Executor &run,
                    const CharacterizeOptions &options)
{
    require(!options.depths.empty(), "need at least one depth");
    for (int d : options.depths)
        require(d >= 2 && d % 2 == 0, "depths must be even >= 2");
    require(options.visibility > 0.0 && options.visibility <= 1.0,
            "visibility must be in (0, 1]");

    calibration::Snapshot estimate(graph);
    for (int q = 0; q < graph.numQubits(); ++q) {
        estimate.qubit(q).t1Us = options.assumeT1Us;
        estimate.qubit(q).t2Us = options.assumeT2Us;
    }

    // --- Readout: measure the fresh |0...0> state. ---
    {
        Circuit probe(graph.numQubits());
        probe.measureAll();
        const ShotCounts counts = run(probe);
        for (int q = 0; q < graph.numQubits(); ++q) {
            std::size_t flips = 0;
            for (const auto &[outcome, count] : counts.counts) {
                if (outcome & (1ULL << q))
                    flips += count;
            }
            estimate.qubit(q).readoutError =
                static_cast<double>(flips) /
                static_cast<double>(counts.shots);
        }
    }

    // --- Single-qubit gate error: X-pair decay per qubit. ---
    for (int q = 0; q < graph.numQubits(); ++q) {
        std::vector<double> survival;
        for (int depth : options.depths) {
            Circuit seq(graph.numQubits());
            for (int i = 0; i < depth; ++i)
                seq.x(q);
            seq.measure(q);
            survival.push_back(survivalOfZeros(run(seq)));
        }
        // RB relation: per-gate visible error r = (1-alpha) *
        // (1 - 1/2^m) with m = 1 measured qubit, then divide by
        // the 2/3 visibility of 1q Paulis (X and Y flip, Z does
        // not).
        const double oneMinusAlpha =
            fitUnsaturated(options.depths, survival, 0.5);
        estimate.qubit(q).error1q = std::clamp(
            oneMinusAlpha * 0.5 / (2.0 / 3.0), 0.0, 0.5);
    }

    // --- Two-qubit gate error: repeated-CX decay per link. ---
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const topology::Link &link = graph.links()[l];
        std::vector<double> survival;
        for (int depth : options.depths) {
            Circuit seq(graph.numQubits());
            for (int i = 0; i < depth; ++i)
                seq.cx(link.a, link.b);
            seq.measure(link.a);
            seq.measure(link.b);
            survival.push_back(survivalOfZeros(run(seq)));
        }
        // r = (1-alpha) * (1 - 1/2^m) with m = 2 measured
        // qubits, divided by the channel's visibility.
        const double oneMinusAlpha =
            fitUnsaturated(options.depths, survival, 0.25);
        estimate.setLinkError(
            l, std::clamp(oneMinusAlpha * 0.75 /
                              options.visibility,
                          0.0, 0.5));
    }

    estimate.validate();
    return estimate;
}

} // namespace vaq::sim
