/**
 * @file
 * Precompiled per-trial noise schedule shared by the outcome engines.
 *
 * TrajectorySimulator's error model is defined by the order in which
 * its shot loop consumes randomness: per unitary gate an operational
 * Bernoulli (then 1-2 random Paulis), a coherence Bernoulli (then a
 * random Pauli on the first operand), and one crosstalk Bernoulli
 * per machine-neighbour spectator of a two-qubit gate; after the
 * walk, a sample draw and per-measured-qubit readout flips. The
 * Pauli-frame fast path (sim/pauli_frame.hpp) must replay trials
 * from the *same* RNG stream bit-identically, so that draw order is
 * reified here once — as a NoiseScript compiled from (circuit,
 * model, options) — and both engines run it through the templated
 * samplers below. The engines differ only in how an injected Pauli
 * is applied (dense gate vs. frame XOR); they cannot drift apart in
 * what is injected or when.
 */
#ifndef VAQ_SIM_NOISE_SCRIPT_HPP
#define VAQ_SIM_NOISE_SCRIPT_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/noise_model.hpp"
#include "sim/trajectory_sim.hpp"

namespace vaq::sim
{

/** A non-identity Pauli injected as noise. */
enum class PauliKind : std::uint8_t
{
    X,
    Y,
    Z,
};

/** Gate kind applying the Pauli on the dense path. */
circuit::GateKind pauliGateKind(PauliKind pauli);

/**
 * Uniform non-identity Pauli — TrajectorySimulator's historical
 * draw: one uniformInt(3) mapping 0/1/2 to X/Y/Z.
 */
inline PauliKind
samplePauliKind(Rng &rng)
{
    const auto pick = rng.uniformInt(std::uint64_t{3});
    if (pick == 1)
        return PauliKind::Y;
    if (pick == 2)
        return PauliKind::Z;
    return PauliKind::X;
}

/** Noise schedule of one unitary gate. */
struct ScriptOp
{
    /** Index of the gate in the source circuit's gate list. */
    std::size_t gateIndex = 0;
    circuit::Qubit q0 = circuit::kNoQubit;
    /** Second operand; kNoQubit for one-qubit gates. */
    circuit::Qubit q1 = circuit::kNoQubit;
    /** Operational (gate) error probability. */
    double opProb = 0.0;
    /** Per-op coherence error probability. */
    double cohProb = 0.0;
    /** Slice [ctBegin, ctEnd) of NoiseScript::crosstalk. */
    std::size_t ctBegin = 0;
    std::size_t ctEnd = 0;
};

/** One spectator exposed to crosstalk from a two-qubit gate. A
 *  zero-probability event still consumes one Bernoulli draw, exactly
 *  as the historical loop did. */
struct CrosstalkEvent
{
    circuit::Qubit spectator = circuit::kNoQubit;
    double prob = 0.0;
};

/** One measured qubit's readout bit-flip (ascending qubit order). */
struct ReadoutEvent
{
    circuit::Qubit qubit = circuit::kNoQubit;
    double prob = 0.0;
};

/** The full precompiled trial schedule of one (circuit, model,
 *  options) triple. */
struct NoiseScript
{
    /** One entry per unitary gate, circuit order. */
    std::vector<ScriptOp> ops;
    std::vector<CrosstalkEvent> crosstalk;
    std::vector<ReadoutEvent> readout;
    /** OR of (1 << q) over measured qubits. */
    std::uint64_t measuredMask = 0;
    /** Whether trials flip readout bits at all. */
    bool readoutNoise = true;

    /** Precompile the schedule. Probabilities are evaluated once;
     *  they are pure functions of (model, gate). */
    static NoiseScript compile(const circuit::Circuit &physical,
                               const NoiseModel &model,
                               const TrajectoryOptions &options);
};

/**
 * Draw one gate's noise events from `rng` in the canonical order,
 * calling apply(qubit, PauliKind) for every injected Pauli.
 */
template <typename Apply>
void
sampleOpNoise(const ScriptOp &op, const NoiseScript &script,
              Rng &rng, Apply &&apply)
{
    // Operational error: random non-identity Pauli on the operand
    // set (depolarizing-style); for two-qubit gates the second
    // operand is hit independently with probability 3/4, so at
    // least one operand is guaranteed a non-identity Pauli.
    if (rng.bernoulli(op.opProb)) {
        apply(op.q0, samplePauliKind(rng));
        if (op.q1 != circuit::kNoQubit && rng.bernoulli(0.75))
            apply(op.q1, samplePauliKind(rng));
    }
    // Decoherence during the gate.
    if (rng.bernoulli(op.cohProb))
        apply(op.q0, samplePauliKind(rng));
    // Crosstalk: spectators next to a firing two-qubit gate take
    // collateral damage.
    for (std::size_t i = op.ctBegin; i < op.ctEnd; ++i) {
        if (rng.bernoulli(script.crosstalk[i].prob))
            apply(script.crosstalk[i].spectator,
                  samplePauliKind(rng));
    }
}

/** Flip the outcome's measured bits per the readout error model,
 *  consuming one Bernoulli per measured qubit (ascending order). */
std::uint64_t applyReadoutNoise(const NoiseScript &script,
                                std::uint64_t outcome, Rng &rng);

/**
 * One dense-engine trial: fresh |0..0> state, gates interleaved with
 * sampled Pauli injections, a sample() draw, readout flips. Returns
 * the masked outcome. This is TrajectorySimulator's shot body, and
 * the reference the frame path is validated against per trial.
 */
std::uint64_t denseTrajectoryShot(const circuit::Circuit &physical,
                                  const NoiseScript &script,
                                  Rng &rng);

/** Measured-qubit mask of a circuit. */
std::uint64_t measuredMaskOf(const circuit::Circuit &circuit);

} // namespace vaq::sim

#endif // VAQ_SIM_NOISE_SCRIPT_HPP
