/**
 * @file
 * ASAP timing schedule of a physical circuit.
 *
 * Gives each operation a start time assuming unlimited classical
 * control parallelism but exclusive qubit use. Consumed by the
 * idle-aware coherence mode and by the STPT (successful trials per
 * unit time) metric of the partitioning study (Section 8), where the
 * trial rate is 1 / circuit duration.
 */
#ifndef VAQ_SIM_SCHEDULE_HPP
#define VAQ_SIM_SCHEDULE_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "sim/noise_model.hpp"

namespace vaq::sim
{

/** Timing of one scheduled operation. */
struct ScheduledOp
{
    std::size_t gateIndex; ///< index into Circuit::gates()
    double startNs;
    double endNs;
};

/** Complete schedule of a circuit. */
struct Schedule
{
    std::vector<ScheduledOp> ops; ///< program order
    double durationNs = 0.0;      ///< makespan

    /**
     * Total idle time of `qubit` between its first and last
     * operation (0 when it has fewer than two operations).
     */
    double idleNs(const circuit::Circuit &circuit, int qubit) const;
};

/**
 * ASAP-schedule `circuit` with the durations of `model`. Barriers
 * synchronize all qubits and take zero time.
 */
Schedule scheduleCircuit(const circuit::Circuit &circuit,
                         const NoiseModel &model);

} // namespace vaq::sim

#endif // VAQ_SIM_SCHEDULE_HPP
