#include "sim/density_matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vaq::sim
{

using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

namespace
{

constexpr double kInvSqrt2 = 0.7071067811865475244;

/** 2x2 matrix for each supported one-qubit gate. */
void
oneQubitMatrix(const Gate &gate,
               std::complex<double> m[2][2])
{
    using C = std::complex<double>;
    switch (gate.kind) {
      case GateKind::I:
        m[0][0] = 1; m[0][1] = 0; m[1][0] = 0; m[1][1] = 1;
        return;
      case GateKind::X:
        m[0][0] = 0; m[0][1] = 1; m[1][0] = 1; m[1][1] = 0;
        return;
      case GateKind::Y:
        m[0][0] = 0; m[0][1] = C(0, -1);
        m[1][0] = C(0, 1); m[1][1] = 0;
        return;
      case GateKind::Z:
        m[0][0] = 1; m[0][1] = 0; m[1][0] = 0; m[1][1] = -1;
        return;
      case GateKind::H:
        m[0][0] = kInvSqrt2; m[0][1] = kInvSqrt2;
        m[1][0] = kInvSqrt2; m[1][1] = -kInvSqrt2;
        return;
      case GateKind::S:
        m[0][0] = 1; m[0][1] = 0; m[1][0] = 0; m[1][1] = C(0, 1);
        return;
      case GateKind::Sdg:
        m[0][0] = 1; m[0][1] = 0; m[1][0] = 0;
        m[1][1] = C(0, -1);
        return;
      case GateKind::T:
        m[0][0] = 1; m[0][1] = 0; m[1][0] = 0;
        m[1][1] = std::polar(1.0, M_PI / 4.0);
        return;
      case GateKind::Tdg:
        m[0][0] = 1; m[0][1] = 0; m[1][0] = 0;
        m[1][1] = std::polar(1.0, -M_PI / 4.0);
        return;
      case GateKind::RX: {
        const double h = gate.param / 2.0;
        m[0][0] = std::cos(h); m[0][1] = C(0, -std::sin(h));
        m[1][0] = C(0, -std::sin(h)); m[1][1] = std::cos(h);
        return;
      }
      case GateKind::RY: {
        const double h = gate.param / 2.0;
        m[0][0] = std::cos(h); m[0][1] = -std::sin(h);
        m[1][0] = std::sin(h); m[1][1] = std::cos(h);
        return;
      }
      case GateKind::RZ: {
        const double h = gate.param / 2.0;
        m[0][0] = std::polar(1.0, -h); m[0][1] = 0;
        m[1][0] = 0; m[1][1] = std::polar(1.0, h);
        return;
      }
      case GateKind::U3: {
        const double h = gate.param / 2.0;
        m[0][0] = std::cos(h);
        m[0][1] = -std::polar(1.0, gate.param3) * std::sin(h);
        m[1][0] = std::polar(1.0, gate.param2) * std::sin(h);
        m[1][1] = std::polar(1.0, gate.param2 + gate.param3) *
                  std::cos(h);
        return;
      }
      default:
        VAQ_ASSERT(false, "not a one-qubit unitary");
    }
}

} // namespace

DensityMatrix::DensityMatrix(int num_qubits)
    : _numQubits(num_qubits)
{
    require(num_qubits >= 1 && num_qubits <= 10,
            "density matrix supports 1..10 qubits");
    const std::uint64_t dim = 1ULL << num_qubits;
    _rho.assign(dim * dim, Complex(0.0, 0.0));
    _rho[0] = Complex(1.0, 0.0); // |0..0><0..0|
}

DensityMatrix::Complex
DensityMatrix::entry(std::uint64_t row, std::uint64_t col) const
{
    const std::uint64_t dim = dimension();
    require(row < dim && col < dim, "matrix index out of range");
    return _rho[row * dim + col];
}

double
DensityMatrix::trace() const
{
    const std::uint64_t dim = dimension();
    double tr = 0.0;
    for (std::uint64_t i = 0; i < dim; ++i)
        tr += _rho[i * dim + i].real();
    return tr;
}

void
DensityMatrix::applyUnitary(const Gate &gate)
{
    require(gate.isUnitary(),
            "cannot apply measure/barrier to a density matrix");
    const std::uint64_t dim = dimension();

    if (!gate.isTwoQubit()) {
        Complex m[2][2];
        oneQubitMatrix(gate, m);
        const std::uint64_t bit = 1ULL << gate.q0;

        // Rows: rho -> M rho.
        for (std::uint64_t r = 0; r < dim; ++r) {
            if (r & bit)
                continue;
            for (std::uint64_t c = 0; c < dim; ++c) {
                const Complex a = _rho[r * dim + c];
                const Complex b = _rho[(r | bit) * dim + c];
                _rho[r * dim + c] = m[0][0] * a + m[0][1] * b;
                _rho[(r | bit) * dim + c] =
                    m[1][0] * a + m[1][1] * b;
            }
        }
        // Columns: rho -> rho M^dagger.
        for (std::uint64_t c = 0; c < dim; ++c) {
            if (c & bit)
                continue;
            for (std::uint64_t r = 0; r < dim; ++r) {
                const Complex a = _rho[r * dim + c];
                const Complex b = _rho[r * dim + (c | bit)];
                _rho[r * dim + c] = std::conj(m[0][0]) * a +
                                    std::conj(m[0][1]) * b;
                _rho[r * dim + (c | bit)] =
                    std::conj(m[1][0]) * a +
                    std::conj(m[1][1]) * b;
            }
        }
        return;
    }

    // Two-qubit gates are index permutations / phases.
    const std::uint64_t b0 = 1ULL << gate.q0;
    const std::uint64_t b1 = 1ULL << gate.q1;
    auto mapIndex = [&](std::uint64_t i) -> std::uint64_t {
        switch (gate.kind) {
          case GateKind::CX:
            return (i & b0) ? (i ^ b1) : i;
          case GateKind::SWAP: {
            const bool s0 = i & b0, s1 = i & b1;
            if (s0 == s1)
                return i;
            return i ^ b0 ^ b1;
          }
          default:
            return i; // CZ: identity permutation
        }
    };
    auto phase = [&](std::uint64_t i) -> double {
        if (gate.kind == GateKind::CZ && (i & b0) && (i & b1))
            return -1.0;
        return 1.0;
    };

    std::vector<Complex> next(dim * dim);
    for (std::uint64_t r = 0; r < dim; ++r) {
        const std::uint64_t mr = mapIndex(r);
        const double pr = phase(r);
        for (std::uint64_t c = 0; c < dim; ++c) {
            next[mr * dim + mapIndex(c)] =
                pr * phase(c) * _rho[r * dim + c];
        }
    }
    _rho = std::move(next);
}

void
DensityMatrix::mixUniformPauli(Qubit q, double weight)
{
    if (weight <= 0.0)
        return;
    const std::vector<Complex> original = _rho;
    std::vector<Complex> accum(_rho.size());
    for (std::size_t i = 0; i < accum.size(); ++i)
        accum[i] = (1.0 - weight) * original[i];
    for (GateKind pauli :
         {GateKind::X, GateKind::Y, GateKind::Z}) {
        _rho = original;
        applyUnitary(Gate::oneQubit(pauli, q));
        for (std::size_t i = 0; i < accum.size(); ++i)
            accum[i] += (weight / 3.0) * _rho[i];
    }
    _rho = std::move(accum);
}

void
DensityMatrix::applyNoisyGate(const Gate &gate,
                              const NoiseModel &model)
{
    if (!gate.isUnitary())
        return;
    applyUnitary(gate);

    const double e = model.opErrorProb(gate);
    if (e > 0.0) {
        if (gate.isTwoQubit()) {
            // The trajectory channel: a Pauli always hits the
            // first operand; with probability 3/4 another hits
            // the second. Build the mixture explicitly.
            const std::vector<Complex> clean = _rho;
            // D_q0 applied with weight 1 = pure average.
            mixUniformPauli(gate.q0, 1.0);
            const std::vector<Complex> afterQ0 = _rho;
            // 3/4 branch adds D_q1 on top.
            mixUniformPauli(gate.q1, 1.0);
            for (std::size_t i = 0; i < _rho.size(); ++i) {
                const Complex damaged =
                    0.25 * afterQ0[i] + 0.75 * _rho[i];
                _rho[i] = (1.0 - e) * clean[i] + e * damaged;
            }
        } else {
            mixUniformPauli(gate.q0, e);
        }
    }

    const double c = model.coherenceErrorProb(gate);
    if (c > 0.0)
        mixUniformPauli(gate.q0, c);
}

void
DensityMatrix::runNoisy(const circuit::Circuit &circuit,
                        const NoiseModel &model)
{
    require(circuit.numQubits() <= _numQubits,
            "circuit wider than density matrix");
    for (const Gate &gate : circuit.gates())
        applyNoisyGate(gate, model);
}

std::vector<double>
DensityMatrix::diagonal() const
{
    const std::uint64_t dim = dimension();
    std::vector<double> diag(dim);
    for (std::uint64_t i = 0; i < dim; ++i)
        diag[i] = _rho[i * dim + i].real();
    return diag;
}

std::map<std::uint64_t, double>
DensityMatrix::outcomeDistribution(const circuit::Circuit &circuit,
                                   const NoiseModel &model,
                                   bool readout_noise) const
{
    std::uint64_t mask = 0;
    for (const Gate &g : circuit.gates()) {
        if (g.kind == GateKind::MEASURE)
            mask |= 1ULL << g.q0;
    }
    require(mask != 0, "circuit measures no qubits");

    const std::uint64_t dim = dimension();
    std::vector<double> probs(dim, 0.0);
    const std::vector<double> diag = diagonal();
    for (std::uint64_t i = 0; i < dim; ++i)
        probs[i & mask] += diag[i];

    if (readout_noise) {
        for (int q = 0; q < _numQubits; ++q) {
            const std::uint64_t bit = 1ULL << q;
            if (!(mask & bit))
                continue;
            const double r =
                model.snapshot().qubit(q).readoutError;
            for (std::uint64_t i = 0; i < dim; ++i) {
                if (i & bit)
                    continue;
                const double p0 = probs[i];
                const double p1 = probs[i | bit];
                probs[i] = (1.0 - r) * p0 + r * p1;
                probs[i | bit] = r * p0 + (1.0 - r) * p1;
            }
        }
    }

    std::map<std::uint64_t, double> out;
    for (std::uint64_t i = 0; i < dim; ++i) {
        if (probs[i] > 1e-15)
            out[i] = probs[i];
    }
    return out;
}

double
totalVariation(const std::map<std::uint64_t, double> &a,
               const std::map<std::uint64_t, double> &b)
{
    double total = 0.0;
    for (const auto &[k, v] : a) {
        const auto it = b.find(k);
        total += std::abs(v - (it == b.end() ? 0.0 : it->second));
    }
    for (const auto &[k, v] : b) {
        if (a.find(k) == a.end())
            total += v;
    }
    return total / 2.0;
}

} // namespace vaq::sim
