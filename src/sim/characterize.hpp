/**
 * @file
 * Machine characterization by circuit execution.
 *
 * The paper consumes IBM's published calibration reports, which IBM
 * produces by running randomized-benchmarking-style sequences on the
 * hardware (Section 2.2 cites Knill et al.). This module closes that
 * loop for the simulated machines: it estimates a calibration
 * Snapshot for a machine it can only *execute circuits on* — no
 * access to the underlying error parameters — using decay-curve
 * fits:
 *
 *  - readout error per qubit: measure |0...0> directly; the flip
 *    rate of each bit estimates its readout error,
 *  - two-qubit error per link: run sequences of d repeated CX gates
 *    (even d composes to identity) and fit the |00> survival decay
 *    S(d) = A * exp(-lambda * d); the per-gate disturbance
 *    1 - exp(-lambda) divided by the visibility constant kappa
 *    (the fraction of injected Paulis that perturb a computational
 *    state; 5/6 for the trajectory model's error channel) estimates
 *    the gate error,
 *  - single-qubit error per qubit: same with X-X pairs.
 *
 * The estimated snapshot can then drive the variation-aware
 * policies, demonstrating the full paper workflow: characterize ->
 * compile -> execute.
 */
#ifndef VAQ_SIM_CHARACTERIZE_HPP
#define VAQ_SIM_CHARACTERIZE_HPP

#include <functional>
#include <vector>

#include "calibration/snapshot.hpp"
#include "sim/trajectory_sim.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::sim
{

/** A machine we can only run circuits on. */
using Executor = std::function<ShotCounts(const circuit::Circuit &)>;

/** Knobs for the characterization run. */
struct CharacterizeOptions
{
    /** Shots per circuit (IBM used ~1000 per RB point). */
    std::size_t shots = 2048;
    /** Sequence depths for the decay fit (even, increasing). */
    std::vector<int> depths = {2, 4, 8, 16, 32};
    /**
     * Visibility of an injected error on a computational basis
     * state: fraction of error events that perturb the measured
     * bits. 5/6 matches TrajectorySimulator's channel (uniform
     * Paulis on the first operand, 75 % chance of a
     * second-operand Pauli).
     */
    double visibility = 5.0 / 6.0;
    /** Assumed coherence times copied into the estimate (decay
     *  sequences cannot separate them from gate error without
     *  delay instructions). */
    double assumeT1Us = 80.0;
    double assumeT2Us = 42.0;
};

/**
 * Estimate the machine's calibration by executing characterization
 * circuits through `run`.
 *
 * @param graph The machine's topology (public knowledge).
 * @param run Executes a circuit and returns measured counts.
 * @param options Tuning knobs.
 * @return A Snapshot with estimated readout, 1q and 2q errors.
 */
calibration::Snapshot
characterizeMachine(const topology::CouplingGraph &graph,
                    const Executor &run,
                    const CharacterizeOptions &options = {});

/**
 * Randomized-benchmarking-style decay fit: least squares of
 * ln(S - floor) = ln A - lambda * d, where `floor` is the
 * equilibrium survival the sequence saturates to (1/2^m for m
 * measured qubits; 0 for a pure exponential).
 * @return per-step decay 1 - exp(-lambda) = 1 - alpha, in [0, 1).
 */
double fitDecayRate(const std::vector<int> &depths,
                    const std::vector<double> &survival,
                    double floor = 0.0);

} // namespace vaq::sim

#endif // VAQ_SIM_CHARACTERIZE_HPP
