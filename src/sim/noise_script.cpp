#include "sim/noise_script.hpp"

#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace vaq::sim
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

circuit::GateKind
pauliGateKind(PauliKind pauli)
{
    switch (pauli) {
      case PauliKind::X:
        return GateKind::X;
      case PauliKind::Y:
        return GateKind::Y;
      case PauliKind::Z:
        return GateKind::Z;
    }
    VAQ_ASSERT(false, "unhandled PauliKind");
    return GateKind::X;
}

std::uint64_t
measuredMaskOf(const Circuit &circuit)
{
    std::uint64_t mask = 0;
    for (const Gate &g : circuit.gates()) {
        if (g.kind == GateKind::MEASURE)
            mask |= 1ULL << g.q0;
    }
    return mask;
}

NoiseScript
NoiseScript::compile(const Circuit &physical,
                     const NoiseModel &model,
                     const TrajectoryOptions &options)
{
    require(options.crosstalk >= 0.0 && options.crosstalk <= 1.0,
            "crosstalk must be in [0, 1]");

    NoiseScript script;
    script.readoutNoise = options.readoutNoise;
    script.measuredMask = measuredMaskOf(physical);

    const auto &gates = physical.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (g.kind == GateKind::BARRIER ||
            g.kind == GateKind::MEASURE) {
            continue;
        }
        ScriptOp op;
        op.gateIndex = i;
        op.q0 = g.q0;
        op.q1 = g.isTwoQubit() ? g.q1 : circuit::kNoQubit;
        op.opProb = model.opErrorProb(g);
        op.cohProb = model.coherenceErrorProb(g);
        op.ctBegin = script.crosstalk.size();
        // Spectator enumeration order is part of the RNG stream
        // contract: each operand's machine neighbours in adjacency
        // order, operands skipped, qubits beyond the circuit's
        // width skipped.
        if (options.crosstalk > 0.0 && g.isTwoQubit()) {
            const double p = options.crosstalk * op.opProb;
            for (Qubit operand : {g.q0, g.q1}) {
                for (Qubit spectator :
                     model.graph().neighbors(operand)) {
                    if (spectator == g.q0 || spectator == g.q1 ||
                        spectator >= physical.numQubits()) {
                        continue;
                    }
                    script.crosstalk.push_back({spectator, p});
                }
            }
        }
        op.ctEnd = script.crosstalk.size();
        script.ops.push_back(op);
    }

    for (int q = 0; q < physical.numQubits(); ++q) {
        if (script.measuredMask & (1ULL << q)) {
            script.readout.push_back(
                {q, model.snapshot().qubit(q).readoutError});
        }
    }
    return script;
}

std::uint64_t
applyReadoutNoise(const NoiseScript &script, std::uint64_t outcome,
                  Rng &rng)
{
    if (!script.readoutNoise)
        return outcome;
    for (const ReadoutEvent &event : script.readout) {
        if (rng.bernoulli(event.prob))
            outcome ^= 1ULL << event.qubit;
    }
    return outcome;
}

std::uint64_t
denseTrajectoryShot(const Circuit &physical,
                    const NoiseScript &script, Rng &rng)
{
    StateVector state(physical.numQubits());
    const auto &gates = physical.gates();
    for (const ScriptOp &op : script.ops) {
        state.apply(gates[op.gateIndex]);
        sampleOpNoise(op, script, rng,
                      [&](Qubit q, PauliKind pauli) {
                          state.apply(Gate::oneQubit(
                              pauliGateKind(pauli), q));
                      });
    }
    const std::uint64_t outcome =
        state.sample(rng) & script.measuredMask;
    return applyReadoutNoise(script, outcome, rng);
}

} // namespace vaq::sim
