/**
 * @file
 * Error model mapping calibration data onto circuit operations.
 *
 * Matches the paper's evaluation model (Section 4.4): operations fail
 * as independent Bernoulli events with the calibrated error rate of
 * the qubit/link they use; coherence errors are modeled per operation
 * from T1/T2 and gate durations and are dominated by gate errors
 * (~16x for bv-20 with the default durations, as the paper reports).
 */
#ifndef VAQ_SIM_NOISE_MODEL_HPP
#define VAQ_SIM_NOISE_MODEL_HPP

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::sim
{

/** How decoherence is charged to a trial. */
enum class CoherenceMode
{
    None,  ///< ignore coherence errors entirely
    PerOp, ///< each operation decoheres its operands for its duration
           ///< (default; reproduces the paper's gate-error dominance)
    Idle,  ///< PerOp plus decay during idle gaps between a qubit's
           ///< operations (extension; needs the schedule)
};

/**
 * Immutable view binding a machine topology + calibration snapshot
 * into per-operation error probabilities.
 *
 * The referenced graph and snapshot must outlive the model.
 */
class NoiseModel
{
  public:
    /**
     * @param graph Machine connectivity.
     * @param snapshot Calibration data shaped for `graph`.
     * @param mode Coherence treatment.
     */
    NoiseModel(const topology::CouplingGraph &graph,
               const calibration::Snapshot &snapshot,
               CoherenceMode mode = CoherenceMode::PerOp);

    /** Machine the model describes. */
    const topology::CouplingGraph &graph() const { return _graph; }

    /** Calibration behind the model. */
    const calibration::Snapshot &snapshot() const
    {
        return _snapshot;
    }

    /** Coherence mode. */
    CoherenceMode mode() const { return _mode; }

    /**
     * Operational (gate/readout) error probability of one operation.
     * Two-qubit operands must be coupled on the machine (throws
     * VaqError otherwise — an unrouted circuit is a caller bug).
     * SWAPs cost 1-(1-e)^3. Barriers are free.
     */
    double opErrorProb(const circuit::Gate &gate) const;

    /**
     * Coherence error probability charged to the operation:
     * each operand decoheres with 1 - exp(-t_op * (1/T1 + 1/T2))
     * during the gate's duration (0 under CoherenceMode::None).
     */
    double coherenceErrorProb(const circuit::Gate &gate) const;

    /**
     * Additional coherence error for a qubit idling for `idle_ns`
     * (used in CoherenceMode::Idle; 0 otherwise).
     */
    double idleErrorProb(int qubit, double idle_ns) const;

    /**
     * Total per-operation failure probability:
     * 1 - (1-op)(1-coherence).
     */
    double totalErrorProb(const circuit::Gate &gate) const;

    /** Duration of the operation in nanoseconds. */
    double opDurationNs(const circuit::Gate &gate) const;

  private:
    double decayProb(int qubit, double duration_ns) const;

    const topology::CouplingGraph &_graph;
    const calibration::Snapshot &_snapshot;
    CoherenceMode _mode;
};

} // namespace vaq::sim

#endif // VAQ_SIM_NOISE_MODEL_HPP
