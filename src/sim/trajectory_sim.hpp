/**
 * @file
 * Noisy state-vector (quantum trajectory) simulator.
 *
 * SUBSTITUTION NOTE (DESIGN.md §2.1): the paper's Section 7 runs the
 * compiled programs on the physical IBM-Q5 machine. Standing in for
 * that hardware, this simulator executes the mapped circuit on a
 * dense state vector and stochastically injects discrete Pauli
 * errors per operation, plus readout bit-flips — a *richer* error
 * model than the Bernoulli abstraction the compiler optimizes
 * against (errors can cancel, Z errors before measurement are
 * harmless, wrong outputs appear with definite probabilities). That
 * gap between compile-time model and execution-time behaviour is
 * exactly what the real-system study exercises.
 *
 * PST here is measured the way the paper measures it on hardware:
 * run 4096 shots, count the trials whose (noisy) output is a correct
 * output of the ideal program.
 */
#ifndef VAQ_SIM_TRAJECTORY_SIM_HPP
#define VAQ_SIM_TRAJECTORY_SIM_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/noise_model.hpp"
#include "sim/statevector.hpp"

namespace vaq::sim
{

/** Knobs for the trajectory run. */
struct TrajectoryOptions
{
    std::size_t shots = 4096; ///< paper's per-experiment trial count
    std::uint64_t seed = 29;
    bool readoutNoise = true;
    /**
     * Crosstalk extension (the paper's Section 9 lists "no
     * correlations between errors" among its model limitations):
     * when a two-qubit gate fires, every machine-neighbour of its
     * operands additionally suffers a random Pauli with
     * probability crosstalk * gate-error. 0 (default) reproduces
     * the paper's independent-error model.
     */
    double crosstalk = 0.0;
};

/** Histogram of measured outcomes. */
struct ShotCounts
{
    /** outcome (basis bits masked to measured qubits) -> count. */
    std::map<std::uint64_t, std::size_t> counts;
    std::size_t shots = 0;
    /** OR of (1 << q) over measured qubits. */
    std::uint64_t measuredMask = 0;
};

/**
 * Ideal (noiseless) outcome set of a program: the masked outcomes
 * whose probability exceeds `threshold` under exact simulation.
 * For bv/TriSwap this is a single bitstring; for GHZ it is the pair
 * {00..0, 11..1}.
 *
 * @throws VaqError when the program measures nothing or when the
 *         accept set would cover more than half of the outcome
 *         space (then "success" is not meaningful — use
 *         fault-injection PST instead).
 */
std::vector<std::uint64_t>
idealOutcomes(const circuit::Circuit &logical,
              double threshold = 1e-9);

/** Fraction of shots that landed in the acceptable outcome set. */
double pstFromCounts(const ShotCounts &counts,
                     const std::vector<std::uint64_t> &acceptable);

/** Hardware-surrogate simulator. */
class TrajectorySimulator
{
  public:
    /**
     * @param model Noise model of the simulated machine; two-qubit
     *        gates in executed circuits must respect its topology.
     */
    explicit TrajectorySimulator(const NoiseModel &model,
                                 const TrajectoryOptions &options = {});

    /**
     * Execute `physical` for options.shots trajectories and return
     * the outcome histogram. Measurements are taken at the end of
     * the circuit over every qubit that has a MEASURE gate.
     */
    ShotCounts run(const circuit::Circuit &physical);

  private:
    const NoiseModel &_model;
    TrajectoryOptions _options;
};

} // namespace vaq::sim

#endif // VAQ_SIM_TRAJECTORY_SIM_HPP
