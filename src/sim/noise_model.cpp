#include "sim/noise_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vaq::sim
{

using circuit::Gate;
using circuit::GateKind;

NoiseModel::NoiseModel(const topology::CouplingGraph &graph,
                       const calibration::Snapshot &snapshot,
                       CoherenceMode mode)
    : _graph(graph), _snapshot(snapshot), _mode(mode)
{
    require(snapshot.numQubits() == graph.numQubits() &&
                snapshot.numLinks() == graph.linkCount(),
            "snapshot does not match machine shape");
}

double
NoiseModel::opErrorProb(const Gate &gate) const
{
    switch (gate.kind) {
      case GateKind::BARRIER:
        return 0.0;
      case GateKind::MEASURE:
        return _snapshot.qubit(gate.q0).readoutError;
      case GateKind::CX:
      case GateKind::CZ:
        return _snapshot.linkError(_graph, gate.q0, gate.q1);
      case GateKind::SWAP:
        return _snapshot.swapError(_graph, gate.q0, gate.q1);
      default:
        return _snapshot.qubit(gate.q0).error1q;
    }
}

double
NoiseModel::opDurationNs(const Gate &gate) const
{
    const calibration::GateDurations &d = _snapshot.durations;
    switch (gate.kind) {
      case GateKind::BARRIER:
        return 0.0;
      case GateKind::MEASURE:
        return d.measureNs;
      case GateKind::CX:
      case GateKind::CZ:
        return d.twoQubitNs;
      case GateKind::SWAP:
        return 3.0 * d.twoQubitNs;
      default:
        return d.oneQubitNs;
    }
}

double
NoiseModel::decayProb(int qubit, double duration_ns) const
{
    const calibration::QubitCalibration &cal =
        _snapshot.qubit(qubit);
    // Exponential T1 relaxation (paper Section 9: "exponential-model
    // for coherence errors"). Pure dephasing largely commutes with
    // the terminal Z-basis measurement, so charging T1 keeps the
    // paper's observed gate-error dominance (~16x for bv-20).
    const double rate = 1.0 / (cal.t1Us * 1000.0);
    return 1.0 - std::exp(-duration_ns * rate);
}

double
NoiseModel::coherenceErrorProb(const Gate &gate) const
{
    if (_mode == CoherenceMode::None ||
        gate.kind == GateKind::BARRIER) {
        return 0.0;
    }
    const double t = opDurationNs(gate);
    double survive = 1.0 - decayProb(gate.q0, t);
    if (gate.isTwoQubit())
        survive *= 1.0 - decayProb(gate.q1, t);
    return 1.0 - survive;
}

double
NoiseModel::idleErrorProb(int qubit, double idle_ns) const
{
    if (_mode != CoherenceMode::Idle || idle_ns <= 0.0)
        return 0.0;
    return decayProb(qubit, idle_ns);
}

double
NoiseModel::totalErrorProb(const Gate &gate) const
{
    const double op = opErrorProb(gate);
    const double coh = coherenceErrorProb(gate);
    return 1.0 - (1.0 - op) * (1.0 - coh);
}

} // namespace vaq::sim
