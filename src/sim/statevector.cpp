#include "sim/statevector.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vaq::sim
{

using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

namespace
{

constexpr double kInvSqrt2 = 0.7071067811865475244;

} // namespace

StateVector::StateVector(int num_qubits)
    : _numQubits(num_qubits)
{
    require(num_qubits >= 1 && num_qubits <= 27,
            "statevector supports 1..27 qubits");
    _amps.assign(1ULL << num_qubits, Amplitude(0.0, 0.0));
    _amps[0] = Amplitude(1.0, 0.0);
}

Amplitude
StateVector::amplitude(std::uint64_t basis) const
{
    require(basis < dimension(), "basis index out of range");
    return _amps[basis];
}

double
StateVector::probability(std::uint64_t basis) const
{
    return std::norm(amplitude(basis));
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> probs;
    probs.reserve(_amps.size());
    for (const Amplitude &a : _amps)
        probs.push_back(std::norm(a));
    return probs;
}

void
StateVector::applyOneQubitMatrix(Qubit q, const Amplitude m[2][2])
{
    require(q >= 0 && q < _numQubits, "qubit out of range");
    const std::uint64_t stride = 1ULL << q;
    const std::uint64_t dim = dimension();
    for (std::uint64_t base = 0; base < dim; base += stride * 2) {
        for (std::uint64_t offset = 0; offset < stride; ++offset) {
            const std::uint64_t i0 = base + offset;
            const std::uint64_t i1 = i0 + stride;
            const Amplitude a0 = _amps[i0];
            const Amplitude a1 = _amps[i1];
            _amps[i0] = m[0][0] * a0 + m[0][1] * a1;
            _amps[i1] = m[1][0] * a0 + m[1][1] * a1;
        }
    }
}

void
StateVector::apply(const Gate &gate)
{
    require(gate.isUnitary(),
            "cannot apply measure/barrier as a unitary");

    switch (gate.kind) {
      case GateKind::I:
        return;
      case GateKind::X: {
        const Amplitude m[2][2] = {{0, 1}, {1, 0}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::Y: {
        const Amplitude m[2][2] = {{0, Amplitude(0, -1)},
                                   {Amplitude(0, 1), 0}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::Z: {
        const Amplitude m[2][2] = {{1, 0}, {0, -1}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::H: {
        const Amplitude m[2][2] = {{kInvSqrt2, kInvSqrt2},
                                   {kInvSqrt2, -kInvSqrt2}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::S: {
        const Amplitude m[2][2] = {{1, 0}, {0, Amplitude(0, 1)}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::Sdg: {
        const Amplitude m[2][2] = {{1, 0}, {0, Amplitude(0, -1)}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::T: {
        const Amplitude m[2][2] = {
            {1, 0}, {0, std::polar(1.0, M_PI / 4.0)}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::Tdg: {
        const Amplitude m[2][2] = {
            {1, 0}, {0, std::polar(1.0, -M_PI / 4.0)}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::RX: {
        const double half = gate.param / 2.0;
        const Amplitude m[2][2] = {
            {std::cos(half), Amplitude(0, -std::sin(half))},
            {Amplitude(0, -std::sin(half)), std::cos(half)}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::RY: {
        const double half = gate.param / 2.0;
        const Amplitude m[2][2] = {
            {std::cos(half), -std::sin(half)},
            {std::sin(half), std::cos(half)}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::RZ: {
        const double half = gate.param / 2.0;
        const Amplitude m[2][2] = {
            {std::polar(1.0, -half), 0},
            {0, std::polar(1.0, half)}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::U3: {
        const double half = gate.param / 2.0;
        const Amplitude m[2][2] = {
            {std::cos(half),
             -std::polar(1.0, gate.param3) * std::sin(half)},
            {std::polar(1.0, gate.param2) * std::sin(half),
             std::polar(1.0, gate.param2 + gate.param3) *
                 std::cos(half)}};
        applyOneQubitMatrix(gate.q0, m);
        return;
      }
      case GateKind::CX: {
        // Flip target bit where control bit is set.
        const std::uint64_t cbit = 1ULL << gate.q0;
        const std::uint64_t tbit = 1ULL << gate.q1;
        const std::uint64_t dim = dimension();
        for (std::uint64_t i = 0; i < dim; ++i) {
            if ((i & cbit) && !(i & tbit))
                std::swap(_amps[i], _amps[i | tbit]);
        }
        return;
      }
      case GateKind::CZ: {
        const std::uint64_t abit = 1ULL << gate.q0;
        const std::uint64_t bbit = 1ULL << gate.q1;
        const std::uint64_t dim = dimension();
        for (std::uint64_t i = 0; i < dim; ++i) {
            if ((i & abit) && (i & bbit))
                _amps[i] = -_amps[i];
        }
        return;
      }
      case GateKind::SWAP: {
        const std::uint64_t abit = 1ULL << gate.q0;
        const std::uint64_t bbit = 1ULL << gate.q1;
        const std::uint64_t dim = dimension();
        for (std::uint64_t i = 0; i < dim; ++i) {
            if ((i & abit) && !(i & bbit))
                std::swap(_amps[i], _amps[(i & ~abit) | bbit]);
        }
        return;
      }
      case GateKind::MEASURE:
      case GateKind::BARRIER:
        break;
    }
    VAQ_ASSERT(false, "unhandled gate kind in statevector");
}

void
StateVector::applyUnitaries(const circuit::Circuit &circuit)
{
    require(circuit.numQubits() <= _numQubits,
            "circuit wider than statevector");
    for (const Gate &gate : circuit.gates()) {
        if (gate.isUnitary())
            apply(gate);
    }
}

std::uint64_t
StateVector::sample(Rng &rng) const
{
    double r = rng.uniform();
    const std::uint64_t dim = dimension();
    for (std::uint64_t i = 0; i + 1 < dim; ++i) {
        const double p = std::norm(_amps[i]);
        if (r < p)
            return i;
        r -= p;
    }
    return dim - 1;
}

double
StateVector::norm() const
{
    double total = 0.0;
    for (const Amplitude &a : _amps)
        total += std::norm(a);
    return std::sqrt(total);
}

double
StateVector::fidelity(const StateVector &other) const
{
    require(other.dimension() == dimension(),
            "fidelity requires equal widths");
    Amplitude inner(0.0, 0.0);
    for (std::uint64_t i = 0; i < dimension(); ++i)
        inner += std::conj(_amps[i]) * other._amps[i];
    return std::norm(inner);
}

} // namespace vaq::sim
