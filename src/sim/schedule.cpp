#include "sim/schedule.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vaq::sim
{

using circuit::Gate;
using circuit::GateKind;

double
Schedule::idleNs(const circuit::Circuit &circuit, int qubit) const
{
    double busy = 0.0;
    double first = -1.0;
    double last = 0.0;
    for (const ScheduledOp &op : ops) {
        const Gate &g = circuit.gates()[op.gateIndex];
        if (g.kind == GateKind::BARRIER || !g.touches(qubit))
            continue;
        busy += op.endNs - op.startNs;
        if (first < 0.0)
            first = op.startNs;
        last = std::max(last, op.endNs);
    }
    if (first < 0.0)
        return 0.0;
    return std::max(0.0, (last - first) - busy);
}

Schedule
scheduleCircuit(const circuit::Circuit &circuit,
                const NoiseModel &model)
{
    Schedule schedule;
    std::vector<double> free(
        static_cast<std::size_t>(circuit.numQubits()), 0.0);
    double barrierTime = 0.0;

    const auto &gates = circuit.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (g.kind == GateKind::BARRIER) {
            for (double t : free)
                barrierTime = std::max(barrierTime, t);
            schedule.ops.push_back(
                ScheduledOp{i, barrierTime, barrierTime});
            continue;
        }
        double start = std::max(
            barrierTime, free[static_cast<std::size_t>(g.q0)]);
        if (g.isTwoQubit()) {
            start = std::max(
                start, free[static_cast<std::size_t>(g.q1)]);
        }
        const double end = start + model.opDurationNs(g);
        free[static_cast<std::size_t>(g.q0)] = end;
        if (g.isTwoQubit())
            free[static_cast<std::size_t>(g.q1)] = end;
        schedule.ops.push_back(ScheduledOp{i, start, end});
        schedule.durationNs = std::max(schedule.durationNs, end);
    }
    return schedule;
}

} // namespace vaq::sim
