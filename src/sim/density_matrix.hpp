/**
 * @file
 * Exact density-matrix simulator.
 *
 * Evolves the full mixed state rho (4^n complex entries, practical
 * to ~10 qubits) under the same error channel the trajectory
 * simulator samples:
 *
 *  - each gate applies its unitary, then with probability
 *    e = opErrorProb the trajectory channel's Pauli mixture
 *    (uniform non-identity Pauli on the first operand; for
 *    two-qubit gates, with probability 3/4 an additional uniform
 *    Pauli on the second operand),
 *  - with probability c = coherenceErrorProb a uniform Pauli on
 *    the first operand,
 *  - readout is a classical per-qubit confusion of the diagonal.
 *
 * Because it computes the *expected* outcome distribution in closed
 * form, it is the ground truth the Monte-Carlo trajectory sampler
 * is validated against (tests/sim/test_density_matrix.cpp), closing
 * the loop on the paper's evaluation methodology: fault injection
 * (fast, per-op) ~ trajectory sampling (mid) ~ density matrix
 * (exact, small machines).
 */
#ifndef VAQ_SIM_DENSITY_MATRIX_HPP
#define VAQ_SIM_DENSITY_MATRIX_HPP

#include <complex>
#include <cstdint>
#include <map>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/noise_model.hpp"

namespace vaq::sim
{

/** Dense density matrix over up to 10 qubits. */
class DensityMatrix
{
  public:
    using Complex = std::complex<double>;

    /** |0...0><0...0| over `num_qubits` (1..10). */
    explicit DensityMatrix(int num_qubits);

    int numQubits() const { return _numQubits; }

    /** Hilbert-space dimension 2^n. */
    std::uint64_t dimension() const { return 1ULL << _numQubits; }

    /** Matrix entry rho[row][col]. */
    Complex entry(std::uint64_t row, std::uint64_t col) const;

    /** Trace (1 within rounding for valid evolutions). */
    double trace() const;

    /** Apply a unitary gate: rho -> U rho U^dagger. */
    void applyUnitary(const circuit::Gate &gate);

    /**
     * Apply gate + its noise channel under `model` (matching the
     * trajectory simulator's stochastic channel in expectation).
     */
    void applyNoisyGate(const circuit::Gate &gate,
                        const NoiseModel &model);

    /**
     * Run a whole circuit with noise; measures/barriers are
     * skipped (read the outcome distribution afterwards).
     */
    void runNoisy(const circuit::Circuit &circuit,
                  const NoiseModel &model);

    /** Diagonal of rho: exact outcome probabilities. */
    std::vector<double> diagonal() const;

    /**
     * Outcome distribution over the measured qubits of `circuit`,
     * masked like ShotCounts, including per-qubit readout
     * confusion from `model` when `readout_noise` is set.
     */
    std::map<std::uint64_t, double>
    outcomeDistribution(const circuit::Circuit &circuit,
                        const NoiseModel &model,
                        bool readout_noise = true) const;

  private:
    /** rho -> (1-w) rho + w * avg over non-identity Paulis P of
     *  P rho P (single-qubit depolarizing-style mixture). */
    void mixUniformPauli(circuit::Qubit q, double weight);

    int _numQubits;
    /** Row-major 2^n x 2^n matrix. */
    std::vector<Complex> _rho;
};

/** Total-variation distance between two outcome distributions. */
double totalVariation(const std::map<std::uint64_t, double> &a,
                      const std::map<std::uint64_t, double> &b);

} // namespace vaq::sim

#endif // VAQ_SIM_DENSITY_MATRIX_HPP
