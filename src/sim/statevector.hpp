/**
 * @file
 * Dense state-vector simulator.
 *
 * Exact simulation of the libvaq gate set for up to 27 qubits
 * (2^27 amplitudes = 2 GiB — Falcon-27 scale, the dense baseline
 * the Pauli-frame fast path is benchmarked against). Used three
 * ways in this repository:
 *  - functional verification that mapped circuits preserve program
 *    semantics (tests),
 *  - computing the ideal ("correct") output set of a program so a
 *    trial can be judged successful,
 *  - as the engine under the noisy TrajectorySimulator that stands
 *    in for the real IBM-Q5 machine (Table 3).
 *
 * Bit convention: basis index bit q holds the value of qubit q
 * (little-endian).
 */
#ifndef VAQ_SIM_STATEVECTOR_HPP
#define VAQ_SIM_STATEVECTOR_HPP

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace vaq::sim
{

/** Complex amplitude type. */
using Amplitude = std::complex<double>;

/** Dense 2^n state vector initialized to |0...0>. */
class StateVector
{
  public:
    /** Create |0...0> over `num_qubits` qubits (1..27 supported). */
    explicit StateVector(int num_qubits);

    /** Number of qubits. */
    int numQubits() const { return _numQubits; }

    /** Dimension 2^n. */
    std::uint64_t dimension() const { return _amps.size(); }

    /** Amplitude of a basis state. */
    Amplitude amplitude(std::uint64_t basis) const;

    /** Probability of a basis state. */
    double probability(std::uint64_t basis) const;

    /** Full probability vector (2^n entries). */
    std::vector<double> probabilities() const;

    /**
     * Apply one unitary gate (MEASURE/BARRIER are rejected;
     * use sample()/measureAll for readout).
     */
    void apply(const circuit::Gate &gate);

    /** Apply every unitary gate of a circuit, skipping
     *  measures/barriers. */
    void applyUnitaries(const circuit::Circuit &circuit);

    /** Apply an arbitrary 2x2 unitary to one qubit
     *  (row-major m[2][2]). */
    void applyOneQubitMatrix(circuit::Qubit q,
                             const Amplitude m[2][2]);

    /**
     * Sample a full-register measurement outcome without collapsing
     * the state (repeated sampling = repeated trials of the same
     * prepared state).
     */
    std::uint64_t sample(Rng &rng) const;

    /** L2 norm of the state (should stay 1 within rounding). */
    double norm() const;

    /** Fidelity |<this|other>|^2 with another state. */
    double fidelity(const StateVector &other) const;

  private:
    int _numQubits;
    std::vector<Amplitude> _amps;
};

} // namespace vaq::sim

#endif // VAQ_SIM_STATEVECTOR_HPP
