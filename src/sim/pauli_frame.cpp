#include "sim/pauli_frame.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_sim.hpp"
#include "sim/statevector.hpp"

namespace vaq::sim
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

bool
isCliffordGate(GateKind kind)
{
    switch (kind) {
      case GateKind::I:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
      case GateKind::MEASURE:
      case GateKind::BARRIER:
        return true;
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::U3:
        return false;
    }
    VAQ_ASSERT(false, "unhandled gate kind");
    return false;
}

FrameCounts
countCliffordGates(const Circuit &circuit)
{
    FrameCounts counts;
    for (const Gate &g : circuit.gates()) {
        if (g.kind == GateKind::MEASURE ||
            g.kind == GateKind::BARRIER) {
            continue;
        }
        if (isCliffordGate(g.kind))
            ++counts.clifford;
        else
            ++counts.nonClifford;
    }
    return counts;
}

void
conjugateFrame(PauliFrame &frame, FrameOpKind kind, std::uint64_t m0,
               std::uint64_t m1)
{
    switch (kind) {
      case FrameOpKind::None:
        return;
      case FrameOpKind::H: {
        // H swaps the X and Z components on the operand.
        const bool xb = frame.x & m0;
        const bool zb = frame.z & m0;
        if (xb != zb) {
            frame.x ^= m0;
            frame.z ^= m0;
        }
        return;
      }
      case FrameOpKind::S:
        // S X S^dag = Y (and Sdg X S = -Y): an X component grows a
        // Z component; Z components pass through.
        if (frame.x & m0)
            frame.z ^= m0;
        return;
      case FrameOpKind::CX:
        // X on the control copies onto the target; Z on the target
        // copies onto the control.
        if (frame.x & m0)
            frame.x ^= m1;
        if (frame.z & m1)
            frame.z ^= m0;
        return;
      case FrameOpKind::CZ:
        // X on either operand grows a Z on the other.
        if (frame.x & m0)
            frame.z ^= m1;
        if (frame.x & m1)
            frame.z ^= m0;
        return;
      case FrameOpKind::Swap: {
        const bool xa = frame.x & m0;
        const bool xb = frame.x & m1;
        if (xa != xb)
            frame.x ^= m0 | m1;
        const bool za = frame.z & m0;
        const bool zb = frame.z & m1;
        if (za != zb)
            frame.z ^= m0 | m1;
        return;
      }
    }
    VAQ_ASSERT(false, "unhandled frame op");
}

bool
AffineSupport::contains(std::uint64_t value) const
{
    std::uint64_t t = value ^ offset;
    for (std::uint64_t v : basis) {
        const int p = std::bit_width(v) - 1;
        if ((t >> p) & 1)
            t ^= v;
    }
    return t == 0;
}

std::uint64_t
AffineSupport::shiftedOffset(std::uint64_t shift) const
{
    std::uint64_t off = offset ^ shift;
    for (std::uint64_t v : basis) {
        const int p = std::bit_width(v) - 1;
        if ((off >> p) & 1)
            off ^= v;
    }
    return off;
}

std::uint64_t
AffineSupport::elementAt(std::uint64_t m, std::uint64_t off) const
{
    // Pivots descend, so coefficient word order == numeric order:
    // bit (k-1-j) of m selects basis[j].
    const std::size_t k = basis.size();
    std::uint64_t element = off;
    for (std::size_t j = 0; j < k; ++j) {
        if ((m >> (k - 1 - j)) & 1)
            element ^= basis[j];
    }
    return element;
}

AffineSupport
AffineSupport::masked(std::uint64_t mask) const
{
    std::vector<std::uint64_t> vectors;
    vectors.reserve(basis.size());
    for (std::uint64_t v : basis)
        vectors.push_back(v & mask);
    return fromVectors(offset & mask, vectors);
}

AffineSupport
AffineSupport::fromVectors(std::uint64_t offset,
                           const std::vector<std::uint64_t> &vectors)
{
    std::uint64_t slot[64] = {};
    for (std::uint64_t v : vectors) {
        while (v != 0) {
            const int b = std::bit_width(v) - 1;
            if (slot[b] == 0) {
                slot[b] = v;
                break;
            }
            v ^= slot[b];
        }
    }
    // Reduce to RREF: clear every pivot column from the other rows.
    for (int b = 0; b < 64; ++b) {
        if (slot[b] == 0)
            continue;
        for (int b2 = b + 1; b2 < 64; ++b2) {
            if (slot[b2] != 0 && ((slot[b2] >> b) & 1))
                slot[b2] ^= slot[b];
        }
    }
    AffineSupport support;
    for (int b = 63; b >= 0; --b) {
        if (slot[b] != 0) {
            support.basis.push_back(slot[b]);
            if ((offset >> b) & 1)
                offset ^= slot[b];
        }
    }
    support.offset = offset;
    return support;
}

StabilizerTableau::StabilizerTableau(int num_qubits)
    : _numQubits(num_qubits)
{
    require(num_qubits >= 1 && num_qubits <= 64,
            "stabilizer tableau supports 1..64 qubits");
    _rows.resize(static_cast<std::size_t>(num_qubits));
    for (int q = 0; q < num_qubits; ++q)
        _rows[static_cast<std::size_t>(q)].z = 1ULL << q;
}

void
StabilizerTableau::rowMult(Row &dst, const Row &src)
{
    // Aaronson-Gottesman phase bookkeeping: i-exponent contribution
    // of multiplying the single-qubit factors, summed mod 4.
    int sum = 2 * (dst.r + src.r);
    std::uint64_t active = src.x | src.z;
    while (active != 0) {
        const int q = std::countr_zero(active);
        active &= active - 1;
        const int x1 = static_cast<int>((src.x >> q) & 1);
        const int z1 = static_cast<int>((src.z >> q) & 1);
        const int x2 = static_cast<int>((dst.x >> q) & 1);
        const int z2 = static_cast<int>((dst.z >> q) & 1);
        if (x1 != 0 && z1 != 0)
            sum += z2 - x2;
        else if (x1 != 0)
            sum += z2 * (2 * x2 - 1);
        else
            sum += x2 * (1 - 2 * z2);
    }
    sum = ((sum % 4) + 4) % 4;
    VAQ_ASSERT(sum == 0 || sum == 2,
               "stabilizer generators must commute");
    dst.r = sum == 2 ? 1 : 0;
    dst.x ^= src.x;
    dst.z ^= src.z;
}

void
StabilizerTableau::apply(const Gate &gate)
{
    require(gate.isUnitary(),
            "cannot apply measure/barrier to a tableau");
    require(isCliffordGate(gate.kind),
            "tableau supports Clifford gates only, got " +
                circuit::gateName(gate.kind));

    const auto h = [&](Qubit q) {
        const std::uint64_t bit = 1ULL << q;
        for (Row &row : _rows) {
            const bool xb = row.x & bit;
            const bool zb = row.z & bit;
            row.r ^= static_cast<std::uint8_t>(xb && zb);
            if (xb != zb) {
                row.x ^= bit;
                row.z ^= bit;
            }
        }
    };
    const auto cx = [&](Qubit c, Qubit t) {
        const std::uint64_t cbit = 1ULL << c;
        const std::uint64_t tbit = 1ULL << t;
        for (Row &row : _rows) {
            const bool xc = row.x & cbit;
            const bool zc = row.z & cbit;
            const bool xt = row.x & tbit;
            const bool zt = row.z & tbit;
            row.r ^= static_cast<std::uint8_t>(xc && zt &&
                                               (xt == zc));
            if (xc)
                row.x ^= tbit;
            if (zt)
                row.z ^= cbit;
        }
    };

    const std::uint64_t bit = 1ULL << gate.q0;
    switch (gate.kind) {
      case GateKind::I:
        return;
      case GateKind::X:
        for (Row &row : _rows)
            row.r ^= static_cast<std::uint8_t>((row.z >> gate.q0) & 1);
        return;
      case GateKind::Y:
        for (Row &row : _rows) {
            row.r ^= static_cast<std::uint8_t>(
                ((row.x ^ row.z) >> gate.q0) & 1);
        }
        return;
      case GateKind::Z:
        for (Row &row : _rows)
            row.r ^= static_cast<std::uint8_t>((row.x >> gate.q0) & 1);
        return;
      case GateKind::H:
        h(gate.q0);
        return;
      case GateKind::S:
        for (Row &row : _rows) {
            const bool xb = row.x & bit;
            const bool zb = row.z & bit;
            row.r ^= static_cast<std::uint8_t>(xb && zb);
            if (xb)
                row.z ^= bit;
        }
        return;
      case GateKind::Sdg:
        for (Row &row : _rows) {
            const bool xb = row.x & bit;
            const bool zb = row.z & bit;
            row.r ^= static_cast<std::uint8_t>(xb && !zb);
            if (xb)
                row.z ^= bit;
        }
        return;
      case GateKind::CX:
        cx(gate.q0, gate.q1);
        return;
      case GateKind::CZ:
        // CZ = (I x H) CX (I x H), composed from exact updates.
        h(gate.q1);
        cx(gate.q0, gate.q1);
        h(gate.q1);
        return;
      case GateKind::SWAP: {
        const std::uint64_t abit = 1ULL << gate.q0;
        const std::uint64_t bbit = 1ULL << gate.q1;
        for (Row &row : _rows) {
            const bool xa = row.x & abit;
            const bool xb2 = row.x & bbit;
            if (xa != xb2)
                row.x ^= abit | bbit;
            const bool za = row.z & abit;
            const bool zb2 = row.z & bbit;
            if (za != zb2)
                row.z ^= abit | bbit;
        }
        return;
      }
      default:
        break;
    }
    VAQ_ASSERT(false, "unhandled Clifford gate in tableau");
}

void
StabilizerTableau::applyUnitaries(const Circuit &circuit)
{
    require(circuit.numQubits() <= _numQubits,
            "circuit wider than tableau");
    for (const Gate &gate : circuit.gates()) {
        if (gate.isUnitary())
            apply(gate);
    }
}

AffineSupport
StabilizerTableau::support() const
{
    std::vector<Row> rows = _rows;
    std::vector<char> used(rows.size(), 0);

    // Row-reduce the X parts, high bit to low. Used pivot rows are
    // reduced too (i != pivot), so the X basis ends in RREF.
    std::vector<std::size_t> xPivotRows;
    for (int b = _numQubits - 1; b >= 0; --b) {
        std::size_t pivot = rows.size();
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (!used[i] && ((rows[i].x >> b) & 1)) {
                pivot = i;
                break;
            }
        }
        if (pivot == rows.size())
            continue;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (i != pivot && ((rows[i].x >> b) & 1))
                rowMult(rows[i], rows[pivot]);
        }
        used[pivot] = 1;
        xPivotRows.push_back(pivot);
    }

    // The remaining rows are Z-only: each is a parity constraint
    // z . s = r on every support element s. Reduce them to RREF over
    // the Z parts (signs updated through rowMult) so the offset can
    // be read off pivot-by-pivot.
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (!used[i]) {
            VAQ_ASSERT(rows[i].x == 0,
                       "unpivoted row with X component");
            rest.push_back(i);
        }
    }
    std::vector<char> zUsed(rest.size(), 0);
    std::vector<std::size_t> zPivotRow(
        static_cast<std::size_t>(_numQubits), rest.size());
    for (int b = _numQubits - 1; b >= 0; --b) {
        std::size_t pivot = rest.size();
        for (std::size_t i = 0; i < rest.size(); ++i) {
            if (!zUsed[i] && ((rows[rest[i]].z >> b) & 1)) {
                pivot = i;
                break;
            }
        }
        if (pivot == rest.size())
            continue;
        for (std::size_t i = 0; i < rest.size(); ++i) {
            if (i != pivot && ((rows[rest[i]].z >> b) & 1))
                rowMult(rows[rest[i]], rows[rest[pivot]]);
        }
        zUsed[pivot] = 1;
        zPivotRow[static_cast<std::size_t>(b)] = pivot;
    }
    for (std::size_t i = 0; i < rest.size(); ++i) {
        VAQ_ASSERT(zUsed[i],
                   "dependent generator rows in stabilizer tableau");
    }
    // Read the offset bits only once elimination has finished: a
    // pivot row picked at a high bit is still reduced (and its sign
    // flipped) by lower-bit pivots afterwards, so its r is not final
    // at selection time.
    std::uint64_t offset = 0;
    for (int b = 0; b < _numQubits; ++b) {
        const std::size_t pivot = zPivotRow[static_cast<std::size_t>(b)];
        if (pivot != rest.size() && rows[rest[pivot]].r != 0)
            offset |= 1ULL << b;
    }

    // Canonicalize the offset against the X basis (every basis
    // vector satisfies the Z constraints — generators commute — so
    // the reduced offset is still a support element).
    AffineSupport support;
    support.basis.reserve(xPivotRows.size());
    for (std::size_t idx : xPivotRows)
        support.basis.push_back(rows[idx].x);
    for (std::uint64_t v : support.basis) {
        const int p = std::bit_width(v) - 1;
        if ((offset >> p) & 1)
            offset ^= v;
    }
    support.offset = offset;
    return support;
}

PauliFrameSim::PauliFrameSim(const Circuit &physical,
                             const NoiseModel &model,
                             const PauliFrameOptions &options)
    : _physical(physical), _options(options),
      _script(NoiseScript::compile(physical, model,
                                   options.trajectory))
{
    require(options.trajectory.shots > 0, "need at least one shot");
    checkExecutable(physical, model);
    _counts = countCliffordGates(physical);

    const bool telemetry = obs::enabled();
    if (telemetry) {
        obs::count("sim.frame.clifford_gates", _counts.clifford);
        obs::count("sim.frame.nonclifford_gates",
                   _counts.nonClifford);
    }

    if (_counts.nonClifford > 0) {
        _fallbackReason = std::to_string(_counts.nonClifford) +
                          " non-Clifford gate(s)";
    } else if (physical.numQubits() > 64) {
        _fallbackReason = "circuit wider than 64 qubits";
    }
    if (!_fallbackReason.empty()) {
        if (telemetry)
            obs::count("sim.frame.fallbacks");
        return;
    }
    _framePath = true;

    const auto &gates = physical.gates();
    _stream.kind.reserve(_script.ops.size());
    _stream.m0.reserve(_script.ops.size());
    _stream.m1.reserve(_script.ops.size());
    for (const ScriptOp &op : _script.ops) {
        const Gate &g = gates[op.gateIndex];
        FrameOpKind kind = FrameOpKind::None;
        switch (g.kind) {
          case GateKind::H:
            kind = FrameOpKind::H;
            break;
          case GateKind::S:
          case GateKind::Sdg:
            kind = FrameOpKind::S;
            break;
          case GateKind::CX:
            kind = FrameOpKind::CX;
            break;
          case GateKind::CZ:
            kind = FrameOpKind::CZ;
            break;
          case GateKind::SWAP:
            kind = FrameOpKind::Swap;
            break;
          default:
            kind = FrameOpKind::None;
            break;
        }
        _stream.kind.push_back(kind);
        _stream.m0.push_back(1ULL << g.q0);
        _stream.m1.push_back(g.isTwoQubit() ? (1ULL << g.q1) : 0);
    }

    StabilizerTableau tableau(physical.numQubits());
    tableau.applyUnitaries(physical);
    _support = tableau.support();

    // Prefer the dense reference when feasible: its per-shot walk
    // replays the dense sampler's exact float subtractions, making
    // frame trials bit-identical to dense trials.
    _reference = FrameReference::Tableau;
    if (physical.numQubits() <=
        std::min(options.denseReferenceMaxQubits, 27)) {
        StateVector ideal(physical.numQubits());
        ideal.applyUnitaries(physical);
        std::vector<std::pair<std::uint64_t, double>> entries;
        const std::uint64_t dim = ideal.dimension();
        for (std::uint64_t s = 0; s < dim; ++s) {
            const double p = ideal.probability(s);
            if (p != 0.0)
                entries.push_back({s, p});
        }
        if (entries.size() <= options.maxDenseSupport) {
            _denseRef = std::move(entries);
            _reference = FrameReference::DenseAmplitudes;
        }
    }
}

const AffineSupport &
PauliFrameSim::idealSupport() const
{
    require(_framePath,
            "no stabilizer support on the dense fallback path");
    return _support;
}

std::uint64_t
PauliFrameSim::sampleIdeal(Rng &rng, std::uint64_t frameX) const
{
    if (_reference == FrameReference::DenseAmplitudes) {
        // Replay StateVector::sample()'s walk over the XOR-permuted
        // ideal probabilities: visit the shifted support ascending,
        // subtract the same doubles, keep the dim-1 fallback (the
        // dense loop never compares against the last index).
        double r = rng.uniform();
        const std::uint64_t dim = 1ULL << _physical.numQubits();
        std::vector<std::pair<std::uint64_t, double>> shifted;
        shifted.reserve(_denseRef.size());
        for (const auto &[s, p] : _denseRef)
            shifted.push_back({s ^ frameX, p});
        std::sort(shifted.begin(), shifted.end());
        for (const auto &[t, p] : shifted) {
            if (t == dim - 1)
                continue;
            if (r < p)
                return t;
            r -= p;
        }
        return dim - 1;
    }

    // Tableau reference: outcomes are uniform over the shifted
    // support; one uniform draw picks the m-th smallest element.
    const double r = rng.uniform();
    const std::size_t k = _support.dimension();
    std::uint64_t m = 0;
    if (k > 0) {
        m = static_cast<std::uint64_t>(
            std::ldexp(r, static_cast<int>(k)));
        const std::uint64_t last =
            k >= 64 ? ~0ULL : (1ULL << k) - 1;
        m = std::min(m, last);
    }
    return _support.elementAt(m, _support.shiftedOffset(frameX));
}

std::uint64_t
PauliFrameSim::runShot(Rng &rng) const
{
    if (!_framePath)
        return denseTrajectoryShot(_physical, _script, rng);

    PauliFrame frame;
    for (std::size_t i = 0; i < _stream.size(); ++i) {
        conjugateFrame(frame, _stream.kind[i], _stream.m0[i],
                       _stream.m1[i]);
        sampleOpNoise(_script.ops[i], _script, rng,
                      [&](Qubit q, PauliKind pauli) {
                          frame.inject(q, pauli);
                      });
    }
    const std::uint64_t outcome =
        sampleIdeal(rng, frame.x) & _script.measuredMask;
    return applyReadoutNoise(_script, outcome, rng);
}

ShotCounts
PauliFrameSim::run() const
{
    require(_script.measuredMask != 0,
            "program measures no qubits");
    ShotCounts result;
    result.shots = _options.trajectory.shots;
    result.measuredMask = _script.measuredMask;
    Rng rng(_options.trajectory.seed);
    for (std::size_t shot = 0; shot < result.shots; ++shot)
        ++result.counts[runShot(rng)];
    if (_framePath && obs::enabled())
        obs::count("sim.frame.trials", result.shots);
    return result;
}

} // namespace vaq::sim
