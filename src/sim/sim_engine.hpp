/**
 * @file
 * Engine-selection seam for outcome-level Monte-Carlo simulation.
 *
 * The repository has two per-trial outcome engines with identical
 * noise semantics (sim/noise_script.hpp): the dense state-vector
 * trajectory path and the stochastic Pauli-frame fast path
 * (sim/pauli_frame.hpp). Callers pick between them — or let the
 * runner decide — through this enum, which travels in
 * core::CompileOptions and behind `vaqc --sim-engine`.
 */
#ifndef VAQ_SIM_SIM_ENGINE_HPP
#define VAQ_SIM_SIM_ENGINE_HPP

#include <string>

namespace vaq::sim
{

/** Which per-trial simulation engine executes a noisy run. */
enum class SimEngine
{
    /** Pauli-frame fast path when the circuit qualifies
     *  (Clifford-only, <= 64 qubits), dense otherwise. */
    Auto,
    /** Always the dense state-vector trajectory path. */
    Dense,
    /** Request the frame path; non-qualifying circuits still fall
     *  back to dense (counted in sim.frame.fallbacks). */
    PauliFrame,
};

/** Lower-case flag spelling ("auto", "dense", "frame"). */
std::string simEngineName(SimEngine engine);

/** Parse a flag spelling; throws VaqError if unknown. */
SimEngine simEngineFromName(const std::string &name);

} // namespace vaq::sim

#endif // VAQ_SIM_SIM_ENGINE_HPP
