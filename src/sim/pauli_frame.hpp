/**
 * @file
 * Stochastic Pauli-frame fast path for Monte-Carlo fault injection.
 *
 * A trajectory trial interleaves random Pauli injections with the
 * circuit's gates. When every gate is Clifford, the noisy state
 * never needs amplitudes: it stays P |psi_ideal> for some Pauli P,
 * and P — the *frame* — is tracked as two packed uint64 bitmasks
 * (X and Z components, bit q = qubit q). Conjugating the frame
 * through a Clifford gate is a couple of bit operations, so a trial
 * costs O(gates) instead of O(gates * 2^n), unlocking PST estimation
 * at Falcon-27 scale.
 *
 * The frame path is engineered to be *bit-exactly* equal to the
 * dense engine per trial at matched seeds, not merely statistically
 * equivalent:
 *  - both engines consume randomness through the same NoiseScript
 *    samplers, so the injected Paulis and their order are identical;
 *  - interleaved Pauli injections commute through the dense engine's
 *    float arithmetic exactly (Clifford matrices only permute,
 *    negate, multiply by +/-i and butterfly amplitudes; IEEE
 *    addition is commutative, negation exact, std::norm invariant
 *    under those phases), so the dense noisy probability vector is
 *    the ideal one XOR-permuted by the frame's X mask, bitwise;
 *  - the frame path replays StateVector::sample()'s exact
 *    subtraction walk over that permuted vector using amplitudes
 *    from a single ideal dense run (FrameReference::DenseAmplitudes).
 * Beyond the dense envelope (width or support too large) sampling
 * switches to an exact stabilizer-tableau description of the ideal
 * state (FrameReference::Tableau): the support of a stabilizer
 * state is an affine subspace offset ^ span(basis) with uniform
 * 2^-k outcome probabilities, sampled directly. There is no dense
 * run to compare against at those widths; cross-validation there is
 * statistical (tests/sim/test_frame_vs_dense.cpp).
 *
 * Circuits containing non-Clifford gates fall back to the dense
 * trajectory shot (same NoiseScript, same stream), counted in
 * sim.frame.fallbacks.
 */
#ifndef VAQ_SIM_PAULI_FRAME_HPP
#define VAQ_SIM_PAULI_FRAME_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/noise_model.hpp"
#include "sim/noise_script.hpp"
#include "sim/trajectory_sim.hpp"

namespace vaq::sim
{

/** True for gates the frame conjugates exactly: the Clifford
 *  unitaries I/X/Y/Z/H/S/Sdg/CX/CZ/SWAP plus the MEASURE/BARRIER
 *  pseudo-ops. */
bool isCliffordGate(circuit::GateKind kind);

/** Clifford / non-Clifford census of a circuit's unitary gates. */
struct FrameCounts
{
    std::size_t clifford = 0;
    std::size_t nonClifford = 0;
};

FrameCounts countCliffordGates(const circuit::Circuit &circuit);

/**
 * The Pauli frame: the accumulated error operator X^x Z^z (up to a
 * global phase, which never affects outcomes).
 */
struct PauliFrame
{
    std::uint64_t x = 0;
    std::uint64_t z = 0;

    /** Multiply an injected Pauli into the frame. */
    void
    inject(circuit::Qubit q, PauliKind pauli)
    {
        const std::uint64_t bit = 1ULL << q;
        if (pauli != PauliKind::Z)
            x ^= bit;
        if (pauli != PauliKind::X)
            z ^= bit;
    }
};

/** Frame conjugation alphabet. Pauli gates and I conjugate every
 *  Pauli to itself up to phase, hence None. */
enum class FrameOpKind : std::uint8_t
{
    None,
    H,
    S, ///< S and Sdg act identically on frames (phases differ only)
    CX,
    CZ,
    Swap,
};

/**
 * Precompiled Clifford gate stream in structure-of-arrays layout:
 * one entry per NoiseScript op (same indexing), operands as
 * single-bit masks.
 */
struct FrameStream
{
    std::vector<FrameOpKind> kind;
    std::vector<std::uint64_t> m0;
    std::vector<std::uint64_t> m1;

    std::size_t size() const { return kind.size(); }
};

/** Conjugate the frame through one Clifford gate: f -> G f G^dag. */
void conjugateFrame(PauliFrame &frame, FrameOpKind kind,
                    std::uint64_t m0, std::uint64_t m1);

/**
 * Affine support of a stabilizer state: the set
 * { offset ^ (c . basis) } with `basis` in reduced row-echelon form,
 * pivots strictly descending, and `offset` zero at every pivot. In
 * that normal form the numeric order of elements equals the
 * lexicographic order of coefficient words, so the m-th smallest
 * element is O(k) to index.
 */
struct AffineSupport
{
    std::uint64_t offset = 0;
    std::vector<std::uint64_t> basis;

    /** log2 of the support size. */
    std::size_t dimension() const { return basis.size(); }

    /** Membership test. */
    bool contains(std::uint64_t value) const;

    /** Canonical offset of the XOR-shifted coset (support ^ shift):
     *  same basis, new offset. */
    std::uint64_t shiftedOffset(std::uint64_t shift) const;

    /** m-th smallest element of (off ^ span(basis)) for a canonical
     *  `off`; m in [0, 2^k). */
    std::uint64_t elementAt(std::uint64_t m, std::uint64_t off) const;

    /** Projection onto the masked bits — itself an affine
     *  subspace. */
    AffineSupport masked(std::uint64_t mask) const;

    /** Normalize (offset, spanning vectors) into canonical form. */
    static AffineSupport fromVectors(
        std::uint64_t offset,
        const std::vector<std::uint64_t> &vectors);
};

/**
 * Aaronson-Gottesman stabilizer tableau over <= 64 qubits: n
 * generator rows, each a sign bit plus packed X/Z bitmasks. Used to
 * derive the exact ideal support where the dense reference is
 * infeasible, and to cross-check the dense support in tests.
 */
class StabilizerTableau
{
  public:
    /** Stabilizers of |0...0>: +Z_i. */
    explicit StabilizerTableau(int num_qubits);

    int numQubits() const { return _numQubits; }

    /** Conjugate the generators through one Clifford unitary
     *  (throws VaqError on non-Clifford gates). */
    void apply(const circuit::Gate &gate);

    /** Apply every unitary gate of a circuit. */
    void applyUnitaries(const circuit::Circuit &circuit);

    /** Exact support of the stabilized state. */
    AffineSupport support() const;

  private:
    struct Row
    {
        std::uint64_t x = 0;
        std::uint64_t z = 0;
        std::uint8_t r = 0; ///< sign exponent: (-1)^r
    };

    /** dst := src * dst (stabilizer elements commute, so the order
     *  is immaterial); Aaronson-Gottesman phase bookkeeping. */
    static void rowMult(Row &dst, const Row &src);

    int _numQubits;
    std::vector<Row> _rows;
};

/** How frame-path trials turn a frame into an outcome. */
enum class FrameReference
{
    /** Replay of the dense sampler's float walk over one ideal
     *  dense run — bit-exact vs. the dense engine. */
    DenseAmplitudes,
    /** Exact stabilizer support with uniform outcome weights —
     *  used beyond the dense envelope. */
    Tableau,
};

/** Knobs of the frame engine. */
struct PauliFrameOptions
{
    /** Shot count, seed, readout/crosstalk toggles — shared with
     *  the dense engine so streams match. */
    TrajectoryOptions trajectory;
    /** Widest circuit sampled against a dense ideal reference. */
    int denseReferenceMaxQubits = 20;
    /** Largest ideal support replayed densely per shot; bigger
     *  supports switch to the tableau reference. */
    std::size_t maxDenseSupport = 4096;
};

/**
 * The per-trial engine. Construction classifies the circuit, builds
 * the frame stream and the ideal reference (one dense run and/or a
 * tableau); each trial is then O(gates + support). The referenced
 * circuit and model must outlive the engine. runShot() is const and
 * safe to call concurrently with distinct Rng streams.
 */
class PauliFrameSim
{
  public:
    PauliFrameSim(const circuit::Circuit &physical,
                  const NoiseModel &model,
                  const PauliFrameOptions &options = {});

    /** True when trials run on the frame fast path. */
    bool framePath() const { return _framePath; }

    /** Why the engine fell back to dense trials ("" on the frame
     *  path). */
    const std::string &fallbackReason() const
    {
        return _fallbackReason;
    }

    /** Sampling reference of the frame path (meaningless when
     *  framePath() is false). */
    FrameReference reference() const { return _reference; }

    const FrameCounts &gateCounts() const { return _counts; }

    std::uint64_t measuredMask() const
    {
        return _script.measuredMask;
    }

    /**
     * Exact full-register support of the ideal state (frame path
     * only; throws VaqError on the fallback path, where no tableau
     * exists).
     */
    const AffineSupport &idealSupport() const;

    /**
     * Run one trial off `rng`, returning the masked outcome. On the
     * frame path this consumes the RNG stream exactly as a dense
     * trajectory shot does; on the fallback path it *is* a dense
     * trajectory shot.
     */
    std::uint64_t runShot(Rng &rng) const;

    /** TrajectorySimulator-compatible histogram run:
     *  options.trajectory.shots trials from a fresh
     *  Rng(options.trajectory.seed). */
    ShotCounts run() const;

  private:
    std::uint64_t sampleIdeal(Rng &rng, std::uint64_t frameX) const;

    const circuit::Circuit &_physical;
    PauliFrameOptions _options;
    NoiseScript _script;
    FrameCounts _counts;
    bool _framePath = false;
    std::string _fallbackReason;
    FrameReference _reference = FrameReference::Tableau;
    FrameStream _stream;
    AffineSupport _support;
    /** DenseAmplitudes reference: (basis state, probability) pairs
     *  of every non-zero ideal probability, ascending state. */
    std::vector<std::pair<std::uint64_t, double>> _denseRef;
};

} // namespace vaq::sim

#endif // VAQ_SIM_PAULI_FRAME_HPP
