#include "sim/sim_engine.hpp"

#include "common/error.hpp"

namespace vaq::sim
{

std::string
simEngineName(SimEngine engine)
{
    switch (engine) {
      case SimEngine::Auto:
        return "auto";
      case SimEngine::Dense:
        return "dense";
      case SimEngine::PauliFrame:
        return "frame";
    }
    VAQ_ASSERT(false, "unhandled SimEngine value");
    return "auto";
}

SimEngine
simEngineFromName(const std::string &name)
{
    if (name == "auto")
        return SimEngine::Auto;
    if (name == "dense")
        return SimEngine::Dense;
    if (name == "frame" || name == "pauli-frame")
        return SimEngine::PauliFrame;
    throw VaqError("unknown sim engine '" + name +
                   "' (expected auto, dense or frame)");
}

} // namespace vaq::sim
