/**
 * @file
 * Multi-threaded, deterministic Monte-Carlo trial engine.
 *
 * The paper's evaluation runs 1M fault-injection trials per workload
 * (Section 4.3) for every policy/topology/calibration combination, so
 * the simulator — not the compiler — dominates wall-clock when
 * reproducing the figures. This engine shards the trial budget into
 * fixed-size chunks, gives each chunk its own RNG stream derived from
 * the master seed via Rng::split() in chunk order, runs the chunks on
 * a reusable worker pool, and reduces the per-chunk tallies in chunk
 * order. Because the chunk schedule and streams depend only on
 * (seed, trials, chunkTrials), the result — including the
 * early-stopping point of the adaptive mode — is bit-identical for
 * any thread count.
 */
#ifndef VAQ_SIM_PARALLEL_FAULT_SIM_HPP
#define VAQ_SIM_PARALLEL_FAULT_SIM_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/thread_pool.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pauli_frame.hpp"
#include "sim/sim_engine.hpp"
#include "sim/trajectory_sim.hpp"

namespace vaq::sim
{

/** Knobs of the parallel Monte-Carlo fault-injection run. */
struct ParallelFaultSimOptions
{
    std::size_t trials = 1'000'000; ///< paper uses 1M per workload
    std::uint64_t seed = 13;
    /** Worker threads for the one-shot entry points; 0 = one per
     *  hardware thread. Ignored by ParallelFaultSim instances,
     *  whose pool size is fixed at construction. */
    std::size_t threads = 0;
    /**
     * Trials per chunk — the unit of determinism. Results depend on
     * this value (it defines the RNG stream layout) but never on
     * the thread count.
     */
    std::size_t chunkTrials = 16'384;
    /**
     * Adaptive precision: when > 0, stop as soon as the estimate's
     * stderrPst falls to or below this target. The check runs after
     * every fixed-size wave of chunks (not per thread), so the
     * stopping point is thread-count invariant too. The result's
     * `trials` field reports the trials actually run.
     */
    double targetStderr = 0.0;
};

/**
 * Knobs of an outcome-checked parallel run: full per-trial outcome
 * simulation (Pauli injections, sampling, readout flips) instead of
 * the Bernoulli success/failure abstraction, judged against the
 * program's ideal outcome set. The chunked RNG-stream layout is the
 * same as ParallelFaultSimOptions, so results — per-trial outcomes
 * included — are bit-identical for any thread count.
 */
struct OutcomeSimOptions
{
    std::size_t trials = 100'000;
    /** Defaults to the trajectory engine's seed so a single-threaded
     *  chunk replays TrajectorySimulator streams per chunk. */
    std::uint64_t seed = 29;
    /** Worker threads for the one-shot entry point; 0 = one per
     *  hardware thread. Ignored by ParallelFaultSim instances. */
    std::size_t threads = 0;
    /** Trials per chunk — the unit of determinism (see
     *  ParallelFaultSimOptions::chunkTrials). */
    std::size_t chunkTrials = 4'096;
    /** Adaptive precision target; see ParallelFaultSimOptions. */
    double targetStderr = 0.0;
    /** Which per-trial engine executes the trials. */
    SimEngine engine = SimEngine::Auto;
    /** Flip measured bits with the calibrated readout error. */
    bool readoutNoise = true;
    /** Crosstalk extension (see TrajectoryOptions::crosstalk). */
    double crosstalk = 0.0;
};

/** Outcome of an outcome-checked parallel run. */
struct OutcomeSimResult
{
    std::size_t trials = 0;
    std::size_t successes = 0;
    /** Output-checked PST estimate = successes / trials. */
    double pst = 0.0;
    double stderrPst = 0.0;
    /** True when the Pauli-frame fast path executed the trials. */
    bool framePath = false;
    /** Why dense trials ran although the frame path was allowed
     *  (empty when framePath, or when SimEngine::Dense was
     *  requested). */
    std::string fallbackReason;
    /** Clifford census of the circuit. */
    FrameCounts gates;
    /** Aggregated masked-outcome histogram over every trial run. */
    ShotCounts counts;
};

/**
 * Reusable parallel trial engine: one worker pool, many runs.
 *
 * Not safe for concurrent use from multiple threads; each run()
 * blocks until its trials are reduced.
 */
class ParallelFaultSim
{
  public:
    /** Spawn the pool; 0 = one worker per hardware thread. */
    explicit ParallelFaultSim(std::size_t threads = 0);

    /** Worker threads backing the engine. */
    std::size_t threadCount() const { return _pool.threadCount(); }

    /** Run one Monte-Carlo fault-injection study. */
    FaultSimResult run(const circuit::Circuit &physical,
                       const NoiseModel &model,
                       const ParallelFaultSimOptions &options = {});

    /**
     * Evaluate many circuits against one model, amortizing the pool
     * across the sweep. Each circuit is evaluated exactly as a
     * standalone run() with the same options (same seed), so batch
     * results do not depend on batch composition or order.
     */
    std::vector<FaultSimResult>
    runBatch(std::span<const circuit::Circuit> physicals,
             const NoiseModel &model,
             const ParallelFaultSimOptions &options = {});

    /**
     * Outcome-checked Monte-Carlo run behind the SimEngine seam: a
     * trial simulates the full noisy execution (Pauli-frame fast
     * path for Clifford circuits, dense trajectory otherwise) and
     * succeeds iff its outcome lands in the program's ideal outcome
     * set. Chunk streams, wave structure and adaptive stopping
     * mirror run(), so results are thread-count invariant; with one
     * chunk covering all trials the trial stream is exactly
     * TrajectorySimulator's.
     *
     * @throws VaqError when the circuit measures nothing or its
     *         accept set covers more than half the outcome space
     *         (same contract as idealOutcomes()).
     */
    OutcomeSimResult
    runOutcomeChecked(const circuit::Circuit &physical,
                      const NoiseModel &model,
                      const OutcomeSimOptions &options = {});

  private:
    ThreadPool _pool;
};

/** One-shot convenience for runOutcomeChecked (options.threads). */
OutcomeSimResult
runOutcomeCheckedParallel(const circuit::Circuit &physical,
                          const NoiseModel &model,
                          const OutcomeSimOptions &options = {});

/** One-shot convenience: build a transient engine (options.threads)
 *  and run once. Prefer ParallelFaultSim for repeated calls. */
FaultSimResult
runFaultInjectionParallel(const circuit::Circuit &physical,
                          const NoiseModel &model,
                          const ParallelFaultSimOptions &options = {});

/** One-shot convenience over a circuit sweep (see runBatch). */
std::vector<FaultSimResult>
runFaultInjectionBatch(std::span<const circuit::Circuit> physicals,
                       const NoiseModel &model,
                       const ParallelFaultSimOptions &options = {});

} // namespace vaq::sim

#endif // VAQ_SIM_PARALLEL_FAULT_SIM_HPP
